// Fleet tracing integration tests: a seeded campaign driven through a
// live pacerouter onto a live paced backend must produce one stitched
// span tree — client, router and backend spans linked by the
// X-Pace-Trace header into the campaign's seed-derived trace ID — with
// zero orphans, and the tree's structure must be identical at any
// worker count (the observability extension of the PR-2 determinism
// contract, now across process boundaries).
package pace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/obs"
	"pace/internal/remote"
	"pace/internal/router"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
)

// fleetTraceRun drives one fixed-seed campaign through a router + 2
// paced backends, every process tracing to its own buffer, and returns
// the merged spans plus the telemetry registries (client, router,
// backends) for metric assertions.
func fleetTraceRun(t *testing.T, seed int64, workers int) ([]obs.SpanRecord, []*obs.Registry) {
	t.Helper()
	w, _, runCfg := remoteCampaignWorld(t, seed)

	var bufs []*bytes.Buffer
	var tracers []*obs.Tracer
	newTel := func(proc string) *obs.Telemetry {
		buf := &bytes.Buffer{}
		tel := &obs.Telemetry{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(buf)}
		tel.Tracer.SetProc(proc)
		bufs = append(bufs, buf)
		tracers = append(tracers, tel.Tracer)
		return tel
	}

	var urls []string
	var servers []*targetserver.Server
	var regs []*obs.Registry
	for i := 0; i < 2; i++ {
		tel := newTel("paced")
		cfg := targetserver.Config{Factory: experiments.TenantFactory(experiments.Config{}), Telemetry: tel}
		reg := tenant.NewRegistry(cfg.Factory, cfg.TenantConfig())
		srv := targetserver.NewMulti(reg, cfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		urls = append(urls, "http://"+addr)
		regs = append(regs, tel.Reg)
	}
	telR := newTel("pacerouter")
	rt, err := router.New(router.Config{Backends: urls, Telemetry: telR})
	if err != nil {
		t.Fatal(err)
	}
	raddr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rurl := "http://" + raddr

	admin, err := remote.NewAdmin(rurl, remote.Options{ClientID: "fleet-trace"})
	if err != nil {
		t.Fatal(err)
	}
	actx, acancel := context.WithTimeout(context.Background(), 10*time.Minute)
	_, err = admin.CreateTarget(actx, wire.TargetSpec{ID: "victim", Dataset: "dmv", Model: "fcn", Seed: seed})
	acancel()
	admin.Close()
	if err != nil {
		t.Fatalf("provisioning victim through router: %v", err)
	}

	telC := newTel("pace")
	runCfg.Workers = workers
	runCfg.Telemetry = telC
	c := core.Campaign{
		TargetURL: rurl + "/v1/targets/victim", Workload: w.WGen,
		Test: w.Test, History: w.History,
		Config: runCfg, Seed: seed,
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatalf("fleet campaign (workers=%d): %v", workers, err)
	}

	// Shut the fleet down before flushing tracers so every in-flight
	// span (async retrains, batch spans) has ended.
	rt.Close() //nolint:errcheck
	for _, srv := range servers {
		srv.Close() //nolint:errcheck
	}
	var all []obs.SpanRecord
	for i, tr := range tracers {
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ParseTrace(bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, recs...)
	}
	return all, append([]*obs.Registry{telC.Reg, telR.Reg}, regs...)
}

// canonicalFleetSpans reduces merged fleet spans to their
// worker-count-independent form: proc:name paths to the root plus attr
// JSON, sorted. Spans named "batch" are excluded — like the pace_pool_*
// counters, batch composition is timing-dependent by design.
func canonicalFleetSpans(t *testing.T, recs []obs.SpanRecord) []string {
	t.Helper()
	byID := make(map[uint64]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	var path func(r obs.SpanRecord) string
	path = func(r obs.SpanRecord) string {
		seg := r.Proc + ":" + r.Name
		if r.Parent == 0 {
			return seg
		}
		p, ok := byID[r.Parent]
		if !ok {
			t.Fatalf("span %d (%s) has dangling parent %d", r.ID, r.Name, r.Parent)
		}
		return path(p) + "/" + seg
	}
	var out []string
	for _, r := range recs {
		if r.Name == "batch" {
			continue
		}
		// The campaign root records its worker count as an attribute; that
		// is the one value this comparison varies on purpose.
		delete(r.Attrs, "workers")
		attrs, err := json.Marshal(r.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, path(r)+" "+string(attrs))
	}
	sort.Strings(out)
	return out
}

// TestIntegrationFleetTraceStitched is the tentpole acceptance test: one
// campaign through the fleet yields a single stitched trace — the
// seed-derived trace ID on every span from every process, one root, no
// orphans — and the per-tenant RED histograms carry slow-request
// exemplars whose trace IDs resolve into that same trace.
func TestIntegrationFleetTraceStitched(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11
	spans, regs := fleetTraceRun(t, seed, 2)

	wantTrace := obs.DeriveTraceID(seed)
	byID := make(map[uint64]obs.SpanRecord, len(spans))
	procs := map[string]int{}
	var roots, orphans int
	for _, r := range spans {
		byID[r.ID] = r
	}
	for _, r := range spans {
		if r.Trace != wantTrace {
			t.Fatalf("span %s [%s] carries trace %s, want %s", r.Name, r.Proc, r.Trace, wantTrace)
		}
		procs[r.Proc]++
		if r.Parent == 0 {
			roots++
			if r.Name != "campaign" || r.Proc != "pace" {
				t.Errorf("root span is %s [%s], want campaign [pace]", r.Name, r.Proc)
			}
		} else if _, ok := byID[r.Parent]; !ok {
			orphans++
		}
	}
	if roots != 1 {
		t.Errorf("stitched trace has %d roots, want 1", roots)
	}
	if orphans != 0 {
		t.Errorf("stitched trace has %d orphans, want 0", orphans)
	}
	for _, p := range []string{"pace", "pacerouter", "paced"} {
		if procs[p] == 0 {
			t.Errorf("no spans from proc %s (got %v)", p, procs)
		}
	}

	// The cross-process parent chain: a backend model_inference span must
	// hang under srv_estimate under the router's proxy_estimate under the
	// client's rpc_estimate.
	var chained bool
	for _, line := range canonicalFleetSpans(t, spans) {
		if strings.Contains(line, "pace:rpc_estimate/pacerouter:proxy_estimate/paced:srv_estimate/paced:model_inference") {
			chained = true
			break
		}
	}
	if !chained {
		t.Error("no rpc_estimate → proxy_estimate → srv_estimate → model_inference chain in the stitched trace")
	}

	// Per-tenant RED + exemplars: the router and the hosting backend both
	// metered the victim's estimate route, and at least one duration
	// bucket carries an exemplar resolving to the campaign trace.
	assertExemplar := func(reg *obs.Registry, name string) {
		t.Helper()
		snap := reg.Snapshot()
		h, ok := snap.Histograms[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty", name)
			return
		}
		for _, e := range h.Exemplars {
			if e.TraceID == wantTrace {
				return
			}
		}
		t.Errorf("histogram %s has no exemplar with trace %s (exemplars: %v)", name, wantTrace, h.Exemplars)
	}
	assertExemplar(regs[1], fmt.Sprintf("router_http_duration_seconds{route=%q,tenant=%q}", "estimate", "victim"))
	hosting := false
	for _, reg := range regs[2:] {
		name := fmt.Sprintf("paced_http_duration_seconds{route=%q,tenant=%q}", "estimate", "victim")
		if h, ok := reg.Snapshot().Histograms[name]; ok && h.Count > 0 {
			hosting = true
			assertExemplar(reg, name)
		}
	}
	if !hosting {
		t.Error("no backend metered the victim's estimate route")
	}
}

// TestIntegrationFleetTraceDeterministicAcrossWorkerCounts extends
// TestTraceDeterministicAcrossWorkerCounts to the remote path: the
// stitched span structure of a fixed-seed fleet campaign is identical
// whether the campaign labels serially or on 4 workers.
func TestIntegrationFleetTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11
	serialSpans, _ := fleetTraceRun(t, seed, 0)
	workerSpans, _ := fleetTraceRun(t, seed, 4)
	serial := canonicalFleetSpans(t, serialSpans)
	workers := canonicalFleetSpans(t, workerSpans)

	if len(serial) != len(workers) {
		t.Fatalf("workers=4 stitched %d spans, serial %d", len(workers), len(serial))
	}
	for i := range serial {
		if serial[i] != workers[i] {
			t.Errorf("span %d differs:\n  workers=4: %s\n  serial:    %s", i, workers[i], serial[i])
		}
	}
}
