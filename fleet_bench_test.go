// Fleet-tracing overhead benchmark: the same seeded campaign driven
// through a live pacerouter + paced backend with fleet telemetry off
// (nil Telemetry everywhere — every span/metric call degrades to a nil
// check) versus fully on (per-process tracers writing to io.Discard,
// live registries, per-tenant RED/SLO metering and exemplar capture on
// router and backend). The acceptance budget is enabled-vs-disabled
// overhead < 5% on this remote campaign path; results are recorded in
// BENCH_obs.json.
package pace

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/obs"
	"pace/internal/remote"
	"pace/internal/router"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
)

func benchFleetCampaign(b *testing.B, traced bool, workers int) {
	const seed = 11
	w, _, runCfg := remoteCampaignWorld(b, seed)

	newTel := func(proc string) *obs.Telemetry {
		if !traced {
			return nil
		}
		tel := &obs.Telemetry{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(io.Discard)}
		tel.Tracer.SetProc(proc)
		return tel
	}

	sCfg := targetserver.Config{Factory: experiments.TenantFactory(experiments.Config{}), Telemetry: newTel("paced")}
	reg := tenant.NewRegistry(sCfg.Factory, sCfg.TenantConfig())
	srv := targetserver.NewMulti(reg, sCfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close() //nolint:errcheck
	rt, err := router.New(router.Config{Backends: []string{"http://" + addr}, Telemetry: newTel("pacerouter")})
	if err != nil {
		b.Fatal(err)
	}
	raddr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close() //nolint:errcheck
	rurl := "http://" + raddr

	admin, err := remote.NewAdmin(rurl, remote.Options{ClientID: "fleet-bench"})
	if err != nil {
		b.Fatal(err)
	}
	defer admin.Close()

	runCfg.Workers = workers
	runCfg.Telemetry = newTel("pace")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Provision a fresh victim off the clock: the benchmark prices the
		// campaign's traced data path, not tenant bring-up.
		b.StopTimer()
		id := fmt.Sprintf("victim-%d", i)
		actx, acancel := context.WithTimeout(context.Background(), 10*time.Minute)
		_, err := admin.CreateTarget(actx, wire.TargetSpec{ID: id, Dataset: "dmv", Model: "fcn", Seed: seed})
		acancel()
		if err != nil {
			b.Fatalf("provisioning %s: %v", id, err)
		}
		b.StartTimer()

		c := core.Campaign{
			TargetURL: rurl + "/v1/targets/" + id, Workload: w.WGen,
			Test: w.Test, History: w.History,
			Config: runCfg, Seed: seed,
		}
		if _, err := c.Run(context.Background()); err != nil {
			b.Fatalf("fleet campaign: %v", err)
		}
	}
}

// BenchmarkFleetTraceOverhead prices fleet-wide tracing on the remote
// campaign path at the worker counts BENCH_obs.json tracks.
func BenchmarkFleetTraceOverhead(b *testing.B) {
	for _, w := range []int{0, 4} {
		b.Run(fmt.Sprintf("disabled/workers=%d", w), func(b *testing.B) { benchFleetCampaign(b, false, w) })
		b.Run(fmt.Sprintf("enabled/workers=%d", w), func(b *testing.B) { benchFleetCampaign(b, true, w) })
	}
}
