// Remote integration tests: the full PACE campaign driven over the wire
// — RemoteTarget → HTTP → targetserver → black box — must be
// indistinguishable from the in-process campaign. The wire carries
// estimates and cardinalities as exact float64 bit patterns, so for a
// fixed seed the two runs are not merely close: speculation verdict,
// convergence curve, poison workload and final damage are bit-identical.
package pace

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/faults"
	"pace/internal/metrics"
	"pace/internal/targetserver"
	"pace/internal/workload"
)

// remoteCampaignWorld builds one side of the comparison: a world, its
// trained black-box victim, and the campaign config. Both sides call it
// with the same seed, yielding twin victims with identical weights.
func remoteCampaignWorld(t *testing.T, seed int64) (*experiments.World, *ce.BlackBox, core.Config) {
	t.Helper()
	cfg := experiments.Config{Seed: seed}.WithDefaults()
	w, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bb := w.NewBlackBox(ce.FCN, 1)
	// ForceType: speculation's verdict rides a latency side-channel
	// (probe timing), which a network hop legitimately perturbs. The
	// determinism contract covers everything downstream of the verdict,
	// so the comparison pins the type and exercises that.
	fcn := ce.FCN
	runCfg := core.Config{
		NumPoison: cfg.NumPoison,
		ForceType: &fcn,
		Generator: w.GenCfg(),
		Trainer:   w.TrainerCfg(),
	}
	runCfg.Surrogate.Queries = cfg.TrainQueries
	runCfg.Surrogate.HP = w.HP()
	runCfg.Surrogate.Train = w.TrainCfg()
	return w, bb, runCfg
}

func meanQErr(bb *ce.BlackBox, w *experiments.World) float64 {
	return metrics.Mean(bb.QErrors(workload.Queries(w.Test), experiments.Cards(w.Test)))
}

// TestIntegrationRemoteCampaignMatchesInProcess runs the same seeded
// campaign twice — once against the victim in-process, once against its
// twin served by targetserver over real HTTP — and requires bit-equal
// results end to end.
func TestIntegrationRemoteCampaignMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11

	wLocal, bbLocal, cfgLocal := remoteCampaignWorld(t, seed)
	wRemote, bbRemote, cfgRemote := remoteCampaignWorld(t, seed)

	// Twin check: before any attack the two victims answer identically.
	beforeLocal, beforeRemote := meanQErr(bbLocal, wLocal), meanQErr(bbRemote, wRemote)
	if math.Float64bits(beforeLocal) != math.Float64bits(beforeRemote) {
		t.Fatalf("twin victims disagree before attack: %v vs %v", beforeLocal, beforeRemote)
	}

	srv := targetserver.New(bbRemote, wRemote.DS.Meta, targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	local := core.Campaign{
		Target: bbLocal, Workload: wLocal.WGen,
		Test: wLocal.Test, History: wLocal.History,
		Config: cfgLocal, Seed: seed,
	}
	resLocal, err := local.Run(context.Background())
	if err != nil {
		t.Fatalf("in-process campaign: %v", err)
	}

	over := core.Campaign{
		TargetURL: hs.URL, Workload: wRemote.WGen,
		Test: wRemote.Test, History: wRemote.History,
		Config: cfgRemote, Seed: seed,
	}
	resRemote, err := over.Run(context.Background())
	if err != nil {
		t.Fatalf("remote campaign: %v", err)
	}

	if resLocal.SpeculatedType != resRemote.SpeculatedType {
		t.Errorf("speculation verdict differs: %v in-process vs %v remote",
			resLocal.SpeculatedType, resRemote.SpeculatedType)
	}
	if len(resLocal.Objective) != len(resRemote.Objective) {
		t.Fatalf("objective curves differ in length: %d vs %d",
			len(resLocal.Objective), len(resRemote.Objective))
	}
	for i := range resLocal.Objective {
		if math.Float64bits(resLocal.Objective[i]) != math.Float64bits(resRemote.Objective[i]) {
			t.Fatalf("objective diverges at loop %d: %v vs %v (wire not bit-exact?)",
				i, resLocal.Objective[i], resRemote.Objective[i])
		}
	}
	if len(resLocal.Poison) != len(resRemote.Poison) {
		t.Fatalf("poison sizes differ: %d vs %d", len(resLocal.Poison), len(resRemote.Poison))
	}
	for i := range resLocal.Poison {
		if resLocal.Poison[i].Key() != resRemote.Poison[i].Key() {
			t.Fatalf("poison query %d differs across transports", i)
		}
		if math.Float64bits(resLocal.PoisonCards[i]) != math.Float64bits(resRemote.PoisonCards[i]) {
			t.Fatalf("poison card %d differs: %v vs %v",
				i, resLocal.PoisonCards[i], resRemote.PoisonCards[i])
		}
	}

	// The poison crossed the wire into the remote victim's retraining;
	// both twins must land on the bit-identical post-attack damage.
	afterLocal, afterRemote := meanQErr(bbLocal, wLocal), meanQErr(bbRemote, wRemote)
	t.Logf("q-error before=%.3f after: in-process=%.3f remote=%.3f",
		beforeLocal, afterLocal, afterRemote)
	if math.Float64bits(afterLocal) != math.Float64bits(afterRemote) {
		t.Errorf("post-attack q-error differs: %v in-process vs %v remote", afterLocal, afterRemote)
	}
	if afterLocal <= beforeLocal {
		t.Errorf("attack did not degrade accuracy: %.3f → %.3f", beforeLocal, afterLocal)
	}
}

// TestIntegrationRemoteCampaignUnderFaults composes the fault injector
// with the remote transport: a flaky client-side network plus the real
// HTTP hop, with the campaign's retry layer recovering. The attack must
// still land.
func TestIntegrationRemoteCampaignUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11
	w, bb, runCfg := remoteCampaignWorld(t, seed)
	before := meanQErr(bb, w)

	srv := targetserver.New(bb, w.DS.Meta, targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	runCfg.Faults = faults.NewInjector(faults.Flaky(), seed)
	c := core.Campaign{
		TargetURL: hs.URL, Workload: w.WGen,
		Test: w.Test, History: w.History,
		Config: runCfg, Seed: seed,
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("faulted remote campaign: %v", err)
	}
	if res.FaultCounters == nil || res.FaultCounters.Failures() == 0 {
		t.Fatalf("flaky profile injected nothing: %+v", res.FaultCounters)
	}
	after := meanQErr(bb, w)
	t.Logf("faulted remote attack: before=%.3f after=%.3f injected failures=%d",
		before, after, res.FaultCounters.Failures())
	if after <= before {
		t.Errorf("attack through faults+wire did not degrade accuracy: %.3f → %.3f", before, after)
	}
}
