// Remote integration tests: the full PACE campaign driven over the wire
// — RemoteTarget → HTTP → targetserver → black box — must be
// indistinguishable from the in-process campaign. The wire carries
// estimates and cardinalities as exact float64 bit patterns, so for a
// fixed seed the two runs are not merely close: speculation verdict,
// convergence curve, poison workload and final damage are bit-identical.
package pace

import (
	"context"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/faults"
	"pace/internal/loadgen"
	"pace/internal/metrics"
	"pace/internal/remote"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/workload"
)

// remoteCampaignWorld builds one side of the comparison: a world, its
// trained black-box victim, and the campaign config. Both sides call it
// with the same seed, yielding twin victims with identical weights.
func remoteCampaignWorld(t testing.TB, seed int64) (*experiments.World, *ce.BlackBox, core.Config) {
	t.Helper()
	cfg := experiments.Config{Seed: seed}.WithDefaults()
	w, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bb := w.NewBlackBox(ce.FCN, 1)
	// ForceType: speculation's verdict rides a latency side-channel
	// (probe timing), which a network hop legitimately perturbs. The
	// determinism contract covers everything downstream of the verdict,
	// so the comparison pins the type and exercises that.
	fcn := ce.FCN
	runCfg := core.Config{
		NumPoison: cfg.NumPoison,
		ForceType: &fcn,
		Generator: w.GenCfg(),
		Trainer:   w.TrainerCfg(),
	}
	runCfg.Surrogate.Queries = cfg.TrainQueries
	runCfg.Surrogate.HP = w.HP()
	runCfg.Surrogate.Train = w.TrainCfg()
	return w, bb, runCfg
}

func meanQErr(bb *ce.BlackBox, w *experiments.World) float64 {
	return metrics.Mean(bb.QErrors(workload.Queries(w.Test), experiments.Cards(w.Test)))
}

// TestIntegrationRemoteCampaignMatchesInProcess runs the same seeded
// campaign twice — once against the victim in-process, once against its
// twin served by targetserver over real HTTP — and requires bit-equal
// results end to end.
func TestIntegrationRemoteCampaignMatchesInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11

	wLocal, bbLocal, cfgLocal := remoteCampaignWorld(t, seed)
	wRemote, bbRemote, cfgRemote := remoteCampaignWorld(t, seed)

	// Twin check: before any attack the two victims answer identically.
	beforeLocal, beforeRemote := meanQErr(bbLocal, wLocal), meanQErr(bbRemote, wRemote)
	if math.Float64bits(beforeLocal) != math.Float64bits(beforeRemote) {
		t.Fatalf("twin victims disagree before attack: %v vs %v", beforeLocal, beforeRemote)
	}

	srv := targetserver.New(bbRemote, wRemote.DS.Meta, targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	local := core.Campaign{
		Target: bbLocal, Workload: wLocal.WGen,
		Test: wLocal.Test, History: wLocal.History,
		Config: cfgLocal, Seed: seed,
	}
	resLocal, err := local.Run(context.Background())
	if err != nil {
		t.Fatalf("in-process campaign: %v", err)
	}

	over := core.Campaign{
		TargetURL: hs.URL, Workload: wRemote.WGen,
		Test: wRemote.Test, History: wRemote.History,
		Config: cfgRemote, Seed: seed,
	}
	resRemote, err := over.Run(context.Background())
	if err != nil {
		t.Fatalf("remote campaign: %v", err)
	}

	if resLocal.SpeculatedType != resRemote.SpeculatedType {
		t.Errorf("speculation verdict differs: %v in-process vs %v remote",
			resLocal.SpeculatedType, resRemote.SpeculatedType)
	}
	if len(resLocal.Objective) != len(resRemote.Objective) {
		t.Fatalf("objective curves differ in length: %d vs %d",
			len(resLocal.Objective), len(resRemote.Objective))
	}
	for i := range resLocal.Objective {
		if math.Float64bits(resLocal.Objective[i]) != math.Float64bits(resRemote.Objective[i]) {
			t.Fatalf("objective diverges at loop %d: %v vs %v (wire not bit-exact?)",
				i, resLocal.Objective[i], resRemote.Objective[i])
		}
	}
	if len(resLocal.Poison) != len(resRemote.Poison) {
		t.Fatalf("poison sizes differ: %d vs %d", len(resLocal.Poison), len(resRemote.Poison))
	}
	for i := range resLocal.Poison {
		if resLocal.Poison[i].Key() != resRemote.Poison[i].Key() {
			t.Fatalf("poison query %d differs across transports", i)
		}
		if math.Float64bits(resLocal.PoisonCards[i]) != math.Float64bits(resRemote.PoisonCards[i]) {
			t.Fatalf("poison card %d differs: %v vs %v",
				i, resLocal.PoisonCards[i], resRemote.PoisonCards[i])
		}
	}

	// The poison crossed the wire into the remote victim's retraining;
	// both twins must land on the bit-identical post-attack damage.
	afterLocal, afterRemote := meanQErr(bbLocal, wLocal), meanQErr(bbRemote, wRemote)
	t.Logf("q-error before=%.3f after: in-process=%.3f remote=%.3f",
		beforeLocal, afterLocal, afterRemote)
	if math.Float64bits(afterLocal) != math.Float64bits(afterRemote) {
		t.Errorf("post-attack q-error differs: %v in-process vs %v remote", afterLocal, afterRemote)
	}
	if afterLocal <= beforeLocal {
		t.Errorf("attack did not degrade accuracy: %.3f → %.3f", beforeLocal, afterLocal)
	}
}

// TestIntegrationRemoteCampaignBinaryStreamingBitExact is the protocol
// v2 acceptance run: the campaign crosses the wire on the binary codec
// with the streamed-execute protocol (chunked uploads, async
// completion), fault-free, and must still be bit-identical to the
// in-process reference — the codec and the streaming pipeline cost
// zero bits.
func TestIntegrationRemoteCampaignBinaryStreamingBitExact(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11

	wLocal, bbLocal, cfgLocal := remoteCampaignWorld(t, seed)
	wRemote, bbRemote, cfgRemote := remoteCampaignWorld(t, seed)

	srv := targetserver.New(bbRemote, wRemote.DS.Meta, targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	local := core.Campaign{
		Target: bbLocal, Workload: wLocal.WGen,
		Test: wLocal.Test, History: wLocal.History,
		Config: cfgLocal, Seed: seed,
	}
	resLocal, err := local.Run(context.Background())
	if err != nil {
		t.Fatalf("in-process campaign: %v", err)
	}

	over := core.Campaign{
		TargetURL: hs.URL, Workload: wRemote.WGen,
		Test: wRemote.Test, History: wRemote.History,
		Config: cfgRemote, Seed: seed,
		Remote: remote.Options{
			Codec:         "binary",
			StreamExecute: true,
			StreamChunk:   64, // several chunks per poison batch
			ClientID:      "binary-stream-acceptance",
		},
	}
	resRemote, err := over.Run(context.Background())
	if err != nil {
		t.Fatalf("binary streaming campaign: %v", err)
	}

	if resLocal.SpeculatedType != resRemote.SpeculatedType {
		t.Errorf("speculation verdict differs: %v in-process vs %v binary-streaming",
			resLocal.SpeculatedType, resRemote.SpeculatedType)
	}
	if len(resLocal.Objective) != len(resRemote.Objective) {
		t.Fatalf("objective curves differ in length: %d vs %d",
			len(resLocal.Objective), len(resRemote.Objective))
	}
	for i := range resLocal.Objective {
		if math.Float64bits(resLocal.Objective[i]) != math.Float64bits(resRemote.Objective[i]) {
			t.Fatalf("objective diverges at loop %d: %v vs %v (binary frame not bit-exact?)",
				i, resLocal.Objective[i], resRemote.Objective[i])
		}
	}
	if len(resLocal.Poison) != len(resRemote.Poison) {
		t.Fatalf("poison sizes differ: %d vs %d", len(resLocal.Poison), len(resRemote.Poison))
	}
	for i := range resLocal.Poison {
		if resLocal.Poison[i].Key() != resRemote.Poison[i].Key() {
			t.Fatalf("poison query %d differs across transports", i)
		}
		if math.Float64bits(resLocal.PoisonCards[i]) != math.Float64bits(resRemote.PoisonCards[i]) {
			t.Fatalf("poison card %d differs: %v vs %v",
				i, resLocal.PoisonCards[i], resRemote.PoisonCards[i])
		}
	}

	afterLocal, afterRemote := meanQErr(bbLocal, wLocal), meanQErr(bbRemote, wRemote)
	t.Logf("binary+streaming q-error after attack: in-process=%.3f remote=%.3f", afterLocal, afterRemote)
	if math.Float64bits(afterLocal) != math.Float64bits(afterRemote) {
		t.Errorf("post-attack q-error differs: %v in-process vs %v binary-streaming",
			afterLocal, afterRemote)
	}
}

// TestIntegrationRemoteCampaignUnderFaults composes the fault injector
// with the remote transport: a flaky client-side network plus the real
// HTTP hop, with the campaign's retry layer recovering. The attack must
// still land.
func TestIntegrationRemoteCampaignUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11
	w, bb, runCfg := remoteCampaignWorld(t, seed)
	before := meanQErr(bb, w)

	srv := targetserver.New(bb, w.DS.Meta, targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	runCfg.Faults = faults.NewInjector(faults.Flaky(), seed)
	c := core.Campaign{
		TargetURL: hs.URL, Workload: w.WGen,
		Test: w.Test, History: w.History,
		Config: runCfg, Seed: seed,
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatalf("faulted remote campaign: %v", err)
	}
	if res.FaultCounters == nil || res.FaultCounters.Failures() == 0 {
		t.Fatalf("flaky profile injected nothing: %+v", res.FaultCounters)
	}
	after := meanQErr(bb, w)
	t.Logf("faulted remote attack: before=%.3f after=%.3f injected failures=%d",
		before, after, res.FaultCounters.Failures())
	if after <= before {
		t.Errorf("attack through faults+wire did not degrade accuracy: %.3f → %.3f", before, after)
	}
}

// isolationRun executes one arm of the tenant-isolation comparison: a
// two-tenant paced hosting the victim as tenant "a" and an unrelated
// Linear world as tenant "b", with the seeded campaign routed at a. When
// hammer is true, an open-loop load generator floods b's estimate
// endpoint for the whole campaign. Returns the campaign result and the
// victim's post-attack mean q-error.
func isolationRun(t *testing.T, seed int64, hammer bool) (*core.Result, float64) {
	t.Helper()
	w, bb, runCfg := remoteCampaignWorld(t, seed)

	cfg := targetserver.Config{}
	reg := tenant.NewRegistry(nil, cfg.TenantConfig())
	if _, err := reg.Add(tenant.Spec{ID: "a"}, bb, w.DS.Meta); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(tenant.Spec{ID: "b"}, w.NewBlackBox(ce.Linear, 2), w.DS.Meta); err != nil {
		t.Fatal(err)
	}
	srv := targetserver.NewMulti(reg, cfg)
	hs := httptest.NewServer(srv.Handler())
	defer func() {
		hs.Close()
		srv.Close()
	}()

	lctx, lcancel := context.WithCancel(context.Background())
	defer lcancel()
	var (
		lwg sync.WaitGroup
		rep loadgen.Report
	)
	if hammer {
		rt, err := remote.New(hs.URL, remote.Options{Tenant: "b", ClientID: "hammer"})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			rep = loadgen.Run(lctx, rt.EstimateContext, workload.Queries(w.History), loadgen.Config{
				QPS:      200,
				Duration: 10 * time.Minute, // canceled when the campaign ends
			})
		}()
	}

	c := core.Campaign{
		TargetURL: hs.URL + "/v1/targets/a", Workload: w.WGen,
		Test: w.Test, History: w.History,
		Config: runCfg, Seed: seed,
	}
	res, err := c.Run(context.Background())
	lcancel()
	lwg.Wait()
	if err != nil {
		t.Fatalf("campaign (hammer=%v): %v", hammer, err)
	}
	if hammer && rep.OK == 0 {
		t.Fatalf("load generator landed no traffic on tenant b: %+v", rep)
	}
	if hammer {
		t.Logf("tenant b absorbed %d estimates (%d shed) during the attack on a", rep.OK, rep.Shed)
	}
	return res, meanQErr(bb, w)
}

// TestIntegrationTenantIsolationDeterminism is the multi-tenant
// determinism contract: a fixed-seed campaign against tenant A is
// bit-identical whether or not tenant B on the same paced is being
// hammered concurrently. Per-tenant model goroutines and admission
// queues mean B's load can cost A only latency, never bits.
func TestIntegrationTenantIsolationDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	const seed = 11

	// The in-process reference: a third twin world, no server at all.
	wIP, bbIP, cfgIP := remoteCampaignWorld(t, seed)
	ip := core.Campaign{
		Target: bbIP, Workload: wIP.WGen,
		Test: wIP.Test, History: wIP.History,
		Config: cfgIP, Seed: seed,
	}
	ipRes, err := ip.Run(context.Background())
	if err != nil {
		t.Fatalf("in-process campaign: %v", err)
	}
	afterIP := meanQErr(bbIP, wIP)

	quiet, afterQuiet := isolationRun(t, seed, false)
	loaded, afterLoaded := isolationRun(t, seed, true)

	// The loaded remote run must match the in-process reference, not just
	// the quiet remote run: tenancy + concurrent load cost zero bits.
	if len(ipRes.Poison) != len(loaded.Poison) {
		t.Fatalf("in-process vs loaded poison sizes differ: %d vs %d",
			len(ipRes.Poison), len(loaded.Poison))
	}
	for i := range ipRes.Poison {
		if ipRes.Poison[i].Key() != loaded.Poison[i].Key() {
			t.Fatalf("poison query %d differs between in-process and loaded remote", i)
		}
	}
	if math.Float64bits(afterIP) != math.Float64bits(afterLoaded) {
		t.Errorf("post-attack q-error: in-process %v vs loaded remote %v", afterIP, afterLoaded)
	}

	if quiet.SpeculatedType != loaded.SpeculatedType {
		t.Errorf("speculation verdict differs under load: %v vs %v",
			quiet.SpeculatedType, loaded.SpeculatedType)
	}
	if len(quiet.Objective) != len(loaded.Objective) {
		t.Fatalf("objective curves differ in length: %d vs %d",
			len(quiet.Objective), len(loaded.Objective))
	}
	for i := range quiet.Objective {
		if math.Float64bits(quiet.Objective[i]) != math.Float64bits(loaded.Objective[i]) {
			t.Fatalf("objective diverges at loop %d under load: %v vs %v",
				i, quiet.Objective[i], loaded.Objective[i])
		}
	}
	if len(quiet.Poison) != len(loaded.Poison) {
		t.Fatalf("poison sizes differ: %d vs %d", len(quiet.Poison), len(loaded.Poison))
	}
	for i := range quiet.Poison {
		if quiet.Poison[i].Key() != loaded.Poison[i].Key() {
			t.Fatalf("poison query %d differs under load", i)
		}
		if math.Float64bits(quiet.PoisonCards[i]) != math.Float64bits(loaded.PoisonCards[i]) {
			t.Fatalf("poison card %d differs under load: %v vs %v",
				i, quiet.PoisonCards[i], loaded.PoisonCards[i])
		}
	}
	t.Logf("post-attack q-error: quiet=%.3f loaded=%.3f", afterQuiet, afterLoaded)
	if math.Float64bits(afterQuiet) != math.Float64bits(afterLoaded) {
		t.Errorf("post-attack q-error differs under load: %v vs %v", afterQuiet, afterLoaded)
	}
}
