// Command experiments regenerates the paper's tables and figures on the
// synthetic substrate and prints them in paper layout. Each experiment is
// selectable by its paper label; "all" runs the entire evaluation.
//
// Example:
//
//	experiments -exp fig6 -datasets dmv,tpch
//	experiments -exp all -full > results.txt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pace/internal/ce"
	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/remote"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: fig6, table5, table6, table7, fig10, fig11, table8, table9, table10, fig12, fig13, fig14, fig15, ablations, advisor, traditional, regularization, drift, chaos, matrix or all")
		datasets  = flag.String("datasets", "", "comma-separated dataset subset (default: the experiment's paper set)")
		models    = flag.String("models", "", "comma-separated model subset for -exp matrix (default: all six)")
		targetURL = flag.String("target-url", "", "for -exp matrix: host every victim as a tenant of the paced service at this URL instead of in-process")
		authToken = cli.AuthToken()
		full      = flag.Bool("full", false, "use the heavy profile (hours) instead of the quick one (minutes)")
		seed      = cli.Seed()
		workers   = cli.Workers()
		obsFlags  = cli.Obs()
	)
	flag.Parse()

	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the harness context: the experiment in
	// flight stops at its next campaign step and telemetry still flushes.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Seed: *seed, Workers: *workers, Telemetry: tel, Ctx: ctx}.WithDefaults()
	if *full {
		cfg = experiments.Full()
		cfg.Seed = *seed
		cfg.Workers = *workers
		cfg.Telemetry = tel
		cfg.Ctx = ctx
	}

	var dsList []string
	if *datasets != "" {
		dsList = strings.Split(*datasets, ",")
	}

	// The matrix experiment is its own mode, not part of "all": it prints
	// the attack matrix alone — byte-identical whether the victims are
	// in-process or tenants of a remote paced — so CI can diff the two.
	if strings.ToLower(*exp) == "matrix" {
		if err := runMatrixMode(os.Stdout, cfg, dsList, *models, *targetURL, *authToken); err != nil {
			fmt.Fprintln(os.Stderr, "matrix failed:", err)
			obsShutdown()
			os.Exit(1)
		}
		if err := obsShutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry shutdown:", err)
			os.Exit(1)
		}
		return
	}

	type runner struct {
		name string
		run  func() error
	}
	out := os.Stdout
	all := []runner{
		{"fig6", func() error { return experiments.RunQErrorTables(out, cfg, dsList) }},
		{"table6", func() error { return experiments.RunSpeculation(out, cfg, dsList) }},
		{"table7", func() error { return experiments.RunWrongType(out, cfg, nil) }},
		{"fig10", func() error { return experiments.RunTrainingStrategy(out, cfg, nil) }},
		{"fig11", func() error { return experiments.RunHyperMismatch(out, cfg) }},
		{"table8", func() error { return experiments.RunBudget(out, cfg, dsList) }},
		{"table9", func() error { return experiments.RunOverhead(out, cfg, dsList) }},
		{"table10", func() error { return experiments.RunOverheadByCount(out, cfg) }},
		{"fig12", func() error { return experiments.RunBasicVsOptimized(out, cfg, nil) }},
		{"fig13", func() error { return experiments.RunDetectorEffect(out, cfg) }},
		{"fig14", func() error { return experiments.RunIncremental(out, cfg, dsList) }},
		{"fig15", func() error { return experiments.RunConvergence(out, cfg, dsList) }},
		{"ablations", func() error { return experiments.RunAblations(out, cfg) }},
		{"advisor", func() error { return experiments.RunRobustnessAdvisor(out, cfg, "dmv") }},
		{"traditional", func() error { return experiments.RunTraditionalComparison(out, cfg, "tpch") }},
		{"regularization", func() error { return experiments.RunRegularizationDefense(out, cfg) }},
		{"drift", func() error { return experiments.RunDriftStudy(out, cfg) }},
		{"chaos", func() error { return experiments.RunChaos(out, cfg) }},
	}
	aliases := map[string]string{
		"fig7": "fig6", "fig8": "fig6", "fig9": "fig6",
		"table3": "fig6", "table4": "fig6", "table5": "fig6",
	}

	want := strings.ToLower(*exp)
	if a, ok := aliases[want]; ok {
		fmt.Fprintf(out, "(%s is produced by the %s run)\n", want, a)
		want = a
	}

	start := time.Now()
	ran := false
	for _, r := range all {
		if want != "all" && want != r.name {
			continue
		}
		ran = true
		if ctx.Err() != nil {
			break
		}
		if err := r.run(); err != nil {
			if errors.Is(err, context.Canceled) {
				break
			}
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", r.name, err)
			obsShutdown()
			os.Exit(1)
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "interrupted; flushing telemetry")
		if err := obsShutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry shutdown:", err)
		}
		os.Exit(1)
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		obsShutdown()
		os.Exit(2)
	}
	fmt.Fprintf(out, "\ncompleted in %v\n", time.Since(start).Round(time.Second))
	if err := obsShutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry shutdown:", err)
		os.Exit(1)
	}
}

// runMatrixMode runs the (model × method) attack matrix on each dataset —
// in-process, or with every victim provisioned as a tenant of a live
// paced (targetURL) — and prints the mean and percentile tables. No
// timing line: the output of a fixed seed is byte-identical either way,
// which is exactly what the remote-integration CI job diffs.
func runMatrixMode(out *os.File, cfg experiments.Config, dsList []string, models, targetURL, authToken string) error {
	types := ce.Types()
	if models != "" {
		types = nil
		for _, name := range strings.Split(models, ",") {
			typ, err := ce.ParseType(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			types = append(types, typ)
		}
	}
	if dsList == nil {
		dsList = []string{"dmv"}
	}
	for _, name := range dsList {
		var (
			res *experiments.MatrixResult
			err error
		)
		if targetURL != "" {
			res, err = experiments.RunMatrixRemote(name, types, cfg, targetURL, remote.Options{
				ClientID:  "experiments-matrix",
				AuthToken: authToken,
			})
		} else {
			res, err = experiments.RunMatrix(name, types, cfg)
		}
		if err != nil {
			return err
		}
		res.PrintMean(out)
		res.PrintPercentiles(out, types)
	}
	return nil
}
