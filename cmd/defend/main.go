// Command defend runs the defensive workflow of the paper's §8: red-team
// your own database with several independent PACE attacks, train a
// screening classifier on the pooled poison versus the historical
// workload, and report how well the screen blocks a fresh, held-out
// attack — including the target's test accuracy with and without the
// screen in front of its update path.
//
// Example:
//
//	defend -dataset dmv -model fcn -redteam 3
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"pace/internal/ce"
	"pace/internal/cli"
	"pace/internal/defense"
	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/workload"
)

func main() {
	var (
		datasetName = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		modelName   = flag.String("model", "fcn", "target CE model type")
		redteam     = flag.Int("redteam", 3, "number of independent red-team attacks to train the screen on")
		seed        = cli.Seed()
		workers     = cli.Workers()
		obsFlags    = cli.Obs()
	)
	flag.Parse()

	typ, err := ce.ParseType(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the red-team campaigns and still flushes
	// the trace/metrics files on the way out.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Seed: *seed, Workers: *workers, Telemetry: tel, Ctx: ctx}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	target := w.NewBlackBox(typ, 1)
	qs := workload.Queries(w.Test)
	cards := experiments.Cards(w.Test)
	clean := metrics.Mean(target.QErrors(qs, cards))
	fmt.Printf("target %s on %s: clean mean Q-error %.2f\n", typ, *datasetName, clean)

	attack := func(off int64) ([]*query.Query, []float64) {
		sur := w.NewSurrogate(target, typ, off)
		tr := w.TrainPACE(sur, nil, off)
		return tr.GeneratePoison(ctx, cfg.NumPoison)
	}
	interrupted := func() {
		fmt.Fprintln(os.Stderr, "defend: interrupted; flushing telemetry")
		if err := obsShutdown(); err != nil {
			fmt.Fprintln(os.Stderr, "telemetry shutdown:", err)
		}
		os.Exit(1)
	}
	encode := func(list []*query.Query) [][]float64 {
		out := make([][]float64, len(list))
		for i, q := range list {
			out[i] = q.Encode(w.DS.Meta)
		}
		return out
	}

	var pool [][]float64
	for off := int64(1); off <= int64(*redteam); off++ {
		pq, _ := attack(off)
		if ctx.Err() != nil {
			interrupted()
		}
		pool = append(pool, encode(pq)...)
		fmt.Printf("red-team attack %d/%d: %d poison queries collected\n", off, *redteam, len(pq))
	}
	screen := defense.New(w.DS.Meta.Dim(), defense.Config{}, rand.New(rand.NewSource(*seed)))
	screen.Train(pool, experiments.Encodings(w.History, w.DS))

	// Fresh, held-out attack.
	poisonQ, poisonC := attack(int64(*redteam) + 1)
	if ctx.Err() != nil {
		interrupted()
	}
	eval := screen.Evaluate(encode(poisonQ), experiments.Encodings(w.WGen.Random(100), w.DS))

	unscreened := w.NewBlackBox(typ, 1)
	unscreened.ExecuteWorkload(ctx, poisonQ, poisonC)
	hit := metrics.Mean(unscreened.QErrors(qs, cards))

	accepted, rejected := screen.Filter(w.DS.Meta, poisonQ)
	acceptedCards := make([]float64, len(accepted))
	idx := make(map[*query.Query]float64, len(poisonQ))
	for i, q := range poisonQ {
		idx[q] = poisonC[i]
	}
	for i, q := range accepted {
		acceptedCards[i] = idx[q]
	}
	screened := w.NewBlackBox(typ, 1)
	screened.ExecuteWorkload(ctx, accepted, acceptedCards)
	defended := metrics.Mean(screened.QErrors(qs, cards))

	fmt.Printf("\nscreen vs fresh attack: recall %.0f%%, precision %.0f%%, false-positive rate %.0f%%\n",
		eval.Recall()*100, eval.Precision()*100, eval.FalsePositiveRate()*100)
	fmt.Printf("poison blocked: %d/%d\n", len(rejected), len(poisonQ))
	fmt.Printf("mean test Q-error: clean %.2f | attacked %.2f | attacked behind screen %.2f\n",
		clean, hit, defended)
	if err := obsShutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "telemetry shutdown:", err)
		os.Exit(1)
	}
}
