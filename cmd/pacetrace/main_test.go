package main

import (
	"testing"

	"pace/internal/obs"
)

// fleetRecords models a minimal three-process trace: a client root with
// an rpc child, a router proxy span under the rpc, a backend srv span
// under the proxy, plus an orphan (its parent was never flushed) and a
// second, unrelated trace that stitching must set aside.
func fleetRecords() []obs.SpanRecord {
	const trace = "0123456789abcdef0123456789abcdef"
	return []obs.SpanRecord{
		{ID: 1, Trace: trace, Proc: "pace", Name: "campaign", StartUS: 1000, DurUS: 900},
		{ID: 2, Parent: 1, Trace: trace, Proc: "pace", Name: "rpc_estimate", StartUS: 1100, DurUS: 400},
		{ID: 30, Parent: 2, Trace: trace, Proc: "pacerouter", Name: "proxy_estimate", StartUS: 1150, DurUS: 300},
		{ID: 40, Parent: 30, Trace: trace, Proc: "paced", Name: "srv_estimate", StartUS: 1100, DurUS: 200}, // starts "before" parent: skew
		{ID: 50, Parent: 99, Trace: trace, Proc: "paced", Name: "model_inference", StartUS: 1300, DurUS: 50},
		{ID: 7, Trace: "ffffffffffffffffffffffffffffffff", Proc: "pacerouter", Name: "rebuild", StartUS: 2000, DurUS: 10},
	}
}

func TestStitchSummary(t *testing.T) {
	s := stitch(fleetRecords(), "").summary()
	if s.Trace != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("primary trace = %s; want the larger trace", s.Trace)
	}
	if s.Traces != 2 {
		t.Errorf("traces = %d, want 2", s.Traces)
	}
	if s.Spans != 5 || s.Roots != 1 || s.Orphans != 1 {
		t.Errorf("spans/roots/orphans = %d/%d/%d, want 5/1/1", s.Spans, s.Roots, s.Orphans)
	}
	if s.Skewed != 1 {
		t.Errorf("skewed = %d, want 1 (srv_estimate starts before proxy_estimate)", s.Skewed)
	}
	for _, p := range []string{"pace", "pacerouter", "paced"} {
		if s.Procs[p] == 0 {
			t.Errorf("procs[%s] = 0, want > 0", p)
		}
	}
}

func TestStitchTreeShape(t *testing.T) {
	tr := stitch(fleetRecords(), "")
	if len(tr.roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tr.roots))
	}
	// campaign → rpc_estimate → proxy_estimate → srv_estimate
	n := tr.roots[0]
	for _, want := range []string{"campaign", "rpc_estimate", "proxy_estimate", "srv_estimate"} {
		if n.rec.Name != want {
			t.Fatalf("chain node = %s, want %s", n.rec.Name, want)
		}
		if len(n.children) == 0 {
			n = nil
			break
		}
		n = n.children[0]
	}
	if tr.orphans[0].Name != "model_inference" {
		t.Errorf("orphan = %s, want model_inference", tr.orphans[0].Name)
	}
	path := tr.criticalPath()
	if len(path) != 4 || path[len(path)-1].rec.Name != "srv_estimate" {
		t.Errorf("critical path len %d ending %q, want 4 ending srv_estimate", len(path), path[len(path)-1].rec.Name)
	}
}

func TestStitchExplicitTraceFilter(t *testing.T) {
	s := stitch(fleetRecords(), "ffffffffffffffffffffffffffffffff").summary()
	if s.Spans != 1 || s.Roots != 1 || s.Procs["pacerouter"] != 1 {
		t.Errorf("filtered trace summary = %+v, want the single rebuild span", s)
	}
}
