// pacetrace merges per-process JSONL span files into one stitched fleet
// trace and renders it.
//
// Each process in a fleet run (pace client, pacerouter, paced backends)
// writes its own span file via -trace. Spans carry globally-unique IDs
// (per-process random base mixed into a sequential counter) and the
// trace/parent linkage rides the X-Pace-Trace header, so stitching is a
// pure merge: concatenate the files, index by span ID, hang children
// under parents.
//
// Usage:
//
//	pacetrace [-json] [-trace <32-hex id>] file.jsonl...
//
// Default output is a human view: a summary header, a text flamegraph of
// the stitched tree, and critical-path attribution. -json instead prints
// a machine-readable summary ({spans, roots, orphans, procs, ...}) for
// CI assertions.
//
// Clock skew: the files come from different processes whose clocks need
// not agree. A child whose start precedes its parent's start is
// annotated with the negative offset rather than "fixed" — the structure
// is trustworthy (it came from explicit parent links), the absolute
// timestamps are not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pace/internal/obs"
)

func main() {
	jsonOut := flag.Bool("json", false, "print a machine-readable summary instead of the tree")
	traceID := flag.String("trace", "", "stitch only this trace ID (default: the trace with the most spans)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pacetrace [-json] [-trace <id>] file.jsonl...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var all []obs.SpanRecord
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pacetrace: %v\n", err)
			os.Exit(1)
		}
		recs, err := obs.ParseTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pacetrace: %s: %v\n", path, err)
			os.Exit(1)
		}
		all = append(all, recs...)
	}

	tree := stitch(all, *traceID)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tree.summary()); err != nil {
			fmt.Fprintf(os.Stderr, "pacetrace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	tree.render(os.Stdout)
}

// node is one stitched span plus its children, sorted by start time.
type node struct {
	rec      obs.SpanRecord
	children []*node
	// skewUS is the child-starts-before-parent offset in microseconds
	// (negative), 0 when the clocks agree with causality.
	skewUS int64
}

// tree is the stitched view of one trace across all merged files.
type tree struct {
	trace   string
	traces  int // distinct trace IDs seen across the input
	spans   []obs.SpanRecord
	roots   []*node
	orphans []obs.SpanRecord // parent ID never seen in any input file
	procs   map[string]int
}

// summary is the -json output shape; CI asserts on it.
type summary struct {
	Trace   string         `json:"trace"`
	Traces  int            `json:"traces"`
	Spans   int            `json:"spans"`
	Roots   int            `json:"roots"`
	Orphans int            `json:"orphans"`
	Skewed  int            `json:"skewed"`
	Procs   map[string]int `json:"procs"`
}

// stitch merges records into one tree. With want == "" it picks the
// trace ID with the most spans — in a fleet run that is the campaign's
// seed-derived trace; the router's own background trace (rebuild spans)
// is smaller and reported only through the `traces` count.
func stitch(all []obs.SpanRecord, want string) *tree {
	byTrace := map[string]int{}
	for _, r := range all {
		byTrace[r.Trace]++
	}
	if want == "" {
		for id, n := range byTrace {
			if want == "" || n > byTrace[want] || (n == byTrace[want] && id < want) {
				want = id
			}
		}
	}

	t := &tree{trace: want, traces: len(byTrace), procs: map[string]int{}}
	nodes := map[uint64]*node{}
	for _, r := range all {
		if r.Trace != want {
			continue
		}
		t.spans = append(t.spans, r)
		t.procs[procName(r)]++
		nodes[r.ID] = &node{rec: r}
	}
	for _, n := range nodes {
		p := n.rec.Parent
		switch {
		case p == 0:
			t.roots = append(t.roots, n)
		case nodes[p] != nil:
			parent := nodes[p]
			parent.children = append(parent.children, n)
			if d := n.rec.StartUS - parent.rec.StartUS; d < 0 {
				n.skewUS = d
			}
		default:
			t.orphans = append(t.orphans, n.rec)
		}
	}
	sortNodes(t.roots)
	for _, n := range nodes {
		sortNodes(n.children)
	}
	return t
}

// sortNodes orders siblings by start time, then ID for a stable tie.
func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].rec.StartUS != ns[j].rec.StartUS {
			return ns[i].rec.StartUS < ns[j].rec.StartUS
		}
		return ns[i].rec.ID < ns[j].rec.ID
	})
}

func procName(r obs.SpanRecord) string {
	if r.Proc == "" {
		return "unknown"
	}
	return r.Proc
}

func (t *tree) summary() summary {
	s := summary{
		Trace:   t.trace,
		Traces:  t.traces,
		Spans:   len(t.spans),
		Roots:   len(t.roots),
		Orphans: len(t.orphans),
		Procs:   t.procs,
	}
	var walk func(*node)
	walk = func(n *node) {
		if n.skewUS < 0 {
			s.Skewed++
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	for _, r := range t.roots {
		walk(r)
	}
	return s
}

func (t *tree) render(w *os.File) {
	fmt.Fprintf(w, "trace %s: %d spans, %d roots, %d orphans", t.trace, len(t.spans), len(t.roots), len(t.orphans))
	if t.traces > 1 {
		fmt.Fprintf(w, " (+%d other trace(s) in input)", t.traces-1)
	}
	fmt.Fprintln(w)
	procs := make([]string, 0, len(t.procs))
	for p := range t.procs {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		fmt.Fprintf(w, "  proc %-12s %d spans\n", p, t.procs[p])
	}
	fmt.Fprintln(w)
	for _, r := range t.roots {
		renderNode(w, r, 0)
	}
	for _, o := range t.orphans {
		fmt.Fprintf(w, "ORPHAN %s [%s] parent=%016x (not in any input file)\n", o.Name, procName(o), o.Parent)
	}
	if len(t.roots) > 0 {
		fmt.Fprintln(w, "\ncritical path:")
		for _, seg := range t.criticalPath() {
			fmt.Fprintf(w, "  %-24s [%s] %s\n", seg.rec.Name, procName(seg.rec), durUS(seg.rec.DurUS))
		}
	}
}

func renderNode(w *os.File, n *node, depth int) {
	skew := ""
	if n.skewUS < 0 {
		skew = fmt.Sprintf("  (clock skew %dµs)", n.skewUS)
	}
	attrs := ""
	if len(n.rec.Attrs) > 0 {
		keys := make([]string, 0, len(n.rec.Attrs))
		for k := range n.rec.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, n.rec.Attrs[k]))
		}
		attrs = " {" + strings.Join(parts, " ") + "}"
	}
	fmt.Fprintf(w, "%s%s [%s] %s%s%s\n", strings.Repeat("  ", depth), n.rec.Name, procName(n.rec), durUS(n.rec.DurUS), attrs, skew)
	for _, c := range n.children {
		renderNode(w, c, depth+1)
	}
}

// criticalPath walks from the longest root into, at each level, the
// child whose end time is latest — the chain that bounded the run's
// wall clock.
func (t *tree) criticalPath() []*node {
	var cur *node
	for _, r := range t.roots {
		if cur == nil || r.rec.DurUS > cur.rec.DurUS {
			cur = r
		}
	}
	var path []*node
	for cur != nil {
		path = append(path, cur)
		var next *node
		for _, c := range cur.children {
			if next == nil || c.rec.StartUS+c.rec.DurUS > next.rec.StartUS+next.rec.DurUS {
				next = c
			}
		}
		cur = next
	}
	return path
}

func durUS(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.2fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
