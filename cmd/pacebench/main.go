// Command pacebench is the benchmark harness CLI: it runs declarative
// suites (datasets × models × attack methods × fault profiles × codecs)
// against in-process worlds or a live fleet, appends every cell to a
// unified BENCH.json trajectory, imports the legacy per-PR bench files
// into that trajectory, and gates on regressions between two
// trajectories.
//
//	pacebench run -suite smoke -out BENCH.json
//	pacebench run -suite quick -target-url http://127.0.0.1:8650 -out BENCH.json
//	pacebench run -suite-file my-suite.json -out BENCH.json
//	pacebench -import BENCH_parallel.json -import BENCH_remote.json -out BENCH.json
//	pacebench -compare old.json new.json -tolerance 10%
//
// Exit codes: 0 success / gate passed, 1 regression or runtime failure,
// 2 usage error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pace/internal/bench"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "run" {
		runMain(os.Args[2:])
		return
	}
	gateMain(os.Args[1:])
}

// runMain is the `pacebench run` subcommand: execute a suite, append
// the records to the trajectory at -out.
func runMain(args []string) {
	fs := flag.NewFlagSet("pacebench run", flag.ExitOnError)
	var (
		suiteName = fs.String("suite", "smoke", "built-in suite: smoke, quick or capacity")
		suiteFile = fs.String("suite-file", "", "run a suite specification from this JSON file instead")
		targetURL = fs.String("target-url", "", "run attack/load cells against a live fleet (paced or pacerouter) at this base URL")
		authToken = fs.String("auth-token", "", "bearer token for a fleet with auth enabled")
		seed      = fs.Int64("seed", 0, "override the suite's seed (0 = keep)")
		workers   = fs.Int("workers", -1, "worker pool size: 0 = serial, -1 = all cores")
		out       = fs.String("out", "BENCH.json", "trajectory file to append records to")
		gitRev    = fs.String("git-rev", "", "git revision stamped on every record (default: git rev-parse --short HEAD)")
	)
	fs.Parse(args) //nolint:errcheck // ExitOnError

	var (
		suite bench.Suite
		err   error
	)
	if *suiteFile != "" {
		suite, err = bench.LoadSuite(*suiteFile)
	} else {
		suite, err = bench.Builtin(*suiteName)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacebench:", err)
		os.Exit(2)
	}
	if *seed != 0 {
		suite.Seed = *seed
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	opts := bench.Options{
		TargetURL: *targetURL,
		AuthToken: *authToken,
		Workers:   *workers,
		GitRev:    resolveGitRev(*gitRev),
		When:      time.Now().UTC().Format(time.RFC3339),
		Log:       os.Stdout,
	}
	fmt.Printf("suite %s (seed %d, %d cells)%s\n", suite.Name, suite.Seed, len(suite.Cells),
		map[bool]string{true: " against " + *targetURL, false: " in-process"}[*targetURL != ""])
	recs, err := bench.RunSuite(ctx, suite, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacebench:", err)
		os.Exit(1)
	}
	if err := appendRecords(*out, recs); err != nil {
		fmt.Fprintln(os.Stderr, "pacebench:", err)
		os.Exit(1)
	}
	fmt.Printf("appended %d records to %s\n", len(recs), *out)
}

// gateMain is the default mode: -import converts legacy files, -compare
// gates new against old.
func gateMain(args []string) {
	fs := flag.NewFlagSet("pacebench", flag.ExitOnError)
	var imports multiFlag
	var (
		compare      = fs.Bool("compare", false, "compare two trajectories: pacebench -compare old.json new.json")
		tolerance    = fs.String("tolerance", "10%", "gate tolerance for both speed and efficacy (e.g. 10%, 0.25, none)")
		speedTol     = fs.String("speed-tolerance", "", "override the speed tolerance only")
		efficacyTol  = fs.String("efficacy-tolerance", "", "override the efficacy tolerance only")
		out          = fs.String("out", "BENCH.json", "trajectory file -import appends to")
		validatePath = fs.String("validate", "", "validate a trajectory file and exit")
	)
	fs.Var(&imports, "import", "legacy bench file to convert into -out (repeatable)")
	positional := parseInterleaved(fs, args)

	switch {
	case *validatePath != "":
		t, err := bench.LoadTrajectory(*validatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacebench:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: schema %d, %d records, %d cells\n",
			*validatePath, t.Schema, len(t.Records), len(t.Latest()))
	case len(imports) > 0:
		var recs []bench.Record
		for _, path := range imports {
			rs, err := bench.ImportLegacy(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pacebench:", err)
				os.Exit(1)
			}
			fmt.Printf("imported %d records from %s\n", len(rs), path)
			recs = append(recs, rs...)
		}
		if err := appendRecords(*out, recs); err != nil {
			fmt.Fprintln(os.Stderr, "pacebench:", err)
			os.Exit(1)
		}
		fmt.Printf("appended %d records to %s\n", len(recs), *out)
	case *compare:
		if len(positional) != 2 {
			fmt.Fprintln(os.Stderr, "pacebench: -compare needs exactly two trajectory files (old new)")
			os.Exit(2)
		}
		tol, err := parseTolerances(*tolerance, *speedTol, *efficacyTol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacebench:", err)
			os.Exit(2)
		}
		oldT, err := bench.LoadTrajectory(positional[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacebench:", err)
			os.Exit(1)
		}
		newT, err := bench.LoadTrajectory(positional[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacebench:", err)
			os.Exit(1)
		}
		rep := bench.Compare(oldT, newT, tol)
		rep.Print(os.Stdout)
		if rep.Regressed() {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "pacebench: nothing to do (use `pacebench run`, -compare, -import or -validate)")
		os.Exit(2)
	}
}

// parseInterleaved parses flags that may be interleaved with positional
// arguments (`-compare old.json new.json -tolerance 10%`): whenever the
// flag package stops at a positional, collect it and resume parsing the
// remainder.
func parseInterleaved(fs *flag.FlagSet, args []string) []string {
	var positional []string
	for {
		fs.Parse(args) //nolint:errcheck // ExitOnError
		if fs.NArg() == 0 {
			return positional
		}
		positional = append(positional, fs.Arg(0))
		args = fs.Args()[1:]
	}
}

// appendRecords loads the trajectory (a missing file starts empty),
// appends and saves atomically.
func appendRecords(path string, recs []bench.Record) error {
	t, err := bench.LoadTrajectory(path)
	if err != nil {
		return err
	}
	if err := t.Append(recs...); err != nil {
		return err
	}
	return t.Save(path)
}

// parseTolerances resolves the gate slack: -tolerance sets both knobs,
// the per-axis flags override. "none" (or a negative number) disables
// an axis.
func parseTolerances(both, speed, efficacy string) (bench.Tolerance, error) {
	b, err := parseTolerance(both)
	if err != nil {
		return bench.Tolerance{}, err
	}
	tol := bench.Tolerance{Speed: b, Efficacy: b}
	if speed != "" {
		if tol.Speed, err = parseTolerance(speed); err != nil {
			return bench.Tolerance{}, err
		}
	}
	if efficacy != "" {
		if tol.Efficacy, err = parseTolerance(efficacy); err != nil {
			return bench.Tolerance{}, err
		}
	}
	return tol, nil
}

// parseTolerance accepts "10%", "0.1" or "none" (disabled).
func parseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "none") {
		return -1, nil
	}
	frac := 1.0
	if strings.HasSuffix(s, "%") {
		s = strings.TrimSuffix(s, "%")
		frac = 0.01
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid tolerance %q (want e.g. 10%%, 0.1 or none)", s)
	}
	return v * frac, nil
}

// resolveGitRev fills the provenance stamp from git when not given.
func resolveGitRev(explicit string) string {
	if explicit != "" {
		return explicit
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}
