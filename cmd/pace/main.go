// Command pace runs one full PACE attack end to end against a freshly
// trained black-box cardinality estimator on a synthetic dataset:
// model-type speculation, surrogate training, adversarial generator +
// detector training, poisoning-workload generation, and the incremental
// update of the target — then reports before/after accuracy and the
// poisoning workload's normality.
//
// The campaign harness is robust to unreliable targets: -faults injects
// a named unreliability profile (see internal/faults), -deadline bounds
// the wall clock, and -checkpoint/-resume persist generator training so
// a killed campaign can be continued.
//
// With -target-url the campaign runs against a live paced service
// (cmd/paced) instead of an in-process black box: speculation probes,
// surrogate imitation and the poisoning update all cross a real wire.
// For the same dataset/model/seed and a fault-free transport, the
// remote campaign reproduces the in-process run bit-for-bit.
//
// Examples:
//
//	pace -dataset dmv -model fcn -poison 120 -seed 7
//	pace -faults flaky -checkpoint run.ckpt -deadline 2m
//	pace -resume run.ckpt -checkpoint run.ckpt
//	pace -target-url http://127.0.0.1:8645 -dataset dmv -model fcn -seed 1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"pace/internal/ce"
	"pace/internal/cli"
	"pace/internal/core"
	"pace/internal/engine"
	"pace/internal/experiments"
	"pace/internal/faults"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/resilience"
	"pace/internal/workload"
)

func main() {
	var (
		datasetName = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		modelName   = flag.String("model", "fcn", "target CE model: fcn, fcnpool, mscn, rnn, lstm or linear")
		poison      = flag.Int("poison", 0, "poisoning-query budget (0 = profile default)")
		seed        = cli.Seed()
		workers     = cli.Workers()
		oracleCache = flag.Int("oracle-cache", engine.DefaultOracleCacheSize, "memoizing oracle cache capacity in labels (0 = disabled)")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		speculate   = flag.Bool("speculate", false, "speculate the model type instead of assuming it")
		noDetector  = flag.Bool("no-detector", false, "disable the anomaly-detector confrontation")

		targetURL = flag.String("target-url", "", "attack a live paced service at this base URL instead of an in-process black box (may carry a /v1/targets/{id} tenant route)")
		tenantID  = flag.String("target", "", "tenant id at a multi-tenant paced host (default: the host's default tenant)")
		authToken = cli.AuthToken()
		codecName = flag.String("codec", "binary", "data-path wire codec for the remote target: binary or json (the client downgrades to json if the server answers 415)")
		streamEx  = flag.Bool("stream-execute", false, "deliver the poisoning workload over the streamed-execute protocol (chunked upload, async completion poll) instead of sequential synchronous posts")
		streamChk = flag.Int("stream-chunk", 0, "queries per streamed-execute chunk (0 = default 512)")

		retryAttempts = flag.Int("retry-attempts", 0, "retry budget per target/oracle call, campaign and evaluation traffic alike (0 = policy default of 3); raise it to ride out a backend failover behind pacerouter")

		faultsName = flag.String("faults", "", "inject an unreliability profile: none, slow, flaky, lossy, noisy, throttled or chaos")
		deadline   = flag.Duration("deadline", 0, "abort the campaign after this wall-clock duration (0 = none)")
		checkpoint = flag.String("checkpoint", "", "write generator-training checkpoints to this file")
		ckptEvery  = flag.Int("checkpoint-every", 1, "checkpoint every N outer loops")
		resumePath = flag.String("resume", "", "resume generator training from this checkpoint file")
		obsFlags   = cli.Obs()
	)
	flag.Parse()

	typ, err := ce.ParseType(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *deadline > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, *deadline)
		defer cancelT()
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, NumPoison: *poison}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("dataset %s: %d tables, %d rows; workload: %d train / %d test\n",
		*datasetName, len(w.DS.Tables), w.DS.TotalRows(), len(w.Train), len(w.Test))

	qs := workload.Queries(w.Test)
	cards := experiments.Cards(w.Test)

	// The measurement channel. In-process it is the freshly trained
	// black box; in remote mode it is a dedicated client, separate from
	// the campaign's target so fault injection never distorts the
	// before/after numbers.
	var evalTarget ce.Target
	if *targetURL == "" {
		bb := w.NewBlackBox(typ, 1)
		evalTarget = bb
	} else {
		rc, err := remote.NewClient(*targetURL, remote.Options{
			ClientID:       "pace-eval",
			CoalesceWindow: 0,
			AuthToken:      *authToken,
			Codec:          *codecName,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer rc.Close()
		evalTarget = rc.Target(*tenantID)
		fmt.Printf("remote target: %s (%s codec)\n", *targetURL, *codecName)
	}
	evalPol := resilience.RetryPolicy{MaxAttempts: *retryAttempts}
	beforeErrs, err := targetQErrors(ctx, evalTarget, qs, cards, evalPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "target unreachable:", err)
		os.Exit(1)
	}
	before := metrics.Summarize(beforeErrs)
	fmt.Printf("target %s ready; clean test Q-error: %s\n", typ, before)

	runCfg := core.Config{
		NumPoison:       cfg.NumPoison,
		DisableDetector: *noDetector,
		Workers:         *workers,
		OracleCacheSize: *oracleCache,
		Generator:       w.GenCfg(),
		Trainer:         w.TrainerCfg(),
		Telemetry:       tel,
	}
	if *retryAttempts > 0 {
		runCfg.Retry = resilience.RetryPolicy{MaxAttempts: *retryAttempts}
	}
	runCfg.Surrogate.Queries = cfg.TrainQueries
	runCfg.Surrogate.HP = w.HP()
	runCfg.Surrogate.Train = w.TrainCfg()
	runCfg.Speculation.CandidateTrainQueries = cfg.TrainQueries / 2
	runCfg.Speculation.HP = w.HP()
	runCfg.Speculation.Train = w.TrainCfg()
	if !*speculate {
		forced := typ
		runCfg.ForceType = &forced
	}

	if *faultsName != "" {
		prof, err := faults.ByName(*faultsName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runCfg.Faults = faults.NewInjector(prof, *seed)
		fmt.Printf("fault injection: profile %q\n", prof.Name)
	}
	if *checkpoint != "" {
		runCfg.CheckpointEvery = *ckptEvery
		runCfg.CheckpointSink = core.FileCheckpointSink(*checkpoint)
	}
	if *resumePath != "" {
		cp, err := core.ReadCheckpointFile(*resumePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cannot resume:", err)
			os.Exit(2)
		}
		runCfg.Resume = cp
		fmt.Printf("resuming from %s (outer loop %d, algorithm %s)\n",
			*resumePath, cp.Outer, cp.Algorithm)
	}

	campaign := &core.Campaign{
		Workload: w.WGen,
		Test:     w.Test,
		History:  w.History,
		Config:   runCfg,
		Seed:     *seed,
	}
	if *targetURL != "" {
		// The campaign dials its own client so retries, breaker trips and
		// injected faults act on the attack channel only.
		campaign.TargetURL = *targetURL
		campaign.Remote.Tenant = *tenantID
		campaign.Remote.AuthToken = *authToken
		campaign.Remote.Codec = *codecName
		campaign.Remote.StreamExecute = *streamEx
		campaign.Remote.StreamChunk = *streamChk
	} else {
		campaign.Target = evalTarget
	}
	res, err := campaign.Run(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "campaign interrupted:", err)
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "resume with: pace -resume %s -checkpoint %s\n",
					*checkpoint, *checkpoint)
			}
		} else {
			fmt.Fprintln(os.Stderr, "attack failed:", err)
		}
		reportReliability(res)
		if serr := obsShutdown(); serr != nil {
			fmt.Fprintln(os.Stderr, "telemetry shutdown:", serr)
		}
		os.Exit(1)
	}

	if *speculate {
		if res.SpeculationFellBack {
			fmt.Printf("speculation failed against the unreliable target; fell back to %s\n",
				res.SpeculatedType)
		} else {
			fmt.Printf("speculated type: %s (similarities:", res.SpeculatedType)
			for _, t := range ce.Types() {
				fmt.Printf(" %s=%.3f", t, res.Similarities[t])
			}
			fmt.Println(")")
		}
	}
	afterErrs, err := targetQErrors(ctx, evalTarget, qs, cards, evalPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "post-attack evaluation failed:", err)
		os.Exit(1)
	}
	after := metrics.Summarize(afterErrs)
	if tel != nil && tel.Reg != nil {
		// Q-error distributions land in the registry too, so a scrape of
		// -metrics-addr sees attack effectiveness next to the traffic
		// counters.
		hb := tel.Reg.Histogram("pace_qerror_before")
		ha := tel.Reg.Histogram("pace_qerror_after")
		for _, e := range beforeErrs {
			hb.Observe(e)
		}
		for _, e := range afterErrs {
			ha.Observe(e)
		}
	}

	hEnc := experiments.Encodings(w.History, w.DS)
	pEnc := make([][]float64, len(res.Poison))
	for i, q := range res.Poison {
		pEnc[i] = q.Encode(w.DS.Meta)
	}

	fmt.Printf("\npoisoned with %d queries (train %v, generate %v, attack %v)\n",
		len(res.Poison), res.TrainTime.Round(1e6), res.GenTime.Round(1e6), res.AttackTime.Round(1e6))
	fmt.Printf("test Q-error before: %s\n", before)
	fmt.Printf("test Q-error after:  %s\n", after)
	fmt.Printf("mean degradation: %.1f×\n", after.Mean/before.Mean)
	fmt.Printf("poison/history JS divergence: %.4f\n", metrics.JSDivergence(hEnc, pEnc, 10))
	reportReliability(res)
	if serr := obsShutdown(); serr != nil {
		fmt.Fprintln(os.Stderr, "telemetry shutdown:", serr)
		os.Exit(1)
	}
}

// targetQErrors evaluates the target's Q-error on a labeled workload
// through the Target interface — the only view a remote deployment
// offers. For the in-process black box it matches BlackBox.QErrors
// exactly. Each estimate is retried under pol so a transient outage
// (backend failover behind pacerouter, a shed queue) cannot void the
// measurement; retrying an estimate is always safe — it mutates
// nothing.
func targetQErrors(ctx context.Context, t ce.Target, qs []*query.Query, cards []float64, pol resilience.RetryPolicy) ([]float64, error) {
	if pol.Retryable == nil {
		pol.Retryable = core.RetryableOracleError
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		var est float64
		if _, err := pol.Do(ctx, nil, func(c context.Context) error {
			var e error
			est, e = t.EstimateContext(c, q)
			return e
		}); err != nil {
			return nil, err
		}
		out[i] = ce.QError(est, cards[i])
	}
	return out, nil
}

// reportReliability prints the oracle-traffic statistics and, when fault
// injection was on, the injector's tallies.
func reportReliability(res *core.Result) {
	if res == nil {
		return
	}
	s := res.Stats
	if s.OracleCalls > 0 {
		fmt.Printf("oracle traffic: %d calls, %d invalid (%.1f%%), %d failed, %d retried, %d samples skipped\n",
			s.OracleCalls, s.OracleInvalid, 100*s.InvalidRate(), s.OracleFailed, s.OracleRetries, s.SkippedSamples)
	}
	if c := res.CacheStats; c != nil {
		fmt.Printf("oracle cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %d labels resident\n",
			c.Hits, c.Misses, 100*metrics.HitRate(c.Hits, c.Misses), c.Evictions, c.Size)
	}
	if s.Checkpoints > 0 {
		fmt.Printf("checkpoints written: %d\n", s.Checkpoints)
	}
	if c := res.FaultCounters; c != nil {
		fmt.Printf("injected faults: %d calls → %d transient errors, %d drops, %d rate-limited, %d noisy labels\n",
			c.Calls, c.Transients, c.Drops, c.RateLimited, c.NoisyLabels)
	}
}
