// Command pace runs one full PACE attack end to end against a freshly
// trained black-box cardinality estimator on a synthetic dataset:
// model-type speculation, surrogate training, adversarial generator +
// detector training, poisoning-workload generation, and the incremental
// update of the target — then reports before/after accuracy and the
// poisoning workload's normality.
//
// Example:
//
//	pace -dataset dmv -model fcn -poison 120 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/workload"
)

func main() {
	var (
		datasetName = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		modelName   = flag.String("model", "fcn", "target CE model: fcn, fcnpool, mscn, rnn, lstm or linear")
		poison      = flag.Int("poison", 0, "poisoning-query budget (0 = profile default)")
		seed        = flag.Int64("seed", 1, "random seed")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		speculate   = flag.Bool("speculate", false, "speculate the model type instead of assuming it")
		noDetector  = flag.Bool("no-detector", false, "disable the anomaly-detector confrontation")
	)
	flag.Parse()

	typ, err := ce.ParseType(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, NumPoison: *poison}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("dataset %s: %d tables, %d rows; workload: %d train / %d test\n",
		*datasetName, len(w.DS.Tables), w.DS.TotalRows(), len(w.Train), len(w.Test))

	bb := w.NewBlackBox(typ, 1)
	qs := workload.Queries(w.Test)
	cards := experiments.Cards(w.Test)
	before := metrics.Summarize(bb.QErrors(qs, cards))
	fmt.Printf("target %s trained; clean test Q-error: %s\n", typ, before)

	rng := rand.New(rand.NewSource(*seed))
	runCfg := core.Config{
		NumPoison:       cfg.NumPoison,
		DisableDetector: *noDetector,
		Generator:       w.GenCfg(),
		Trainer:         w.TrainerCfg(),
	}
	runCfg.Surrogate.Queries = cfg.TrainQueries
	runCfg.Surrogate.HP = w.HP()
	runCfg.Surrogate.Train = w.TrainCfg()
	runCfg.Speculation.CandidateTrainQueries = cfg.TrainQueries / 2
	runCfg.Speculation.HP = w.HP()
	runCfg.Speculation.Train = w.TrainCfg()
	if !*speculate {
		forced := typ
		runCfg.ForceType = &forced
	}

	res, err := core.Run(bb, w.WGen, w.Test, w.History, runCfg, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack failed:", err)
		os.Exit(1)
	}

	if *speculate {
		fmt.Printf("speculated type: %s (similarities:", res.SpeculatedType)
		for _, t := range ce.Types() {
			fmt.Printf(" %s=%.3f", t, res.Similarities[t])
		}
		fmt.Println(")")
	}
	after := metrics.Summarize(bb.QErrors(qs, cards))

	hEnc := experiments.Encodings(w.History, w.DS)
	pEnc := make([][]float64, len(res.Poison))
	for i, q := range res.Poison {
		pEnc[i] = q.Encode(w.DS.Meta)
	}

	fmt.Printf("\npoisoned with %d queries (train %v, generate %v, attack %v)\n",
		len(res.Poison), res.TrainTime.Round(1e6), res.GenTime.Round(1e6), res.AttackTime.Round(1e6))
	fmt.Printf("test Q-error before: %s\n", before)
	fmt.Printf("test Q-error after:  %s\n", after)
	fmt.Printf("mean degradation: %.1f×\n", after.Mean/before.Mean)
	fmt.Printf("poison/history JS divergence: %.4f\n", metrics.JSDivergence(hEnc, pEnc, 10))
}
