// Command paced stands black-box cardinality estimators up as a real
// network service — the deployed targets of PACE's threat model. One
// process hosts many tenants: named estimator worlds, each trained
// exactly the way cmd/pace builds its in-process target (same dataset,
// model and seed give the same weights) and each owning its own model
// goroutine, admission queues and rate limits:
//
//	POST /v1/targets/{id}/estimate   routed estimates, single or batch
//	POST /v1/targets/{id}/execute    executed-query feedback → retraining
//	POST /v1/targets                 provision a tenant at runtime
//	DELETE /v1/targets/{id}          drain and destroy a tenant
//	GET  /v1/targets                 tenant directory
//	POST /v1/estimate | /v1/execute  legacy wire, aliasing tenant "default"
//	GET  /healthz                    per-tenant readiness (503 while draining)
//	GET  /metrics                    tenant-labeled metrics (with -metrics)
//
// Estimates are micro-batched per tenant; admission is bounded (full
// queues shed with 429 + Retry-After) and per-client token buckets
// rate-limit by client identity — the X-Pace-Client header, or, with
// -auth-tokens, the spoof-proof name mapped from the bearer token.
// SIGINT/SIGTERM drains gracefully: health flips to 503, in-flight
// requests on every tenant finish, then the process exits.
//
// Examples:
//
//	paced -addr 127.0.0.1:8645 -dataset dmv -model fcn -seed 1
//	paced -tenants a=dmv:fcn,b=dmv:linear -metrics
//	paced -auth-tokens tokens.txt -rate 500
//	pace -target-url http://127.0.0.1:8645/v1/targets/a -dataset dmv -model fcn
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pace/internal/ce"
	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/obs"
	"pace/internal/targetserver"
	"pace/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8645", "listen address (port 0 picks an ephemeral port)")
		datasetName = flag.String("dataset", "dmv", "default tenant's dataset: dmv, imdb, tpch or stats")
		modelName   = flag.String("model", "fcn", "default tenant's CE model: fcn, fcnpool, mscn, rnn, lstm or linear")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		seed        = cli.Seed()
		tenants     = flag.String("tenants", "", "boot tenants instead of the single default one: comma-separated id=dataset:model[:seedoffset], or \"none\" to boot empty (fleet members behind pacerouter, which provisions tenants itself)")
		estCache    = flag.Int("est-cache", 0, "per-tenant LRU estimate cache entries, modeling a plan cache (0 = disabled)")
		codecs      = flag.String("codecs", "", "data-path codecs the server negotiates, comma-separated subset of json,binary (default: both; control plane is always json)")
		authTokens  = flag.String("auth-tokens", "", "bearer-token file (one \"token client-name\" per line); when set, client identity is token-derived and unauthenticated requests get 401")

		maxBatch    = flag.Int("max-batch", 64, "micro-batch size cap in queries")
		batchWindow = flag.Duration("batch-window", 200*time.Microsecond, "micro-batch gather window")
		queueDepth  = flag.Int("queue-depth", 128, "estimate admission queue capacity (full = shed 429)")
		execDepth   = flag.Int("exec-queue-depth", 8, "execute (retraining) queue capacity")
		rate        = flag.Float64("rate", 0, "per-client admitted requests per second per tenant (0 = unlimited)")
		burst       = flag.Int("burst", 0, "per-client token-bucket burst (0 = one second of tokens)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429/503")
		maxTenants  = flag.Int("max-tenants", 0, "cap on hosted tenants, live or evicted (0 = unlimited); creates beyond it answer 429 quota_exceeded")
		maxPerOwner = flag.Int("max-per-client", 0, "cap on tenants one authenticated client may provision (0 = unlimited)")
		idleEvict   = flag.Duration("idle-evict", 0, "evict tenants idle this long, spilling their spec for lazy revival (0 = never)")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
		metrics     = flag.Bool("metrics", false, "serve /metrics and /debug/pprof on the service mux")
		obsFlags    = cli.Obs()
	)
	flag.Parse()

	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if tel == nil && *metrics {
		tel = &obs.Telemetry{Reg: obs.NewRegistry()}
	} else if tel != nil && tel.Reg == nil && *metrics {
		tel.Reg = obs.NewRegistry()
	}

	var tokens map[string]string
	if *authTokens != "" {
		f, err := os.Open(*authTokens)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paced:", err)
			os.Exit(2)
		}
		tokens, err = targetserver.ParseAuthTokens(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "paced:", err)
			os.Exit(2)
		}
		fmt.Printf("paced: auth enabled (%d tokens); client identity is token-derived\n", len(tokens))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Boot specs: -tenants when given, else the single default tenant
	// from -dataset/-model. Seed and scale are process-wide; seedoffset
	// defaults to 1, the cmd/pace convention, so a hosted (dataset,
	// model, seed) triple is bit-identical to the in-process victim.
	specs, err := bootSpecs(*tenants, *datasetName, *modelName, *seed, *scale, *estCache)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paced:", err)
		os.Exit(2)
	}

	var codecList []string
	for _, name := range strings.Split(*codecs, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if name != "json" && name != "binary" {
				fmt.Fprintf(os.Stderr, "paced: -codecs %q: unknown codec %q (want json or binary)\n", *codecs, name)
				os.Exit(2)
			}
			codecList = append(codecList, name)
		}
	}

	cfg := targetserver.Config{
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWindow,
		QueueDepth:     *queueDepth,
		ExecQueueDepth: *execDepth,
		RatePerSec:     *rate,
		Burst:          *burst,
		RetryAfter:     *retryAfter,
		MaxTenants:     *maxTenants,
		MaxPerOwner:    *maxPerOwner,
		IdleAfter:      *idleEvict,
		AuthTokens:     tokens,
		Telemetry:      tel,
		Codecs:         codecList,
	}
	// The same factory serves boot-time -tenants and runtime POST
	// /v1/targets; its base profile matches cmd/pace's defaults.
	baseCfg := experiments.Config{Seed: *seed, Scale: *scale}.WithDefaults()
	cfg.Factory = experiments.TenantFactory(baseCfg)

	reg := tenant.NewRegistry(cfg.Factory, cfg.TenantConfig())
	for _, spec := range specs {
		fmt.Printf("paced: training tenant %s: %s %s (seed %d, offset %d)...\n",
			spec.ID, spec.Dataset, spec.Model, spec.Seed, spec.SeedOffset)
		if _, err := reg.Create(ctx, spec); err != nil {
			fmt.Fprintln(os.Stderr, "paced:", err)
			os.Exit(2)
		}
	}

	srv := targetserver.NewMulti(reg, cfg)
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("paced: listening on http://%s (%d tenants)\n", bound, reg.Len())

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "paced: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "paced: drain:", err)
	}
	if err := obsShutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "paced: telemetry shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "paced: bye")
}

// bootSpecs parses -tenants ("id=dataset:model[:seedoffset]", comma
// separated); empty means one default tenant from the single-target
// flags, and "none" boots zero tenants — the fleet-member mode, where
// pacerouter provisions every tenant through POST /v1/targets and a
// pre-claimed "default" would 409 the router's own create.
func bootSpecs(tenants, dataset, model string, seed int64, scale float64, cacheSize int) ([]tenant.Spec, error) {
	if tenants == "none" {
		return nil, nil
	}
	if tenants == "" {
		if _, err := ce.ParseType(model); err != nil {
			return nil, err
		}
		return []tenant.Spec{{
			ID: targetserver.DefaultTenant, Dataset: dataset, Model: model,
			Seed: seed, SeedOffset: 1, Scale: scale, CacheSize: cacheSize,
		}}, nil
	}
	var specs []tenant.Spec
	for _, ent := range strings.Split(tenants, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		id, world, ok := strings.Cut(ent, "=")
		if !ok {
			return nil, fmt.Errorf("tenant %q: want id=dataset:model[:seedoffset]", ent)
		}
		parts := strings.Split(world, ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("tenant %q: want id=dataset:model[:seedoffset]", ent)
		}
		if _, err := ce.ParseType(parts[1]); err != nil {
			return nil, fmt.Errorf("tenant %q: %w", ent, err)
		}
		spec := tenant.Spec{
			ID: id, Dataset: parts[0], Model: parts[1],
			Seed: seed, SeedOffset: 1, Scale: scale, CacheSize: cacheSize,
		}
		if len(parts) == 3 {
			if _, err := fmt.Sscanf(parts[2], "%d", &spec.SeedOffset); err != nil {
				return nil, fmt.Errorf("tenant %q: bad seedoffset: %w", ent, err)
			}
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("-tenants %q names no tenants", tenants)
	}
	return specs, nil
}
