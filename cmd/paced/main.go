// Command paced stands the black-box cardinality estimator up as a real
// network service — the deployed target of PACE's threat model. It
// trains a fresh CE model on a synthetic dataset (exactly the way
// cmd/pace builds its in-process target: same dataset, model and seed
// give the same weights) and serves it over HTTP/JSON:
//
//	POST /v1/estimate   cardinality estimates, single or batch
//	POST /v1/execute    executed-query feedback → incremental retraining
//	GET  /healthz       readiness (503 while draining)
//	GET  /metrics       Prometheus metrics (with -metrics; pprof under /debug/pprof/)
//
// Estimates are micro-batched through a single model goroutine;
// admission is bounded (full queues shed with 429 + Retry-After) and
// per-client token buckets rate-limit by the X-Pace-Client header.
// SIGINT/SIGTERM drains gracefully: health flips to 503, in-flight
// requests finish, then the process exits.
//
// Examples:
//
//	paced -addr 127.0.0.1:8645 -dataset dmv -model fcn -seed 1
//	paced -addr :0 -rate 2000 -queue-depth 64 -metrics
//	pace -target-url http://127.0.0.1:8645 -dataset dmv -model fcn -seed 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pace/internal/ce"
	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/obs"
	"pace/internal/targetserver"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8645", "listen address (port 0 picks an ephemeral port)")
		datasetName = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		modelName   = flag.String("model", "fcn", "hosted CE model: fcn, fcnpool, mscn, rnn, lstm or linear")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		seed        = cli.Seed()

		maxBatch    = flag.Int("max-batch", 64, "micro-batch size cap in queries")
		batchWindow = flag.Duration("batch-window", 200*time.Microsecond, "micro-batch gather window")
		queueDepth  = flag.Int("queue-depth", 128, "estimate admission queue capacity (full = shed 429)")
		execDepth   = flag.Int("exec-queue-depth", 8, "execute (retraining) queue capacity")
		rate        = flag.Float64("rate", 0, "per-client admitted requests per second (0 = unlimited)")
		burst       = flag.Int("burst", 0, "per-client token-bucket burst (0 = one second of tokens)")
		retryAfter  = flag.Duration("retry-after", time.Second, "Retry-After hint sent with 429/503")
		drainWait   = flag.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
		metrics     = flag.Bool("metrics", false, "serve /metrics and /debug/pprof on the service mux")
		obsFlags    = cli.Obs()
	)
	flag.Parse()

	typ, err := ce.ParseType(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if tel == nil && *metrics {
		tel = &obs.Telemetry{Reg: obs.NewRegistry()}
	} else if tel != nil && tel.Reg == nil && *metrics {
		tel.Reg = obs.NewRegistry()
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// The served world matches cmd/pace's: identical dataset, workload
	// and training draws, so a fixed (dataset, model, seed) triple hosts
	// bit-identical weights here and in-process there.
	cfg := experiments.Config{Seed: *seed, Scale: *scale}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("paced: dataset %s (%d tables, %d rows); training %s target (seed %d)...\n",
		*datasetName, len(w.DS.Tables), w.DS.TotalRows(), typ, *seed)
	bb := w.NewBlackBox(typ, 1)

	srv := targetserver.New(bb, w.DS.Meta, targetserver.Config{
		MaxBatch:       *maxBatch,
		BatchWindow:    *batchWindow,
		QueueDepth:     *queueDepth,
		ExecQueueDepth: *execDepth,
		RatePerSec:     *rate,
		Burst:          *burst,
		RetryAfter:     *retryAfter,
		Telemetry:      tel,
	})
	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("paced: listening on http://%s\n", bound)

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "paced: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	defer dcancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "paced: drain:", err)
	}
	if err := obsShutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "paced: telemetry shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "paced: bye")
}
