// Command datagen materializes one of the synthetic datasets and exports
// it for inspection or for use by external tools: one CSV file per table,
// a CSV of the PK-FK join edges, and (optionally) a labeled random
// workload as JSON (the format internal/workload.Load reads back).
//
// Example:
//
//	datagen -dataset tpch -scale 0.2 -out /tmp/tpch -workload 500
//
// With -size, datagen instead streams a sized corpus of a single table
// in constant memory: chunked CSV files plus a progress manifest, with
// every chunk fsynced and atomically renamed before the manifest records
// it. Interrupting the run (Ctrl-C, SIGKILL, power loss) never leaves a
// truncated chunk; re-running the same command resumes where the
// manifest left off and produces a byte-identical corpus.
//
//	datagen -dataset tpch -table lineitem -size 100M -out /tmp/corpus
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"

	"pace/internal/cli"
	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/workload"
)

func main() {
	var (
		name      = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		scale     = flag.Float64("scale", 0.1, "dataset scale factor (export mode)")
		seed      = cli.Seed()
		outDir    = flag.String("out", "", "output directory (required)")
		nWorkload = flag.Int("workload", 0, "also export this many labeled random queries as workload.json")
		size      = flag.String("size", "", "stream a sized corpus instead: rows (\"500000\") or bytes (\"100M\", \"2G\")")
		table     = flag.String("table", "", "table to stream in -size mode (default: the dataset's largest table)")
		chunkRows = flag.Int("chunk-rows", 0, "rows per corpus chunk file in -size mode (default 8192)")
		obsFlags  = cli.Obs()
	)
	flag.Parse()
	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	// datagen has no campaign to trace, but the profiling and metrics
	// flags still apply (dataset generation is the memory-heavy path).
	_, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fatal(err)
	}
	defer obsShutdown()

	// Ctrl-C / SIGTERM stops between files (export mode) or between rows
	// (stream mode), so the output directory never holds a torn CSV.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *size != "" {
		streamCorpus(ctx, *name, *table, *size, *chunkRows, *seed, *outDir)
		return
	}

	ds, err := dataset.Build(*name, dataset.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	for _, tab := range ds.Tables {
		if err := writeTable(ctx, *outDir, tab); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s.csv (%d rows, %d cols)\n", tab.Name, tab.Rows, len(tab.Cols))
	}
	if err := writeEdges(ctx, *outDir, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote edges.csv (%d PK-FK edges)\n", len(ds.Edges))

	if ctx.Err() != nil {
		fatal(ctx.Err())
	}
	if *nWorkload > 0 {
		gen := workload.NewGenerator(ds, engine.New(ds), rand.New(rand.NewSource(*seed)))
		w := gen.Random(*nWorkload)
		f, err := os.Create(filepath.Join(*outDir, "workload.json"))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := workload.Save(f, ds.Meta, w); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote workload.json (%d labeled queries)\n", len(w))
	}
}

// streamCorpus runs the sized-corpus mode: resumable, chunked,
// constant-memory generation driven by internal/dataset.Stream. A
// pre-existing manifest in -out (same parameters) is resumed
// automatically.
func streamCorpus(ctx context.Context, name, table, size string, chunkRows int, seed int64, outDir string) {
	target, err := dataset.ParseSize(size)
	if err != nil {
		fatal(err)
	}
	m, err := dataset.Stream(ctx, outDir, dataset.StreamConfig{
		Dataset:   name,
		Table:     table,
		Seed:      seed,
		Target:    target,
		ChunkRows: chunkRows,
		Progress: func(ch dataset.StreamChunk) {
			fmt.Printf("chunk %06d: %s (%d rows, %d bytes)\n", ch.Index, ch.File, ch.Rows, ch.Bytes)
		},
	})
	if err == context.Canceled {
		fmt.Printf("interrupted after %d chunks (%d rows, %d bytes); re-run to resume\n",
			len(m.Chunks), m.Rows, m.Bytes)
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("corpus complete: %s.%s, %d chunks, %d rows, %d bytes (target %s)\n",
		m.Dataset, m.Table, len(m.Chunks), m.Rows, m.Bytes, m.Target)
}

// checkEvery bounds how many rows are written between cancellation
// checks — coarse enough to stay off the hot path, fine enough that an
// interrupt lands within milliseconds.
const checkEvery = 4096

// atomicCSV writes one CSV file via tmp + fsync + rename so an
// interrupted export never leaves a truncated file under the final name.
// body streams rows into the writer; a non-nil error (including ctx
// cancellation) discards the tmp file.
func atomicCSV(path string, body func(w *csv.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	w := csv.NewWriter(f)
	if err := body(w); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return err
	}
	f = nil
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func writeTable(ctx context.Context, dir string, tab *dataset.Table) error {
	return atomicCSV(filepath.Join(dir, tab.Name+".csv"), func(w *csv.Writer) error {
		if err := w.Write(tab.ColNames); err != nil {
			return err
		}
		row := make([]string, len(tab.Cols))
		for r := 0; r < tab.Rows; r++ {
			if r%checkEvery == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			for c := range tab.Cols {
				row[c] = strconv.FormatFloat(tab.Cols[c][r], 'g', 6, 64)
			}
			if err := w.Write(row); err != nil {
				return err
			}
		}
		return nil
	})
}

func writeEdges(ctx context.Context, dir string, ds *dataset.Dataset) error {
	return atomicCSV(filepath.Join(dir, "edges.csv"), func(w *csv.Writer) error {
		if err := w.Write([]string{"child", "parent", "child_row", "parent_row"}); err != nil {
			return err
		}
		n := 0
		for _, e := range ds.Edges {
			child, parent := ds.Tables[e.Child].Name, ds.Tables[e.Parent].Name
			for cr, pr := range e.Refs {
				if n%checkEvery == 0 && ctx.Err() != nil {
					return ctx.Err()
				}
				n++
				if err := w.Write([]string{child, parent,
					strconv.Itoa(cr), strconv.Itoa(pr)}); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
