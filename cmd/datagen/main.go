// Command datagen materializes one of the synthetic datasets and exports
// it for inspection or for use by external tools: one CSV file per table,
// a CSV of the PK-FK join edges, and (optionally) a labeled random
// workload as JSON (the format internal/workload.Load reads back).
//
// Example:
//
//	datagen -dataset tpch -scale 0.2 -out /tmp/tpch -workload 500
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"

	"pace/internal/cli"
	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/workload"
)

func main() {
	var (
		name      = flag.String("dataset", "dmv", "dataset: dmv, imdb, tpch or stats")
		scale     = flag.Float64("scale", 0.1, "dataset scale factor")
		seed      = cli.Seed()
		outDir    = flag.String("out", "", "output directory (required)")
		nWorkload = flag.Int("workload", 0, "also export this many labeled random queries as workload.json")
		obsFlags  = cli.Obs()
	)
	flag.Parse()
	if *outDir == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	// datagen has no campaign to trace, but the profiling and metrics
	// flags still apply (dataset generation is the memory-heavy path).
	_, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fatal(err)
	}
	defer obsShutdown()

	// Ctrl-C / SIGTERM stops between files, so the export directory never
	// holds a torn CSV; the partial file in flight is removed.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	ds, err := dataset.Build(*name, dataset.Config{Scale: *scale, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	for _, tab := range ds.Tables {
		if err := writeTable(ctx, *outDir, tab); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s.csv (%d rows, %d cols)\n", tab.Name, tab.Rows, len(tab.Cols))
	}
	if err := writeEdges(ctx, *outDir, ds); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote edges.csv (%d PK-FK edges)\n", len(ds.Edges))

	if ctx.Err() != nil {
		fatal(ctx.Err())
	}
	if *nWorkload > 0 {
		gen := workload.NewGenerator(ds, engine.New(ds), rand.New(rand.NewSource(*seed)))
		w := gen.Random(*nWorkload)
		f, err := os.Create(filepath.Join(*outDir, "workload.json"))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := workload.Save(f, ds.Meta, w); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote workload.json (%d labeled queries)\n", len(w))
	}
}

// checkEvery bounds how many rows are written between cancellation
// checks — coarse enough to stay off the hot path, fine enough that an
// interrupt lands within milliseconds.
const checkEvery = 4096

func writeTable(ctx context.Context, dir string, tab *dataset.Table) error {
	path := filepath.Join(dir, tab.Name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(tab.ColNames); err != nil {
		return err
	}
	row := make([]string, len(tab.Cols))
	for r := 0; r < tab.Rows; r++ {
		if r%checkEvery == 0 && ctx.Err() != nil {
			f.Close()
			os.Remove(path)
			return ctx.Err()
		}
		for c := range tab.Cols {
			row[c] = strconv.FormatFloat(tab.Cols[c][r], 'g', 6, 64)
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

func writeEdges(ctx context.Context, dir string, ds *dataset.Dataset) error {
	path := filepath.Join(dir, "edges.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"child", "parent", "child_row", "parent_row"}); err != nil {
		return err
	}
	n := 0
	for _, e := range ds.Edges {
		child, parent := ds.Tables[e.Child].Name, ds.Tables[e.Parent].Name
		for cr, pr := range e.Refs {
			if n%checkEvery == 0 && ctx.Err() != nil {
				f.Close()
				os.Remove(path)
				return ctx.Err()
			}
			n++
			if err := w.Write([]string{child, parent,
				strconv.Itoa(cr), strconv.Itoa(pr)}); err != nil {
				return err
			}
		}
	}
	return w.Error()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
