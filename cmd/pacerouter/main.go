// Command pacerouter fronts a fleet of paced backends with one
// fault-tolerant endpoint speaking the same wire:
//
//	POST /v1/targets                 place + provision a tenant (rendezvous hash)
//	POST /v1/targets/{id}/estimate   proxied to the tenant's backend
//	POST /v1/targets/{id}/execute    proxied + journaled for replay
//	DELETE /v1/targets/{id}          destroy everywhere
//	GET  /v1/targets | /v1/fleet     directory | fleet topology
//	POST /v1/estimate | /v1/execute  legacy wire, aliasing tenant "default"
//	GET  /healthz                    router + per-tenant readiness
//	GET  /metrics                    router_* families (with -metrics)
//
// Backends are actively health-checked; when one dies, its tenants are
// rebuilt on survivors from their stored specs (bit-identical worlds by
// construction) and the journaled execute feedback is replayed in order
// (bit-identical retraining state). Clients only ever see 503 +
// Retry-After during the rebuild window — the retry layer in
// internal/remote rides through it, so a fixed-seed campaign completes
// bit-identically even with a mid-run backend crash.
//
// Examples:
//
//	paced -addr 127.0.0.1:9001 -tenants none &
//	paced -addr 127.0.0.1:9002 -tenants none &
//	pacerouter -addr 127.0.0.1:8645 -backends 127.0.0.1:9001,127.0.0.1:9002 -metrics
//	pace -target-url http://127.0.0.1:8645/v1/targets/default -dataset dmv -model fcn
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pace/internal/cli"
	"pace/internal/obs"
	"pace/internal/router"
	"pace/internal/targetserver"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8645", "listen address (port 0 picks an ephemeral port)")
		backends   = flag.String("backends", "", "comma-separated paced base URLs forming the fleet (required)")
		authToken  = flag.String("auth-token", "", "bearer token the router presents to backends (their -auth-tokens entry)")
		authTokens = flag.String("auth-tokens", "", "bearer-token file for the router's OWN clients (one \"token client-name\" per line)")

		healthInterval = flag.Duration("health-interval", 500*time.Millisecond, "per-backend health probe period")
		probeTimeout   = flag.Duration("probe-timeout", 2*time.Second, "bound on one health probe")
		failThreshold  = flag.Int("fail-threshold", 3, "consecutive failures (probe or data-path) that mark a backend down")
		cooldown       = flag.Duration("cooldown", time.Second, "down window before a half-open re-probe")
		retryAfter     = flag.Duration("retry-after", time.Second, "Retry-After hint sent with router-originated 429/503")
		createTimeout  = flag.Duration("create-timeout", 10*time.Minute, "bound on one re-provision (world build + journal replay)")

		maxTenants  = flag.Int("max-tenants", 0, "fleet-wide tenant cap (0 = unlimited); creates beyond it answer 429 quota_exceeded")
		maxPerOwner = flag.Int("max-per-client", 0, "cap on tenants one client may provision (0 = unlimited)")
		idleEvict   = flag.Duration("idle-evict", 0, "evict tenants idle this long from their backend, keeping spec+journal for lazy bit-exact revival (0 = never)")

		drainWait = flag.Duration("drain", 10*time.Second, "graceful drain bound on shutdown")
		metrics   = flag.Bool("metrics", false, "serve /metrics on the router mux")
		obsFlags  = cli.Obs()
	)
	flag.Parse()

	if strings.TrimSpace(*backends) == "" {
		fmt.Fprintln(os.Stderr, "pacerouter: -backends is required (comma-separated paced URLs)")
		os.Exit(2)
	}

	tel, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if tel == nil && *metrics {
		tel = &obs.Telemetry{Reg: obs.NewRegistry()}
	} else if tel != nil && tel.Reg == nil && *metrics {
		tel.Reg = obs.NewRegistry()
	}

	var tokens map[string]string
	if *authTokens != "" {
		f, err := os.Open(*authTokens)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacerouter:", err)
			os.Exit(2)
		}
		tokens, err = targetserver.ParseAuthTokens(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pacerouter:", err)
			os.Exit(2)
		}
		fmt.Printf("pacerouter: auth enabled (%d tokens); client identity is token-derived\n", len(tokens))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	rt, err := router.New(router.Config{
		Backends:       strings.Split(*backends, ","),
		AuthToken:      *authToken,
		AuthTokens:     tokens,
		RetryAfter:     *retryAfter,
		HealthInterval: *healthInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		Cooldown:       *cooldown,
		MaxTenants:     *maxTenants,
		MaxPerOwner:    *maxPerOwner,
		IdleAfter:      *idleEvict,
		CreateTimeout:  *createTimeout,
		Telemetry:      tel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacerouter:", err)
		os.Exit(2)
	}

	bound, err := rt.Start(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pacerouter:", err)
		os.Exit(1)
	}
	fmt.Printf("pacerouter: listening on http://%s, fronting %s\n", bound, *backends)

	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "pacerouter: draining...")
	dctx, dcancel := context.WithTimeout(context.Background(), *drainWait)
	defer dcancel()
	if err := rt.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "pacerouter: drain:", err)
	}
	if err := obsShutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "pacerouter: telemetry shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pacerouter: bye")
}
