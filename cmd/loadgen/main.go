// Command loadgen replays a synthetic workload against a running paced
// estimator service at a target QPS and reports latency percentiles and
// shed rates as JSON — the end-to-end evidence that the server sheds
// load (fast 429s, bounded p99) instead of collapsing into timeouts.
//
// Each request is one single-query estimate call (client-side coalescing
// off) so every latency sample is one wire round trip.
//
// Against a multi-tenant host, -target routes the load at named tenants:
// one id replays against that tenant alone; a comma-separated list runs
// one concurrent lane per tenant, each offered the full -qps, and the
// report becomes a per-tenant ledger keyed by tenant id.
//
// Examples:
//
//	paced -addr 127.0.0.1:8645 -rate 2000 &
//	loadgen -url http://127.0.0.1:8645 -qps 4000 -duration 10s
//	loadgen -url http://127.0.0.1:8645 -target b -qps 1000 -out bench.json
//	loadgen -url http://127.0.0.1:8645 -target a,b -qps 500
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/loadgen"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8645", "paced service base URL")
		target      = flag.String("target", "", "tenant id(s) to load, comma-separated (default: the legacy unrouted endpoints)")
		datasetName = flag.String("dataset", "dmv", "dataset the service hosts (workload source)")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		seed        = cli.Seed()
		nQueries    = flag.Int("queries", 200, "distinct queries in the replayed pool")
		qps         = flag.Float64("qps", 1000, "offered request rate (per lane)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		clientID    = flag.String("client", "", "X-Pace-Client identity (default host/pid)")
		codecName   = flag.String("codec", "binary", "data-path wire codec: binary or json (415 from an older server downgrades the lane to json)")
		authToken   = cli.AuthToken()
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		obsFlags    = cli.Obs()
	)
	flag.Parse()
	_, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fatal(err)
	}
	pool := workload.Queries(w.WGen.Random(*nQueries))

	lcfg := loadgen.Config{QPS: *qps, Duration: *duration, Timeout: *timeout}
	var tenants []string
	for _, id := range strings.Split(*target, ",") {
		if id = strings.TrimSpace(id); id != "" {
			tenants = append(tenants, id)
		}
	}

	// One shared client; each lane gets its own routed target view so
	// per-tenant wire counters stay separate while connections pool.
	rc, err := remote.NewClient(*url, remote.Options{
		CoalesceWindow: 0, // one request per estimate: honest per-call latency
		RequestTimeout: *timeout,
		ClientID:       *clientID,
		AuthToken:      *authToken,
		Codec:          *codecName,
	})
	if err != nil {
		fatal(err)
	}
	defer rc.Close()

	var lanes []loadgen.Lane
	if len(tenants) == 0 {
		rt := rc.Target("")
		lanes = []loadgen.Lane{{Target: "default", Est: rt.EstimateContext, Stats: rt.Stats, Queries: pool, Config: lcfg}}
	} else {
		for _, id := range tenants {
			rt := rc.Target(id)
			lanes = append(lanes, loadgen.Lane{Target: id, Est: rt.EstimateContext, Stats: rt.Stats, Queries: clonePool(pool), Config: lcfg})
		}
	}

	fmt.Fprintf(os.Stderr, "loadgen: offering %.0f qps x %d lane(s) to %s for %v (%d-query pool)\n",
		*qps, len(lanes), *url, *duration, len(pool))
	ledger := loadgen.RunLanes(ctx, lanes)

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	// Single-lane runs keep the flat Report shape older tooling parses;
	// multi-lane runs emit the per-tenant ledger.
	var payload any = ledger
	if len(lanes) == 1 {
		payload = ledger[lanes[0].Target]
	}
	if err := enc.Encode(payload); err != nil {
		fatal(err)
	}
	for _, lane := range lanes {
		rep := ledger[lane.Target]
		fmt.Fprintf(os.Stderr,
			"loadgen: [%s] %d sent → %d ok, %d shed(429), %d unavailable, %d errors; p50 %.2fms p99 %.2fms (shed p99 %.2fms); %s codec, %.1f KiB out / %.1f KiB in\n",
			lane.Target, rep.Sent, rep.OK, rep.Shed, rep.Unavailable, rep.Errors, rep.LatencyMsP50, rep.LatencyMsP99, rep.ShedMsP99,
			rep.Codec, float64(rep.WireBytesOut)/1024, float64(rep.WireBytesIn)/1024)
	}
	if err := obsShutdown(); err != nil {
		fatal(err)
	}
}

// clonePool gives each lane its own query slice so lanes never share
// iteration state (the queries themselves are immutable).
func clonePool(pool []*query.Query) []*query.Query {
	return append([]*query.Query(nil), pool...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
