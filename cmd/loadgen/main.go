// Command loadgen replays a synthetic workload against a running paced
// estimator service at a target QPS and reports latency percentiles and
// shed rates as JSON — the end-to-end evidence that the server sheds
// load (fast 429s, bounded p99) instead of collapsing into timeouts.
//
// Each request is one single-query estimate call (client-side coalescing
// off) so every latency sample is one wire round trip.
//
// Against a multi-tenant host, -target routes the load at named tenants:
// one id replays against that tenant alone; a comma-separated list runs
// one concurrent lane per tenant, each offered the full -qps, and the
// report becomes a per-tenant ledger keyed by tenant id.
//
// Beyond the uniform open loop, -spec plans a realistic stream with
// internal/workloadgen — a skew-rated client population firing bursty
// arrivals, each request under its own X-Pace-Client identity, with
// query shapes fitted from the dataset's historical workload — and the
// report grows per-SLO-class and per-client splits. -record writes the
// planned stream as a JSONL trace; -replay fires a recorded trace
// bit-exactly; -calibrate gates the run's ledger against a previously
// recorded report (exit 1 when the deltas exceed tolerance).
//
// Examples:
//
//	paced -addr 127.0.0.1:8645 -rate 2000 &
//	loadgen -url http://127.0.0.1:8645 -qps 4000 -duration 10s
//	loadgen -url http://127.0.0.1:8645 -target a,b -qps 500
//	loadgen -url http://127.0.0.1:8645 -spec bursty -duration 10s -record t.jsonl -out rec.json
//	loadgen -url http://127.0.0.1:8645 -replay t.jsonl -calibrate rec.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/loadgen"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/workload"
	"pace/internal/workloadgen"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8645", "paced service base URL")
		target      = flag.String("target", "", "tenant id(s) to load, comma-separated (default: the legacy unrouted endpoints)")
		datasetName = flag.String("dataset", "dmv", "dataset the service hosts (workload source)")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		seed        = cli.Seed()
		nQueries    = flag.Int("queries", 200, "distinct queries in the replayed pool")
		qps         = flag.Float64("qps", 1000, "offered request rate (per lane; ignored with -spec/-replay)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		clientID    = flag.String("client", "", "X-Pace-Client identity (default host/pid; per-planned-client with -spec/-replay)")
		codecName   = flag.String("codec", "binary", "data-path wire codec: binary or json (415 from an older server downgrades the lane to json)")
		authToken   = cli.AuthToken()
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		specName    = flag.String("spec", "", "workload spec: a built-in profile (uniform, bursty) or a JSON spec file")
		record      = flag.String("record", "", "record the planned stream as a JSONL trace here (requires -spec)")
		replayPath  = flag.String("replay", "", "replay a recorded trace instead of planning (mutually exclusive with -spec)")
		calPath     = flag.String("calibrate", "", "recorded report JSON to gate this run against (exit 1 on calibration failure)")
		workers     = flag.Int("workers", 0, "schedule-generation fan-out (any value plans the identical stream)")
		obsFlags    = cli.Obs()
	)
	flag.Parse()
	_, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fatal(err)
	}
	if *specName != "" && *replayPath != "" {
		fatal(fmt.Errorf("-spec and -replay are mutually exclusive"))
	}
	if *record != "" && *specName == "" {
		fatal(fmt.Errorf("-record requires -spec (replays are already recorded)"))
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fatal(err)
	}
	pool := workload.Queries(w.WGen.Random(*nQueries))

	// Plan (or load) the realistic stream when asked.
	var sched *loadgen.Schedule
	switch {
	case *replayPath != "":
		sched, err = workloadgen.ReadTrace(*replayPath, w.DS.Meta)
		if err != nil {
			fatal(err)
		}
	case *specName != "":
		spec, err := loadSpecArg(*specName)
		if err != nil {
			fatal(err)
		}
		// Query shapes track the dataset's historical workload, so the
		// replayed stream presents the mix the estimator trained under.
		shapes := workloadgen.FitShapes(workload.Queries(w.History))
		sched, err = workloadgen.Generate(spec, pool, shapes, *duration, *workers)
		if err != nil {
			fatal(err)
		}
		if *record != "" {
			if err := workloadgen.WriteTrace(*record, sched, w.DS.Meta); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "loadgen: recorded %d arrivals / %d clients to %s\n",
				len(sched.Arrivals), len(sched.Clients), *record)
		}
	}

	lcfg := loadgen.Config{QPS: *qps, Duration: *duration, Timeout: *timeout}
	var tenants []string
	for _, id := range strings.Split(*target, ",") {
		if id = strings.TrimSpace(id); id != "" {
			tenants = append(tenants, id)
		}
	}

	// One shared client; each lane gets its own routed target view so
	// per-tenant wire counters stay separate while connections pool.
	rc, err := remote.NewClient(*url, remote.Options{
		CoalesceWindow: 0, // one request per estimate: honest per-call latency
		RequestTimeout: *timeout,
		ClientID:       *clientID,
		AuthToken:      *authToken,
		Codec:          *codecName,
	})
	if err != nil {
		fatal(err)
	}
	defer rc.Close()

	lane := func(id, name string) loadgen.Lane {
		rt := rc.Target(id)
		l := loadgen.Lane{Target: name, Est: rt.EstimateContext, Stats: rt.Stats, Queries: clonePool(pool), Config: lcfg}
		if sched != nil {
			l.Schedule = sched
			l.FireAs, l.Stats = fireAs(rc, id, rt)
		}
		return l
	}
	var lanes []loadgen.Lane
	if len(tenants) == 0 {
		lanes = []loadgen.Lane{lane("", "default")}
	} else {
		for _, id := range tenants {
			lanes = append(lanes, lane(id, id))
		}
	}

	if sched != nil {
		fmt.Fprintf(os.Stderr, "loadgen: replaying %q: %d arrivals / %d clients x %d lane(s) to %s over %v\n",
			sched.Spec.Name, len(sched.Arrivals), len(sched.Clients), len(lanes), *url, *duration)
	} else {
		fmt.Fprintf(os.Stderr, "loadgen: offering %.0f qps x %d lane(s) to %s for %v (%d-query pool)\n",
			*qps, len(lanes), *url, *duration, len(pool))
	}
	ledger := loadgen.RunLanes(ctx, lanes)

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	// Single-lane runs keep the flat Report shape older tooling parses;
	// multi-lane runs emit the per-tenant ledger.
	var payload any = ledger
	if len(lanes) == 1 {
		payload = ledger[lanes[0].Target]
	}
	if err := enc.Encode(payload); err != nil {
		fatal(err)
	}
	for _, lane := range lanes {
		rep := ledger[lane.Target]
		fmt.Fprintf(os.Stderr,
			"loadgen: [%s] %d offered → %d ok, %d shed(429), %d unavailable, %d errors, %d dropped; p50 %.2fms p99 %.2fms (shed p99 %.2fms); %s codec, %.1f KiB out / %.1f KiB in\n",
			lane.Target, rep.Offered, rep.OK, rep.Shed, rep.Unavailable, rep.Errors, rep.ClientDropped,
			rep.LatencyMsP50, rep.LatencyMsP99, rep.ShedMsP99,
			rep.Codec, float64(rep.WireBytesOut)/1024, float64(rep.WireBytesIn)/1024)
	}
	if err := obsShutdown(); err != nil {
		fatal(err)
	}

	// Calibration gate: diff this run's aggregate ledger against the
	// recorded report and fail loudly when the replay has drifted.
	if *calPath != "" {
		recorded, err := loadReport(*calPath)
		if err != nil {
			fatal(err)
		}
		cal := loadgen.Calibrate(recorded, ledger.Aggregate(), loadgen.CalTolerance{})
		fmt.Fprintln(os.Stderr, cal)
		if !cal.Pass {
			os.Exit(1)
		}
	}
}

// fireAs routes a planned client identity onto the wire: one routed
// target per identity (lazily, they share the HTTP pool) so the server
// sees X-Pace-Client per planned client, not one monolithic generator.
// The returned stats func sums the wire counters across every identity
// so the lane's byte/codec columns cover the whole population.
func fireAs(rc *remote.Client, tenant string, fallback *remote.RemoteTarget) (loadgen.Fire, func() remote.Stats) {
	var (
		mu      sync.Mutex
		targets = map[string]*remote.RemoteTarget{}
	)
	fire := func(ctx context.Context, client string, q *query.Query) (float64, error) {
		if client == "" {
			return fallback.EstimateContext(ctx, q)
		}
		mu.Lock()
		rt, ok := targets[client]
		if !ok {
			rt = rc.TargetAs(tenant, client)
			targets[client] = rt
		}
		mu.Unlock()
		return rt.EstimateContext(ctx, q)
	}
	stats := func() remote.Stats {
		sum := fallback.Stats()
		mu.Lock()
		defer mu.Unlock()
		for _, rt := range targets {
			s := rt.Stats()
			sum.Requests += s.Requests
			sum.Queries += s.Queries
			sum.Coalesced += s.Coalesced
			sum.Overloaded += s.Overloaded
			sum.Invalid += s.Invalid
			sum.Unavailable += s.Unavailable
			sum.BytesOut += s.BytesOut
			sum.BytesIn += s.BytesIn
			if s.Codec != sum.Codec {
				sum.Codec = s.Codec // a downgraded identity taints the lane
			}
		}
		return sum
	}
	return fire, stats
}

// loadSpecArg resolves -spec: a built-in profile name or a JSON file.
func loadSpecArg(arg string) (workloadgen.Spec, error) {
	if spec, err := workloadgen.Builtin(arg); err == nil {
		return spec, nil
	}
	return workloadgen.LoadSpec(arg)
}

// loadReport reads a recorded report for calibration: either a flat
// single-lane Report or a multi-lane ledger (aggregated).
func loadReport(path string) (loadgen.Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return loadgen.Report{}, err
	}
	var ledger loadgen.Ledger
	if err := json.Unmarshal(raw, &ledger); err == nil && len(ledger) > 0 {
		if agg := ledger.Aggregate(); agg.Offered > 0 {
			return agg, nil
		}
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return loadgen.Report{}, fmt.Errorf("loadgen: %s is not a recorded report: %w", path, err)
	}
	return rep, nil
}

// clonePool gives each lane its own query slice so lanes never share
// iteration state (the queries themselves are immutable).
func clonePool(pool []*query.Query) []*query.Query {
	return append([]*query.Query(nil), pool...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
