// Command loadgen replays a synthetic workload against a running paced
// estimator service at a target QPS and reports latency percentiles and
// shed rates as JSON — the end-to-end evidence that the server sheds
// load (fast 429s, bounded p99) instead of collapsing into timeouts.
//
// Each request is one single-query /v1/estimate call (client-side
// coalescing off) so every latency sample is one wire round trip.
//
// Examples:
//
//	paced -addr 127.0.0.1:8645 -rate 2000 &
//	loadgen -url http://127.0.0.1:8645 -qps 4000 -duration 10s
//	loadgen -url http://127.0.0.1:8645 -qps 1000 -out bench.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pace/internal/cli"
	"pace/internal/experiments"
	"pace/internal/loadgen"
	"pace/internal/remote"
	"pace/internal/workload"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8645", "paced service base URL")
		datasetName = flag.String("dataset", "dmv", "dataset the service hosts (workload source)")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = profile default)")
		seed        = cli.Seed()
		nQueries    = flag.Int("queries", 200, "distinct queries in the replayed pool")
		qps         = flag.Float64("qps", 1000, "offered request rate")
		duration    = flag.Duration("duration", 10*time.Second, "how long to offer load")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request timeout")
		clientID    = flag.String("client", "", "X-Pace-Client identity (default host/pid)")
		out         = flag.String("out", "", "write the JSON report here (default stdout)")
		obsFlags    = cli.Obs()
	)
	flag.Parse()
	_, obsShutdown, err := obsFlags.Setup()
	if err != nil {
		fatal(err)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	cfg := experiments.Config{Seed: *seed, Scale: *scale}.WithDefaults()
	w, err := experiments.NewWorld(*datasetName, cfg)
	if err != nil {
		fatal(err)
	}
	pool := workload.Queries(w.WGen.Random(*nQueries))

	rt, err := remote.New(*url, remote.Options{
		CoalesceWindow: 0, // one request per estimate: honest per-call latency
		RequestTimeout: *timeout,
		ClientID:       *clientID,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	fmt.Fprintf(os.Stderr, "loadgen: offering %.0f qps to %s for %v (%d-query pool)\n",
		*qps, *url, *duration, len(pool))
	rep := loadgen.Run(ctx, rt.EstimateContext, pool, loadgen.Config{
		QPS:      *qps,
		Duration: *duration,
		Timeout:  *timeout,
	})

	enc := json.NewEncoder(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"loadgen: %d sent → %d ok, %d shed(429), %d errors; p50 %.2fms p99 %.2fms (shed p99 %.2fms)\n",
		rep.Sent, rep.OK, rep.Shed, rep.Errors, rep.LatencyMsP50, rep.LatencyMsP99, rep.ShedMsP99)
	if err := obsShutdown(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
