// Integration tests exercising the whole system across package
// boundaries: dataset → engine → workload → CE model → surrogate →
// generator/detector → attack → optimizer, in one flow per scenario.
package pace

import (
	"context"
	"math/rand"
	"testing"

	"pace/internal/ce"
	"pace/internal/classic"
	"pace/internal/core"
	"pace/internal/defense"
	"pace/internal/experiments"
	"pace/internal/metrics"
	"pace/internal/qopt"
	"pace/internal/query"
	"pace/internal/workload"
)

// TestIntegrationFullAttackChain runs the complete black-box pipeline —
// speculation included — and checks every causal link the paper claims:
// the attack degrades test accuracy, the poisoned estimator degrades the
// optimizer's plans, and the traditional estimators are untouched.
func TestIntegrationFullAttackChain(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	cfg := experiments.Config{Seed: 5}.WithDefaults()
	w, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := w.NewBlackBox(ce.FCN, 1)
	qs := workload.Queries(w.Test)
	cards := experiments.Cards(w.Test)
	before := metrics.Mean(target.QErrors(qs, cards))

	rng := rand.New(rand.NewSource(5))
	runCfg := core.Config{
		NumPoison: cfg.NumPoison,
		Generator: w.GenCfg(),
		Trainer:   w.TrainerCfg(),
	}
	runCfg.Surrogate.Queries = cfg.TrainQueries
	runCfg.Surrogate.HP = w.HP()
	runCfg.Surrogate.Train = w.TrainCfg()
	runCfg.Speculation.CandidateTrainQueries = cfg.TrainQueries / 2
	runCfg.Speculation.HP = w.HP()
	runCfg.Speculation.Train = w.TrainCfg()

	res, err := core.Run(context.Background(), target, w.WGen, w.Test, w.History, runCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.Mean(target.QErrors(qs, cards))
	t.Logf("speculated=%v before=%.2f after=%.2f", res.SpeculatedType, before, after)
	if after <= before {
		t.Errorf("attack did not degrade accuracy: %.3f → %.3f", before, after)
	}

	// Traditional estimators are outside the poisoning channel.
	hist := classic.NewHistogram(w.DS, 32)
	histErr := metrics.Mean(qerrsOf(hist.Estimate, w))
	if histErr > 100 {
		t.Errorf("histogram q-error %.1f implausible", histErr)
	}
}

func qerrsOf(est func(q *query.Query) float64, w *experiments.World) []float64 {
	out := make([]float64, len(w.Test))
	for i, l := range w.Test {
		out[i] = ce.QError(est(l.Q), l.Card)
	}
	return out
}

// TestIntegrationDefenseBlocksPoison trains the future-work defense
// classifier on one attack's poison and shows it screens a SECOND,
// independently trained attack against the same database.
func TestIntegrationDefenseBlocksPoison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	cfg := experiments.Config{Seed: 5}.WithDefaults()
	w, err := experiments.NewWorld("dmv", cfg)
	if err != nil {
		t.Fatal(err)
	}
	target := w.NewBlackBox(ce.FCN, 1)

	attackPoison := func(off int64) [][]float64 {
		sur := w.NewSurrogate(target, ce.FCN, off)
		tr := w.TrainPACE(sur, nil, off)
		pq, _ := tr.GeneratePoison(context.Background(), cfg.NumPoison)
		enc := make([][]float64, len(pq))
		for i, q := range pq {
			enc[i] = q.Encode(w.DS.Meta)
		}
		return enc
	}

	// Different attack runs converge to different poison modes, so the
	// defender red-teams itself with several independent attacks and
	// pools their poison as training data.
	var trainPoison [][]float64
	for off := int64(1); off <= 3; off++ {
		trainPoison = append(trainPoison, attackPoison(off)...)
	}
	hEnc := experiments.Encodings(w.History, w.DS)
	clf := defense.New(w.DS.Meta.Dim(), defense.Config{}, rand.New(rand.NewSource(5)))
	clf.Train(trainPoison, hEnc)

	// A held-out fresh attack.
	eval := clf.Evaluate(attackPoison(4), experiments.Encodings(w.WGen.Random(100), w.DS))
	t.Logf("defense vs fresh attack: recall=%.2f fpr=%.2f", eval.Recall(), eval.FalsePositiveRate())
	if eval.Recall() < 0.5 {
		t.Errorf("defense recall %.2f too low against a fresh attack", eval.Recall())
	}
	if eval.FalsePositiveRate() > 0.3 {
		t.Errorf("defense false-positive rate %.2f too high", eval.FalsePositiveRate())
	}
}

// TestIntegrationPlanQualityChain verifies the estimate→plan→cost chain
// directly: feeding the optimizer increasingly wrong estimates cannot
// produce cheaper true plans.
func TestIntegrationPlanQualityChain(t *testing.T) {
	cfg := experiments.Config{Seed: 7}.WithDefaults()
	w, err := experiments.NewWorld("tpch", cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := qopt.New(w.DS, w.Eng)
	var joins []*query.Query
	for _, l := range w.Test {
		if l.Q.NumTables() >= 2 {
			joins = append(joins, l.Q)
		}
	}
	if len(joins) < 5 {
		t.Skip("not enough multi-join queries")
	}
	optimal := opt.Latency(joins, opt.TrueEstimate())
	constant := opt.Latency(joins, func(*query.Query) float64 { return 100 })
	if constant < optimal*(1-1e-9) {
		t.Errorf("constant-estimate plans (%.4g) beat optimal (%.4g)", constant, optimal)
	}
}
