// Package pace hosts the benchmark harness that regenerates every table
// and figure of the PACE evaluation (§7). One benchmark corresponds to
// one table/figure; DESIGN.md carries the full mapping. Benchmarks print
// nothing (output goes to io.Discard) — run cmd/experiments to see the
// paper-layout rows; run these to measure the substrate's cost and to
// verify every experiment executes end to end.
//
// Benchmarks use the quick profile: reduced workload sizes and schedules
// so the full suite finishes in minutes. `go test -bench=. -benchtime=1x`
// runs each experiment exactly once.
package pace

import (
	"io"
	"testing"

	"pace/internal/ce"
	"pace/internal/experiments"
)

// benchCfg is the quick profile shared by all benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{
		Scale:          0.05,
		Seed:           5,
		TrainQueries:   200,
		TestQueries:    60,
		NumPoison:      50,
		Hidden:         16,
		Epochs:         30,
		Inner:          10,
		Outer:          8,
		SpecBlackBoxes: 1,
		E2EQueries:     8,
	}.WithDefaults()
}

func runOnce(b *testing.B, f func() error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := f(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6to9_AvgQError regenerates the mean-Q-error comparison
// of Figures 6–9 (all six CE models × six methods) on dmv.
func BenchmarkFigure6to9_AvgQError(b *testing.B) {
	runOnce(b, func() error {
		res, err := experiments.RunMatrix("dmv", ce.Types(), benchCfg())
		if err != nil {
			return err
		}
		res.PrintMean(io.Discard)
		return nil
	})
}

// BenchmarkTable3_PercentileQError regenerates the percentile rows of
// Table 3 for the four main models on tpch.
func BenchmarkTable3_PercentileQError(b *testing.B) {
	models := []ce.Type{ce.FCN, ce.FCNPool, ce.MSCN, ce.RNN}
	runOnce(b, func() error {
		res, err := experiments.RunMatrix("tpch", models, benchCfg())
		if err != nil {
			return err
		}
		res.PrintPercentiles(io.Discard, models)
		return nil
	})
}

// BenchmarkTable4_LSTMLinear regenerates the LSTM/Linear tail rows of
// Table 4 on dmv.
func BenchmarkTable4_LSTMLinear(b *testing.B) {
	models := []ce.Type{ce.LSTM, ce.Linear}
	runOnce(b, func() error {
		res, err := experiments.RunMatrix("dmv", models, benchCfg())
		if err != nil {
			return err
		}
		res.PrintTail(io.Discard, models)
		return nil
	})
}

// BenchmarkTable5_E2ELatency regenerates the end-to-end plan-cost rows of
// Table 5 on tpch with the FCN target.
func BenchmarkTable5_E2ELatency(b *testing.B) {
	models := []ce.Type{ce.FCN}
	runOnce(b, func() error {
		res, err := experiments.RunMatrix("tpch", models, benchCfg())
		if err != nil {
			return err
		}
		res.PrintE2E(io.Discard, models)
		return nil
	})
}

// BenchmarkTable6_SpeculationAccuracy regenerates the model-type
// speculation accuracy of Table 6 on dmv.
func BenchmarkTable6_SpeculationAccuracy(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunSpeculation(io.Discard, benchCfg(), []string{"dmv"})
	})
}

// BenchmarkTable7_IncorrectSpeculation regenerates the wrong-surrogate
// decrease matrix of Table 7 for a three-type subset.
func BenchmarkTable7_IncorrectSpeculation(b *testing.B) {
	types := []ce.Type{ce.FCN, ce.MSCN, ce.Linear}
	runOnce(b, func() error {
		return experiments.RunWrongType(io.Discard, benchCfg(), types)
	})
}

// BenchmarkFigure10_TrainingStrategy regenerates the combined-vs-direct
// surrogate-loss comparison of Figure 10 for the FCN target.
func BenchmarkFigure10_TrainingStrategy(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunTrainingStrategy(io.Discard, benchCfg(), []ce.Type{ce.FCN})
	})
}

// BenchmarkFigure11_InconsistentHyperparams regenerates the
// hyperparameter-mismatch sweep of Figure 11 (imdb, FCN).
func BenchmarkFigure11_InconsistentHyperparams(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunHyperMismatch(io.Discard, benchCfg())
	})
}

// BenchmarkTable8_PoisonBudget regenerates the poisoning-budget sweep of
// Table 8 on dmv.
func BenchmarkTable8_PoisonBudget(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunBudget(io.Discard, benchCfg(), []string{"dmv"})
	})
}

// BenchmarkTable9_Overhead regenerates the PACE overhead rows of Table 9
// on dmv.
func BenchmarkTable9_Overhead(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunOverhead(io.Discard, benchCfg(), []string{"dmv"})
	})
}

// BenchmarkTable10_OverheadByCount regenerates the overhead-by-budget
// rows of Table 10 on dmv.
func BenchmarkTable10_OverheadByCount(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunOverheadByCount(io.Discard, benchCfg())
	})
}

// BenchmarkFigure12_BasicVsOptimized regenerates the basic-vs-accelerated
// algorithm comparison of Figure 12 for the FCN target.
func BenchmarkFigure12_BasicVsOptimized(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunBasicVsOptimized(io.Discard, benchCfg(), []ce.Type{ce.FCN})
	})
}

// BenchmarkFigure13_AnomalyDetector regenerates the detector
// effectiveness/normality trade-off of Figure 13 on dmv.
func BenchmarkFigure13_AnomalyDetector(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunDetectorEffect(io.Discard, benchCfg())
	})
}

// BenchmarkFigure14_Incremental regenerates the incremental
// train-and-attack rounds of Figure 14 on dmv.
func BenchmarkFigure14_Incremental(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunIncremental(io.Discard, benchCfg(), []string{"dmv"})
	})
}

// BenchmarkFigure15_Convergence regenerates the objective convergence
// curve of Figure 15 on dmv.
func BenchmarkFigure15_Convergence(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunConvergence(io.Discard, benchCfg(), []string{"dmv"})
	})
}

// BenchmarkAblation_AttackComponents measures the ablation study of the
// attack trainer's design choices (hypergradient, inference ascent,
// validity widening, budget selection) on dmv.
func BenchmarkAblation_AttackComponents(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunAblations(io.Discard, benchCfg())
	})
}

// BenchmarkExtension_RobustnessAdvisor measures the §8 future-work
// robustness advisor: every CE model attacked and ranked by degradation.
func BenchmarkExtension_RobustnessAdvisor(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunRobustnessAdvisor(io.Discard, benchCfg(), "dmv")
	})
}

// BenchmarkExtension_TraditionalComparison measures the learned-vs-
// traditional (histogram/sampling) comparison under poisoning on tpch.
func BenchmarkExtension_TraditionalComparison(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunTraditionalComparison(io.Discard, benchCfg(), "tpch")
	})
}

// BenchmarkExtension_RegularizationDefense measures the dropout-as-
// defense sweep: clean vs attacked accuracy per dropout rate on dmv.
func BenchmarkExtension_RegularizationDefense(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunRegularizationDefense(io.Discard, benchCfg())
	})
}

// BenchmarkExtension_DriftStudy measures the drift study: estimator
// accuracy on a post-drift workload, stale vs adapted.
func BenchmarkExtension_DriftStudy(b *testing.B) {
	runOnce(b, func() error {
		return experiments.RunDriftStudy(io.Discard, benchCfg())
	})
}
