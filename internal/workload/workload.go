// Package workload generates the query workloads of the reproduction:
// random training/testing workloads (the paper's DMV/TPC-H style), a
// template-driven mode (the paper's IMDB-JOB / STATS-CEB style), and the
// diagnostic probe workloads that model-type speculation (§4.1) relies on
// — queries with controlled column counts and predicate range sizes.
package workload

import (
	"fmt"
	"math/rand"

	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/query"
)

// Labeled pairs a query with its true cardinality.
type Labeled struct {
	Q    *query.Query
	Card float64
}

// Generator draws queries over one dataset and labels them with the exact
// engine. All randomness flows from Rng, so workloads are reproducible.
type Generator struct {
	DS  *dataset.Dataset
	Eng *engine.Engine
	Rng *rand.Rand

	// MaxJoinTables caps how many tables a random query may join
	// (0 means min(4, #tables)).
	MaxJoinTables int
	// PredProb is the probability that each attribute of a joined
	// table receives a range predicate (0 means 0.6).
	PredProb float64

	templates [][]int
}

// NewGenerator builds a workload generator for ds.
func NewGenerator(ds *dataset.Dataset, eng *engine.Engine, rng *rand.Rand) *Generator {
	g := &Generator{DS: ds, Eng: eng, Rng: rng}
	g.templates = defaultTemplates(ds)
	return g
}

// WithRng returns a copy of g driven by rng, sharing the dataset,
// engine, and templates. Concurrent pipeline stages each take a clone
// with a private stream — a Generator itself must never be shared across
// goroutines (Rng is stateful).
func (g *Generator) WithRng(rng *rand.Rand) *Generator {
	out := *g
	out.Rng = rng
	return &out
}

func (g *Generator) maxJoin() int {
	if g.MaxJoinTables > 0 {
		return g.MaxJoinTables
	}
	if n := len(g.DS.Tables); n < 4 {
		return n
	}
	return 4
}

func (g *Generator) predProb() float64 {
	if g.PredProb > 0 {
		return g.PredProb
	}
	return 0.6
}

// RandomQuery draws one random connected SPJ query: a random-walk subtree
// of the join graph plus data-centered range predicates (each predicate is
// centered on the value of a randomly sampled row, so selectivities are
// non-trivial even on skewed columns).
func (g *Generator) RandomQuery() *query.Query {
	nTables := 1 + g.Rng.Intn(g.maxJoin())
	q := query.New(g.DS.Meta)
	g.selectSubtree(q, nTables)
	g.fillPredicates(q, g.predProb())
	return q.Normalize(g.DS.Meta)
}

// selectSubtree marks a connected set of nTables tables in q via a random
// walk over the join graph.
func (g *Generator) selectSubtree(q *query.Query, nTables int) {
	n := len(g.DS.Tables)
	start := g.Rng.Intn(n)
	q.Tables[start] = true
	frontier := g.neighbors(start, q)
	for count := 1; count < nTables && len(frontier) > 0; count++ {
		next := frontier[g.Rng.Intn(len(frontier))]
		q.Tables[next] = true
		frontier = nil
		for t := 0; t < n; t++ {
			if !q.Tables[t] {
				continue
			}
			frontier = append(frontier, g.neighbors(t, q)...)
		}
	}
}

func (g *Generator) neighbors(t int, q *query.Query) []int {
	var out []int
	for o := 0; o < len(g.DS.Tables); o++ {
		if !q.Tables[o] && g.DS.Joinable(t, o) {
			out = append(out, o)
		}
	}
	return out
}

// fillPredicates adds data-centered range predicates to the joined tables
// of q with per-attribute probability p.
func (g *Generator) fillPredicates(q *query.Query, p float64) {
	for t, in := range q.Tables {
		if !in {
			continue
		}
		lo, hi := g.DS.Meta.Attrs(t)
		tab := g.DS.Tables[t]
		for a := lo; a < hi; a++ {
			if g.Rng.Float64() >= p {
				continue
			}
			q.Bounds[a] = g.centeredRange(tab, a-lo, 0.02+g.Rng.Float64()*0.5)
		}
	}
}

// centeredRange returns a range of the given width centered on the value
// of a random row of the column.
func (g *Generator) centeredRange(tab *dataset.Table, col int, width float64) [2]float64 {
	c := tab.Cols[col][g.Rng.Intn(tab.Rows)]
	lo := c - width/2
	hi := c + width/2
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return [2]float64{lo, hi}
}

// Label computes exact cardinalities for qs, dropping queries with zero
// cardinality (the paper eliminates them during training because Q-error
// is undefined at zero).
func (g *Generator) Label(qs []*query.Query) []Labeled {
	out := make([]Labeled, 0, len(qs))
	for _, q := range qs {
		card, err := g.Eng.Cardinality(q)
		if err != nil || card < 1 {
			continue
		}
		out = append(out, Labeled{Q: q, Card: card})
	}
	return out
}

// Random produces n labeled random queries (re-drawing until n non-empty
// queries are found).
func (g *Generator) Random(n int) []Labeled {
	out := make([]Labeled, 0, n)
	for len(out) < n {
		q := g.RandomQuery()
		card, err := g.Eng.Cardinality(q)
		if err != nil || card < 1 {
			continue
		}
		out = append(out, Labeled{Q: q, Card: card})
	}
	return out
}

// Templated produces n labeled queries drawn from the dataset's join
// templates (fixed table sets with randomized predicates), mirroring the
// paper's use of IMDB-JOB and STATS-CEB templates. For single-table
// datasets it degrades to Random.
func (g *Generator) Templated(n int) []Labeled {
	if len(g.templates) == 0 {
		return g.Random(n)
	}
	out := make([]Labeled, 0, n)
	for len(out) < n {
		tmpl := g.templates[g.Rng.Intn(len(g.templates))]
		q := query.New(g.DS.Meta)
		for _, t := range tmpl {
			q.Tables[t] = true
		}
		g.fillPredicates(q, g.predProb())
		q.Normalize(g.DS.Meta)
		card, err := g.Eng.Cardinality(q)
		if err != nil || card < 1 {
			continue
		}
		out = append(out, Labeled{Q: q, Card: card})
	}
	return out
}

// defaultTemplates derives join templates from the dataset's join graph:
// every single edge, plus every 3-table path rooted at the highest-degree
// table (a fact-table-centric star, like the JOB templates).
func defaultTemplates(ds *dataset.Dataset) [][]int {
	if len(ds.Tables) <= 1 {
		return nil
	}
	var out [][]int
	for _, e := range ds.Edges {
		out = append(out, []int{e.Child, e.Parent})
	}
	deg := make([]int, len(ds.Tables))
	for _, e := range ds.Edges {
		deg[e.Child]++
		deg[e.Parent]++
	}
	hub := 0
	for t := range deg {
		if deg[t] > deg[hub] {
			hub = t
		}
	}
	var hubNeighbors []int
	for t := range ds.Tables {
		if t != hub && ds.Joinable(hub, t) {
			hubNeighbors = append(hubNeighbors, t)
		}
	}
	for i := 0; i < len(hubNeighbors); i++ {
		for j := i + 1; j < len(hubNeighbors); j++ {
			out = append(out, []int{hub, hubNeighbors[i], hubNeighbors[j]})
		}
	}
	return out
}

// ProbeColumns generates nPer labeled queries for every predicate count in
// counts — the "varying the number of columns" axis of the speculation
// probe workload (§4.1).
func (g *Generator) ProbeColumns(counts []int, nPer int) ([]Labeled, error) {
	var out []Labeled
	for _, nc := range counts {
		got := 0
		for attempts := 0; got < nPer; attempts++ {
			if attempts > 200*nPer {
				return nil, fmt.Errorf("workload: cannot build probe with %d predicates", nc)
			}
			q, ok := g.probeQuery(nc, 0.3)
			if !ok {
				continue
			}
			card, err := g.Eng.Cardinality(q)
			if err != nil || card < 1 {
				continue
			}
			out = append(out, Labeled{Q: q, Card: card})
			got++
		}
	}
	return out, nil
}

// ProbeRanges generates nPer labeled queries for every predicate width in
// widths — the "range size of filter predicates" axis of the speculation
// probe workload (§4.1).
func (g *Generator) ProbeRanges(widths []float64, nPer int) ([]Labeled, error) {
	var out []Labeled
	for _, w := range widths {
		got := 0
		for attempts := 0; got < nPer; attempts++ {
			if attempts > 200*nPer {
				return nil, fmt.Errorf("workload: cannot build probe with width %g", w)
			}
			q, ok := g.probeQuery(2, w)
			if !ok {
				continue
			}
			card, err := g.Eng.Cardinality(q)
			if err != nil || card < 1 {
				continue
			}
			out = append(out, Labeled{Q: q, Card: card})
			got++
		}
	}
	return out, nil
}

// probeQuery builds a query with exactly nPreds predicates of the given
// width (0 means random widths), over a random connected table set large
// enough to host them.
func (g *Generator) probeQuery(nPreds int, width float64) (*query.Query, bool) {
	q := query.New(g.DS.Meta)
	g.selectSubtree(q, 1+g.Rng.Intn(g.maxJoin()))
	var attrs []int
	for t, in := range q.Tables {
		if !in {
			continue
		}
		lo, hi := g.DS.Meta.Attrs(t)
		for a := lo; a < hi; a++ {
			attrs = append(attrs, a)
		}
	}
	if len(attrs) < nPreds {
		return nil, false
	}
	g.Rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	for _, a := range attrs[:nPreds] {
		w := width
		if w == 0 {
			w = 0.02 + g.Rng.Float64()*0.5
		}
		t := g.DS.Meta.TableOf(a)
		lo, _ := g.DS.Meta.Attrs(t)
		q.Bounds[a] = g.centeredRange(g.DS.Tables[t], a-lo, w)
	}
	q.Normalize(g.DS.Meta)
	return q, true
}

// Split partitions workload w into k equal consecutive chunks (the paper's
// incremental-training experiment, Fig 14). The final chunk absorbs any
// remainder.
func Split(w []Labeled, k int) [][]Labeled {
	if k <= 0 {
		return nil
	}
	out := make([][]Labeled, 0, k)
	size := len(w) / k
	for i := 0; i < k; i++ {
		lo := i * size
		hi := lo + size
		if i == k-1 {
			hi = len(w)
		}
		out = append(out, w[lo:hi])
	}
	return out
}

// Queries extracts the query list from a labeled workload.
func Queries(w []Labeled) []*query.Query {
	out := make([]*query.Query, len(w))
	for i := range w {
		out[i] = w[i].Q
	}
	return out
}
