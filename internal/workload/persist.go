package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"pace/internal/query"
)

// persistedQuery is the JSON wire form of one labeled query.
type persistedQuery struct {
	Tables []int        `json:"tables"` // indexes of joined tables
	Bounds [][3]float64 `json:"bounds"` // [attr, lo, hi] for non-open predicates
	Card   float64      `json:"card"`
}

// Save writes a labeled workload as JSON, so a workload (historical,
// test, or poisoning) can be archived and replayed across processes.
func Save(w io.Writer, m *query.Meta, labeled []Labeled) error {
	out := make([]persistedQuery, len(labeled))
	for i, l := range labeled {
		pq := persistedQuery{Card: l.Card}
		for t, in := range l.Q.Tables {
			if in {
				pq.Tables = append(pq.Tables, t)
			}
		}
		for a, b := range l.Q.Bounds {
			if b[0] > 0 || b[1] < 1 {
				pq.Bounds = append(pq.Bounds, [3]float64{float64(a), b[0], b[1]})
			}
		}
		out[i] = pq
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a workload written by Save, validating table and attribute
// indexes against the schema meta.
func Load(r io.Reader, m *query.Meta) ([]Labeled, error) {
	var in []persistedQuery
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	out := make([]Labeled, len(in))
	for i, pq := range in {
		q := query.New(m)
		for _, t := range pq.Tables {
			if t < 0 || t >= m.NumTables() {
				return nil, fmt.Errorf("workload: query %d references table %d of %d", i, t, m.NumTables())
			}
			q.Tables[t] = true
		}
		for _, b := range pq.Bounds {
			a := int(b[0])
			if a < 0 || a >= m.NumAttrs() {
				return nil, fmt.Errorf("workload: query %d references attribute %d of %d", i, a, m.NumAttrs())
			}
			q.Bounds[a] = [2]float64{b[1], b[2]}
		}
		q.Normalize(m)
		out[i] = Labeled{Q: q, Card: pq.Card}
	}
	return out, nil
}
