package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"pace/internal/query"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := newGen(t, "tpch", 11)
	w := g.Random(25)

	var buf bytes.Buffer
	if err := Save(&buf, g.DS.Meta, w); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, g.DS.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("got %d queries, want %d", len(got), len(w))
	}
	for i := range w {
		if got[i].Card != w[i].Card {
			t.Fatalf("query %d card %g != %g", i, got[i].Card, w[i].Card)
		}
		if !reflect.DeepEqual(got[i].Q, w[i].Q) {
			t.Fatalf("query %d does not round-trip:\n got %+v\nwant %+v", i, got[i].Q, w[i].Q)
		}
	}
}

func TestLoadRejectsBadIndexes(t *testing.T) {
	g := newGen(t, "dmv", 12)
	badTable := `[{"tables":[7],"bounds":[],"card":1}]`
	if _, err := Load(strings.NewReader(badTable), g.DS.Meta); err == nil {
		t.Error("out-of-range table accepted")
	}
	badAttr := `[{"tables":[0],"bounds":[[99,0.1,0.2]],"card":1}]`
	if _, err := Load(strings.NewReader(badAttr), g.DS.Meta); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := Load(strings.NewReader("not json"), g.DS.Meta); err == nil {
		t.Error("garbage accepted")
	}
}

// TestRoundTripAdversarialBounds pins the persistence behavior at the
// numeric edges a fuzzer (or a poisoning attack crafting extreme
// predicates) can produce:
//
//   - a fully open [0, 1] predicate is dropped on Save and reproduced
//     exactly by Load;
//   - [-0, 1] is canonicalized: -0 > 0 is false, so Save treats it as
//     open and Load reproduces +0 — the bit pattern does NOT survive,
//     by design;
//   - a -0 lower bound on a non-open predicate survives the JSON trip
//     bit-exactly (clamp01 passes -0 through: -0 < 0 is false);
//   - the smallest subnormal (5e-324) survives bit-exactly, since Go's
//     JSON float formatting round-trips every finite float64.
func TestRoundTripAdversarialBounds(t *testing.T) {
	g := newGen(t, "dmv", 17)
	m := g.DS.Meta

	negZero := math.Copysign(0, -1)
	subnormal := math.SmallestNonzeroFloat64 // 5e-324

	q := query.New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0, 1}          // open: dropped, reproduced
	q.Bounds[1] = [2]float64{negZero, 1}    // canonicalized to [+0, 1]
	q.Bounds[2] = [2]float64{negZero, 0.5}  // -0 must survive
	q.Bounds[3] = [2]float64{subnormal, 1}  // subnormal must survive
	q.Bounds[4] = [2]float64{0, subnormal}  // degenerate sliver at 0
	w := []Labeled{{Q: q, Card: 1}}

	var buf bytes.Buffer
	if err := Save(&buf, m, w); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	got, err := Load(strings.NewReader(raw), m)
	if err != nil {
		t.Fatal(err)
	}
	b := got[0].Q.Bounds

	if b[0] != [2]float64{0, 1} {
		t.Errorf("open bound came back as %v", b[0])
	}
	if math.Signbit(b[1][0]) {
		t.Errorf("[-0, 1] must canonicalize to +0, got -0")
	}
	if !math.Signbit(b[2][0]) || b[2][1] != 0.5 {
		t.Errorf("[-0, 0.5] lost its -0: got %v (signbit %v)", b[2], math.Signbit(b[2][0]))
	}
	if math.Float64bits(b[3][0]) != math.Float64bits(subnormal) {
		t.Errorf("subnormal lower bound: got bits %x, want %x",
			math.Float64bits(b[3][0]), math.Float64bits(subnormal))
	}
	if math.Float64bits(b[4][1]) != math.Float64bits(subnormal) {
		t.Errorf("subnormal upper bound: got bits %x, want %x",
			math.Float64bits(b[4][1]), math.Float64bits(subnormal))
	}

	// A second trip must be a fixed point: Save(Load(x)) == x.
	var buf2 bytes.Buffer
	if err := Save(&buf2, m, got); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != raw {
		t.Errorf("persistence is not idempotent:\nfirst:  %s\nsecond: %s", raw, buf2.String())
	}
}

func TestSaveOmitsOpenBounds(t *testing.T) {
	g := newGen(t, "dmv", 13)
	w := g.Random(5)
	var buf bytes.Buffer
	if err := Save(&buf, g.DS.Meta, w); err != nil {
		t.Fatal(err)
	}
	// No [a, 0, 1] triples: open predicates are implicit.
	if strings.Contains(buf.String(), ",0,1]") {
		t.Error("open bounds serialized explicitly")
	}
}
