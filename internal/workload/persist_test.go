package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := newGen(t, "tpch", 11)
	w := g.Random(25)

	var buf bytes.Buffer
	if err := Save(&buf, g.DS.Meta, w); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, g.DS.Meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("got %d queries, want %d", len(got), len(w))
	}
	for i := range w {
		if got[i].Card != w[i].Card {
			t.Fatalf("query %d card %g != %g", i, got[i].Card, w[i].Card)
		}
		if !reflect.DeepEqual(got[i].Q, w[i].Q) {
			t.Fatalf("query %d does not round-trip:\n got %+v\nwant %+v", i, got[i].Q, w[i].Q)
		}
	}
}

func TestLoadRejectsBadIndexes(t *testing.T) {
	g := newGen(t, "dmv", 12)
	badTable := `[{"tables":[7],"bounds":[],"card":1}]`
	if _, err := Load(strings.NewReader(badTable), g.DS.Meta); err == nil {
		t.Error("out-of-range table accepted")
	}
	badAttr := `[{"tables":[0],"bounds":[[99,0.1,0.2]],"card":1}]`
	if _, err := Load(strings.NewReader(badAttr), g.DS.Meta); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if _, err := Load(strings.NewReader("not json"), g.DS.Meta); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveOmitsOpenBounds(t *testing.T) {
	g := newGen(t, "dmv", 13)
	w := g.Random(5)
	var buf bytes.Buffer
	if err := Save(&buf, g.DS.Meta, w); err != nil {
		t.Fatal(err)
	}
	// No [a, 0, 1] triples: open predicates are implicit.
	if strings.Contains(buf.String(), ",0,1]") {
		t.Error("open bounds serialized explicitly")
	}
}
