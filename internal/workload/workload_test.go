package workload

import (
	"math/rand"
	"testing"

	"pace/internal/dataset"
	"pace/internal/engine"
)

func newGen(t *testing.T, name string, seed int64) *Generator {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewGenerator(ds, engine.New(ds), rand.New(rand.NewSource(seed)))
}

func TestRandomWorkloadValid(t *testing.T) {
	for _, name := range dataset.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			g := newGen(t, name, 1)
			w := g.Random(30)
			if len(w) != 30 {
				t.Fatalf("got %d queries, want 30", len(w))
			}
			for _, l := range w {
				if l.Card < 1 {
					t.Errorf("labeled query with cardinality %g < 1", l.Card)
				}
				if !l.Q.Connected(g.DS.Joinable) {
					t.Error("random query not connected")
				}
				card, err := g.Eng.Cardinality(l.Q)
				if err != nil || card != l.Card {
					t.Errorf("label %g does not match engine %g (err %v)", l.Card, card, err)
				}
			}
		})
	}
}

func TestTemplatedWorkload(t *testing.T) {
	g := newGen(t, "imdb", 2)
	w := g.Templated(20)
	if len(w) != 20 {
		t.Fatalf("got %d queries, want 20", len(w))
	}
	multi := 0
	for _, l := range w {
		if l.Q.NumTables() >= 2 {
			multi++
		}
	}
	if multi != 20 {
		t.Errorf("templated queries joining <2 tables: %d/20 multi", multi)
	}
}

func TestTemplatedSingleTableFallsBack(t *testing.T) {
	g := newGen(t, "dmv", 3)
	w := g.Templated(10)
	if len(w) != 10 {
		t.Fatalf("got %d queries, want 10", len(w))
	}
}

func TestProbeColumns(t *testing.T) {
	g := newGen(t, "tpch", 4)
	counts := []int{1, 2, 3}
	w, err := g.ProbeColumns(counts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(counts)*5 {
		t.Fatalf("got %d probes, want %d", len(w), len(counts)*5)
	}
	for i, l := range w {
		wantPreds := counts[i/5]
		if got := l.Q.NumPredicates(); got != wantPreds {
			t.Errorf("probe %d has %d predicates, want %d", i, got, wantPreds)
		}
	}
}

func TestProbeRanges(t *testing.T) {
	g := newGen(t, "dmv", 5)
	widths := []float64{0.05, 0.3, 0.8}
	w, err := g.ProbeRanges(widths, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(widths)*4 {
		t.Fatalf("got %d probes, want %d", len(w), len(widths)*4)
	}
	// Wider probes should have (weakly) larger cardinalities on average.
	avg := func(lo, hi int) float64 {
		var s float64
		for _, l := range w[lo:hi] {
			s += l.Card
		}
		return s / float64(hi-lo)
	}
	if avg(0, 4) > avg(8, 12) {
		t.Errorf("width 0.05 avg card %.1f > width 0.8 avg card %.1f", avg(0, 4), avg(8, 12))
	}
}

func TestSplit(t *testing.T) {
	w := make([]Labeled, 17)
	parts := Split(w, 5)
	if len(parts) != 5 {
		t.Fatalf("got %d parts, want 5", len(parts))
	}
	total := 0
	for i, p := range parts {
		total += len(p)
		if i < 4 && len(p) != 3 {
			t.Errorf("part %d has %d items, want 3", i, len(p))
		}
	}
	if total != 17 {
		t.Errorf("parts total %d, want 17", total)
	}
	if Split(w, 0) != nil {
		t.Error("Split with k=0 should return nil")
	}
}

func TestQueries(t *testing.T) {
	g := newGen(t, "dmv", 6)
	w := g.Random(5)
	qs := Queries(w)
	if len(qs) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	for i := range qs {
		if qs[i] != w[i].Q {
			t.Error("Queries did not preserve order/pointers")
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	g1 := newGen(t, "stats", 9)
	g2 := newGen(t, "stats", 9)
	w1, w2 := g1.Random(10), g2.Random(10)
	for i := range w1 {
		if w1[i].Card != w2[i].Card {
			t.Fatalf("same seed produced different workloads at %d", i)
		}
	}
}
