// Package faults makes the target unreliable on purpose. PACE's threat
// model reaches the victim estimator over remote SQL access, so probes,
// EXPLAIN estimates, COUNT(*) labels and poison executions all cross a
// network to a live DBMS that can be slow, flaky, rate-limited or
// wrong. An Injector wraps the black-box target (ce.Target) and the
// COUNT(*) oracle and injects latency, transient errors, dropped
// queries, label noise and token-bucket rate limits, with per-fault
// counters. All fault decisions are drawn from a single seeded RNG, so
// a profile+seed pair replays the exact same fault schedule — chaos
// tests stay deterministic.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/resilience"
)

// ErrTransient marks an injected transient target failure (the remote
// analogue of a connection reset or statement timeout). Retryable.
var ErrTransient = errors.New("faults: transient target error")

// ErrDropped marks a query that the network silently dropped; the
// caller observes it as a failure after the fact. Retryable.
var ErrDropped = errors.New("faults: query dropped")

// ErrRateLimited marks a call rejected by the target's admission
// control (token bucket empty). Retryable after backoff.
var ErrRateLimited = errors.New("faults: rate limited")

// IsTransient reports whether err is one of the injected, retry-worthy
// fault errors.
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrDropped) || errors.Is(err, ErrRateLimited)
}

// Profile describes one flavor of target unreliability. The zero value
// injects nothing.
type Profile struct {
	Name string
	// Latency and LatencyJitter add Latency + U(0,Jitter) of sleep to
	// every call (the network round trip).
	Latency       time.Duration
	LatencyJitter time.Duration
	// ErrorRate is the probability a call fails with ErrTransient.
	ErrorRate float64
	// DropRate is the probability a call is dropped (ErrDropped).
	DropRate float64
	// LabelNoise, when > 0, perturbs oracle labels multiplicatively by
	// exp(N(0, LabelNoise)) — a stale or sampled COUNT(*).
	LabelNoise float64
	// RatePerSec/Burst configure a token bucket on admitted calls;
	// RatePerSec == 0 disables rate limiting.
	RatePerSec float64
	Burst      int
}

// The named profiles, mirroring deployment conditions from benign
// (None) to hostile (Chaos). Flaky is the acceptance-criteria profile:
// 5% transient errors, 1% drops, injected latency.
func None() Profile { return Profile{Name: "none"} }

func Slow() Profile {
	return Profile{Name: "slow", Latency: 200 * time.Microsecond, LatencyJitter: 400 * time.Microsecond}
}

func Flaky() Profile {
	return Profile{
		Name:          "flaky",
		Latency:       50 * time.Microsecond,
		LatencyJitter: 100 * time.Microsecond,
		ErrorRate:     0.05,
		DropRate:      0.01,
	}
}

func Lossy() Profile {
	return Profile{Name: "lossy", ErrorRate: 0.10, DropRate: 0.10}
}

func Noisy() Profile {
	return Profile{Name: "noisy", LabelNoise: 0.25}
}

func Throttled() Profile {
	return Profile{Name: "throttled", RatePerSec: 5000, Burst: 500}
}

func Chaos() Profile {
	return Profile{
		Name:          "chaos",
		Latency:       100 * time.Microsecond,
		LatencyJitter: 200 * time.Microsecond,
		ErrorRate:     0.20,
		DropRate:      0.05,
		LabelNoise:    0.25,
		RatePerSec:    20000,
		Burst:         2000,
	}
}

// Profiles returns every named profile, benign first.
func Profiles() []Profile {
	return []Profile{None(), Slow(), Flaky(), Lossy(), Noisy(), Throttled(), Chaos()}
}

// ByName resolves a profile by its name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("faults: unknown profile %q", name)
}

// Counters tallies injected faults. Read a consistent snapshot with
// Injector.Counters.
type Counters struct {
	// Calls is every call that reached the injector.
	Calls int64
	// Transients, Drops, RateLimited count the injected failures.
	Transients  int64
	Drops       int64
	RateLimited int64
	// NoisyLabels counts oracle labels that were perturbed.
	NoisyLabels int64
	// InjectedLatency is the total sleep added across calls.
	InjectedLatency time.Duration
}

// Failures is the total number of failed calls injected.
func (c Counters) Failures() int64 { return c.Transients + c.Drops + c.RateLimited }

// Injector injects the faults of one Profile, deterministically under a
// fixed seed. Safe for concurrent use; concurrency does perturb the
// per-call fault schedule (goroutine interleaving orders the RNG
// draws), so determinism tests should drive it single-threaded.
type Injector struct {
	prof Profile

	mu     sync.Mutex
	rng    *rand.Rand
	c      Counters
	tokens float64
	last   time.Time

	// Registry handles bound by Instrument; nil-safe no-ops otherwise.
	mCalls, mTransients, mDrops, mRateLimited, mNoisy *obs.Counter
}

// NewInjector builds an injector for p whose fault schedule is fully
// determined by seed.
func NewInjector(p Profile, seed int64) *Injector {
	return &Injector{
		prof:   p,
		rng:    rand.New(rand.NewSource(seed)),
		tokens: float64(p.Burst),
	}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.prof }

// Instrument binds per-fault counters (`pace_faults_*_total`) to reg and
// returns the injector. Nil injector or registry is a no-op.
func (in *Injector) Instrument(reg *obs.Registry) *Injector {
	if in == nil || reg == nil {
		return in
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.mCalls = reg.Counter("pace_faults_calls_total")
	in.mTransients = reg.Counter("pace_faults_transients_total")
	in.mDrops = reg.Counter("pace_faults_drops_total")
	in.mRateLimited = reg.Counter("pace_faults_rate_limited_total")
	in.mNoisy = reg.Counter("pace_faults_noisy_labels_total")
	return in
}

// Counters snapshots the fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.c
}

// decide draws this call's fate: the injected latency and the injected
// error (nil for a healthy call). Counter updates happen here so that
// accounting matches the schedule exactly.
func (in *Injector) decide() (time.Duration, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.c.Calls++
	in.mCalls.Inc()

	if in.prof.RatePerSec > 0 {
		now := time.Now()
		if !in.last.IsZero() {
			in.tokens += now.Sub(in.last).Seconds() * in.prof.RatePerSec
			if max := float64(in.prof.Burst); in.tokens > max {
				in.tokens = max
			}
		}
		in.last = now
		if in.tokens < 1 {
			in.c.RateLimited++
			in.mRateLimited.Inc()
			return 0, ErrRateLimited
		}
		in.tokens--
	}

	var lat time.Duration
	if in.prof.Latency > 0 || in.prof.LatencyJitter > 0 {
		lat = in.prof.Latency
		if in.prof.LatencyJitter > 0 {
			lat += time.Duration(in.rng.Float64() * float64(in.prof.LatencyJitter))
		}
		in.c.InjectedLatency += lat
	}
	if in.prof.DropRate > 0 && in.rng.Float64() < in.prof.DropRate {
		in.c.Drops++
		in.mDrops.Inc()
		return lat, ErrDropped
	}
	if in.prof.ErrorRate > 0 && in.rng.Float64() < in.prof.ErrorRate {
		in.c.Transients++
		in.mTransients.Inc()
		return lat, ErrTransient
	}
	return lat, nil
}

// admit applies one call's faults: sleeps the injected latency
// (honoring ctx) and returns the injected error, if any.
func (in *Injector) admit(ctx context.Context) error {
	lat, err := in.decide()
	if serr := resilience.Sleep(ctx, lat); serr != nil {
		return serr
	}
	return err
}

// NoisyCard perturbs an oracle label according to the profile's
// LabelNoise, clamping so a non-empty result stays non-empty (noise
// models staleness, not disappearance).
func (in *Injector) NoisyCard(card float64) float64 {
	if in.prof.LabelNoise <= 0 {
		return card
	}
	in.mu.Lock()
	f := math.Exp(in.rng.NormFloat64() * in.prof.LabelNoise)
	in.c.NoisyLabels++
	in.mNoisy.Inc()
	in.mu.Unlock()
	out := card * f
	if card >= 1 && out < 1 {
		out = 1
	}
	return out
}

// WrapTarget interposes the injector between the attacker and a target.
// The target may itself be a network transport (remote.RemoteTarget):
// the wrapper injects faults before the call leaves the process and
// passes the transport's own errors through untouched, so exactly one
// layer — the campaign's retry policy — observes and retries both
// kinds. The injector counts only what it injected; transport failures
// never inflate the fault counters, and the wrapper never retries, so
// pace_retry_waits_total remains the single retry tally.
func (in *Injector) WrapTarget(t ce.Target) ce.Target {
	return &faultyTarget{in: in, t: t}
}

type faultyTarget struct {
	in *Injector
	t  ce.Target
}

// Unwrap exposes the wrapped target, so owners can reach the concrete
// transport underneath (a remote client's Close/Stats, for example).
func (ft *faultyTarget) Unwrap() ce.Target { return ft.t }

func (ft *faultyTarget) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	if err := ft.in.admit(ctx); err != nil {
		return 0, err
	}
	return ft.t.EstimateContext(ctx, q)
}

// ExecuteWorkload applies per-query faults: dropped or failed queries
// never reach the target (their poison is lost), the survivors are
// forwarded in a single inner call so a retried batch cannot
// double-update the victim.
func (ft *faultyTarget) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	kept := make([]*query.Query, 0, len(qs))
	keptCards := make([]float64, 0, len(cards))
	for i, q := range qs {
		err := ft.in.admit(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue // this query's poison is lost in transit
		}
		kept = append(kept, q)
		keptCards = append(keptCards, cards[i])
	}
	if len(kept) == 0 {
		return nil
	}
	return ft.t.ExecuteWorkload(ctx, kept, keptCards)
}

// WrapOracle interposes the injector on a COUNT(*) oracle, adding the
// profile's faults and label noise. The function type matches
// core.Oracle without importing it.
func (in *Injector) WrapOracle(o func(context.Context, *query.Query) (float64, error)) func(context.Context, *query.Query) (float64, error) {
	return func(ctx context.Context, q *query.Query) (float64, error) {
		if err := in.admit(ctx); err != nil {
			return 0, err
		}
		card, err := o(ctx, q)
		if err != nil {
			return 0, err
		}
		return in.NoisyCard(card), nil
	}
}
