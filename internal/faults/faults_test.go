package faults

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/dataset"
	"pace/internal/query"
)

var bgCtx = context.Background()

func testMeta(t *testing.T) *query.Meta {
	t.Helper()
	ds, err := dataset.Build("dmv", dataset.Config{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Meta
}

func testQuery(m *query.Meta) *query.Query {
	q := query.New(m)
	q.Tables[0] = true
	q.Normalize(m)
	return q
}

// outcome classifies one wrapped-oracle call for schedule comparison.
func outcome(card float64, err error) string {
	switch {
	case err == nil:
		return "ok:" + time.Duration(int64(card*1e6)).String()
	case errors.Is(err, ErrTransient):
		return "transient"
	case errors.Is(err, ErrDropped):
		return "dropped"
	case errors.Is(err, ErrRateLimited):
		return "ratelimited"
	default:
		return "other"
	}
}

// TestInjectorDeterminism: the same profile+seed pair must replay the
// exact same fault schedule — outcome by outcome, counter by counter.
// Rate limiting is off in these profiles (it is wall-clock based) and
// the injector is driven single-threaded.
func TestInjectorDeterminism(t *testing.T) {
	m := testMeta(t)
	q := testQuery(m)
	base := func(context.Context, *query.Query) (float64, error) { return 1000, nil }

	for _, p := range []Profile{Flaky(), Lossy(), Noisy(), Chaos()} {
		p.RatePerSec, p.Burst = 0, 0 // token bucket is wall-clock based
		p.Latency, p.LatencyJitter = 0, 0

		run := func(seed int64) ([]string, Counters) {
			in := NewInjector(p, seed)
			o := in.WrapOracle(base)
			var got []string
			for i := 0; i < 500; i++ {
				got = append(got, outcome(o(bgCtx, q)))
			}
			return got, in.Counters()
		}
		a, ca := run(42)
		b, cb := run(42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: schedules diverge at call %d: %q vs %q", p.Name, i, a[i], b[i])
			}
		}
		if ca != cb {
			t.Errorf("%s: counters diverge: %+v vs %+v", p.Name, ca, cb)
		}
		// A different seed must produce a different schedule (for any
		// profile that injects randomness at all).
		c, _ := run(43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seed 42 and 43 produced identical schedules", p.Name)
		}
	}
}

// TestFaultRateAccounting: over many calls, the injected failure counts
// must track the configured rates, and the counters must account for
// every call exactly.
func TestFaultRateAccounting(t *testing.T) {
	m := testMeta(t)
	q := testQuery(m)
	p := Lossy() // 10% transient, 10% drop
	in := NewInjector(p, 7)
	o := in.WrapOracle(func(context.Context, *query.Query) (float64, error) { return 10, nil })

	const n = 20000
	var okCalls, transients, drops int64
	for i := 0; i < n; i++ {
		_, err := o(bgCtx, q)
		switch {
		case err == nil:
			okCalls++
		case errors.Is(err, ErrTransient):
			transients++
		case errors.Is(err, ErrDropped):
			drops++
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	c := in.Counters()
	if c.Calls != n {
		t.Errorf("Calls = %d, want %d", c.Calls, n)
	}
	if c.Transients != transients || c.Drops != drops {
		t.Errorf("counters (%d transients, %d drops) disagree with observed (%d, %d)",
			c.Transients, c.Drops, transients, drops)
	}
	if c.Failures() != transients+drops {
		t.Errorf("Failures() = %d, want %d", c.Failures(), transients+drops)
	}
	// Drops are drawn first, transients only on the survivors, so the
	// expected rates are 0.1 and 0.9·0.1. ±130 is > 3σ of the binomial.
	for name, tc := range map[string]struct {
		got  int64
		want float64
	}{
		"drops":      {drops, float64(n) * 0.1},
		"transients": {transients, float64(n) * 0.9 * 0.1},
	} {
		if math.Abs(float64(tc.got)-tc.want) > 130 {
			t.Errorf("%s = %d, want %.0f ± 130", name, tc.got, tc.want)
		}
	}
}

func TestNoisyCardStaysNonEmpty(t *testing.T) {
	in := NewInjector(Noisy(), 3)
	for i := 0; i < 1000; i++ {
		if got := in.NoisyCard(1); got < 1 {
			t.Fatalf("NoisyCard(1) = %g < 1", got)
		}
	}
	if c := in.Counters(); c.NoisyLabels != 1000 {
		t.Errorf("NoisyLabels = %d, want 1000", c.NoisyLabels)
	}
	// Noise must actually perturb: not every label equals its input.
	changed := false
	for i := 0; i < 100; i++ {
		if in.NoisyCard(1e6) != 1e6 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("label noise never changed a label")
	}
}

func TestNoneProfileIsTransparent(t *testing.T) {
	m := testMeta(t)
	q := testQuery(m)
	in := NewInjector(None(), 1)
	o := in.WrapOracle(func(context.Context, *query.Query) (float64, error) { return 123, nil })
	for i := 0; i < 100; i++ {
		card, err := o(bgCtx, q)
		if err != nil || card != 123 {
			t.Fatalf("none profile perturbed a call: card=%g err=%v", card, err)
		}
	}
	c := in.Counters()
	if c.Failures() != 0 || c.NoisyLabels != 0 || c.InjectedLatency != 0 {
		t.Errorf("none profile injected something: %+v", c)
	}
}

func TestRateLimiterRejectsBurstOverflow(t *testing.T) {
	// A tiny bucket refilled at a negligible rate: the first Burst calls
	// pass, the next immediate call is rejected.
	p := Profile{Name: "tiny", RatePerSec: 0.001, Burst: 3}
	in := NewInjector(p, 1)
	for i := 0; i < 3; i++ {
		if _, err := in.decide(); err != nil {
			t.Fatalf("call %d rejected within burst: %v", i, err)
		}
	}
	if _, err := in.decide(); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("burst overflow not rate limited: %v", err)
	}
	if c := in.Counters(); c.RateLimited != 1 {
		t.Errorf("RateLimited = %d, want 1", c.RateLimited)
	}
}

// stubTarget records what reaches the victim through the fault layer.
type stubTarget struct {
	estimates int
	executed  []*query.Query
	cards     []float64
}

func (s *stubTarget) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	s.estimates++
	return 42, nil
}

func (s *stubTarget) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	s.executed = append(s.executed, qs...)
	s.cards = append(s.cards, cards...)
	return nil
}

func TestWrapTargetDropsFaultedQueries(t *testing.T) {
	m := testMeta(t)
	in := NewInjector(Lossy(), 11)
	stub := &stubTarget{}
	target := in.WrapTarget(stub)

	n := 400
	qs := make([]*query.Query, n)
	cards := make([]float64, n)
	for i := range qs {
		qs[i] = testQuery(m)
		cards[i] = float64(i + 1)
	}
	if err := target.ExecuteWorkload(bgCtx, qs, cards); err != nil {
		t.Fatal(err)
	}
	c := in.Counters()
	if int64(len(stub.executed)) != c.Calls-c.Failures() {
		t.Errorf("target received %d queries, injector admitted %d",
			len(stub.executed), c.Calls-c.Failures())
	}
	if len(stub.executed) == 0 || len(stub.executed) == n {
		t.Errorf("lossy profile dropped %d/%d — expected partial loss", n-len(stub.executed), n)
	}
	// Cards must stay aligned with their queries through the filtering.
	if len(stub.cards) != len(stub.executed) {
		t.Errorf("cards (%d) misaligned with queries (%d)", len(stub.cards), len(stub.executed))
	}
}

func TestWrapTargetHonorsCancellation(t *testing.T) {
	m := testMeta(t)
	in := NewInjector(Slow(), 1) // injected latency makes the sleep observable
	stub := &stubTarget{}
	target := in.WrapTarget(stub)
	ctx, cancel := context.WithCancel(bgCtx)
	cancel()
	if _, err := target.EstimateContext(ctx, testQuery(m)); !errors.Is(err, context.Canceled) {
		t.Errorf("estimate under done ctx = %v", err)
	}
	err := target.ExecuteWorkload(ctx, []*query.Query{testQuery(m)}, []float64{1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("execute under done ctx = %v", err)
	}
	if len(stub.executed) != 0 {
		t.Error("canceled workload still reached the target")
	}
}

func TestProfilesAndByName(t *testing.T) {
	ps := Profiles()
	if len(ps) != 7 {
		t.Fatalf("got %d profiles", len(ps))
	}
	for _, p := range ps {
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %+v, %v", p.Name, got, err)
		}
	}
	if _, err := ByName("no-such-profile"); err == nil {
		t.Error("ByName accepted an unknown profile")
	}
	fl := Flaky()
	if fl.ErrorRate != 0.05 || fl.DropRate != 0.01 || fl.Latency <= 0 {
		t.Errorf("flaky profile drifted from the acceptance spec: %+v", fl)
	}
}

func TestIsTransient(t *testing.T) {
	for _, err := range []error{ErrTransient, ErrDropped, ErrRateLimited} {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false", err)
		}
	}
	if IsTransient(errors.New("other")) || IsTransient(nil) {
		t.Error("IsTransient misclassifies non-fault errors")
	}
}

// TestInjectorConcurrentUse hammers one injector from 8 goroutines —
// the shape of a parallel labeling campaign — and checks the counters
// balance. Under `go test -race` this is the data-race probe for
// decide/NoisyCard/Counters.
func TestInjectorConcurrentUse(t *testing.T) {
	p := Profile{
		Name:       "concurrent",
		ErrorRate:  0.2,
		DropRate:   0.1,
		LabelNoise: 0.3,
		RatePerSec: 1e9,
		Burst:      1,
	}
	in := NewInjector(p, 9)
	oracle := in.WrapOracle(func(ctx context.Context, q *query.Query) (float64, error) {
		return 5, nil
	})
	q := testQuery(testMeta(t))

	const goroutines, per = 8, 200
	var succeeded int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				card, err := oracle(bgCtx, q)
				if err == nil {
					atomic.AddInt64(&succeeded, 1)
					if card < 1 {
						panic("noisy label fell below 1")
					}
				}
				in.Counters() // concurrent snapshot reads must be safe too
			}
		}()
	}
	wg.Wait()

	c := in.Counters()
	if c.Calls != goroutines*per {
		t.Errorf("Calls = %d, want %d", c.Calls, goroutines*per)
	}
	if c.Failures()+succeeded != goroutines*per {
		t.Errorf("failures %d + successes %d != %d calls",
			c.Failures(), succeeded, goroutines*per)
	}
	if c.NoisyLabels != succeeded {
		t.Errorf("NoisyLabels = %d, want one per success (%d)", c.NoisyLabels, succeeded)
	}
	if c.Transients == 0 || c.Drops == 0 {
		t.Errorf("expected injected faults at these rates, got %+v", c)
	}
}
