// Compose tests: the injector wrapped around a *remote* target over a
// real HTTP wire. These pin the layering contract — faults are injected
// client-side before the wire, the transport's own errors pass through
// untouched, and exactly one layer (the retry policy) retries — so the
// obs counters stay single-counted: pace_retry_waits_total is the only
// retry tally and pace_faults_*_total count injected faults alone.
package faults_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/faults"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/resilience"
	"pace/internal/targetserver"
)

// countingTarget is the in-process estimator behind the test server: a
// constant model that tallies how much traffic actually crossed the wire.
type countingTarget struct {
	estimates atomic.Int64
	executed  atomic.Int64
}

func (t *countingTarget) EstimateContext(context.Context, *query.Query) (float64, error) {
	t.estimates.Add(1)
	return 42, nil
}

func (t *countingTarget) ExecuteWorkload(_ context.Context, qs []*query.Query, _ []float64) error {
	t.executed.Add(int64(len(qs)))
	return nil
}

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a", "b"},
		AttrNames:  []string{"a0", "a1", "b0"},
		AttrOffset: []int{0, 2, 3},
	}
}

func testQuery(m *query.Meta) *query.Query {
	q := query.New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0.25, 0.75}
	return q
}

// startRemote stands up a paced-equivalent server around bb and dials a
// RemoteTarget at it; cleanup tears both down.
func startRemote(t *testing.T, bb ce.Target) *remote.RemoteTarget {
	t.Helper()
	srv := targetserver.New(bb, testMeta(), targetserver.Config{})
	hs := httptest.NewServer(srv.Handler())
	rt, err := remote.New(hs.URL, remote.Options{CoalesceWindow: 0, ClientID: "compose-test"})
	if err != nil {
		t.Fatalf("remote.New: %v", err)
	}
	t.Cleanup(func() {
		rt.Close()
		hs.Close()
		srv.Close()
	})
	return rt
}

// TestInjectorOverRemoteTargetSingleCountsRetries drives estimates
// through the full production stack — retry policy over injector over
// RemoteTarget over HTTP over targetserver — and checks every layer's
// ledger against the retry layer's ground truth.
func TestInjectorOverRemoteTargetSingleCountsRetries(t *testing.T) {
	bb := &countingTarget{}
	rt := startRemote(t, bb)

	reg := obs.NewRegistry()
	inj := faults.NewInjector(faults.Flaky(), 7).Instrument(reg)
	wrapped := inj.WrapTarget(rt)

	pol := resilience.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    time.Microsecond,
		Retryable: func(err error) bool {
			return !errors.Is(err, ce.ErrInvalidQuery)
		},
	}
	ctx := obs.NewContext(context.Background(), &obs.Telemetry{Reg: reg})
	q := testQuery(testMeta())

	const ops = 200
	var totalAttempts, failedOps int64
	for i := 0; i < ops; i++ {
		attempts, err := pol.Do(ctx, nil, func(ctx context.Context) error {
			est, err := wrapped.EstimateContext(ctx, q)
			if err == nil && est != 42 {
				t.Fatalf("estimate = %v, want 42", est)
			}
			return err
		})
		totalAttempts += int64(attempts)
		if err != nil {
			failedOps++
			if !faults.IsTransient(err) {
				t.Fatalf("op %d failed with non-injected error: %v", i, err)
			}
		}
	}

	c := inj.Counters()
	// Every retry-layer attempt passes the injector exactly once: the
	// remote client must not retry internally (that would show up here
	// as Calls > attempts).
	if c.Calls != totalAttempts {
		t.Errorf("injector saw %d calls, retry layer made %d attempts", c.Calls, totalAttempts)
	}
	// Faulted attempts die client-side; only the healthy remainder
	// crosses the wire, and each crosses it exactly once.
	wantWire := totalAttempts - c.Failures()
	if got := bb.estimates.Load(); got != wantWire {
		t.Errorf("server served %d estimates, want %d (attempts %d - injected failures %d)",
			got, wantWire, totalAttempts, c.Failures())
	}
	// The retry ledger: Do waits once per extra attempt, so the single
	// retry counter must equal attempts beyond each op's first.
	if got, want := reg.Counter("pace_retry_waits_total").Value(), totalAttempts-ops; got != want {
		t.Errorf("pace_retry_waits_total = %d, want %d", got, want)
	}
	// Injector registry counters mirror its own tallies (and nothing
	// else increments them).
	if got := reg.Counter("pace_faults_transients_total").Value(); got != c.Transients {
		t.Errorf("pace_faults_transients_total = %d, want %d", got, c.Transients)
	}
	if got := reg.Counter("pace_faults_drops_total").Value(); got != c.Drops {
		t.Errorf("pace_faults_drops_total = %d, want %d", got, c.Drops)
	}
	if c.Failures() == 0 {
		t.Error("flaky profile injected no failures in 200+ attempts; schedule broken")
	}
}

// TestInjectorOverRemoteExecuteDropsPoisonOnce checks the update path:
// per-query faults are decided before the wire, the surviving batch is
// forwarded in one remote call, and the server applies each survivor
// exactly once.
func TestInjectorOverRemoteExecuteDropsPoisonOnce(t *testing.T) {
	bb := &countingTarget{}
	rt := startRemote(t, bb)

	inj := faults.NewInjector(faults.Lossy(), 3)
	wrapped := inj.WrapTarget(rt)

	m := testMeta()
	const n = 100
	qs := make([]*query.Query, n)
	cards := make([]float64, n)
	for i := range qs {
		qs[i] = testQuery(m)
		cards[i] = float64(i + 1)
	}
	if err := wrapped.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatalf("ExecuteWorkload: %v", err)
	}

	c := inj.Counters()
	want := int64(n) - c.Failures()
	if got := bb.executed.Load(); got != want {
		t.Errorf("server executed %d queries, want %d (%d offered - %d lost in transit)",
			got, want, n, c.Failures())
	}
	if c.Failures() == 0 || c.Failures() == n {
		t.Errorf("lossy profile lost %d/%d queries; want a strict subset", c.Failures(), n)
	}
}

// TestWrapTargetUnwrap pins the accessor owners use to reach the
// transport underneath the fault wrapper (Close, Stats).
func TestWrapTargetUnwrap(t *testing.T) {
	bb := &countingTarget{}
	rt := startRemote(t, bb)
	wrapped := faults.NewInjector(faults.None(), 1).WrapTarget(rt)
	u, ok := wrapped.(interface{ Unwrap() ce.Target })
	if !ok {
		t.Fatal("fault-wrapped target does not expose Unwrap")
	}
	if u.Unwrap() != ce.Target(rt) {
		t.Error("Unwrap did not return the wrapped remote target")
	}
}
