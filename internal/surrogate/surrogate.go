// Package surrogate implements stage (a) of PACE: acquiring a white-box
// surrogate of the black-box CE model (§4). It first speculates the
// black box's architecture by comparing (Q-error, latency) performance
// vectors over diagnostic probe workloads against locally trained
// candidates of every known type (Eq. 5), then trains a surrogate of the
// speculated type with the combined imitation + ground-truth loss (Eq. 7).
//
// The black box is reached through ce.Target — a remote, fallible
// interface. Probe estimates are retried with backoff; probes that keep
// failing are excluded from every candidate's performance vector (so
// the comparison stays apples-to-apples), and speculation only errors
// out when most of the probe workload is lost.
package surrogate

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pace/internal/ce"
	"pace/internal/engine"
	"pace/internal/metrics"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/resilience"
	"pace/internal/workload"
)

// SpeculationConfig controls model-type speculation.
type SpeculationConfig struct {
	// CandidateTrainQueries is the number of random labeled queries each
	// candidate model is trained on (default 300).
	CandidateTrainQueries int
	// ProbePerGroup is the number of probe queries per diagnostic group
	// (default 8).
	ProbePerGroup int
	// LatencyRepeats is how many times each probe estimate is timed,
	// keeping the minimum (default 3).
	LatencyRepeats int
	// HP configures the candidate models (the attacker's default
	// hyperparameters).
	HP ce.HyperParams
	// Train configures candidate training.
	Train ce.TrainConfig
	// Retry absorbs transient probe failures against the remote target.
	Retry resilience.RetryPolicy
	// Workers bounds how many candidate trainings run concurrently
	// (0 or 1 serial, negative = all cores). Every candidate trains from
	// its own pre-drawn seed, so the verdict is identical at any worker
	// count.
	Workers int
}

func (c SpeculationConfig) withDefaults() SpeculationConfig {
	if c.CandidateTrainQueries == 0 {
		c.CandidateTrainQueries = 300
	}
	if c.ProbePerGroup == 0 {
		c.ProbePerGroup = 8
	}
	if c.LatencyRepeats == 0 {
		c.LatencyRepeats = 3
	}
	return c
}

// SpeculationResult reports the speculated type and the per-candidate
// cosine similarities that produced it.
type SpeculationResult struct {
	Type         ce.Type
	Similarities map[ce.Type]float64
	// Candidates holds the trained candidate estimators so the caller
	// may reuse the winner as a warm start.
	Candidates map[ce.Type]*ce.Estimator
	// FailedProbes counts probe queries the target kept failing after
	// retries; they were excluded from every performance vector.
	FailedProbes int
}

// Speculate infers the architecture of the black-box model bb by the
// probe-and-compare procedure of §4.1. It fails when ctx is done or
// when more than half the probe workload is lost to target failures.
func Speculate(ctx context.Context, bb ce.Target, gen *workload.Generator, cfg SpeculationConfig, rng *rand.Rand) (*SpeculationResult, error) {
	cfg = cfg.withDefaults()
	ctx, span := obs.StartSpan(ctx, "speculate", obs.Int("workers", cfg.Workers))
	defer span.End()

	// Probe workloads with diverse properties: varying predicate counts
	// and varying predicate range sizes (§4.1).
	colProbes, err := gen.ProbeColumns([]int{1, 2, 3}, cfg.ProbePerGroup)
	if err != nil {
		return nil, err
	}
	rangeProbes, err := gen.ProbeRanges([]float64{0.05, 0.2, 0.5, 0.8}, cfg.ProbePerGroup)
	if err != nil {
		return nil, err
	}
	groups := groupProbes(colProbes, cfg.ProbePerGroup)
	groups = append(groups, groupProbes(rangeProbes, cfg.ProbePerGroup)...)

	// Probe the remote target first: its surviving probe set defines the
	// comparison workload for every local candidate.
	pctx, pspan := obs.StartSpan(ctx, "probe_target", obs.Int("groups", len(groups)))
	kept, bbVec, failed, err := probeTarget(pctx, bb, groups, cfg)
	pspan.SetAttr(obs.Int("failed_probes", failed))
	pspan.End()
	if err != nil {
		return nil, err
	}

	// Train one candidate per known model type on the attacker's own
	// random workload. The trainings are independent, so they fan out
	// across the pool; each candidate draws from a private stream split
	// off one serially-drawn seed, making every candidate — and hence
	// the verdict — bit-identical at any worker count.
	train := gen.Random(cfg.CandidateTrainQueries)
	types := ce.Types()
	candSeed := rng.Int63()
	ests := make([]*ce.Estimator, len(types))
	engine.PoolFor(cfg.Workers).Instrument(obs.From(ctx).Registry()).ForEach(len(types), func(i int) {
		_, cspan := obs.StartSpan(ctx, "candidate_train",
			obs.String("type", types[i].String()),
			obs.Int("queries", len(train)))
		defer cspan.End()
		crng := engine.SplitRNG(candSeed, int64(i))
		model := ce.New(types[i], gen.DS.Meta, cfg.HP, crng)
		est := ce.NewEstimator(model, cfg.Train, crng)
		est.Train(est.MakeSamples(workload.Queries(train), cards(train)))
		ests[i] = est
	})
	candidates := make(map[ce.Type]*ce.Estimator, len(types))
	for i, typ := range types {
		candidates[typ] = ests[i]
	}

	res := &SpeculationResult{
		Similarities: make(map[ce.Type]float64, len(candidates)),
		Candidates:   candidates,
		FailedProbes: failed,
	}
	best := math.Inf(-1)
	for _, typ := range ce.Types() {
		est := candidates[typ]
		v := performanceVector(est.Estimate, kept, cfg.LatencyRepeats)
		sim := metrics.CosineSimilarity(normalizeDims(bbVec, v))
		res.Similarities[typ] = sim
		if sim > best {
			best = sim
			res.Type = typ
		}
	}
	span.SetAttr(obs.String("speculated_type", res.Type.String()))
	obs.From(ctx).Logger().Info("speculation done",
		"type", res.Type.String(), "failed_probes", failed)
	return res, nil
}

// probeTarget evaluates the remote target over every probe group with
// retries, dropping probes that keep failing. It returns the surviving
// groups, the target's performance vector over them, and the failed
// probe count. More than half the probes lost (or an empty surviving
// group set) is an error — the comparison would be meaningless.
func probeTarget(ctx context.Context, bb ce.Target, groups []probeGroup, cfg SpeculationConfig) ([]probeGroup, []float64, int, error) {
	total, failed := 0, 0
	kept := make([]probeGroup, 0, len(groups))
	var errDims, latDims []float64
	for _, g := range groups {
		var items []workload.Labeled
		var sumErr, sumLat float64
		for _, l := range g.items {
			total++
			est, lat, err := timedEstimate(ctx, bb, l.Q, cfg)
			if err != nil {
				if ctx.Err() != nil {
					return nil, nil, failed, ctx.Err()
				}
				failed++
				continue
			}
			items = append(items, l)
			sumErr += math.Log2(ce.QError(est, l.Card))
			sumLat += float64(lat.Nanoseconds()) / 1e3
		}
		if len(items) == 0 {
			continue // the whole group was lost; drop its dimensions
		}
		n := float64(len(items))
		kept = append(kept, probeGroup{items: items})
		errDims = append(errDims, sumErr/n)
		latDims = append(latDims, sumLat/n)
	}
	if failed*2 > total || len(kept) == 0 {
		return nil, nil, failed, fmt.Errorf("surrogate: %d/%d speculation probes failed", failed, total)
	}
	return kept, append(errDims, latDims...), failed, nil
}

// timedEstimate measures the target's best-of-repeats estimate latency,
// retrying each attempt. The measured latency includes whatever the
// network (or fault injector) adds — the side channel the attacker
// actually observes.
func timedEstimate(ctx context.Context, bb ce.Target, q *query.Query, cfg SpeculationConfig) (float64, time.Duration, error) {
	best := time.Duration(math.MaxInt64)
	var est float64
	for r := 0; r < cfg.LatencyRepeats; r++ {
		start := time.Now()
		// nil rng: retry jitter must never draw from the attack's
		// deterministic stream, or a single failover-induced retry
		// desyncs every label drawn after it. These probes are
		// sequential, so jitterless backoff loses nothing.
		_, err := cfg.Retry.Do(ctx, nil, func(c context.Context) error {
			var e error
			est, e = bb.EstimateContext(c, q)
			return e
		})
		if err != nil {
			if r > 0 && ctx.Err() == nil {
				break // keep the repeats that did succeed
			}
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return est, best, nil
}

func cards(w []workload.Labeled) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i].Card
	}
	return out
}

type probeGroup struct{ items []workload.Labeled }

func groupProbes(probes []workload.Labeled, per int) []probeGroup {
	var out []probeGroup
	for lo := 0; lo+per <= len(probes); lo += per {
		out = append(out, probeGroup{items: probes[lo : lo+per]})
	}
	return out
}

// performanceVector evaluates a local (infallible) estimator over every
// probe group, producing [meanLogQErr_g..., meanLatencyMicros_g...].
func performanceVector(estimate func(*query.Query) float64, groups []probeGroup, repeats int) []float64 {
	var errDims, latDims []float64
	for _, g := range groups {
		var sumErr, sumLat float64
		for _, l := range g.items {
			best := time.Duration(math.MaxInt64)
			var est float64
			for r := 0; r < repeats; r++ {
				start := time.Now()
				est = estimate(l.Q)
				if d := time.Since(start); d < best {
					best = d
				}
			}
			sumErr += math.Log2(ce.QError(est, l.Card))
			sumLat += float64(best.Nanoseconds()) / 1e3
		}
		n := float64(len(g.items))
		errDims = append(errDims, sumErr/n)
		latDims = append(latDims, sumLat/n)
	}
	return append(errDims, latDims...)
}

// normalizeDims rescales each dimension of the pair (a, b) by the larger
// magnitude so Q-error and latency dimensions contribute comparably to
// the cosine.
func normalizeDims(a, b []float64) ([]float64, []float64) {
	na := make([]float64, len(a))
	nb := make([]float64, len(b))
	for i := range a {
		m := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if m == 0 {
			continue
		}
		na[i] = a[i] / m
		nb[i] = b[i] / m
	}
	return na, nb
}
