package surrogate

import (
	"context"
	"math/rand"
	"testing"

	"pace/internal/ce"
	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/workload"
)

var bgCtx = context.Background()

func testSetup(t *testing.T, name string, seed int64) (*workload.Generator, *rand.Rand) {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.05, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	return workload.NewGenerator(ds, engine.New(ds), rng), rng
}

func trainBlackBox(gen *workload.Generator, typ ce.Type, n int, rng *rand.Rand) *ce.BlackBox {
	model := ce.New(typ, gen.DS.Meta, ce.HyperParams{Hidden: 16, Layers: 2}, rng)
	est := ce.NewEstimator(model, ce.TrainConfig{Epochs: 20, Batch: 16}, rng)
	w := gen.Random(n)
	est.Train(est.MakeSamples(workload.Queries(w), wcards(w)))
	return ce.AsBlackBox(est)
}

func wcards(w []workload.Labeled) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i].Card
	}
	return out
}

func fastSpecCfg() SpeculationConfig {
	return SpeculationConfig{
		CandidateTrainQueries: 120,
		ProbePerGroup:         4,
		LatencyRepeats:        2,
		HP:                    ce.HyperParams{Hidden: 16, Layers: 2},
		Train:                 ce.TrainConfig{Epochs: 15, Batch: 16},
	}
}

func TestSpeculateReturnsAllSimilarities(t *testing.T) {
	gen, rng := testSetup(t, "dmv", 1)
	bb := trainBlackBox(gen, ce.FCN, 150, rng)
	res, err := Speculate(bgCtx, bb, gen, fastSpecCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Similarities) != 6 {
		t.Fatalf("got %d similarities, want 6", len(res.Similarities))
	}
	for typ, sim := range res.Similarities {
		if sim < -1-1e-9 || sim > 1+1e-9 {
			t.Errorf("%s similarity %g outside [-1,1]", typ, sim)
		}
	}
	if _, ok := res.Similarities[res.Type]; !ok {
		t.Error("speculated type missing from similarity map")
	}
	if len(res.Candidates) != 6 {
		t.Errorf("got %d candidates, want 6", len(res.Candidates))
	}
	// The winner must hold the max similarity.
	for _, sim := range res.Similarities {
		if sim > res.Similarities[res.Type]+1e-12 {
			t.Error("speculated type does not maximize similarity")
		}
	}
}

func TestSpeculateDistinguishesLinearFromDeep(t *testing.T) {
	// Linear's rigid behaviour is the easiest architecture to identify —
	// the paper reports 95-100% accuracy for it. Run on a Linear black
	// box and require Linear to rank in the top 2.
	gen, rng := testSetup(t, "dmv", 2)
	bb := trainBlackBox(gen, ce.Linear, 150, rng)
	res, err := Speculate(bgCtx, bb, gen, fastSpecCfg(), rng)
	if err != nil {
		t.Fatal(err)
	}
	rank := 0
	for typ, sim := range res.Similarities {
		if typ != ce.Linear && sim > res.Similarities[ce.Linear] {
			rank++
		}
	}
	if rank > 1 {
		t.Errorf("Linear black box ranked %d-th (similarities %v)", rank+1, res.Similarities)
	}
}

func TestTrainSurrogateImitates(t *testing.T) {
	gen, rng := testSetup(t, "dmv", 3)
	bb := trainBlackBox(gen, ce.FCN, 200, rng)
	sur, err := Train(bgCtx, bb, ce.FCN, gen, TrainConfig{
		Queries: 150,
		HP:      ce.HyperParams{Hidden: 16, Layers: 2},
		Train:   ce.TrainConfig{Epochs: 25, Batch: 16},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}

	probe := gen.Random(40)
	fid := Fidelity(bgCtx, bb, sur, probe)
	// A fresh random model of the same type should be much farther from
	// the black box than the trained surrogate.
	fresh := ce.NewEstimator(ce.New(ce.FCN, gen.DS.Meta,
		ce.HyperParams{Hidden: 16, Layers: 2}, rng), ce.TrainConfig{}, rng)
	freshFid := Fidelity(bgCtx, bb, fresh, probe)
	if fid >= freshFid {
		t.Errorf("surrogate fidelity %g not better than untrained %g", fid, freshFid)
	}
	if fid > 0.1 {
		t.Errorf("surrogate fidelity %g too weak (mean |Δ| in normalized log space)", fid)
	}
}

func TestCombinedBeatsDirectOnUnseen(t *testing.T) {
	// Eq. 7's ground-truth term should generalize at least comparably to
	// direct imitation on unseen queries; verify the combined surrogate
	// achieves reasonable fidelity AND better ground-truth accuracy.
	gen, rng := testSetup(t, "dmv", 4)
	bb := trainBlackBox(gen, ce.FCN, 200, rng)
	cfgBase := TrainConfig{
		Queries: 150,
		HP:      ce.HyperParams{Hidden: 16, Layers: 2},
		Train:   ce.TrainConfig{Epochs: 25, Batch: 16},
	}
	comb, err := Train(bgCtx, bb, ce.FCN, gen, cfgBase, rng)
	if err != nil {
		t.Fatal(err)
	}
	direct := func() *ce.Estimator {
		c := cfgBase
		c.Strategy = DirectImitation
		d, err := Train(bgCtx, bb, ce.FCN, gen, c, rng)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}()

	unseen := gen.Random(60)
	qs, cs := workload.Queries(unseen), wcards(unseen)
	combErr := mean(comb.QErrors(qs, cs))
	directErr := mean(direct.QErrors(qs, cs))
	if combErr > directErr*2 {
		t.Errorf("combined q-error %g much worse than direct %g", combErr, directErr)
	}
}

func TestDirectImitationForcesAlpha(t *testing.T) {
	cfg := TrainConfig{Strategy: DirectImitation, Alpha: 0.3}.withDefaults()
	if cfg.Alpha != 1 {
		t.Errorf("DirectImitation alpha = %g, want 1", cfg.Alpha)
	}
	def := TrainConfig{}.withDefaults()
	if def.Alpha != 0.5 || def.Queries != 400 {
		t.Errorf("defaults = %+v", def)
	}
}

func TestFidelityEmptyProbe(t *testing.T) {
	if Fidelity(bgCtx, nil, nil, nil) != 0 {
		t.Error("empty probe fidelity should be 0")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestSpeculateDeterministicAcrossWorkers pins the parallel-candidate
// contract: every candidate trains from its own pre-drawn seed stream,
// so the trained models — and the speculation verdict — are identical
// whether the six trainings run serially or fan out across workers.
// (Similarity *values* carry wall-clock latency dimensions and are not
// compared bit-for-bit; the candidates' predictions are. The verdict is
// checked on a Linear black box, whose margin over the runner-up dwarfs
// the latency noise.)
func TestSpeculateDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *SpeculationResult {
		gen, rng := testSetup(t, "dmv", 2)
		bb := trainBlackBox(gen, ce.Linear, 150, rng)
		cfg := fastSpecCfg()
		cfg.Workers = workers
		res, err := Speculate(bgCtx, bb, gen, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	parallel := run(4)

	if serial.Type != parallel.Type {
		t.Errorf("verdict flipped with workers: serial %s, parallel %s",
			serial.Type, parallel.Type)
	}
	probeGen, _ := testSetup(t, "dmv", 2)
	probe := workload.Queries(probeGen.Random(30))
	for _, typ := range ce.Types() {
		s, p := serial.Candidates[typ], parallel.Candidates[typ]
		for i, q := range probe {
			if s.Estimate(q) != p.Estimate(q) {
				t.Errorf("%s candidate diverges at probe %d: serial %v, parallel %v",
					typ, i, s.Estimate(q), p.Estimate(q))
				break
			}
		}
	}
}
