package surrogate

import (
	"context"
	"errors"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/nn"
	"pace/internal/obs"
	"pace/internal/resilience"
	"pace/internal/workload"
)

// Strategy selects how the surrogate is supervised.
type Strategy int

const (
	// Combined is the paper's Eq. 7 loss: imitate the black box's
	// outputs AND fit the ground-truth cardinalities, which generalizes
	// better to unseen queries.
	Combined Strategy = iota
	// DirectImitation is the Eq. 6 baseline: supervise only with the
	// black box's outputs (the Fig. 10 ablation).
	DirectImitation
)

// TrainConfig controls surrogate training.
type TrainConfig struct {
	// Queries is the number of attacker-crafted labeled queries used to
	// fit the surrogate (default 400).
	Queries int
	// Alpha weights the imitation term of Eq. 7; the ground-truth term
	// gets 1−Alpha (default 0.5). DirectImitation forces Alpha = 1.
	Alpha float64
	// Strategy selects Eq. 7 (Combined) or Eq. 6 (DirectImitation).
	Strategy Strategy
	// HP configures the surrogate model.
	HP ce.HyperParams
	// Train configures the optimizer schedule.
	Train ce.TrainConfig
	// Retry absorbs transient failures when reading the target's
	// estimates for the training queries.
	Retry resilience.RetryPolicy
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Queries == 0 {
		c.Queries = 400
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Strategy == DirectImitation {
		c.Alpha = 1
	}
	return c
}

// Train fits a white-box surrogate of the speculated type to the black
// box (§4.2). The attacker generates its own queries, labels them with
// COUNT(*) (the generator's engine), reads the black box's estimates for
// them, and minimizes
//
//	α·(f(x) − fbb(x))² + (1−α)·(f(x) − y)²
//
// in normalized log space. Target estimates that keep failing after
// retries degrade gracefully: under Combined the example trains on the
// ground-truth term alone; under DirectImitation it is dropped. Only a
// done context or a fully unlabeled DirectImitation workload is fatal.
func Train(ctx context.Context, bb ce.Target, typ ce.Type, gen *workload.Generator, cfg TrainConfig, rng *rand.Rand) (*ce.Estimator, error) {
	cfg = cfg.withDefaults()
	ctx, span := obs.StartSpan(ctx, "surrogate_train",
		obs.String("type", typ.String()),
		obs.Int("queries", cfg.Queries))
	defer span.End()
	model := ce.New(typ, gen.DS.Meta, cfg.HP, rng)
	est := ce.NewEstimator(model, cfg.Train, rng)

	train := gen.Random(cfg.Queries)
	type example struct {
		v        []float64
		yBB, yGT float64
		hasBB    bool
	}
	examples := make([]example, 0, len(train))
	for _, l := range train {
		ex := example{
			v:   l.Q.Encode(gen.DS.Meta),
			yGT: est.Norm.Norm(l.Card),
		}
		var bbEst float64
		// nil rng: the imitation loop shares rng with model init and
		// epoch shuffling, so retry jitter drawing from it would make
		// the trained surrogate depend on how many transient target
		// failures happened — a failover mid-imitation must not change
		// the poison. Jitterless backoff (plus the server's Retry-After
		// hint) paces these sequential calls fine.
		_, err := cfg.Retry.Do(ctx, nil, func(c context.Context) error {
			var e error
			bbEst, e = bb.EstimateContext(c, l.Q)
			return e
		})
		switch {
		case err == nil:
			ex.yBB = est.Norm.Norm(bbEst)
			ex.hasBB = true
		case ctx.Err() != nil:
			return nil, ctx.Err()
		case cfg.Strategy == DirectImitation:
			continue // no imitation label, and no ground-truth term to fall back on
		}
		examples = append(examples, ex)
	}
	if len(examples) == 0 {
		return nil, errors.New("surrogate: no training examples survived target failures")
	}

	cfgT := est.Cfg
	opt := nn.NewAdam(model.Params(), cfgT.LR)
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < cfgT.Epochs; ep++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, epSpan := obs.StartSpan(ctx, "surrogate_epoch",
			obs.Int("epoch", ep),
			obs.Int("examples", len(examples)))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += cfgT.Batch {
			hi := lo + cfgT.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			for _, i := range idx[lo:hi] {
				ex := examples[i]
				out := model.Forward(ex.v)
				var grad float64
				if ex.hasBB {
					grad += 2 * cfg.Alpha * (out - ex.yBB)
				}
				if cfg.Strategy == Combined {
					grad += 2 * (1 - cfg.Alpha) * (out - ex.yGT)
				}
				model.Backward(grad)
			}
			opt.Step(1 / float64(hi-lo))
		}
		epSpan.End()
	}
	return est, nil
}

// Fidelity measures how closely the surrogate imitates the black box: the
// mean absolute difference of their normalized predictions over a probe
// workload (0 = identical behaviour). The paper's §7.4 argues surrogate
// and black box become near-equivalent; this is the observable proxy for
// parameter similarity available without opening the black box. Probes
// the target fails are skipped.
func Fidelity(ctx context.Context, bb ce.Target, sur *ce.Estimator, probe []workload.Labeled) float64 {
	var sum float64
	n := 0
	for _, l := range probe {
		bbEst, err := bb.EstimateContext(ctx, l.Q)
		if err != nil {
			continue
		}
		a := sur.Norm.Norm(bbEst)
		b := sur.Norm.Norm(sur.Estimate(l.Q))
		d := a - b
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
