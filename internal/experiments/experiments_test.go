package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/metrics"
)

// tinyCfg is a fast profile for CI: small datasets and short schedules.
func tinyCfg() Config {
	return Config{
		Scale:          0.05,
		Seed:           5,
		TrainQueries:   200,
		TestQueries:    60,
		NumPoison:      50,
		Hidden:         16,
		Epochs:         30,
		Inner:          10,
		Outer:          8,
		SpecBlackBoxes: 1,
		E2EQueries:     6,
	}.WithDefaults()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Scale != 0.05 || c.TrainQueries != 240 || c.NumPoison != 60 {
		t.Errorf("defaults = %+v", c)
	}
	f := Full()
	if f.TrainQueries <= c.TrainQueries {
		t.Error("Full profile should be heavier than quick")
	}
}

func TestNewWorld(t *testing.T) {
	w, err := NewWorld("tpch", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Train) != 200 || len(w.Test) != 60 {
		t.Errorf("workload sizes: train=%d test=%d", len(w.Train), len(w.Test))
	}
	if len(w.History) != 200 {
		t.Errorf("history size %d", len(w.History))
	}
}

func TestNewWorldUnknownDataset(t *testing.T) {
	if _, err := NewWorld("nope", tinyCfg()); err == nil {
		t.Error("expected error")
	}
}

func TestBlackBoxTwinsAreIdentical(t *testing.T) {
	w, err := NewWorld("dmv", tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	a := w.NewBlackBox(ce.FCN, 3)
	b := w.NewBlackBox(ce.FCN, 3)
	q := w.Test[0].Q
	if a.Estimate(q) != b.Estimate(q) {
		t.Error("same seed offset should produce identical black boxes")
	}
	c := w.NewBlackBox(ce.FCN, 4)
	if a.Estimate(q) == c.Estimate(q) {
		t.Error("different seed offsets should differ")
	}
}

func TestRunMatrixSmoke(t *testing.T) {
	res, err := RunMatrix("dmv", []ce.Type{ce.FCN, ce.Linear}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []ce.Type{ce.FCN, ce.Linear} {
		for _, m := range core.AllRows() {
			cell := res.Cells[typ][m]
			if cell == nil || len(cell.QErrors) != 60 {
				t.Fatalf("%v/%v cell missing or wrong size", typ, m)
			}
		}
	}
	// The headline shape of Figures 6–9, at this seed the full paper
	// ordering: Clean ≈ Random < Lb-S, Greedy < Lb-G < PACE.
	m := func(method core.Method) float64 {
		return metrics.Mean(res.Cells[ce.FCN][method].QErrors)
	}
	cleanErr, randErr := m(core.Clean), m(core.Random)
	lbsErr, greedyErr := m(core.LbS), m(core.Greedy)
	lbgErr, paceErr := m(core.LbG), m(core.PACE)
	t.Logf("FCN: clean=%.3g random=%.3g lbs=%.3g greedy=%.3g lbg=%.3g pace=%.3g",
		cleanErr, randErr, lbsErr, greedyErr, lbgErr, paceErr)
	if paceErr <= cleanErr {
		t.Errorf("PACE (%.3g) did not degrade FCN beyond clean (%.3g)", paceErr, cleanErr)
	}
	if paceErr <= randErr {
		t.Errorf("PACE (%.3g) not stronger than Random (%.3g)", paceErr, randErr)
	}
	if paceErr <= lbgErr {
		t.Errorf("PACE (%.3g) not stronger than Lb-G (%.3g)", paceErr, lbgErr)
	}
	if lbgErr <= randErr {
		t.Errorf("Lb-G (%.3g) not stronger than Random (%.3g)", lbgErr, randErr)
	}
	// Linear's robustness: the paper finds no method hurts it much.
	linClean := metrics.Mean(res.Cells[ce.Linear][core.Clean].QErrors)
	linPACE := metrics.Mean(res.Cells[ce.Linear][core.PACE].QErrors)
	t.Logf("Linear: clean=%.3g pace=%.3g", linClean, linPACE)
	if linPACE > linClean*10 {
		t.Errorf("Linear degraded %.1f× — should be robust", linPACE/linClean)
	}

	// The printers must produce non-empty output containing the methods.
	var buf bytes.Buffer
	res.PrintMean(&buf)
	res.PrintPercentiles(&buf, []ce.Type{ce.FCN})
	res.PrintTail(&buf, []ce.Type{ce.Linear})
	out := buf.String()
	for _, want := range []string{"PACE", "Clean", "Lb-G", "90th", "max"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestRunMatrixE2EPrint(t *testing.T) {
	res, err := RunMatrix("tpch", []ce.Type{ce.FCN}, tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res.PrintE2E(&buf, []ce.Type{ce.FCN})
	out := buf.String()
	if !strings.Contains(out, "Table 5") || !strings.Contains(out, "optimal") {
		t.Errorf("E2E output malformed:\n%s", out)
	}
}

func TestRunConvergenceSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunConvergence(&buf, tinyCfg(), []string{"dmv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dmv") {
		t.Errorf("convergence output missing dataset row:\n%s", buf.String())
	}
}

func TestRunBudgetSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunBudget(&buf, tinyCfg(), []string{"dmv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 8") {
		t.Error("budget output missing header")
	}
}

func TestRunOverheadSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunOverhead(&buf, tinyCfg(), []string{"dmv"}); err != nil {
		t.Fatal(err)
	}
	if err := RunOverheadByCount(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 9") || !strings.Contains(out, "Table 10") {
		t.Error("overhead output missing headers")
	}
}

func TestRunSpeculationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunSpeculation(&buf, tinyCfg(), []string{"dmv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 6") {
		t.Error("speculation output missing header")
	}
}

func TestRunTrainingStrategySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunTrainingStrategy(&buf, tinyCfg(), []ce.Type{ce.FCN}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 10") {
		t.Error("training-strategy output missing header")
	}
}

func TestRunBasicVsOptimizedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunBasicVsOptimized(&buf, tinyCfg(), []ce.Type{ce.FCN}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 12") {
		t.Error("basic-vs-optimized output missing header")
	}
}

func TestRunDetectorEffectSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunDetectorEffect(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 13") || !strings.Contains(out, "without detector") {
		t.Error("detector-effect output malformed")
	}
}

func TestRunIncrementalSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunIncremental(&buf, tinyCfg(), []string{"dmv"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 14") {
		t.Error("incremental output missing header")
	}
}

func TestRunAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunAblations(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"full PACE", "no hypergradient", "no inference ascent"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestRunRobustnessAdvisorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunRobustnessAdvisor(&buf, tinyCfg(), "dmv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recommendation:") {
		t.Error("advisor output missing recommendation")
	}
}

func TestRunTraditionalComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunTraditionalComparison(&buf, tinyCfg(), "tpch"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"histogram", "sampling", "PACE-poisoned"} {
		if !strings.Contains(out, want) {
			t.Errorf("traditional comparison missing %q", want)
		}
	}
}

func TestRunRegularizationDefenseSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	var buf bytes.Buffer
	if err := RunRegularizationDefense(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dropout") {
		t.Error("regularization output missing header")
	}
}

func TestRunDriftStudySmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunDriftStudy(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stale", "incrementally updated", "rebuilt"} {
		if !strings.Contains(out, want) {
			t.Errorf("drift output missing %q", want)
		}
	}
}
