package experiments

import (
	"fmt"
	"io"
	"time"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/faults"
	"pace/internal/metrics"
	"pace/internal/resilience"
	"pace/internal/workload"
)

// RunChaos is the unreliable-target study (beyond the paper's
// evaluation, which assumes a perfectly reachable victim): the full PACE
// campaign is run against every fault profile of internal/faults, and
// the table reports how much attack effectiveness survives each flavor
// of unreliability, alongside the fault and retry accounting. The
// campaign-side machinery under test is the retry/backoff policy, the
// skip-not-zero labeling and the graceful degradation of Campaign.Run.
func RunChaos(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)

	section(out, "Chaos study (dmv, FCN): attack effectiveness vs target unreliability")
	fmt.Fprintf(out, "%-10s %10s %10s %8s %8s %8s %8s %10s\n",
		"profile", "clean", "poisoned", "degrade", "faults", "retries", "skipped", "time")

	for pi, p := range faults.Profiles() {
		// A fresh target per profile: each campaign poisons its own twin.
		bb := w.NewBlackBox(ce.FCN, int64(3000+pi))
		clean := metrics.GeoMean(bb.QErrors(qs, cards))

		forced := ce.FCN
		runCfg := core.Config{
			NumPoison:       cfg.NumPoison,
			ForceType:       &forced, // speculation accuracy is Table 6's job
			DisableDetector: true,
			Workers:         cfg.Workers,
			Faults:          faults.NewInjector(p, cfg.Seed*31+int64(pi)),
			Retry: resilience.RetryPolicy{
				MaxAttempts: 3,
				BaseDelay:   200 * time.Microsecond,
				MaxDelay:    2 * time.Millisecond,
			},
			Generator: w.GenCfg(),
			Trainer:   w.TrainerCfg(),
			Telemetry: cfg.Telemetry,
		}
		runCfg.Surrogate.Queries = cfg.TrainQueries
		runCfg.Surrogate.HP = w.HP()
		runCfg.Surrogate.Train = w.TrainCfg()

		start := time.Now()
		campaign := &core.Campaign{
			Target:   bb,
			Workload: w.WGen,
			Test:     w.Test,
			History:  w.History,
			Config:   runCfg,
			Seed:     cfg.Seed*41 + int64(pi),
		}
		res, err := campaign.Run(w.Context())
		elapsed := time.Since(start)
		if err != nil {
			// A hostile enough profile may defeat the campaign outright;
			// that is a data point, not a harness failure.
			fmt.Fprintf(out, "%-10s %10.2f %10s %8s  campaign failed: %v\n",
				p.Name, clean, "-", "-", err)
			continue
		}
		poisoned := metrics.GeoMean(bb.QErrors(qs, cards))
		c := res.FaultCounters
		fmt.Fprintf(out, "%-10s %10.2f %10.2f %7.1f× %8d %8d %8d %10s\n",
			p.Name, clean, poisoned, poisoned/clean,
			c.Failures(), res.Stats.OracleRetries, res.Stats.SkippedSamples,
			fmtDur(elapsed))
	}
	fmt.Fprintln(out, "(degrade = poisoned/clean geometric-mean Q-error; faults = injected failures;")
	fmt.Fprintln(out, " retries/skipped = oracle calls recovered by backoff / lost after retries)")
	return nil
}
