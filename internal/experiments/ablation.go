package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/generator"
	"pace/internal/metrics"
	"pace/internal/workload"
)

// RunAblations quantifies the contribution of each design choice of the
// reproduction's attack trainer (the DESIGN.md "ablation hooks"): the
// bivariate hypergradient, the inference-loss-ascent component, the
// validity-restoration gradient for empty queries, and the budgeted
// best-group selection. Attacks run on dmv against an FCN target.
func RunAblations(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	clean := w.NewBlackBox(ce.FCN, 1)
	cleanErr := metrics.Mean(clean.QErrors(qs, cards))

	attack := func(mut func(*core.TrainerConfig), budgeted bool, off int64) float64 {
		sur := w.NewSurrogate(clean, ce.FCN, off)
		rng := rand.New(rand.NewSource(cfg.Seed*32452843 + off))
		gen := generator.New(w.DS.Meta, w.DS.Joinable, w.GenCfg(), rng)
		tcfg := w.TrainerCfg()
		if mut != nil {
			mut(&tcfg)
		}
		tr := core.NewTrainer(sur, gen, nil, core.EngineOracle(w.WGen),
			core.MakeTestSamples(sur, w.Test), tcfg, rng)
		_ = tr.TrainAccelerated(w.Context())
		var pq, pc = tr.GeneratePoison(w.Context(), cfg.NumPoison)
		if budgeted {
			pq, pc = tr.GeneratePoisonBudget(w.Context(), cfg.NumPoison, core.BudgetConfig{})
		}
		target := w.NewBlackBox(ce.FCN, 1)
		target.ExecuteWorkload(w.Context(), pq, pc)
		return metrics.Mean(target.QErrors(qs, cards))
	}

	section(out, "Ablations (dmv, FCN): contribution of each attack component")
	fmt.Fprintf(out, "%-34s %14s\n", "variant", "mean q-error")
	fmt.Fprintf(out, "%-34s %14.3g\n", "clean (no attack)", cleanErr)
	rows := []struct {
		name     string
		mut      func(*core.TrainerConfig)
		budgeted bool
	}{
		{"full PACE", nil, false},
		{"full PACE + budget selection", nil, true},
		{"no hypergradient", func(c *core.TrainerConfig) { c.DisableHypergradient = true }, false},
		{"no inference ascent", func(c *core.TrainerConfig) { c.InferenceWeight = -1 }, false},
		{"no validity widening", func(c *core.TrainerConfig) { c.ValidityWeight = -1 }, false},
	}
	for i, r := range rows {
		fmt.Fprintf(out, "%-34s %14.3g\n", r.name, attack(r.mut, r.budgeted, int64(i+1)))
	}
	return nil
}

// RunRobustnessAdvisor implements the paper's future-work direction (2)
// of §8: "test the vulnerability of various cardinality estimation models
// and recommend a robust one". Every model type is attacked with PACE on
// the given dataset; models are ranked by degradation factor (post-attack
// over clean geometric-mean Q-error).
func RunRobustnessAdvisor(out io.Writer, cfg Config, name string) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld(name, cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	type row struct {
		typ      ce.Type
		clean    float64
		attacked float64
	}
	rows := make([]row, 0, len(ce.Types()))
	for mi, typ := range ce.Types() {
		clean := w.NewBlackBox(typ, int64(mi+1))
		sur := w.NewSurrogate(clean, typ, int64(mi+1))
		tr := w.TrainPACE(sur, det, int64(mi+1))
		pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
		target := w.NewBlackBox(typ, int64(mi+1))
		target.ExecuteWorkload(w.Context(), pq, pc)
		rows = append(rows, row{
			typ:      typ,
			clean:    metrics.GeoMean(clean.QErrors(qs, cards)),
			attacked: metrics.GeoMean(target.QErrors(qs, cards)),
		})
	}
	sort.Slice(rows, func(a, b int) bool {
		return rows[a].attacked/rows[a].clean < rows[b].attacked/rows[b].clean
	})

	section(out, fmt.Sprintf("Robustness advisor (%s): CE models ranked by PACE degradation", name))
	fmt.Fprintf(out, "%-10s %12s %12s %12s\n", "model", "clean gq", "attacked gq", "degradation")
	for _, r := range rows {
		fmt.Fprintf(out, "%-10s %12.3g %12.3g %11.2f×\n",
			r.typ, r.clean, r.attacked, r.attacked/r.clean)
	}
	fmt.Fprintf(out, "recommendation: %s (most robust under attack)\n", rows[0].typ)
	return nil
}
