// Package experiments regenerates every table and figure of the PACE
// evaluation (§7) on the synthetic substrate. Each exported Run* function
// corresponds to one table or figure and prints rows in the paper's
// layout; DESIGN.md maps them one to one.
//
// Absolute numbers differ from the paper (the substrate is a laptop-scale
// simulator, not the authors' GPU + PostgreSQL testbed); the reproduced
// quantities are the *shapes*: method orderings, robustness of Linear,
// multi-table vs single-table sensitivity, accelerated-vs-basic speedup,
// and the detector's effectiveness/normality trade-off.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/dataset"
	"pace/internal/detector"
	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/obs"
	"pace/internal/workload"
)

// bg is the fallback context for the in-process experiment harness,
// where target and oracle calls cannot fail and deadlines are not a
// concern. Config.Ctx overrides it so cmd/experiments can propagate
// Ctrl-C into running campaigns.
var bg = context.Background()

// Seed-derivation constants for the per-row streams of the parallel
// matrix: every row draws its surrogate workload and its baseline
// poison from private rngs seeded by (Seed, constant, row offset).
const (
	surWgenSeedK int64 = 179426549
	rowSeedK     int64 = 86028121
)

// Config scales the experiment suite. The defaults are the "quick"
// profile: minutes on a laptop. Full-profile values (closer to the
// paper's 10 000/1 000/450 workload sizes) are obtained with Full().
type Config struct {
	// Scale is the dataset scale factor (default 0.05).
	Scale float64
	// Seed drives all randomness (default 1).
	Seed int64
	// TrainQueries / TestQueries size the target's workload
	// (defaults 240 / 80; the paper uses 10 000 / 1 000).
	TrainQueries int
	TestQueries  int
	// HistoryQueries sizes the detector's historical workload
	// (default = TrainQueries).
	HistoryQueries int
	// NumPoison is the poisoning budget (default 5% of TrainQueries·…
	// = TrainQueries/4, mirroring the paper's 450 ≈ 5% of 10 000 scaled
	// to give the update a comparable footprint).
	NumPoison int
	// Hidden / Layers are the CE models' default hyperparameters
	// (defaults 24 / 2).
	Hidden, Layers int
	// Epochs is the CE training epoch count (default 25).
	Epochs int
	// Inner/Outer are the PACE trainer loop sizes (defaults 10 / 8).
	Inner, Outer int
	// GenLR is the generator learning rate (default 5e-3 — compensates
	// for the reduced step count versus the paper's 20×20 schedule).
	GenLR float64
	// SpecBlackBoxes is the per-type black-box count of the Table 6
	// speculation-accuracy experiment (default 3; the paper uses 20).
	SpecBlackBoxes int
	// E2EQueries is the number of multi-table join queries in Table 5
	// (default 20, the paper's count).
	E2EQueries int
	// Workers bounds the harness's worker pool: the (model × method)
	// matrix fans out across models and each trainer fans out its oracle
	// labeling. 0 runs serially, negative uses all cores. Results are
	// identical at any setting — every model row draws from its own
	// seeded streams.
	Workers int
	// Telemetry, when set, instruments the harness: experiment campaigns
	// carry it as their Config.Telemetry, the matrix pool and embedded
	// trainers bind their counters to its registry, and spans cover every
	// pipeline stage. Nil (the default) disables all channels.
	Telemetry *obs.Telemetry
	// Ctx, when non-nil, is the context every harness campaign, trainer
	// and target call runs under; cmd/experiments passes its
	// signal-cancelled context so Ctrl-C stops a run mid-experiment
	// instead of being ignored until the suite ends. Nil means
	// context.Background().
	Ctx context.Context
}

// Context returns the harness context (Background when unset).
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return bg
}

// Context returns the world's harness context.
func (w *World) Context() context.Context { return w.Cfg.Context() }

// WithDefaults fills zero fields with the quick profile.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TrainQueries == 0 {
		c.TrainQueries = 240
	}
	if c.TestQueries == 0 {
		c.TestQueries = 80
	}
	if c.HistoryQueries == 0 {
		c.HistoryQueries = c.TrainQueries
	}
	if c.NumPoison == 0 {
		c.NumPoison = c.TrainQueries / 4
	}
	if c.Hidden == 0 {
		c.Hidden = 24
	}
	if c.Layers == 0 {
		c.Layers = 2
	}
	if c.Epochs == 0 {
		c.Epochs = 25
	}
	if c.Inner == 0 {
		c.Inner = 10
	}
	if c.Outer == 0 {
		c.Outer = 8
	}
	if c.GenLR == 0 {
		c.GenLR = 5e-3
	}
	if c.SpecBlackBoxes == 0 {
		c.SpecBlackBoxes = 3
	}
	if c.E2EQueries == 0 {
		c.E2EQueries = 20
	}
	return c
}

// Full returns the heavier profile used to regenerate EXPERIMENTS.md
// (hours-scale on a laptop, still far below the paper's GPU budget).
func Full() Config {
	return Config{
		Scale:          0.15,
		TrainQueries:   600,
		TestQueries:    150,
		Epochs:         35,
		Inner:          15,
		Outer:          12,
		SpecBlackBoxes: 5,
	}.WithDefaults()
}

// World bundles everything one dataset's experiments need.
type World struct {
	Cfg     Config
	DS      *dataset.Dataset
	Eng     *engine.Engine
	WGen    *workload.Generator
	Train   []workload.Labeled
	Test    []workload.Labeled
	History []workload.Labeled
	rng     *rand.Rand
}

// NewWorld materializes a dataset and its workloads.
func NewWorld(name string, cfg Config) (*World, error) {
	cfg = cfg.WithDefaults()
	ds, err := dataset.Build(name, dataset.Config{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	eng := engine.New(ds)
	rng := rand.New(rand.NewSource(cfg.Seed))
	wgen := workload.NewGenerator(ds, eng, rng)
	w := &World{Cfg: cfg, DS: ds, Eng: eng, WGen: wgen, rng: rng}
	if name == "imdb" || name == "stats" {
		w.Train = wgen.Templated(cfg.TrainQueries)
		w.Test = wgen.Templated(cfg.TestQueries)
	} else {
		w.Train = wgen.Random(cfg.TrainQueries)
		w.Test = wgen.Random(cfg.TestQueries)
	}
	w.History = wgen.Random(cfg.HistoryQueries)
	return w, nil
}

// HP returns the default CE hyperparameters of the profile.
func (w *World) HP() ce.HyperParams {
	return ce.HyperParams{Hidden: w.Cfg.Hidden, Layers: w.Cfg.Layers}
}

// TrainCfg returns the default CE training configuration.
func (w *World) TrainCfg() ce.TrainConfig {
	return ce.TrainConfig{Epochs: w.Cfg.Epochs, Batch: 32}
}

// NewBlackBox trains a fresh target model of the given type on the
// world's training workload. seedOffset decorrelates repeated targets.
func (w *World) NewBlackBox(typ ce.Type, seedOffset int64) *ce.BlackBox {
	return w.NewBlackBoxHP(typ, w.HP(), seedOffset)
}

// NewBlackBoxHP trains a target with explicit hyperparameters.
func (w *World) NewBlackBoxHP(typ ce.Type, hp ce.HyperParams, seedOffset int64) *ce.BlackBox {
	rng := rand.New(rand.NewSource(w.Cfg.Seed*7919 + seedOffset))
	model := ce.New(typ, w.DS.Meta, hp, rng)
	est := ce.NewEstimator(model, w.TrainCfg(), rng)
	est.Train(est.MakeSamples(workload.Queries(w.Train), Cards(w.Train)))
	return ce.AsBlackBox(est)
}

// NewSurrogate trains a white-box surrogate of the given type against bb
// using the combined Eq. 7 strategy. The training workload is drawn from
// a private clone of the world's generator, so concurrent matrix rows
// never share an RNG.
func (w *World) NewSurrogate(bb *ce.BlackBox, typ ce.Type, seedOffset int64) *ce.Estimator {
	sur, err := w.NewSurrogateTarget(bb, typ, seedOffset)
	if err != nil {
		// Unreachable with an in-process black box and a background
		// context; a real failure here is a harness bug.
		panic("experiments: surrogate training failed: " + err.Error())
	}
	return sur
}

// GenCfg returns the poisoning-generator configuration.
func (w *World) GenCfg() generator.Config {
	return generator.Config{Hidden: 32, LR: w.Cfg.GenLR}
}

// TrainerCfg returns the PACE trainer configuration.
func (w *World) TrainerCfg() core.TrainerConfig {
	return core.TrainerConfig{
		Batch:      32,
		InnerIters: w.Cfg.Inner,
		OuterIters: w.Cfg.Outer,
	}
}

// NewDetector trains the anomaly detector on the world's history.
func (w *World) NewDetector(seedOffset int64) *detector.Detector {
	rng := rand.New(rand.NewSource(w.Cfg.Seed*15485863 + seedOffset))
	det := detector.New(w.DS.Meta.Dim(), detector.Config{Epochs: 60}, rng)
	det.Train(Encodings(w.History, w.DS))
	det.CalibrateThreshold(Encodings(w.History, w.DS), 90)
	return det
}

// TrainPACE trains a PACE generator against sur (optionally with det) and
// returns the trainer.
func (w *World) TrainPACE(sur *ce.Estimator, det *detector.Detector, seedOffset int64) *core.Trainer {
	rng := rand.New(rand.NewSource(w.Cfg.Seed*32452843 + seedOffset))
	gen := generator.New(w.DS.Meta, w.DS.Joinable, w.GenCfg(), rng)
	tr := core.NewTrainer(sur, gen, det, core.EngineOracle(w.WGen),
		core.MakeTestSamples(sur, w.Test), w.TrainerCfg(), rng).
		Instrument(w.Cfg.Telemetry.Registry())
	tr.Pool = engine.PoolFor(w.Cfg.Workers).Instrument(w.Cfg.Telemetry.Registry())
	_ = tr.TrainAccelerated(obs.NewContext(w.Context(), w.Cfg.Telemetry))
	return tr
}

// Cards extracts the cardinalities of a labeled workload.
func Cards(w []workload.Labeled) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i].Card
	}
	return out
}

// Encodings encodes a labeled workload against the dataset's meta.
func Encodings(w []workload.Labeled, ds *dataset.Dataset) [][]float64 {
	out := make([][]float64, len(w))
	for i, l := range w {
		out[i] = l.Q.Encode(ds.Meta)
	}
	return out
}

// section prints a table header.
func section(out io.Writer, title string) {
	fmt.Fprintf(out, "\n== %s ==\n", title)
}

// fmtDur rounds a duration for table output.
func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }
