package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/classic"
	"pace/internal/metrics"
	"pace/internal/query"
	"pace/internal/spn"
	"pace/internal/workload"
)

// RunDriftStudy exposes the security–freshness tension behind the whole
// attack: the incremental-update channel exists because data drifts. The
// dataset is grown with a distribution shift, and estimators are scored
// on a fresh post-drift workload:
//
//   - a stale query-driven FCN (update channel closed: safe but wrong),
//   - the same FCN after incrementally retraining on fresh queries (the
//     mechanism PACE rides in on: fresh but poisonable),
//   - stale and rebuilt histogram and SPN (the data-driven alternatives,
//     which adapt by re-summarizing data, not by trusting queries).
func RunDriftStudy(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	target := w.NewBlackBox(ce.FCN, 1)

	// Estimators built before the drift.
	staleHist := classic.NewHistogram(w.DS, 32)
	staleSPN := spn.New(w.DS, spn.Config{})

	// The world drifts: 50% more rows, shifted by +0.2.
	w.DS.Grow(0.5, 0.2, rand.New(rand.NewSource(cfg.Seed*13)))

	// A fresh post-drift workload (new cardinalities come from the
	// grown data through the same exact engine).
	fresh := w.WGen.Random(cfg.TestQueries)
	qs := workload.Queries(fresh)
	cards := Cards(fresh)

	row := func(label string, estimate func(q *query.Query) float64) {
		errs := make([]float64, len(qs))
		for i, q := range qs {
			errs[i] = ce.QError(estimate(q), cards[i])
		}
		fmt.Fprintf(out, "%-30s %12.3g %12.3g\n",
			label, metrics.Mean(errs), metrics.GeoMean(errs))
	}

	section(out, "Drift study (dmv, +50% rows shifted by 0.2): accuracy on a post-drift workload")
	fmt.Fprintf(out, "%-30s %12s %12s\n", "estimator", "mean qerr", "geo qerr")
	row("FCN, stale (no updates)", target.Estimate)

	// The update channel at work: the model retrains on a batch of
	// freshly executed queries (exactly what poisoning hijacks).
	adapt := w.WGen.Random(cfg.NumPoison)
	target.ExecuteWorkload(w.Context(), workload.Queries(adapt), Cards(adapt))
	row("FCN, incrementally updated", target.Estimate)

	row("histogram, stale", staleHist.Estimate)
	row("histogram, rebuilt", classic.NewHistogram(w.DS, 32).Estimate)
	row("SPN, stale", staleSPN.Estimate)
	row("SPN, rebuilt", spn.New(w.DS, spn.Config{}).Estimate)
	return nil
}
