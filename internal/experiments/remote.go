package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/engine"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/surrogate"
	"pace/internal/tenant"
	"pace/internal/wire"
	"pace/internal/workload"

	"math/rand"
)

// ModelSlug renders a model type as the lowercase token ce.ParseType
// accepts and tenant ids permit ("FCN+Pool" → "fcnpool").
func ModelSlug(typ ce.Type) string {
	return strings.ToLower(strings.ReplaceAll(typ.String(), "+", ""))
}

// TenantFactory adapts the experiment harness into a tenant.Factory: a
// Spec's (dataset, model, seed, seed_offset, scale) names exactly the
// world cmd/pace and RunMatrix build in-process, so a provisioned tenant
// hosts a bit-identical victim. Worlds are cached per (dataset, seed,
// scale) — tenants of the same world (e.g. one per matrix cell) share
// the dataset build and train only their own model.
//
// base supplies the profile knobs a Spec does not carry (workload sizes,
// epochs...). For cross-process bit-identity the factory's base profile
// must match the attacking side's Config — both default to the quick
// profile.
func TenantFactory(base Config) tenant.Factory {
	base = base.WithDefaults()
	type worldKey struct {
		dataset string
		seed    int64
		scale   float64
	}
	var (
		mu     sync.Mutex
		worlds = make(map[worldKey]*World)
	)
	return func(ctx context.Context, spec tenant.Spec) (ce.Target, *query.Meta, error) {
		typ, err := ce.ParseType(spec.Model)
		if err != nil {
			return nil, nil, err
		}
		cfg := base
		if spec.Seed != 0 {
			cfg.Seed = spec.Seed
		}
		if spec.Scale != 0 {
			cfg.Scale = spec.Scale
		}
		key := worldKey{dataset: spec.Dataset, seed: cfg.Seed, scale: cfg.Scale}
		mu.Lock()
		w, ok := worlds[key]
		mu.Unlock()
		if !ok {
			// Dataset + workload builds race at worst once per key; losers
			// throw their world away.
			if w, err = NewWorld(spec.Dataset, cfg); err != nil {
				return nil, nil, err
			}
			mu.Lock()
			if cached, again := worlds[key]; again {
				w = cached
			} else {
				worlds[key] = w
			}
			mu.Unlock()
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		bb := w.NewBlackBox(typ, spec.SeedOffset)
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return bb, w.DS.Meta, nil
	}
}

// NewSurrogateTarget is NewSurrogate against any ce.Target — including a
// remote tenant, where estimates cross the wire bit-exactly, so the
// trained surrogate equals the in-process one. Unlike NewSurrogate it
// returns the error (remote targets genuinely fail).
func (w *World) NewSurrogateTarget(target ce.Target, typ ce.Type, seedOffset int64) (*ce.Estimator, error) {
	rng := rand.New(rand.NewSource(w.Cfg.Seed*104729 + seedOffset))
	wgen := w.WGen.WithRng(rand.New(rand.NewSource(w.Cfg.Seed*surWgenSeedK + seedOffset)))
	return surrogate.Train(w.Context(), target, typ, wgen, surrogate.TrainConfig{
		Queries: w.Cfg.TrainQueries,
		HP:      w.HP(),
		Train:   w.TrainCfg(),
	}, rng)
}

// TargetQErrors evaluates any ce.Target on a labeled workload, mirroring
// BlackBox.QErrors query by query; against a remote tenant the estimates
// arrive bit-exactly, so the distribution matches the in-process one.
// Exported for harnesses (internal/bench) that measure arbitrary targets.
func TargetQErrors(ctx context.Context, t ce.Target, qs []*query.Query, cards []float64) ([]float64, error) {
	return targetQErrors(ctx, t, qs, cards)
}

func targetQErrors(ctx context.Context, t ce.Target, qs []*query.Query, cards []float64) ([]float64, error) {
	out := make([]float64, len(qs))
	for i, q := range qs {
		est, err := t.EstimateContext(ctx, q)
		if err != nil {
			return nil, err
		}
		out[i] = ce.QError(est, cards[i])
	}
	return out, nil
}

// wireSpec converts a tenant spec to its admin-API form.
func wireSpec(s tenant.Spec) wire.TargetSpec {
	return wire.TargetSpec{
		ID: s.ID, Dataset: s.Dataset, Model: s.Model,
		Seed: s.Seed, SeedOffset: s.SeedOffset, Scale: s.Scale, CacheSize: s.CacheSize,
	}
}

// RunMatrixRemote is RunMatrix with every victim hosted as a tenant of
// one long-lived paced at baseURL: each (model, method) cell provisions
// its own tenant over the admin API, attacks it through the wire, and
// destroys it. Poison generation (detector, surrogate training, PACE
// trainer) stays in-process — only target interactions cross the wire,
// all bit-exactly — so for a fixed seed the resulting matrix is
// bit-identical to RunMatrix's, provided the server's factory runs the
// same profile (see TenantFactory).
//
// Cells carry no BB (the attacked models live in the server); the E2E
// table, which needs in-process models, is skipped for remote matrices.
func RunMatrixRemote(name string, models []ce.Type, cfg Config, baseURL string, opts remote.Options) (*MatrixResult, error) {
	cfg = cfg.WithDefaults()
	w, err := NewWorld(name, cfg)
	if err != nil {
		return nil, err
	}
	client, err := remote.NewClient(baseURL, opts)
	if err != nil {
		return nil, err
	}
	defer client.Close()
	admin := client.Admin()

	res := &MatrixResult{
		Dataset: name,
		Models:  models,
		World:   w,
		Cells:   make(map[ce.Type]map[core.Method]*MatrixCell),
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	ctx := w.Context()

	// provision creates the tenant, dials it, runs fn, then tears both
	// down. The spec's SeedOffset is the row offset, so the server-built
	// victim is the bit-identical twin of RunMatrix's NewBlackBox(typ, off).
	provision := func(id string, typ ce.Type, off int64, fn func(t ce.Target) error) error {
		spec := tenant.Spec{
			ID: id, Dataset: name, Model: ModelSlug(typ),
			Seed: cfg.Seed, SeedOffset: off, Scale: cfg.Scale,
		}
		if _, err := admin.CreateTarget(ctx, wireSpec(spec)); err != nil {
			return fmt.Errorf("provisioning %s: %w", id, err)
		}
		defer admin.DeleteTarget(ctx, id) //nolint:errcheck // best-effort cleanup
		// Targets share the client's connection pool; each cell just gets
		// its own routed view.
		return fn(client.Target(id))
	}

	rows := make([]map[core.Method]*MatrixCell, len(models))
	rowErrs := make([]error, len(models))
	engine.PoolFor(cfg.Workers).Instrument(cfg.Telemetry.Registry()).ForEach(len(models), func(mi int) {
		typ := models[mi]
		cells := make(map[core.Method]*MatrixCell)
		rows[mi] = cells
		off := int64(mi + 1)
		slug := ModelSlug(typ)
		det := w.NewDetector(0)
		rowRng := rand.New(rand.NewSource(cfg.Seed*rowSeedK + off))
		rowWGen := w.WGen.WithRng(rowRng)

		var sur *ce.Estimator
		rowErrs[mi] = provision(fmt.Sprintf("mx-%s-%s-clean", name, slug), typ, off, func(t ce.Target) error {
			qerrs, err := targetQErrors(ctx, t, qs, cards)
			if err != nil {
				return err
			}
			cells[core.Clean] = &MatrixCell{QErrors: qerrs}
			sur, err = w.NewSurrogateTarget(t, typ, off)
			return err
		})
		if rowErrs[mi] != nil {
			return
		}

		for _, m := range core.Methods() {
			id := fmt.Sprintf("mx-%s-%s-%s", name, slug, strings.ToLower(m.String()))
			rowErrs[mi] = provision(id, typ, off, func(t ce.Target) error {
				var pq []*query.Query
				var pc []float64
				if m == core.PACE {
					tr := w.TrainPACE(sur, det, off)
					pq, pc = tr.GeneratePoison(ctx, cfg.NumPoison)
				} else {
					pq, pc = core.CraftPoison(ctx, m, sur, rowWGen, w.GenCfg(), cfg.NumPoison, rowRng)
				}
				if err := t.ExecuteWorkload(ctx, pq, pc); err != nil {
					return err
				}
				qerrs, err := targetQErrors(ctx, t, qs, cards)
				if err != nil {
					return err
				}
				cells[m] = &MatrixCell{QErrors: qerrs}
				return nil
			})
			if rowErrs[mi] != nil {
				return
			}
		}
	})
	for mi, typ := range models {
		if rowErrs[mi] != nil {
			return nil, fmt.Errorf("row %s: %w", typ, rowErrs[mi])
		}
		res.Cells[typ] = rows[mi]
	}
	return res, nil
}
