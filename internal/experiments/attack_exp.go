package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/generator"
	"pace/internal/metrics"
	"pace/internal/workload"
)

// RunBudget reproduces Table 8: the Q-error increase multiple (relative
// to the clean model) under varying poisoning-query budgets, for the FCN
// target on dmv and imdb. Budgets are multiples of the profile's default
// (the paper's 225/450/900/1800 around its default 450).
func RunBudget(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb"}
	}
	budgets := []int{cfg.NumPoison / 2, cfg.NumPoison, 2 * cfg.NumPoison, 4 * cfg.NumPoison}
	section(out, "Table 8: Q-error increase multiple vs poisoning budget (FCN)")
	fmt.Fprintf(out, "%-8s", "dataset")
	for _, b := range budgets {
		fmt.Fprintf(out, " %10d", b)
	}
	fmt.Fprintln(out)

	for _, name := range datasets {
		w, err := NewWorld(name, cfg)
		if err != nil {
			return err
		}
		qs := workload.Queries(w.Test)
		cards := Cards(w.Test)
		det := w.NewDetector(0)
		clean := w.NewBlackBox(ce.FCN, 1)
		cleanErr := metrics.Mean(clean.QErrors(qs, cards))
		sur := w.NewSurrogate(clean, ce.FCN, 1)
		tr := w.TrainPACE(sur, det, 1)

		fmt.Fprintf(out, "%-8s", name)
		for _, b := range budgets {
			pq, pc := tr.GeneratePoison(w.Context(), b)
			target := w.NewBlackBox(ce.FCN, 1)
			target.ExecuteWorkload(w.Context(), pq, pc)
			mult := metrics.Mean(target.QErrors(qs, cards)) / cleanErr
			fmt.Fprintf(out, " %10.3g", mult)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// RunOverhead reproduces Table 9: PACE's training, generation, and
// attacking time for the FCN target on every dataset.
func RunOverhead(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb", "tpch", "stats"}
	}
	section(out, "Table 9: PACE overhead (FCN target)")
	fmt.Fprintf(out, "%-8s %14s %14s %14s\n", "dataset", "training", "generation", "attacking")
	for _, name := range datasets {
		w, err := NewWorld(name, cfg)
		if err != nil {
			return err
		}
		tTrain, tGen, tAttack, err := overheadOnce(w, cfg, cfg.NumPoison)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8s %14s %14s %14s\n", name, fmtDur(tTrain), fmtDur(tGen), fmtDur(tAttack))
	}
	return nil
}

// RunOverheadByCount reproduces Table 10: overhead under different
// poisoning-query counts on dmv. Training time is budget-independent;
// generation and attacking scale with the count.
func RunOverheadByCount(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	section(out, "Table 10 (dmv): PACE overhead vs number of poisoning queries")
	fmt.Fprintf(out, "%-10s %14s %14s %14s\n", "queries", "training", "generation", "attacking")
	for _, n := range []int{cfg.NumPoison / 2, cfg.NumPoison, 2 * cfg.NumPoison} {
		tTrain, tGen, tAttack, err := overheadOnce(w, cfg, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-10d %14s %14s %14s\n", n, fmtDur(tTrain), fmtDur(tGen), fmtDur(tAttack))
	}
	return nil
}

func overheadOnce(w *World, cfg Config, numPoison int) (tTrain, tGen, tAttack time.Duration, err error) {
	clean := w.NewBlackBox(ce.FCN, 1)

	start := time.Now()
	det := w.NewDetector(0)
	sur := w.NewSurrogate(clean, ce.FCN, 1)
	tr := w.TrainPACE(sur, det, 1)
	tTrain = time.Since(start)

	start = time.Now()
	pq, pc := tr.GeneratePoison(w.Context(), numPoison)
	tGen = time.Since(start)

	target := w.NewBlackBox(ce.FCN, 1)
	start = time.Now()
	target.ExecuteWorkload(w.Context(), pq, pc)
	tAttack = time.Since(start)
	return tTrain, tGen, tAttack, nil
}

// RunBasicVsOptimized reproduces Figure 12: the effectiveness and
// efficiency of the basic (Fig. 5a) versus the accelerated (Fig. 5b)
// generator-training algorithm on dmv.
func RunBasicVsOptimized(out io.Writer, cfg Config, models []ce.Type) error {
	cfg = cfg.WithDefaults()
	if models == nil {
		models = []ce.Type{ce.FCN, ce.MSCN, ce.RNN}
	}
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	section(out, "Figure 12 (dmv): PACE-basic vs PACE-optimized")
	fmt.Fprintf(out, "%-10s %14s %14s %14s %14s\n",
		"model", "basic qerr", "optim qerr", "basic time", "optim time")
	for mi, typ := range models {
		clean := w.NewBlackBox(typ, int64(mi+1))

		run := func(alg core.Algorithm, off int64) (float64, time.Duration) {
			sur := w.NewSurrogate(clean, typ, off)
			rng := rand.New(rand.NewSource(cfg.Seed*32452843 + off))
			gen := generator.New(w.DS.Meta, w.DS.Joinable, w.GenCfg(), rng)
			tr := core.NewTrainer(sur, gen, det, core.EngineOracle(w.WGen),
				core.MakeTestSamples(sur, w.Test), w.TrainerCfg(), rng)
			start := time.Now()
			if alg == core.Basic {
				_ = tr.TrainBasic(w.Context())
			} else {
				_ = tr.TrainAccelerated(w.Context())
			}
			elapsed := time.Since(start)
			pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
			target := w.NewBlackBox(typ, int64(mi+1))
			target.ExecuteWorkload(w.Context(), pq, pc)
			return metrics.Mean(target.QErrors(qs, cards)), elapsed
		}

		basicErr, basicTime := run(core.Basic, int64(10*mi+1))
		optErr, optTime := run(core.Accelerated, int64(10*mi+2))
		fmt.Fprintf(out, "%-10s %14.3g %14.3g %14s %14s\n",
			typ, basicErr, optErr, fmtDur(basicTime), fmtDur(optTime))
	}
	return nil
}

// RunIncremental reproduces Figure 14: the training workload is split
// into five parts; after each incremental training round the FCN target
// is attacked and the post-attack Q-error reported.
func RunIncremental(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb", "tpch", "stats"}
	}
	const rounds = 5
	section(out, "Figure 14: post-attack mean Q-error after each incremental training round (FCN)")
	fmt.Fprintf(out, "%-8s", "dataset")
	for r := 1; r <= rounds; r++ {
		fmt.Fprintf(out, " %10s", fmt.Sprintf("round %d", r))
	}
	fmt.Fprintln(out)

	for _, name := range datasets {
		w, err := NewWorld(name, cfg)
		if err != nil {
			return err
		}
		qs := workload.Queries(w.Test)
		cards := Cards(w.Test)
		det := w.NewDetector(0)
		parts := workload.Split(w.Train, rounds)

		// The target trains incrementally; it is attacked after every
		// round, and the poisoning persists into the next round — the
		// paper's setting.
		rng := rand.New(rand.NewSource(cfg.Seed * 7919))
		model := ce.New(ce.FCN, w.DS.Meta, w.HP(), rng)
		est := ce.NewEstimator(model, w.TrainCfg(), rng)
		target := ce.AsBlackBox(est)

		fmt.Fprintf(out, "%-8s", name)
		for r := 0; r < rounds; r++ {
			target.ExecuteWorkload(w.Context(), workload.Queries(parts[r]), Cards(parts[r]))
			sur := w.NewSurrogate(target, ce.FCN, int64(r+1))
			tr := w.TrainPACE(sur, det, int64(r+1))
			pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
			target.ExecuteWorkload(w.Context(), pq, pc)
			fmt.Fprintf(out, " %10.3g", metrics.Mean(target.QErrors(qs, cards)))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// RunConvergence reproduces Figure 15: the objective's convergence curve
// per outer loop for the FCN target on every dataset (reported as the
// generator's loss −L_test, which declines as the paper plots it).
func RunConvergence(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb", "tpch", "stats"}
	}
	section(out, "Figure 15: generator training loss (−objective) per outer loop (FCN)")
	for _, name := range datasets {
		w, err := NewWorld(name, cfg)
		if err != nil {
			return err
		}
		clean := w.NewBlackBox(ce.FCN, 1)
		sur := w.NewSurrogate(clean, ce.FCN, 1)
		tr := w.TrainPACE(sur, w.NewDetector(0), 1)
		fmt.Fprintf(out, "%-8s", name)
		for _, obj := range tr.Objective {
			fmt.Fprintf(out, " %9.3g", -obj)
		}
		fmt.Fprintln(out)
	}
	return nil
}
