package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/classic"
	"pace/internal/metrics"
	"pace/internal/qopt"
	"pace/internal/query"
	"pace/internal/spn"
	"pace/internal/workload"
)

// RunTraditionalComparison contrasts query-driven learned CE with the
// traditional estimators the paper's introduction positions it against
// (histograms and sampling), plus a DeepDB-style data-driven SPN, before
// and after poisoning. Traditional and data-driven estimators summarize the data rather than the workload, so the
// poisoning channel does not exist for them: whatever accuracy edge a
// learned model has when clean, a poisoned learned model falls behind the
// un-attackable baselines — the security cost of learning from queries.
// Reported per estimator: mean/geometric-mean Q-error on the test
// workload and the summed E2E plan cost of the multi-join workload.
func RunTraditionalComparison(out io.Writer, cfg Config, name string) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld(name, cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)

	clean := w.NewBlackBox(ce.FCN, 1)
	sur := w.NewSurrogate(clean, ce.FCN, 1)
	tr := w.TrainPACE(sur, w.NewDetector(0), 1)
	pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
	poisoned := w.NewBlackBox(ce.FCN, 1)
	poisoned.ExecuteWorkload(w.Context(), pq, pc)

	hist := classic.NewHistogram(w.DS, 32)
	sampler := classic.NewSampler(w.DS, 0.1, rand.New(rand.NewSource(cfg.Seed)))

	// Multi-join workload for the plan-cost column.
	var joins []*query.Query
	for attempts := 0; len(joins) < w.Cfg.E2EQueries && attempts < 200*w.Cfg.E2EQueries; attempts++ {
		l := w.WGen.Random(1)
		if l[0].Q.NumTables() >= 2 {
			joins = append(joins, l[0].Q)
		}
	}
	opt := qopt.New(w.DS, w.Eng)

	section(out, fmt.Sprintf("Learned vs traditional CE under poisoning (%s)", name))
	fmt.Fprintf(out, "%-24s %12s %12s %14s\n", "estimator", "mean qerr", "geo qerr", "plan cost")
	row := func(label string, estimate func(*query.Query) float64) {
		errs := make([]float64, len(qs))
		for i, q := range qs {
			errs[i] = ce.QError(estimate(q), cards[i])
		}
		var lat float64
		if len(joins) > 0 {
			lat = opt.Latency(joins, estimate)
		}
		fmt.Fprintf(out, "%-24s %12.3g %12.3g %14.4g\n",
			label, metrics.Mean(errs), metrics.GeoMean(errs), lat)
	}
	row("FCN (clean)", clean.Estimate)
	row("FCN (PACE-poisoned)", poisoned.Estimate)
	row("histogram", hist.Estimate)
	row("sampling (10%)", sampler.Estimate)
	row("SPN (data-driven)", spn.New(w.DS, spn.Config{}).Estimate)
	row("(true cardinalities)", opt.TrueEstimate())
	return nil
}
