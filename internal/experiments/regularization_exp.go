package experiments

import (
	"fmt"
	"io"

	"pace/internal/ce"
	"pace/internal/metrics"
	"pace/internal/workload"
)

// RunRegularizationDefense tests a training-side mitigation: does dropout
// regularization in the target's FCN blunt PACE? Poisoning relies on the
// incremental update absorbing a coherent distortion; stochastic updates
// both smooth the model (less local memorization to exploit) and add
// noise to the very gradients the poison was optimized for. For each
// dropout rate the experiment reports clean accuracy (the price of the
// defense) and post-attack accuracy (its benefit).
func RunRegularizationDefense(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	section(out, "Regularization as defense (dmv, FCN): dropout vs PACE")
	fmt.Fprintf(out, "%-12s %14s %14s %14s\n", "dropout", "clean qerr", "attacked qerr", "degradation")
	for i, p := range []float64{0, 0.1, 0.25} {
		hp := w.HP()
		hp.Dropout = p
		off := int64(i + 1)
		clean := w.NewBlackBoxHP(ce.FCN, hp, off)
		cleanErr := metrics.GeoMean(clean.QErrors(qs, cards))

		sur := w.NewSurrogate(clean, ce.FCN, off) // attacker's surrogate has no dropout
		tr := w.TrainPACE(sur, det, off)
		pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
		target := w.NewBlackBoxHP(ce.FCN, hp, off)
		target.ExecuteWorkload(w.Context(), pq, pc)
		attacked := metrics.GeoMean(target.QErrors(qs, cards))

		fmt.Fprintf(out, "%-12.2f %14.3g %14.3g %13.2f×\n",
			p, cleanErr, attacked, attacked/cleanErr)
	}
	return nil
}
