package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"pace/internal/ce"
	"pace/internal/core"
	"pace/internal/engine"
	"pace/internal/metrics"
	"pace/internal/qopt"
	"pace/internal/query"
	"pace/internal/workload"
)

// MatrixCell is one (model, method) outcome: the post-attack Q-error
// distribution on the test workload and the attacked model itself (kept
// for the Table 5 end-to-end experiment).
type MatrixCell struct {
	QErrors []float64
	BB      *ce.BlackBox
}

// MatrixResult holds one dataset's (model × method) attack matrix — the
// raw material of Figures 6–9 and Tables 3, 4 and 5.
type MatrixResult struct {
	Dataset string
	Models  []ce.Type
	World   *World
	Cells   map[ce.Type]map[core.Method]*MatrixCell
}

// RunMatrix attacks every model type on one dataset with every method.
// The surrogate's architecture is forced to the target's true type here;
// speculation accuracy has its own experiment (Table 6), and Table 7
// quantifies how little a wrong type costs.
//
// Model rows are independent — each draws every random input from
// streams seeded by its own offset — so they fan out across
// cfg.Workers; the matrix is identical at any worker count.
func RunMatrix(name string, models []ce.Type, cfg Config) (*MatrixResult, error) {
	cfg = cfg.WithDefaults()
	w, err := NewWorld(name, cfg)
	if err != nil {
		return nil, err
	}
	res := &MatrixResult{
		Dataset: name,
		Models:  models,
		World:   w,
		Cells:   make(map[ce.Type]map[core.Method]*MatrixCell),
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)

	rows := make([]map[core.Method]*MatrixCell, len(models))
	engine.PoolFor(cfg.Workers).Instrument(cfg.Telemetry.Registry()).ForEach(len(models), func(mi int) {
		typ := models[mi]
		cells := make(map[core.Method]*MatrixCell)
		rows[mi] = cells
		off := int64(mi + 1)
		// Row-private detector, workload generator, and RNG: the
		// detector's gradient buffers and the generators' streams are
		// stateful, so concurrent rows must not share them. The
		// detector trains from a fixed seed, so every row confronts an
		// identical one.
		det := w.NewDetector(0)
		rowRng := rand.New(rand.NewSource(cfg.Seed*rowSeedK + off))
		rowWGen := w.WGen.WithRng(rowRng)

		clean := w.NewBlackBox(typ, off)
		cells[core.Clean] = &MatrixCell{QErrors: clean.QErrors(qs, cards), BB: clean}

		sur := w.NewSurrogate(clean, typ, off)

		for _, m := range core.Methods() {
			target := w.NewBlackBox(typ, off) // identical twin of clean
			var pq []*query.Query
			var pc []float64
			if m == core.PACE {
				tr := w.TrainPACE(sur, det, off)
				pq, pc = tr.GeneratePoison(w.Context(), cfg.NumPoison)
			} else {
				pq, pc = core.CraftPoison(w.Context(), m, sur, rowWGen, w.GenCfg(), cfg.NumPoison, rowRng)
			}
			target.ExecuteWorkload(w.Context(), pq, pc)
			cells[m] = &MatrixCell{QErrors: target.QErrors(qs, cards), BB: target}
		}
	})
	for mi, typ := range models {
		res.Cells[typ] = rows[mi]
	}
	return res, nil
}

// PrintMean prints the dataset's mean-Q-error rows — one of Figures 6–9.
func (r *MatrixResult) PrintMean(out io.Writer) {
	section(out, fmt.Sprintf("Figure 6-9 (%s): mean test Q-error per CE model and method", r.Dataset))
	fmt.Fprintf(out, "%-10s", "method")
	for _, typ := range r.Models {
		fmt.Fprintf(out, " %12s", typ)
	}
	fmt.Fprintln(out)
	for _, m := range core.AllRows() {
		fmt.Fprintf(out, "%-10s", m)
		for _, typ := range r.Models {
			cell := r.Cells[typ][m]
			if cell == nil {
				fmt.Fprintf(out, " %12s", "-")
				continue
			}
			fmt.Fprintf(out, " %12.3g", metrics.Mean(cell.QErrors))
		}
		fmt.Fprintln(out)
	}
}

// PrintPercentiles prints the Table 3 layout (90th/95th/99th/Max) for the
// given model types.
func (r *MatrixResult) PrintPercentiles(out io.Writer, models []ce.Type) {
	section(out, fmt.Sprintf("Table 3 (%s): percentile test Q-error", r.Dataset))
	fmt.Fprintf(out, "%-10s %-10s %10s %10s %10s %10s\n",
		"model", "method", "90th", "95th", "99th", "max")
	for _, typ := range models {
		if r.Cells[typ] == nil {
			continue
		}
		for _, m := range core.AllRows() {
			cell := r.Cells[typ][m]
			if cell == nil {
				continue
			}
			s := metrics.Summarize(cell.QErrors)
			fmt.Fprintf(out, "%-10s %-10s %10.3g %10.3g %10.3g %10.3g\n",
				typ, m, s.P90, s.P95, s.P99, s.Max)
		}
	}
}

// PrintTail prints the Table 4 layout (95th/Max) for the given models.
func (r *MatrixResult) PrintTail(out io.Writer, models []ce.Type) {
	section(out, fmt.Sprintf("Table 4 (%s): tail test Q-error", r.Dataset))
	fmt.Fprintf(out, "%-10s %-10s %10s %10s\n", "model", "method", "95th", "max")
	for _, typ := range models {
		if r.Cells[typ] == nil {
			continue
		}
		for _, m := range core.AllRows() {
			cell := r.Cells[typ][m]
			if cell == nil {
				continue
			}
			s := metrics.Summarize(cell.QErrors)
			fmt.Fprintf(out, "%-10s %-10s %10.3g %10.3g\n", typ, m, s.P95, s.Max)
		}
	}
}

// PrintE2E plans and executes the dataset's multi-table join workload
// with every attacked model's estimates and prints the summed true plan
// cost — the Table 5 end-to-end latency experiment. Models are the 5
// neural types (the paper omits Linear here).
func (r *MatrixResult) PrintE2E(out io.Writer, models []ce.Type) {
	w := r.World
	opt := qopt.New(w.DS, w.Eng)

	// The paper's 20 multi-table join testing queries.
	gen := w.WGen
	var joins []*query.Query
	for attempts := 0; len(joins) < w.Cfg.E2EQueries && attempts < 200*w.Cfg.E2EQueries; attempts++ {
		var l []workload.Labeled
		if r.Dataset == "imdb" || r.Dataset == "stats" {
			l = gen.Templated(1)
		} else {
			l = gen.Random(1)
		}
		if l[0].Q.NumTables() >= 2 {
			joins = append(joins, l[0].Q)
		}
	}

	section(out, fmt.Sprintf("Table 5 (%s): E2E plan cost of %d multi-join queries (row-ops)", r.Dataset, len(joins)))
	fmt.Fprintf(out, "%-10s", "method")
	for _, typ := range models {
		fmt.Fprintf(out, " %12s", typ)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-10s", "(optimal)")
	optLat := opt.Latency(joins, opt.TrueEstimate())
	for range models {
		fmt.Fprintf(out, " %12.4g", optLat)
	}
	fmt.Fprintln(out)
	for _, m := range core.AllRows() {
		fmt.Fprintf(out, "%-10s", m)
		for _, typ := range models {
			cell := r.Cells[typ][m]
			if cell == nil || cell.BB == nil { // remote matrices carry no in-process model
				fmt.Fprintf(out, " %12s", "-")
				continue
			}
			lat := opt.Latency(joins, cell.BB.Estimate)
			fmt.Fprintf(out, " %12.4g", lat)
		}
		fmt.Fprintln(out)
	}
}

// RunQErrorTables runs the matrix on every dataset and prints Figures 6–9
// and Tables 3–5 in paper order. Dataset matrices are independent, so
// they run concurrently; each dataset's output is buffered and emitted in
// order, keeping the report deterministic.
func RunQErrorTables(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb", "tpch", "stats"}
	}
	table3Models := []ce.Type{ce.FCN, ce.FCNPool, ce.MSCN, ce.RNN}
	table4Models := []ce.Type{ce.LSTM, ce.Linear}
	e2eModels := []ce.Type{ce.FCN, ce.FCNPool, ce.MSCN, ce.RNN, ce.LSTM}

	type outcome struct {
		buf bytes.Buffer
		err error
	}
	outcomes := make([]outcome, len(datasets))
	var wg sync.WaitGroup
	for i, name := range datasets {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			o := &outcomes[i]
			res, err := RunMatrix(name, ce.Types(), cfg)
			if err != nil {
				o.err = err
				return
			}
			res.PrintMean(&o.buf)
			res.PrintPercentiles(&o.buf, table3Models)
			res.PrintTail(&o.buf, table4Models)
			if name != "dmv" { // the paper's Table 5 covers imdb/tpch/stats
				res.PrintE2E(&o.buf, e2eModels)
			}
		}(i, name)
	}
	wg.Wait()
	for i := range outcomes {
		if outcomes[i].err != nil {
			return outcomes[i].err
		}
		if _, err := out.Write(outcomes[i].buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}
