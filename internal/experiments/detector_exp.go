package experiments

import (
	"fmt"
	"io"
	"sort"

	"pace/internal/ce"
	"pace/internal/metrics"
	"pace/internal/workload"
)

// RunDetectorEffect reproduces Figure 13: on dmv, compare PACE with and
// without the anomaly detector, sweeping the reconstruction-error
// threshold ε, and report both attack effectiveness (mean Q-error) and
// normality (Jensen-Shannon divergence from the historical workload).
func RunDetectorEffect(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	hEnc := Encodings(w.History, w.DS)

	clean := w.NewBlackBox(ce.FCN, 1)

	attack := func(withDet bool, eps float64, off int64) (float64, float64) {
		sur := w.NewSurrogate(clean, ce.FCN, off)
		det := w.NewDetector(off)
		if !withDet {
			det = nil
		} else if eps > 0 {
			det.SetThreshold(eps)
		}
		tr := w.TrainPACE(sur, det, off)
		pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
		target := w.NewBlackBox(ce.FCN, 1)
		target.ExecuteWorkload(w.Context(), pq, pc)

		pEnc := make([][]float64, len(pq))
		for i, q := range pq {
			pEnc[i] = q.Encode(w.DS.Meta)
		}
		return metrics.Mean(target.QErrors(qs, cards)),
			metrics.JSDivergence(hEnc, pEnc, 10)
	}

	// Threshold sweep values: the history's reconstruction-error scale
	// anchors the paper's 5%–10% range.
	det0 := w.NewDetector(0)
	var errs []float64
	for _, v := range hEnc {
		errs = append(errs, det0.ReconError(v))
	}
	sort.Float64s(errs)
	p90 := errs[int(0.90*float64(len(errs)))]

	section(out, "Figure 13 (dmv, FCN): anomaly-detector effect — effectiveness vs normality")
	fmt.Fprintf(out, "%-28s %14s %14s\n", "setting", "mean q-error", "JS divergence")
	qe, div := attack(false, 0, 1)
	fmt.Fprintf(out, "%-28s %14.3g %14.4f\n", "without detector", qe, div)
	for i, mult := range []float64{1.0, 1.5, 2.0} {
		eps := p90 * mult
		qe, div := attack(true, eps, int64(10+i))
		fmt.Fprintf(out, "%-28s %14.3g %14.4f\n",
			fmt.Sprintf("with detector, eps=%.4f", eps), qe, div)
	}
	return nil
}
