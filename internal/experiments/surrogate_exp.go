package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/metrics"
	"pace/internal/surrogate"
	"pace/internal/workload"
)

// RunSpeculation reproduces Table 6: for every dataset and model type,
// train several black boxes on fresh random workloads and report how
// often model-type speculation identifies the architecture.
func RunSpeculation(out io.Writer, cfg Config, datasets []string) error {
	cfg = cfg.WithDefaults()
	if datasets == nil {
		datasets = []string{"dmv", "imdb", "tpch", "stats"}
	}
	section(out, fmt.Sprintf("Table 6: model-type speculation accuracy (%d black boxes per cell)", cfg.SpecBlackBoxes))
	fmt.Fprintf(out, "%-8s", "dataset")
	for _, typ := range ce.Types() {
		fmt.Fprintf(out, " %10s", typ)
	}
	fmt.Fprintln(out)

	specCfg := surrogate.SpeculationConfig{
		CandidateTrainQueries: cfg.TrainQueries / 2,
		ProbePerGroup:         6,
		HP:                    ce.HyperParams{Hidden: cfg.Hidden, Layers: cfg.Layers},
		Train:                 ce.TrainConfig{Epochs: cfg.Epochs / 2, Batch: 32},
	}
	for _, name := range datasets {
		w, err := NewWorld(name, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%-8s", name)
		for _, typ := range ce.Types() {
			hits := 0
			for k := 0; k < cfg.SpecBlackBoxes; k++ {
				bb := w.NewBlackBox(typ, int64(1000+100*int(typ)+k))
				rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(k)))
				res, err := surrogate.Speculate(w.Context(), bb, w.WGen, specCfg, rng)
				if err != nil {
					return err
				}
				if res.Type == typ {
					hits++
				}
			}
			fmt.Fprintf(out, " %9.0f%%", 100*float64(hits)/float64(cfg.SpecBlackBoxes))
		}
		fmt.Fprintln(out)
	}
	return nil
}

// RunWrongType reproduces Table 7: on dmv, attack each black-box type
// with every (possibly wrong) surrogate type and report the decrease in
// attack effectiveness relative to the matched-type attack. types selects
// the model subset (nil = all six).
func RunWrongType(out io.Writer, cfg Config, types []ce.Type) error {
	cfg = cfg.WithDefaults()
	if types == nil {
		types = ce.Types()
	}
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	// effect[bbType][surType] = mean post-attack Q-error.
	effect := make(map[ce.Type]map[ce.Type]float64)
	for bi, bbType := range types {
		effect[bbType] = make(map[ce.Type]float64)
		clean := w.NewBlackBox(bbType, int64(bi+1))
		for si, surType := range types {
			sur := w.NewSurrogate(clean, surType, int64(10*bi+si+1))
			tr := w.TrainPACE(sur, det, int64(100*bi+si))
			pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
			target := w.NewBlackBox(bbType, int64(bi+1))
			target.ExecuteWorkload(w.Context(), pq, pc)
			effect[bbType][surType] = metrics.GeoMean(target.QErrors(qs, cards))
		}
	}

	section(out, "Table 7 (dmv): attack-effectiveness decrease under a wrong surrogate type")
	fmt.Fprintf(out, "%-10s", "bb\\sur")
	for _, typ := range types {
		fmt.Fprintf(out, " %10s", typ)
	}
	fmt.Fprintln(out)
	for _, bbType := range types {
		fmt.Fprintf(out, "%-10s", bbType)
		matched := effect[bbType][bbType]
		for _, surType := range types {
			dec := 0.0
			if matched > 0 {
				dec = (matched - effect[bbType][surType]) / matched * 100
			}
			if dec < 0 {
				dec = 0 // a mismatched surrogate occasionally does better
			}
			fmt.Fprintf(out, " %9.1f%%", dec)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// RunTrainingStrategy reproduces Figure 10: on dmv, compare the attack
// effectiveness of PACE with the combined Eq. 7 surrogate loss against
// direct imitation (Eq. 6), per model type.
func RunTrainingStrategy(out io.Writer, cfg Config, models []ce.Type) error {
	cfg = cfg.WithDefaults()
	if models == nil {
		models = ce.Types()
	}
	w, err := NewWorld("dmv", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	section(out, "Figure 10 (dmv): combined surrogate loss (Eq. 7) vs direct imitation (Eq. 6)")
	fmt.Fprintf(out, "%-10s %14s %14s\n", "model", "combined", "direct")
	for mi, typ := range models {
		clean := w.NewBlackBox(typ, int64(mi+1))
		attackWith := func(strategy surrogate.Strategy, off int64) float64 {
			rng := rand.New(rand.NewSource(cfg.Seed*104729 + off))
			sur, err := surrogate.Train(w.Context(), clean, typ, w.WGen, surrogate.TrainConfig{
				Queries:  cfg.TrainQueries,
				Strategy: strategy,
				HP:       w.HP(),
				Train:    w.TrainCfg(),
			}, rng)
			if err != nil {
				panic("experiments: surrogate training failed: " + err.Error())
			}
			tr := w.TrainPACE(sur, det, off)
			pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
			target := w.NewBlackBox(typ, int64(mi+1))
			target.ExecuteWorkload(w.Context(), pq, pc)
			return metrics.Mean(target.QErrors(qs, cards))
		}
		comb := attackWith(surrogate.Combined, int64(10*mi+1))
		direct := attackWith(surrogate.DirectImitation, int64(10*mi+2))
		fmt.Fprintf(out, "%-10s %14.3g %14.3g\n", typ, comb, direct)
	}
	return nil
}

// RunHyperMismatch reproduces Figure 11: attack effectiveness when the
// black box's layer count or hidden width differs from the surrogate's
// defaults (imdb, FCN). Values are normalized by the matched setting.
func RunHyperMismatch(out io.Writer, cfg Config) error {
	cfg = cfg.WithDefaults()
	w, err := NewWorld("imdb", cfg)
	if err != nil {
		return err
	}
	qs := workload.Queries(w.Test)
	cards := Cards(w.Test)
	det := w.NewDetector(0)

	// degradation runs one attack against a target with hyperparameters
	// hp — while the SURROGATE keeps the attacker's defaults — and
	// returns the geometric-mean Q-error degradation factor
	// (attacked/clean). Ratios of degradation factors between the
	// mismatched and the matched setting, at the same seed offset,
	// cancel both target-quality and attack-seed variance.
	degradation := func(hp ce.HyperParams, off int64) float64 {
		clean := w.NewBlackBoxHP(ce.FCN, hp, off)
		cleanErr := metrics.GeoMean(clean.QErrors(qs, cards))
		sur := w.NewSurrogate(clean, ce.FCN, off) // surrogate keeps defaults
		tr := w.TrainPACE(sur, det, off)
		pq, pc := tr.GeneratePoison(w.Context(), cfg.NumPoison)
		target := w.NewBlackBoxHP(ce.FCN, hp, off)
		target.ExecuteWorkload(w.Context(), pq, pc)
		return metrics.GeoMean(target.QErrors(qs, cards)) / cleanErr
	}

	section(out, "Figure 11 (imdb, FCN): attack effectiveness under hyperparameter mismatch")
	fmt.Fprintf(out, "(1.0 = matched hyperparameters; degradation-factor ratio, same-seed pairs)\n")

	fmt.Fprintf(out, "%-18s", "bb layers:")
	for i, layers := range []int{1, 3, 4} {
		off := int64(10 + i)
		matched := degradation(w.HP(), off)
		hp := w.HP()
		hp.Layers = layers
		fmt.Fprintf(out, " L=%d:%6.2f", layers, safeRatio(degradation(hp, off), matched))
	}
	fmt.Fprintln(out)

	fmt.Fprintf(out, "%-18s", "bb hidden scale:")
	for i, scale := range []float64{0.5, 0.75, 1.5, 2} {
		off := int64(100 + i)
		matched := degradation(w.HP(), off)
		hp := w.HP()
		hp.Hidden = int(float64(hp.Hidden) * scale)
		fmt.Fprintf(out, " s=%.2g:%6.2f", scale, safeRatio(degradation(hp, off), matched))
	}
	fmt.Fprintln(out)
	return nil
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
