package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pace/internal/dataset"
	"pace/internal/query"
)

// tinySpec builds a 4-table chain-plus-branch schema small enough for the
// brute-force oracle: a→b→c and d→b.
func tinySpec() dataset.Spec {
	tab := func(name string, rows int) dataset.TableSpec {
		return dataset.TableSpec{Name: name, Rows: rows, Cols: []dataset.ColumnSpec{
			{Name: "x", Dist: dataset.Uniform},
			{Name: "y", Dist: dataset.Zipf},
		}}
	}
	return dataset.Spec{
		Name:   "tiny",
		Tables: []dataset.TableSpec{tab("a", 12), tab("b", 8), tab("c", 6), tab("d", 10)},
		Edges: []dataset.EdgeSpec{
			{Child: "a", Parent: "b", ZipfSkew: 1},
			{Child: "b", Parent: "c"},
			{Child: "d", Parent: "b", ZipfSkew: 0.5},
		},
	}
}

func tinyEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	ds, err := dataset.Materialize(tinySpec(), dataset.Config{Scale: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return New(ds)
}

func randomQuery(m *query.Meta, adj func(i, j int) bool, rng *rand.Rand) *query.Query {
	for {
		q := query.New(m)
		for t := range q.Tables {
			q.Tables[t] = rng.Float64() < 0.6
		}
		if !q.Connected(adj) {
			continue
		}
		for a := range q.Bounds {
			if rng.Float64() < 0.5 {
				lo := rng.Float64()
				hi := lo + rng.Float64()*(1-lo)
				q.Bounds[a] = [2]float64{lo, hi}
			}
		}
		q.Normalize(m)
		return q
	}
}

func TestCardinalityMatchesBruteForce(t *testing.T) {
	e := tinyEngine(t, 1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		q := randomQuery(e.Dataset().Meta, e.Dataset().Joinable, rng)
		fast, err := e.Cardinality(q)
		if err != nil {
			t.Fatalf("Cardinality: %v", err)
		}
		slow, err := e.BruteForceCardinality(q)
		if err != nil {
			t.Fatalf("BruteForce: %v", err)
		}
		if fast != slow {
			t.Fatalf("query %d: fast=%g brute=%g\nSQL: %s", i, fast, slow,
				q.SQL(e.Dataset().Meta))
		}
	}
}

func TestSingleTableCount(t *testing.T) {
	e := tinyEngine(t, 2)
	m := e.Dataset().Meta
	q := query.New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0.25, 0.75}

	card, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	// Manual count over the column.
	want := 0
	for _, v := range e.Dataset().Tables[0].Cols[0] {
		if v >= 0.25 && v <= 0.75 {
			want++
		}
	}
	if card != float64(want) {
		t.Errorf("cardinality = %g, want %d", card, want)
	}
	if got := e.TableCount(0, q); got != want {
		t.Errorf("TableCount = %d, want %d", got, want)
	}
}

func TestOpenQueryIsCrossProductFree(t *testing.T) {
	// Joining a→b with open bounds must count the child rows exactly
	// once each (every child row references exactly one parent).
	e := tinyEngine(t, 3)
	m := e.Dataset().Meta
	q := query.New(m)
	q.Tables[0], q.Tables[1] = true, true
	card, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	if card != float64(e.Dataset().Tables[0].Rows) {
		t.Errorf("open a⋈b = %g, want %d", card, e.Dataset().Tables[0].Rows)
	}
}

func TestDisconnectedRejected(t *testing.T) {
	e := tinyEngine(t, 4)
	m := e.Dataset().Meta
	q := query.New(m)
	q.Tables[0], q.Tables[2] = true, true // a and c without b
	if _, err := e.Cardinality(q); err != ErrNotConnected {
		t.Errorf("err = %v, want ErrNotConnected", err)
	}
	empty := query.New(m)
	if _, err := e.Cardinality(empty); err != ErrNotConnected {
		t.Errorf("empty query err = %v, want ErrNotConnected", err)
	}
}

func TestWrongSlotCount(t *testing.T) {
	e := tinyEngine(t, 5)
	q := &query.Query{Tables: []bool{true}, Bounds: [][2]float64{{0, 1}}}
	if _, err := e.Cardinality(q); err == nil {
		t.Error("expected error for mismatched table slots")
	}
}

func TestSelectMask(t *testing.T) {
	e := tinyEngine(t, 6)
	m := e.Dataset().Meta
	q := query.New(m)
	q.Tables[1] = true
	lo, _ := m.Attrs(1)
	q.Bounds[lo] = [2]float64{0, 0.5}
	mask := e.SelectMask(1, q)
	col := e.Dataset().Tables[1].Cols[0]
	for r, ok := range mask {
		want := col[r] <= 0.5
		if ok != want {
			t.Fatalf("mask[%d] = %v, want %v (value %g)", r, ok, want, col[r])
		}
	}
}

func TestEmptyPredicateRangeGivesZero(t *testing.T) {
	e := tinyEngine(t, 7)
	m := e.Dataset().Meta
	q := query.New(m)
	q.Tables[0] = true
	lo, _ := m.Attrs(0)
	// Range [0.9999, 0.99991] will almost surely be empty over 12 rows;
	// verify against the brute count either way.
	q.Bounds[lo] = [2]float64{0.9999, 0.99991}
	card, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := e.BruteForceCardinality(q)
	if card != slow {
		t.Errorf("card = %g, brute = %g", card, slow)
	}
}

// Property: cardinality is monotone — widening any predicate never
// decreases the count.
func TestCardinalityMonotoneProperty(t *testing.T) {
	e := tinyEngine(t, 8)
	m := e.Dataset().Meta
	rng := rand.New(rand.NewSource(1234))
	f := func() bool {
		q := randomQuery(m, e.Dataset().Joinable, rng)
		narrow, err := e.Cardinality(q)
		if err != nil {
			return false
		}
		wide := q.Clone()
		for a := range wide.Bounds {
			b := wide.Bounds[a]
			wide.Bounds[a] = [2]float64{b[0] * 0.5, b[1] + (1-b[1])*0.5}
		}
		wide.Normalize(m)
		w, err := e.Cardinality(wide)
		if err != nil {
			return false
		}
		return w >= narrow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: join with a fully open FK-parent never changes the count.
func TestOpenParentJoinInvariant(t *testing.T) {
	e := tinyEngine(t, 9)
	m := e.Dataset().Meta
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		// Query on a alone vs a⋈b with b unconstrained and open bounds.
		q := query.New(m)
		q.Tables[0] = true
		lo, hi := m.Attrs(0)
		for a := lo; a < hi; a++ {
			if rng.Float64() < 0.7 {
				l := rng.Float64()
				q.Bounds[a] = [2]float64{l, l + rng.Float64()*(1-l)}
			}
		}
		q.Normalize(m)
		alone, err := e.Cardinality(q)
		if err != nil {
			t.Fatal(err)
		}
		joined := q.Clone()
		joined.Tables[1] = true
		jc, err := e.Cardinality(joined)
		if err != nil {
			t.Fatal(err)
		}
		if alone != jc {
			t.Fatalf("iteration %d: alone=%g joined=%g", i, alone, jc)
		}
	}
}

func TestLargeDatasetCardinalitySmoke(t *testing.T) {
	ds, err := dataset.Build("tpch", dataset.Config{Scale: 0.2, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds)
	m := ds.Meta
	q := query.New(m)
	q.Tables[ds.TableIndex("lineitem")] = true
	q.Tables[ds.TableIndex("orders")] = true
	q.Tables[ds.TableIndex("customer")] = true
	card, err := e.Cardinality(q)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(ds.Tables[ds.TableIndex("lineitem")].Rows)
	if card != want {
		t.Errorf("open lineitem⋈orders⋈customer = %g, want %g", card, want)
	}
}
