package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"pace/internal/query"
)

// countingLabeler fabricates a distinct label per key and counts how
// often the inner oracle is actually consulted.
type countingLabeler struct {
	mu    sync.Mutex
	calls int
	fail  error
}

func (c *countingLabeler) label(ctx context.Context, q *query.Query) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.fail != nil {
		return 0, c.fail
	}
	return q.Bounds[0][1] * 1000, nil
}

// testQuery builds a single-table query whose first bound encodes i, so
// every i has a distinct canonical key.
func testQuery(t *testing.T, i int) *query.Query {
	t.Helper()
	m := &query.Meta{
		TableNames: []string{"t"},
		AttrNames:  []string{"x"},
		AttrOffset: []int{0, 1},
	}
	q := query.New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0, 1 / float64(i+2)}
	return q
}

func TestOracleCacheHitReturnsOracleLabel(t *testing.T) {
	inner := &countingLabeler{}
	c := NewOracleCache(inner.label, 8, nil)
	q := testQuery(t, 0)
	ctx := context.Background()

	first, err := c.Label(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Label(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("hit returned %v, oracle said %v", second, first)
	}
	if inner.calls != 1 {
		t.Errorf("inner oracle consulted %d times, want 1", inner.calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Size != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate %v, want 0.5", got)
	}
}

func TestOracleCacheLRUEviction(t *testing.T) {
	inner := &countingLabeler{}
	c := NewOracleCache(inner.label, 2, nil)
	ctx := context.Background()
	q0, q1, q2 := testQuery(t, 0), testQuery(t, 1), testQuery(t, 2)

	c.Label(ctx, q0)
	c.Label(ctx, q1)
	c.Label(ctx, q0) // q0 becomes MRU; q1 is now LRU
	c.Label(ctx, q2) // evicts q1
	if s := c.Stats(); s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("stats = %+v", s)
	}

	before := inner.calls
	c.Label(ctx, q0)
	if inner.calls != before {
		t.Error("q0 should still be cached")
	}
	c.Label(ctx, q1)
	if inner.calls != before+1 {
		t.Error("q1 should have been evicted and recomputed")
	}
}

func TestOracleCacheErrorCaching(t *testing.T) {
	permanent := errors.New("invalid")
	transient := errors.New("timeout")
	isPermanent := func(e error) bool { return errors.Is(e, permanent) }
	ctx := context.Background()

	// Transient errors must never be cached: the retried query succeeds.
	inner := &countingLabeler{fail: transient}
	c := NewOracleCache(inner.label, 8, isPermanent)
	q := testQuery(t, 0)
	if _, err := c.Label(ctx, q); !errors.Is(err, transient) {
		t.Fatalf("err = %v", err)
	}
	inner.fail = nil
	if _, err := c.Label(ctx, q); err != nil {
		t.Errorf("retry after transient failure hit a cached error: %v", err)
	}

	// Permanent errors are settled outcomes: cached, inner not re-asked.
	inner2 := &countingLabeler{fail: permanent}
	c2 := NewOracleCache(inner2.label, 8, isPermanent)
	c2.Label(ctx, q)
	c2.Label(ctx, q)
	if inner2.calls != 1 {
		t.Errorf("permanent error consulted inner %d times, want 1", inner2.calls)
	}
}

func TestOracleCacheDefaultCapacity(t *testing.T) {
	c := NewOracleCache((&countingLabeler{}).label, 0, nil)
	if c.cap != DefaultOracleCacheSize {
		t.Errorf("cap = %d, want %d", c.cap, DefaultOracleCacheSize)
	}
}

func TestOracleCacheConcurrentAccess(t *testing.T) {
	inner := &countingLabeler{}
	c := NewOracleCache(inner.label, 16, nil)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := testQuery(t, i%20)
				if _, err := c.Label(ctx, q); err != nil {
					panic(fmt.Sprintf("label: %v", err))
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != 400 {
		t.Errorf("lookups = %d, want 400", s.Hits+s.Misses)
	}
	if s.Size > 16 {
		t.Errorf("size %d exceeds capacity", s.Size)
	}
}
