package engine

import (
	"sync/atomic"
	"testing"
)

func TestPoolForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		p := NewPool(workers)
		const n = 57
		hits := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestPoolNilAndZeroRunSerially(t *testing.T) {
	var nilPool *Pool
	if nilPool.Workers() != 1 {
		t.Errorf("nil pool workers = %d, want 1", nilPool.Workers())
	}
	var zero Pool
	if zero.Workers() != 1 {
		t.Errorf("zero pool workers = %d, want 1", zero.Workers())
	}
	// Serial execution must preserve index order.
	var order []int
	nilPool.ForEach(5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestPoolForEachEmptyAndSmall(t *testing.T) {
	p := NewPool(8)
	ran := false
	p.ForEach(0, func(i int) { ran = true })
	if ran {
		t.Error("ForEach(0) ran the body")
	}
	count := int32(0)
	p.ForEach(1, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 1 {
		t.Errorf("ForEach(1) ran %d times", count)
	}
}

func TestPoolForWorkersKnob(t *testing.T) {
	if PoolFor(0) != nil {
		t.Error("PoolFor(0) should be nil (serial)")
	}
	if got := PoolFor(3).Workers(); got != 3 {
		t.Errorf("PoolFor(3).Workers() = %d", got)
	}
	if got := PoolFor(-1).Workers(); got < 1 {
		t.Errorf("PoolFor(-1).Workers() = %d", got)
	}
}

func TestSplitRNGIsDeterministicAndIndependent(t *testing.T) {
	a1 := SplitRNG(42, 7)
	a2 := SplitRNG(42, 7)
	for i := 0; i < 10; i++ {
		if a1.Int63() != a2.Int63() {
			t.Fatal("same (seed, index) must give the same stream")
		}
	}
	b := SplitRNG(42, 8)
	c := SplitRNG(43, 7)
	same := 0
	a := SplitRNG(42, 7)
	for i := 0; i < 10; i++ {
		x := a.Int63()
		if x == b.Int63() {
			same++
		}
		if x == c.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("neighboring streams collided %d times", same)
	}
}
