// Package engine is the exact-cardinality oracle of the reproduction: the
// stand-in for the paper's PostgreSQL COUNT(*) executor. Given a synthetic
// dataset whose PK-FK join graph is a tree, it computes the exact result
// cardinality of any connected SPJ query in time linear in the total row
// count of the joined tables, using a bottom-up join-tree dynamic program.
//
// This is the capability the PACE threat model grants the attacker
// ("attackers are able to get the true labels of crafted queries by
// executing COUNT(*) SQLs") and the labeling source for CE model training.
package engine

import (
	"errors"
	"fmt"

	"pace/internal/dataset"
	"pace/internal/query"
)

// Engine answers exact COUNT(*) queries over a dataset.
type Engine struct {
	ds *dataset.Dataset
	// edgesAt[t] lists the indexes into ds.Edges incident to table t.
	edgesAt [][]int
}

// ErrNotConnected is returned for queries whose table set is empty or does
// not form a connected subgraph of the join tree.
var ErrNotConnected = errors.New("engine: query tables are not a connected join")

// New builds an engine over ds.
func New(ds *dataset.Dataset) *Engine {
	e := &Engine{ds: ds, edgesAt: make([][]int, len(ds.Tables))}
	for i, edge := range ds.Edges {
		e.edgesAt[edge.Child] = append(e.edgesAt[edge.Child], i)
		e.edgesAt[edge.Parent] = append(e.edgesAt[edge.Parent], i)
	}
	return e
}

// Dataset returns the engine's underlying dataset.
func (e *Engine) Dataset() *dataset.Dataset { return e.ds }

// SelectMask evaluates the query's range predicates on table t and returns
// one boolean per row.
func (e *Engine) SelectMask(t int, q *query.Query) []bool {
	tab := e.ds.Tables[t]
	lo, hi := e.ds.Meta.Attrs(t)
	mask := make([]bool, tab.Rows)
	for r := range mask {
		mask[r] = true
	}
	for a := lo; a < hi; a++ {
		b := q.Bounds[a]
		if b[0] <= 0 && b[1] >= 1 {
			continue
		}
		col := tab.Cols[a-lo]
		for r := 0; r < tab.Rows; r++ {
			if mask[r] && (col[r] < b[0] || col[r] > b[1]) {
				mask[r] = false
			}
		}
	}
	return mask
}

// TableCount returns the number of rows of table t passing the query's
// predicates on t.
func (e *Engine) TableCount(t int, q *query.Query) int {
	n := 0
	for _, ok := range e.SelectMask(t, q) {
		if ok {
			n++
		}
	}
	return n
}

// Cardinality computes the exact COUNT(*) of the SPJ query. The query's
// tables must form a non-empty connected subtree of the dataset's join
// graph; otherwise ErrNotConnected is returned.
func (e *Engine) Cardinality(q *query.Query) (float64, error) {
	if len(q.Tables) != len(e.ds.Tables) {
		return 0, fmt.Errorf("engine: query has %d table slots, dataset has %d",
			len(q.Tables), len(e.ds.Tables))
	}
	var selected []int
	for t, in := range q.Tables {
		if in {
			selected = append(selected, t)
		}
	}
	if len(selected) == 0 {
		return 0, ErrNotConnected
	}
	if !q.Connected(e.ds.Joinable) {
		return 0, ErrNotConnected
	}
	root := selected[0]
	f, err := e.subtreeCounts(root, -1, q)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range f {
		total += v
	}
	return total, nil
}

// subtreeCounts returns, for every row of table t, the number of join
// combinations over the selected subtree rooted at t (entered from edge
// fromEdge, -1 at the root) that include the row and satisfy every
// predicate.
func (e *Engine) subtreeCounts(t, fromEdge int, q *query.Query) ([]float64, error) {
	tab := e.ds.Tables[t]
	mask := e.SelectMask(t, q)
	f := make([]float64, tab.Rows)
	for r, ok := range mask {
		if ok {
			f[r] = 1
		}
	}
	for _, ei := range e.edgesAt[t] {
		if ei == fromEdge {
			continue
		}
		edge := e.ds.Edges[ei]
		other := edge.Child
		if other == t {
			other = edge.Parent
		}
		if !q.Tables[other] {
			continue
		}
		sub, err := e.subtreeCounts(other, ei, q)
		if err != nil {
			return nil, err
		}
		if edge.Parent == t {
			// other is an FK child of t: each row of t matches the
			// sum of its referencing child rows' counts.
			acc := make([]float64, tab.Rows)
			for cr, pr := range edge.Refs {
				acc[pr] += sub[cr]
			}
			for r := range f {
				f[r] *= acc[r]
			}
		} else {
			// other is the FK parent of t: each row of t matches
			// exactly the count of the single row it references.
			for r := range f {
				f[r] *= sub[edge.Refs[r]]
			}
		}
	}
	return f, nil
}

// BruteForceCardinality computes the same count by explicit backtracking
// over row assignments. It is exponential and exists only as a test oracle
// for small datasets.
func (e *Engine) BruteForceCardinality(q *query.Query) (float64, error) {
	var selected []int
	for t, in := range q.Tables {
		if in {
			selected = append(selected, t)
		}
	}
	if len(selected) == 0 || !q.Connected(e.ds.Joinable) {
		return 0, ErrNotConnected
	}
	masks := make(map[int][]bool, len(selected))
	for _, t := range selected {
		masks[t] = e.SelectMask(t, q)
	}
	assign := make(map[int]int, len(selected))
	var count float64
	var rec func(i int)
	rec = func(i int) {
		if i == len(selected) {
			count++
			return
		}
		t := selected[i]
		for r := 0; r < e.ds.Tables[t].Rows; r++ {
			if !masks[t][r] {
				continue
			}
			assign[t] = r
			if e.consistent(assign, t, q) {
				rec(i + 1)
			}
			delete(assign, t)
		}
	}
	rec(0)
	return count, nil
}

// consistent checks the FK constraints between the newly assigned table t
// and all previously assigned tables.
func (e *Engine) consistent(assign map[int]int, t int, q *query.Query) bool {
	for _, edge := range e.ds.Edges {
		if !q.Tables[edge.Child] || !q.Tables[edge.Parent] {
			continue
		}
		cr, cok := assign[edge.Child]
		pr, pok := assign[edge.Parent]
		if cok && pok && (edge.Child == t || edge.Parent == t) {
			if edge.Refs[cr] != pr {
				return false
			}
		}
	}
	return true
}
