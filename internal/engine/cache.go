package engine

import (
	"container/list"
	"context"
	"sync"

	"pace/internal/obs"
	"pace/internal/query"
)

// Labeler is the COUNT(*) oracle shape the cache memoizes. It matches
// core.Oracle without importing it (core sits above engine).
type Labeler func(ctx context.Context, q *query.Query) (float64, error)

// CacheStats is a snapshot of an OracleCache's traffic counters.
type CacheStats struct {
	// Hits is the number of lookups answered from memory; Misses the
	// number that had to consult the inner oracle.
	Hits, Misses int64
	// Evictions counts entries discarded to respect the capacity.
	Evictions int64
	// Size is the current number of cached labels.
	Size int
}

// HitRate is the fraction of lookups served from memory.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// OracleCache memoizes COUNT(*) labels by canonical query key with LRU
// eviction. Generator training labels the same regions over and over —
// outer loops revisit the generator's mode, objective evaluation re-draws
// a fixed noise batch every loop, and a resumed checkpoint replays
// queries the killed run already paid for — so repeated labels are pure
// waste. The cache stores settled outcomes only: a successful label, or
// a permanent rejection (the error classified permanent by the
// configured classifier). Transient failures are never cached, so a
// retried query can still succeed later.
//
// Safe for concurrent use. Concurrent misses on the same key may each
// consult the inner oracle (last write wins); with a deterministic
// oracle they compute the same label, so correctness is unaffected.
type OracleCache struct {
	inner     Labeler
	permanent func(error) bool

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	stats   CacheStats

	// Registry handles bound by Instrument; nil-safe no-ops otherwise.
	// CacheStats reads from these when bound, so the registry is the
	// single bookkeeping path for an instrumented cache.
	mHits, mMisses, mEvictions *obs.Counter
	mSize                      *obs.Gauge
}

type cacheEntry struct {
	key  string
	card float64
	err  error
}

// DefaultOracleCacheSize is the label capacity used when NewOracleCache
// is given a non-positive capacity. At ~100 bytes per entry it bounds
// the cache around a few MB — far smaller than the training state.
const DefaultOracleCacheSize = 1 << 16

// NewOracleCache wraps inner with a memoizing LRU of the given capacity
// (<= 0 means DefaultOracleCacheSize). permanent classifies errors worth
// caching (the query itself is bad, retrying is pointless); nil caches
// no errors.
func NewOracleCache(inner Labeler, capacity int, permanent func(error) bool) *OracleCache {
	if capacity <= 0 {
		capacity = DefaultOracleCacheSize
	}
	return &OracleCache{
		inner:     inner,
		permanent: permanent,
		cap:       capacity,
		entries:   make(map[string]*list.Element),
		order:     list.New(),
	}
}

// Instrument binds hit/miss/eviction counters and a size gauge to reg
// (`pace_oracle_cache_*`) and returns the cache. Nil cache or registry
// is a no-op.
func (c *OracleCache) Instrument(reg *obs.Registry) *OracleCache {
	if c == nil || reg == nil {
		return c
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mHits = reg.Counter("pace_oracle_cache_hits_total")
	c.mMisses = reg.Counter("pace_oracle_cache_misses_total")
	c.mEvictions = reg.Counter("pace_oracle_cache_evictions_total")
	c.mSize = reg.Gauge("pace_oracle_cache_size")
	return c
}

// Label answers the query from memory when possible, consulting the
// inner oracle (and remembering its settled outcomes) otherwise.
func (c *OracleCache) Label(ctx context.Context, q *query.Query) (float64, error) {
	key := q.Key()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.stats.Hits++
		c.mHits.Inc()
		c.mu.Unlock()
		return e.card, e.err
	}
	c.stats.Misses++
	c.mMisses.Inc()
	c.mu.Unlock()

	card, err := c.inner(ctx, q)
	if err == nil || (c.permanent != nil && c.permanent(err)) {
		c.store(key, card, err)
	}
	return card, err
}

func (c *OracleCache) store(key string, card float64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*cacheEntry).card = card
		el.Value.(*cacheEntry).err = err
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, card: card, err: err})
	for len(c.entries) > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
		c.stats.Evictions++
		c.mEvictions.Inc()
	}
	c.mSize.Set(int64(len(c.entries)))
}

// Stats snapshots the cache counters.
func (c *OracleCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.entries)
	return s
}
