// Worker pool for the attack pipeline's fan-out points. The paper's
// cost analysis (and the CardBench observation it echoes) is that true-
// cardinality labeling dominates end-to-end cost for query-driven CE:
// every COUNT(*) is an independent engine scan — or, in deployment, an
// independent remote round trip — so the oracle path parallelizes
// embarrassingly. The same pool also fans out speculation's candidate
// trainings and the experiment matrix.
//
// Determinism contract: ForEach runs fn(i) for every index exactly once
// and each fn writes only to its own index's result slot, so the output
// of a fan-out is a pure function of its inputs — identical at any
// worker count. Callers that need randomness inside fn must derive a
// private stream per index (see SplitRNG), never share one *rand.Rand.
package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"pace/internal/obs"
)

// Pool is a bounded worker pool. The zero value and nil are both usable
// and run everything on the calling goroutine (one worker).
type Pool struct {
	workers int

	// Telemetry handles, bound by Instrument; all nil-safe no-ops when
	// the pool is uninstrumented.
	tasks       *obs.Counter
	queueDepth  *obs.Gauge
	workerTasks []*obs.Counter
}

// NewPool builds a pool with the given worker bound. workers <= 0 means
// GOMAXPROCS (all available cores).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// PoolFor maps a user-facing workers knob to a pool: 0 → nil (serial),
// negative → all cores, positive → that many workers.
func PoolFor(workers int) *Pool {
	if workers == 0 {
		return nil
	}
	if workers < 0 {
		return NewPool(0)
	}
	return NewPool(workers)
}

// Workers reports the pool's worker bound (1 for a nil or zero pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Instrument binds the pool's telemetry to reg and returns the pool:
// a queue-depth gauge (`pace_pool_queue_depth`, tasks not yet finished in
// the current fan-out), a total task counter, and one per-worker task
// counter (`pace_pool_worker_tasks_total{worker="k"}`). Which worker runs
// which task is a scheduling decision, so the per-worker split — unlike
// everything else the pipeline measures — is NOT deterministic across
// runs; it exists to spot skew, not to be asserted on. Nil pool or nil
// registry is a no-op.
func (p *Pool) Instrument(reg *obs.Registry) *Pool {
	if p == nil || reg == nil {
		return p
	}
	p.tasks = reg.Counter("pace_pool_tasks_total")
	p.queueDepth = reg.Gauge("pace_pool_queue_depth")
	reg.Gauge("pace_pool_workers").Set(int64(p.Workers()))
	p.workerTasks = make([]*obs.Counter, p.Workers())
	for k := range p.workerTasks {
		p.workerTasks[k] = reg.Counter(fmt.Sprintf(`pace_pool_worker_tasks_total{worker="%d"}`, k))
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n), fanning out across the
// pool's workers. It returns when every call has finished. Work is
// handed out by an atomic cursor, so goroutine scheduling decides which
// worker runs which index — fn must therefore depend only on i, and
// write only to slot i of any shared output.
func (p *Pool) ForEach(n int, fn func(i int)) {
	w := p.Workers()
	if w > n {
		w = n
	}
	var tasks *obs.Counter
	var depth *obs.Gauge
	var perWorker []*obs.Counter
	if p != nil {
		tasks, depth, perWorker = p.tasks, p.queueDepth, p.workerTasks
	}
	depth.Set(int64(n))
	defer depth.Set(0)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
			tasks.Inc()
			if perWorker != nil {
				perWorker[0].Inc()
			}
			depth.Add(-1)
		}
		return
	}
	var cursor atomic.Int64
	cursor.Store(-1)
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n {
					return
				}
				fn(i)
				tasks.Inc()
				if perWorker != nil {
					perWorker[k].Inc()
				}
				depth.Add(-1)
			}
		}(k)
	}
	wg.Wait()
}

// SplitRNG derives an independent RNG stream from (seed, index) with a
// splitmix64-style finalizer. Fan-out callers give each task index its
// own stream, so draws are identical no matter which worker runs the
// task or in what order tasks complete.
func SplitRNG(seed int64, index int64) *rand.Rand {
	x := uint64(seed) + uint64(index+1)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return rand.New(rand.NewSource(int64(x & 0x7FFFFFFFFFFFFFFF)))
}
