package resilience

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestDoSucceedsAfterTransients(t *testing.T) {
	calls := 0
	attempts, err := fastPolicy().Do(context.Background(), nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Errorf("attempts=%d calls=%d err=%v, want 3/3/nil", attempts, calls, err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	attempts, err := fastPolicy().Do(context.Background(), rand.New(rand.NewSource(1)),
		func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, errBoom) || attempts != 3 || calls != 3 {
		t.Errorf("attempts=%d calls=%d err=%v, want 3/3/boom", attempts, calls, err)
	}
}

func TestDoNonRetryableShortCircuits(t *testing.T) {
	p := fastPolicy()
	p.Retryable = func(error) bool { return false }
	calls := 0
	attempts, err := p.Do(context.Background(), nil, func(context.Context) error { calls++; return errBoom })
	if !errors.Is(err, errBoom) || attempts != 1 || calls != 1 {
		t.Errorf("attempts=%d calls=%d err=%v, want 1/1/boom", attempts, calls, err)
	}
}

func TestDoNeverRetriesContextErrors(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	attempts, err := fastPolicy().Do(ctx, nil, func(context.Context) error {
		calls++
		cancel()
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || attempts != 1 || calls != 1 {
		t.Errorf("attempts=%d calls=%d err=%v, want 1/1/canceled", attempts, calls, err)
	}
}

func TestDoCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts, err := fastPolicy().Do(ctx, nil, func(context.Context) error {
		t.Fatal("op ran under a done context")
		return nil
	})
	if !errors.Is(err, context.Canceled) || attempts != 0 {
		t.Errorf("attempts=%d err=%v, want 0/canceled", attempts, err)
	}
}

// hintErr carries a server backoff hint, mirroring remote.OverloadError
// without importing it (the discovery is structural via errors.As).
type hintErr struct{ hint time.Duration }

func (e *hintErr) Error() string                 { return "shed with hint" }
func (e *hintErr) RetryAfterHint() time.Duration { return e.hint }

func TestDoHonorsRetryAfterHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	hint := 60 * time.Millisecond
	start := time.Now()
	calls := 0
	attempts, err := p.Do(context.Background(), nil, func(context.Context) error {
		calls++
		if calls == 1 {
			return &hintErr{hint: hint}
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("attempts=%d err=%v, want 2/nil", attempts, err)
	}
	// The policy's own MaxDelay is 10µs; waiting ≥ the hint proves the
	// server's Retry-After overrode the exponential schedule.
	if waited := time.Since(start); waited < hint {
		t.Errorf("waited %v, want at least the %v hint", waited, hint)
	}
}

func TestDoIgnoresZeroHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
	start := time.Now()
	calls := 0
	_, err := p.Do(context.Background(), nil, func(context.Context) error {
		calls++
		if calls == 1 {
			return &hintErr{hint: 0}
		}
		return nil
	})
	if err != nil || calls != 2 {
		t.Fatalf("calls=%d err=%v, want 2/nil", calls, err)
	}
	if waited := time.Since(start); waited > 50*time.Millisecond {
		t.Errorf("waited %v for a zero hint; exponential schedule should apply", waited)
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		5 * time.Millisecond, 5 * time.Millisecond}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep under done ctx = %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v", err)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 5 * time.Millisecond})
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record(errBoom)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("breaker not open after threshold: %v", err)
	}
	st := b.Stats()
	if st.Trips != 1 || !st.Open || st.Rejected != 1 {
		t.Errorf("stats after trip = %+v", st)
	}
	time.Sleep(6 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	b.Record(nil)
	if err := b.Allow(); err != nil {
		t.Errorf("breaker did not close after successful probe: %v", err)
	}
}

func TestBreakerBudget(t *testing.T) {
	b := NewBreaker(BreakerConfig{CallBudget: 3})
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("allow %d: %v", i, err)
		}
		b.Record(nil)
	}
	if err := b.Allow(); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget not enforced: %v", err)
	}
	// The budget never clears, even after a cooldown-length wait.
	time.Sleep(time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("budget exhaustion cleared: %v", err)
	}
	st := b.Stats()
	if st.Calls != 3 || st.Rejected != 2 {
		t.Errorf("stats = %+v, want Calls=3 Rejected=2", st)
	}
}
