// Package resilience supplies the retry and circuit-breaking machinery
// the attack pipeline needs against an unreliable remote target: PACE's
// threat model (§2.2) is remote SQL access to a live DBMS, so every
// probe, EXPLAIN estimate and COUNT(*) label crosses a network that can
// be slow, lossy or temporarily down. A RetryPolicy absorbs transient
// failures with exponential backoff + jitter; a Breaker stops hammering
// a failing target and enforces the attacker's total query budget.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"pace/internal/obs"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker is open
// (cooling down after consecutive failures).
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// ErrBudgetExhausted is returned by Breaker.Allow once the total call
// budget is spent. Unlike ErrBreakerOpen it never clears.
var ErrBudgetExhausted = errors.New("resilience: query budget exhausted")

// RetryPolicy retries an operation with capped exponential backoff and
// full jitter. The zero value is usable: WithDefaults fills it in.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 3; 1 disables
	// retrying).
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 2ms); attempt k
	// waits BaseDelay·2^(k-1), capped at MaxDelay (default 250ms).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterFrac randomizes each delay by ±JitterFrac of itself
	// (default 0.25), de-synchronizing concurrent retriers.
	JitterFrac float64
	// Retryable classifies errors; nil retries everything except
	// context cancellation/deadline errors.
	Retryable func(error) bool
}

// WithDefaults fills zero fields with the default policy.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 2 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.25
	}
	return p
}

// Backoff returns the nominal delay before retry number `retry` (1-based),
// without jitter.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d
}

func (p RetryPolicy) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return true
}

// Do runs op until it succeeds, exhausts MaxAttempts, hits a
// non-retryable error, or ctx is done. It reports how many attempts ran
// and the final error (nil on success). rng supplies the backoff jitter
// and may be nil (no jitter).
func (p RetryPolicy) Do(ctx context.Context, rng *rand.Rand, op func(context.Context) error) (attempts int, err error) {
	p = p.WithDefaults()
	for attempts = 1; ; attempts++ {
		if cerr := ctx.Err(); cerr != nil {
			return attempts - 1, cerr
		}
		err = op(ctx)
		if err == nil || attempts >= p.MaxAttempts || !p.retryable(err) {
			return attempts, err
		}
		d := p.Backoff(attempts)
		// A server that said exactly how long to back off (Retry-After on a
		// shed reply) overrides the blind exponential schedule. The hint is
		// discovered structurally so this package needs no knowledge of the
		// transport's error types.
		var hinted interface{ RetryAfterHint() time.Duration }
		if errors.As(err, &hinted) {
			if hint := hinted.RetryAfterHint(); hint > 0 {
				d = hint
			}
		}
		if rng != nil && p.JitterFrac > 0 {
			d += time.Duration((rng.Float64()*2 - 1) * p.JitterFrac * float64(d))
		}
		// Backoff waits are where an unreliable target steals wall-clock
		// time, so each one is a span and a counter tick. Telemetry rides
		// in ctx; with none attached both calls are no-ops.
		obs.From(ctx).Registry().Counter("pace_retry_waits_total").Inc()
		_, sp := obs.StartSpan(ctx, "retry_wait",
			obs.Int("attempt", attempts),
			obs.Int64("delay_us", d.Microseconds()))
		serr := Sleep(ctx, d)
		sp.End()
		if serr != nil {
			return attempts, serr
		}
	}
}

// Sleep blocks for d or until ctx is done, returning ctx's error in the
// latter case. d <= 0 returns immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// BreakerConfig sizes a Breaker. The zero value gets defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive recorded failures
	// that opens the breaker (default 8).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing a
	// probe call through (default 100ms).
	Cooldown time.Duration
	// CallBudget caps the total calls Allow will ever admit — the
	// attacker's query budget against the target. 0 means unlimited.
	CallBudget int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold == 0 {
		c.FailureThreshold = 8
	}
	if c.Cooldown == 0 {
		c.Cooldown = 100 * time.Millisecond
	}
	return c
}

// Breaker is a budget-aware circuit breaker. Allow admits or rejects a
// call; Record reports the call's outcome. After FailureThreshold
// consecutive failures the breaker opens and fails fast for Cooldown,
// then half-opens (admits calls again; the next success closes it).
// Once CallBudget admissions have been granted, Allow always returns
// ErrBudgetExhausted. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	consecFails int
	openUntil   time.Time
	calls       int
	rejected    int
	trips       int

	// Registry handles bound by Instrument; nil-safe no-ops otherwise.
	mOpen                     *obs.Gauge
	mTrips, mRejected, mCalls *obs.Counter
}

// NewBreaker builds a breaker; the zero config gets defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Instrument binds breaker telemetry to reg and returns the breaker:
// `pace_breaker_open` (1 while open), `pace_breaker_trips_total`,
// `pace_breaker_rejected_total` and `pace_breaker_calls_total`. Nil
// breaker or registry is a no-op.
func (b *Breaker) Instrument(reg *obs.Registry) *Breaker {
	if b == nil || reg == nil {
		return b
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.mOpen = reg.Gauge("pace_breaker_open")
	b.mTrips = reg.Counter("pace_breaker_trips_total")
	b.mRejected = reg.Counter("pace_breaker_rejected_total")
	b.mCalls = reg.Counter("pace_breaker_calls_total")
	return b
}

// Allow reports whether a call may proceed, consuming one unit of the
// call budget when it does.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.CallBudget > 0 && b.calls >= b.cfg.CallBudget {
		b.rejected++
		b.mRejected.Inc()
		return ErrBudgetExhausted
	}
	if !b.openUntil.IsZero() && time.Now().Before(b.openUntil) {
		b.rejected++
		b.mRejected.Inc()
		return ErrBreakerOpen
	}
	b.openUntil = time.Time{} // half-open: let the probe call through
	b.mOpen.Set(0)
	b.calls++
	b.mCalls.Inc()
	return nil
}

// Record reports a call outcome: nil closes the breaker, an error counts
// toward the consecutive-failure threshold and (re)opens it on crossing.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		b.consecFails = 0
		return
	}
	b.consecFails++
	if b.consecFails >= b.cfg.FailureThreshold {
		b.openUntil = time.Now().Add(b.cfg.Cooldown)
		b.consecFails = 0
		b.trips++
		b.mTrips.Inc()
		b.mOpen.Set(1)
	}
}

// BreakerStats is a snapshot of a breaker's accounting.
type BreakerStats struct {
	// Calls is the number of admitted calls (budget units spent).
	Calls int
	// Rejected counts calls refused while open or over budget.
	Rejected int
	// Trips counts open transitions.
	Trips int
	// Open reports whether the breaker is currently open.
	Open bool
}

// Stats snapshots the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Calls:    b.calls,
		Rejected: b.rejected,
		Trips:    b.trips,
		Open:     !b.openUntil.IsZero() && time.Now().Before(b.openUntil),
	}
}
