package query

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func testMeta() *Meta {
	return &Meta{
		TableNames: []string{"a", "b", "c"},
		AttrNames:  []string{"a.x", "a.y", "b.x", "c.x", "c.y", "c.z"},
		AttrOffset: []int{0, 2, 3, 6},
	}
}

func TestMetaValidate(t *testing.T) {
	m := testMeta()
	if err := m.Validate(); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}
	bad := &Meta{TableNames: []string{"a"}, AttrNames: []string{"x"}, AttrOffset: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid meta accepted")
	}
	bad2 := testMeta()
	bad2.AttrNames = bad2.AttrNames[:2]
	if err := bad2.Validate(); err == nil {
		t.Error("meta with wrong attr-name count accepted")
	}
}

func TestMetaShape(t *testing.T) {
	m := testMeta()
	if m.NumTables() != 3 || m.NumAttrs() != 6 {
		t.Fatalf("NumTables=%d NumAttrs=%d, want 3, 6", m.NumTables(), m.NumAttrs())
	}
	if m.Dim() != 3+12 {
		t.Errorf("Dim = %d, want 15", m.Dim())
	}
	if m.TableOf(0) != 0 || m.TableOf(2) != 1 || m.TableOf(5) != 2 {
		t.Error("TableOf mapping incorrect")
	}
	if lo, hi := m.Attrs(2); lo != 3 || hi != 6 {
		t.Errorf("Attrs(2) = [%d,%d), want [3,6)", lo, hi)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[0], q.Tables[2] = true, true
	q.Bounds[0] = [2]float64{0.2, 0.7}
	q.Bounds[4] = [2]float64{0.1, 0.4}
	q.Normalize(m)

	v := q.Encode(m)
	if len(v) != m.Dim() {
		t.Fatalf("encoding dim = %d, want %d", len(v), m.Dim())
	}
	got, err := Decode(m, v)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, q) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, q)
	}
}

func TestDecodeDimensionError(t *testing.T) {
	if _, err := Decode(testMeta(), make([]float64, 3)); err == nil {
		t.Error("expected dimension error")
	}
}

func TestNormalizeMasksNonJoinedTables(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[1] = true
	q.Bounds[0] = [2]float64{0.3, 0.6} // attr of table a, which is NOT joined
	q.Bounds[2] = [2]float64{0.9, 0.1} // inverted bounds on joined table b
	q.Normalize(m)
	if q.Bounds[0] != [2]float64{0, 1} {
		t.Errorf("non-joined attr bounds = %v, want [0,1]", q.Bounds[0])
	}
	if q.Bounds[2] != [2]float64{0.1, 0.9} {
		t.Errorf("inverted bounds = %v, want swapped [0.1,0.9]", q.Bounds[2])
	}
}

func TestNormalizeClamps(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{-0.5, 1.7}
	q.Normalize(m)
	if q.Bounds[0] != [2]float64{0, 1} {
		t.Errorf("clamped bounds = %v, want [0,1]", q.Bounds[0])
	}
}

func TestCounts(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[0], q.Tables[1] = true, true
	q.Bounds[0] = [2]float64{0.2, 0.8}
	q.Bounds[2] = [2]float64{0, 0.5}
	if got := q.NumTables(); got != 2 {
		t.Errorf("NumTables = %d, want 2", got)
	}
	if got := q.NumPredicates(); got != 2 {
		t.Errorf("NumPredicates = %d, want 2", got)
	}
}

func TestSQLRendering(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[0] = true
	q.Bounds[1] = [2]float64{0.25, 0.75}
	sql := q.SQL(m)
	for _, want := range []string{"SELECT COUNT(*)", "FROM a", "a.y BETWEEN 0.2500 AND 0.7500"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL %q missing %q", sql, want)
		}
	}
	empty := New(m)
	if !strings.Contains(empty.SQL(m), "∅") {
		t.Error("empty query SQL should mark empty table set")
	}
}

func TestConnected(t *testing.T) {
	m := testMeta()
	// Join graph: a—b, b—c (a chain).
	adj := func(i, j int) bool {
		return (i == 0 && j == 1) || (i == 1 && j == 2)
	}
	q := New(m)
	if q.Connected(adj) {
		t.Error("empty table set reported connected")
	}
	q.Tables[0], q.Tables[2] = true, true // a and c without b: disconnected
	if q.Connected(adj) {
		t.Error("disconnected {a,c} reported connected")
	}
	q.Tables[1] = true // a—b—c: connected
	if !q.Connected(adj) {
		t.Error("connected {a,b,c} reported disconnected")
	}
	single := New(m)
	single.Tables[1] = true
	if !single.Connected(adj) {
		t.Error("single table reported disconnected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := testMeta()
	q := New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0.1, 0.9}
	c := q.Clone()
	c.Tables[0] = false
	c.Bounds[0] = [2]float64{0, 1}
	if !q.Tables[0] || q.Bounds[0] != [2]float64{0.1, 0.9} {
		t.Error("Clone shares state with original")
	}
}

// Property: Decode(Encode(q)) is idempotent for any normalized query.
func TestEncodeDecodeProperty(t *testing.T) {
	m := testMeta()
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		q := New(m)
		for t := range q.Tables {
			q.Tables[t] = rng.Float64() < 0.5
		}
		for a := range q.Bounds {
			lo, hi := rng.Float64(), rng.Float64()
			q.Bounds[a] = [2]float64{lo, hi}
		}
		q.Normalize(m)
		v := q.Encode(m)
		got, err := Decode(m, v)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, q)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Key is injective over normalized queries — two queries share
// a key iff they have identical tables and bitwise-identical bounds.
func TestKeyProperty(t *testing.T) {
	m := testMeta()
	rng := rand.New(rand.NewSource(7))
	randomQuery := func() *Query {
		q := New(m)
		for t := range q.Tables {
			q.Tables[t] = rng.Float64() < 0.5
		}
		for a := range q.Bounds {
			q.Bounds[a] = [2]float64{rng.Float64(), rng.Float64()}
		}
		return q.Normalize(m)
	}
	f := func() bool {
		a, b := randomQuery(), randomQuery()
		if a.Key() != a.Clone().Key() {
			return false // a key must be a pure function of the query
		}
		equal := reflect.DeepEqual(a.Tables, b.Tables) && reflect.DeepEqual(a.Bounds, b.Bounds)
		return (a.Key() == b.Key()) == equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKeyDistinguishesJoinBitsFromBounds(t *testing.T) {
	m := testMeta()
	a := New(m)
	a.Tables[0] = true
	b := New(m)
	b.Tables[1] = true
	if a.Key() == b.Key() {
		t.Error("different join sets must not collide")
	}
	c := a.Clone()
	c.Bounds[0] = [2]float64{0, 0.5}
	if a.Key() == c.Key() {
		t.Error("different bounds must not collide")
	}
}
