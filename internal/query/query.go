// Package query models the SPJ (select-project-join) queries that
// query-driven cardinality estimators consume, together with the vector
// encoding from PACE §5.2: a query is represented as the concatenation of
// a binary join vector (one bit per table) and, per attribute, the
// normalized lower and upper bounds of its range predicate ([0,1] when the
// attribute is unconstrained).
package query

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Meta describes the schema shape a query is encoded against: how many
// tables there are and which contiguous range of global attribute indexes
// each table owns.
type Meta struct {
	TableNames []string
	AttrNames  []string
	// AttrOffset has len(TableNames)+1 entries; the attributes of table
	// t are the global indexes [AttrOffset[t], AttrOffset[t+1]).
	AttrOffset []int
}

// NumTables returns the number of tables in the schema.
func (m *Meta) NumTables() int { return len(m.TableNames) }

// NumAttrs returns the total number of attributes across all tables.
func (m *Meta) NumAttrs() int { return m.AttrOffset[len(m.AttrOffset)-1] }

// TableOf returns the table index owning global attribute attr.
func (m *Meta) TableOf(attr int) int {
	for t := 0; t < m.NumTables(); t++ {
		if attr < m.AttrOffset[t+1] {
			return t
		}
	}
	panic(fmt.Sprintf("query: attribute %d out of range", attr))
}

// Attrs returns the global attribute index range [lo, hi) of table t.
func (m *Meta) Attrs(t int) (lo, hi int) { return m.AttrOffset[t], m.AttrOffset[t+1] }

// Dim returns the encoding dimension: one join bit per table plus two
// bounds per attribute.
func (m *Meta) Dim() int { return m.NumTables() + 2*m.NumAttrs() }

// Validate checks internal consistency of the Meta.
func (m *Meta) Validate() error {
	if len(m.AttrOffset) != len(m.TableNames)+1 {
		return fmt.Errorf("query: AttrOffset has %d entries, want %d",
			len(m.AttrOffset), len(m.TableNames)+1)
	}
	if m.AttrOffset[0] != 0 {
		return fmt.Errorf("query: AttrOffset[0] = %d, want 0", m.AttrOffset[0])
	}
	for i := 1; i < len(m.AttrOffset); i++ {
		if m.AttrOffset[i] < m.AttrOffset[i-1] {
			return fmt.Errorf("query: AttrOffset not monotone at %d", i)
		}
	}
	if len(m.AttrNames) != m.NumAttrs() {
		return fmt.Errorf("query: %d attr names, want %d", len(m.AttrNames), m.NumAttrs())
	}
	return nil
}

// Query is an SPJ query: a set of joined tables plus per-attribute
// normalized range predicates.
type Query struct {
	// Tables[t] reports whether table t participates in the join.
	Tables []bool
	// Bounds[a] holds the normalized [lo, hi] range predicate on global
	// attribute a. An unconstrained attribute has [0, 1]. Attributes of
	// tables not in the join must be [0, 1].
	Bounds [][2]float64
}

// New returns a query over the given meta with no tables selected and all
// bounds open.
func New(m *Meta) *Query {
	q := &Query{
		Tables: make([]bool, m.NumTables()),
		Bounds: make([][2]float64, m.NumAttrs()),
	}
	for i := range q.Bounds {
		q.Bounds[i] = [2]float64{0, 1}
	}
	return q
}

// Clone returns a deep copy of q.
func (q *Query) Clone() *Query {
	out := &Query{
		Tables: make([]bool, len(q.Tables)),
		Bounds: make([][2]float64, len(q.Bounds)),
	}
	copy(out.Tables, q.Tables)
	copy(out.Bounds, q.Bounds)
	return out
}

// NumTables returns how many tables participate in the join.
func (q *Query) NumTables() int {
	n := 0
	for _, b := range q.Tables {
		if b {
			n++
		}
	}
	return n
}

// NumPredicates returns how many attributes carry a non-trivial predicate.
func (q *Query) NumPredicates() int {
	n := 0
	for _, b := range q.Bounds {
		if b[0] > 0 || b[1] < 1 {
			n++
		}
	}
	return n
}

// Normalize clamps bounds into [0,1], swaps inverted bounds, and opens the
// bounds of attributes whose table is not in the join (the masking step of
// §5.2). It returns q for chaining.
func (q *Query) Normalize(m *Meta) *Query {
	for t := 0; t < m.NumTables(); t++ {
		lo, hi := m.Attrs(t)
		for a := lo; a < hi; a++ {
			if !q.Tables[t] {
				q.Bounds[a] = [2]float64{0, 1}
				continue
			}
			b := q.Bounds[a]
			b[0] = clamp01(b[0])
			b[1] = clamp01(b[1])
			if b[0] > b[1] {
				b[0], b[1] = b[1], b[0]
			}
			q.Bounds[a] = b
		}
	}
	return q
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Encode produces the PACE §5.2 vector representation: join bits followed
// by per-attribute (lo, hi) pairs.
func (q *Query) Encode(m *Meta) []float64 {
	v := make([]float64, 0, m.Dim())
	for _, in := range q.Tables {
		if in {
			v = append(v, 1)
		} else {
			v = append(v, 0)
		}
	}
	for _, b := range q.Bounds {
		v = append(v, b[0], b[1])
	}
	return v
}

// Decode reconstructs a query from its vector encoding, binarizing join
// bits at 0.5 and normalizing bounds. It returns an error if the vector
// dimension does not match the meta.
func Decode(m *Meta, v []float64) (*Query, error) {
	if len(v) != m.Dim() {
		return nil, fmt.Errorf("query: decode dim %d, want %d", len(v), m.Dim())
	}
	q := New(m)
	for t := 0; t < m.NumTables(); t++ {
		q.Tables[t] = v[t] > 0.5
	}
	off := m.NumTables()
	for a := 0; a < m.NumAttrs(); a++ {
		q.Bounds[a] = [2]float64{v[off+2*a], v[off+2*a+1]}
	}
	q.Normalize(m)
	return q, nil
}

// Key returns a canonical byte-exact identity for the query: the join
// bits followed by the IEEE-754 bit patterns of every bound. Two queries
// have equal keys iff they select the same tables and carry bitwise-equal
// predicates, which is exactly the equivalence a COUNT(*) memo cache
// needs (the engine is a pure function of this representation). Callers
// should Normalize first so trivially-equal forms (inverted or
// out-of-range bounds) collapse to one key.
func (q *Query) Key() string {
	b := make([]byte, 0, (len(q.Tables)+7)/8+16*len(q.Bounds))
	var bits byte
	for t, in := range q.Tables {
		if in {
			bits |= 1 << (t % 8)
		}
		if t%8 == 7 || t == len(q.Tables)-1 {
			b = append(b, bits)
			bits = 0
		}
	}
	for _, bd := range q.Bounds {
		lo, hi := math.Float64bits(bd[0]), math.Float64bits(bd[1])
		b = binary.LittleEndian.AppendUint64(b, lo)
		b = binary.LittleEndian.AppendUint64(b, hi)
	}
	return string(b)
}

// SQL renders the query as a SQL COUNT(*) statement against the schema's
// table and attribute names, with bounds kept in normalized [0,1] form
// (the synthetic engine's canonical domain).
func (q *Query) SQL(m *Meta) string {
	var tables []string
	for t, in := range q.Tables {
		if in {
			tables = append(tables, m.TableNames[t])
		}
	}
	if len(tables) == 0 {
		return "SELECT COUNT(*) FROM ∅"
	}
	var conds []string
	for a, b := range q.Bounds {
		if b[0] > 0 || b[1] < 1 {
			conds = append(conds, fmt.Sprintf("%s BETWEEN %.4f AND %.4f",
				m.AttrNames[a], b[0], b[1]))
		}
	}
	s := "SELECT COUNT(*) FROM " + strings.Join(tables, ", ")
	if len(conds) > 0 {
		s += " WHERE " + strings.Join(conds, " AND ")
	}
	return s
}

// Connected reports whether the tables selected in q form a connected,
// non-empty subgraph under the adjacency predicate adj (adj(i, j) reports
// whether tables i and j share a join edge). Single-table queries are
// trivially connected.
func (q *Query) Connected(adj func(i, j int) bool) bool {
	var members []int
	for t, in := range q.Tables {
		if in {
			members = append(members, t)
		}
	}
	if len(members) == 0 {
		return false
	}
	seen := map[int]bool{members[0]: true}
	frontier := []int{members[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, t := range members {
			if !seen[t] && (adj(cur, t) || adj(t, cur)) {
				seen[t] = true
				frontier = append(frontier, t)
			}
		}
	}
	return len(seen) == len(members)
}
