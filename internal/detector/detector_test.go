package detector

import (
	"math/rand"
	"testing"

	"pace/internal/nn"
)

// clusteredEncodings draws encodings concentrated in a small region —
// a stand-in for a coherent historical workload.
func clusteredEncodings(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = 0.4 + 0.2*rng.Float64() // mass in [0.4, 0.6]
		}
		out[i] = v
	}
	return out
}

// outlierEncodings draws encodings far from the cluster.
func outlierEncodings(n, dim int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			if rng.Float64() < 0.5 {
				v[j] = rng.Float64() * 0.05
			} else {
				v[j] = 0.95 + rng.Float64()*0.05
			}
		}
		out[i] = v
	}
	return out
}

func TestTrainingReducesReconError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dim := 12
	d := New(dim, Config{Hidden: 16, Epochs: 30}, rng)
	history := clusteredEncodings(300, dim, rng)

	before := meanRecon(d, history)
	d.Train(history)
	after := meanRecon(d, history)
	if after >= before {
		t.Errorf("training did not reduce reconstruction error: %g → %g", before, after)
	}
}

func TestOutliersScoreHigher(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	dim := 12
	d := New(dim, Config{Hidden: 16, Epochs: 40}, rng)
	history := clusteredEncodings(400, dim, rng)
	d.Train(history)

	normal := meanRecon(d, clusteredEncodings(50, dim, rng))
	abnormal := meanRecon(d, outlierEncodings(50, dim, rng))
	if abnormal <= normal {
		t.Errorf("outliers (%g) do not score above normal (%g)", abnormal, normal)
	}
}

func TestIsAbnormalThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 10
	d := New(dim, Config{Hidden: 16, Epochs: 40, Threshold: 0.02}, rng)
	history := clusteredEncodings(400, dim, rng)
	d.Train(history)

	flaggedNormal := 0
	for _, v := range clusteredEncodings(60, dim, rng) {
		if d.IsAbnormal(v) {
			flaggedNormal++
		}
	}
	flaggedOutlier := 0
	outliers := outlierEncodings(60, dim, rng)
	for _, v := range outliers {
		if d.IsAbnormal(v) {
			flaggedOutlier++
		}
	}
	if flaggedOutlier <= flaggedNormal {
		t.Errorf("outliers flagged %d/60, normals flagged %d/60", flaggedOutlier, flaggedNormal)
	}
}

func TestReconGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 8
	d := New(dim, Config{Hidden: 12, Epochs: 5}, rng)
	d.Train(clusteredEncodings(100, dim, rng))

	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	_, dv := d.ReconGrad(v)
	numeric := nn.NumericInputGrad(func() float64 { return d.ReconError(v) }, v, 1e-6)
	if diff := nn.MaxAbsDiff(dv, numeric); diff > 1e-5 {
		t.Errorf("ReconGrad mismatch vs finite differences: %g", diff)
	}
}

func TestReconGradDoesNotTouchParams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dim := 8
	d := New(dim, Config{Hidden: 12}, rng)
	before := nn.FlattenParams(d.paramList())
	v := make([]float64, dim)
	d.ReconGrad(v)
	if nn.MaxAbsDiff(before, nn.FlattenParams(d.paramList())) != 0 {
		t.Error("ReconGrad modified detector parameters")
	}
	for _, p := range d.paramList() {
		for _, g := range p.G {
			if g != 0 {
				t.Fatal("ReconGrad left nonzero parameter gradients")
			}
		}
	}
}

func TestGradDescentOnInputReducesError(t *testing.T) {
	// The confrontation mechanism: moving a query along −ReconGrad must
	// reduce its reconstruction error.
	rng := rand.New(rand.NewSource(6))
	dim := 10
	d := New(dim, Config{Hidden: 16, Epochs: 40}, rng)
	d.Train(clusteredEncodings(300, dim, rng))

	v := outlierEncodings(1, dim, rng)[0]
	before := d.ReconError(v)
	for i := 0; i < 50; i++ {
		_, dv := d.ReconGrad(v)
		nn.AddScaled(v, -0.1, dv)
	}
	after := d.ReconError(v)
	if after >= before {
		t.Errorf("descending the recon gradient did not help: %g → %g", before, after)
	}
}

func TestCalibrateThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dim := 8
	d := New(dim, Config{Hidden: 12, Epochs: 10}, rng)
	history := clusteredEncodings(200, dim, rng)
	d.Train(history)
	d.CalibrateThreshold(history, 95)
	flagged := 0
	for _, v := range history {
		if d.IsAbnormal(v) {
			flagged++
		}
	}
	frac := float64(flagged) / float64(len(history))
	if frac > 0.10 {
		t.Errorf("after 95th-percentile calibration, %.0f%% of history flagged", frac*100)
	}
}

func TestSetThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := New(4, Config{}, rng)
	d.SetThreshold(0.42)
	if d.Threshold() != 0.42 {
		t.Errorf("Threshold = %g, want 0.42", d.Threshold())
	}
}

func TestTrainEmptyHistoryIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := New(4, Config{}, rng)
	before := nn.FlattenParams(d.paramList())
	d.Train(nil)
	d.CalibrateThreshold(nil, 95)
	if nn.MaxAbsDiff(before, nn.FlattenParams(d.paramList())) != 0 {
		t.Error("empty training changed parameters")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Latent != 6 || c.Threshold != 0.05 || c.Epochs != 100 {
		t.Errorf("defaults = %+v", c)
	}
}

func meanRecon(d *Detector, vs [][]float64) float64 {
	var s float64
	for _, v := range vs {
		s += d.ReconError(v)
	}
	return s / float64(len(vs))
}
