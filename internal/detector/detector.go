// Package detector implements the VAE-based anomaly detector of PACE §6:
// a variational auto-encoder trained to reconstruct historical query
// encodings. A query whose reconstruction error exceeds a threshold is
// abnormal; during attack training the reconstruction loss of abnormal
// generated queries is backpropagated into the poisoning generator,
// keeping the poisoning workload distributionally close to history.
package detector

import (
	"math"
	"math/rand"
	"sort"

	"pace/internal/nn"
)

// Config sizes and schedules the detector.
type Config struct {
	// Latent is the VAE latent dimension (default 6).
	Latent int
	// Hidden is the hidden width of encoder and decoder (default 48).
	Hidden int
	// Epochs and Batch control training (defaults 100 and 32).
	Epochs, Batch int
	// LR is the Adam learning rate (default 3e-3).
	LR float64
	// KLWeight scales the KL regularizer (default 1e-3; the
	// reconstruction term dominates, as in reconstruction-based anomaly
	// detection).
	KLWeight float64
	// Threshold is the absolute reconstruction-MSE threshold ε above
	// which a query is abnormal (default 0.05, the paper's recommended
	// 5%).
	Threshold float64
}

func (c Config) withDefaults() Config {
	if c.Latent == 0 {
		c.Latent = 6
	}
	if c.Hidden == 0 {
		c.Hidden = 48
	}
	if c.Epochs == 0 {
		c.Epochs = 100
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 3e-3
	}
	if c.KLWeight == 0 {
		c.KLWeight = 1e-3
	}
	if c.Threshold == 0 {
		c.Threshold = 0.05
	}
	return c
}

// Detector is the trained VAE plus its anomaly threshold.
type Detector struct {
	cfg Config
	dim int

	enc *nn.MLP // dim → … → 2·latent (μ ‖ logσ²)
	dec *nn.MLP // latent → … → dim (sigmoid: encodings live in [0,1])

	opt *nn.Adam
	rng *rand.Rand
}

// New builds an untrained detector for encodings of the given dimension.
// Encoder and decoder have 3 dense layers each, plus the latent bottleneck
// — the 7-layer detector of the paper's hyperparameter table.
func New(dim int, cfg Config, rng *rand.Rand) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{cfg: cfg, dim: dim, rng: rng}
	d.enc = nn.NewMLP("det.enc",
		[]int{dim, cfg.Hidden, cfg.Hidden, 2 * cfg.Latent}, nn.NewReLU, nil, rng)
	d.dec = nn.NewMLP("det.dec",
		[]int{cfg.Latent, cfg.Hidden, cfg.Hidden, dim}, nn.NewReLU, nn.NewSigmoid, rng)
	d.opt = nn.NewAdam(append(d.enc.Params(), d.dec.Params()...), cfg.LR)
	return d
}

// Threshold returns the anomaly threshold ε.
func (d *Detector) Threshold() float64 { return d.cfg.Threshold }

// SetThreshold overrides the anomaly threshold ε (the Fig. 13 sweep).
func (d *Detector) SetThreshold(eps float64) { d.cfg.Threshold = eps }

// Train fits the VAE to the historical query encodings with the MSE
// reconstruction loss of Eq. 12 plus a KL regularizer.
func (d *Detector) Train(history [][]float64) {
	if len(history) == 0 {
		return
	}
	idx := make([]int, len(history))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < d.cfg.Epochs; ep++ {
		d.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += d.cfg.Batch {
			hi := lo + d.cfg.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			for _, i := range idx[lo:hi] {
				d.trainOne(history[i])
			}
			d.opt.Step(1 / float64(hi-lo))
		}
	}
}

// trainOne accumulates one sample's gradient: stochastic reparameterized
// forward, MSE + KL backward.
func (d *Detector) trainOne(v []float64) {
	latent := d.cfg.Latent
	h := d.enc.Forward(v)
	mu, logvar := h[:latent], h[latent:]

	eps := make([]float64, latent)
	z := make([]float64, latent)
	for i := range z {
		eps[i] = d.rng.NormFloat64()
		z[i] = mu[i] + eps[i]*math.Exp(0.5*logvar[i])
	}
	xhat := d.dec.Forward(z)

	// Reconstruction: L = Σ(xhat−v)²/dim.
	dxhat := make([]float64, d.dim)
	for i := range dxhat {
		dxhat[i] = 2 * (xhat[i] - v[i]) / float64(d.dim)
	}
	dz := d.dec.Backward(dxhat)

	// Reparameterization + KL gradients.
	dh := make([]float64, 2*latent)
	for i := 0; i < latent; i++ {
		dh[i] = dz[i] + d.cfg.KLWeight*mu[i]
		dh[latent+i] = dz[i]*eps[i]*0.5*math.Exp(0.5*logvar[i]) +
			d.cfg.KLWeight*0.5*(math.Exp(logvar[i])-1)
	}
	d.enc.Backward(dh)
}

// ReconError returns the deterministic (μ-path) reconstruction MSE of v —
// the anomaly score.
func (d *Detector) ReconError(v []float64) float64 {
	err, _ := d.forwardMu(v)
	return err
}

// IsAbnormal reports whether v's reconstruction error exceeds ε.
func (d *Detector) IsAbnormal(v []float64) bool {
	return d.ReconError(v) > d.cfg.Threshold
}

// ReconGrad returns the reconstruction error of v and its gradient with
// respect to v — the signal backpropagated into the poisoning generator
// during the confrontation of §6.2. Both the path through the network and
// the direct (xhat−v) dependence are included.
func (d *Detector) ReconGrad(v []float64) (float64, []float64) {
	err, xhat := d.forwardMu(v)

	dxhat := make([]float64, d.dim)
	dv := make([]float64, d.dim)
	for i := range dxhat {
		g := 2 * (xhat[i] - v[i]) / float64(d.dim)
		dxhat[i] = g
		dv[i] = -g // direct dependence of the loss on v
	}
	nn.ZeroGrads(d.paramList())
	dz := d.dec.Backward(dxhat)
	dh := make([]float64, 2*d.cfg.Latent)
	copy(dh, dz) // μ path only; the deterministic pass ignores logσ²
	dvEnc := d.enc.Backward(dh)
	nn.AddScaled(dv, 1, dvEnc)
	// The detector itself is frozen during confrontation: drop the
	// parameter gradients this backward pass accumulated.
	nn.ZeroGrads(d.paramList())
	return err, dv
}

// forwardMu runs the deterministic μ-path forward and returns the MSE and
// reconstruction.
func (d *Detector) forwardMu(v []float64) (float64, []float64) {
	h := d.enc.Forward(v)
	mu := h[:d.cfg.Latent]
	xhat := d.dec.Forward(mu)
	var sum float64
	for i := range xhat {
		diff := xhat[i] - v[i]
		sum += diff * diff
	}
	return sum / float64(d.dim), xhat
}

func (d *Detector) paramList() []*nn.Param {
	return append(d.enc.Params(), d.dec.Params()...)
}

// CalibrateThreshold sets ε to the given percentile of the reconstruction
// errors over the history (an alternative to the absolute default when
// the encoding dimensionality makes absolute MSE hard to interpret).
func (d *Detector) CalibrateThreshold(history [][]float64, percentile float64) {
	if len(history) == 0 {
		return
	}
	errs := make([]float64, len(history))
	for i, v := range history {
		errs[i] = d.ReconError(v)
	}
	sort.Float64s(errs)
	rank := int(math.Ceil(percentile/100*float64(len(errs)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(errs) {
		rank = len(errs) - 1
	}
	d.cfg.Threshold = errs[rank]
}
