package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {50, 3}, {90, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileEmpty(t *testing.T) {
	// Empty input returns 0 like Mean and GeoMean — an empty Q-error set
	// (e.g. a zero-length test workload) must not crash reporting.
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil, 50) = %g, want 0", got)
	}
	if got := Percentile([]float64{}, 99); got != 0 {
		t.Errorf("Percentile(empty, 99) = %g, want 0", got)
	}
}

func TestHitRateSpeedupZero(t *testing.T) {
	if got := HitRate(0, 0); got != 0 {
		t.Errorf("HitRate(0,0) = %g, want 0", got)
	}
	if got := HitRate(3, 1); got != 0.75 {
		t.Errorf("HitRate(3,1) = %g, want 0.75", got)
	}
	if got := Speedup(1.5, 0); got != 0 {
		t.Errorf("Speedup(1.5,0) = %g, want 0", got)
	}
	if got := Speedup(3, 1.5); got != 2 {
		t.Errorf("Speedup(3,1.5) = %g, want 2", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{Mean: 1.5, P50: 1, P90: 2, P95: 3, P99: 4, Max: 5}
	want := "mean=1.5 p50=1 p90=2 p95=3 p99=4 max=5"
	if got := s.String(); got != want {
		t.Errorf("Summary.String() = %q, want %q", got, want)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.Mean != 50.5 || s.P90 != 90 || s.P99 != 99 || s.Max != 100 {
		t.Errorf("Summary = %+v", s)
	}
	if Summarize(nil) != (Summary{}) {
		t.Error("empty Summarize should be zero")
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestPercentileOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		return Percentile(xs, 50) <= Percentile(xs, 90) &&
			Percentile(xs, 90) <= Percentile(xs, 99) &&
			Percentile(xs, 99) <= Percentile(xs, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJSDivergenceIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomEncodings(rng, 100, 5)
	if d := JSDivergence(a, a, 10); d > 1e-9 {
		t.Errorf("JSD(a,a) = %g, want ~0", d)
	}
}

func TestJSDivergenceSeparated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomEncodings(rng, 200, 4)
	b := randomEncodings(rng, 200, 4)
	for i := range b {
		for j := range b[i] {
			b[i][j] = 0.9 + 0.1*b[i][j] // mass concentrated near 1
		}
	}
	near := JSDivergence(a, a, 10)
	far := JSDivergence(a, b, 10)
	if far <= near {
		t.Errorf("separated JSD %g not larger than identical %g", far, near)
	}
	if far > math.Log(2)+1e-9 {
		t.Errorf("JSD %g exceeds ln 2 bound", far)
	}
}

func TestJSDivergenceEdgeCases(t *testing.T) {
	if JSDivergence(nil, nil, 10) != 0 {
		t.Error("empty JSD should be 0")
	}
	a := [][]float64{{0.5}}
	if d := JSDivergence(a, a, 0); d < 0 {
		t.Error("default bins should work")
	}
}

func TestJSDivergenceRaggedRows(t *testing.T) {
	// Rows of b narrower than a[0] (e.g. encodings from a different
	// query template) must not index out of range; the short rows just
	// don't contribute to the higher dimensions.
	a := [][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}}
	b := [][]float64{{0.1}, {0.9, 0.8}}
	d := JSDivergence(a, b, 10)
	if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
		t.Errorf("ragged JSD = %g, want finite non-negative", d)
	}
	// Ragged rows inside a as well.
	aRag := [][]float64{{0.1, 0.2, 0.3}, {0.4}}
	if d := JSDivergence(aRag, b, 10); math.IsNaN(d) || d < 0 {
		t.Errorf("double-ragged JSD = %g, want finite non-negative", d)
	}
}

func TestJSDivergenceSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomEncodings(rng, 50, 3)
	b := randomEncodings(rng, 70, 3)
	d1, d2 := JSDivergence(a, b, 8), JSDivergence(b, a, 8)
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("JSD not symmetric: %g vs %g", d1, d2)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("parallel cosine = %g", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("orthogonal cosine = %g", got)
	}
	if got := CosineSimilarity([]float64{1, 1}, []float64{0, 0}); got != 0 {
		t.Errorf("zero-vector cosine = %g", got)
	}
}

func TestCosineSimilarityPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CosineSimilarity([]float64{1}, []float64{1, 2})
}

func TestCosineBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		a := make([]float64, 4)
		b := make([]float64, 4)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		c := CosineSimilarity(a, b)
		return c >= -1-1e-9 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomEncodings(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.Float64()
		}
	}
	return out
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
	if got := GeoMean([]float64{1, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean(1,100) = %g, want 10", got)
	}
	// Entries below 1 are floored at the Q-error minimum.
	if got := GeoMean([]float64{0.001, 100}); math.Abs(got-10) > 1e-9 {
		t.Errorf("GeoMean with sub-1 entry = %g, want 10", got)
	}
	// Robust to one huge outlier compared with the arithmetic mean.
	xs := []float64{2, 2, 2, 2, 1e6}
	if GeoMean(xs) > Mean(xs)/100 {
		t.Errorf("GeoMean %g not substantially below Mean %g on outlier data",
			GeoMean(xs), Mean(xs))
	}
}
