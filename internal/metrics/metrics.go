// Package metrics implements the paper's four attack-evaluation metrics
// (§2.2): Q-error aggregation (mean and percentiles), Jensen-Shannon
// divergence between workload distributions, and simple timing summaries.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// HitRate is the fraction of lookups served from a cache: hits out of
// hits+misses (0 when there was no traffic). Shared by the oracle-cache
// reporting of cmd/pace and Result.Stats consumers.
func HitRate(hits, misses int64) float64 {
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Speedup is the wall-clock ratio serial/parallel (0 when parallel is
// 0) — the headline number of the BENCH_parallel.json report.
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return serial / parallel
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for an empty slice).
// Q-error distributions are heavy-tailed; ratio-style comparisons
// (Figure 11, Table 7) use the geometric mean so a single outlier query
// cannot dominate the ratio. Non-positive entries are floored at 1, the
// Q-error minimum.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x < 1 {
			x = 1
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy (0 for an empty slice, matching Mean
// and GeoMean).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Summary aggregates a Q-error distribution the way the paper's tables
// report it.
type Summary struct {
	Mean, P50, P90, P95, P99, Max float64
}

// Summarize computes the standard summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		Mean: Mean(xs),
		P50:  Percentile(xs, 50),
		P90:  Percentile(xs, 90),
		P95:  Percentile(xs, 95),
		P99:  Percentile(xs, 99),
		Max:  Percentile(xs, 100),
	}
}

// String renders the summary as a table row.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3g p50=%.3g p90=%.3g p95=%.3g p99=%.3g max=%.3g",
		s.Mean, s.P50, s.P90, s.P95, s.P99, s.Max)
}

// JSDivergence computes the Jensen-Shannon divergence (in nats) between
// two sets of query encodings, the paper's normality metric for poisoning
// workloads. Each encoding dimension is histogrammed into bins buckets
// over [0, 1]; the divergence is averaged across dimensions.
func JSDivergence(a, b [][]float64, bins int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if bins <= 0 {
		bins = 10
	}
	dims := len(a[0])
	var total float64
	for d := 0; d < dims; d++ {
		pa := histogram(a, d, bins)
		pb := histogram(b, d, bins)
		total += jsd(pa, pb)
	}
	return total / float64(dims)
}

func histogram(vs [][]float64, dim, bins int) []float64 {
	h := make([]float64, bins)
	n := 0
	for _, v := range vs {
		if dim >= len(v) {
			// Ragged input: rows shorter than the reference row simply
			// contribute nothing to the higher dimensions instead of
			// panicking the whole evaluation.
			continue
		}
		x := v[dim]
		if x < 0 {
			x = 0
		}
		if x > 1 {
			x = 1
		}
		i := int(x * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		h[i]++
		n++
	}
	// Laplace smoothing keeps the KL terms finite.
	total := float64(n) + float64(bins)*1e-6
	for i := range h {
		h[i] = (h[i] + 1e-6) / total
	}
	return h
}

func jsd(p, q []float64) float64 {
	m := make([]float64, len(p))
	for i := range m {
		m[i] = (p[i] + q[i]) / 2
	}
	return (kl(p, m) + kl(q, m)) / 2
}

func kl(p, q []float64) float64 {
	var s float64
	for i := range p {
		if p[i] > 0 && q[i] > 0 {
			s += p[i] * math.Log(p[i]/q[i])
		}
	}
	return s
}

// CosineSimilarity returns the cosine of the angle between a and b
// (0 when either vector is zero). It is the similarity measure of the
// model-type speculation step (Eq. 5).
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: CosineSimilarity length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
