package core

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/resilience"
)

// slowOracle models the remote COUNT(*) channel: every call pays a fixed
// round-trip latency before the local engine answers. Latency-bound, not
// CPU-bound — exactly the regime the worker pool exists for.
func slowOracle(inner Oracle, rtt time.Duration) Oracle {
	return func(ctx context.Context, q *query.Query) (float64, error) {
		if err := resilience.Sleep(ctx, rtt); err != nil {
			return 0, err
		}
		return inner(ctx, q)
	}
}

// benchRTT is the simulated oracle round trip. 200µs is conservative for
// a same-datacenter DBMS; real WAN round trips are 10-100× longer, which
// widens (never narrows) the parallel advantage.
const benchRTT = 200 * time.Microsecond

// BenchmarkParallelLabeling measures the oracle labeling fan-out — the
// hot path of every training loop — over one 256-query batch at several
// worker counts. workers=1 is the serial baseline (the pre-pool code
// path); the speedup at workers=N is latency overlap, so it holds even
// on a single core.
func BenchmarkParallelLabeling(b *testing.B) {
	f := newFixture(b, 21)
	oracle := slowOracle(EngineOracle(f.wgen), benchRTT)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
				generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
			tr := NewTrainer(f.sur, gen, nil, oracle, f.test, TrainerConfig{Batch: 256}, f.rng)
			if w > 1 {
				tr.Pool = engine.PoolFor(w)
			} // w == 1: nil pool, the serial baseline
			batch := tr.Gen.Generate(256, f.rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.labelCards(bgCtx, batch)
			}
		})
	}
}

// BenchmarkTrainAccelerated is the end-to-end number: a short accelerated
// attack (2 outer × 2 inner, batch 32) against the latency-bound oracle,
// serial vs 8 workers. The training trajectory is bit-identical in both
// configurations (see TestTrainDeterministicAcrossWorkerCounts); only
// the wall clock differs.
func BenchmarkTrainAccelerated(b *testing.B) {
	f := newFixture(b, 22)
	oracle := slowOracle(EngineOracle(f.wgen), benchRTT)
	for _, w := range []int{0, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
					generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
				tr := NewTrainer(f.sur, gen, nil, oracle, f.test,
					TrainerConfig{Batch: 32, InnerIters: 2, OuterIters: 2, TestBatch: 16}, f.rng)
				tr.Pool = engine.PoolFor(w)
				if err := tr.TrainAccelerated(bgCtx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTelemetryOverhead prices the observability layer on the
// BENCH_parallel.json end-to-end scenario (2 outer × 2 inner, batch 32,
// 200µs oracle RTT). "disabled" is the instrumented code with nil
// telemetry — all instrument calls degrade to nil checks, and the
// latency clock reads are skipped entirely — and must stay within 5% of
// BenchmarkTrainAccelerated. "enabled" adds a live registry plus a
// tracer writing to io.Discard, the full-telemetry worst case. Results
// are recorded in BENCH_obs.json.
func BenchmarkTelemetryOverhead(b *testing.B) {
	f := newFixture(b, 22)
	oracle := slowOracle(EngineOracle(f.wgen), benchRTT)
	run := func(b *testing.B, tel *obs.Telemetry, w int) {
		ctx := obs.NewContext(bgCtx, tel)
		for i := 0; i < b.N; i++ {
			gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
				generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
			tr := NewTrainer(f.sur, gen, nil, oracle, f.test,
				TrainerConfig{Batch: 32, InnerIters: 2, OuterIters: 2, TestBatch: 16}, f.rng)
			tr.Instrument(tel.Registry())
			tr.Pool = engine.PoolFor(w).Instrument(tel.Registry())
			if err := tr.TrainAccelerated(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, w := range []int{0, 8} {
		b.Run(fmt.Sprintf("disabled/workers=%d", w), func(b *testing.B) {
			run(b, nil, w)
		})
		b.Run(fmt.Sprintf("enabled/workers=%d", w), func(b *testing.B) {
			run(b, &obs.Telemetry{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(io.Discard)}, w)
		})
	}
}

// BenchmarkOracleCacheMemoization measures what the LRU memo saves when
// the generator revisits a query: a cache hit skips the round trip
// entirely, so the hit path should be ~RTT faster than the miss path.
func BenchmarkOracleCacheMemoization(b *testing.B) {
	f := newFixture(b, 23)
	oracle := slowOracle(EngineOracle(f.wgen), benchRTT)
	cache := engine.NewOracleCache(engine.Labeler(oracle), 1024, nil)
	gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
		generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
	batch := gen.Generate(64, f.rng)

	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh := engine.NewOracleCache(engine.Labeler(oracle), 1024, nil)
			for _, s := range batch {
				fresh.Label(bgCtx, s.Query)
			}
		}
	})
	// Warm the shared cache once, then measure pure hits.
	for _, s := range batch {
		cache.Label(bgCtx, s.Query)
	}
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range batch {
				cache.Label(bgCtx, s.Query)
			}
		}
	})
}
