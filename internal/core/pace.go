package core

import (
	"fmt"
	"math/rand"
	"time"

	"pace/internal/ce"
	"pace/internal/detector"
	"pace/internal/generator"
	"pace/internal/query"
	"pace/internal/surrogate"
	"pace/internal/workload"
)

// Algorithm selects the generator-training algorithm of §5.3.
type Algorithm int

const (
	// Accelerated is the progressive-update algorithm of Fig. 5(b) /
	// Algorithm 1 — the PACE default.
	Accelerated Algorithm = iota
	// Basic is the alternating algorithm of Fig. 5(a), kept for the
	// Fig. 12 ablation.
	Basic
)

// Config assembles the full PACE pipeline configuration.
type Config struct {
	// NumPoison is the size of the final poisoning workload (default
	// 450, the paper's 5% of a 10 000-query training history... scaled).
	NumPoison int
	// Algorithm selects Accelerated (default) or Basic.
	Algorithm Algorithm
	// UseDetector enables the §6 anomaly-detector confrontation
	// (default true; set DisableDetector to turn off).
	DisableDetector bool
	// ForceType skips model-type speculation and uses the given type
	// (the Table 7 wrong-surrogate experiments). Leave nil for the
	// normal pipeline.
	ForceType *ce.Type
	// DetectorPercentile calibrates the anomaly threshold ε to this
	// percentile of the historical workload's reconstruction errors
	// (default 90; set negative to keep the detector's absolute ε).
	DetectorPercentile float64

	Speculation surrogate.SpeculationConfig
	Surrogate   surrogate.TrainConfig
	Generator   generator.Config
	Detector    detector.Config
	Trainer     TrainerConfig
}

func (c Config) withDefaults() Config {
	if c.NumPoison == 0 {
		c.NumPoison = 450
	}
	if c.DetectorPercentile == 0 {
		c.DetectorPercentile = 90
	}
	return c
}

// Result is the outcome of a full PACE run.
type Result struct {
	// SpeculatedType is the architecture speculation chose (or the
	// forced type).
	SpeculatedType ce.Type
	// Similarities are the per-type speculation scores (nil when the
	// type was forced).
	Similarities map[ce.Type]float64
	// Surrogate is the trained white-box stand-in.
	Surrogate *ce.Estimator
	// Poison is the final poisoning workload with true cardinalities.
	Poison      []*query.Query
	PoisonCards []float64
	// Objective is the convergence curve (one value per outer loop).
	Objective []float64
	// TrainTime covers surrogate acquisition + generator training;
	// GenTime covers drawing the final poisoning workload; AttackTime
	// covers the target's incremental update on it.
	TrainTime, GenTime, AttackTime time.Duration
}

// Run executes the complete PACE attack of §3 against a black-box CE
// model: speculate and train a surrogate (§4), adversarially train the
// poisoning generator with the anomaly detector (§5–6), generate the
// poisoning workload, and execute it against the target (§3.4).
//
// wgen supplies the attacker's query-generation and COUNT(*) machinery
// over the target database; test is the workload whose estimation error
// the attack maximizes; history is the historical workload the detector
// learns normality from.
func Run(bb *ce.BlackBox, wgen *workload.Generator, test, history []workload.Labeled,
	cfg Config, rng *rand.Rand) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	oracle := EngineOracle(wgen)

	trainStart := time.Now()

	// Stage (a): surrogate acquisition.
	if cfg.ForceType != nil {
		res.SpeculatedType = *cfg.ForceType
	} else {
		spec, err := surrogate.Speculate(bb, wgen, cfg.Speculation, rng)
		if err != nil {
			return nil, fmt.Errorf("core: speculation failed: %w", err)
		}
		res.SpeculatedType = spec.Type
		res.Similarities = spec.Similarities
	}
	res.Surrogate = surrogate.Train(bb, res.SpeculatedType, wgen, cfg.Surrogate, rng)

	// Stage (b): generator (+ detector) training.
	gen := generator.New(wgen.DS.Meta, wgen.DS.Joinable, cfg.Generator, rng)
	var det *detector.Detector
	if !cfg.DisableDetector {
		det = detector.New(wgen.DS.Meta.Dim(), cfg.Detector, rng)
		hEnc := encodings(history, wgen)
		det.Train(hEnc)
		if cfg.DetectorPercentile > 0 {
			det.CalibrateThreshold(hEnc, cfg.DetectorPercentile)
		}
	}
	testSamples := MakeTestSamples(res.Surrogate, test)
	trainer := NewTrainer(res.Surrogate, gen, det, oracle, testSamples, cfg.Trainer, rng)
	switch cfg.Algorithm {
	case Basic:
		trainer.TrainBasic()
	default:
		trainer.TrainAccelerated()
	}
	res.Objective = trainer.Objective
	res.TrainTime = time.Since(trainStart)

	// Stage (c): attack.
	genStart := time.Now()
	res.Poison, res.PoisonCards = trainer.GeneratePoison(cfg.NumPoison)
	res.GenTime = time.Since(genStart)

	attackStart := time.Now()
	bb.ExecuteWorkload(res.Poison, res.PoisonCards)
	res.AttackTime = time.Since(attackStart)
	return res, nil
}

// EngineOracle adapts the workload generator's exact engine into the
// attacker's COUNT(*) oracle (invalid queries count as zero).
func EngineOracle(wgen *workload.Generator) Oracle {
	return func(q *query.Query) float64 {
		card, err := wgen.Eng.Cardinality(q)
		if err != nil {
			return 0
		}
		return card
	}
}

// MakeTestSamples normalizes a labeled test workload against the
// surrogate's normalizer.
func MakeTestSamples(sur *ce.Estimator, test []workload.Labeled) []ce.Sample {
	return sur.MakeSamples(workload.Queries(test), cardsOf(test))
}

func encodings(w []workload.Labeled, wgen *workload.Generator) [][]float64 {
	out := make([][]float64, len(w))
	for i, l := range w {
		out[i] = l.Q.Encode(wgen.DS.Meta)
	}
	return out
}

// CraftPoison produces a poisoning workload of size n with the given
// baseline method against a trained surrogate. PACE itself must go
// through Run (it needs the full trainer); passing PACE here panics.
func CraftPoison(m Method, sur *ce.Estimator, wgen *workload.Generator,
	genCfg generator.Config, n int, rng *rand.Rand) ([]*query.Query, []float64) {
	oracle := EngineOracle(wgen)
	switch m {
	case Random:
		return RandomPoison(wgen, n)
	case LbS:
		return LbSPoison(sur, wgen, n)
	case Greedy:
		return GreedyPoison(sur, wgen, oracle, n, rng)
	case LbG:
		gen := generator.New(wgen.DS.Meta, wgen.DS.Joinable, genCfg, rng)
		return LbGPoison(sur, gen, oracle, LbGConfig{}, n, rng)
	default:
		panic(fmt.Sprintf("core: CraftPoison does not implement %v", m))
	}
}
