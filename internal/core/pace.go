package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"pace/internal/ce"
	"pace/internal/detector"
	"pace/internal/engine"
	"pace/internal/faults"
	"pace/internal/generator"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/resilience"
	"pace/internal/surrogate"
	"pace/internal/workload"
)

// Algorithm selects the generator-training algorithm of §5.3.
type Algorithm int

const (
	// Accelerated is the progressive-update algorithm of Fig. 5(b) /
	// Algorithm 1 — the PACE default.
	Accelerated Algorithm = iota
	// Basic is the alternating algorithm of Fig. 5(a), kept for the
	// Fig. 12 ablation.
	Basic
)

// Config assembles the full PACE pipeline configuration.
type Config struct {
	// NumPoison is the size of the final poisoning workload (default
	// 450, the paper's 5% of a 10 000-query training history... scaled).
	NumPoison int
	// Algorithm selects Accelerated (default) or Basic.
	Algorithm Algorithm
	// UseDetector enables the §6 anomaly-detector confrontation
	// (default true; set DisableDetector to turn off).
	DisableDetector bool
	// ForceType skips model-type speculation and uses the given type
	// (the Table 7 wrong-surrogate experiments). Leave nil for the
	// normal pipeline.
	ForceType *ce.Type
	// DetectorPercentile calibrates the anomaly threshold ε to this
	// percentile of the historical workload's reconstruction errors
	// (default 90; set negative to keep the detector's absolute ε).
	DetectorPercentile float64

	// Workers bounds the campaign's worker pool: oracle labeling inside
	// generator training and the speculation candidate trainings fan out
	// across this many goroutines. 0 runs serially; negative uses
	// GOMAXPROCS. Any value yields a bit-identical campaign for a fixed
	// seed — parallelism changes wall-clock time, never results.
	Workers int
	// OracleCacheSize enables the memoizing COUNT(*) cache: > 0 is the
	// LRU capacity in labels, < 0 uses engine.DefaultOracleCacheSize,
	// 0 disables caching. Hit/miss counters surface in Result.Stats.
	OracleCacheSize int

	// Retry is the campaign-wide retry policy for target and oracle
	// calls (zero value = sensible defaults). Breaker, when set, gates
	// oracle traffic and enforces the attacker's query budget. Faults,
	// when set, wraps the target AND the oracle with an injected
	// unreliability profile (chaos testing).
	Retry   resilience.RetryPolicy
	Breaker *resilience.Breaker
	Faults  *faults.Injector

	// Telemetry carries the campaign's observability channels — metrics
	// registry, span tracer, structured logger (see internal/obs). Every
	// stage instruments itself against it: spans cover speculation,
	// surrogate epochs, outer loops, oracle label batches, retries and
	// checkpoints; counters and gauges cover oracle traffic, pool, cache,
	// breaker and fault activity. Nil disables all three channels at
	// near-zero cost.
	Telemetry *obs.Telemetry

	// CheckpointEvery/CheckpointSink checkpoint generator training every
	// N outer loops (N ≤ 0 means every loop when a sink is set). Resume,
	// when non-nil, skips surrogate acquisition and continues training
	// from the checkpoint.
	CheckpointEvery int
	CheckpointSink  func(*Checkpoint) error
	Resume          *Checkpoint

	Speculation surrogate.SpeculationConfig
	Surrogate   surrogate.TrainConfig
	Generator   generator.Config
	Detector    detector.Config
	Trainer     TrainerConfig
}

func (c Config) withDefaults() Config {
	if c.NumPoison == 0 {
		c.NumPoison = 450
	}
	if c.DetectorPercentile == 0 {
		c.DetectorPercentile = 90
	}
	if c.Speculation.Retry.MaxAttempts == 0 && c.Speculation.Retry.Retryable == nil {
		c.Speculation.Retry = c.Retry
	}
	if c.Surrogate.Retry.MaxAttempts == 0 && c.Surrogate.Retry.Retryable == nil {
		c.Surrogate.Retry = c.Retry
	}
	return c
}

// Result is the outcome of a full PACE run.
type Result struct {
	// SpeculatedType is the architecture speculation chose (or the
	// forced type).
	SpeculatedType ce.Type
	// Similarities are the per-type speculation scores (nil when the
	// type was forced).
	Similarities map[ce.Type]float64
	// SpeculationFellBack reports that speculation failed against the
	// unreliable target and the pipeline degraded to the Linear
	// surrogate — the paper's most robust type — instead of aborting.
	SpeculationFellBack bool
	// FailedProbes counts speculation probes lost to target failures.
	FailedProbes int
	// Surrogate is the trained white-box stand-in.
	Surrogate *ce.Estimator
	// Poison is the final poisoning workload with true cardinalities.
	Poison      []*query.Query
	PoisonCards []float64
	// Objective is the convergence curve (one value per outer loop).
	Objective []float64
	// Stats tallies the oracle traffic of generator training, including
	// the invalid-query rate (Stats.InvalidRate), how many samples were
	// skipped for lack of a label, and the oracle cache's hit/miss
	// counters when one was configured.
	Stats TrainerStats
	// CacheStats snapshots the oracle cache (nil when
	// Config.OracleCacheSize left it disabled).
	CacheStats *engine.CacheStats
	// FaultCounters snapshots the fault injector's tallies (nil when no
	// injector was configured).
	FaultCounters *faults.Counters
	// Metrics snapshots the telemetry registry at campaign end (nil when
	// Config.Telemetry carried no registry). On a registry private to
	// this campaign the pace_oracle_* counters agree exactly with Stats.
	Metrics *obs.Snapshot
	// TrainTime covers surrogate acquisition + generator training;
	// GenTime covers drawing the final poisoning workload; AttackTime
	// covers the target's incremental update on it.
	TrainTime, GenTime, AttackTime time.Duration
}

// Run executes the complete PACE attack with explicitly positional
// arguments.
//
// Deprecated: Run predates the Campaign API and survives only as a thin
// wrapper for existing callers. New code should fill a Campaign and call
// its Run method — same pipeline, named fields, and a Seed instead of a
// caller-managed *rand.Rand.
func Run(ctx context.Context, target ce.Target, wgen *workload.Generator, test, history []workload.Labeled,
	cfg Config, rng *rand.Rand) (*Result, error) {
	return runCampaign(ctx, target, wgen, test, history, cfg, rng)
}

// runCampaign is the shared pipeline body behind Campaign.Run and the
// deprecated positional Run: speculate and train a surrogate (§4),
// adversarially train the poisoning generator with the anomaly detector
// (§5–6), generate the poisoning workload, and execute it against the
// target (§3.4).
//
// The campaign honors ctx (deadline or cancellation) and survives an
// unreliable target: calls are retried per cfg.Retry, failed
// speculation degrades to the Linear surrogate, unlabeled oracle calls
// are skipped, and — when cfg.CheckpointSink is set — training is
// checkpointed so a killed campaign can resume via cfg.Resume. On error
// the returned Result carries whatever state was reached (it is non-nil
// whenever training started).
func runCampaign(ctx context.Context, target ce.Target, wgen *workload.Generator, test, history []workload.Labeled,
	cfg Config, rng *rand.Rand) (res *Result, err error) {
	cfg = cfg.withDefaults()
	res = &Result{}
	ctx = obs.NewContext(ctx, cfg.Telemetry)
	reg := cfg.Telemetry.Registry()
	ctx, span := obs.StartSpan(ctx, "campaign",
		obs.Int("workers", cfg.Workers),
		obs.Int("num_poison", cfg.NumPoison))
	defer span.End()
	if reg != nil {
		defer func() {
			s := reg.Snapshot()
			res.Metrics = &s
		}()
	}
	pool := engine.PoolFor(cfg.Workers).Instrument(reg)
	cfg.Breaker.Instrument(reg)
	cfg.Faults.Instrument(reg)
	if cfg.Speculation.Workers == 0 {
		cfg.Speculation.Workers = cfg.Workers
	}
	oracle := EngineOracle(wgen)
	if cfg.Faults != nil {
		target = cfg.Faults.WrapTarget(target)
		oracle = Oracle(cfg.Faults.WrapOracle(oracle))
	}
	if cfg.OracleCacheSize != 0 {
		// The cache sits on the attacker's side of the unreliable
		// channel, above fault injection: a memoized label costs no
		// round trip and cannot fail.
		cache := engine.NewOracleCache(engine.Labeler(oracle), cfg.OracleCacheSize,
			func(e error) bool { return errors.Is(e, ErrInvalidQuery) }).Instrument(reg)
		oracle = Oracle(cache.Label)
		defer func() {
			s := cache.Stats()
			res.Stats.CacheHits, res.Stats.CacheMisses = s.Hits, s.Misses
			res.CacheStats = &s
		}()
	}

	trainStart := time.Now()

	// Stage (a): surrogate acquisition (skipped on resume — the
	// checkpoint carries the trained surrogate).
	if cfg.Resume != nil {
		res.SpeculatedType = cfg.Resume.Type
		model := ce.New(cfg.Resume.Type, wgen.DS.Meta, cfg.Surrogate.HP, rng)
		res.Surrogate = ce.NewEstimator(model, cfg.Surrogate.Train, rng)
	} else {
		if cfg.ForceType != nil {
			res.SpeculatedType = *cfg.ForceType
		} else {
			spec, err := surrogate.Speculate(ctx, target, wgen, cfg.Speculation, rng)
			switch {
			case err == nil:
				res.SpeculatedType = spec.Type
				res.Similarities = spec.Similarities
				res.FailedProbes = spec.FailedProbes
			case ctx.Err() != nil:
				return res, ctx.Err()
			default:
				// Graceful degradation: the target is too unreliable to
				// fingerprint, so attack through the most robust
				// surrogate type instead of giving up.
				res.SpeculatedType = ce.Linear
				res.SpeculationFellBack = true
			}
		}
		sur, err := surrogate.Train(ctx, target, res.SpeculatedType, wgen, cfg.Surrogate, rng)
		if err != nil {
			return res, fmt.Errorf("core: surrogate training failed: %w", err)
		}
		res.Surrogate = sur
	}

	// Stage (b): generator (+ detector) training.
	gen := generator.New(wgen.DS.Meta, wgen.DS.Joinable, cfg.Generator, rng)
	var det *detector.Detector
	if !cfg.DisableDetector {
		_, dspan := obs.StartSpan(ctx, "detector_train", obs.Int("history", len(history)))
		det = detector.New(wgen.DS.Meta.Dim(), cfg.Detector, rng)
		hEnc := encodings(history, wgen)
		det.Train(hEnc)
		if cfg.DetectorPercentile > 0 {
			det.CalibrateThreshold(hEnc, cfg.DetectorPercentile)
		}
		dspan.End()
	}
	testSamples := MakeTestSamples(res.Surrogate, test)
	trainer := NewTrainer(res.Surrogate, gen, det, oracle, testSamples, cfg.Trainer, rng).Instrument(reg)
	trainer.Retry = cfg.Retry
	trainer.Breaker = cfg.Breaker
	trainer.Pool = pool
	trainer.CheckpointEvery = cfg.CheckpointEvery
	trainer.CheckpointSink = cfg.CheckpointSink
	if cfg.Resume != nil {
		if err := trainer.Resume(cfg.Resume); err != nil {
			return res, err
		}
	}
	var trainErr error
	switch cfg.Algorithm {
	case Basic:
		trainErr = trainer.TrainBasic(ctx)
	default:
		trainErr = trainer.TrainAccelerated(ctx)
	}
	res.Objective = trainer.Objective
	res.TrainTime = time.Since(trainStart)
	if trainErr != nil {
		res.Stats = trainer.Stats()
		res.FaultCounters = faultCounters(cfg)
		return res, trainErr
	}

	// Stage (c): attack.
	genStart := time.Now()
	res.Poison, res.PoisonCards = trainer.GeneratePoison(ctx, cfg.NumPoison)
	res.GenTime = time.Since(genStart)
	res.Stats = trainer.Stats()

	attackStart := time.Now()
	ectx, espan := obs.StartSpan(ctx, "poison_execute", obs.Int("queries", len(res.Poison)))
	// The poison batch is the campaign's payoff — one transient outage
	// (a shed queue, a backend failing over) must not void the whole
	// run. Retried as ONE call, never chunk-by-chunk: the victim
	// shuffles its whole sample set per retraining epoch, so partial
	// re-sends are not equivalent to the original batch. Retry-After
	// hints from the server override the backoff schedule inside Do.
	execPol := cfg.Retry
	if execPol.Retryable == nil {
		execPol.Retryable = RetryableOracleError
	}
	_, execErr := execPol.Do(ectx, nil, func(c context.Context) error {
		return target.ExecuteWorkload(c, res.Poison, res.PoisonCards)
	})
	espan.End()
	res.AttackTime = time.Since(attackStart)
	res.FaultCounters = faultCounters(cfg)
	if execErr != nil {
		return res, fmt.Errorf("core: poison execution failed: %w", execErr)
	}
	obs.From(ctx).Logger().Info("campaign done",
		"type", res.SpeculatedType.String(),
		"poison", len(res.Poison),
		"oracle_calls", res.Stats.OracleCalls,
		"train_time", res.TrainTime)
	return res, nil
}

func faultCounters(cfg Config) *faults.Counters {
	if cfg.Faults == nil {
		return nil
	}
	c := cfg.Faults.Counters()
	return &c
}

// EngineOracle adapts the workload generator's exact engine into the
// attacker's COUNT(*) oracle. Engine rejections surface as
// ErrInvalidQuery — an invalid query has no cardinality, and conflating
// it with an empty result would feed the trainer fake zero labels.
func EngineOracle(wgen *workload.Generator) Oracle {
	return func(ctx context.Context, q *query.Query) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		card, err := wgen.Eng.Cardinality(q)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrInvalidQuery, err)
		}
		return card, nil
	}
}

// MakeTestSamples normalizes a labeled test workload against the
// surrogate's normalizer.
func MakeTestSamples(sur *ce.Estimator, test []workload.Labeled) []ce.Sample {
	return sur.MakeSamples(workload.Queries(test), cardsOf(test))
}

func encodings(w []workload.Labeled, wgen *workload.Generator) [][]float64 {
	out := make([][]float64, len(w))
	for i, l := range w {
		out[i] = l.Q.Encode(wgen.DS.Meta)
	}
	return out
}

// CraftPoison produces a poisoning workload of size n with the given
// baseline method against a trained surrogate. PACE itself must go
// through Run (it needs the full trainer); passing PACE here panics.
func CraftPoison(ctx context.Context, m Method, sur *ce.Estimator, wgen *workload.Generator,
	genCfg generator.Config, n int, rng *rand.Rand) ([]*query.Query, []float64) {
	oracle := EngineOracle(wgen)
	switch m {
	case Random:
		return RandomPoison(wgen, n)
	case LbS:
		return LbSPoison(sur, wgen, n)
	case Greedy:
		return GreedyPoison(ctx, sur, wgen, oracle, n, rng)
	case LbG:
		gen := generator.New(wgen.DS.Meta, wgen.DS.Joinable, genCfg, rng)
		return LbGPoison(ctx, sur, gen, oracle, LbGConfig{}, n, rng)
	default:
		panic(fmt.Sprintf("core: CraftPoison does not implement %v", m))
	}
}
