// Package core is the PACE attack system itself (§3, §5, §6): training a
// poisoning-query generator against a white-box surrogate CE model so
// that, when the generated queries are executed and the target model
// incrementally retrains on them, its estimation error on a test workload
// is maximized.
//
// The bivariate optimization of Eq. 10 couples the generator parameters
// with the surrogate parameters that change under the poisoning update of
// Eq. 9. The gradient of the post-update test loss with respect to a
// poisoning query requires the mixed second derivative
// ∇²_{v,θ} ℓ(θ; v, y); it is computed here with a central-difference
// Hessian-vector product needing only first-order machinery:
//
//	∇_v L_test(θ−η∇_θℓ) ≈ −η·[∇_v ℓ(θ+δu; v) − ∇_v ℓ(θ−δu; v)]·‖g‖/(2δ)
//
// where g = ∇_θ L_test at the updated parameters and u = g/‖g‖.
package core

import (
	"math/rand"

	"pace/internal/ce"
	"pace/internal/detector"
	"pace/internal/generator"
	"pace/internal/nn"
	"pace/internal/query"
)

// Oracle is the attacker's COUNT(*) capability: the true cardinality of
// any crafted query (§2.2, adversary's capacity).
type Oracle func(*query.Query) float64

// TrainerConfig controls poisoning-generator training.
type TrainerConfig struct {
	// Batch is the number of poisoning queries generated per inner
	// iteration (default 64).
	Batch int
	// InnerIters is n, the inner-loop length of Algorithm 1 (default 20).
	InnerIters int
	// OuterIters is the number of outer loops (default 20, the paper's
	// setting for both algorithms).
	OuterIters int
	// TestBatch bounds how many test samples are used per objective
	// gradient (default 64; 0 < TestBatch ≤ len(test)).
	TestBatch int
	// Delta is the finite-difference step of the Hessian-vector product
	// (default 1e-3).
	Delta float64
	// DetectorWeight is λ, the relative weight of the anomaly detector's
	// reconstruction gradient against the attack gradient (default 0.5).
	DetectorWeight float64
	// ValidityWeight is the weight of the widening gradient applied to
	// zero-cardinality samples (default 1). Empty queries are eliminated
	// from the target's update (§2.1), so they poison nothing; the most
	// damaging queries sit just above the empty cliff (tiny but nonzero
	// cardinality), and this signal keeps the generator from falling
	// off it.
	ValidityWeight float64
	// InferenceWeight is γ, the weight of the inference-loss-ascent
	// component ∇_v ℓ(θ_i; v, y) mixed into the attack gradient
	// (default 0.5). The hypergradient alone vanishes wherever the
	// surrogate already fits the generated queries (θ′ ≈ θ ⇒ no
	// post-update signal), stalling training; queries the current model
	// mispredicts are the raw material poisoning needs, and this term
	// supplies a nonzero direction toward them.
	InferenceWeight float64
	// BasicGenSteps is m, the per-outer-loop generator steps of the
	// basic algorithm (default 20).
	BasicGenSteps int
	// DisableHypergradient drops the bivariate-optimization term,
	// leaving only the inference-ascent and validity signals — the
	// ablation that reduces PACE to Lb-G-with-extras.
	DisableHypergradient bool
	// Patience enables convergence-based early stopping: training ends
	// when the objective has not improved for Patience consecutive
	// outer loops (the paper's "stop training until convergence").
	// 0 disables early stopping (run all OuterIters).
	Patience int
}

// weightOf treats negative configured weights as disabled (0); zero was
// already replaced by the default.
func weightOf(w float64) float64 {
	if w < 0 {
		return 0
	}
	return w
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.Batch == 0 {
		c.Batch = 64
	}
	if c.InnerIters == 0 {
		c.InnerIters = 20
	}
	if c.OuterIters == 0 {
		c.OuterIters = 20
	}
	if c.TestBatch == 0 {
		c.TestBatch = 64
	}
	if c.Delta == 0 {
		c.Delta = 1e-3
	}
	if c.DetectorWeight == 0 {
		c.DetectorWeight = 0.5
	}
	if c.ValidityWeight == 0 {
		c.ValidityWeight = 1
	}
	if c.InferenceWeight == 0 {
		c.InferenceWeight = 0.5
	}
	if c.BasicGenSteps == 0 {
		c.BasicGenSteps = 20
	}
	return c
}

// Trainer optimizes a poisoning generator against a surrogate model.
type Trainer struct {
	Sur    *ce.Estimator
	Gen    *generator.Generator
	Det    *detector.Detector // nil disables the confrontation of §6.2
	Oracle Oracle
	Test   []ce.Sample
	Cfg    TrainerConfig

	// Objective records the post-update test loss at the end of every
	// outer loop — the convergence curve of Fig. 15 (as the generator's
	// loss −L_test, it declines; as the objective, it rises).
	Objective []float64

	rng *rand.Rand
	// evalSeed fixes the noise used by objectiveValue so the recorded
	// convergence curve reflects generator progress, not batch noise.
	evalSeed int64
}

// NewTrainer assembles a trainer. det may be nil (PACE-Without Detector).
func NewTrainer(sur *ce.Estimator, gen *generator.Generator, det *detector.Detector,
	oracle Oracle, test []ce.Sample, cfg TrainerConfig, rng *rand.Rand) *Trainer {
	return &Trainer{
		Sur: sur, Gen: gen, Det: det,
		Oracle: oracle, Test: test,
		Cfg:      cfg.withDefaults(),
		rng:      rng,
		evalSeed: rng.Int63(),
	}
}

// label turns generated samples into CE training samples using the
// oracle; zero-cardinality queries yield ok=false (the target filters
// them out of its update, so they carry no poisoning gradient).
func (t *Trainer) label(batch []*generator.Sample) ([]ce.Sample, []bool) {
	samples := make([]ce.Sample, len(batch))
	ok := make([]bool, len(batch))
	for i, s := range batch {
		card := t.Oracle(s.Query)
		if card >= 1 {
			samples[i] = ce.Sample{V: s.V, Y: t.Sur.Norm.Norm(card)}
			ok[i] = true
		}
	}
	return samples, ok
}

// testBatch samples a minibatch of the test workload.
func (t *Trainer) testBatch() []ce.Sample {
	n := t.Cfg.TestBatch
	if n >= len(t.Test) {
		return t.Test
	}
	out := make([]ce.Sample, n)
	perm := t.rng.Perm(len(t.Test))
	for i := 0; i < n; i++ {
		out[i] = t.Test[perm[i]]
	}
	return out
}

// testLossAndGrad computes L_test = mean (f(v)−y)² over the batch and
// accumulates ∇_θ L_test, returned flattened. Parameter gradients are
// cleared afterwards.
func (t *Trainer) testLossAndGrad(batch []ce.Sample) (float64, []float64) {
	ps := t.Sur.M.Params()
	nn.ZeroGrads(ps)
	var loss float64
	for _, s := range batch {
		out := t.Sur.M.Forward(s.V)
		d := out - s.Y
		loss += d * d
		t.Sur.M.Backward(2 * d / float64(len(batch)))
	}
	g := nn.FlattenGrads(ps)
	nn.ZeroGrads(ps)
	return loss / float64(len(batch)), g
}

// inputGrads computes ∇_v ℓ(θ; v, y) for every valid poisoning sample at
// the surrogate's current parameters. Parameter gradients are cleared.
func (t *Trainer) inputGrads(samples []ce.Sample, ok []bool) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		if !ok[i] {
			continue
		}
		o := t.Sur.M.Forward(s.V)
		out[i] = t.Sur.M.Backward(2 * (o - s.Y))
	}
	nn.ZeroGrads(t.Sur.M.Params())
	return out
}

// attackGrads computes the hypergradient dL_test(θ')/dv for every valid
// sample via the finite-difference HVP, where θ' is the surrogate after
// one Eq. 9 step on the batch. The surrogate is restored to its entry
// parameters before returning.
func (t *Trainer) attackGrads(samples []ce.Sample, ok []bool) [][]float64 {
	ps := t.Sur.M.Params()
	snap := nn.TakeSnapshot(ps)

	// One-step lookahead θ → θ′, then g = ∇_θ L_test(θ′).
	valid := filterSamples(samples, ok)
	if len(valid) == 0 {
		return make([][]float64, len(samples))
	}
	t.Sur.UpdateStep(valid)
	_, g := t.testLossAndGrad(t.testBatch())
	snap.Restore(ps)

	gNorm := nn.Norm(g)
	if gNorm == 0 {
		return make([][]float64, len(samples))
	}
	u := nn.CopyOf(g)
	nn.Scale(u, 1/gNorm)

	delta := t.Cfg.Delta
	nn.AddToParams(ps, delta, u)
	plus := t.inputGrads(samples, ok)
	snap.Restore(ps)
	nn.AddToParams(ps, -delta, u)
	minus := t.inputGrads(samples, ok)
	snap.Restore(ps)

	// dL_test/dv_j = −(η/N)·∇_v[∇_θℓᵀg] with the mixed derivative from
	// the central difference. The sign makes this the ASCENT direction
	// for the objective.
	eta := t.Sur.Cfg.UpdateLR
	coef := -eta / float64(len(valid)) * gNorm / (2 * delta)
	out := make([][]float64, len(samples))
	for i := range samples {
		if !ok[i] {
			continue
		}
		dv := make([]float64, len(plus[i]))
		for j := range dv {
			dv[j] = coef * (plus[i][j] - minus[i][j])
		}
		out[i] = dv
	}
	return out
}

func filterSamples(samples []ce.Sample, ok []bool) []ce.Sample {
	var out []ce.Sample
	for i := range samples {
		if ok[i] {
			out = append(out, samples[i])
		}
	}
	return out
}

// generatorStep applies one generator update from the attack gradients
// (ascent on the objective), the inference-loss-ascent component, and —
// when a detector is present — the reconstruction-loss confrontation on
// abnormal samples (Algorithm 1 lines 13–15). Each signal is normalized
// to comparable scale before weighting, so the weights are interpretable.
func (t *Trainer) generatorStep(batch []*generator.Sample, ok []bool, attack, inference [][]float64) {
	attackScale := batchScale(attack)
	infScale := batchScale(inference)
	n := 0
	for i, s := range batch {
		dV := make([]float64, len(s.V))
		if !ok[i] {
			// Zero-cardinality sample: pull it back over the empty
			// cliff by widening its predicates (lower the lower
			// bounds, raise the upper bounds).
			t.addWideningGrad(s, dV)
		} else if attack[i] != nil {
			// Adam minimizes; feed −ascent to maximize the objective.
			nn.AddScaled(dV, -attackScale, attack[i])
		}
		if inference != nil && inference[i] != nil {
			nn.AddScaled(dV, -weightOf(t.Cfg.InferenceWeight)*infScale, inference[i])
		}
		if t.Det != nil {
			if err, dRec := t.Det.ReconGrad(s.V); err > t.Det.Threshold() {
				recScale := sliceScale(dRec)
				nn.AddScaled(dV, weightOf(t.Cfg.DetectorWeight)*recScale, dRec)
			}
		}
		t.Gen.Backward(s, dV)
		n++
	}
	t.Gen.Step(n)
}

// addWideningGrad adds the validity-restoration gradient for an empty
// query: a minimization direction that decreases lower bounds and
// increases upper bounds of the joined tables' predicates, at unit scale
// times ValidityWeight.
func (t *Trainer) addWideningGrad(s *generator.Sample, dV []float64) {
	w := weightOf(t.Cfg.ValidityWeight)
	if w == 0 {
		return
	}
	nn.AddScaled(dV, w, wideningGrad(t.Gen.Meta(), s))
}

// batchScale returns 1/(mean per-sample gradient norm) so the attack
// signal enters the generator at unit scale.
func batchScale(grads [][]float64) float64 {
	var sum float64
	n := 0
	for _, g := range grads {
		if g != nil {
			sum += nn.Norm(g)
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

func sliceScale(g []float64) float64 {
	norm := nn.Norm(g)
	if norm == 0 {
		return 0
	}
	return 1 / norm
}

// TrainAccelerated runs the paper's accelerated algorithm (Fig. 5b,
// Algorithm 1): inside each outer loop the surrogate's poisoned
// parameters and the generator interact step by step — one Eq. 9 update
// of θ per generator step — eliminating the wasted updates of the basic
// algorithm. Each outer loop starts from the clean surrogate parameters
// (the attack itself always updates the clean target), and records the
// post-update objective value.
func (t *Trainer) TrainAccelerated() {
	ps := t.Sur.M.Params()
	clean := nn.TakeSnapshot(ps)
	best := t.newBestTracker()
	for outer := 0; outer < t.Cfg.OuterIters; outer++ {
		for inner := 0; inner < t.Cfg.InnerIters; inner++ {
			batch := t.Gen.Generate(t.Cfg.Batch, t.rng)
			t.Gen.TrainJoin(batch)
			samples, ok := t.label(batch)

			var attack [][]float64
			if t.Cfg.DisableHypergradient {
				attack = make([][]float64, len(samples))
			} else {
				attack = t.attackGrads(samples, ok)
			}
			inference := t.inputGrads(samples, ok)
			t.generatorStep(batch, ok, attack, inference)

			// Progressive update: advance the poisoned parameters one
			// step on the just-generated queries (line 20's θ_T is
			// reached after the inner loop).
			if valid := filterSamples(samples, ok); len(valid) > 0 {
				t.Sur.UpdateStep(valid)
			}
		}
		clean.Restore(ps)
		obj := t.objectiveValue()
		t.Objective = append(t.Objective, obj)
		best.consider(obj, len(t.Objective)-1)
		if t.converged(best) {
			break
		}
	}
	best.restore()
}

// converged reports whether the objective has gone Patience outer loops
// without improving on the best value.
func (t *Trainer) converged(best *bestTracker) bool {
	if t.Cfg.Patience <= 0 {
		return false
	}
	return len(t.Objective)-1-best.bestAt >= t.Cfg.Patience
}

// TrainBasic runs the basic algorithm (Fig. 5a): each outer loop first
// fully poisons the surrogate (T update steps) on the current generator's
// queries, then updates the generator for m steps against that FIXED
// poisoned model — maximizing the poisoned model's inference loss on the
// generated queries — before re-poisoning from scratch. The two variables
// never interact within a step, which is exactly the inefficiency §5.3
// describes.
func (t *Trainer) TrainBasic() {
	ps := t.Sur.M.Params()
	clean := nn.TakeSnapshot(ps)
	best := t.newBestTracker()
	for outer := 0; outer < t.Cfg.OuterIters; outer++ {
		// (1) Poison θ0 → θT with the current generator's queries.
		batch := t.Gen.Generate(t.Cfg.Batch, t.rng)
		t.Gen.TrainJoin(batch)
		samples, ok := t.label(batch)
		if valid := filterSamples(samples, ok); len(valid) > 0 {
			t.Sur.Update(valid)
		}

		// (2) Update the generator for m steps with θT held constant.
		for step := 0; step < t.Cfg.BasicGenSteps; step++ {
			b := t.Gen.Generate(t.Cfg.Batch, t.rng)
			t.Gen.TrainJoin(b)
			s, okB := t.label(b)
			grads := t.inputGrads(s, okB)
			// Ascent on the poisoned model's inference loss only —
			// the basic algorithm has no per-step coupling.
			t.generatorStep(b, okB, grads, nil)
		}

		clean.Restore(ps)
		obj := t.objectiveValue()
		t.Objective = append(t.Objective, obj)
		best.consider(obj, len(t.Objective)-1)
		if t.converged(best) {
			break
		}
	}
	best.restore()
}

// bestTracker keeps the generator snapshot with the highest objective
// seen at any outer-loop boundary. The bivariate optimization is noisy —
// the generator can wander past its best state — and the attacker is
// free to keep the strongest generator observed, so training ends by
// restoring it.
type bestTracker struct {
	gen    *generator.Generator
	obj    float64
	snap   *nn.Snapshot
	bestAt int // Objective index of the best value (-1: untrained baseline)
}

func (t *Trainer) newBestTracker() *bestTracker {
	b := &bestTracker{gen: t.Gen, obj: -1, bestAt: -1}
	// Baseline: the untrained generator, so training can never end
	// worse than it started.
	b.consider(t.objectiveValue(), -1)
	return b
}

func (b *bestTracker) params() []*nn.Param {
	return append(b.gen.Gj.Params(), b.gen.Params()...)
}

func (b *bestTracker) consider(obj float64, at int) {
	if b.snap == nil || obj > b.obj {
		b.obj = obj
		b.bestAt = at
		b.snap = nn.TakeSnapshot(b.params())
	}
}

func (b *bestTracker) restore() {
	if b.snap != nil {
		b.snap.Restore(b.params())
	}
}

// objectiveValue evaluates Eq. 10 for the current generator: poison the
// (clean) surrogate for the full T iterations with a batch drawn the way
// the real attack draws it (non-empty queries, resampled with fixed
// evaluation noise so the curve tracks generator progress, not batch
// noise) and return the test loss of the poisoned model. The surrogate is
// restored afterwards.
func (t *Trainer) objectiveValue() float64 {
	ps := t.Sur.M.Params()
	snap := nn.TakeSnapshot(ps)
	evalRng := rand.New(rand.NewSource(t.evalSeed))
	var valid []ce.Sample
	for attempt := 0; len(valid) < t.Cfg.Batch && attempt < 20*t.Cfg.Batch; attempt++ {
		s := t.Gen.GenerateOne(evalRng)
		if card := t.Oracle(s.Query); card >= 1 {
			valid = append(valid, ce.Sample{V: s.V, Y: t.Sur.Norm.Norm(card)})
		}
	}
	if len(valid) > 0 {
		t.Sur.Update(valid)
	}
	loss, _ := t.testLossAndGrad(t.Test)
	snap.Restore(ps)
	return loss
}

// GeneratePoison draws the final poisoning workload from the trained
// generator, labeled with the oracle (the attacker executes the queries,
// observing their true counts). The attacker holds the COUNT(*) oracle,
// so empty queries — which the target eliminates from its update and
// which therefore poison nothing — are resampled away (bounded attempts;
// any shortfall is filled with the empty draws rather than failing).
func (t *Trainer) GeneratePoison(n int) ([]*query.Query, []float64) {
	qs := make([]*query.Query, 0, n)
	cards := make([]float64, 0, n)
	var spareQ []*query.Query
	var spareC []float64
	for attempt := 0; len(qs) < n && attempt < 20*n; attempt++ {
		s := t.Gen.GenerateOne(t.rng)
		card := t.Oracle(s.Query)
		if card >= 1 {
			qs = append(qs, s.Query)
			cards = append(cards, card)
		} else if len(spareQ) < n {
			spareQ = append(spareQ, s.Query)
			spareC = append(spareC, card)
		}
	}
	for i := 0; len(qs) < n && i < len(spareQ); i++ {
		qs = append(qs, spareQ[i])
		cards = append(cards, spareC[i])
	}
	return qs, cards
}
