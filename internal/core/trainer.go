// Package core is the PACE attack system itself (§3, §5, §6): training a
// poisoning-query generator against a white-box surrogate CE model so
// that, when the generated queries are executed and the target model
// incrementally retrains on them, its estimation error on a test workload
// is maximized.
//
// The bivariate optimization of Eq. 10 couples the generator parameters
// with the surrogate parameters that change under the poisoning update of
// Eq. 9. The gradient of the post-update test loss with respect to a
// poisoning query requires the mixed second derivative
// ∇²_{v,θ} ℓ(θ; v, y); it is computed here with a central-difference
// Hessian-vector product needing only first-order machinery:
//
//	∇_v L_test(θ−η∇_θℓ) ≈ −η·[∇_v ℓ(θ+δu; v) − ∇_v ℓ(θ−δu; v)]·‖g‖/(2δ)
//
// where g = ∇_θ L_test at the updated parameters and u = g/‖g‖.
package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/detector"
	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/nn"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/resilience"
)

// Oracle is the attacker's COUNT(*) capability: the true cardinality of
// any crafted query (§2.2, adversary's capacity). Like the black-box
// target it is reached remotely, so it can fail: ErrInvalidQuery marks a
// query the engine rejected (permanently — retrying is pointless), any
// other error a transient failure of the channel.
type Oracle func(ctx context.Context, q *query.Query) (float64, error)

// ErrInvalidQuery marks a query the COUNT(*) engine rejected as
// malformed. It is distinct from an empty result: an invalid query has
// no cardinality at all, and must never be fed to the trainer as label
// zero. It aliases ce.ErrInvalidQuery — the same sentinel every target
// transport (in-process, fault-injected, remote HTTP) returns — so
// errors.Is matches across the whole stack.
var ErrInvalidQuery = ce.ErrInvalidQuery

// RetryableOracleError is the default retry classifier for oracle and
// target calls: invalid queries and exhausted budgets are permanent,
// everything else is worth retrying.
func RetryableOracleError(err error) bool {
	return !errors.Is(err, ErrInvalidQuery) && !errors.Is(err, resilience.ErrBudgetExhausted)
}

// TrainerConfig controls poisoning-generator training.
type TrainerConfig struct {
	// Batch is the number of poisoning queries generated per inner
	// iteration (default 64).
	Batch int
	// InnerIters is n, the inner-loop length of Algorithm 1 (default 20).
	InnerIters int
	// OuterIters is the number of outer loops (default 20, the paper's
	// setting for both algorithms).
	OuterIters int
	// TestBatch bounds how many test samples are used per objective
	// gradient (default 64). Out-of-range values are clamped: negative
	// falls back to the default, larger than the test set uses the whole
	// test set.
	TestBatch int
	// Delta is the finite-difference step of the Hessian-vector product
	// (default 1e-3).
	Delta float64
	// DetectorWeight is λ, the relative weight of the anomaly detector's
	// reconstruction gradient against the attack gradient (default 0.5).
	DetectorWeight float64
	// ValidityWeight is the weight of the widening gradient applied to
	// zero-cardinality samples (default 1). Empty queries are eliminated
	// from the target's update (§2.1), so they poison nothing; the most
	// damaging queries sit just above the empty cliff (tiny but nonzero
	// cardinality), and this signal keeps the generator from falling
	// off it.
	ValidityWeight float64
	// InferenceWeight is γ, the weight of the inference-loss-ascent
	// component ∇_v ℓ(θ_i; v, y) mixed into the attack gradient
	// (default 0.5). The hypergradient alone vanishes wherever the
	// surrogate already fits the generated queries (θ′ ≈ θ ⇒ no
	// post-update signal), stalling training; queries the current model
	// mispredicts are the raw material poisoning needs, and this term
	// supplies a nonzero direction toward them.
	InferenceWeight float64
	// BasicGenSteps is m, the per-outer-loop generator steps of the
	// basic algorithm (default 20).
	BasicGenSteps int
	// DisableHypergradient drops the bivariate-optimization term,
	// leaving only the inference-ascent and validity signals — the
	// ablation that reduces PACE to Lb-G-with-extras.
	DisableHypergradient bool
	// Patience enables convergence-based early stopping: training ends
	// when the objective has not improved for Patience consecutive
	// outer loops (the paper's "stop training until convergence").
	// 0 disables early stopping (run all OuterIters).
	Patience int
}

// weightOf treats negative configured weights as disabled (0); zero was
// already replaced by the default.
func weightOf(w float64) float64 {
	if w < 0 {
		return 0
	}
	return w
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.InnerIters <= 0 {
		c.InnerIters = 20
	}
	if c.OuterIters <= 0 {
		c.OuterIters = 20
	}
	if c.TestBatch <= 0 {
		c.TestBatch = 64
	}
	if c.Delta == 0 {
		c.Delta = 1e-3
	}
	if c.DetectorWeight == 0 {
		c.DetectorWeight = 0.5
	}
	if c.ValidityWeight == 0 {
		c.ValidityWeight = 1
	}
	if c.InferenceWeight == 0 {
		c.InferenceWeight = 0.5
	}
	if c.BasicGenSteps <= 0 {
		c.BasicGenSteps = 20
	}
	return c
}

// TrainerStats is a snapshot of the oracle traffic and its failure
// modes over a training run — the observability half of the
// unreliable-target model. The live tallies are obs.Counter instruments
// (private to the trainer by default, rebound into a shared registry by
// Trainer.Instrument); read a snapshot with Trainer.Stats after
// training returns, when no workers are in flight.
type TrainerStats struct {
	// OracleCalls is the number of logical COUNT(*) calls (retries of
	// the same call are not double-counted here). Calls answered by the
	// oracle cache still count — the trainer cannot tell a memoized
	// label from a fresh one.
	OracleCalls int64
	// OracleInvalid counts calls rejected with ErrInvalidQuery.
	OracleInvalid int64
	// OracleFailed counts calls that failed for any other reason after
	// retries (transient faults, open breaker, exhausted budget).
	OracleFailed int64
	// OracleRetries counts the extra attempts spent recovering from
	// transient failures.
	OracleRetries int64
	// SkippedSamples counts generated queries that entered training
	// without a label (their oracle call failed): they are skipped, NOT
	// treated as empty results.
	SkippedSamples int64
	// Checkpoints counts checkpoints written through CheckpointSink.
	Checkpoints int64
	// CacheHits/CacheMisses mirror the oracle cache's counters when a
	// campaign ran with one (see Config.OracleCacheSize); both zero when
	// no cache was configured.
	CacheHits, CacheMisses int64
}

// InvalidRate is the fraction of oracle calls rejected as invalid.
func (s TrainerStats) InvalidRate() float64 {
	if s.OracleCalls == 0 {
		return 0
	}
	return float64(s.OracleInvalid) / float64(s.OracleCalls)
}

// Trainer optimizes a poisoning generator against a surrogate model.
type Trainer struct {
	Sur    *ce.Estimator
	Gen    *generator.Generator
	Det    *detector.Detector // nil disables the confrontation of §6.2
	Oracle Oracle
	Test   []ce.Sample
	Cfg    TrainerConfig

	// Retry absorbs transient oracle failures (zero value = defaults
	// with RetryableOracleError). Breaker, when set, gates every oracle
	// call and enforces the attacker's query budget.
	Retry   resilience.RetryPolicy
	Breaker *resilience.Breaker

	// Pool fans oracle labeling out across workers. nil runs serially.
	// Query generation stays serial (it consumes the loop RNG in a fixed
	// order) and labels land in per-index slots, so the training
	// trajectory is bit-identical at any worker count.
	Pool *engine.Pool

	// CheckpointEvery and CheckpointSink enable periodic checkpoints: a
	// snapshot of the full training state is passed to the sink after
	// every CheckpointEvery completed outer loops. A sink error aborts
	// training (the campaign would not be resumable past it).
	CheckpointEvery int
	CheckpointSink  func(*Checkpoint) error

	// Objective records the post-update test loss at the end of every
	// outer loop — the convergence curve of Fig. 15 (as the generator's
	// loss −L_test, it declines; as the objective, it rises).
	Objective []float64

	// met holds the live stats instruments; see Instrument and Stats.
	met trainerMetrics

	rng *rand.Rand
	// evalSeed fixes the noise used by objectiveValue so the recorded
	// convergence curve reflects generator progress, not batch noise.
	evalSeed int64
	// baseSeed derives each outer loop's private RNG. Every random draw
	// inside outer loop k comes from a stream seeded by (baseSeed, k),
	// so a run resumed from a loop-k checkpoint replays exactly the
	// draws the uninterrupted run would have made.
	baseSeed int64
	loopRng  *rand.Rand
	// callSeq numbers oracle calls; with baseSeed it derives each call's
	// private retry-jitter stream (see jitterRng).
	callSeq int64
	// startOuter and resume carry checkpoint state set by Resume.
	startOuter int
	resume     *Checkpoint
}

// trainerMetrics holds the trainer's live stats counters. By default
// they are standalone instruments private to one trainer; Instrument
// rebinds them to a shared registry and records the registry's current
// readings as a baseline, so Stats stays a per-trainer delta even when
// several campaigns share one registry. The single bookkeeping path —
// training code increments the handles, never a struct field — keeps
// TrainerStats and the registry in exact agreement.
type trainerMetrics struct {
	oracleCalls, oracleInvalid, oracleFailed   *obs.Counter
	oracleRetries, skippedSamples, checkpoints *obs.Counter
	// latency is bound only by Instrument: uninstrumented trainers skip
	// the per-call clock reads entirely.
	latency *obs.Histogram
	base    TrainerStats
}

func newTrainerMetrics() trainerMetrics {
	return trainerMetrics{
		oracleCalls:    &obs.Counter{},
		oracleInvalid:  &obs.Counter{},
		oracleFailed:   &obs.Counter{},
		oracleRetries:  &obs.Counter{},
		skippedSamples: &obs.Counter{},
		checkpoints:    &obs.Counter{},
	}
}

// read snapshots the raw handle values, without baseline subtraction.
func (m *trainerMetrics) read() TrainerStats {
	return TrainerStats{
		OracleCalls:    m.oracleCalls.Value(),
		OracleInvalid:  m.oracleInvalid.Value(),
		OracleFailed:   m.oracleFailed.Value(),
		OracleRetries:  m.oracleRetries.Value(),
		SkippedSamples: m.skippedSamples.Value(),
		Checkpoints:    m.checkpoints.Value(),
	}
}

// Instrument rebinds the trainer's stats counters to reg — the
// `pace_oracle_*_total`, `pace_samples_skipped_total` and
// `pace_checkpoints_total` families — and adds a
// `pace_oracle_latency_seconds` histogram over the resilient oracle
// path. Call before training; a nil registry is a no-op.
func (t *Trainer) Instrument(reg *obs.Registry) *Trainer {
	if reg == nil {
		return t
	}
	t.met.oracleCalls = reg.Counter("pace_oracle_calls_total")
	t.met.oracleInvalid = reg.Counter("pace_oracle_invalid_total")
	t.met.oracleFailed = reg.Counter("pace_oracle_failed_total")
	t.met.oracleRetries = reg.Counter("pace_oracle_retries_total")
	t.met.skippedSamples = reg.Counter("pace_samples_skipped_total")
	t.met.checkpoints = reg.Counter("pace_checkpoints_total")
	t.met.latency = reg.Histogram("pace_oracle_latency_seconds")
	t.met.base = t.met.read()
	return t
}

// Stats snapshots the oracle-traffic tallies this trainer accumulated
// (deltas against the registry baseline when Instrument rebound the
// counters to a shared registry). Read it after training returns, when
// no workers are in flight. CacheHits/CacheMisses are filled in by the
// campaign, which owns the cache.
func (t *Trainer) Stats() TrainerStats {
	s := t.met.read()
	b := t.met.base
	s.OracleCalls -= b.OracleCalls
	s.OracleInvalid -= b.OracleInvalid
	s.OracleFailed -= b.OracleFailed
	s.OracleRetries -= b.OracleRetries
	s.SkippedSamples -= b.SkippedSamples
	s.Checkpoints -= b.Checkpoints
	return s
}

// NewTrainer assembles a trainer. det may be nil (PACE-Without Detector).
func NewTrainer(sur *ce.Estimator, gen *generator.Generator, det *detector.Detector,
	oracle Oracle, test []ce.Sample, cfg TrainerConfig, rng *rand.Rand) *Trainer {
	cfg = cfg.withDefaults()
	if len(test) > 0 && cfg.TestBatch > len(test) {
		cfg.TestBatch = len(test)
	}
	return &Trainer{
		Sur: sur, Gen: gen, Det: det,
		Oracle: oracle, Test: test,
		Cfg:      cfg,
		met:      newTrainerMetrics(),
		rng:      rng,
		evalSeed: rng.Int63(),
		baseSeed: rng.Int63(),
	}
}

// stepRng is the RNG for draws inside a training loop: the per-outer-loop
// stream during training, the trainer's base RNG outside it.
func (t *Trainer) stepRng() *rand.Rand {
	if t.loopRng != nil {
		return t.loopRng
	}
	return t.rng
}

// outerRng builds outer loop k's private RNG stream from the base seed.
func (t *Trainer) outerRng(outer int) *rand.Rand {
	x := uint64(t.baseSeed) + uint64(outer+1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return rand.New(rand.NewSource(int64(x & 0x7fffffffffffffff)))
}

// jitterRng derives a private RNG stream for one oracle call's retry
// backoff jitter. Jitter shapes timing only — never a label — so these
// streams are free to depend on global call order; what matters is that
// concurrent callers never share a *rand.Rand.
func (t *Trainer) jitterRng() *rand.Rand {
	return engine.SplitRNG(t.baseSeed^0x6A09E667F3BCC909, atomic.AddInt64(&t.callSeq, 1))
}

// callOracle is the resilient oracle path: breaker admission, retries
// with backoff, and stats accounting. The error classes are: nil
// (labeled), ErrInvalidQuery (engine rejected the query), context errors
// (campaign is over), anything else (call lost after retries — the
// sample must be skipped, not zero-labeled). Safe for concurrent use:
// stats are atomic, the breaker locks internally, and jitter comes from
// a per-call stream.
func (t *Trainer) callOracle(ctx context.Context, q *query.Query) (float64, error) {
	t.met.oracleCalls.Inc()
	if h := t.met.latency; h != nil {
		start := time.Now()
		defer func() { h.Observe(time.Since(start).Seconds()) }()
	}
	if t.Breaker != nil {
		if err := t.Breaker.Allow(); err != nil {
			t.met.oracleFailed.Inc()
			return 0, err
		}
	}
	pol := t.Retry
	if pol.Retryable == nil {
		pol.Retryable = RetryableOracleError
	}
	var card float64
	attempts, err := pol.Do(ctx, t.jitterRng(), func(c context.Context) error {
		var e error
		card, e = t.Oracle(c, q)
		return e
	})
	if attempts > 1 {
		t.met.oracleRetries.Add(int64(attempts - 1))
	}
	if t.Breaker != nil {
		if err != nil && !errors.Is(err, ErrInvalidQuery) {
			t.Breaker.Record(err)
		} else {
			t.Breaker.Record(nil)
		}
	}
	if err != nil {
		if errors.Is(err, ErrInvalidQuery) {
			t.met.oracleInvalid.Inc()
		} else {
			t.met.oracleFailed.Inc()
		}
		return 0, err
	}
	return card, nil
}

// label turns generated samples into CE training samples using the
// oracle. Three outcomes per sample: labeled non-empty (ok), a real
// empty result (empty — the target filters those out of its update, so
// they carry no poisoning gradient but do get the widening signal), or
// unlabeled (the oracle call failed — the sample is skipped entirely).
// Only a done context is returned as an error.
//
// The oracle calls fan out across the trainer's pool; every label lands
// in its own index's slot and the verdicts are folded in serially
// afterwards, so the result is independent of worker count.
func (t *Trainer) label(ctx context.Context, batch []*generator.Sample) (samples []ce.Sample, ok, empty []bool, err error) {
	cards, errs := t.labelCards(ctx, batch)
	samples = make([]ce.Sample, len(batch))
	ok = make([]bool, len(batch))
	empty = make([]bool, len(batch))
	for i := range batch {
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, nil, nil, ctx.Err()
			}
			t.met.skippedSamples.Inc()
			continue
		}
		if cards[i] >= 1 {
			samples[i] = ce.Sample{V: batch[i].V, Y: t.Sur.Norm.Norm(cards[i])}
			ok[i] = true
		} else {
			empty[i] = true
		}
	}
	return samples, ok, empty, nil
}

// labelCards runs the oracle over the batch in parallel, returning raw
// cardinalities and errors in batch order. Every oracle label batch in
// the pipeline funnels through here, so this is where the `label_batch`
// span lives.
func (t *Trainer) labelCards(ctx context.Context, batch []*generator.Sample) ([]float64, []error) {
	lctx, span := obs.StartSpan(ctx, "label_batch", obs.Int("size", len(batch)))
	cards := make([]float64, len(batch))
	errs := make([]error, len(batch))
	t.Pool.ForEach(len(batch), func(i int) {
		cards[i], errs[i] = t.callOracle(lctx, batch[i].Query)
	})
	if span != nil {
		failed := 0
		for _, e := range errs {
			if e != nil {
				failed++
			}
		}
		span.SetAttr(obs.Int("failed", failed))
		span.End()
	}
	return cards, errs
}

// testBatch samples a minibatch of the test workload.
func (t *Trainer) testBatch() []ce.Sample {
	n := t.Cfg.TestBatch
	if n >= len(t.Test) {
		return t.Test
	}
	out := make([]ce.Sample, n)
	perm := t.stepRng().Perm(len(t.Test))
	for i := 0; i < n; i++ {
		out[i] = t.Test[perm[i]]
	}
	return out
}

// testLossAndGrad computes L_test = mean (f(v)−y)² over the batch and
// accumulates ∇_θ L_test, returned flattened. Parameter gradients are
// cleared afterwards.
func (t *Trainer) testLossAndGrad(batch []ce.Sample) (float64, []float64) {
	ps := t.Sur.M.Params()
	nn.ZeroGrads(ps)
	var loss float64
	for _, s := range batch {
		out := t.Sur.M.Forward(s.V)
		d := out - s.Y
		loss += d * d
		t.Sur.M.Backward(2 * d / float64(len(batch)))
	}
	g := nn.FlattenGrads(ps)
	nn.ZeroGrads(ps)
	return loss / float64(len(batch)), g
}

// inputGrads computes ∇_v ℓ(θ; v, y) for every valid poisoning sample at
// the surrogate's current parameters. Parameter gradients are cleared.
func (t *Trainer) inputGrads(samples []ce.Sample, ok []bool) [][]float64 {
	out := make([][]float64, len(samples))
	for i, s := range samples {
		if !ok[i] {
			continue
		}
		o := t.Sur.M.Forward(s.V)
		out[i] = t.Sur.M.Backward(2 * (o - s.Y))
	}
	nn.ZeroGrads(t.Sur.M.Params())
	return out
}

// attackGrads computes the hypergradient dL_test(θ')/dv for every valid
// sample via the finite-difference HVP, where θ' is the surrogate after
// one Eq. 9 step on the batch. The surrogate is restored to its entry
// parameters before returning.
func (t *Trainer) attackGrads(samples []ce.Sample, ok []bool) [][]float64 {
	ps := t.Sur.M.Params()
	snap := nn.TakeSnapshot(ps)

	// One-step lookahead θ → θ′, then g = ∇_θ L_test(θ′).
	valid := filterSamples(samples, ok)
	if len(valid) == 0 {
		return make([][]float64, len(samples))
	}
	t.Sur.UpdateStep(valid)
	_, g := t.testLossAndGrad(t.testBatch())
	snap.Restore(ps)

	gNorm := nn.Norm(g)
	if gNorm == 0 {
		return make([][]float64, len(samples))
	}
	u := nn.CopyOf(g)
	nn.Scale(u, 1/gNorm)

	delta := t.Cfg.Delta
	nn.AddToParams(ps, delta, u)
	plus := t.inputGrads(samples, ok)
	snap.Restore(ps)
	nn.AddToParams(ps, -delta, u)
	minus := t.inputGrads(samples, ok)
	snap.Restore(ps)

	// dL_test/dv_j = −(η/N)·∇_v[∇_θℓᵀg] with the mixed derivative from
	// the central difference. The sign makes this the ASCENT direction
	// for the objective.
	eta := t.Sur.Cfg.UpdateLR
	coef := -eta / float64(len(valid)) * gNorm / (2 * delta)
	out := make([][]float64, len(samples))
	for i := range samples {
		if !ok[i] {
			continue
		}
		dv := make([]float64, len(plus[i]))
		for j := range dv {
			dv[j] = coef * (plus[i][j] - minus[i][j])
		}
		out[i] = dv
	}
	return out
}

func filterSamples(samples []ce.Sample, ok []bool) []ce.Sample {
	var out []ce.Sample
	for i := range samples {
		if ok[i] {
			out = append(out, samples[i])
		}
	}
	return out
}

// generatorStep applies one generator update from the attack gradients
// (ascent on the objective), the inference-loss-ascent component, and —
// when a detector is present — the reconstruction-loss confrontation on
// abnormal samples (Algorithm 1 lines 13–15). Each signal is normalized
// to comparable scale before weighting, so the weights are interpretable.
// Samples that are neither valid nor confirmed empty (their label was
// lost to an oracle failure) contribute nothing.
func (t *Trainer) generatorStep(batch []*generator.Sample, ok, empty []bool, attack, inference [][]float64) {
	attackScale := batchScale(attack)
	infScale := batchScale(inference)
	n := 0
	for i, s := range batch {
		dV := make([]float64, len(s.V))
		if !ok[i] {
			if empty == nil || empty[i] {
				// Zero-cardinality sample: pull it back over the empty
				// cliff by widening its predicates (lower the lower
				// bounds, raise the upper bounds).
				t.addWideningGrad(s, dV)
			}
			// Unlabeled sample: nothing is known about it; no signal.
		} else if attack[i] != nil {
			// Adam minimizes; feed −ascent to maximize the objective.
			nn.AddScaled(dV, -attackScale, attack[i])
		}
		if inference != nil && inference[i] != nil {
			nn.AddScaled(dV, -weightOf(t.Cfg.InferenceWeight)*infScale, inference[i])
		}
		if t.Det != nil {
			if err, dRec := t.Det.ReconGrad(s.V); err > t.Det.Threshold() {
				recScale := sliceScale(dRec)
				nn.AddScaled(dV, weightOf(t.Cfg.DetectorWeight)*recScale, dRec)
			}
		}
		t.Gen.Backward(s, dV)
		n++
	}
	t.Gen.Step(n)
}

// addWideningGrad adds the validity-restoration gradient for an empty
// query: a minimization direction that decreases lower bounds and
// increases upper bounds of the joined tables' predicates, at unit scale
// times ValidityWeight.
func (t *Trainer) addWideningGrad(s *generator.Sample, dV []float64) {
	w := weightOf(t.Cfg.ValidityWeight)
	if w == 0 {
		return
	}
	nn.AddScaled(dV, w, wideningGrad(t.Gen.Meta(), s))
}

// batchScale returns 1/(mean per-sample gradient norm) so the attack
// signal enters the generator at unit scale.
func batchScale(grads [][]float64) float64 {
	var sum float64
	n := 0
	for _, g := range grads {
		if g != nil {
			sum += nn.Norm(g)
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return float64(n) / sum
}

func sliceScale(g []float64) float64 {
	norm := nn.Norm(g)
	if norm == 0 {
		return 0
	}
	return 1 / norm
}

// TrainAccelerated runs the paper's accelerated algorithm (Fig. 5b,
// Algorithm 1): inside each outer loop the surrogate's poisoned
// parameters and the generator interact step by step — one Eq. 9 update
// of θ per generator step — eliminating the wasted updates of the basic
// algorithm. Each outer loop starts from the clean surrogate parameters
// (the attack itself always updates the clean target), and records the
// post-update objective value.
//
// The run honors ctx: on cancellation the surrogate is restored to its
// clean parameters and ctx's error is returned; a campaign checkpointed
// through CheckpointSink can later resume from the last completed outer
// loop (see Resume) and replay the remaining loops exactly.
func (t *Trainer) TrainAccelerated(ctx context.Context) error {
	return t.train(ctx, AlgoAccelerated)
}

// TrainBasic runs the basic algorithm (Fig. 5a): each outer loop first
// fully poisons the surrogate (T update steps) on the current generator's
// queries, then updates the generator for m steps against that FIXED
// poisoned model — maximizing the poisoned model's inference loss on the
// generated queries — before re-poisoning from scratch. The two variables
// never interact within a step, which is exactly the inefficiency §5.3
// describes. Cancellation and checkpointing behave as in TrainAccelerated.
func (t *Trainer) TrainBasic(ctx context.Context) error {
	return t.train(ctx, AlgoBasic)
}

func (t *Trainer) train(ctx context.Context, algo string) error {
	ctx, span := obs.StartSpan(ctx, "generator_train",
		obs.String("algo", algo), obs.Int("outer_iters", t.Cfg.OuterIters))
	defer span.End()
	ps := t.Sur.M.Params()
	clean := nn.TakeSnapshot(ps)
	best, err := t.newBestTracker(ctx)
	if err != nil {
		return err
	}
	for outer := t.startOuter; outer < t.Cfg.OuterIters; outer++ {
		octx, ospan := obs.StartSpan(ctx, "outer_loop", obs.Int("outer", outer))
		t.loopRng = t.outerRng(outer)
		var err error
		if algo == AlgoAccelerated {
			err = t.acceleratedLoop(octx)
		} else {
			err = t.basicLoop(octx)
		}
		if err != nil {
			t.loopRng = nil
			clean.Restore(ps)
			ospan.End()
			return err
		}

		clean.Restore(ps)
		obj, err := t.objectiveValue(octx)
		t.loopRng = nil
		if err != nil {
			ospan.End()
			return err
		}
		t.Objective = append(t.Objective, obj)
		ospan.SetAttr(obs.Float("objective", obj))
		best.consider(obj, len(t.Objective)-1)
		err = t.maybeCheckpoint(octx, outer+1, algo, best)
		ospan.End()
		if err != nil {
			return err
		}
		if t.converged(best) {
			obs.From(ctx).Logger().Info("generator training converged",
				"outer", outer, "best_objective", best.obj)
			break
		}
	}
	best.restore()
	return nil
}

// acceleratedLoop is one outer loop of Algorithm 1.
func (t *Trainer) acceleratedLoop(ctx context.Context) error {
	for inner := 0; inner < t.Cfg.InnerIters; inner++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := t.Gen.Generate(t.Cfg.Batch, t.stepRng())
		t.Gen.TrainJoin(batch)
		samples, ok, empty, err := t.label(ctx, batch)
		if err != nil {
			return err
		}

		var attack [][]float64
		if t.Cfg.DisableHypergradient {
			attack = make([][]float64, len(samples))
		} else {
			attack = t.attackGrads(samples, ok)
		}
		inference := t.inputGrads(samples, ok)
		t.generatorStep(batch, ok, empty, attack, inference)

		// Progressive update: advance the poisoned parameters one
		// step on the just-generated queries (line 20's θ_T is
		// reached after the inner loop).
		if valid := filterSamples(samples, ok); len(valid) > 0 {
			t.Sur.UpdateStep(valid)
		}
	}
	return nil
}

// basicLoop is one outer loop of the basic algorithm.
func (t *Trainer) basicLoop(ctx context.Context) error {
	// (1) Poison θ0 → θT with the current generator's queries.
	batch := t.Gen.Generate(t.Cfg.Batch, t.stepRng())
	t.Gen.TrainJoin(batch)
	samples, ok, _, err := t.label(ctx, batch)
	if err != nil {
		return err
	}
	if valid := filterSamples(samples, ok); len(valid) > 0 {
		t.Sur.Update(valid)
	}

	// (2) Update the generator for m steps with θT held constant.
	for step := 0; step < t.Cfg.BasicGenSteps; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := t.Gen.Generate(t.Cfg.Batch, t.stepRng())
		t.Gen.TrainJoin(b)
		s, okB, emptyB, err := t.label(ctx, b)
		if err != nil {
			return err
		}
		grads := t.inputGrads(s, okB)
		// Ascent on the poisoned model's inference loss only —
		// the basic algorithm has no per-step coupling.
		t.generatorStep(b, okB, emptyB, grads, nil)
	}
	return nil
}

// converged reports whether the objective has gone Patience outer loops
// without improving on the best value.
func (t *Trainer) converged(best *bestTracker) bool {
	if t.Cfg.Patience <= 0 {
		return false
	}
	return len(t.Objective)-1-best.bestAt >= t.Cfg.Patience
}

// bestTracker keeps the generator snapshot with the highest objective
// seen at any outer-loop boundary. The bivariate optimization is noisy —
// the generator can wander past its best state — and the attacker is
// free to keep the strongest generator observed, so training ends by
// restoring it.
type bestTracker struct {
	gen    *generator.Generator
	obj    float64
	snap   *nn.Snapshot
	bestAt int // Objective index of the best value (-1: untrained baseline)
}

func (t *Trainer) newBestTracker(ctx context.Context) (*bestTracker, error) {
	b := &bestTracker{gen: t.Gen, obj: -1, bestAt: -1}
	if cp := t.resume; cp != nil && len(cp.BestGen) > 0 {
		// Rebuild the tracked best from the checkpoint without a fresh
		// baseline evaluation (the resumed curve already contains it).
		all := t.Gen.AllParams()
		cur := nn.TakeSnapshot(all)
		if err := nn.LoadParams(all, cp.BestGen); err != nil {
			return nil, err
		}
		b.snap = nn.TakeSnapshot(all)
		cur.Restore(all)
		b.obj = cp.BestObj
		b.bestAt = cp.BestAt
		return b, nil
	}
	// Baseline: the untrained generator, so training can never end
	// worse than it started.
	obj, err := t.objectiveValue(ctx)
	if err != nil {
		return nil, err
	}
	b.consider(obj, -1)
	return b, nil
}

func (b *bestTracker) params() []*nn.Param {
	return b.gen.AllParams()
}

func (b *bestTracker) consider(obj float64, at int) {
	if b.snap == nil || obj > b.obj {
		b.obj = obj
		b.bestAt = at
		b.snap = nn.TakeSnapshot(b.params())
	}
}

func (b *bestTracker) restore() {
	if b.snap != nil {
		b.snap.Restore(b.params())
	}
}

// objectiveValue evaluates Eq. 10 for the current generator: poison the
// (clean) surrogate for the full T iterations with a batch drawn the way
// the real attack draws it (non-empty queries, resampled with fixed
// evaluation noise so the curve tracks generator progress, not batch
// noise) and return the test loss of the poisoned model. The surrogate is
// restored afterwards. Oracle failures skip the sample; only a done
// context is an error.
func (t *Trainer) objectiveValue(ctx context.Context) (float64, error) {
	ctx, span := obs.StartSpan(ctx, "objective_eval", obs.Int("batch", t.Cfg.Batch))
	defer span.End()
	ps := t.Sur.M.Params()
	snap := nn.TakeSnapshot(ps)
	evalRng := rand.New(rand.NewSource(t.evalSeed))
	var valid []ce.Sample
	// Chunked resampling: draw the shortfall serially from the fixed
	// evaluation stream, label the chunk in parallel, keep the non-empty
	// results in draw order. Both the draws and the kept set are
	// identical to a serial run at any worker count.
	for attempt, budget := 0, 20*t.Cfg.Batch; len(valid) < t.Cfg.Batch && attempt < budget; {
		chunk := t.Cfg.Batch - len(valid)
		if chunk > budget-attempt {
			chunk = budget - attempt
		}
		attempt += chunk
		cands := make([]*generator.Sample, chunk)
		for j := range cands {
			cands[j] = t.Gen.GenerateOne(evalRng)
		}
		cards, errs := t.labelCards(ctx, cands)
		for j := range cands {
			if errs[j] != nil {
				if ctx.Err() != nil {
					snap.Restore(ps)
					return 0, ctx.Err()
				}
				continue
			}
			if cards[j] >= 1 {
				valid = append(valid, ce.Sample{V: cands[j].V, Y: t.Sur.Norm.Norm(cards[j])})
			}
		}
	}
	if len(valid) > 0 {
		t.Sur.Update(valid)
	}
	loss, _ := t.testLossAndGrad(t.Test)
	snap.Restore(ps)
	return loss, nil
}

// GeneratePoison draws the final poisoning workload from the trained
// generator, labeled with the oracle (the attacker executes the queries,
// observing their true counts). The attacker holds the COUNT(*) oracle,
// so empty queries — which the target eliminates from its update and
// which therefore poison nothing — are resampled away (bounded attempts;
// any shortfall is filled with the empty draws rather than failing).
// Oracle failures skip the draw; cancellation returns what was gathered
// so far.
func (t *Trainer) GeneratePoison(ctx context.Context, n int) ([]*query.Query, []float64) {
	ctx, span := obs.StartSpan(ctx, "poison_draw", obs.Int("n", n))
	defer span.End()
	qs := make([]*query.Query, 0, n)
	cards := make([]float64, 0, n)
	var spareQ []*query.Query
	var spareC []float64
	// Chunked like objectiveValue: serial draws, parallel labels, folded
	// in draw order — the poison workload is identical at any worker
	// count.
	for attempt, budget := 0, 20*n; len(qs) < n && attempt < budget; {
		if ctx.Err() != nil {
			break
		}
		chunk := n - len(qs)
		if chunk > budget-attempt {
			chunk = budget - attempt
		}
		attempt += chunk
		cands := make([]*generator.Sample, chunk)
		for j := range cands {
			cands[j] = t.Gen.GenerateOne(t.rng)
		}
		got, errs := t.labelCards(ctx, cands)
		for j := range cands {
			if errs[j] != nil {
				continue
			}
			if got[j] >= 1 {
				qs = append(qs, cands[j].Query)
				cards = append(cards, got[j])
			} else if len(spareQ) < n {
				spareQ = append(spareQ, cands[j].Query)
				spareC = append(spareC, got[j])
			}
		}
	}
	for i := 0; len(qs) < n && i < len(spareQ); i++ {
		qs = append(qs, spareQ[i])
		cards = append(cards, spareC[i])
	}
	return qs, cards
}
