package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"pace/internal/ce"
	"pace/internal/nn"
)

func TestCheckpointMarshalRoundTrip(t *testing.T) {
	cp := &Checkpoint{
		Version: CheckpointVersion, Algorithm: AlgoAccelerated, Type: ce.FCN,
		Outer: 3, Objective: []float64{0.1, 0.2, 0.3},
		BestObj: 0.3, BestAt: 2, BaseSeed: 42, EvalSeed: 7,
		Sur: []byte{1, 2, 3}, Gen: []byte{4, 5}, BestGen: []byte{6},
	}
	b, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outer != 3 || got.Type != ce.FCN || len(got.Objective) != 3 ||
		string(got.Sur) != string(cp.Sur) || got.BaseSeed != 42 {
		t.Errorf("round trip lost state: %+v", got)
	}
}

func TestCheckpointVersionRejected(t *testing.T) {
	cp := &Checkpoint{Version: CheckpointVersion + 1}
	b, _ := cp.Marshal()
	if _, err := UnmarshalCheckpoint(b); err == nil {
		t.Error("future version accepted")
	}
	if _, err := UnmarshalCheckpoint([]byte("{garbage")); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	cp := &Checkpoint{Version: CheckpointVersion, Algorithm: AlgoBasic, Outer: 1}
	if err := WriteCheckpointFile(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outer != 1 || got.Algorithm != AlgoBasic {
		t.Errorf("file round trip lost state: %+v", got)
	}
	if _, err := ReadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestResumeRejectsWrongType(t *testing.T) {
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 2})
	if err := tr.Resume(&Checkpoint{Type: ce.Linear}); err == nil {
		t.Error("Resume accepted a checkpoint for a different surrogate type")
	}
}

// runCheckpointed trains a fresh, identical fixture with a checkpoint
// sink, optionally cancelling the campaign after `cancelAfter`
// checkpoints have been written, and returns the trainer, the last
// checkpoint and the training error.
func runCheckpointed(t *testing.T, seed int64, cfg TrainerConfig, cancelAfter int) (*Trainer, *Checkpoint, error) {
	t.Helper()
	f := newFixture(t, seed)
	tr := newTrainer(f, nil, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Checkpoint
	written := 0
	tr.CheckpointEvery = 1
	tr.CheckpointSink = func(cp *Checkpoint) error {
		last = cp
		written++
		if cancelAfter > 0 && written == cancelAfter {
			cancel()
		}
		return nil
	}
	err := tr.TrainAccelerated(ctx)
	return tr, last, err
}

// TestResumeReplaysUninterruptedCurve is the acceptance criterion for
// checkpoint/resume: a campaign killed mid-training (context
// cancellation between outer loops 3 and 4) and resumed from its last
// checkpoint must reproduce the uninterrupted run's objective curve.
// Every random draw inside outer loop k comes from a stream derived
// from (baseSeed, k), so the replay is exact up to float tolerance.
func TestResumeReplaysUninterruptedCurve(t *testing.T) {
	const seed = 5
	cfg := TrainerConfig{Batch: 12, InnerIters: 3, OuterIters: 6}

	// Reference: the uninterrupted run.
	refTr, _, err := runCheckpointed(t, seed, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(refTr.Objective) != 6 {
		t.Fatalf("reference curve has %d points, want 6", len(refTr.Objective))
	}

	// Interrupted: identical fixture, killed after 3 checkpoints.
	intTr, cp, err := runCheckpointed(t, seed, cfg, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if cp == nil || cp.Outer != 3 {
		t.Fatalf("last checkpoint at outer %v, want 3", cp)
	}
	for i, obj := range intTr.Objective {
		if math.Abs(obj-refTr.Objective[i]) > 1e-9 {
			t.Fatalf("pre-kill curve diverged at %d: %g vs %g", i, obj, refTr.Objective[i])
		}
	}

	// Cancellation must leave the surrogate clean (restorable state).
	// Round-trip the checkpoint through its file encoding, as a real
	// resumed process would.
	b, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp, err = UnmarshalCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}

	// Resumed: a fresh identical fixture continues from the checkpoint.
	f := newFixture(t, seed)
	resTr := newTrainer(f, nil, cfg)
	if err := resTr.Resume(cp); err != nil {
		t.Fatal(err)
	}
	if err := resTr.TrainAccelerated(bgCtx); err != nil {
		t.Fatal(err)
	}
	if len(resTr.Objective) != len(refTr.Objective) {
		t.Fatalf("resumed curve has %d points, want %d", len(resTr.Objective), len(refTr.Objective))
	}
	for i := range refTr.Objective {
		if diff := math.Abs(resTr.Objective[i] - refTr.Objective[i]); diff > 1e-9 {
			t.Errorf("resumed curve diverged at %d: %g vs %g (Δ=%g)",
				i, resTr.Objective[i], refTr.Objective[i], diff)
		}
	}

	// The resumed trainer must end on the same best generator: its final
	// poison must be as damaging as the reference's (same objective under
	// the fixed evaluation noise).
	refObj, err := refTr.objectiveValue(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	resObj, err := resTr.objectiveValue(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(refObj-resObj) > 1e-9 {
		t.Errorf("final objective diverged: %g vs %g", refObj, resObj)
	}
}

// TestCancellationRestoresSurrogate: a cancelled run must not leave the
// surrogate with poisoned parameters.
func TestCancellationRestoresSurrogate(t *testing.T) {
	f := newFixture(t, 6)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 8, InnerIters: 3, OuterIters: 6})
	before := nn.FlattenParams(f.sur.M.Params())

	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	tr.CheckpointEvery = 1
	tr.CheckpointSink = func(*Checkpoint) error {
		if n++; n == 2 {
			cancel()
		}
		return nil
	}
	if err := tr.TrainAccelerated(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	if nn.MaxAbsDiff(before, nn.FlattenParams(f.sur.M.Params())) != 0 {
		t.Error("cancellation left the surrogate poisoned")
	}
}

func TestCheckpointCadence(t *testing.T) {
	f := newFixture(t, 7)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 5})
	var outers []int
	tr.CheckpointEvery = 2
	tr.CheckpointSink = func(cp *Checkpoint) error {
		outers = append(outers, cp.Outer)
		return nil
	}
	if err := tr.TrainAccelerated(bgCtx); err != nil {
		t.Fatal(err)
	}
	// Every 2 loops plus the final boundary: 2, 4, 5.
	want := []int{2, 4, 5}
	if len(outers) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", outers, want)
	}
	for i := range want {
		if outers[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", outers, want)
		}
	}
	if tr.Stats().Checkpoints != 3 {
		t.Errorf("Stats.Checkpoints = %d, want 3", tr.Stats().Checkpoints)
	}
}

func TestCheckpointSinkErrorAbortsTraining(t *testing.T) {
	f := newFixture(t, 8)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 4})
	sinkErr := errors.New("disk full")
	tr.CheckpointEvery = 1
	tr.CheckpointSink = func(*Checkpoint) error { return sinkErr }
	if err := tr.TrainAccelerated(bgCtx); !errors.Is(err, sinkErr) {
		t.Errorf("err = %v, want the sink error", err)
	}
}

func TestTrainerConfigClamps(t *testing.T) {
	c := TrainerConfig{Batch: -4, InnerIters: -1, OuterIters: -2, TestBatch: -8, BasicGenSteps: -3}.withDefaults()
	if c.Batch != 64 || c.InnerIters != 20 || c.OuterIters != 20 || c.TestBatch != 64 || c.BasicGenSteps != 20 {
		t.Errorf("negative values not clamped to defaults: %+v", c)
	}
	// TestBatch larger than the test set is clamped at construction.
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{TestBatch: 1 << 20})
	if tr.Cfg.TestBatch != len(f.test) {
		t.Errorf("TestBatch = %d, want clamped to %d", tr.Cfg.TestBatch, len(f.test))
	}
}

func TestBudgetConfigClampsNegatives(t *testing.T) {
	c := BudgetConfig{PoolMult: -3, ScoreTestBatch: -1}.withDefaults()
	if c.PoolMult != 4 || c.ScoreTestBatch != 32 {
		t.Errorf("negative budget config not clamped: %+v", c)
	}
}
