package core

import (
	"testing"

	"pace/internal/ce"
	"pace/internal/nn"
	"pace/internal/query"
)

func TestGeneratePoisonBudgetShape(t *testing.T) {
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 16, InnerIters: 4, OuterIters: 3})
	tr.TrainAccelerated(bgCtx)

	before := nn.FlattenParams(f.sur.M.Params())
	qs, cards := tr.GeneratePoisonBudget(bgCtx, 20, BudgetConfig{})
	if len(qs) != 20 || len(cards) != 20 {
		t.Fatalf("got %d/%d, want 20/20", len(qs), len(cards))
	}
	if nn.MaxAbsDiff(before, nn.FlattenParams(f.sur.M.Params())) != 0 {
		t.Error("budget scoring did not restore the surrogate")
	}
	for i, q := range qs {
		if !q.Connected(f.wgen.DS.Joinable) {
			t.Fatalf("budget query %d disconnected", i)
		}
	}
}

// applyPoison updates the fixture surrogate with a poisoning workload and
// returns the resulting test loss (surrogate restored afterwards).
func applyPoison(f *fixture, qs []*query.Query, cards []float64) float64 {
	snap := f.sur.Snapshot()
	var valid []ce.Sample
	for i := range qs {
		if cards[i] >= 1 {
			valid = append(valid, ce.Sample{
				V: qs[i].Encode(f.wgen.DS.Meta),
				Y: f.sur.Norm.Norm(cards[i]),
			})
		}
	}
	f.sur.Update(valid)
	loss := f.sur.Loss(f.test)
	f.sur.Restore(snap)
	return loss
}

func TestBudgetSelectionBeatsUnselected(t *testing.T) {
	// The selected subset's damage must be at least comparable to an
	// equal-size unselected draw from the same generator — the point of
	// spending the scoring budget.
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 24, InnerIters: 8, OuterIters: 5})
	tr.TrainAccelerated(bgCtx)

	sel, selC := tr.GeneratePoisonBudget(bgCtx, 25, BudgetConfig{PoolMult: 4})
	raw, rawC := tr.GeneratePoison(bgCtx, 25)

	selDamage := applyPoison(f, sel, selC)
	rawDamage := applyPoison(f, raw, rawC)
	t.Logf("selected damage=%.6f unselected=%.6f", selDamage, rawDamage)
	if selDamage < rawDamage*0.8 {
		t.Errorf("budget selection (%.6f) much weaker than raw draw (%.6f)", selDamage, rawDamage)
	}
}

func TestBudgetConfigDefaults(t *testing.T) {
	c := BudgetConfig{}.withDefaults()
	if c.PoolMult != 4 || c.ScoreTestBatch != 32 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestDisableHypergradientStillTrains(t *testing.T) {
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{
		Batch: 16, InnerIters: 4, OuterIters: 3, DisableHypergradient: true,
	})
	tr.TrainAccelerated(bgCtx)
	if len(tr.Objective) != 3 {
		t.Fatalf("objective curve %d points, want 3", len(tr.Objective))
	}
	qs, cards := tr.GeneratePoison(bgCtx, 10)
	if len(qs) != 10 || len(cards) != 10 {
		t.Error("ablated trainer cannot generate poison")
	}
}

func TestNegativeWeightsDisableSignals(t *testing.T) {
	if weightOf(-1) != 0 || weightOf(0.5) != 0.5 {
		t.Error("weightOf semantics wrong")
	}
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{
		Batch: 8, InnerIters: 2, OuterIters: 2,
		InferenceWeight: -1, ValidityWeight: -1,
	})
	tr.TrainAccelerated(bgCtx) // must not panic or flip signs
	if len(tr.Objective) != 2 {
		t.Error("training with disabled signals did not run")
	}
}

func TestEarlyStoppingPatience(t *testing.T) {
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{
		Batch: 8, InnerIters: 2, OuterIters: 30, Patience: 2,
	})
	tr.TrainAccelerated(bgCtx)
	if len(tr.Objective) >= 30 {
		t.Errorf("patience did not stop training: ran %d/30 outer loops", len(tr.Objective))
	}
	if len(tr.Objective) < 2 {
		t.Errorf("training stopped implausibly early: %d loops", len(tr.Objective))
	}
}

func TestBestTrackerRestoresOptimum(t *testing.T) {
	// After training, the generator must be the best-objective state
	// seen at any outer-loop boundary: re-evaluating the objective with
	// the same fixed evaluation noise reproduces the curve's maximum
	// (or the untrained baseline if training never improved on it).
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 16, InnerIters: 4, OuterIters: 6})
	baseline, err := tr.objectiveValue(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainAccelerated(bgCtx)
	final, err := tr.objectiveValue(bgCtx)
	if err != nil {
		t.Fatal(err)
	}

	best := baseline
	for _, obj := range tr.Objective {
		if obj > best {
			best = obj
		}
	}
	if diff := final - best; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("final objective %g != curve best %g", final, best)
	}
}
