package core

import (
	"context"
	"math/rand"
	"testing"

	"pace/internal/ce"
	"pace/internal/dataset"
	"pace/internal/detector"
	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/metrics"
	"pace/internal/nn"
	"pace/internal/query"
	"pace/internal/surrogate"
	"pace/internal/workload"
)

var bgCtx = context.Background()

type fixture struct {
	wgen *workload.Generator
	rng  *rand.Rand
	sur  *ce.Estimator
	test []ce.Sample
	tw   []workload.Labeled
}

// newFixture builds a small dmv world with a trained FCN surrogate.
func newFixture(t testing.TB, seed int64) *fixture {
	t.Helper()
	ds, err := dataset.Build("dmv", dataset.Config{Scale: 0.05, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	wgen := workload.NewGenerator(ds, engine.New(ds), rng)

	model := ce.New(ce.FCN, ds.Meta, ce.HyperParams{Hidden: 16, Layers: 2}, rng)
	sur := ce.NewEstimator(model, ce.TrainConfig{Epochs: 25, Batch: 16}, rng)
	train := wgen.Random(200)
	sur.Train(sur.MakeSamples(workload.Queries(train), cardsOf(train)))

	tw := wgen.Random(60)
	return &fixture{
		wgen: wgen, rng: rng, sur: sur,
		test: MakeTestSamples(sur, tw),
		tw:   tw,
	}
}

func newTrainer(f *fixture, det *detector.Detector, cfg TrainerConfig) *Trainer {
	// Tests run far fewer generator steps than the paper's 20×20, so the
	// generator learning rate is raised to compensate.
	gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
		generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
	return NewTrainer(f.sur, gen, det, EngineOracle(f.wgen), f.test, cfg, f.rng)
}

func encodeAll(qs []*query.Query, f *fixture) [][]float64 {
	out := make([][]float64, len(qs))
	for i, q := range qs {
		out[i] = q.Encode(f.wgen.DS.Meta)
	}
	return out
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		Clean: "Clean", Random: "Random", LbS: "Lb-S",
		Greedy: "Greedy", LbG: "Lb-G", PACE: "PACE",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if len(Methods()) != 5 || len(AllRows()) != 6 {
		t.Error("method enumerations wrong length")
	}
	if Method(42).String() != "Method(?)" {
		t.Error("unknown method String")
	}
}

// TestHypergradientMatchesNumeric validates the finite-difference HVP
// against a direct numerical derivative of the full pipeline
// v → θ′ = θ − η∇ℓ(θ; v) → L_test(θ′).
func TestHypergradientMatchesNumeric(t *testing.T) {
	f := newFixture(t, 1)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 12, TestBatch: len(f.test)})

	batch := tr.Gen.Generate(12, f.rng)
	samples, ok, _, err := tr.label(bgCtx, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(filterSamples(samples, ok)) == 0 {
		t.Skip("degenerate batch: all zero-cardinality")
	}
	attack := tr.attackGrads(samples, ok)

	target := -1
	for i := range ok {
		if ok[i] {
			target = i
			break
		}
	}
	ps := f.sur.M.Params()
	snap := nn.TakeSnapshot(ps)
	pipeline := func() float64 {
		snap.Restore(ps)
		valid := filterSamples(samples, ok)
		f.sur.UpdateStep(valid)
		loss, _ := tr.testLossAndGrad(f.test)
		snap.Restore(ps)
		return loss
	}
	numeric := nn.NumericInputGrad(pipeline, samples[target].V, 1e-4)

	got := attack[target]
	// Both sides are approximations; require strong directional
	// agreement rather than element-wise equality.
	cos := metrics.CosineSimilarity(got, numeric)
	if cos < 0.95 {
		t.Errorf("hypergradient direction cosine %.3f, want ≥ 0.95", cos)
	}
	ratio := nn.Norm(got) / (nn.Norm(numeric) + 1e-30)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("hypergradient magnitude ratio %.3f, want within [0.5, 2]", ratio)
	}
}

func TestTrainAcceleratedImprovesAttack(t *testing.T) {
	// Training must (a) restore the surrogate, (b) record the objective
	// curve, and (c) yield a more damaging poisoning workload than the
	// untrained generator produces.
	f := newFixture(t, 5)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 24, InnerIters: 10, OuterIters: 6})

	damage := func(qs []*query.Query, cards []float64) float64 {
		snap := f.sur.Snapshot()
		var valid []ce.Sample
		for i := range qs {
			if cards[i] >= 1 {
				valid = append(valid, ce.Sample{
					V: qs[i].Encode(f.wgen.DS.Meta),
					Y: f.sur.Norm.Norm(cards[i]),
				})
			}
		}
		f.sur.Update(valid)
		loss := f.sur.Loss(f.test)
		f.sur.Restore(snap)
		return loss
	}

	q0, c0 := tr.GeneratePoison(bgCtx, 40)
	before := damage(q0, c0)

	params := nn.FlattenParams(f.sur.M.Params())
	tr.TrainAccelerated(bgCtx)
	if nn.MaxAbsDiff(params, nn.FlattenParams(f.sur.M.Params())) != 0 {
		t.Error("TrainAccelerated did not restore the surrogate parameters")
	}
	if len(tr.Objective) != 6 {
		t.Fatalf("objective curve has %d points, want 6", len(tr.Objective))
	}

	q1, c1 := tr.GeneratePoison(bgCtx, 40)
	after := damage(q1, c1)
	t.Logf("poison damage before=%.6f after=%.6f", before, after)
	if after <= before {
		t.Errorf("training did not improve poison damage: %g → %g", before, after)
	}
}

func TestTrainBasicRunsAndRestores(t *testing.T) {
	f := newFixture(t, 3)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 16, OuterIters: 3, BasicGenSteps: 4})
	before := nn.FlattenParams(f.sur.M.Params())
	tr.TrainBasic(bgCtx)
	if nn.MaxAbsDiff(before, nn.FlattenParams(f.sur.M.Params())) != 0 {
		t.Error("TrainBasic did not restore the surrogate parameters")
	}
	if len(tr.Objective) != 3 {
		t.Errorf("objective curve has %d points, want 3", len(tr.Objective))
	}
}

func TestGeneratePoisonShape(t *testing.T) {
	f := newFixture(t, 4)
	tr := newTrainer(f, nil, TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 2})
	tr.TrainAccelerated(bgCtx)
	qs, cards := tr.GeneratePoison(bgCtx, 25)
	if len(qs) != 25 || len(cards) != 25 {
		t.Fatalf("got %d/%d, want 25/25", len(qs), len(cards))
	}
	for i, q := range qs {
		if !q.Connected(f.wgen.DS.Joinable) {
			t.Fatalf("poison query %d disconnected", i)
		}
		if cards[i] < 0 {
			t.Fatalf("poison card %d negative", i)
		}
	}
}

func TestPoisoningDegradesBlackBox(t *testing.T) {
	// The end-to-end property behind Figures 6-9: updating a trained CE
	// model with PACE's poisoning queries must raise its test Q-error,
	// and by more than random queries do.
	f := newFixture(t, 5)

	// Build the twin targets from a fixed workload so the comparison is
	// not sensitive to the shared fixture rng's position.
	bbTrain := f.wgen.Random(200)
	mkBB := func(seed int64) *ce.BlackBox {
		rng := rand.New(rand.NewSource(seed))
		model := ce.New(ce.FCN, f.wgen.DS.Meta, ce.HyperParams{Hidden: 16, Layers: 2}, rng)
		est := ce.NewEstimator(model, ce.TrainConfig{Epochs: 30, Batch: 16}, rng)
		est.Train(est.MakeSamples(workload.Queries(bbTrain), cardsOf(bbTrain)))
		return ce.AsBlackBox(est)
	}

	qs := workload.Queries(f.tw)
	cards := cardsOf(f.tw)

	// Proper pipeline: the surrogate imitates the actual target (§4);
	// the gentle incremental update only absorbs poison whose shape the
	// surrogate transferred faithfully.
	sur, err := surrogate.Train(bgCtx, mkBB(100), ce.FCN, f.wgen, surrogate.TrainConfig{
		Queries: 200,
		HP:      ce.HyperParams{Hidden: 16, Layers: 2},
		Train:   ce.TrainConfig{Epochs: 25, Batch: 16},
	}, f.rng)
	if err != nil {
		t.Fatal(err)
	}
	gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
		generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
	tr := NewTrainer(sur, gen, nil, EngineOracle(f.wgen),
		sur.MakeSamples(qs, cards),
		TrainerConfig{Batch: 32, InnerIters: 10, OuterIters: 8}, f.rng)
	tr.TrainAccelerated(bgCtx)
	paceQ, paceC := tr.GeneratePoison(bgCtx, 60)

	bb1 := mkBB(100)
	cleanErr := metrics.Mean(bb1.QErrors(qs, cards))
	bb1.ExecuteWorkload(bgCtx, paceQ, paceC)
	paceErr := metrics.Mean(bb1.QErrors(qs, cards))

	bb2 := mkBB(100)
	randQ, randC := RandomPoison(f.wgen, 60)
	bb2.ExecuteWorkload(bgCtx, randQ, randC)
	randErr := metrics.Mean(bb2.QErrors(qs, cards))

	t.Logf("clean=%.2f random=%.2f pace=%.2f", cleanErr, randErr, paceErr)
	if paceErr <= cleanErr {
		t.Errorf("PACE did not degrade the model: clean %.3f → pace %.3f", cleanErr, paceErr)
	}
	if paceErr <= randErr {
		t.Errorf("PACE (%.3f) not stronger than Random (%.3f)", paceErr, randErr)
	}
}

func TestBaselinesProduceValidWorkloads(t *testing.T) {
	f := newFixture(t, 6)

	randQ, randC := RandomPoison(f.wgen, 15)
	lbsQ, lbsC := LbSPoison(f.sur, f.wgen, 15)
	greedyQ, greedyC := GreedyPoison(bgCtx, f.sur, f.wgen, EngineOracle(f.wgen), 10, f.rng)
	gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable, generator.Config{Hidden: 12}, f.rng)
	lbgQ, lbgC := LbGPoison(bgCtx, f.sur, gen, EngineOracle(f.wgen), LbGConfig{Iters: 10, Batch: 8}, 15, f.rng)

	for _, tc := range []struct {
		name   string
		gotQ   int
		gotC   int
		want   int
		minOne bool
		cards  []float64
	}{
		{"Random", len(randQ), len(randC), 15, true, randC},
		{"Lb-S", len(lbsQ), len(lbsC), 15, true, lbsC},
		{"Greedy", len(greedyQ), len(greedyC), 10, true, greedyC},
		{"Lb-G", len(lbgQ), len(lbgC), 15, false, lbgC},
	} {
		if tc.gotQ != tc.want || tc.gotC != tc.want {
			t.Errorf("%s: got %d queries / %d cards, want %d", tc.name, tc.gotQ, tc.gotC, tc.want)
		}
		if tc.minOne {
			for i, c := range tc.cards {
				if c < 1 {
					t.Errorf("%s card[%d] = %g < 1", tc.name, i, c)
				}
			}
		}
	}
}

func TestLbSSelectsHighLoss(t *testing.T) {
	f := newFixture(t, 7)
	qs, cards := LbSPoison(f.sur, f.wgen, 20)

	selLoss := 0.0
	for i, q := range qs {
		v := q.Encode(f.sur.M.Meta())
		d := f.sur.M.Forward(v) - f.sur.Norm.Norm(cards[i])
		selLoss += d * d
	}
	selLoss /= float64(len(qs))

	pool := f.wgen.Random(100)
	poolLoss := 0.0
	for _, l := range pool {
		v := l.Q.Encode(f.sur.M.Meta())
		d := f.sur.M.Forward(v) - f.sur.Norm.Norm(l.Card)
		poolLoss += d * d
	}
	poolLoss /= float64(len(pool))
	if selLoss <= poolLoss {
		t.Errorf("Lb-S mean loss %.5f not above random pool %.5f", selLoss, poolLoss)
	}
}

func TestCraftPoisonPanicsOnPACE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CraftPoison(bgCtx, PACE, nil, nil, generator.Config{}, 1, nil)
}

func TestRunFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline is slow")
	}
	f := newFixture(t, 8)
	rng := rand.New(rand.NewSource(8))
	bbModel := ce.New(ce.FCN, f.wgen.DS.Meta, ce.HyperParams{Hidden: 16, Layers: 2}, rng)
	bbEst := ce.NewEstimator(bbModel, ce.TrainConfig{Epochs: 25, Batch: 16}, rng)
	train := f.wgen.Random(200)
	bbEst.Train(bbEst.MakeSamples(workload.Queries(train), cardsOf(train)))
	bb := ce.AsBlackBox(bbEst)

	history := f.wgen.Random(150)
	qs, cards := workload.Queries(f.tw), cardsOf(f.tw)
	before := metrics.Mean(bb.QErrors(qs, cards))

	forced := ce.FCN
	res, err := Run(bgCtx, bb, f.wgen, f.tw, history, Config{
		NumPoison: 50,
		ForceType: &forced,
		Surrogate: surrogate.TrainConfig{
			Queries: 150,
			HP:      ce.HyperParams{Hidden: 16, Layers: 2},
			Train:   ce.TrainConfig{Epochs: 20, Batch: 16},
		},
		Generator: generator.Config{Hidden: 16},
		Detector:  detector.Config{Hidden: 16, Epochs: 15},
		Trainer:   TrainerConfig{Batch: 24, InnerIters: 5, OuterIters: 4},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	after := metrics.Mean(bb.QErrors(qs, cards))
	t.Logf("before=%.2f after=%.2f train=%v gen=%v attack=%v",
		before, after, res.TrainTime, res.GenTime, res.AttackTime)
	if after <= before {
		t.Errorf("pipeline attack did not degrade the black box: %.3f → %.3f", before, after)
	}
	if res.SpeculatedType != ce.FCN {
		t.Errorf("forced type not honored: %v", res.SpeculatedType)
	}
	if len(res.Poison) != 50 {
		t.Errorf("poison size %d, want 50", len(res.Poison))
	}
	if res.TrainTime <= 0 || res.GenTime <= 0 || res.AttackTime <= 0 {
		t.Error("timings not recorded")
	}
	if len(res.Objective) != 4 {
		t.Errorf("objective curve %d points, want 4", len(res.Objective))
	}
}

func TestDetectorConfrontationReducesDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Fig. 13's property: training WITH the detector yields poisoning
	// queries closer to the historical distribution.
	f := newFixture(t, 9)
	history := f.wgen.Random(200)
	hEnc := make([][]float64, len(history))
	for i, l := range history {
		hEnc[i] = l.Q.Encode(f.wgen.DS.Meta)
	}

	cfg := TrainerConfig{Batch: 24, InnerIters: 6, OuterIters: 5, DetectorWeight: 2}

	trNo := newTrainer(f, nil, cfg)
	trNo.TrainAccelerated(bgCtx)
	qNo, _ := trNo.GeneratePoison(bgCtx, 80)

	det := detector.New(f.wgen.DS.Meta.Dim(), detector.Config{Epochs: 60}, f.rng)
	det.Train(hEnc)
	det.CalibrateThreshold(hEnc, 90)
	f2 := newFixture(t, 9) // fresh surrogate, same world
	trYes := newTrainer(f2, det, cfg)
	trYes.TrainAccelerated(bgCtx)
	qYes, _ := trYes.GeneratePoison(bgCtx, 80)

	dNo := metrics.JSDivergence(hEnc, encodeAll(qNo, f), 10)
	dYes := metrics.JSDivergence(hEnc, encodeAll(qYes, f), 10)
	t.Logf("divergence without detector %.4f, with detector %.4f", dNo, dYes)
	if dYes >= dNo {
		t.Errorf("detector did not reduce divergence: %.4f → %.4f", dNo, dYes)
	}
}
