package core

import (
	"context"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/generator"
	"pace/internal/nn"
	"pace/internal/query"
	"pace/internal/workload"
)

// Method identifies a poisoning-query crafting method: PACE or one of the
// paper's four baselines (§7.1).
type Method int

// The six rows of the paper's comparison tables, in its order.
const (
	Clean Method = iota // no attack
	Random
	LbS    // loss-based selection
	Greedy // greedy search
	LbG    // loss-based generation
	PACE
)

// Methods lists every attack method (excluding Clean) in paper order.
func Methods() []Method { return []Method{Random, LbS, Greedy, LbG, PACE} }

// AllRows lists Clean plus every attack method, the row order of the
// paper's tables.
func AllRows() []Method { return []Method{Clean, Random, LbS, Greedy, LbG, PACE} }

// String returns the paper's label for the method.
func (m Method) String() string {
	switch m {
	case Clean:
		return "Clean"
	case Random:
		return "Random"
	case LbS:
		return "Lb-S"
	case Greedy:
		return "Greedy"
	case LbG:
		return "Lb-G"
	case PACE:
		return "PACE"
	default:
		return "Method(?)"
	}
}

// RandomPoison crafts n poisoning queries by random generation — the
// Random baseline.
func RandomPoison(gen *workload.Generator, n int) ([]*query.Query, []float64) {
	w := gen.Random(n)
	return workload.Queries(w), cardsOf(w)
}

// LbSPoison crafts n poisoning queries by loss-based selection: generate
// 10n random queries and keep the n that maximize the inference loss of
// the (unpoisoned) surrogate.
func LbSPoison(sur *ce.Estimator, gen *workload.Generator, n int) ([]*query.Query, []float64) {
	pool := gen.Random(10 * n)
	type scored struct {
		idx  int
		loss float64
	}
	scores := make([]scored, len(pool))
	for i, l := range pool {
		v := l.Q.Encode(sur.M.Meta())
		d := sur.M.Forward(v) - sur.Norm.Norm(l.Card)
		scores[i] = scored{idx: i, loss: d * d}
	}
	// Partial selection sort of the top n by loss.
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < len(scores); j++ {
			if scores[j].loss > scores[best].loss {
				best = j
			}
		}
		scores[i], scores[best] = scores[best], scores[i]
	}
	qs := make([]*query.Query, n)
	cards := make([]float64, n)
	for i := 0; i < n; i++ {
		l := pool[scores[i].idx]
		qs[i], cards[i] = l.Q, l.Card
	}
	return qs, cards
}

// GreedyPoison crafts n poisoning queries by greedy search: for each
// query, choose a random valid join pattern, draw 10 candidate range
// conditions per attribute, and greedily keep, attribute by attribute,
// the condition that maximizes the unpoisoned surrogate's inference loss.
// Oracle failures skip the candidate; attempts are bounded so a dead
// oracle returns a short workload instead of spinning forever.
func GreedyPoison(ctx context.Context, sur *ce.Estimator, gen *workload.Generator, oracle Oracle, n int, rng *rand.Rand) ([]*query.Query, []float64) {
	meta := sur.M.Meta()
	qs := make([]*query.Query, 0, n)
	cards := make([]float64, 0, n)
	for attempt := 0; len(qs) < n && attempt < 20*n && ctx.Err() == nil; attempt++ {
		q := query.New(meta)
		// Random connected join pattern via the workload generator's
		// subtree machinery: draw a random query and keep its tables.
		proto := gen.RandomQuery()
		copy(q.Tables, proto.Tables)

		for t, in := range q.Tables {
			if !in {
				continue
			}
			lo, hi := meta.Attrs(t)
			for a := lo; a < hi; a++ {
				bestLoss := -1.0
				bestBounds := [2]float64{0, 1}
				for c := 0; c < 10; c++ {
					lb := rng.Float64()
					ub := lb + rng.Float64()*(1-lb)
					q.Bounds[a] = [2]float64{lb, ub}
					card, err := oracle(ctx, q)
					if err != nil || card < 1 {
						continue
					}
					v := q.Encode(meta)
					d := sur.M.Forward(v) - sur.Norm.Norm(card)
					if loss := d * d; loss > bestLoss {
						bestLoss = loss
						bestBounds = q.Bounds[a]
					}
				}
				q.Bounds[a] = bestBounds
			}
		}
		q.Normalize(meta)
		card, err := oracle(ctx, q)
		if err != nil || card < 1 {
			continue
		}
		qs = append(qs, q)
		cards = append(cards, card)
	}
	return qs, cards
}

// LbGConfig controls the loss-based-generation baseline.
type LbGConfig struct {
	// Iters is the number of generator training steps (default 400,
	// matching PACE's total inner iterations).
	Iters int
	// Batch is the per-step batch size (default 64).
	Batch int
}

func (c LbGConfig) withDefaults() LbGConfig {
	if c.Iters == 0 {
		c.Iters = 400
	}
	if c.Batch == 0 {
		c.Batch = 64
	}
	return c
}

// LbGPoison crafts n poisoning queries by loss-based generation: the same
// generator architecture as PACE, trained to maximize the inference loss
// of the UNPOISONED surrogate (the crucial difference from PACE, which
// maximizes the post-update loss). Like PACE's trainer, empty queries get
// a widening gradient — without it the loss-ascent drives the generator
// over the empty-cardinality cliff and every crafted query is eliminated
// before it can poison anything — and the final workload is resampled to
// non-empty queries.
func LbGPoison(ctx context.Context, sur *ce.Estimator, gen *generator.Generator, oracle Oracle,
	cfg LbGConfig, n int, rng *rand.Rand) ([]*query.Query, []float64) {
	cfg = cfg.withDefaults()
	meta := sur.M.Meta()
	genParams := append(gen.Gj.Params(), gen.Params()...)
	bestScore := -1.0
	var bestSnap *nn.Snapshot
	for it := 0; it < cfg.Iters; it++ {
		batch := gen.Generate(cfg.Batch, rng)
		gen.TrainJoin(batch)
		// Score this state: summed inference loss of the batch's VALID
		// queries — empty queries are eliminated by the target and
		// score zero. The best-scoring generator state is kept, since
		// unconstrained loss-ascent eventually saturates past the
		// empty-cardinality cliff and cannot come back.
		var score float64
		for _, s := range batch {
			card, err := oracle(ctx, s.Query)
			if err != nil {
				continue // unlabeled sample: no signal either way
			}
			if card < 1 {
				gen.Backward(s, wideningGrad(meta, s))
				continue
			}
			out := sur.M.Forward(s.V)
			d := out - sur.Norm.Norm(card)
			score += d * d
			dv := sur.M.Backward(2 * d)
			// Ascent on the inference loss: feed −grad to the
			// minimizing optimizer, normalized per sample.
			scale := sliceScale(dv)
			neg := make([]float64, len(dv))
			for j := range neg {
				neg[j] = -scale * dv[j]
			}
			gen.Backward(s, neg)
		}
		if score > bestScore {
			bestScore = score
			bestSnap = nn.TakeSnapshot(genParams)
		}
		zeroSurrogateGrads(sur)
		gen.Step(len(batch))
	}
	if bestSnap != nil {
		bestSnap.Restore(genParams)
	}

	qs := make([]*query.Query, 0, n)
	cards := make([]float64, 0, n)
	var spareQ []*query.Query
	var spareC []float64
	for attempt := 0; len(qs) < n && attempt < 20*n; attempt++ {
		s := gen.GenerateOne(rng)
		card, err := oracle(ctx, s.Query)
		if err != nil {
			continue
		}
		if card >= 1 {
			qs = append(qs, s.Query)
			cards = append(cards, card)
		} else if len(spareQ) < n {
			spareQ = append(spareQ, s.Query)
			spareC = append(spareC, card)
		}
	}
	for i := 0; len(qs) < n && i < len(spareQ); i++ {
		qs = append(qs, spareQ[i])
		cards = append(cards, spareC[i])
	}
	return qs, cards
}

// wideningGrad is the unit-scale minimization direction that widens an
// empty query's predicates (see Trainer.addWideningGrad).
func wideningGrad(meta *query.Meta, s *generator.Sample) []float64 {
	nT := meta.NumTables()
	dV := make([]float64, meta.Dim())
	for a := 0; a < meta.NumAttrs(); a++ {
		if s.BJ[meta.TableOf(a)] <= 0.5 {
			continue
		}
		dV[nT+2*a] += 1
		dV[nT+2*a+1] -= 1
	}
	if norm := nn.Norm(dV); norm > 0 {
		nn.Scale(dV, 1/norm)
	}
	return dV
}

func zeroSurrogateGrads(sur *ce.Estimator) {
	for _, p := range sur.M.Params() {
		p.ZeroGrad()
	}
}

func cardsOf(w []workload.Labeled) []float64 {
	out := make([]float64, len(w))
	for i := range w {
		out[i] = w[i].Card
	}
	return out
}
