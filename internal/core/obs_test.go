package core

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"pace/internal/ce"
	"pace/internal/detector"
	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/obs"
	"pace/internal/surrogate"
)

// obsRun is everything one instrumented attack produces that the
// determinism contract covers: the span structure and the counter state.
type obsRun struct {
	spans    []string // canonical form, sorted
	counters map[string]int64
}

// canonicalSpans reduces a trace to its worker-count-independent form:
// one line per span holding the name path to the root plus the JSON of
// its attributes. Span IDs, emission order and timestamps are erased.
func canonicalSpans(t *testing.T, recs []obs.SpanRecord) []string {
	t.Helper()
	byID := make(map[uint64]obs.SpanRecord, len(recs))
	for _, r := range recs {
		byID[r.ID] = r
	}
	var path func(id uint64) string
	path = func(id uint64) string {
		r, ok := byID[id]
		if !ok {
			t.Fatalf("span %d not in trace", id)
		}
		if r.Parent == 0 {
			return r.Name
		}
		return path(r.Parent) + "/" + r.Name
	}
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		attrs, err := json.Marshal(r.Attrs) // map marshaling sorts keys
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, path(r.ID)+" "+string(attrs))
	}
	sort.Strings(out)
	return out
}

// runObsAttackAt runs the accelerated attack from a fresh fixture with
// full telemetry at the given worker count and returns the canonical
// trace plus the final counter snapshot.
func runObsAttackAt(t *testing.T, workers int) obsRun {
	t.Helper()
	f := newFixture(t, 11)
	var buf bytes.Buffer
	tel := &obs.Telemetry{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(&buf)}
	ctx := obs.NewContext(bgCtx, tel)

	tr := newTrainer(f, nil, TrainerConfig{
		Batch: 16, InnerIters: 2, OuterIters: 3, TestBatch: 16,
	}).Instrument(tel.Reg)
	tr.Pool = engine.PoolFor(workers).Instrument(tel.Reg)
	if err := tr.TrainAccelerated(ctx); err != nil {
		t.Fatal(err)
	}
	tr.GeneratePoison(ctx, 20)

	if err := tel.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return obsRun{
		spans:    canonicalSpans(t, recs),
		counters: tel.Reg.Snapshot().Counters,
	}
}

// TestTraceDeterministicAcrossWorkerCounts extends the PR-2 determinism
// contract to the telemetry: for a fixed seed the span structure (name,
// parent chain, attributes) and every non-pool counter are identical
// whether labeling ran serially or on 4 workers. Only span IDs, emission
// order, timestamps, the per-worker pool split (pace_pool_*) and the
// latency histogram buckets may differ.
func TestTraceDeterministicAcrossWorkerCounts(t *testing.T) {
	want := runObsAttackAt(t, 0)
	got := runObsAttackAt(t, 4)

	if len(got.spans) != len(want.spans) {
		t.Fatalf("workers=4 emitted %d spans, serial %d", len(got.spans), len(want.spans))
	}
	for i := range want.spans {
		if got.spans[i] != want.spans[i] {
			t.Errorf("span %d differs:\n  workers=4: %s\n  serial:    %s",
				i, got.spans[i], want.spans[i])
		}
	}

	filter := func(m map[string]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			if !strings.HasPrefix(k, "pace_pool_") {
				out[k] = v
			}
		}
		return out
	}
	w, g := filter(want.counters), filter(got.counters)
	if len(w) != len(g) {
		t.Fatalf("counter sets differ: serial %v, workers=4 %v", w, g)
	}
	for k, v := range w {
		if g[k] != v {
			t.Errorf("counter %s = %d at workers=4, serial %d", k, g[k], v)
		}
	}
	if w["pace_oracle_calls_total"] == 0 {
		t.Error("no oracle calls counted — instrumentation is dead")
	}
}

// TestCampaignTelemetry runs a small end-to-end campaign with tracing and
// a registry and checks the acceptance contract: the trace is parseable
// with an intact parent tree and the required span kinds, and the
// registry snapshot in Result.Metrics agrees exactly with Result.Stats.
func TestCampaignTelemetry(t *testing.T) {
	f := newFixture(t, 21)
	history := f.wgen.Random(80)

	var buf bytes.Buffer
	tel := &obs.Telemetry{Reg: obs.NewRegistry(), Tracer: obs.NewTracer(&buf)}

	forced := ce.FCN
	campaign := &Campaign{
		Target:   ce.AsBlackBox(f.sur),
		Workload: f.wgen,
		Test:     f.tw,
		History:  history,
		Seed:     21,
		Config: Config{
			NumPoison:       15,
			Workers:         2,
			OracleCacheSize: 256,
			ForceType:       &forced,
			Telemetry:       tel,
			Surrogate: surrogate.TrainConfig{
				Queries: 60,
				HP:      ce.HyperParams{Hidden: 12, Layers: 2},
				Train:   ce.TrainConfig{Epochs: 6, Batch: 16},
			},
			Generator: generator.Config{Hidden: 12},
			Detector:  detector.Config{Hidden: 12, Epochs: 5},
			Trainer:   TrainerConfig{Batch: 12, InnerIters: 2, OuterIters: 2},
		},
	}
	res, err := campaign.Run(bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tel.Tracer.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := obs.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[uint64]obs.SpanRecord, len(recs))
	names := map[string]int{}
	for _, r := range recs {
		byID[r.ID] = r
		names[r.Name]++
	}
	for _, r := range recs {
		if r.Parent != 0 {
			if _, ok := byID[r.Parent]; !ok {
				t.Errorf("span %d (%s) has dangling parent %d", r.ID, r.Name, r.Parent)
			}
		} else if r.Name != "campaign" {
			t.Errorf("root span %d is %q, want campaign", r.ID, r.Name)
		}
	}
	for _, want := range []string{
		"campaign", "surrogate_train", "surrogate_epoch", "detector_train",
		"generator_train", "outer_loop", "label_batch", "objective_eval",
		"poison_draw", "poison_execute",
	} {
		if names[want] == 0 {
			t.Errorf("required span %q missing from trace (got %v)", want, names)
		}
	}
	if names["outer_loop"] != 2 {
		t.Errorf("outer_loop spans = %d, want 2", names["outer_loop"])
	}

	if res.Metrics == nil {
		t.Fatal("Result.Metrics is nil despite a registry")
	}
	c := res.Metrics.Counters
	s := res.Stats
	for name, want := range map[string]int64{
		"pace_oracle_calls_total":      s.OracleCalls,
		"pace_oracle_invalid_total":    s.OracleInvalid,
		"pace_oracle_failed_total":     s.OracleFailed,
		"pace_oracle_retries_total":    s.OracleRetries,
		"pace_samples_skipped_total":   s.SkippedSamples,
		"pace_checkpoints_total":       s.Checkpoints,
		"pace_oracle_cache_hits_total": s.CacheHits,
	} {
		if c[name] != want {
			t.Errorf("registry %s = %d, Result.Stats says %d", name, c[name], want)
		}
	}
	if c["pace_oracle_cache_misses_total"] != s.CacheMisses {
		t.Errorf("registry cache misses %d, stats %d",
			c["pace_oracle_cache_misses_total"], s.CacheMisses)
	}
	if s.OracleCalls == 0 {
		t.Error("campaign made no oracle calls")
	}
	if h := res.Metrics.Histograms["pace_oracle_latency_seconds"]; h.Count != s.OracleCalls {
		t.Errorf("latency histogram count %d, oracle calls %d", h.Count, s.OracleCalls)
	}
}
