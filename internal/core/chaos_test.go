package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/faults"
	"pace/internal/generator"
	"pace/internal/resilience"
	"pace/internal/surrogate"
	"pace/internal/workload"
)

// chaosRunCfg is a small-but-complete pipeline configuration for chaos
// runs: forced type (speculation has its own tests), detector off, fast
// retry backoff so injected faults do not stretch the test wall clock.
func chaosRunCfg() Config {
	forced := ce.FCN
	return Config{
		NumPoison:       10,
		ForceType:       &forced,
		DisableDetector: true,
		Retry: resilience.RetryPolicy{
			MaxAttempts: 3,
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    time.Millisecond,
		},
		Surrogate: surrogate.TrainConfig{
			Queries: 60,
			HP:      ce.HyperParams{Hidden: 8, Layers: 2},
			Train:   ce.TrainConfig{Epochs: 5, Batch: 16},
		},
		Generator: generator.Config{Hidden: 8},
		Trainer:   TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 2},
	}
}

func chaosBlackBox(f *fixture, seed int64) *ce.BlackBox {
	rng := rand.New(rand.NewSource(seed))
	model := ce.New(ce.FCN, f.wgen.DS.Meta, ce.HyperParams{Hidden: 8, Layers: 2}, rng)
	est := ce.NewEstimator(model, ce.TrainConfig{Epochs: 5, Batch: 16}, rng)
	train := f.wgen.Random(60)
	est.Train(est.MakeSamples(workload.Queries(train), cardsOf(train)))
	return ce.AsBlackBox(est)
}

// TestRunCompletesUnderFlakyProfile is the acceptance criterion for
// fault tolerance: a full campaign against the flaky profile (5%
// transient errors, 1% drops, injected latency) completes and produces
// a non-degenerate poisoning workload.
func TestRunCompletesUnderFlakyProfile(t *testing.T) {
	f := newFixture(t, 11)
	cfg := chaosRunCfg()
	cfg.Faults = faults.NewInjector(faults.Flaky(), 11)

	res, err := Run(bgCtx, chaosBlackBox(f, 11), f.wgen, f.tw, f.wgen.Random(60), cfg,
		rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatalf("flaky campaign failed: %v", err)
	}
	if len(res.Poison) == 0 {
		t.Fatal("flaky campaign produced no poison")
	}
	nonEmpty := 0
	for _, c := range res.PoisonCards {
		if c >= 1 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Error("flaky campaign produced only empty-cardinality poison")
	}
	if res.FaultCounters == nil || res.FaultCounters.Calls == 0 {
		t.Error("fault counters not reported")
	}
	if res.FaultCounters.Failures() == 0 {
		t.Error("flaky profile injected no faults — the campaign was not actually stressed")
	}
	if res.Stats.OracleCalls == 0 {
		t.Error("oracle traffic not accounted")
	}
	t.Logf("flaky campaign: %d poison queries (%d non-empty), %d faults injected, %d oracle retries, %d skipped",
		len(res.Poison), nonEmpty, res.FaultCounters.Failures(), res.Stats.OracleRetries, res.Stats.SkippedSamples)
}

// TestRunSurvivesEveryProfile drives the full pipeline through every
// named fault profile, including mid-run and immediate cancellation.
// The invariant is absolute: core.Run never panics, and any returned
// error is a sane campaign-level error, not corrupted state.
func TestRunSurvivesEveryProfile(t *testing.T) {
	f := newFixture(t, 12)
	history := f.wgen.Random(60)
	for _, p := range faults.Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cfg := chaosRunCfg()
			cfg.Faults = faults.NewInjector(p, 12)
			res, err := Run(bgCtx, chaosBlackBox(f, 12), f.wgen, f.tw, history, cfg,
				rand.New(rand.NewSource(12)))
			if err != nil {
				// An unreliable enough target may legitimately defeat the
				// campaign; the contract is a clean error plus whatever
				// state was reached.
				t.Logf("%s: campaign error (tolerated): %v", p.Name, err)
				if res == nil {
					t.Error("error without a partial result")
				}
				return
			}
			if len(res.Poison) == 0 {
				t.Errorf("%s: completed with no poison", p.Name)
			}
		})
	}
}

func TestRunSurvivesMidRunCancellation(t *testing.T) {
	f := newFixture(t, 13)
	history := f.wgen.Random(60)
	for _, delay := range []time.Duration{0, 2 * time.Millisecond, 20 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		if delay == 0 {
			cancel()
		} else {
			timer := time.AfterFunc(delay, cancel)
			defer timer.Stop()
		}
		cfg := chaosRunCfg()
		cfg.Faults = faults.NewInjector(faults.Chaos(), 13)
		res, err := Run(ctx, chaosBlackBox(f, 13), f.wgen, f.tw, history, cfg,
			rand.New(rand.NewSource(13)))
		cancel()
		if err == nil {
			// The campaign may have finished before the cancel landed;
			// that is fine as long as the result is complete.
			if len(res.Poison) == 0 {
				t.Errorf("delay %v: clean completion with no poison", delay)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Logf("delay %v: non-cancellation error (tolerated): %v", delay, err)
		}
		if res == nil {
			t.Errorf("delay %v: cancellation returned a nil result", delay)
		}
	}
}

// TestRunResumesFromCheckpointEndToEnd exercises the pipeline-level
// resume path: a campaign cancelled mid-training is resumed via
// Config.Resume and completes with the same objective curve as an
// uninterrupted campaign.
func TestRunResumesFromCheckpointEndToEnd(t *testing.T) {
	runWith := func(seed int64, sink func(*Checkpoint) error, cp *Checkpoint,
		ctx context.Context) (*Result, error) {
		// Rebuild the world identically each time — including the history
		// draw, which keeps the shared fixture RNG at the same position in
		// every run.
		f := newFixture(t, 21)
		history := f.wgen.Random(60)
		cfg := chaosRunCfg()
		cfg.Trainer = TrainerConfig{Batch: 8, InnerIters: 2, OuterIters: 4}
		cfg.CheckpointEvery = 1
		cfg.CheckpointSink = sink
		cfg.Resume = cp
		return Run(ctx, chaosBlackBox(f, 21), f.wgen, f.tw, history, cfg,
			rand.New(rand.NewSource(21)))
	}

	refRes, err := runWith(21, func(*Checkpoint) error { return nil }, nil, bgCtx)
	if err != nil {
		t.Fatal(err)
	}

	var last *Checkpoint
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n := 0
	_, err = runWith(21, func(cp *Checkpoint) error {
		last = cp
		if n++; n == 2 {
			cancel()
		}
		return nil
	}, nil, ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign returned %v", err)
	}
	if last == nil || last.Outer != 2 {
		t.Fatalf("last checkpoint %+v, want outer 2", last)
	}

	resRes, err := runWith(21, func(*Checkpoint) error { return nil }, last, bgCtx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resRes.Objective) != len(refRes.Objective) {
		t.Fatalf("resumed curve %d points, reference %d", len(resRes.Objective), len(refRes.Objective))
	}
	for i := range refRes.Objective {
		d := resRes.Objective[i] - refRes.Objective[i]
		if d < -1e-9 || d > 1e-9 {
			t.Errorf("curve diverged at %d: %g vs %g", i, resRes.Objective[i], refRes.Objective[i])
		}
	}
	if len(resRes.Poison) == 0 {
		t.Error("resumed campaign produced no poison")
	}
}
