package core

import (
	"context"
	"errors"
	"math/rand"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/remote"
	"pace/internal/workload"
)

// Campaign is the public entry point for a full PACE attack: fill in the
// scenario, pick a seed, call Run. It replaces the old positional
// core.Run(ctx, target, wgen, test, history, cfg, rng) signature with
// named fields — every component of the threat model is visible at the
// call site — and takes reproducibility by value: a Campaign with the
// same fields and Seed produces bit-identical results on every run, at
// any Config.Workers setting.
type Campaign struct {
	// Target is the attacker's remote view of the victim estimator
	// (§2.2): opaque predictions plus the incremental-update surface the
	// poison lands on.
	Target ce.Target
	// TargetURL, when Target is nil, dials a live paced estimator
	// service (cmd/paced) at this base URL and runs the whole pipeline
	// over the wire through a remote.RemoteTarget. Exactly one of
	// Target and TargetURL must be set. Against a multi-tenant host the
	// URL may carry the tenant route itself (.../v1/targets/a), or
	// Remote.Tenant may name it; a bare URL attacks the host's default
	// tenant.
	TargetURL string
	// Remote tunes the dialed client when TargetURL is used (batching,
	// coalescing, timeouts, tenant routing, auth); the zero value uses
	// remote defaults.
	Remote remote.Options
	// Workload supplies the attacker's query-generation and COUNT(*)
	// machinery over the target database.
	Workload *workload.Generator
	// Test is the workload whose estimation error the attack maximizes
	// (Eq. 10's L_test).
	Test []workload.Labeled
	// History is the historical workload the anomaly detector learns
	// normality from (§6).
	History []workload.Labeled
	// Config tunes every pipeline stage; the zero value runs the paper's
	// defaults.
	Config Config
	// Seed fixes every random draw of the campaign. Two runs with equal
	// Seed (and equal other fields) are bit-identical.
	Seed int64
}

// Run executes the complete PACE attack of §3: speculate and train a
// surrogate (§4), adversarially train the poisoning generator with the
// anomaly detector (§5–6), generate the poisoning workload, and execute
// it against the target (§3.4).
//
// The campaign honors ctx (deadline or cancellation) and survives an
// unreliable target: calls are retried per Config.Retry, failed
// speculation degrades to the Linear surrogate, unlabeled oracle calls
// are skipped, and — when Config.CheckpointSink is set — training is
// checkpointed so a killed campaign can resume via Config.Resume. On
// error the returned Result carries whatever state was reached (it is
// non-nil whenever training started).
func (c *Campaign) Run(ctx context.Context) (*Result, error) {
	target := c.Target
	switch {
	case target == nil && c.TargetURL == "":
		return nil, errors.New("core: campaign needs a Target or a TargetURL")
	case target != nil && c.TargetURL != "":
		return nil, errors.New("core: Target and TargetURL are mutually exclusive")
	case target == nil:
		rc, err := remote.NewClient(c.TargetURL, c.Remote)
		if err != nil {
			return nil, err
		}
		defer rc.Close()
		target = rc.Target(c.Remote.Tenant)
	}
	// Derive the trace ID from the seed: two runs of the same campaign
	// carry the same trace ID, so their stitched fleet traces are
	// directly comparable (and the determinism tests can diff them).
	if tel := c.Config.Telemetry; tel != nil && tel.Tracer != nil {
		tel.Tracer.SetTraceID(obs.DeriveTraceID(c.Seed))
	}
	rng := rand.New(rand.NewSource(c.Seed))
	return runCampaign(ctx, target, c.Workload, c.Test, c.History, c.Config, rng)
}
