package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"pace/internal/ce"
	"pace/internal/nn"
	"pace/internal/obs"
)

// Algorithm names recorded in checkpoints.
const (
	AlgoAccelerated = "accelerated"
	AlgoBasic       = "basic"
)

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// Checkpoint is the complete resumable state of a poisoning-generator
// training run, taken at an outer-loop boundary (where the surrogate
// parameters are clean by construction). Binary blobs hold network
// parameters and optimizer moments via internal/nn's serialization; the
// envelope is JSON, so a checkpoint file is portable and inspectable.
//
// Resume determinism: Outer, BaseSeed and EvalSeed pin the RNG streams
// of the remaining loops (each outer loop draws from a stream derived
// from BaseSeed), and Gen carries the generator's Adam moments, so a
// resumed faultless run replays the uninterrupted objective curve
// exactly.
type Checkpoint struct {
	Version   int     `json:"version"`
	Algorithm string  `json:"algorithm"`
	Type      ce.Type `json:"type"`
	// Outer is the next outer loop to run (loops [0, Outer) completed).
	Outer     int       `json:"outer"`
	Objective []float64 `json:"objective"`
	BestObj   float64   `json:"best_obj"`
	BestAt    int       `json:"best_at"`
	BaseSeed  int64     `json:"base_seed"`
	EvalSeed  int64     `json:"eval_seed"`
	// Sur holds the clean surrogate parameters; Gen the generator's full
	// training state (all three networks + both optimizers); BestGen the
	// parameters of the best generator observed so far.
	Sur     []byte `json:"sur"`
	Gen     []byte `json:"gen"`
	BestGen []byte `json:"best_gen"`
}

// Marshal encodes the checkpoint for storage.
func (cp *Checkpoint) Marshal() ([]byte, error) { return json.Marshal(cp) }

// UnmarshalCheckpoint decodes a checkpoint produced by Marshal.
func UnmarshalCheckpoint(b []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := json.Unmarshal(b, cp); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	return cp, nil
}

// WriteCheckpointFile atomically persists a checkpoint to path (write to
// a temp file in the same directory, then rename), so a crash mid-write
// never corrupts the previous checkpoint.
func WriteCheckpointFile(path string, cp *Checkpoint) error {
	b, err := cp.Marshal()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpointFile loads a checkpoint written by WriteCheckpointFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalCheckpoint(b)
}

// FileCheckpointSink returns a CheckpointSink that persists every
// checkpoint to path.
func FileCheckpointSink(path string) func(*Checkpoint) error {
	return func(cp *Checkpoint) error { return WriteCheckpointFile(path, cp) }
}

// maybeCheckpoint emits a checkpoint through the sink after outer loop
// nextOuter-1 completed, respecting the configured cadence. Called with
// clean surrogate parameters (outer-loop boundary).
func (t *Trainer) maybeCheckpoint(ctx context.Context, nextOuter int, algo string, best *bestTracker) error {
	if t.CheckpointSink == nil {
		return nil
	}
	every := t.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if nextOuter%every != 0 && nextOuter != t.Cfg.OuterIters {
		return nil
	}
	_, span := obs.StartSpan(ctx, "checkpoint_write", obs.Int("outer", nextOuter))
	defer span.End()
	cp, err := t.makeCheckpoint(nextOuter, algo, best)
	if err != nil {
		return err
	}
	if err := t.CheckpointSink(cp); err != nil {
		return fmt.Errorf("core: checkpoint sink: %w", err)
	}
	t.met.checkpoints.Inc()
	return nil
}

// makeCheckpoint captures the trainer's state at an outer-loop boundary.
func (t *Trainer) makeCheckpoint(nextOuter int, algo string, best *bestTracker) (*Checkpoint, error) {
	cp := &Checkpoint{
		Version:   CheckpointVersion,
		Algorithm: algo,
		Type:      t.Sur.M.Type(),
		Outer:     nextOuter,
		Objective: append([]float64(nil), t.Objective...),
		BestObj:   best.obj,
		BestAt:    best.bestAt,
		BaseSeed:  t.baseSeed,
		EvalSeed:  t.evalSeed,
		Sur:       nn.SaveParams(t.Sur.M.Params()),
		Gen:       t.Gen.SaveState(),
	}
	if best.snap != nil {
		// Serialize the best generator by round-tripping through the
		// live parameters (snapshots are restore-only).
		all := t.Gen.AllParams()
		cur := nn.TakeSnapshot(all)
		best.snap.Restore(all)
		cp.BestGen = nn.SaveParams(all)
		cur.Restore(all)
	}
	return cp, nil
}

// Resume rewinds the trainer to a checkpoint: surrogate and generator
// parameters (with optimizer moments), the objective curve, the RNG
// seeds and the next outer loop. The trainer must have been built with
// the same architecture and configuration as the checkpointed run; call
// Resume before TrainAccelerated/TrainBasic.
func (t *Trainer) Resume(cp *Checkpoint) error {
	if cp.Type != t.Sur.M.Type() {
		return fmt.Errorf("core: checkpoint is for surrogate type %v, trainer has %v", cp.Type, t.Sur.M.Type())
	}
	if err := nn.LoadParams(t.Sur.M.Params(), cp.Sur); err != nil {
		return fmt.Errorf("core: checkpoint surrogate: %w", err)
	}
	if err := t.Gen.LoadState(cp.Gen); err != nil {
		return fmt.Errorf("core: checkpoint generator: %w", err)
	}
	t.Objective = append([]float64(nil), cp.Objective...)
	t.baseSeed = cp.BaseSeed
	t.evalSeed = cp.EvalSeed
	t.startOuter = cp.Outer
	t.resume = cp
	return nil
}
