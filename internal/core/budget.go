package core

import (
	"context"

	"pace/internal/ce"
	"pace/internal/nn"
	"pace/internal/query"
)

// BudgetConfig controls the budget-constrained attack of the paper's
// second future-work direction (§8): when the attacker can only afford a
// limited number of poisoning queries, an over-generated candidate pool
// is scored by estimated damage on the surrogate and the strongest
// subset is kept — the greedy relaxation of the paper's proposed
// penalty-function formulation.
type BudgetConfig struct {
	// PoolMult over-generates PoolMult×budget candidates (default 4).
	PoolMult int
	// ScoreTestBatch bounds the test samples used per candidate score
	// (default 32).
	ScoreTestBatch int
}

func (c BudgetConfig) withDefaults() BudgetConfig {
	// Clamp out-of-range values rather than trusting callers: PoolMult
	// below 1 would generate no candidates at all, a non-positive
	// ScoreTestBatch would score on an empty test slice.
	if c.PoolMult < 1 {
		c.PoolMult = 4
	}
	if c.ScoreTestBatch < 1 {
		c.ScoreTestBatch = 32
	}
	return c
}

// GeneratePoisonBudget draws PoolMult candidate workloads of `budget`
// queries each from the trained generator, scores every candidate group
// by the surrogate's post-update test loss (the full T-iteration update,
// so within-group coherence — which most of the damage comes from — is
// preserved), and returns the strongest group. The surrogate is restored
// after every probe.
func (t *Trainer) GeneratePoisonBudget(ctx context.Context, budget int, cfg BudgetConfig) ([]*query.Query, []float64) {
	cfg = cfg.withDefaults()

	testBatch := t.Test
	if len(testBatch) > cfg.ScoreTestBatch {
		testBatch = testBatch[:cfg.ScoreTestBatch]
	}

	ps := t.Sur.M.Params()
	snap := nn.TakeSnapshot(ps)
	bestDamage := -1.0
	var bestQ []*query.Query
	var bestC []float64
	for g := 0; g < cfg.PoolMult; g++ {
		qs, cards := t.GeneratePoison(ctx, budget)
		var valid []ce.Sample
		for i := range qs {
			if cards[i] >= 1 {
				valid = append(valid, ce.Sample{
					V: qs[i].Encode(t.Sur.M.Meta()),
					Y: t.Sur.Norm.Norm(cards[i]),
				})
			}
		}
		if len(valid) > 0 {
			t.Sur.Update(valid)
		}
		loss, _ := t.testLossAndGrad(testBatch)
		snap.Restore(ps)
		if loss > bestDamage {
			bestDamage = loss
			bestQ, bestC = qs, cards
		}
	}
	return bestQ, bestC
}
