package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/engine"
	"pace/internal/generator"
	"pace/internal/query"
	"pace/internal/resilience"
)

// attackRun captures everything a seeded attack produces that must be
// independent of worker count.
type attackRun struct {
	objective []float64
	poisonKey []string
	cards     []float64
	stats     TrainerStats
}

// runAttackAt runs the full accelerated attack from a fresh fixture at a
// fixed seed with the given worker count, then draws the poison workload.
func runAttackAt(t *testing.T, workers int) attackRun {
	t.Helper()
	f := newFixture(t, 11)
	tr := newTrainer(f, nil, TrainerConfig{
		Batch: 16, InnerIters: 2, OuterIters: 3, TestBatch: 16,
	})
	tr.Pool = engine.PoolFor(workers)
	if err := tr.TrainAccelerated(bgCtx); err != nil {
		t.Fatal(err)
	}
	qs, cards := tr.GeneratePoison(bgCtx, 20)
	keys := make([]string, len(qs))
	for i, q := range qs {
		keys[i] = q.Key()
	}
	return attackRun{
		objective: append([]float64(nil), tr.Objective...),
		poisonKey: keys,
		cards:     cards,
		stats:     tr.Stats(),
	}
}

// TestTrainDeterministicAcrossWorkerCounts is the core determinism
// contract of the parallel engine: a fixed seed yields bit-identical
// objective curves, poison workloads and oracle accounting whether the
// labeling runs serially, on 4 workers, or on every core.
func TestTrainDeterministicAcrossWorkerCounts(t *testing.T) {
	want := runAttackAt(t, 0) // serial reference
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := runAttackAt(t, workers)
		if len(got.objective) != len(want.objective) {
			t.Fatalf("workers=%d: %d objective points, serial had %d",
				workers, len(got.objective), len(want.objective))
		}
		for i := range want.objective {
			if got.objective[i] != want.objective[i] {
				t.Errorf("workers=%d: objective[%d] = %v, serial %v",
					workers, i, got.objective[i], want.objective[i])
			}
		}
		if len(got.poisonKey) != len(want.poisonKey) {
			t.Fatalf("workers=%d: %d poison queries, serial had %d",
				workers, len(got.poisonKey), len(want.poisonKey))
		}
		for i := range want.poisonKey {
			if got.poisonKey[i] != want.poisonKey[i] {
				t.Errorf("workers=%d: poison query %d differs from serial run", workers, i)
			}
			if got.cards[i] != want.cards[i] {
				t.Errorf("workers=%d: poison card[%d] = %v, serial %v",
					workers, i, got.cards[i], want.cards[i])
			}
		}
		if got.stats != want.stats {
			t.Errorf("workers=%d: stats = %+v, serial %+v", workers, got.stats, want.stats)
		}
	}
}

// TestParallelLabelingStatsAreExact drives the labeling path with 8
// workers against a deliberately unreliable oracle and checks that the
// atomically-updated counters balance. Under `go test -race` this is
// also the data-race probe for callOracle/label.
func TestParallelLabelingStatsAreExact(t *testing.T) {
	f := newFixture(t, 12)
	inner := EngineOracle(f.wgen)
	var calls int64
	flaky := func(ctx context.Context, q *query.Query) (float64, error) {
		switch n := atomic.AddInt64(&calls, 1); {
		case n%11 == 0:
			return 0, ErrInvalidQuery
		case n%7 == 0:
			return 0, errors.New("transient")
		default:
			return inner(ctx, q)
		}
	}
	gen := generator.New(f.wgen.DS.Meta, f.wgen.DS.Joinable,
		generator.Config{Hidden: 16, LR: 5e-3}, f.rng)
	tr := NewTrainer(f.sur, gen, nil, flaky, f.test, TrainerConfig{Batch: 64}, f.rng)
	tr.Pool = engine.NewPool(8)
	tr.Retry = resilience.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
	}

	const n = 64
	batch := tr.Gen.Generate(n, f.rng)
	_, ok, empty, err := tr.label(bgCtx, batch)
	if err != nil {
		t.Fatal(err)
	}

	labeled := 0
	for i := range batch {
		if ok[i] || empty[i] {
			labeled++
		}
		if ok[i] && empty[i] {
			t.Errorf("sample %d is both valid and empty", i)
		}
	}
	s := tr.Stats()
	if s.OracleCalls != n {
		t.Errorf("OracleCalls = %d, want %d", s.OracleCalls, n)
	}
	if int64(n-labeled) != s.SkippedSamples {
		t.Errorf("%d samples unlabeled but SkippedSamples = %d", n-labeled, s.SkippedSamples)
	}
	if s.OracleInvalid+s.OracleFailed != s.SkippedSamples {
		t.Errorf("invalid %d + failed %d != skipped %d",
			s.OracleInvalid, s.OracleFailed, s.SkippedSamples)
	}
	if s.OracleInvalid == 0 {
		t.Error("the every-11th-call ErrInvalidQuery never surfaced")
	}
}
