// Package targetserver hosts ce.Targets behind the paced HTTP/JSON
// service, turning in-process black boxes into the deployed estimators
// of PACE's threat model: attackers (and benign clients) reach them only
// over a real wire.
//
// Since the multi-tenant refactor the server is a thin HTTP layer over
// an internal/tenant.Registry — a directory of named estimator worlds,
// each owning its own model goroutine, micro-batching, bounded admission
// queues, per-client token buckets and optional estimate cache:
//
//	POST /v1/targets/{id}/estimate   routed estimates, single or batch
//	POST /v1/targets/{id}/execute    routed executed-query feedback
//	GET  /v1/targets/{id}/healthz    one tenant's readiness
//	POST /v1/targets                 provision a tenant at runtime
//	DELETE /v1/targets/{id}          drain and destroy a tenant
//	GET  /v1/targets                 directory listing
//	POST /v1/estimate | /v1/execute  legacy unrouted wire, aliasing the
//	                                 "default" tenant (old clients keep
//	                                 working against a multi-tenant host)
//	GET  /healthz                    overall + per-tenant readiness
//	GET  /metrics                    tenant-labeled paced_* families
//
// Client identity: when Config.AuthTokens is set, the identity used for
// per-tenant rate limiting is derived from the Authorization bearer
// token — the X-Pace-Client header is no longer trusted (it is trivially
// spoofable). Without tokens the header (then the peer host) is used, as
// before.
//
// Shutdown drains gracefully: /healthz flips to 503 so load balancers
// stop routing, in-flight requests on every tenant finish — the drain
// iterates the whole registry — and only then do the model goroutines
// exit.
package targetserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/tenant"
	"pace/internal/wire"
)

// DefaultTenant is the id the legacy unrouted endpoints alias.
const DefaultTenant = "default"

// Config tunes the service. The zero value serves with sane defaults.
// The per-tenant serving knobs (MaxBatch … Burst) apply to every tenant
// the server hosts.
type Config struct {
	// MaxBatch is the largest number of queries a tenant's model
	// goroutine evaluates per micro-batch (default 64). Requests larger
	// than wire.MaxBatch are rejected outright.
	MaxBatch int
	// BatchWindow is how long a model goroutine waits for more estimate
	// requests after the first one arrives (default 200µs).
	BatchWindow time.Duration
	// QueueDepth bounds each tenant's estimate admission queue in
	// requests (default 128). A full queue sheds with 429.
	QueueDepth int
	// ExecQueueDepth bounds each tenant's execute (retraining feedback)
	// queue (default 8).
	ExecQueueDepth int
	// RatePerSec and Burst configure the per-client token bucket of each
	// tenant; RatePerSec 0 disables rate limiting.
	RatePerSec float64
	Burst      int
	// RetryAfter is the backoff hint sent with every 429/503 (default
	// 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// MaxTenants caps how many tenants this host admits (live,
	// provisioning or evicted); creates beyond it answer 429
	// quota_exceeded. 0 = unlimited.
	MaxTenants int
	// MaxPerOwner caps how many tenants one authenticated client may
	// provision; 0 = unlimited.
	MaxPerOwner int
	// IdleAfter enables the idle-eviction janitor: tenants that serve no
	// request for this long are drained and their spec spilled; the next
	// request (or an explicit revive) rebuilds them. 0 disables eviction.
	IdleAfter time.Duration
	// AuthTokens, when non-empty, maps bearer tokens to client names.
	// Requests must then carry "Authorization: Bearer <token>"; unknown
	// or missing tokens answer 401 and the mapped name replaces the
	// spoofable X-Pace-Client header for rate limiting.
	AuthTokens map[string]string
	// Codecs restricts which data-path codecs the server speaks
	// ("json", "binary"). Empty means both. Requests carrying a
	// disabled codec's Content-Type answer 415 unsupported_media, and
	// Accept headers asking for a disabled codec fall back to JSON.
	Codecs []string
	// Factory provisions tenants for POST /v1/targets (typically
	// experiments.TenantFactory()). Nil disables runtime creation.
	Factory tenant.Factory
	// Telemetry instruments the service (tenant-labeled paced_*
	// counters, latency and batch-size histograms, queue gauges) and,
	// when it carries a registry, mounts /metrics and /debug/pprof.
	Telemetry *obs.Telemetry
	// SLOTarget is the per-request latency objective behind the
	// per-tenant burn-rate gauge (default 100ms): a data-path request
	// slower than this — or failing — burns error budget.
	SLOTarget time.Duration
	// SLOObjective is the target fraction of requests within SLOTarget
	// (default 0.99).
	SLOObjective float64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch > wire.MaxBatch {
		c.MaxBatch = wire.MaxBatch
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 100 * time.Millisecond
	}
	if c.SLOObjective <= 0 {
		c.SLOObjective = 0.99
	}
	return c
}

// TenantConfig projects the per-tenant serving knobs onto a
// tenant.Config — what cmd/paced builds its boot registry with.
func (c Config) TenantConfig() tenant.Config {
	return tenant.Config{
		MaxBatch:       c.MaxBatch,
		BatchWindow:    c.BatchWindow,
		QueueDepth:     c.QueueDepth,
		ExecQueueDepth: c.ExecQueueDepth,
		RatePerSec:     c.RatePerSec,
		Burst:          c.Burst,
		MaxTenants:     c.MaxTenants,
		MaxPerOwner:    c.MaxPerOwner,
		Telemetry:      c.Telemetry,
	}
}

// Server is one hosted estimator service instance: an HTTP front over a
// tenant registry.
type Server struct {
	cfg Config
	reg *tenant.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	draining bool

	httpSrv *http.Server
	ln      net.Listener

	janitorStop chan struct{}
	janitorDone chan struct{}

	// codecs is the enabled codec set by name ("json", "binary").
	codecs map[string]bool
	// legacyOnce gates the one-time deprecation log for the unrouted
	// /v1/estimate|execute aliases.
	legacyOnce sync.Once

	// Server-level instruments (tenant-level ones live on each tenant);
	// all nil-safe no-ops without telemetry.
	mUnknownTarget *obs.Counter
	mUnauthorized  *obs.Counter
	mAdminReqs     *obs.Counter
	mQuotaDenied   *obs.Counter
	mEvicted       *obs.Counter
	mRevived       *obs.Counter
	mTenants       *obs.Gauge
	mDraining      *obs.Gauge

	// Per-(route, tenant) RED instruments and per-tenant SLO trackers,
	// created lazily on first request.
	redMu sync.Mutex
	reds  map[string]*obs.RED
	slos  map[string]*obs.SLO
}

// New builds a single-tenant server: target becomes the "default"
// tenant, reachable over both the legacy and the routed wire. Callers
// must eventually call Shutdown (or Close) even when they never Start a
// listener — the handler form used with httptest still owns the model
// goroutine. Runtime tenant creation needs cfg.Factory.
func New(target ce.Target, meta *query.Meta, cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := tenant.NewRegistry(cfg.Factory, cfg.TenantConfig())
	if _, err := reg.Add(tenant.Spec{ID: DefaultTenant}, target, meta); err != nil {
		panic("targetserver: registering default tenant: " + err.Error()) // fresh registry: unreachable
	}
	return NewMulti(reg, cfg)
}

// NewMulti builds a server over an existing registry — the multi-tenant
// form cmd/paced uses: boot tenants are Added/Created on the registry
// first, and the admin API keeps mutating it at runtime.
func NewMulti(reg *tenant.Registry, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, reg: reg}
	s.codecs = map[string]bool{}
	if len(cfg.Codecs) == 0 {
		s.codecs["json"], s.codecs["binary"] = true, true
	} else {
		for _, name := range cfg.Codecs {
			if c, ok := wire.CodecByName(name); ok {
				s.codecs[c.Name()] = true
			}
		}
	}
	s.instrument(cfg.Telemetry.Registry())
	s.reds = map[string]*obs.RED{}
	s.slos = map[string]*obs.SLO{}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		s.deprecateLegacy(w, "/v1/estimate")
		s.serveData(w, r, DefaultTenant, "estimate", "srv_estimate", s.handleEstimate)
	})
	s.mux.HandleFunc("POST /v1/execute", func(w http.ResponseWriter, r *http.Request) {
		s.deprecateLegacy(w, "/v1/execute")
		s.serveData(w, r, DefaultTenant, "execute", "srv_execute", s.handleExecute)
	})
	s.mux.HandleFunc("POST /v1/targets/{id}/estimate", func(w http.ResponseWriter, r *http.Request) {
		s.serveData(w, r, r.PathValue("id"), "estimate", "srv_estimate", s.handleEstimate)
	})
	s.mux.HandleFunc("POST /v1/targets/{id}/execute", func(w http.ResponseWriter, r *http.Request) {
		s.serveData(w, r, r.PathValue("id"), "execute", "srv_execute", s.handleExecute)
	})
	s.mux.HandleFunc("POST /v1/targets/{id}/executions", func(w http.ResponseWriter, r *http.Request) {
		s.serveData(w, r, r.PathValue("id"), "exec_open", "srv_exec_open", s.handleOpenExecution)
	})
	s.mux.HandleFunc("POST /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		s.serveData(w, r, r.PathValue("id"), "exec_chunk", "srv_exec_chunk",
			func(w http.ResponseWriter, r *http.Request, id string) {
				s.handleExecutionChunk(w, r, id, r.PathValue("token"))
			})
	})
	s.mux.HandleFunc("GET /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		// Status polls are RED-metered but never spanned: poll counts are
		// timing-dependent, and spans here would break the fixed-seed
		// trace-structure determinism contract.
		s.serveData(w, r, r.PathValue("id"), "exec_status", "",
			func(w http.ResponseWriter, r *http.Request, id string) {
				s.handleExecutionStatus(w, r, id, r.PathValue("token"))
			})
	})
	s.mux.HandleFunc("DELETE /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		s.serveData(w, r, r.PathValue("id"), "exec_delete", "srv_exec_delete",
			func(w http.ResponseWriter, r *http.Request, id string) {
				s.handleExecutionDelete(w, r, id, r.PathValue("token"))
			})
	})
	s.mux.HandleFunc("GET /v1/targets/{id}/healthz", s.handleTenantHealthz)
	s.mux.HandleFunc("POST /v1/targets", s.handleCreateTarget)
	s.mux.HandleFunc("DELETE /v1/targets/{id}", s.handleDeleteTarget)
	s.mux.HandleFunc("GET /v1/targets", s.handleListTargets)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if reg := cfg.Telemetry.Registry(); reg != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
		})
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mTenants.Set(int64(reg.Len()))
	if cfg.IdleAfter > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s
}

// janitor periodically evicts tenants idle past Config.IdleAfter,
// spilling their specs for lazy revival on the next request.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.cfg.IdleAfter / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-tick.C:
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			evicted := s.reg.EvictIdle(ctx, s.cfg.IdleAfter)
			cancel()
			if len(evicted) > 0 {
				s.mEvicted.Add(int64(len(evicted)))
				s.mTenants.Set(int64(s.reg.Len()))
			}
		}
	}
}

// serveData wraps one data-path handler with the fleet observability
// preamble: trace extraction (an X-Pace-Trace header makes the
// server-side work parent under the remote caller's span; spanName ""
// means the route is metered but never spanned) and per-(route, tenant)
// RED accounting with the tenant's SLO burn and a slow-request exemplar
// carrying the trace ID.
func (s *Server) serveData(w http.ResponseWriter, r *http.Request, id, route, spanName string, fn func(http.ResponseWriter, *http.Request, string)) {
	ctx := obs.NewContext(r.Context(), s.cfg.Telemetry)
	var sp *obs.Span
	if tp := r.Header.Get(wire.TraceHeader); tp != "" {
		if trace, span, ok := obs.ParseTraceParent(tp); ok {
			ctx = obs.ContextWithRemoteParent(ctx, trace, span)
			if spanName != "" {
				ctx, sp = obs.StartSpan(ctx, spanName, obs.String("tenant", id))
			}
		}
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	fn(sw, r.WithContext(ctx), id)
	sp.End()
	s.red(route, id).Observe(time.Since(start).Seconds(), sw.status >= 500, obs.TraceIDFrom(ctx))
}

// statusWriter captures the response status for RED error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// red returns the (route, tenant) RED bundle, creating it — and the
// tenant's shared SLO tracker — on first use. nil (all methods no-op)
// without a metrics registry.
func (s *Server) red(route, id string) *obs.RED {
	reg := s.cfg.Telemetry.Registry()
	if reg == nil {
		return nil
	}
	key := route + "\x00" + id
	s.redMu.Lock()
	defer s.redMu.Unlock()
	if m, ok := s.reds[key]; ok {
		return m
	}
	slo, ok := s.slos[id]
	if !ok {
		slo = obs.NewSLO(reg, fmt.Sprintf("paced_slo_burn_rate_permille{tenant=%q}", id),
			s.cfg.SLOTarget, s.cfg.SLOObjective)
		s.slos[id] = slo
	}
	m := obs.NewRED(reg, "paced_http", route, id, slo)
	s.reds[key] = m
	return m
}

func (s *Server) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mUnknownTarget = reg.Counter("paced_unknown_target_total")
	s.mUnauthorized = reg.Counter("paced_unauthorized_total")
	s.mAdminReqs = reg.Counter("paced_admin_requests_total")
	s.mQuotaDenied = reg.Counter("paced_quota_denied_total")
	s.mEvicted = reg.Counter("paced_evicted_total")
	s.mRevived = reg.Counter("paced_revived_total")
	s.mTenants = reg.Gauge("paced_tenants")
	s.mDraining = reg.Gauge("paced_draining")
}

// Registry exposes the tenant directory (cmd/paced boot, tests).
func (s *Server) Registry() *tenant.Registry { return s.reg }

// Handler exposes the service mux (for httptest or custom listeners).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (host:port; port 0 picks an ephemeral one) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("targetserver: listen: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always errors on Shutdown
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new requests are refused (healthz 503,
// v1 endpoints 503 draining), in-flight requests on every tenant
// complete — the drain iterates the whole registry, so a multi-tenant
// host answers each tenant's queued jobs before exiting — and then the
// model goroutines stop. ctx bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	s.mDraining.Set(1)
	if !already && s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	var err error
	if !already && s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	err = errors.Join(err, s.reg.DrainAll(ctx))
	return err
}

// Kill abruptly stops serving — the listener closes and in-flight
// connections are torn down with no drain. It simulates a crashed
// backend (the integration-test stand-in for SIGKILL); the registry and
// its model goroutines are intentionally left unreclaimed, exactly like
// a dead process's state.
func (s *Server) Kill() {
	if s.httpSrv != nil {
		s.httpSrv.Close() //nolint:errcheck // abrupt death: errors are the point
	}
}

// Close is Shutdown with a short drain bound.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// resolve routes an id to its tenant, answering the error itself (404
// unknown, 503 not ready / draining / evicted) when it cannot. A hit on
// an evicted tenant triggers lazy revival in the background and tells
// the client to retry — by the time a well-behaved client comes back,
// the world is rebuilt (bit-identically, by spec construction).
func (s *Server) resolve(w http.ResponseWriter, id string) (*tenant.Tenant, bool) {
	t, err := s.reg.Get(id)
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		s.mUnknownTarget.Inc()
		s.writeError(w, http.StatusNotFound, wire.CodeUnknownTarget, err.Error())
		return nil, false
	case errors.Is(err, tenant.ErrEvicted):
		go s.reviveAsync(id)
		w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeEvicted, err.Error())
		return nil, false
	case errors.Is(err, tenant.ErrNotReady):
		w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeNotReady, err.Error())
		return nil, false
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return nil, false
	}
	if t.Draining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "tenant "+id+" draining")
		return nil, false
	}
	return t, true
}

// reviveAsync rebuilds an evicted tenant off the request path. Losing a
// race is fine — Revive coalesces concurrent revivals on the creating
// slot, so at most one world build runs per id.
func (s *Server) reviveAsync(id string) {
	if _, err := s.reg.Revive(context.Background(), id); err == nil {
		s.mRevived.Inc()
		s.mTenants.Set(int64(s.reg.Len()))
	}
}

// deprecateLegacy stamps the un-tenanted /v1/estimate|execute aliases:
// a Deprecation response header on every hit and one server log line
// per process. The aliases route through the same handlers as
// /v1/targets/default/... and will be removed two protocol majors
// after v2 (see DESIGN.md, "Removal horizon").
func (s *Server) deprecateLegacy(w http.ResponseWriter, path string) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", "</v1/targets/"+DefaultTenant+path[len("/v1"):]+`>; rel="successor-version"`)
	s.legacyOnce.Do(func() {
		log.Printf("targetserver: deprecated unrouted %s hit; clients should move to /v1/targets/{id}%s",
			path, path[len("/v1"):])
	})
}

// dataCodecs negotiates one data-path exchange's codecs: the request
// body's from Content-Type, the response's from Accept. Disabled or
// unknown request codecs answer 415 unsupported_media; a response-side
// ask the server cannot honor silently falls back to JSON.
func (s *Server) dataCodecs(w http.ResponseWriter, r *http.Request) (reqC, respC wire.Codec, ok bool) {
	reqC, known := wire.CodecForContentType(r.Header.Get("Content-Type"))
	if !known || !s.codecs[reqC.Name()] {
		s.writeError(w, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia,
			fmt.Sprintf("unsupported Content-Type %q", r.Header.Get("Content-Type")))
		return nil, nil, false
	}
	respC = wire.JSON
	if wire.AcceptsBinary(r.Header.Get("Accept")) && s.codecs["binary"] {
		respC = wire.Binary
	}
	return reqC, respC, true
}

// readBody slurps a bounded request body for codec decoding.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	return raw, true
}

// decodeError maps a codec decode failure onto the wire: rejected
// binary frames get their own machine-readable code.
func (s *Server) decodeError(w http.ResponseWriter, err error) {
	code := wire.CodeBadRequest
	if errors.Is(err, wire.ErrBadFrame) {
		code = wire.CodeBadFrame
	}
	s.writeError(w, http.StatusBadRequest, code, err.Error())
}

// admitData runs the shared data-path preamble: drain gate, identity,
// tenant resolution and per-client admission.
func (s *Server) admitData(w http.ResponseWriter, r *http.Request, id string) (*tenant.Tenant, bool) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return nil, false
	}
	client, ok := s.clientIdentity(w, r)
	if !ok {
		return nil, false
	}
	t, ok := s.resolve(w, id)
	if !ok {
		return nil, false
	}
	if !t.Admit(client) {
		s.shed(w, wire.CodeRateLimited, "client "+client+" over rate limit")
		return nil, false
	}
	return t, true
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, id string) {
	reqC, respC, ok := s.dataCodecs(w, r)
	if !ok {
		return
	}
	t, ok := s.admitData(w, r, id)
	if !ok {
		return
	}
	raw, ok := s.readBody(w, r)
	if !ok {
		return
	}
	req, err := reqC.DecodeEstimateRequest(raw)
	if err != nil {
		s.decodeError(w, err)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > wire.MaxBatch {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("request must carry 1..%d queries, got %d", wire.MaxBatch, len(req.Queries)))
		return
	}
	qs, err := wire.DecodeQueries(t.Meta(), req.Queries)
	if err != nil {
		t.Metrics().Invalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
		return
	}

	ests, err := t.Estimate(r.Context(), qs)
	if err != nil {
		s.replyError(w, t, err)
		return
	}
	resp := wire.EstimateResponse{V: wire.Version, Estimates: wire.FromFloats(ests)}
	if blob, err := respC.EncodeEstimateResponse(&resp); err == nil {
		s.writeRaw(w, http.StatusOK, respC.ContentType(), blob)
	} else {
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
	}
}

// decodeExecuteBody shares the execute-request decode + validation
// between the sync execute and the streamed chunk handlers.
func (s *Server) decodeExecuteBody(w http.ResponseWriter, r *http.Request, t *tenant.Tenant, reqC wire.Codec) (*wire.ExecuteRequest, []*query.Query, bool) {
	raw, ok := s.readBody(w, r)
	if !ok {
		return nil, nil, false
	}
	req, err := reqC.DecodeExecuteRequest(raw)
	if err != nil {
		s.decodeError(w, err)
		return nil, nil, false
	}
	if len(req.Queries) == 0 || len(req.Queries) > wire.MaxBatch || len(req.Queries) != len(req.Cards) {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("want 1..%d queries with matching cards, got %d queries / %d cards",
				wire.MaxBatch, len(req.Queries), len(req.Cards)))
		return nil, nil, false
	}
	qs, err := wire.DecodeQueries(t.Meta(), req.Queries)
	if err != nil {
		t.Metrics().Invalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
		return nil, nil, false
	}
	return req, qs, true
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request, id string) {
	reqC, respC, ok := s.dataCodecs(w, r)
	if !ok {
		return
	}
	t, ok := s.admitData(w, r, id)
	if !ok {
		return
	}
	req, qs, ok := s.decodeExecuteBody(w, r, t, reqC)
	if !ok {
		return
	}

	if err := t.Execute(r.Context(), qs, wire.ToFloats(req.Cards)); err != nil {
		s.replyError(w, t, err)
		return
	}
	resp := wire.ExecuteResponse{V: wire.Version, Executed: len(qs)}
	if blob, err := respC.EncodeExecuteResponse(&resp); err == nil {
		s.writeRaw(w, http.StatusOK, respC.ContentType(), blob)
	} else {
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
	}
}

// executionResponse renders a tenant ExecutionStatus onto the wire.
func executionResponse(st tenant.ExecutionStatus) wire.ExecutionResponse {
	resp := wire.ExecutionResponse{
		V:       wire.Version,
		Token:   st.Token,
		State:   wire.ExecutionRunning,
		Pending: st.Pending,
		Applied: st.Applied,
		Queries: st.Queries,
	}
	switch {
	case st.Err != nil:
		resp.State = wire.ExecutionFailed
		resp.Error = st.Err.Error()
	case st.Pending == 0:
		resp.State = wire.ExecutionDone
	}
	return resp
}

// handleOpenExecution opens (or idempotently re-opens) a streamed
// execute. The token is client-supplied — content-derived on the client
// side, so a whole-stream retry reuses it. Control plane: always JSON.
func (s *Server) handleOpenExecution(w http.ResponseWriter, r *http.Request, id string) {
	t, ok := s.admitData(w, r, id)
	if !ok {
		return
	}
	var req wire.OpenExecutionRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if !wire.ValidExecutionToken(req.Token) {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("execution token must be 1..%d URL-safe chars", wire.MaxExecutionToken))
		return
	}
	st, err := t.OpenExecution(req.Token)
	if err != nil {
		s.replyExecutionError(w, t, err)
		return
	}
	s.writeJSON(w, http.StatusOK, executionResponse(st))
}

// handleExecutionChunk accepts one chunk of a streamed execute, acking
// 202 as soon as the chunk is enqueued — the retrain applies
// asynchronously, so the client pipelines chunks. The chunk body is an
// ExecuteRequest in the negotiated codec; the sequence number travels
// in the X-Pace-Chunk-Seq header, and (token, seq) is the idempotency
// key: duplicates ack 202 again without re-applying.
func (s *Server) handleExecutionChunk(w http.ResponseWriter, r *http.Request, id, token string) {
	reqC, _, ok := s.dataCodecs(w, r)
	if !ok {
		return
	}
	t, ok := s.admitData(w, r, id)
	if !ok {
		return
	}
	seq, err := strconv.ParseInt(r.Header.Get(wire.ChunkSeqHeader), 10, 64)
	if err != nil || seq < 0 {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			wire.ChunkSeqHeader+" must carry the chunk's non-negative sequence number")
		return
	}
	req, qs, ok := s.decodeExecuteBody(w, r, t, reqC)
	if !ok {
		return
	}
	st, err := t.SubmitChunk(r.Context(), token, seq, qs, wire.ToFloats(req.Cards))
	if err != nil {
		s.replyExecutionError(w, t, err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, executionResponse(st))
}

// handleExecutionStatus is the completion poll: 200 with the
// execution's progress. Clients are done when all their chunks are
// acked and State is done.
func (s *Server) handleExecutionStatus(w http.ResponseWriter, r *http.Request, id, token string) {
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return
	}
	if _, ok := s.clientIdentity(w, r); !ok {
		return
	}
	t, ok := s.resolve(w, id)
	if !ok {
		return
	}
	st, err := t.ExecutionStatus(token)
	if err != nil {
		s.replyExecutionError(w, t, err)
		return
	}
	s.writeJSON(w, http.StatusOK, executionResponse(st))
}

// handleExecutionDelete forgets a completed stream's dedupe state.
func (s *Server) handleExecutionDelete(w http.ResponseWriter, r *http.Request, id, token string) {
	if _, ok := s.clientIdentity(w, r); !ok {
		return
	}
	t, ok := s.resolve(w, id)
	if !ok {
		return
	}
	st, err := t.DeleteExecution(token)
	if err != nil {
		s.replyExecutionError(w, t, err)
		return
	}
	s.writeJSON(w, http.StatusOK, executionResponse(st))
}

// replyExecutionError extends replyError with the execution taxonomy.
func (s *Server) replyExecutionError(w http.ResponseWriter, t *tenant.Tenant, err error) {
	if errors.Is(err, tenant.ErrUnknownExecution) {
		s.writeError(w, http.StatusNotFound, wire.CodeUnknownExecution, err.Error())
		return
	}
	s.replyError(w, t, err)
}

// handleCreateTarget provisions a tenant through the registry's Factory.
// The request blocks for the whole world build; concurrent creates of
// the same id answer 409 immediately (the slot lists as "creating").
func (s *Server) handleCreateTarget(w http.ResponseWriter, r *http.Request) {
	s.mAdminReqs.Inc()
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return
	}
	client, ok := s.clientIdentity(w, r)
	if !ok {
		return
	}
	var req wire.CreateTargetRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	t, err := s.reg.Create(r.Context(), tenant.Spec{
		ID:         req.Target.ID,
		Dataset:    req.Target.Dataset,
		Model:      req.Target.Model,
		Seed:       req.Target.Seed,
		SeedOffset: req.Target.SeedOffset,
		Scale:      req.Target.Scale,
		CacheSize:  req.Target.CacheSize,
		// Owner is stamped from the authenticated identity, never taken
		// off the wire — per-owner quotas count what a token actually
		// provisioned, not what it claims.
		Owner: client,
	})
	switch {
	case errors.Is(err, tenant.ErrExists):
		s.writeError(w, http.StatusConflict, wire.CodeTargetExists, err.Error())
		return
	case errors.Is(err, tenant.ErrQuota):
		s.mQuotaDenied.Inc()
		w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
		s.writeError(w, http.StatusTooManyRequests, wire.CodeQuotaExceeded, err.Error())
		return
	case errors.Is(err, tenant.ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, err.Error())
		return
	case errors.Is(err, tenant.ErrCreatePanic):
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return // the admin hung up mid-build; nobody is reading
	case err != nil:
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, err.Error())
		return
	}
	s.mTenants.Set(int64(s.reg.Len()))
	s.writeJSON(w, http.StatusOK, wire.CreateTargetResponse{
		V:      wire.Version,
		Target: targetInfo(tenant.Info{Spec: t.Spec(), State: tenant.StateReady}),
	})
}

func (s *Server) handleDeleteTarget(w http.ResponseWriter, r *http.Request) {
	s.mAdminReqs.Inc()
	if _, ok := s.clientIdentity(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	err := s.reg.Delete(r.Context(), id)
	switch {
	case errors.Is(err, tenant.ErrNotFound):
		s.mUnknownTarget.Inc()
		s.writeError(w, http.StatusNotFound, wire.CodeUnknownTarget, err.Error())
		return
	case errors.Is(err, tenant.ErrNotReady):
		w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeNotReady, err.Error())
		return
	case err != nil:
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
		return
	}
	s.mTenants.Set(int64(s.reg.Len()))
	s.writeJSON(w, http.StatusOK, wire.DeleteTargetResponse{V: wire.Version, Deleted: id})
}

func (s *Server) handleListTargets(w http.ResponseWriter, r *http.Request) {
	s.mAdminReqs.Inc()
	if _, ok := s.clientIdentity(w, r); !ok {
		return
	}
	infos := s.reg.List()
	resp := wire.ListTargetsResponse{V: wire.Version, Targets: make([]wire.TargetInfo, len(infos))}
	for i, info := range infos {
		resp.Targets[i] = targetInfo(info)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func targetInfo(info tenant.Info) wire.TargetInfo {
	return wire.TargetInfo{
		TargetSpec: wire.TargetSpec{
			ID:         info.Spec.ID,
			Dataset:    info.Spec.Dataset,
			Model:      info.Spec.Model,
			Seed:       info.Spec.Seed,
			SeedOffset: info.Spec.SeedOffset,
			Scale:      info.Spec.Scale,
			CacheSize:  info.Spec.CacheSize,
		},
		State: info.State,
	}
}

// handleHealthz reports overall service health (503 while draining) and
// every tenant's readiness, so each tenant is observable independently.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := wire.HealthzResponse{Status: "ok", Tenants: map[string]string{}}
	for _, info := range s.reg.List() {
		resp.Tenants[info.Spec.ID] = info.State
	}
	status := http.StatusOK
	if s.isDraining() {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

// handleTenantHealthz is the per-tenant readiness probe: 200 only when
// the tenant exists and is ready.
func (s *Server) handleTenantHealthz(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return
	}
	if _, ok := s.resolve(w, id); !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, wire.HealthzResponse{
		Status:  "ok",
		Tenants: map[string]string{id: tenant.StateReady},
	})
}

// maxBody bounds request bodies: wire.MaxBatch queries at ~16B/bound
// leaves ample headroom at 64 MiB.
const maxBody = 64 << 20

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "malformed body: "+err.Error())
		return false
	}
	var v int
	switch req := dst.(type) {
	case *wire.EstimateRequest:
		v = req.V
	case *wire.ExecuteRequest:
		v = req.V
	case *wire.CreateTargetRequest:
		v = req.V
	case *wire.OpenExecutionRequest:
		v = req.V
	}
	if v != wire.Version {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("protocol version %d, server speaks %d", v, wire.Version))
		return false
	}
	return true
}

// replyError maps a tenant-side error onto the wire: shed admission is
// a 429, draining a 503, invalid queries the client's fault (400), and
// everything else an internal failure.
func (s *Server) replyError(w http.ResponseWriter, t *tenant.Tenant, err error) {
	switch {
	case errors.Is(err, tenant.ErrQueueFull):
		s.shed(w, wire.CodeOverloaded, err.Error())
	case errors.Is(err, tenant.ErrDraining):
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, err.Error())
	case errors.Is(err, ce.ErrInvalidQuery):
		t.Metrics().Invalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The request context died mid-evaluation; nobody is reading.
	default:
		t.Metrics().Errors.Inc()
		s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
	}
}

// shed answers an admission rejection: 429 with the Retry-After hint,
// the signal a well-behaved client backs off on.
func (s *Server) shed(w http.ResponseWriter, code, msg string) {
	w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
	s.writeError(w, http.StatusTooManyRequests, code, msg)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, wire.ErrorResponse{V: wire.Version, Code: code, Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client hang-ups are its problem
}

// writeRaw ships a pre-encoded data-path response in its codec's
// Content-Type.
func (s *Server) writeRaw(w http.ResponseWriter, status int, contentType string, blob []byte) {
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	w.Write(blob) //nolint:errcheck // client hang-ups are its problem
}
