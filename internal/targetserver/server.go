// Package targetserver hosts a ce.Target behind the paced HTTP/JSON
// service, turning the in-process black box into the deployed estimator
// of PACE's threat model: attackers (and benign clients) reach it only
// through /v1/estimate and /v1/execute over a real wire.
//
// The server protects the model the way a production estimator service
// must:
//
//   - a single model goroutine owns the estimator — CE model Forward
//     passes are stateful, so every estimate and every incremental
//     update is serialized through it (updates can never interleave
//     with inference);
//   - estimate requests are micro-batched: the model goroutine gathers
//     queued requests up to Config.MaxBatch queries or Config.BatchWindow,
//     then evaluates the whole batch in one pass;
//   - admission is bounded: when the queue is full the server sheds the
//     request with 429 + Retry-After instead of queuing without limit
//     and collapsing into timeouts;
//   - per-client token buckets rate-limit by X-Pace-Client (falling back
//     to the peer host), also answering 429;
//   - Shutdown drains gracefully: /healthz flips to 503 so load
//     balancers stop routing, in-flight requests finish, queued jobs are
//     answered, and only then does the model goroutine exit.
package targetserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/wire"
)

// Config tunes the service. The zero value serves with sane defaults.
type Config struct {
	// MaxBatch is the largest number of queries the model goroutine
	// evaluates per micro-batch (default 64). Requests larger than
	// wire.MaxBatch are rejected outright.
	MaxBatch int
	// BatchWindow is how long the model goroutine waits for more
	// estimate requests after the first one arrives, trading a bounded
	// latency bump for fewer wakeups under load (default 200µs).
	BatchWindow time.Duration
	// QueueDepth bounds the estimate admission queue in requests
	// (default 128). A full queue sheds with 429.
	QueueDepth int
	// ExecQueueDepth bounds the execute (retraining feedback) queue
	// (default 8). Updates are heavy; shedding them early beats
	// accumulating a retraining backlog.
	ExecQueueDepth int
	// RatePerSec and Burst configure the per-client token bucket;
	// RatePerSec 0 disables rate limiting. Burst defaults to one
	// second's worth of tokens.
	RatePerSec float64
	Burst      int
	// RetryAfter is the backoff hint sent with every 429/503 (default
	// 1s; rounded up to whole seconds on the wire).
	RetryAfter time.Duration
	// Telemetry instruments the service (paced_* counters, latency and
	// batch-size histograms, queue gauges) and, when it carries a
	// registry, mounts /metrics and /debug/pprof on the service mux.
	Telemetry *obs.Telemetry
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch > wire.MaxBatch {
		c.MaxBatch = wire.MaxBatch
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.ExecQueueDepth <= 0 {
		c.ExecQueueDepth = 8
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSec)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

type estJob struct {
	ctx   context.Context
	qs    []*query.Query
	reply chan estReply // buffered(1): the model loop never blocks on it
}

type estReply struct {
	ests []float64
	err  error
}

type execJob struct {
	ctx   context.Context
	qs    []*query.Query
	cards []float64
	reply chan error // buffered(1)
}

// Server is one hosted estimator service instance.
type Server struct {
	cfg    Config
	target ce.Target
	meta   *query.Meta
	mux    *http.ServeMux

	estQ  chan *estJob
	execQ chan *execJob
	stop  chan struct{} // closed by Shutdown after the listener drains
	done  chan struct{} // closed when the model goroutine exits

	mu       sync.Mutex
	draining bool
	clients  map[string]*bucket

	httpSrv *http.Server
	ln      net.Listener

	// Registry instruments; all nil-safe no-ops without telemetry.
	mEstReqs, mEstQueries   *obs.Counter
	mExecReqs, mExecQueries *obs.Counter
	mShed, mRateLimited     *obs.Counter
	mInvalid, mErrors       *obs.Counter
	mBatches                *obs.Counter
	mQueueDepth, mDraining  *obs.Gauge
	hBatch, hLatencyUs      *obs.Histogram
}

// New builds a server hosting target, whose queries are decoded against
// meta, and starts its model goroutine. Callers must eventually call
// Shutdown (or Close) even when they never Start a listener — the
// handler form used with httptest still owns the goroutine.
func New(target ce.Target, meta *query.Meta, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		target:  target,
		meta:    meta,
		estQ:    make(chan *estJob, cfg.QueueDepth),
		execQ:   make(chan *execJob, cfg.ExecQueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		clients: make(map[string]*bucket),
	}
	s.instrument(cfg.Telemetry.Registry())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if reg := cfg.Telemetry.Registry(); reg != nil {
		s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
		})
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	go s.modelLoop()
	return s
}

func (s *Server) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mEstReqs = reg.Counter("paced_estimate_requests_total")
	s.mEstQueries = reg.Counter("paced_estimate_queries_total")
	s.mExecReqs = reg.Counter("paced_execute_requests_total")
	s.mExecQueries = reg.Counter("paced_execute_queries_total")
	s.mShed = reg.Counter("paced_shed_total")
	s.mRateLimited = reg.Counter("paced_rate_limited_total")
	s.mInvalid = reg.Counter("paced_invalid_queries_total")
	s.mErrors = reg.Counter("paced_errors_total")
	s.mBatches = reg.Counter("paced_batches_total")
	s.mQueueDepth = reg.Gauge("paced_estimate_queue_depth")
	s.mDraining = reg.Gauge("paced_draining")
	s.hBatch = reg.Histogram("paced_batch_queries")
	s.hLatencyUs = reg.Histogram("paced_estimate_latency_us")
}

// Handler exposes the service mux (for httptest or custom listeners).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (host:port; port 0 picks an ephemeral one) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("targetserver: listen: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	go s.httpSrv.Serve(ln) //nolint:errcheck // Serve always errors on Shutdown
	return ln.Addr().String(), nil
}

// Shutdown drains gracefully: new requests are refused (healthz 503,
// v1 endpoints 503 draining), in-flight requests complete — the model
// goroutine keeps answering queued jobs until the listener is empty —
// and then the model goroutine exits. ctx bounds the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		<-s.done
		return nil
	}
	s.mDraining.Set(1)
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	close(s.stop)
	select {
	case <-s.done:
	case <-ctx.Done():
		err = errors.Join(err, ctx.Err())
	}
	return err
}

// Close is Shutdown with a short drain bound.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return s.Shutdown(ctx)
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// modelLoop is the single goroutine that owns the estimator: it gathers
// estimate jobs into micro-batches and runs execute (retraining) jobs,
// one at a time. After stop it drains whatever is still queued (their
// handlers are waiting) and exits.
func (s *Server) modelLoop() {
	defer close(s.done)
	for {
		select {
		case j := <-s.estQ:
			s.mQueueDepth.Add(-1)
			s.gatherAndEval(j)
		case j := <-s.execQ:
			s.runExec(j)
		case <-s.stop:
			s.drainQueues()
			return
		}
	}
}

// gatherAndEval collects more estimate jobs for up to BatchWindow (or
// until MaxBatch queries are pending), then evaluates them all.
func (s *Server) gatherAndEval(first *estJob) {
	batch := []*estJob{first}
	n := len(first.qs)
	timer := time.NewTimer(s.cfg.BatchWindow)
	defer timer.Stop()
gather:
	for n < s.cfg.MaxBatch {
		select {
		case j := <-s.estQ:
			s.mQueueDepth.Add(-1)
			batch = append(batch, j)
			n += len(j.qs)
		case <-timer.C:
			break gather
		case <-s.stop:
			break gather
		}
	}
	s.mBatches.Inc()
	s.hBatch.Observe(float64(n))
	for _, j := range batch {
		j.reply <- s.evalJob(j)
	}
}

func (s *Server) evalJob(j *estJob) estReply {
	if err := j.ctx.Err(); err != nil {
		return estReply{err: err} // caller already gone; skip the work
	}
	ests := make([]float64, len(j.qs))
	for i, q := range j.qs {
		est, err := s.target.EstimateContext(j.ctx, q)
		if err != nil {
			return estReply{err: err}
		}
		ests[i] = est
	}
	return estReply{ests: ests}
}

func (s *Server) runExec(j *execJob) {
	if err := j.ctx.Err(); err != nil {
		j.reply <- err
		return
	}
	j.reply <- s.target.ExecuteWorkload(j.ctx, j.qs, j.cards)
}

// drainQueues answers every still-queued job after stop; their handlers
// block on the reply channels until the listener drain completes.
func (s *Server) drainQueues() {
	for {
		select {
		case j := <-s.estQ:
			s.mQueueDepth.Add(-1)
			j.reply <- s.evalJob(j)
		case j := <-s.execQ:
			s.runExec(j)
		default:
			return
		}
	}
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mEstReqs.Inc()
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return
	}
	if !s.admitClient(w, r) {
		return
	}
	var req wire.EstimateRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > wire.MaxBatch {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("request must carry 1..%d queries, got %d", wire.MaxBatch, len(req.Queries)))
		return
	}
	qs, err := wire.DecodeQueries(s.meta, req.Queries)
	if err != nil {
		s.mInvalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
		return
	}
	s.mEstQueries.Add(int64(len(qs)))

	job := &estJob{ctx: r.Context(), qs: qs, reply: make(chan estReply, 1)}
	select {
	case s.estQ <- job:
		s.mQueueDepth.Add(1)
	default:
		s.mShed.Inc()
		s.shed(w, wire.CodeOverloaded, "estimate queue full")
		return
	}

	select {
	case rep := <-job.reply:
		if rep.err != nil {
			s.replyError(w, rep.err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.EstimateResponse{V: wire.Version, Estimates: wire.FromFloats(rep.ests)})
		s.hLatencyUs.Observe(float64(time.Since(start).Microseconds()))
	case <-r.Context().Done():
		// The client hung up; the model loop will notice via job.ctx.
	case <-s.done:
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server stopped")
	}
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	s.mExecReqs.Inc()
	if s.isDraining() {
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server draining")
		return
	}
	if !s.admitClient(w, r) {
		return
	}
	var req wire.ExecuteRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > wire.MaxBatch || len(req.Queries) != len(req.Cards) {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("want 1..%d queries with matching cards, got %d queries / %d cards",
				wire.MaxBatch, len(req.Queries), len(req.Cards)))
		return
	}
	qs, err := wire.DecodeQueries(s.meta, req.Queries)
	if err != nil {
		s.mInvalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
		return
	}
	s.mExecQueries.Add(int64(len(qs)))

	job := &execJob{ctx: r.Context(), qs: qs, cards: wire.ToFloats(req.Cards), reply: make(chan error, 1)}
	select {
	case s.execQ <- job:
	default:
		s.mShed.Inc()
		s.shed(w, wire.CodeOverloaded, "execute queue full")
		return
	}

	select {
	case err := <-job.reply:
		if err != nil {
			s.replyError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, wire.ExecuteResponse{V: wire.Version, Executed: len(qs)})
	case <-r.Context().Done():
	case <-s.done:
		s.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "server stopped")
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// maxBody bounds request bodies: wire.MaxBatch queries at ~16B/bound
// leaves ample headroom at 64 MiB.
const maxBody = 64 << 20

func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "malformed body: "+err.Error())
		return false
	}
	var v int
	switch req := dst.(type) {
	case *wire.EstimateRequest:
		v = req.V
	case *wire.ExecuteRequest:
		v = req.V
	}
	if v != wire.Version {
		s.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("protocol version %d, server speaks %d", v, wire.Version))
		return false
	}
	return true
}

// replyError maps a model-side error onto the wire: invalid queries are
// the client's fault (400), everything else is an internal failure.
func (s *Server) replyError(w http.ResponseWriter, err error) {
	if errors.Is(err, ce.ErrInvalidQuery) {
		s.mInvalid.Inc()
		s.writeError(w, http.StatusBadRequest, wire.CodeInvalidQuery, err.Error())
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		// The request context died mid-evaluation; nobody is reading.
		return
	}
	s.mErrors.Inc()
	s.writeError(w, http.StatusInternalServerError, wire.CodeInternal, err.Error())
}

// shed answers an admission rejection: 429 with the Retry-After hint,
// the signal a well-behaved client backs off on.
func (s *Server) shed(w http.ResponseWriter, code, msg string) {
	w.Header().Set("Retry-After", wire.RetryAfter(s.cfg.RetryAfter))
	s.writeError(w, http.StatusTooManyRequests, code, msg)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, wire.ErrorResponse{V: wire.Version, Code: code, Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client hang-ups are its problem
}
