package targetserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
)

// mulTarget answers lo*k, so routed requests reveal which tenant's model
// answered; estimates are counted to make cache hits observable.
type mulTarget struct {
	k         float64
	estimates atomic.Int64
}

func (m *mulTarget) EstimateContext(_ context.Context, q *query.Query) (float64, error) {
	m.estimates.Add(1)
	return q.Bounds[0][0] * m.k, nil
}

func (m *mulTarget) ExecuteWorkload(context.Context, []*query.Query, []float64) error {
	return nil
}

// execGateTarget parks ExecuteWorkload on a gate so a drain can be
// observed waiting for in-flight retraining.
type execGateTarget struct {
	gate     chan struct{}
	entered  chan struct{}
	executed atomic.Int64
}

func (g *execGateTarget) EstimateContext(_ context.Context, q *query.Query) (float64, error) {
	return q.Bounds[0][0], nil
}

func (g *execGateTarget) ExecuteWorkload(ctx context.Context, _ []*query.Query, _ []float64) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.gate:
	case <-ctx.Done():
		return ctx.Err()
	}
	g.executed.Add(1)
	return nil
}

// newMultiServer stands up a routed server over pre-built tenants.
func newMultiServer(t *testing.T, cfg targetserver.Config, specs map[string]ce.Target) (*targetserver.Server, *httptest.Server) {
	t.Helper()
	reg := tenant.NewRegistry(nil, cfg.TenantConfig())
	for id, target := range specs {
		if _, err := reg.Add(tenant.Spec{ID: id, CacheSize: cacheSizeFor(id)}, target, testMeta()); err != nil {
			t.Fatal(err)
		}
	}
	srv := targetserver.NewMulti(reg, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

// cacheSizeFor gives tenants named "cached*" a small estimate cache.
func cacheSizeFor(id string) int {
	if strings.HasPrefix(id, "cached") {
		return 4
	}
	return 0
}

// request posts body (nil = no body) with optional client header and
// bearer token.
func request(t *testing.T, method, url string, body any, client, token string) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(targetserver.ClientHeader, client)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func estReq() wire.EstimateRequest {
	return wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
}

func TestRoutedEndpointsReachTheNamedTenant(t *testing.T) {
	_, hs := newMultiServer(t, targetserver.Config{}, map[string]ce.Target{
		"default": &mulTarget{k: 10},
		"b":       &mulTarget{k: 1000},
	})

	// Routed estimate answers with tenant b's model, not default's.
	resp := postJSON(t, hs.URL+"/v1/targets/b/estimate", estReq(), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed estimate: status %d", resp.StatusCode)
	}
	if got := decodeBody[wire.EstimateResponse](t, resp).Estimates[0].Float(); got != 0.25*1000 {
		t.Errorf("tenant b estimate = %v, want %v", got, 0.25*1000)
	}

	// The legacy unrouted endpoint aliases tenant "default".
	resp2 := postJSON(t, hs.URL+"/v1/estimate", estReq(), "")
	if got := decodeBody[wire.EstimateResponse](t, resp2).Estimates[0].Float(); got != 0.25*10 {
		t.Errorf("default-alias estimate = %v, want %v", got, 0.25*10)
	}

	// Unknown tenants are a 404 with a machine-readable code.
	resp3 := postJSON(t, hs.URL+"/v1/targets/ghost/estimate", estReq(), "")
	if resp3.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", resp3.StatusCode)
	}
	if code := decodeBody[wire.ErrorResponse](t, resp3).Code; code != wire.CodeUnknownTarget {
		t.Errorf("code %q, want %q", code, wire.CodeUnknownTarget)
	}
}

func TestPerTenantEstimateCache(t *testing.T) {
	mt := &mulTarget{k: 7}
	_, hs := newMultiServer(t, targetserver.Config{}, map[string]ce.Target{"cached": mt})

	for i := 0; i < 2; i++ {
		resp := postJSON(t, hs.URL+"/v1/targets/cached/estimate", estReq(), "")
		if got := decodeBody[wire.EstimateResponse](t, resp).Estimates[0].Float(); got != 0.25*7 {
			t.Fatalf("call %d: estimate %v, want %v", i, got, 0.25*7)
		}
	}
	if got := mt.estimates.Load(); got != 1 {
		t.Errorf("model evaluated %d times, want 1 (second call should hit the plan cache)", got)
	}
}

func TestAdminCreateListDelete(t *testing.T) {
	factory := func(ctx context.Context, spec tenant.Spec) (ce.Target, *query.Meta, error) {
		return &mulTarget{k: 100}, testMeta(), nil
	}
	cfg := targetserver.Config{}
	reg := tenant.NewRegistry(factory, cfg.TenantConfig())
	srv := targetserver.NewMulti(reg, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	create := wire.CreateTargetRequest{V: wire.Version, Target: wire.TargetSpec{
		ID: "dyn", Dataset: "dmv", Model: "fcn", Seed: 1,
	}}
	resp := request(t, http.MethodPost, hs.URL+"/v1/targets", create, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if got := decodeBody[wire.CreateTargetResponse](t, resp); got.Target.ID != "dyn" || got.Target.State != "ready" {
		t.Fatalf("create response = %+v", got.Target)
	}

	// The new tenant serves immediately.
	er := postJSON(t, hs.URL+"/v1/targets/dyn/estimate", estReq(), "")
	if er.StatusCode != http.StatusOK {
		t.Fatalf("estimate on created tenant: status %d", er.StatusCode)
	}
	er.Body.Close()

	// A duplicate id is a conflict.
	dup := request(t, http.MethodPost, hs.URL+"/v1/targets", create, "", "")
	if dup.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", dup.StatusCode)
	}
	if code := decodeBody[wire.ErrorResponse](t, dup).Code; code != wire.CodeTargetExists {
		t.Errorf("code %q, want %q", code, wire.CodeTargetExists)
	}

	lr := request(t, http.MethodGet, hs.URL+"/v1/targets", nil, "", "")
	list := decodeBody[wire.ListTargetsResponse](t, lr)
	if len(list.Targets) != 1 || list.Targets[0].ID != "dyn" {
		t.Fatalf("list = %+v", list.Targets)
	}

	dr := request(t, http.MethodDelete, hs.URL+"/v1/targets/dyn", nil, "", "")
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dr.StatusCode)
	}
	if got := decodeBody[wire.DeleteTargetResponse](t, dr).Deleted; got != "dyn" {
		t.Errorf("deleted = %q, want dyn", got)
	}
	gone := postJSON(t, hs.URL+"/v1/targets/dyn/estimate", estReq(), "")
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("estimate after delete: status %d, want 404", gone.StatusCode)
	}
	gone.Body.Close()
}

func TestAuthTokensGateAndDeriveIdentity(t *testing.T) {
	_, hs := newMultiServer(t, targetserver.Config{
		AuthTokens: map[string]string{"s3cret-a": "alice", "s3cret-b": "bob"},
		RatePerSec: 0.001,
		Burst:      1,
	}, map[string]ce.Target{"default": &mulTarget{k: 2}})

	// No token: 401 with a challenge, and the model is never consulted.
	resp := request(t, http.MethodPost, hs.URL+"/v1/estimate", estReq(), "spoof", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Error("401 without WWW-Authenticate challenge")
	}
	if code := decodeBody[wire.ErrorResponse](t, resp).Code; code != wire.CodeUnauthorized {
		t.Errorf("code %q, want %q", code, wire.CodeUnauthorized)
	}
	bad := request(t, http.MethodPost, hs.URL+"/v1/estimate", estReq(), "", "wrong")
	if bad.StatusCode != http.StatusUnauthorized {
		t.Errorf("unknown token: status %d, want 401", bad.StatusCode)
	}
	bad.Body.Close()

	// Alice burns her 1-token burst, then tries to dodge the rate limit by
	// spoofing the client header. Identity is token-derived, so the bucket
	// follows the token and she still gets 429 — while bob's token passes.
	ok := request(t, http.MethodPost, hs.URL+"/v1/estimate", estReq(), "", "s3cret-a")
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("alice first call: status %d, want 200", ok.StatusCode)
	}
	ok.Body.Close()
	spoofed := request(t, http.MethodPost, hs.URL+"/v1/estimate", estReq(), "someone-else", "s3cret-a")
	if spoofed.StatusCode != http.StatusTooManyRequests {
		t.Errorf("spoofed header on alice's token: status %d, want 429", spoofed.StatusCode)
	}
	if code := decodeBody[wire.ErrorResponse](t, spoofed).Code; code != wire.CodeRateLimited {
		t.Errorf("code %q, want %q", code, wire.CodeRateLimited)
	}
	bobResp := request(t, http.MethodPost, hs.URL+"/v1/estimate", estReq(), "", "s3cret-b")
	if bobResp.StatusCode != http.StatusOK {
		t.Errorf("bob: status %d, want 200", bobResp.StatusCode)
	}
	bobResp.Body.Close()
}

func TestParseAuthTokens(t *testing.T) {
	tokens, err := targetserver.ParseAuthTokens(strings.NewReader(`
# comment
tok-1 alice
tok-2   bob
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tokens) != 2 || tokens["tok-1"] != "alice" || tokens["tok-2"] != "bob" {
		t.Fatalf("tokens = %v", tokens)
	}
	if _, err := targetserver.ParseAuthTokens(strings.NewReader("t a\nt b\n")); err == nil {
		t.Error("duplicate token accepted")
	}
	if _, err := targetserver.ParseAuthTokens(strings.NewReader("lonely-token\n")); err == nil {
		t.Error("token without client name accepted")
	}
}

func TestHealthzReportsEveryTenant(t *testing.T) {
	_, hs := newMultiServer(t, targetserver.Config{}, map[string]ce.Target{
		"a": &mulTarget{k: 1},
		"b": &mulTarget{k: 2},
	})

	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody[wire.HealthzResponse](t, hr)
	if body.Status != "ok" || body.Tenants["a"] != "ready" || body.Tenants["b"] != "ready" {
		t.Fatalf("healthz = %+v", body)
	}

	tr, err := http.Get(hs.URL + "/v1/targets/a/healthz")
	if err != nil {
		t.Fatal(err)
	}
	tb := decodeBody[wire.HealthzResponse](t, tr)
	if tb.Status != "ok" || tb.Tenants["a"] != "ready" || len(tb.Tenants) != 1 {
		t.Fatalf("tenant healthz = %+v", tb)
	}

	gr, err := http.Get(hs.URL + "/v1/targets/ghost/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if gr.StatusCode != http.StatusNotFound {
		t.Errorf("ghost healthz: status %d, want 404", gr.StatusCode)
	}
	gr.Body.Close()
}

func TestTenantMetricsAreLabeled(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newMultiServer(t, targetserver.Config{
		Telemetry: &obs.Telemetry{Reg: reg},
	}, map[string]ce.Target{
		"a": &mulTarget{k: 1},
		"b": &mulTarget{k: 2},
	})
	postJSON(t, hs.URL+"/v1/targets/a/estimate", estReq(), "").Body.Close()
	postJSON(t, hs.URL+"/v1/targets/b/estimate", estReq(), "").Body.Close()

	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`paced_estimate_requests_total{tenant="a"}`,
		`paced_estimate_requests_total{tenant="b"}`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestShutdownDrainsEveryTenant holds an execute (retraining) call in
// flight on each of two tenants and verifies Shutdown iterates the whole
// registry: it returns only after both tenants' in-flight work completes,
// and both callers get a successful reply.
func TestShutdownDrainsEveryTenant(t *testing.T) {
	targets := map[string]*execGateTarget{
		"a": {gate: make(chan struct{}), entered: make(chan struct{}, 1)},
		"b": {gate: make(chan struct{}), entered: make(chan struct{}, 1)},
	}
	srv, hs := newMultiServer(t, targetserver.Config{BatchWindow: time.Microsecond},
		map[string]ce.Target{"a": targets["a"], "b": targets["b"]})

	exec := wire.ExecuteRequest{
		V:       wire.Version,
		Queries: []wire.Query{openQuery()},
		Cards:   []wire.B64{wire.FromFloat(42)},
	}
	var wg sync.WaitGroup
	codes := make(map[string]int)
	var mu sync.Mutex
	for id := range targets {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			resp := postJSON(t, hs.URL+"/v1/targets/"+id+"/execute", exec, "")
			mu.Lock()
			codes[id] = resp.StatusCode
			mu.Unlock()
			resp.Body.Close()
		}(id)
	}
	for id, tg := range targets {
		select {
		case <-tg.entered:
		case <-time.After(5 * time.Second):
			t.Fatalf("tenant %s never started its execute", id)
		}
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// With both tenants parked mid-retrain, the drain must not finish.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while tenant work was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// Release tenant a only: still one tenant busy, still draining.
	close(targets["a"].gate)
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with tenant b still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(targets["b"].gate)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	for id, code := range codes {
		if code != http.StatusOK {
			t.Errorf("tenant %s in-flight execute: status %d, want 200", id, code)
		}
	}
	for id, tg := range targets {
		if tg.executed.Load() != 1 {
			t.Errorf("tenant %s retrain ran %d times, want 1", id, tg.executed.Load())
		}
	}
}
