package targetserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"pace/internal/wire"
)

// ClientHeader names the self-reported client identity header used for
// per-client rate limiting when no auth tokens are configured. It is
// advisory — anyone can claim any name — which is exactly why
// Config.AuthTokens exists.
const ClientHeader = "X-Pace-Client"

// clientIdentity resolves who is calling, for per-tenant rate limiting.
//
// With Config.AuthTokens set the identity is spoof-proof: it is the name
// mapped from the Authorization bearer token, and requests without a
// known token are refused with 401 — the X-Pace-Client header is
// ignored entirely. Without tokens the header is trusted as before,
// falling back to the peer host.
func (s *Server) clientIdentity(w http.ResponseWriter, r *http.Request) (string, bool) {
	if len(s.cfg.AuthTokens) > 0 {
		tok, ok := bearerToken(r)
		if !ok {
			s.mUnauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="paced"`)
			s.writeError(w, http.StatusUnauthorized, wire.CodeUnauthorized,
				"missing Authorization: Bearer token")
			return "", false
		}
		name, known := s.cfg.AuthTokens[tok]
		if !known {
			s.mUnauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="paced"`)
			s.writeError(w, http.StatusUnauthorized, wire.CodeUnauthorized, "unknown bearer token")
			return "", false
		}
		return name, true
	}
	if c := r.Header.Get(ClientHeader); c != "" {
		return c, true
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host, true
	}
	return r.RemoteAddr, true
}

func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(auth[len(prefix):]), true
}

// ParseAuthTokens reads a token file: one "token client-name" pair per
// line, '#' comments and blank lines ignored. This is the -auth-tokens
// format of cmd/paced.
func ParseAuthTokens(r io.Reader) (map[string]string, error) {
	tokens := make(map[string]string)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("auth tokens line %d: want \"token client-name\", got %q", line, text)
		}
		if _, dup := tokens[fields[0]]; dup {
			return nil, fmt.Errorf("auth tokens line %d: duplicate token", line)
		}
		tokens[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("auth tokens: %w", err)
	}
	return tokens, nil
}
