package targetserver_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pace/internal/targetserver"
	"pace/internal/wire"
)

// postRaw fires one data-path request with explicit codec headers.
func postRaw(t *testing.T, url, contentType, accept string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	req.Header.Set(targetserver.ClientHeader, "codec-test")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func estimateBlob(t *testing.T, c wire.Codec) []byte {
	t.Helper()
	blob, err := c.EncodeEstimateRequest(&wire.EstimateRequest{
		V: wire.Version, Queries: []wire.Query{openQuery()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestCodecNegotiationMatrix drives all four request/response codec
// combinations through one server: every cell must answer the same
// bit-exact estimate, with the response Content-Type following Accept.
func TestCodecNegotiationMatrix(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})
	want := wire.FromFloat(0.25 * 1000) // gateTarget: lo bound × 1000

	cases := []struct {
		name, ct, accept, wantRespCT string
	}{
		{"json→json", wire.JSONContentType, "", wire.JSONContentType},
		{"json→binary", wire.JSONContentType, wire.BinaryContentType, wire.BinaryContentType},
		{"binary→json", wire.BinaryContentType, wire.JSONContentType, wire.JSONContentType},
		{"binary→binary", wire.BinaryContentType, wire.BinaryContentType, wire.BinaryContentType},
		{"absent content type means json", "", "", wire.JSONContentType},
	}
	for _, tc := range cases {
		reqC, _ := wire.CodecForContentType(tc.ct)
		resp := postRaw(t, hs.URL+"/v1/targets/default/estimate", tc.ct, tc.accept, estimateBlob(t, reqC), nil)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.wantRespCT {
			t.Fatalf("%s: response Content-Type %q, want %q", tc.name, got, tc.wantRespCT)
		}
		respC, _ := wire.CodecForContentType(tc.wantRespCT)
		er, err := respC.DecodeEstimateResponse(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		if len(er.Estimates) != 1 || er.Estimates[0] != want {
			t.Fatalf("%s: estimates %v, want [%v] bit-exact", tc.name, er.Estimates, want)
		}
	}
}

// TestUnsupportedCodecAnswers415 pins the negotiation failure modes:
// unknown Content-Types and administratively disabled codecs answer a
// machine-readable 415; a binary Accept against a JSON-only server
// falls back to JSON instead of failing.
func TestUnsupportedCodecAnswers415(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})
	resp := postRaw(t, hs.URL+"/v1/targets/default/estimate", "text/plain", "", []byte("hi"), nil)
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusUnsupportedMediaType || !bytes.Contains(raw, []byte(wire.CodeUnsupportedMedia)) {
		t.Fatalf("text/plain: status %d body %s, want 415 %s", resp.StatusCode, raw, wire.CodeUnsupportedMedia)
	}

	_, hsJSON := newTestServer(t, &gateTarget{}, targetserver.Config{Codecs: []string{"json"}})
	resp = postRaw(t, hsJSON.URL+"/v1/targets/default/estimate",
		wire.BinaryContentType, wire.BinaryContentType, estimateBlob(t, wire.Binary), nil)
	raw = readAll(t, resp)
	if resp.StatusCode != http.StatusUnsupportedMediaType || !bytes.Contains(raw, []byte(wire.CodeUnsupportedMedia)) {
		t.Fatalf("binary at json-only server: status %d body %s", resp.StatusCode, raw)
	}

	// Accept: binary at a JSON-only server is not an error — the server
	// just answers JSON.
	resp = postRaw(t, hsJSON.URL+"/v1/targets/default/estimate",
		wire.JSONContentType, wire.BinaryContentType, estimateBlob(t, wire.JSON), nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != wire.JSONContentType {
		t.Fatalf("Accept-binary fallback: status %d ct %q, want 200 json", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
}

// TestBadBinaryFrameAnswers400 maps parser rejections onto the wire:
// code bad_frame, never a 5xx, never a hang.
func TestBadBinaryFrameAnswers400(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})
	for name, body := range map[string][]byte{
		"garbage":       append([]byte{'P', 'W', 2}, "garbage-not-a-frame"...),
		"empty":         {},
		"truncated":     estimateBlob(t, wire.Binary)[:9],
		"wrong version": append([]byte{'P', 'W', 99}, estimateBlob(t, wire.Binary)[3:]...),
	} {
		resp := postRaw(t, hs.URL+"/v1/targets/default/estimate",
			wire.BinaryContentType, "", body, nil)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", name, resp.StatusCode, raw)
		}
	}
	resp := postRaw(t, hs.URL+"/v1/targets/default/estimate",
		wire.BinaryContentType, "", append([]byte{'P', 'W', 2}, "garbage-not-a-frame"...), nil)
	raw := readAll(t, resp)
	if !bytes.Contains(raw, []byte(wire.CodeBadFrame)) {
		t.Errorf("bad frame body %s, want code %s", raw, wire.CodeBadFrame)
	}
}

// TestLegacyAliasesCarryDeprecation pins satellite 2: the un-tenanted
// v1 endpoints keep working bit-for-bit but announce their sunset; the
// routed successor does not.
func TestLegacyAliasesCarryDeprecation(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})
	for _, path := range []string{"/v1/estimate", "/v1/execute"} {
		var body any
		if path == "/v1/estimate" {
			body = wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
		} else {
			body = wire.ExecuteRequest{V: wire.Version,
				Queries: []wire.Query{openQuery()}, Cards: wire.FromFloats([]float64{10})}
		}
		resp := postJSON(t, hs.URL+path, body, "codec-test")
		readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: no Deprecation header", path)
		}
		link := resp.Header.Get("Link")
		if !strings.Contains(link, "/v1/targets/default") || !strings.Contains(link, "successor-version") {
			t.Errorf("%s: Link header %q does not name the successor route", path, link)
		}
	}
	resp := postJSON(t, hs.URL+"/v1/targets/default/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "codec-test")
	readAll(t, resp)
	if resp.Header.Get("Deprecation") != "" {
		t.Error("routed endpoint carries a Deprecation header; only the aliases are deprecated")
	}
}

func openExecution(t *testing.T, base, token string) *http.Response {
	t.Helper()
	blob, err := json.Marshal(wire.OpenExecutionRequest{V: wire.Version, Token: token})
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, base+"/v1/targets/default/executions", wire.JSONContentType, "", blob, nil)
}

func pollExecution(t *testing.T, base, token string) wire.ExecutionResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/targets/default/executions/" + token)
		if err != nil {
			t.Fatal(err)
		}
		var er wire.ExecutionResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if er.State != wire.ExecutionRunning || time.Now().After(deadline) {
			return er
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestStreamedExecuteEndToEnd walks the whole protocol over HTTP with
// the binary codec: open, chunks (one resubmitted), poll to done,
// delete — and checks the model saw each chunk exactly once, in order.
func TestStreamedExecuteEndToEnd(t *testing.T) {
	bb := &gateTarget{}
	_, hs := newTestServer(t, bb, targetserver.Config{})
	const token = "e2e-stream-1"

	if resp := openExecution(t, hs.URL, token); resp.StatusCode != http.StatusOK {
		t.Fatalf("open: status %d: %s", resp.StatusCode, readAll(t, resp))
	} else {
		readAll(t, resp)
	}

	chunk := func(seq int64, card float64) *http.Response {
		blob, err := wire.Binary.EncodeExecuteRequest(&wire.ExecuteRequest{
			V: wire.Version, Queries: []wire.Query{openQuery()}, Cards: wire.FromFloats([]float64{card}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return postRaw(t, hs.URL+"/v1/targets/default/executions/"+token,
			wire.BinaryContentType, "", blob, map[string]string{
				wire.ChunkSeqHeader: strconv.FormatInt(seq, 10),
			})
	}
	for seq, card := range []float64{11, 22, 33} {
		resp := chunk(int64(seq), card)
		raw := readAll(t, resp)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("chunk %d: status %d: %s", seq, resp.StatusCode, raw)
		}
	}
	// Resubmit chunk 1 (a retry after a lost ack): 202 again, no re-apply.
	resp := chunk(1, 22)
	readAll(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate chunk: status %d", resp.StatusCode)
	}

	er := pollExecution(t, hs.URL, token)
	if er.State != wire.ExecutionDone || er.Applied != 3 || er.Queries != 3 {
		t.Fatalf("final status %+v, want done with 3 applied chunks", er)
	}
	bb.mu.Lock()
	got := append([][]float64(nil), bb.executed...)
	bb.mu.Unlock()
	if len(got) != 3 || got[0][0] != 11 || got[1][0] != 22 || got[2][0] != 33 {
		t.Fatalf("model saw %v, want the three chunks once each, in order", got)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/targets/default/executions/"+token, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, dresp)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	gresp, err := http.Get(hs.URL + "/v1/targets/default/executions/" + token)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, gresp)
	if gresp.StatusCode != http.StatusNotFound || !bytes.Contains(raw, []byte(wire.CodeUnknownExecution)) {
		t.Fatalf("status after delete: %d %s, want 404 %s", gresp.StatusCode, raw, wire.CodeUnknownExecution)
	}
}

// TestStreamedExecuteRejections pins the protocol's edges: chunks for
// unknown tokens, missing/bad sequence headers, invalid tokens on open.
func TestStreamedExecuteRejections(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})
	blob, err := wire.JSON.EncodeExecuteRequest(&wire.ExecuteRequest{
		V: wire.Version, Queries: []wire.Query{openQuery()}, Cards: wire.FromFloats([]float64{1}),
	})
	if err != nil {
		t.Fatal(err)
	}

	resp := postRaw(t, hs.URL+"/v1/targets/default/executions/never-opened",
		wire.JSONContentType, "", blob, map[string]string{wire.ChunkSeqHeader: "0"})
	raw := readAll(t, resp)
	if resp.StatusCode != http.StatusNotFound || !bytes.Contains(raw, []byte(wire.CodeUnknownExecution)) {
		t.Fatalf("unknown token: %d %s, want 404 %s", resp.StatusCode, raw, wire.CodeUnknownExecution)
	}

	if oresp := openExecution(t, hs.URL, "tok-ok"); oresp.StatusCode != http.StatusOK {
		t.Fatalf("open: %d", oresp.StatusCode)
	} else {
		readAll(t, oresp)
	}
	for name, seq := range map[string]string{"missing": "", "garbage": "abc", "negative": "-1"} {
		hdr := map[string]string{}
		if seq != "" {
			hdr[wire.ChunkSeqHeader] = seq
		}
		resp := postRaw(t, hs.URL+"/v1/targets/default/executions/tok-ok",
			wire.JSONContentType, "", blob, hdr)
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s seq header: status %d, want 400", name, resp.StatusCode)
		}
	}

	for _, bad := range []string{"", "has space", strings.Repeat("x", wire.MaxExecutionToken+1)} {
		resp := openExecution(t, hs.URL, bad)
		readAll(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("open with token %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
