package targetserver

import (
	"net"
	"net/http"
	"time"

	"pace/internal/wire"
)

// ClientHeader identifies a client for per-client rate limiting; when
// absent the peer host (RemoteAddr without the port) is used, so every
// distinct machine gets its own bucket by default.
const ClientHeader = "X-Pace-Client"

// bucket is one client's token bucket. Access is guarded by Server.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// admitClient applies the per-client token bucket; on rejection it
// writes the 429 itself and reports false.
func (s *Server) admitClient(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.RatePerSec <= 0 {
		return true
	}
	key := r.Header.Get(ClientHeader)
	if key == "" {
		if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
			key = host
		} else {
			key = r.RemoteAddr
		}
	}
	if s.takeToken(key) {
		return true
	}
	s.mRateLimited.Inc()
	s.shed(w, wire.CodeRateLimited, "client "+key+" over rate limit")
	return false
}

func (s *Server) takeToken(key string) bool {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.clients[key]
	if !ok {
		// Bound the client table: evict everything once it grows absurd
		// (an abusive client cycling identities); honest clients refill
		// to a full burst on their next request anyway.
		if len(s.clients) >= 4096 {
			s.clients = make(map[string]*bucket)
		}
		b = &bucket{tokens: float64(s.cfg.Burst), last: now}
		s.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * s.cfg.RatePerSec
		if max := float64(s.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
