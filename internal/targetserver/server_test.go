package targetserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/targetserver"
	"pace/internal/wire"
)

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a", "b"},
		AttrNames:  []string{"a0", "a1", "b0"},
		AttrOffset: []int{0, 2, 3},
	}
}

func openQuery() wire.Query {
	return wire.Query{
		Tables: []int{0},
		Bounds: [][2]wire.B64{
			{wire.FromFloat(0.25), wire.FromFloat(0.75)},
			{wire.FromFloat(0), wire.FromFloat(1)},
			{wire.FromFloat(0), wire.FromFloat(1)},
		},
	}
}

// gateTarget serves estimates keyed off the query's first bound and can
// be blocked to hold the model goroutine busy.
type gateTarget struct {
	mu       sync.Mutex
	executed [][]float64
	estErr   error
	execErr  error
	gate     chan struct{} // non-nil: EstimateContext blocks until closed
	entered  chan struct{} // non-nil: signaled when an estimate starts
}

func (g *gateTarget) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	if g.entered != nil {
		select {
		case g.entered <- struct{}{}:
		default:
		}
	}
	if g.gate != nil {
		select {
		case <-g.gate:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if g.estErr != nil {
		return 0, g.estErr
	}
	// Echo back a bit-twiddled transform of the bound so exactness is
	// observable: estimate = lo bound's bits flipped into a float.
	return q.Bounds[0][0] * 1000, nil
}

func (g *gateTarget) ExecuteWorkload(_ context.Context, qs []*query.Query, cards []float64) error {
	if g.execErr != nil {
		return g.execErr
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.executed = append(g.executed, append([]float64(nil), cards...))
	return nil
}

// dflt names the default tenant's labeled metric family.
func dflt(base string) string { return base + `{tenant="default"}` }

func newTestServer(t *testing.T, bb ce.Target, cfg targetserver.Config) (*targetserver.Server, *httptest.Server) {
	t.Helper()
	srv := targetserver.New(bb, testMeta(), cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postJSON(t *testing.T, url string, body any, client string) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(targetserver.ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

func TestEstimateSingleAndBatchExact(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})

	q1, q2 := openQuery(), openQuery()
	q2.Bounds[0][0] = wire.FromFloat(0.5)
	resp := postJSON(t, hs.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{q1, q2}}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := decodeBody[wire.EstimateResponse](t, resp)
	if len(body.Estimates) != 2 {
		t.Fatalf("%d estimates, want 2", len(body.Estimates))
	}
	// The stub computes lo*1000; the reply must carry the exact bits.
	if got, want := body.Estimates[0].Float(), 0.25*1000; got != want {
		t.Errorf("estimate[0] = %v, want %v", got, want)
	}
	if got, want := body.Estimates[1].Float(), 0.5*1000; got != want {
		t.Errorf("estimate[1] = %v, want %v", got, want)
	}
}

func TestEstimateRejectsBadRequests(t *testing.T) {
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{})

	cases := map[string]struct {
		req      any
		wantCode string
	}{
		"version mismatch": {
			req:      wire.EstimateRequest{V: 99, Queries: []wire.Query{openQuery()}},
			wantCode: wire.CodeBadRequest,
		},
		"no queries": {
			req:      wire.EstimateRequest{V: wire.Version},
			wantCode: wire.CodeBadRequest,
		},
		"schema mismatch": {
			req: wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{
				{Tables: []int{0}, Bounds: [][2]wire.B64{{0, 0}}},
			}},
			wantCode: wire.CodeInvalidQuery,
		},
		"unknown fields": {
			req:      map[string]any{"v": wire.Version, "queries": []wire.Query{openQuery()}, "bogus": 1},
			wantCode: wire.CodeBadRequest,
		},
	}
	for name, tc := range cases {
		resp := postJSON(t, hs.URL+"/v1/estimate", tc.req, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if body := decodeBody[wire.ErrorResponse](t, resp); body.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", name, body.Code, tc.wantCode)
		}
	}
}

func TestModelErrorsMapOntoWire(t *testing.T) {
	bb := &gateTarget{estErr: fmt.Errorf("boom: %w", ce.ErrInvalidQuery)}
	_, hs := newTestServer(t, bb, targetserver.Config{})
	resp := postJSON(t, hs.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid-query model error: status %d, want 400", resp.StatusCode)
	}
	if body := decodeBody[wire.ErrorResponse](t, resp); body.Code != wire.CodeInvalidQuery {
		t.Errorf("code %q, want %q", body.Code, wire.CodeInvalidQuery)
	}

	bb2 := &gateTarget{estErr: fmt.Errorf("disk on fire")}
	_, hs2 := newTestServer(t, bb2, targetserver.Config{})
	resp2 := postJSON(t, hs2.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Errorf("internal model error: status %d, want 500", resp2.StatusCode)
	}
	if body := decodeBody[wire.ErrorResponse](t, resp2); body.Code != wire.CodeInternal {
		t.Errorf("code %q, want %q", body.Code, wire.CodeInternal)
	}
}

func TestExecuteAppliesFeedbackExactly(t *testing.T) {
	bb := &gateTarget{}
	_, hs := newTestServer(t, bb, targetserver.Config{})

	// A card whose value only survives bit-exact transport.
	card := math.Float64frombits(0x3ff123456789abcd)
	resp := postJSON(t, hs.URL+"/v1/execute", wire.ExecuteRequest{
		V:       wire.Version,
		Queries: []wire.Query{openQuery()},
		Cards:   []wire.B64{wire.FromFloat(card)},
	}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if body := decodeBody[wire.ExecuteResponse](t, resp); body.Executed != 1 {
		t.Errorf("executed %d, want 1", body.Executed)
	}
	bb.mu.Lock()
	defer bb.mu.Unlock()
	if len(bb.executed) != 1 || len(bb.executed[0]) != 1 ||
		math.Float64bits(bb.executed[0][0]) != math.Float64bits(card) {
		t.Errorf("trainer saw %v, want exact %v", bb.executed, card)
	}

	// Mismatched cards are a bad request, and nothing reaches the model.
	resp2 := postJSON(t, hs.URL+"/v1/execute", wire.ExecuteRequest{
		V:       wire.Version,
		Queries: []wire.Query{openQuery()},
	}, "")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched cards: status %d, want 400", resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestFullQueueShedsWith429(t *testing.T) {
	gate := make(chan struct{})
	bb := &gateTarget{gate: gate, entered: make(chan struct{}, 1)}
	reg := obs.NewRegistry()
	_, hs := newTestServer(t, bb, targetserver.Config{
		MaxBatch:    1, // no gathering: the first job alone parks the model
		QueueDepth:  1,
		BatchWindow: time.Microsecond,
		RetryAfter:  3 * time.Second,
		Telemetry:   &obs.Telemetry{Reg: reg},
	})

	// First request occupies the model goroutine (blocked on the gate),
	// second fills the 1-deep queue, third must shed fast.
	var wg sync.WaitGroup
	results := make([]int, 2)
	send := func(i int) {
		defer wg.Done()
		resp := postJSON(t, hs.URL+"/v1/estimate",
			wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
		results[i] = resp.StatusCode
		resp.Body.Close()
	}
	wg.Add(1)
	go send(0)
	<-bb.entered // the model goroutine is now parked on the gate
	wg.Add(1)
	go send(1)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge(dflt("paced_estimate_queue_depth")).Value() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if reg.Gauge(dflt("paced_estimate_queue_depth")).Value() < 1 {
		t.Fatal("second request never queued")
	}

	shedResp := postJSON(t, hs.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
	if shedResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", shedResp.StatusCode)
	}
	if ra := shedResp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if body := decodeBody[wire.ErrorResponse](t, shedResp); body.Code != wire.CodeOverloaded {
		t.Errorf("code %q, want %q", body.Code, wire.CodeOverloaded)
	}
	if reg.Counter(dflt("paced_shed_total")).Value() == 0 {
		t.Error("paced_shed_total not incremented")
	}

	close(gate) // release the model loop; the two held requests finish
	wg.Wait()
	for i, code := range results {
		if code != http.StatusOK {
			t.Errorf("held request %d: status %d, want 200", i, code)
		}
	}
}

func TestPerClientRateLimit(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{
		RatePerSec: 0.001, // effectively no refill within the test
		Burst:      2,
		Telemetry:  &obs.Telemetry{Reg: reg},
	})

	est := wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
	for i := 0; i < 2; i++ {
		resp := postJSON(t, hs.URL+"/v1/estimate", est, "alice")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alice call %d: status %d, want 200", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	resp := postJSON(t, hs.URL+"/v1/estimate", est, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over burst: status %d, want 429", resp.StatusCode)
	}
	if body := decodeBody[wire.ErrorResponse](t, resp); body.Code != wire.CodeRateLimited {
		t.Errorf("code %q, want %q", body.Code, wire.CodeRateLimited)
	}
	// A different identity has its own bucket.
	resp2 := postJSON(t, hs.URL+"/v1/estimate", est, "bob")
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("bob: status %d, want 200", resp2.StatusCode)
	}
	resp2.Body.Close()
	if reg.Counter(dflt("paced_rate_limited_total")).Value() != 1 {
		t.Errorf("paced_rate_limited_total = %d, want 1",
			reg.Counter(dflt("paced_rate_limited_total")).Value())
	}
}

func TestMicroBatchingCoalesces(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	bb := &gateTarget{gate: gate}
	_, hs := newTestServer(t, bb, targetserver.Config{
		BatchWindow: 250 * time.Millisecond,
		Telemetry:   &obs.Telemetry{Reg: reg},
	})

	const n = 5
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, hs.URL+"/v1/estimate",
				wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}()
	}
	// All n arrive well inside the 250ms gather window opened by the
	// first; release the model once they are all enqueued or in-flight.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(dflt("paced_estimate_requests_total")).Value() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := reg.Counter(dflt("paced_estimate_queries_total")).Value(); got != n {
		t.Errorf("paced_estimate_queries_total = %d, want %d", got, n)
	}
	if got := reg.Counter(dflt("paced_batches_total")).Value(); got < 1 || got > 2 {
		t.Errorf("paced_batches_total = %d, want 1 (micro-batched) or at most 2", got)
	}
}

func TestDrainAnswersHeldRequestsThenRefuses(t *testing.T) {
	gate := make(chan struct{})
	bb := &gateTarget{gate: gate}
	srv, hs := newTestServer(t, bb, targetserver.Config{BatchWindow: time.Microsecond})

	// healthz is green before the drain.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Park one request inside the model loop.
	got := make(chan int, 1)
	go func() {
		resp := postJSON(t, hs.URL+"/v1/estimate",
			wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
		got <- resp.StatusCode
		resp.Body.Close()
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the gate

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// Draining flips healthz and the API to 503 while the held request
	// is still in flight.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		r, err := http.Get(hs.URL + "/healthz")
		if err == nil {
			code := r.StatusCode
			r.Body.Close()
			if code == http.StatusServiceUnavailable {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	r2 := postJSON(t, hs.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("estimate while draining: %d, want 503", r2.StatusCode)
	}
	if body := decodeBody[wire.ErrorResponse](t, r2); body.Code != wire.CodeDraining {
		t.Errorf("code %q, want %q", body.Code, wire.CodeDraining)
	}

	close(gate) // the held request completes, then the model loop exits
	if code := <-got; code != http.StatusOK {
		t.Errorf("held request after drain: %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

func TestMetricsEndpointScrapes(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestServer(t, &gateTarget{}, targetserver.Config{
		Telemetry: &obs.Telemetry{Reg: reg},
	})
	resp := postJSON(t, hs.URL+"/v1/estimate",
		wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}, "")
	resp.Body.Close()

	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{dflt("paced_estimate_requests_total"), dflt("paced_batches_total")} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
