package targetserver_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
)

// stubFactory builds mulTarget worlds instantly; panicking is switchable
// per test via the pointer.
func stubFactory(panics *bool) tenant.Factory {
	return func(_ context.Context, spec tenant.Spec) (ce.Target, *query.Meta, error) {
		if panics != nil && *panics {
			panic("factory exploded mid-build")
		}
		return &mulTarget{k: 10}, testMeta(), nil
	}
}

func newFactoryServer(t *testing.T, cfg targetserver.Config, panics *bool) (*targetserver.Server, *httptest.Server) {
	t.Helper()
	cfg.Factory = stubFactory(panics)
	reg := tenant.NewRegistry(cfg.Factory, cfg.TenantConfig())
	srv := targetserver.NewMulti(reg, cfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func createReq(id string) wire.CreateTargetRequest {
	return wire.CreateTargetRequest{V: wire.Version, Target: wire.TargetSpec{
		ID: id, Dataset: "dmv", Model: "fcn", Seed: 1,
	}}
}

func decodeErr(t *testing.T, resp *http.Response) wire.ErrorResponse {
	t.Helper()
	var er wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return er
}

// TestQuotaExceededAnswers429 pins the admission hardening on POST
// /v1/targets: host cap and per-owner cap both answer 429
// quota_exceeded with a Retry-After hint.
func TestQuotaExceededAnswers429(t *testing.T) {
	_, hs := newFactoryServer(t, targetserver.Config{MaxTenants: 2, MaxPerOwner: 1}, nil)

	resp := request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("a"), "alice", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// alice at her per-owner cap.
	resp = request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("a2"), "alice", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("owner over quota: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("quota rejection missing Retry-After")
	}
	if er := decodeErr(t, resp); er.Code != wire.CodeQuotaExceeded {
		t.Errorf("code %q, want %q", er.Code, wire.CodeQuotaExceeded)
	}

	// bob fits; carol hits the host cap.
	resp = request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("b"), "bob", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob create: %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("c"), "carol", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("host over cap: %d, want 429", resp.StatusCode)
	}
	if er := decodeErr(t, resp); er.Code != wire.CodeQuotaExceeded {
		t.Errorf("code %q, want %q", er.Code, wire.CodeQuotaExceeded)
	}
}

// TestFactoryPanicAnswers500AndReleasesSlot: a panicking world build
// must answer 500 internal (not wedge the id in "creating") and leave
// the id creatable once the factory behaves.
func TestFactoryPanicAnswers500AndReleasesSlot(t *testing.T) {
	panics := true
	srv, hs := newFactoryServer(t, targetserver.Config{}, &panics)

	resp := request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("p"), "alice", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked create: %d, want 500", resp.StatusCode)
	}
	if er := decodeErr(t, resp); er.Code != wire.CodeInternal {
		t.Errorf("code %q, want %q", er.Code, wire.CodeInternal)
	}
	if srv.Registry().Len() != 0 {
		t.Fatalf("registry holds %d slots after panicked create, want 0", srv.Registry().Len())
	}

	panics = false
	resp = request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("p"), "alice", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create after panic: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestIdleEvictionAndLazyRevival: an idle tenant is evicted by the
// janitor (spec spilled, 503 evicted + Retry-After on the next hit) and
// that first hit triggers a background rebuild — polling until ready
// mirrors what the retry layer does with the hint.
func TestIdleEvictionAndLazyRevival(t *testing.T) {
	_, hs := newFactoryServer(t, targetserver.Config{IdleAfter: 50 * time.Millisecond}, nil)

	resp := request(t, http.MethodPost, hs.URL+"/v1/targets", createReq("idle"), "alice", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Wait for the janitor to evict.
	deadline := time.Now().Add(5 * time.Second)
	evicted := false
	for time.Now().Before(deadline) {
		resp := request(t, http.MethodGet, hs.URL+"/healthz", nil, "", "")
		var hz wire.HealthzResponse
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hz.Tenants["idle"] == tenant.StateEvicted {
			evicted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("janitor never evicted the idle tenant")
	}

	// The first estimate answers 503 evicted with a hint and kicks off
	// revival.
	resp = request(t, http.MethodPost, hs.URL+"/v1/targets/idle/estimate", estReq(), "alice", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("estimate on evicted tenant: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("evicted reply missing Retry-After")
	}
	if er := decodeErr(t, resp); er.Code != wire.CodeEvicted {
		t.Errorf("code %q, want %q", er.Code, wire.CodeEvicted)
	}

	// Retrying (with fresh activity resetting the idle clock) reaches a
	// revived tenant.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp := request(t, http.MethodPost, hs.URL+"/v1/targets/idle/estimate", estReq(), "alice", "")
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			return
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("evicted tenant never revived")
}
