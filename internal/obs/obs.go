package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Telemetry bundles the three observability channels a campaign carries:
// the metrics registry, the span tracer, and the structured logger. Any
// field may be nil (that channel is off); a nil *Telemetry disables all
// three. Telemetry travels down the pipeline by value inside a
// context.Context (NewContext/From), so deep layers — retry backoff,
// fault injection, pool fan-out — can instrument themselves without
// threading new parameters through every signature.
type Telemetry struct {
	Reg    *Registry
	Tracer *Tracer
	Log    *slog.Logger
}

// Logger returns the telemetry's logger, or a discard logger when unset.
// Never nil, so call sites can log unconditionally.
func (t *Telemetry) Logger() *slog.Logger {
	if t == nil || t.Log == nil {
		return discardLogger
	}
	return t.Log
}

// Registry returns the telemetry's registry, nil-safe. A nil registry's
// instruments are no-ops, so `obs.From(ctx).Registry().Counter(...)`
// works unconditionally.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Reg
}

type ctxKeyTelemetry struct{}
type ctxKeySpan struct{}

// NewContext attaches tel to ctx for the pipeline below.
func NewContext(ctx context.Context, tel *Telemetry) context.Context {
	if tel == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyTelemetry{}, tel)
}

// From extracts the telemetry attached to ctx (nil when none).
func From(ctx context.Context) *Telemetry {
	tel, _ := ctx.Value(ctxKeyTelemetry{}).(*Telemetry)
	return tel
}

// StartSpan opens a span named name under ctx's current span (a root
// span when ctx has none) and returns a derived context carrying the new
// span as parent for the subtree below. When ctx carries no telemetry or
// no tracer, it returns (ctx, nil) — and a nil span's methods are
// no-ops — so instrumentation sites need no telemetry-enabled check.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tel := From(ctx)
	if tel == nil || tel.Tracer == nil {
		return ctx, nil
	}
	var parentID uint64
	if parent, _ := ctx.Value(ctxKeySpan{}).(*Span); parent != nil {
		parentID = parent.id
	}
	sp := tel.Tracer.startSpan(name, parentID, attrs...)
	return context.WithValue(ctx, ctxKeySpan{}, sp), sp
}

// CurrentSpan returns the span attached to ctx, if any.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return sp
}

// discardLogger drops everything; it stands in wherever no logger was
// configured so instrumented code never nil-checks.
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewLogger builds a slog logger writing to w. level is one of debug,
// info, warn, error (default info); format is text or json (default
// text).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
