package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Telemetry bundles the three observability channels a campaign carries:
// the metrics registry, the span tracer, and the structured logger. Any
// field may be nil (that channel is off); a nil *Telemetry disables all
// three. Telemetry travels down the pipeline by value inside a
// context.Context (NewContext/From), so deep layers — retry backoff,
// fault injection, pool fan-out — can instrument themselves without
// threading new parameters through every signature.
type Telemetry struct {
	Reg    *Registry
	Tracer *Tracer
	Log    *slog.Logger
}

// Logger returns the telemetry's logger, or a discard logger when unset.
// Never nil, so call sites can log unconditionally.
func (t *Telemetry) Logger() *slog.Logger {
	if t == nil || t.Log == nil {
		return discardLogger
	}
	return t.Log
}

// Registry returns the telemetry's registry, nil-safe. A nil registry's
// instruments are no-ops, so `obs.From(ctx).Registry().Counter(...)`
// works unconditionally.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.Reg
}

type ctxKeyTelemetry struct{}
type ctxKeySpan struct{}
type ctxKeyRemoteParent struct{}

// remoteParent carries the trace/span identity extracted from an
// incoming X-Pace-Trace header: the caller's span in another process.
type remoteParent struct {
	trace string
	span  uint64
}

// NewContext attaches tel to ctx for the pipeline below.
func NewContext(ctx context.Context, tel *Telemetry) context.Context {
	if tel == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyTelemetry{}, tel)
}

// From extracts the telemetry attached to ctx (nil when none).
func From(ctx context.Context) *Telemetry {
	tel, _ := ctx.Value(ctxKeyTelemetry{}).(*Telemetry)
	return tel
}

// StartSpan opens a span named name under ctx's current span (a root
// span when ctx has none) and returns a derived context carrying the new
// span as parent for the subtree below. When ctx carries no telemetry or
// no tracer, it returns (ctx, nil) — and a nil span's methods are
// no-ops — so instrumentation sites need no telemetry-enabled check.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	tel := From(ctx)
	if tel == nil || tel.Tracer == nil {
		return ctx, nil
	}
	var parentID uint64
	trace := ""
	if parent, _ := ctx.Value(ctxKeySpan{}).(*Span); parent != nil {
		parentID = parent.id
		trace = parent.trace
	} else if rp, ok := ctx.Value(ctxKeyRemoteParent{}).(remoteParent); ok {
		// No local parent: stitch under the remote caller's span.
		parentID = rp.span
		trace = rp.trace
	}
	sp := tel.Tracer.startSpan(name, parentID, trace, attrs...)
	return context.WithValue(ctx, ctxKeySpan{}, sp), sp
}

// CurrentSpan returns the span attached to ctx, if any.
func CurrentSpan(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return sp
}

// ContextWithRemoteParent records a cross-process parent (from a parsed
// X-Pace-Trace header) on ctx. The next StartSpan with no local parent
// span parents under it, stitching the server-side subtree beneath the
// remote caller. Invalid inputs leave ctx unchanged.
func ContextWithRemoteParent(ctx context.Context, trace string, span uint64) context.Context {
	if !validTraceID(trace) || span == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKeyRemoteParent{}, remoteParent{trace: trace, span: span})
}

// TraceParent renders ctx's current span as an X-Pace-Trace header
// value, or "" when ctx carries no live span — callers then skip the
// header and the downstream request is untraced.
func TraceParent(ctx context.Context) string {
	sp := CurrentSpan(ctx)
	if sp == nil {
		return ""
	}
	return FormatTraceParent(sp.trace, sp.id)
}

// TraceIDFrom reports the trace ID the work under ctx belongs to: the
// current span's trace, else a remote parent's, else "". Metric
// exemplars use this to link a slow request back to its trace.
func TraceIDFrom(ctx context.Context) string {
	if sp := CurrentSpan(ctx); sp != nil {
		return sp.trace
	}
	if rp, ok := ctx.Value(ctxKeyRemoteParent{}).(remoteParent); ok {
		return rp.trace
	}
	return ""
}

// discardLogger drops everything; it stands in wherever no logger was
// configured so instrumented code never nil-checks.
var discardLogger = slog.New(discardHandler{})

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// NewLogger builds a slog logger writing to w. level is one of debug,
// info, warn, error (default info); format is text or json (default
// text).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
}
