package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
)

func TestSpanTreeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tel := &Telemetry{Tracer: tr}
	ctx := NewContext(context.Background(), tel)

	ctx, root := StartSpan(ctx, "campaign", String("dataset", "dmv"))
	ctx2, child := StartSpan(ctx, "outer_loop", Int("outer", 0))
	_, grand := StartSpan(ctx2, "label_batch", Int("size", 64))
	grand.SetAttr(Int("labeled", 60))
	grand.End()
	child.End()
	root.SetAttr(Bool("ok", true))
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d spans, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["campaign"].Parent != 0 {
		t.Error("campaign must be a root span")
	}
	if byName["outer_loop"].Parent != byName["campaign"].ID {
		t.Error("outer_loop must parent to campaign")
	}
	if byName["label_batch"].Parent != byName["outer_loop"].ID {
		t.Error("label_batch must parent to outer_loop")
	}
	if got := byName["label_batch"].Attrs["labeled"]; got != float64(60) {
		t.Errorf("SetAttr lost: labeled = %v", got)
	}
	if got := byName["campaign"].Attrs["ok"]; got != true {
		t.Errorf("bool attr = %v", got)
	}
	if tr.Spans() != 3 {
		t.Errorf("Spans() = %d, want 3", tr.Spans())
	}
}

func TestSpanNilAndDoubleEndSafe(t *testing.T) {
	// No telemetry in context → nil span, all methods no-ops.
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("want nil span without a tracer")
	}
	sp.SetAttr(Int("a", 1))
	sp.End()
	if CurrentSpan(ctx) != nil {
		t.Error("no span should be attached")
	}

	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx = NewContext(context.Background(), &Telemetry{Tracer: tr})
	_, sp2 := StartSpan(ctx, "once")
	sp2.End()
	sp2.End() // second End must not emit again
	sp2.SetAttr(Int("late", 1))
	tr.Close()
	recs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("double End emitted %d records", len(recs))
	}
	if _, ok := recs[0].Attrs["late"]; ok {
		t.Error("attr set after End must be dropped")
	}
}

// TestTracerConcurrentSpans is the -race probe: many goroutines opening
// and ending sibling spans against one tracer.
func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := NewContext(context.Background(), &Telemetry{Tracer: tr})
	ctx, root := StartSpan(ctx, "root")
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, sp := StartSpan(ctx, "task", Int("worker", k))
				sp.SetAttr(Int("i", i))
				sp.End()
			}
		}(k)
	}
	wg.Wait()
	root.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 401 {
		t.Fatalf("got %d spans, want 401", len(recs))
	}
	ids := map[uint64]bool{}
	for _, r := range recs {
		if ids[r.ID] {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		ids[r.ID] = true
		if r.Name == "task" && r.Parent == 0 {
			t.Error("task span lost its parent")
		}
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	if _, err := ParseTrace(strings.NewReader("{\"id\":1,\"name\":\"a\"}\nnot json\n")); err == nil {
		t.Error("want error on malformed line")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "k", 1)
	if !strings.Contains(buf.String(), `"msg":"hello"`) {
		t.Errorf("json log output = %q", buf.String())
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Error("want error for unknown level")
	}
	if _, err := NewLogger(&buf, "info", "yaml"); err == nil {
		t.Error("want error for unknown format")
	}
	// The nil telemetry logger must be callable.
	(*Telemetry)(nil).Logger().Info("dropped")
}

func TestMetricsServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pace_test_total").Add(9)
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := httpGet(t, "http://"+srv.Addr+"/metrics")
	if !strings.Contains(body, "pace_test_total 9") {
		t.Errorf("/metrics = %q", body)
	}
	if idx := httpGet(t, "http://"+srv.Addr+"/debug/pprof/"); !strings.Contains(idx, "pprof") {
		t.Error("pprof index not served")
	}
}
