package obs

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	trace := DeriveTraceID(42)
	hdr := FormatTraceParent(trace, 0xdeadbeef)
	gotTrace, gotSpan, ok := ParseTraceParent(hdr)
	if !ok || gotTrace != trace || gotSpan != 0xdeadbeef {
		t.Fatalf("round trip %q → (%s, %x, %v)", hdr, gotTrace, gotSpan, ok)
	}
	for _, bad := range []string{
		"",
		"00-" + trace,                           // missing span + flags
		"01-" + trace + "-00000000deadbeef-01",  // unknown version
		"00-" + trace + "-0000000000000000-01",  // zero span id
		"00-" + strings.Repeat("0", 32) + "-00000000deadbeef-01", // all-zero trace
		"00-" + trace[:31] + "-00000000deadbeef-01",              // short trace
		"00-" + trace + "-00000000deadbee-01",                    // short span
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted a malformed header", bad)
		}
	}
}

func TestDeriveTraceIDStable(t *testing.T) {
	a, b := DeriveTraceID(11), DeriveTraceID(11)
	if a != b {
		t.Fatalf("DeriveTraceID not stable: %s vs %s", a, b)
	}
	if !validTraceID(a) {
		t.Fatalf("DeriveTraceID(11) = %q is not a valid trace ID", a)
	}
	if DeriveTraceID(12) == a {
		t.Error("different seeds derived the same trace ID")
	}
}

// TestRemoteParentStitching is the cross-process contract in miniature:
// a span started in one process, carried over the wire as a traceparent
// header, becomes the parent — and supplies the trace ID — of a span
// started by a different tracer.
func TestRemoteParentStitching(t *testing.T) {
	var bufA, bufB bytes.Buffer
	telA := &Telemetry{Tracer: NewTracer(&bufA)}
	telA.Tracer.SetTraceID(DeriveTraceID(7))

	ctxA, spA := StartSpan(NewContext(context.Background(), telA), "rpc_estimate")
	hdr := TraceParent(ctxA)
	spA.End()
	if hdr == "" {
		t.Fatal("TraceParent returned nothing inside a live span")
	}

	trace, span, ok := ParseTraceParent(hdr)
	if !ok {
		t.Fatalf("own header did not parse: %q", hdr)
	}
	telB := &Telemetry{Tracer: NewTracer(&bufB)}
	ctxB := ContextWithRemoteParent(NewContext(context.Background(), telB), trace, span)
	if got := TraceIDFrom(ctxB); got != DeriveTraceID(7) {
		t.Errorf("TraceIDFrom(remote parent ctx) = %q, want the derived ID", got)
	}
	_, spB := StartSpan(ctxB, "srv_estimate")
	spB.End()

	// A local parent must win over a remote one.
	ctxC, spC := StartSpan(ctxB, "outer")
	_, spD := StartSpan(ctxC, "inner")
	spD.End()
	spC.End()

	if err := telB.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ParseTrace(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	// End order: srv_estimate, inner, outer.
	if len(recs) != 3 {
		t.Fatalf("tracer B emitted %d spans, want 3", len(recs))
	}
	if recs[0].Parent != span || recs[0].Trace != DeriveTraceID(7) {
		t.Errorf("server span = parent %x trace %s, want parent %x trace %s",
			recs[0].Parent, recs[0].Trace, span, DeriveTraceID(7))
	}
	if recs[1].Parent != recs[2].ID {
		t.Errorf("inner span parent = %x, want the local outer span %x", recs[1].Parent, recs[2].ID)
	}
	if recs[2].Parent != span {
		t.Errorf("outer span parent = %x, want the remote parent %x", recs[2].Parent, span)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := &Histogram{}
	h.ObserveExemplar(0.4, "aaaa")
	h.ObserveExemplar(0.3, "bbbb") // same bucket, smaller: must not displace
	h.ObserveExemplar(0.45, "cccc")
	h.ObserveExemplar(3, "dddd") // different bucket
	h.Observe(0.5)               // no trace: no exemplar displacement either

	i := bucketOf(0.4)
	e := h.ex[i].Load()
	if e == nil || e.TraceID != "cccc" || e.Value != 0.45 {
		t.Fatalf("bucket %d exemplar = %+v, want cccc/0.45 (max value wins)", i, e)
	}

	r := NewRegistry()
	rh := r.Histogram(`d{route="estimate",tenant="a"}`)
	rh.ObserveExemplar(0.2, "feed")
	snap := r.Snapshot().Histograms[`d{route="estimate",tenant="a"}`]
	if len(snap.Exemplars) != 1 {
		t.Fatalf("snapshot exemplars = %v, want 1", snap.Exemplars)
	}
	for _, e := range snap.Exemplars {
		if e.TraceID != "feed" {
			t.Errorf("snapshot exemplar trace = %q, want feed", e.TraceID)
		}
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `# {trace_id="feed"} 0.2`) {
		t.Errorf("Prometheus rendering lacks the exemplar:\n%s", sb.String())
	}
}

// TestSnapshotZeroFill is the satellite-2 boundary test: buckets between
// the first and last populated index appear in the snapshot with zero
// counts, and nothing outside that range leaks in.
func TestSnapshotZeroFill(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("gap")
	h.Observe(0.5) // index histMinExp-relative 31
	h.Observe(8)   // index 35 — leaves 32..34 empty

	snap := r.Snapshot().Histograms["gap"]
	lo, hi := bucketOf(0.5), bucketOf(8)
	if hi-lo != 4 {
		t.Fatalf("bucket layout shifted: lo=%d hi=%d", lo, hi)
	}
	if len(snap.Buckets) != 5 {
		t.Fatalf("snapshot has %d buckets, want 5 (two populated + three zero): %v", len(snap.Buckets), snap.Buckets)
	}
	for i := lo; i <= hi; i++ {
		n, ok := snap.Buckets[i]
		if !ok {
			t.Errorf("bucket %d missing from snapshot", i)
		}
		switch i {
		case lo, hi:
			if n != 1 {
				t.Errorf("bucket %d = %d, want 1", i, n)
			}
		default:
			if n != 0 {
				t.Errorf("zero bucket %d = %d, want 0", i, n)
			}
		}
	}
	if _, ok := snap.Buckets[lo-1]; ok {
		t.Error("bucket below the populated range leaked into the snapshot")
	}
	if _, ok := snap.Buckets[hi+1]; ok {
		t.Error("bucket above the populated range leaked into the snapshot")
	}

	// The Prometheus rendering of a gapped histogram must be cumulative
	// and monotone through the zero buckets.
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	var last int64 = -1
	var lines int
	for _, line := range strings.Split(sb.String(), "\n") {
		if !strings.HasPrefix(line, "gap_bucket") {
			continue
		}
		lines++
		fields := strings.Fields(line)
		n, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if n < last {
			t.Errorf("cumulative bucket count went backwards: %q after %d", line, last)
		}
		last = n
	}
	if lines != 6 { // 5 finite buckets + +Inf
		t.Errorf("rendered %d gap_bucket lines, want 6", lines)
	}
}

func TestSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, "burn", 50*time.Millisecond, 0.99)
	for i := 0; i < 10; i++ {
		s.Observe(0.001, false) // fast and fine: no burn
	}
	if got := reg.Gauge("burn").Value(); got != 0 {
		t.Errorf("burn after healthy traffic = %d permille, want 0", got)
	}
	for i := 0; i < 10; i++ {
		s.Observe(0.2, false) // slow: burns budget
	}
	// 10 bad / 20 total over the window → 0.5 / 0.01 = 50× burn.
	if got := reg.Gauge("burn").Value(); got != 50000 {
		t.Errorf("burn after 50%% slow = %d permille, want 50000", got)
	}
	s.Observe(0.001, true) // errors burn regardless of latency
	if got := reg.Gauge("burn").Value(); got <= 50000 {
		t.Errorf("burn did not rise on an error: %d", got)
	}

	red := NewRED(reg, "x_http", "estimate", "a", s)
	red.Observe(0.001, false, "cafe")
	if red.Reqs.Value() != 1 || red.Errs.Value() != 0 {
		t.Errorf("RED counters = %d/%d, want 1/0", red.Reqs.Value(), red.Errs.Value())
	}
	red.Observe(0.2, true, "")
	if red.Errs.Value() != 1 {
		t.Errorf("RED error counter = %d, want 1", red.Errs.Value())
	}
	if red.Dur.Count() != 2 {
		t.Errorf("RED duration count = %d, want 2", red.Dur.Count())
	}

	// Nil safety across the board.
	var nilSLO *SLO
	nilSLO.Observe(1, true)
	var nilRED *RED
	nilRED.Observe(1, true, "x")
	NewRED(nil, "p", "r", "t", nil).Observe(0.1, false, "y")
}
