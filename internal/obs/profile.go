package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	runtimepprof "runtime/pprof"
	"time"
)

// StartCPUProfile begins a CPU profile into the named file and returns a
// stop function that ends the profile and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := runtimepprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		runtimepprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile garbage-collects and writes an allocation profile of
// the live heap to the named file.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC() // profile the live set, not yet-uncollected garbage
	if err := runtimepprof.Lookup("heap").WriteTo(f, 0); err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return nil
}

// MetricsServer serves the registry in Prometheus text format plus the
// net/http/pprof handlers on a private mux (nothing leaks onto
// http.DefaultServeMux).
type MetricsServer struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string

	srv *http.Server
	ln  net.Listener
}

// ServeMetrics starts an HTTP server on addr exposing:
//
//	/metrics            the registry, Prometheus text exposition format
//	/debug/pprof/...    the standard pprof index, profiles and traces
//
// It returns once the listener is bound; requests are served on a
// background goroutine until Close.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ms := &MetricsServer{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
	}
	go ms.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ms, nil
}

// Close stops the server and its listener.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	return m.srv.Close()
}
