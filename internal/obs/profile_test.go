package obs

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCPUAndHeapProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0.0
	for i := 0; i < 1_000_00; i++ {
		x += float64(i % 7)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}
