package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Errorf("nil counter Value = %d, want 0", c.Value())
	}
	g := r.Gauge("y")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Errorf("nil gauge Value = %d, want 0", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram must observe nothing")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestCounterAndGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c").Value(); v != 8000 {
		t.Errorf("counter = %d, want 8000", v)
	}
	if v := r.Gauge("g").Value(); v != 8000 {
		t.Errorf("gauge = %d, want 8000", v)
	}
	// Same name returns the same instrument.
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter(name) must be stable")
	}
}

// TestHistogramBucketBoundaries pins the log2 bucketing at its edges:
// exact powers of two land in the bucket whose inclusive upper bound
// they are, values just above roll into the next bucket, and the
// extremes clamp to the underflow/overflow buckets.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-3, 0},
		{math.NaN(), 0},
		{math.Pow(2, -40), 0},           // below range: underflow bucket
		{1, -histMinExp},                // 2^0 exactly: the le=1 bucket
		{1.0000001, 1 - histMinExp},     // just above a power of two → le=2
		{2, 1 - histMinExp},             // 2^1 exactly
		{0.5, -1 - histMinExp},          // 2^-1 exactly
		{3, 2 - histMinExp},             // between 2 and 4 → le=4
		{math.Pow(2, float64(histMaxExp)), histMaxExp - histMinExp},
		{math.Pow(2, 40), histBuckets - 1}, // above range: overflow bucket
		{math.Inf(1), histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds invert the mapping: a value equal to bucketUpper(i)
	// must land in bucket i (bounds are inclusive).
	for _, i := range []int{0, 1, 10, 32, 33, 40, histBuckets - 2} {
		if got := bucketOf(bucketUpper(i)); got != i {
			t.Errorf("bucketOf(bucketUpper(%d)=%g) = %d", i, bucketUpper(i), got)
		}
	}
	if !math.IsInf(bucketUpper(histBuckets-1), 1) {
		t.Error("top bucket upper bound must be +Inf")
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.001, 0.001, 0.002, 0.004, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-1000.008) > 1e-9 {
		t.Errorf("Sum = %g, want 1000.008", got)
	}
	// Median of {1ms,1ms,2ms,4ms,1000} is 2ms, which lives in the
	// le=2^-8 (~3.9ms) bucket — the estimate is that bucket's bound.
	if q := h.Quantile(0.5); q < 0.002 || q > 0.004 {
		t.Errorf("Quantile(0.5) = %g, want the ~3.9ms bucket bound", q)
	}
	if q := h.Quantile(1); q < 1000 {
		t.Errorf("Quantile(1) = %g, want ≥ 1000", q)
	}
	if q := (&Histogram{}).Quantile(0.9); q != 0 {
		t.Errorf("empty histogram Quantile = %g, want 0", q)
	}
}

// TestSnapshotQuantile pins the after-the-fact percentile export: a
// snapshot must estimate the same bucketed quantiles as the live
// histogram it was copied from, and survive a JSON round trip (the
// bench-record path) unchanged.
func TestSnapshotQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []float64{0.001, 0.001, 0.002, 0.004, 1000} {
		h.Observe(v)
	}
	hs := r.Snapshot().Histograms["lat"]
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := hs.Quantile(q), h.Quantile(q); got != want {
			t.Errorf("snapshot Quantile(%g) = %g, live histogram = %g", q, got, want)
		}
	}
	raw, err := json.Marshal(hs)
	if err != nil {
		t.Fatal(err)
	}
	var back HistogramSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if got, want := back.Quantile(0.99), h.Quantile(0.99); got != want {
		t.Errorf("round-tripped Quantile(0.99) = %g, want %g", got, want)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty snapshot Quantile = %g, want 0", q)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("calls").Add(5)
	a.Gauge("depth").Set(2)
	a.Histogram("lat").Observe(1)
	b := NewRegistry()
	b.Counter("calls").Add(7)
	b.Counter("other").Add(1)
	b.Gauge("depth").Set(9)
	b.Histogram("lat").Observe(8)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["calls"] != 12 || m.Counters["other"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["depth"] != 9 {
		t.Errorf("merged gauge = %d, want 9 (last writer wins)", m.Gauges["depth"])
	}
	h := m.Histograms["lat"]
	if h.Count != 2 || h.Sum != 9 {
		t.Errorf("merged histogram = %+v", h)
	}
	var total int64
	for _, n := range h.Buckets {
		total += n
	}
	if total != 2 {
		t.Errorf("merged bucket mass = %d, want 2", total)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pace_oracle_calls_total").Add(42)
	r.Counter(`pace_pool_worker_tasks_total{worker="0"}`).Add(3)
	r.Counter(`pace_pool_worker_tasks_total{worker="1"}`).Add(4)
	r.Gauge("pace_pool_queue_depth").Set(5)
	r.Histogram("pace_oracle_latency_seconds").Observe(0.001)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE pace_oracle_calls_total counter\npace_oracle_calls_total 42\n",
		`pace_pool_worker_tasks_total{worker="0"} 3`,
		`pace_pool_worker_tasks_total{worker="1"} 4`,
		"# TYPE pace_pool_queue_depth gauge",
		"# TYPE pace_oracle_latency_seconds histogram",
		`pace_oracle_latency_seconds_bucket{le="+Inf"} 1`,
		"pace_oracle_latency_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// The labeled family must emit exactly one TYPE line.
	if n := strings.Count(out, "# TYPE pace_pool_worker_tasks_total"); n != 1 {
		t.Errorf("labeled family has %d TYPE lines, want 1", n)
	}
}
