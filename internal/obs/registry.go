// Package obs is the observability layer of the attack pipeline: a
// zero-dependency metrics registry (counters, gauges, log-bucketed
// histograms), a campaign tracer that emits spans as JSONL, a structured
// logger, and profiling hooks. Both "Are We Ready For Learned Cardinality
// Estimation?" and CardBench treat per-stage cost — training time, update
// latency, oracle traffic — as first-class results of a CE evaluation;
// this package makes them observable while a campaign runs instead of a
// single end-to-end number after it.
//
// The package sits at the bottom of the dependency graph (stdlib only),
// so every layer — engine, faults, resilience, surrogate, core — can be
// instrumented with it. Every type is nil-safe: a nil *Registry hands out
// nil instruments whose methods are no-ops, so instrumented code pays
// almost nothing when telemetry is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing named total. The zero value is
// usable standalone (not attached to any registry).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current total (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named value that can go up and down (queue depth, breaker
// state, resident cache size). The zero value is usable standalone.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram exponent range: bucket i (1 ≤ i < histBuckets-1) covers
// values v with 2^(i+histMinExp-1) < v ≤ 2^(i+histMinExp); bucket 0
// holds v ≤ 2^histMinExp and the top bucket everything above
// 2^histMaxExp. The range spans 2^-32 (~0.2ns in seconds) to 2^31
// (~68 years in seconds, or astronomically large Q-errors), covering
// both latency-in-seconds and Q-error observations without
// configuration.
const (
	histMinExp  = -32
	histMaxExp  = 31
	histBuckets = histMaxExp - histMinExp + 2 // + underflow and overflow buckets
)

// Histogram is a log2-bucketed distribution of non-negative values —
// latencies in seconds, Q-errors, batch sizes. Buckets double in width,
// so the histogram resolves microseconds and minutes (or Q-error 1.1 and
// 1e9) with the same fixed 65 counters and no a-priori bounds.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	// ex holds at most one exemplar per bucket: the largest value seen,
	// with the trace ID of the request that produced it — so a /metrics
	// scrape links the worst request in a bucket straight to its trace.
	ex [histBuckets]atomic.Pointer[Exemplar]
}

// Exemplar links one observed value to the trace that produced it.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// bucketOf maps a value to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	if math.IsInf(v, 1) {
		return histBuckets - 1
	}
	e := int(math.Ceil(math.Log2(v)))
	switch {
	case e <= histMinExp:
		return 0
	case e > histMaxExp:
		return histBuckets - 1
	default:
		return e - histMinExp
	}
}

// bucketUpper returns the inclusive upper bound of bucket i
// (+Inf for the top bucket).
func bucketUpper(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return math.Pow(2, float64(i+histMinExp))
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, keeps it as the bucket's exemplar if it is the largest
// value that bucket has seen (max-value-wins via CAS). No-op on nil.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == "" {
		return
	}
	slot := &h.ex[bucketOf(v)]
	next := &Exemplar{Value: v, TraceID: traceID}
	for {
		old := slot.Load()
		if old != nil && old.Value >= v {
			return
		}
		if slot.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reports how many values were observed (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the total of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets,
// returning the upper bound of the bucket holding the rank. 0 when
// nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Registry is a process-local namespace of instruments. Instruments are
// created on first use and live for the registry's lifetime; looking one
// up twice returns the same instrument, so concurrent instrumentation
// sites share totals. A nil *Registry is a valid "telemetry off" registry:
// it hands out nil instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is a point-in-time copy of one histogram. Buckets
// maps exponent-bucket index → count; every bucket between the first
// and last populated index is present (zeros included), so cumulative
// renderings are monotone without re-deriving the bucket layout.
type HistogramSnapshot struct {
	Count     int64            `json:"count"`
	Sum       float64          `json:"sum"`
	Buckets   map[int]int64    `json:"buckets,omitempty"`
	Exemplars map[int]Exemplar `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the snapshot's
// buckets, returning the upper bound of the bucket holding the rank —
// the same estimator Histogram.Quantile applies to the live instrument,
// available after the fact on a serialized snapshot. This is the export
// path benchmark harnesses use to turn a run's latency histograms into
// record percentiles without keeping the registry alive. 0 when nothing
// was observed.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	idxs := make([]int, 0, len(h.Buckets))
	for i := range h.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var cum int64
	for _, i := range idxs {
		cum += h.Buckets[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Snapshot is a point-in-time copy of a registry's instruments —
// JSON-serializable, comparable, and mergeable, so per-run snapshots can
// be aggregated across campaigns or shards.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Buckets: map[int]int64{}}
		lo, hi := -1, -1
		for i := 0; i < histBuckets; i++ {
			if h.counts[i].Load() > 0 {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		// Include the zero buckets between the populated extremes so the
		// cumulative Prometheus rendering stays monotone with no gaps.
		for i := lo; i >= 0 && i <= hi; i++ {
			hs.Buckets[i] = h.counts[i].Load()
		}
		for i := 0; i < histBuckets; i++ {
			if e := h.ex[i].Load(); e != nil {
				if hs.Exemplars == nil {
					hs.Exemplars = map[int]Exemplar{}
				}
				hs.Exemplars[i] = *e
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// Merge combines two snapshots into a new one: counters and histogram
// buckets sum; a gauge takes the other snapshot's value when present
// (last writer wins — gauges are levels, not totals).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v.clone()
	}
	for k, v := range o.Histograms {
		m := out.Histograms[k].clone()
		m.Count += v.Count
		m.Sum += v.Sum
		if m.Buckets == nil {
			m.Buckets = map[int]int64{}
		}
		for i, n := range v.Buckets {
			m.Buckets[i] += n
		}
		for i, e := range v.Exemplars {
			if old, ok := m.Exemplars[i]; !ok || e.Value > old.Value {
				if m.Exemplars == nil {
					m.Exemplars = map[int]Exemplar{}
				}
				m.Exemplars[i] = e
			}
		}
		out.Histograms[k] = m
	}
	return out
}

func (h HistogramSnapshot) clone() HistogramSnapshot {
	c := HistogramSnapshot{Count: h.Count, Sum: h.Sum}
	if h.Buckets != nil {
		c.Buckets = make(map[int]int64, len(h.Buckets))
		for i, n := range h.Buckets {
			c.Buckets[i] = n
		}
	}
	if h.Exemplars != nil {
		c.Exemplars = make(map[int]Exemplar, len(h.Exemplars))
		for i, e := range h.Exemplars {
			c.Exemplars[i] = e
		}
	}
	return c
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one metric family per instrument, histograms as cumulative
// le-buckets). Metric names of the form `base{label="v"}` are emitted
// verbatim with the TYPE line derived from the base name, so callers can
// build labeled families by formatting the label into the name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	s := r.Snapshot()
	typed := map[string]bool{} // base names whose TYPE line was written

	emitType := func(name, kind string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", promName(base), kind)
		}
	}

	for _, name := range sortedKeys(s.Counters) {
		emitType(name, "counter")
		fmt.Fprintf(w, "%s %d\n", promName(name), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		emitType(name, "gauge")
		fmt.Fprintf(w, "%s %d\n", promName(name), s.Gauges[name])
	}
	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		emitType(name, "histogram")
		idxs := make([]int, 0, len(h.Buckets))
		for i := range h.Buckets {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		var cum int64
		for _, i := range idxs {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d", promName(name), promFloat(bucketUpper(i)), cum)
			// OpenMetrics-style exemplar: the worst request in this bucket
			// and the trace it belongs to.
			if e, ok := h.Exemplars[i]; ok {
				fmt.Fprintf(w, " # {trace_id=%q} %g", e.TraceID, e.Value)
			}
			fmt.Fprintf(w, "\n")
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", promName(name), h.Count)
		fmt.Fprintf(w, "%s_sum %g\n", promName(name), h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", promName(name), h.Count)
	}
	return nil
}

func sortedKeys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// promName sanitizes a metric name (outside any {label} part) to the
// Prometheus charset [a-zA-Z0-9_:].
func promName(name string) string {
	base, labels := name, ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base, labels = name[:i], name[i:]
	}
	var b strings.Builder
	for i, r := range base {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String() + labels
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}
