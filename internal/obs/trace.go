package obs

import (
	"bufio"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute. Values should be JSON-encodable
// scalars (string, int64, float64, bool) so the trace stays greppable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is the JSONL wire form of one completed span — also the
// parsed form ParseTrace returns. Timestamps are absolute microseconds
// since the Unix epoch; everything else is deterministic for a fixed
// campaign seed (the determinism tests compare traces modulo ID
// assignment order and timestamps).
type SpanRecord struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Trace   string         `json:"trace,omitempty"`
	Proc    string         `json:"proc,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer emits completed spans as JSON Lines to a writer. Safe for
// concurrent use: span records are serialized under a mutex, one line
// per span, written at span End in completion order.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	err    error
	nextID atomic.Uint64
	spans  atomic.Int64

	// idBase is a per-process random offset mixed into every span ID so
	// IDs from different processes in a fleet never collide when traces
	// are merged. Immutable after construction.
	idBase uint64
	trace  atomic.Pointer[string]
	proc   atomic.Pointer[string]
}

// NewTracer builds a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), idBase: randomBase()}
	// Default trace ID: random per tracer, so headers are always valid
	// even before a campaign pins a seed-derived ID via SetTraceID.
	def := fmt.Sprintf("%016x%016x", mix64(t.idBase), mix64(t.idBase+1))
	t.trace.Store(&def)
	return t
}

// randomBase draws the per-process span-ID offset; crypto/rand so two
// identically-named backends started in the same nanosecond still get
// distinct ID spaces.
func randomBase() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		return binary.LittleEndian.Uint64(b[:])
	}
	return uint64(time.Now().UnixNano())
}

// mix64 is the splitmix64 finalizer — a bijective avalanche over the
// sequential span counter, giving well-spread IDs without coordination.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SetProc stamps every subsequently-emitted span with the process role
// ("pace", "pacerouter", "paced") so merged fleet traces attribute spans
// to the right process. Nil-safe.
func (t *Tracer) SetProc(proc string) {
	if t == nil || proc == "" {
		return
	}
	t.proc.Store(&proc)
}

// SetTraceID pins the trace ID new root spans are tagged with. Campaigns
// call this with DeriveTraceID(seed) so a fixed-seed run produces the
// same trace ID everywhere. Must be a 32-char lowercase hex string;
// anything else is ignored. Nil-safe.
func (t *Tracer) SetTraceID(id string) {
	if t == nil || !validTraceID(id) {
		return
	}
	t.trace.Store(&id)
}

func (t *Tracer) traceID() string {
	if p := t.trace.Load(); p != nil {
		return *p
	}
	return ""
}

func (t *Tracer) procName() string {
	if p := t.proc.Load(); p != nil {
		return *p
	}
	return ""
}

// DeriveTraceID maps a campaign seed onto a stable 32-hex trace ID so
// fixed-seed runs are findable by trace ID across re-runs.
func DeriveTraceID(seed int64) string {
	const golden = uint64(0x9e3779b97f4a7c15)
	base := uint64(seed) + golden
	return fmt.Sprintf("%016x%016x", mix64(base), mix64(base+golden))
}

func validTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return id != strings.Repeat("0", 32)
}

// FormatTraceParent renders the X-Pace-Trace header value in W3C
// traceparent form: 00-<32 hex trace>-<16 hex span>-01.
func FormatTraceParent(trace string, span uint64) string {
	return fmt.Sprintf("00-%s-%016x-01", trace, span)
}

// ParseTraceParent decodes an X-Pace-Trace header. ok is false for any
// malformed value (wrong field count, bad hex, zero span ID) — callers
// then treat the request as untraced.
func ParseTraceParent(v string) (trace string, span uint64, ok bool) {
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[0] != "00" || !validTraceID(parts[1]) || len(parts[2]) != 16 {
		return "", 0, false
	}
	id, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil || id == 0 {
		return "", 0, false
	}
	return parts[1], id, true
}

// NewFileTracer builds a tracer writing to the named file (truncated).
// Close flushes and closes the file.
func NewFileTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Spans reports how many spans the tracer has emitted (0 for nil).
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Close flushes buffered spans and closes the underlying file when the
// tracer owns one. It returns the first write error encountered over the
// tracer's lifetime. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.closer != nil {
		if cerr := t.closer.Close(); t.err == nil {
			t.err = cerr
		}
		t.closer = nil
	}
	return t.err
}

// Span is one timed region of the pipeline. Start one with
// Telemetry.StartSpan or the package-level StartSpan (which parent via
// context); call End exactly once. A nil *Span is a valid disabled span:
// every method is a no-op.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	trace  string
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// startSpan opens a span under the given parent ID (0 = root). trace is
// the trace ID inherited from the parent; "" means "use the tracer's
// current trace ID" (the root case).
func (t *Tracer) startSpan(name string, parent uint64, trace string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if trace == "" {
		trace = t.traceID()
	}
	id := mix64(t.idBase + t.nextID.Add(1))
	if id == 0 {
		id = 1 // 0 is reserved for "no parent"
	}
	return &Span{
		tr:     t,
		id:     id,
		parent: parent,
		trace:  trace,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// SetAttr attaches attributes to the span (visible on the emitted
// record). Later values for the same key override earlier ones at
// encoding time. No-op on a nil or ended span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End closes the span and emits its record. Second and later calls are
// no-ops, as is End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Trace:   s.trace,
		Proc:    s.tr.procName(),
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   time.Since(s.start).Microseconds(),
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.tr.emit(rec)
}

func (t *Tracer) emit(rec SpanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if _, werr := t.w.Write(append(line, '\n')); werr != nil && t.err == nil {
		t.err = werr
	}
	t.spans.Add(1)
}

// ParseTrace decodes a JSONL trace produced by a Tracer. It fails on the
// first malformed line.
func ParseTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: malformed trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
