package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span attribute. Values should be JSON-encodable
// scalars (string, int64, float64, bool) so the trace stays greppable.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: int64(v)} }

// Int64 builds an int64 attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// SpanRecord is the JSONL wire form of one completed span — also the
// parsed form ParseTrace returns. Timestamps are absolute microseconds
// since the Unix epoch; everything else is deterministic for a fixed
// campaign seed (the determinism tests compare traces modulo ID
// assignment order and timestamps).
type SpanRecord struct {
	ID      uint64         `json:"id"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Tracer emits completed spans as JSON Lines to a writer. Safe for
// concurrent use: span records are serialized under a mutex, one line
// per span, written at span End in completion order.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	err    error
	nextID atomic.Uint64
	spans  atomic.Int64
}

// NewTracer builds a tracer writing JSONL to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// NewFileTracer builds a tracer writing to the named file (truncated).
// Close flushes and closes the file.
func NewFileTracer(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	t := NewTracer(f)
	t.closer = f
	return t, nil
}

// Spans reports how many spans the tracer has emitted (0 for nil).
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Close flushes buffered spans and closes the underlying file when the
// tracer owns one. It returns the first write error encountered over the
// tracer's lifetime. Nil-safe.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ferr := t.w.Flush(); t.err == nil {
		t.err = ferr
	}
	if t.closer != nil {
		if cerr := t.closer.Close(); t.err == nil {
			t.err = cerr
		}
		t.closer = nil
	}
	return t.err
}

// Span is one timed region of the pipeline. Start one with
// Telemetry.StartSpan or the package-level StartSpan (which parent via
// context); call End exactly once. A nil *Span is a valid disabled span:
// every method is a no-op.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// startSpan opens a span under the given parent ID (0 = root).
func (t *Tracer) startSpan(name string, parent uint64, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
}

// SetAttr attaches attributes to the span (visible on the emitted
// record). Later values for the same key override earlier ones at
// encoding time. No-op on a nil or ended span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.attrs = append(s.attrs, attrs...)
	}
}

// End closes the span and emits its record. Second and later calls are
// no-ops, as is End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   time.Since(s.start).Microseconds(),
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.tr.emit(rec)
}

func (t *Tracer) emit(rec SpanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	if _, werr := t.w.Write(append(line, '\n')); werr != nil && t.err == nil {
		t.err = werr
	}
	t.spans.Add(1)
}

// ParseTrace decodes a JSONL trace produced by a Tracer. It fails on the
// first malformed line.
func ParseTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: malformed trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
