package obs

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO tracks one tenant's latency objective over a sliding window and
// exposes the burn rate as a gauge. The objective is "fraction p of
// requests complete within threshold" — a request slower than the
// threshold (or failed) burns error budget. Burn rate is the classic
// SRE ratio
//
//	badFraction / (1 - objective)
//
// over the window: 1.0 (rendered as 1000 permille) means the budget is
// being spent exactly as fast as the objective allows; higher means the
// tenant is on course to violate the SLO.
//
// The window is a ring of per-second slots keyed by unix second, so old
// traffic ages out without a background goroutine. Nil-safe.
type SLO struct {
	threshold float64 // seconds
	objective float64 // e.g. 0.99
	gauge     *Gauge  // burn rate in permille

	mu    sync.Mutex
	slots [sloWindowSeconds]sloSlot
}

const sloWindowSeconds = 60

type sloSlot struct {
	sec  int64 // unix second this slot currently holds
	good int64
	bad  int64
}

// NewSLO builds a tracker writing its burn rate (permille) to the named
// gauge in reg. threshold is the latency objective; objective the target
// fraction of requests under it (clamped to [0.5, 0.9999]).
func NewSLO(reg *Registry, gaugeName string, threshold time.Duration, objective float64) *SLO {
	if objective < 0.5 {
		objective = 0.5
	}
	if objective > 0.9999 {
		objective = 0.9999
	}
	return &SLO{
		threshold: threshold.Seconds(),
		objective: objective,
		gauge:     reg.Gauge(gaugeName),
	}
}

// Observe records one request outcome and refreshes the burn-rate
// gauge. isErr marks a failed request, which always burns budget.
func (s *SLO) Observe(dSeconds float64, isErr bool) {
	if s == nil {
		return
	}
	now := time.Now().Unix()
	bad := isErr || dSeconds > s.threshold

	s.mu.Lock()
	slot := &s.slots[now%sloWindowSeconds]
	if slot.sec != now {
		slot.sec, slot.good, slot.bad = now, 0, 0
	}
	if bad {
		slot.bad++
	} else {
		slot.good++
	}
	var good, badN int64
	for i := range s.slots {
		if now-s.slots[i].sec < sloWindowSeconds {
			good += s.slots[i].good
			badN += s.slots[i].bad
		}
	}
	s.mu.Unlock()

	total := good + badN
	if total == 0 {
		return
	}
	burn := (float64(badN) / float64(total)) / (1 - s.objective)
	s.gauge.Set(int64(math.Round(burn * 1000)))
}

// RED bundles the per-(route, tenant) request/error/duration instruments
// for one data-path route, plus the tenant's shared SLO tracker. All
// fields tolerate a nil registry.
type RED struct {
	Reqs *Counter
	Errs *Counter
	Dur  *Histogram
	slo  *SLO
}

// NewRED builds the RED instruments for one route and tenant:
//
//	<prefix>_requests_total{route="…",tenant="…"}
//	<prefix>_errors_total{route="…",tenant="…"}
//	<prefix>_duration_seconds{route="…",tenant="…"}
//
// slo may be nil (no objective tracked for this route).
func NewRED(reg *Registry, prefix, route, tenant string, slo *SLO) *RED {
	labels := fmt.Sprintf("{route=%q,tenant=%q}", route, tenant)
	return &RED{
		Reqs: reg.Counter(prefix + "_requests_total" + labels),
		Errs: reg.Counter(prefix + "_errors_total" + labels),
		Dur:  reg.Histogram(prefix + "_duration_seconds" + labels),
		slo:  slo,
	}
}

// Observe records one request: rate, error, duration with a slow-request
// exemplar pointing at traceID, and the SLO budget burn.
func (m *RED) Observe(dSeconds float64, isErr bool, traceID string) {
	if m == nil {
		return
	}
	m.Reqs.Inc()
	if isErr {
		m.Errs.Inc()
	}
	m.Dur.ObserveExemplar(dSeconds, traceID)
	m.slo.Observe(dSeconds, isErr)
}
