package ce

import (
	"math/rand"

	"pace/internal/nn"
	"pace/internal/query"
)

// mlpModel covers the three models that consume the raw encoding through
// dense stacks: FCN, Linear, and (via branches) FCN+Pool's components.
type mlpModel struct {
	typ  Type
	meta *query.Meta
	net  *nn.MLP
	out  float64
}

func newFCN(meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	sizes := []int{meta.Dim()}
	for i := 0; i < hp.Layers; i++ {
		sizes = append(sizes, hp.Hidden)
	}
	sizes = append(sizes, 1)
	net := nn.NewMLP("fcn", sizes, nn.NewReLU, nn.NewSigmoid, rng)
	if hp.Dropout > 0 {
		net = withDropout(net, hp.Dropout, rng)
	}
	return &mlpModel{typ: FCN, meta: meta, net: net}
}

// withDropout inserts a dropout layer after every hidden activation
// (i.e., after each non-final Activation in the stack).
func withDropout(m *nn.MLP, p float64, rng *rand.Rand) *nn.MLP {
	out := &nn.MLP{}
	for i, l := range m.Layers {
		out.Layers = append(out.Layers, l)
		if _, ok := l.(*nn.Activation); ok && i < len(m.Layers)-1 {
			out.Layers = append(out.Layers, nn.NewDropout(p, rng))
		}
	}
	return out
}

func newLinear(meta *query.Meta, rng *rand.Rand) Model {
	return &mlpModel{
		typ:  Linear,
		meta: meta,
		net:  nn.NewMLP("linear", []int{meta.Dim(), 1}, nil, nn.NewSigmoid, rng),
	}
}

func (m *mlpModel) Type() Type          { return m.typ }
func (m *mlpModel) Meta() *query.Meta   { return m.meta }
func (m *mlpModel) Params() []*nn.Param { return m.net.Params() }

// SetTraining implements Trainable (only FCN carries dropout layers, but
// the flip is harmless for the others).
func (m *mlpModel) SetTraining(on bool) { nn.TrainingMode(on, m.net) }
func (m *mlpModel) Forward(v []float64) float64 {
	m.out = m.net.Forward(v)[0]
	return m.out
}
func (m *mlpModel) Backward(dOut float64) []float64 {
	return m.net.Backward([]float64{dOut})
}

// fcnPool is the paper's FCN+Pool (Kim et al. 2022): three parallel fully
// connected branches whose outputs are mean-pooled and passed through a
// dense head.
type fcnPool struct {
	meta     *query.Meta
	branches []*nn.MLP
	head     *nn.MLP
	x        []float64
}

func newFCNPool(meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	p := &fcnPool{meta: meta}
	for b := 0; b < 3; b++ {
		sizes := []int{meta.Dim()}
		for i := 0; i < hp.Layers-1; i++ {
			sizes = append(sizes, hp.Hidden)
		}
		p.branches = append(p.branches,
			nn.NewMLP("fcnpool.branch", sizes, nn.NewReLU, nn.NewReLU, rng))
	}
	p.head = nn.NewMLP("fcnpool.head", []int{hp.Hidden, 1}, nil, nn.NewSigmoid, rng)
	return p
}

func (p *fcnPool) Type() Type        { return FCNPool }
func (p *fcnPool) Meta() *query.Meta { return p.meta }

func (p *fcnPool) Params() []*nn.Param {
	var ps []*nn.Param
	for _, b := range p.branches {
		ps = append(ps, b.Params()...)
	}
	return append(ps, p.head.Params()...)
}

func (p *fcnPool) Forward(v []float64) float64 {
	p.x = v
	var pooled []float64
	for _, b := range p.branches {
		h := b.Forward(v)
		if pooled == nil {
			pooled = make([]float64, len(h))
		}
		nn.AddScaled(pooled, 1.0/float64(len(p.branches)), h)
	}
	return p.head.Forward(pooled)[0]
}

func (p *fcnPool) Backward(dOut float64) []float64 {
	dPool := p.head.Backward([]float64{dOut})
	dx := make([]float64, len(p.x))
	scale := 1.0 / float64(len(p.branches))
	for _, b := range p.branches {
		// Re-run the branch forward to restore its layer caches
		// (they were clobbered by the later branches' passes), then
		// backpropagate its share of the pooled gradient.
		b.Forward(p.x)
		dBranch := make([]float64, len(dPool))
		nn.AddScaled(dBranch, scale, dPool)
		nn.AddScaled(dx, 1, b.Backward(dBranch))
	}
	return dx
}
