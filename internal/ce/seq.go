package ce

import (
	"math/rand"

	"pace/internal/nn"
	"pace/internal/query"
)

// seqModel covers the RNN and LSTM estimators (Ortiz et al. 2019): the
// query is unrolled into one step per attribute of each joined table —
// [position ‖ join bit ‖ lo ‖ hi] — so inference latency grows with the
// number of columns in the query, the diagnostic model-type speculation
// exploits (§4.1).
type seqModel struct {
	typ  Type
	meta *query.Meta
	cell nn.SeqModule
	head *nn.MLP

	x     []float64
	attrs []int // global attribute index of every sequence step
}

const seqStepDim = 4

func newRNNModel(meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	return &seqModel{
		typ:  RNN,
		meta: meta,
		cell: nn.NewRNN("rnn.cell", seqStepDim, hp.Hidden, rng),
		head: nn.NewMLP("rnn.head", []int{hp.Hidden, 1}, nil, nn.NewSigmoid, rng),
	}
}

func newLSTMModel(meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	return &seqModel{
		typ:  LSTM,
		meta: meta,
		cell: nn.NewLSTM("lstm.cell", seqStepDim, hp.Hidden, rng),
		head: nn.NewMLP("lstm.head", []int{hp.Hidden, 1}, nil, nn.NewSigmoid, rng),
	}
}

func (s *seqModel) Type() Type        { return s.typ }
func (s *seqModel) Meta() *query.Meta { return s.meta }

func (s *seqModel) Params() []*nn.Param {
	return append(s.cell.Params(), s.head.Params()...)
}

// sequence unrolls the encoding into per-attribute steps for the joined
// tables, recording which global attribute each step covers.
func (s *seqModel) sequence(v []float64) [][]float64 {
	nT := s.meta.NumTables()
	nA := s.meta.NumAttrs()
	s.attrs = s.attrs[:0]
	var xs [][]float64
	for t := 0; t < nT; t++ {
		if v[t] <= 0.5 {
			continue
		}
		lo, hi := s.meta.Attrs(t)
		for a := lo; a < hi; a++ {
			xs = append(xs, []float64{
				float64(a) / float64(nA),
				v[t],
				v[nT+2*a],
				v[nT+2*a+1],
			})
			s.attrs = append(s.attrs, a)
		}
	}
	return xs
}

func (s *seqModel) Forward(v []float64) float64 {
	s.x = v
	h := s.cell.ForwardSeq(s.sequence(v))
	return s.head.Forward(h)[0]
}

func (s *seqModel) Backward(dOut float64) []float64 {
	dh := s.head.Backward([]float64{dOut})
	dx := make([]float64, len(s.x))
	if len(s.attrs) == 0 {
		return dx
	}
	dxs := s.cell.BackwardSeq(dh)
	nT := s.meta.NumTables()
	for i, a := range s.attrs {
		t := s.meta.TableOf(a)
		dx[t] += dxs[i][1]
		dx[nT+2*a] += dxs[i][2]
		dx[nT+2*a+1] += dxs[i][3]
	}
	return dx
}
