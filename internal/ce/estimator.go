package ce

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"pace/internal/nn"
	"pace/internal/query"
)

// ErrInvalidQuery marks a query the target (or the COUNT(*) engine
// behind it) rejected as malformed. It is a permanent error — an
// invalid query has no cardinality at all, retrying is pointless, and
// conflating it with an empty result would fabricate zero labels. It
// lives in ce (the package that defines Target) so that every transport
// — the in-process engine, the fault injector, the remote HTTP client —
// can classify rejections with one sentinel; core.ErrInvalidQuery
// aliases it for existing callers.
var ErrInvalidQuery = errors.New("ce: invalid query")

// Sample is one training example: an encoded query and its normalized
// log-cardinality target.
type Sample struct {
	V []float64
	Y float64
}

// TrainConfig controls Estimator training.
type TrainConfig struct {
	// Epochs over the training workload (default 60).
	Epochs int
	// Batch is the minibatch size (default 32).
	Batch int
	// LR is the Adam learning rate for initial training (default 5e-3).
	LR float64
	// UpdateLR is the plain-SGD learning rate η of a single Eq. 9 step
	// (default 0.05). UpdateStep — the step the attack's one-step
	// hypergradient unrolls through — uses it.
	UpdateLR float64
	// UpdateIters is T, the number of incremental update iterations
	// (epochs of minibatch Adam at UpdateAdamLR) the model runs on newly
	// executed queries (default 10, the paper's setting). Online learned
	// CE deployments fit incoming queries continuously, which is exactly
	// what poisoning exploits.
	UpdateIters int
	// UpdateAdamLR is the Adam learning rate of the incremental update
	// (default 1e-3, the paper's η). It is deliberately lower than the
	// initial-training LR: a gentle update barely moves a model on
	// consistent new queries (Linear stays robust, Random poison is
	// harmless) while still absorbing the coherent distortions PACE's
	// poison carries.
	UpdateAdamLR float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 5e-3
	}
	if c.UpdateLR == 0 {
		c.UpdateLR = 0.05
	}
	if c.UpdateIters == 0 {
		c.UpdateIters = 10
	}
	if c.UpdateAdamLR == 0 {
		c.UpdateAdamLR = 1e-3
	}
	return c
}

// Estimator wraps a Model with cardinality normalization, Q-error-oriented
// training, and the incremental-update mechanism poisoning exploits.
type Estimator struct {
	M    Model
	Norm Normalizer
	Cfg  TrainConfig

	opt *nn.Adam
	rng *rand.Rand
}

// NewEstimator wraps model m.
func NewEstimator(m Model, cfg TrainConfig, rng *rand.Rand) *Estimator {
	cfg = cfg.withDefaults()
	return &Estimator{
		M:    m,
		Norm: DefaultNormalizer(),
		Cfg:  cfg,
		opt:  nn.NewAdam(m.Params(), cfg.LR),
		rng:  rng,
	}
}

// MakeSamples encodes queries and normalizes their cardinalities.
func (e *Estimator) MakeSamples(qs []*query.Query, cards []float64) []Sample {
	out := make([]Sample, len(qs))
	for i, q := range qs {
		out[i] = Sample{V: q.Encode(e.M.Meta()), Y: e.Norm.Norm(cards[i])}
	}
	return out
}

// Train fits the model to the samples with Adam on squared log-space
// error (the smooth surrogate of Q-error the paper's Eq. 1 minimizes).
func (e *Estimator) Train(samples []Sample) {
	e.setTraining(true)
	defer e.setTraining(false)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for ep := 0; ep < e.Cfg.Epochs; ep++ {
		e.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += e.Cfg.Batch {
			hi := lo + e.Cfg.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			for _, i := range idx[lo:hi] {
				s := samples[i]
				out := e.M.Forward(s.V)
				e.M.Backward(2 * (out - s.Y))
			}
			e.opt.Step(1 / float64(hi-lo))
		}
	}
}

// Loss returns the mean squared log-space error over the samples.
func (e *Estimator) Loss(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		d := e.M.Forward(s.V) - s.Y
		sum += d * d
	}
	return sum / float64(len(samples))
}

// Update performs the incremental update on newly executed queries: T
// epochs of minibatch Adam over the new samples, the way online learned
// CE systems absorb fresh workload. This is the mechanism the poisoning
// queries enter through.
func (e *Estimator) Update(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	e.setTraining(true)
	defer e.setTraining(false)
	opt := nn.NewAdam(e.M.Params(), e.Cfg.UpdateAdamLR)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for it := 0; it < e.Cfg.UpdateIters; it++ {
		e.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += e.Cfg.Batch {
			hi := lo + e.Cfg.Batch
			if hi > len(idx) {
				hi = len(idx)
			}
			for _, i := range idx[lo:hi] {
				s := samples[i]
				out := e.M.Forward(s.V)
				e.M.Backward(2 * (out - s.Y))
			}
			opt.Step(1 / float64(hi-lo))
		}
	}
}

// UpdateStep performs a single Eq. 9 step: θ ← θ − η·∇L(samples).
func (e *Estimator) UpdateStep(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	ps := e.M.Params()
	nn.ZeroGrads(ps)
	for _, s := range samples {
		out := e.M.Forward(s.V)
		e.M.Backward(2 * (out - s.Y))
	}
	scale := e.Cfg.UpdateLR / float64(len(samples))
	for _, p := range ps {
		for i := range p.W {
			p.W[i] -= scale * p.G[i]
		}
		p.ZeroGrad()
	}
}

// setTraining flips the model's train/eval behaviour when it has any
// (dropout layers).
func (e *Estimator) setTraining(on bool) {
	if t, ok := e.M.(Trainable); ok {
		t.SetTraining(on)
	}
}

// EstimateNorm returns the model's normalized prediction for an encoded
// query.
func (e *Estimator) EstimateNorm(v []float64) float64 { return e.M.Forward(v) }

// Estimate returns the model's cardinality estimate for a query.
func (e *Estimator) Estimate(q *query.Query) float64 {
	return e.Norm.Denorm(e.M.Forward(q.Encode(e.M.Meta())))
}

// QErrors evaluates the Q-error of the model on every (query, cardinality)
// pair.
func (e *Estimator) QErrors(qs []*query.Query, cards []float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QError(e.Estimate(q), cards[i])
	}
	return out
}

// Save serializes the model's parameters into a binary blob; Load
// restores them into an estimator with the same architecture. Together
// they let a trained estimator persist across processes.
func (e *Estimator) Save() []byte { return nn.SaveParams(e.M.Params()) }

// Load restores parameters saved by Save. It returns an error if the
// blob's shapes do not match this estimator's architecture.
func (e *Estimator) Load(blob []byte) error { return nn.LoadParams(e.M.Params(), blob) }

// Snapshot captures the model's current parameters.
func (e *Estimator) Snapshot() *nn.Snapshot { return nn.TakeSnapshot(e.M.Params()) }

// Restore rewinds the model to a snapshot.
func (e *Estimator) Restore(s *nn.Snapshot) { s.Restore(e.M.Params()) }

// Target is the attacker's remote view of the deployed estimator: the
// estimate channel (the "Explain" command) and the query-execution
// channel that triggers incremental retraining. Unlike the in-process
// BlackBox, a Target implementation may be slow, fail transiently, or
// drop calls — the production deployment is reached over a network —
// so every method takes a context and can return an error. The attack
// pipeline (speculation, surrogate training, poison execution) talks
// only to this interface; internal/faults wraps any Target with an
// injected unreliability profile.
type Target interface {
	// EstimateContext returns the target's cardinality estimate for q.
	EstimateContext(ctx context.Context, q *query.Query) (float64, error)
	// ExecuteWorkload runs queries against the database, triggering the
	// incremental update on the (query, true cardinality) pairs.
	ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error
}

// BlackBox restricts an Estimator to the interface the threat model gives
// the attacker: cardinality estimates (the "Explain" command) and the
// implicit incremental updates triggered by executed queries. The model's
// type and parameters stay hidden behind it. BlackBox implements Target
// as the reliable, in-process deployment; it only fails when the caller's
// context is already done.
type BlackBox struct {
	est *Estimator
}

var _ Target = (*BlackBox)(nil)

// AsBlackBox hides an estimator behind the black-box interface.
func AsBlackBox(e *Estimator) *BlackBox { return &BlackBox{est: e} }

// Estimate returns the black box's cardinality estimate for q. It is the
// infallible convenience form of EstimateContext for experiment harness
// code; the attack path goes through the Target interface.
func (b *BlackBox) Estimate(q *query.Query) float64 { return b.est.Estimate(q) }

// EstimateContext implements Target.
func (b *BlackBox) EstimateContext(ctx context.Context, q *query.Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return b.est.Estimate(q), nil
}

// EstimateTimed returns the estimate together with the observed inference
// latency — the side channel model-type speculation uses.
func (b *BlackBox) EstimateTimed(q *query.Query) (float64, time.Duration) {
	start := time.Now()
	est := b.est.Estimate(q)
	return est, time.Since(start)
}

// ExecuteWorkload models running queries against the database: the hidden
// CE model incrementally retrains on the executed queries and their true
// cardinalities (the update mechanism of §2.2). Zero-cardinality queries
// are eliminated, as the paper prescribes for the training phase. The
// in-process update is not interruptible once started; ctx is only
// checked on entry.
func (b *BlackBox) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	keepQ := make([]*query.Query, 0, len(qs))
	keepC := make([]float64, 0, len(cards))
	for i, q := range qs {
		if cards[i] >= 1 {
			keepQ = append(keepQ, q)
			keepC = append(keepC, cards[i])
		}
	}
	b.est.Update(b.est.MakeSamples(keepQ, keepC))
	return nil
}

// QErrors evaluates the black box on a labeled test workload. (Evaluation
// is the experimenter's capability, not the attacker's.)
func (b *BlackBox) QErrors(qs []*query.Query, cards []float64) []float64 {
	return b.est.QErrors(qs, cards)
}

// Unwrap exposes the underlying estimator for experiment code that must
// inspect the hidden model (never used on the attack path).
func (b *BlackBox) Unwrap() *Estimator { return b.est }
