package ce

import "math"

// Normalizer maps cardinalities to the (0, 1) range the models' sigmoid
// heads produce, via a capped log2 transform: Norm(c) = log2(c+1)/LogCap.
type Normalizer struct {
	// LogCap is the log2 cardinality treated as 1.0. The default 40
	// covers cardinalities up to ~10^12.
	LogCap float64
}

// DefaultNormalizer returns the normalizer used throughout the
// reproduction.
func DefaultNormalizer() Normalizer { return Normalizer{LogCap: 40} }

// Norm maps a cardinality to [0, 1].
func (n Normalizer) Norm(card float64) float64 {
	if card < 0 {
		card = 0
	}
	v := math.Log2(card+1) / n.LogCap
	if v > 1 {
		v = 1
	}
	return v
}

// Denorm inverts Norm.
func (n Normalizer) Denorm(y float64) float64 {
	if y < 0 {
		y = 0
	}
	if y > 1 {
		y = 1
	}
	return math.Exp2(y*n.LogCap) - 1
}

// QError is the paper's accuracy metric (Moerkotte et al. 2009):
// max(est/true, true/est), with both sides floored at 1 to keep the
// metric defined for sub-one estimates.
func QError(est, truth float64) float64 {
	if est < 1 {
		est = 1
	}
	if truth < 1 {
		truth = 1
	}
	if est > truth {
		return est / truth
	}
	return truth / est
}
