package ce

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pace/internal/nn"
	"pace/internal/query"
)

func ceTestMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"t0", "t1", "t2"},
		AttrNames:  []string{"t0.a", "t0.b", "t1.a", "t2.a", "t2.b"},
		AttrOffset: []int{0, 2, 3, 5},
	}
}

// testEncoding builds an encoding joining t0 and t1 with a couple of
// predicates.
func testEncoding(m *query.Meta) []float64 {
	q := query.New(m)
	q.Tables[0], q.Tables[1] = true, true
	q.Bounds[0] = [2]float64{0.2, 0.7}
	q.Bounds[2] = [2]float64{0.1, 0.5}
	q.Normalize(m)
	return q.Encode(m)
}

func TestModelTypeString(t *testing.T) {
	names := map[Type]string{
		FCN: "FCN", FCNPool: "FCN+Pool", MSCN: "MSCN",
		RNN: "RNN", LSTM: "LSTM", Linear: "Linear",
	}
	for typ, want := range names {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(typ), typ.String(), want)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown type String format")
	}
	if len(Types()) != 6 {
		t.Errorf("Types() lists %d types, want 6", len(Types()))
	}
}

func TestAllModelsForwardInRange(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(1))
	v := testEncoding(m)
	for _, typ := range Types() {
		model := New(typ, m, HyperParams{Hidden: 8, Layers: 2}, rng)
		out := model.Forward(v)
		if out <= 0 || out >= 1 {
			t.Errorf("%s output %g outside (0,1)", typ, out)
		}
		if model.Type() != typ {
			t.Errorf("Type() = %v, want %v", model.Type(), typ)
		}
		if model.Meta() != m {
			t.Errorf("%s Meta() does not round-trip", typ)
		}
	}
}

func TestAllModelsGradients(t *testing.T) {
	m := ceTestMeta()
	v := testEncoding(m)
	for _, typ := range Types() {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(2))
			model := New(typ, m, HyperParams{Hidden: 6, Layers: 2}, rng)
			loss := func() float64 {
				out := model.Forward(v)
				return out * out
			}
			nn.ZeroGrads(model.Params())
			out := model.Forward(v)
			dx := model.Backward(2 * out)

			analytic := nn.FlattenGrads(model.Params())
			numeric := nn.NumericGrad(loss, model.Params(), 1e-5)
			if d := nn.MaxAbsDiff(analytic, numeric); d > 1e-6 {
				t.Errorf("parameter gradient mismatch: %g", d)
			}
			numericX := nn.NumericInputGrad(loss, v, 1e-6)
			if d := nn.MaxAbsDiff(dx, numericX); d > 1e-5 {
				t.Errorf("input gradient mismatch: %g", d)
			}
		})
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n := DefaultNormalizer()
	for _, card := range []float64{0, 1, 10, 12345, 9.9e11} {
		y := n.Norm(card)
		if y < 0 || y > 1 {
			t.Errorf("Norm(%g) = %g outside [0,1]", card, y)
		}
		back := n.Denorm(y)
		if math.Abs(back-card) > 1e-6*(card+1) {
			t.Errorf("Denorm(Norm(%g)) = %g", card, back)
		}
	}
	if n.Norm(-5) != 0 {
		t.Error("negative cardinality should normalize to 0")
	}
	if n.Norm(math.Exp2(60)) != 1 {
		t.Error("huge cardinality should clamp to 1")
	}
	if n.Denorm(-0.5) != 0 {
		t.Error("Denorm below range should clamp to 0")
	}
}

func TestQError(t *testing.T) {
	cases := []struct{ est, truth, want float64 }{
		{10, 10, 1},
		{100, 10, 10},
		{10, 100, 10},
		{0.1, 10, 10}, // floored at 1
		{5, 0.2, 5},   // truth floored at 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("QError(%g,%g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
}

func TestQErrorProperties(t *testing.T) {
	// Q-error is symmetric and always >= 1.
	f := func(a, b float64) bool {
		a, b = math.Abs(a)+0.01, math.Abs(b)+0.01
		q1, q2 := QError(a, b), QError(b, a)
		return q1 >= 1 && math.Abs(q1-q2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// synthetic teaching task: cardinality is determined by the volume of the
// predicate box on table t0.
func syntheticSamples(m *query.Meta, n int, rng *rand.Rand, norm Normalizer) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		q := query.New(m)
		q.Tables[0] = true
		w1 := 0.1 + rng.Float64()*0.9
		w2 := 0.1 + rng.Float64()*0.9
		q.Bounds[0] = [2]float64{0, w1}
		q.Bounds[1] = [2]float64{0, w2}
		q.Normalize(m)
		card := 1 + 1e6*w1*w2
		out = append(out, Sample{V: q.Encode(m), Y: norm.Norm(card)})
	}
	return out
}

func TestTrainingReducesLoss(t *testing.T) {
	m := ceTestMeta()
	for _, typ := range []Type{FCN, MSCN, LSTM} {
		typ := typ
		t.Run(typ.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(3))
			model := New(typ, m, HyperParams{Hidden: 16, Layers: 2}, rng)
			est := NewEstimator(model, TrainConfig{Epochs: 30, Batch: 16}, rng)
			samples := syntheticSamples(m, 200, rng, est.Norm)
			before := est.Loss(samples)
			est.Train(samples)
			after := est.Loss(samples)
			if after >= before {
				t.Errorf("loss did not decrease: %g → %g", before, after)
			}
			if after > before*0.5 {
				t.Errorf("loss barely decreased: %g → %g", before, after)
			}
		})
	}
}

func TestUpdateMovesTowardNewLabels(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(4))
	model := New(FCN, m, HyperParams{Hidden: 16, Layers: 2}, rng)
	est := NewEstimator(model, TrainConfig{Epochs: 20, Batch: 16, UpdateIters: 10}, rng)
	samples := syntheticSamples(m, 150, rng, est.Norm)
	est.Train(samples)

	// Relabel a few queries with wildly wrong cardinalities and update.
	poisoned := make([]Sample, 10)
	copy(poisoned, samples[:10])
	for i := range poisoned {
		poisoned[i].Y = 1 - poisoned[i].Y
	}
	lossBefore := est.Loss(poisoned)
	est.Update(poisoned)
	lossAfter := est.Loss(poisoned)
	if lossAfter >= lossBefore {
		t.Errorf("update did not move toward new labels: %g → %g", lossBefore, lossAfter)
	}
}

func TestUpdateStepMatchesManualSGD(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(5))
	model := New(Linear, m, HyperParams{}, rng)
	est := NewEstimator(model, TrainConfig{UpdateLR: 0.1}, rng)
	samples := syntheticSamples(m, 5, rng, est.Norm)

	// Manual: θ' = θ − η/N Σ ∇loss.
	ps := model.Params()
	before := nn.FlattenParams(ps)
	nn.ZeroGrads(ps)
	for _, s := range samples {
		out := model.Forward(s.V)
		model.Backward(2 * (out - s.Y))
	}
	grads := nn.FlattenGrads(ps)
	want := make([]float64, len(before))
	for i := range want {
		want[i] = before[i] - 0.1/float64(len(samples))*grads[i]
	}
	nn.ZeroGrads(ps)

	est.UpdateStep(samples)
	got := nn.FlattenParams(ps)
	if d := nn.MaxAbsDiff(got, want); d > 1e-12 {
		t.Errorf("UpdateStep deviates from plain SGD by %g", d)
	}
}

func TestUpdateEmptyWorkloadIsNoop(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(6))
	model := New(FCN, m, HyperParams{Hidden: 8, Layers: 2}, rng)
	est := NewEstimator(model, TrainConfig{}, rng)
	before := nn.FlattenParams(model.Params())
	est.Update(nil)
	if nn.MaxAbsDiff(before, nn.FlattenParams(model.Params())) != 0 {
		t.Error("empty update changed parameters")
	}
}

func TestSnapshotRestoreEstimator(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(7))
	model := New(FCN, m, HyperParams{Hidden: 8, Layers: 2}, rng)
	est := NewEstimator(model, TrainConfig{}, rng)
	samples := syntheticSamples(m, 20, rng, est.Norm)
	snap := est.Snapshot()
	est.Update(samples)
	est.Restore(snap)
	v := testEncoding(m)
	out1 := est.EstimateNorm(v)
	est.Restore(snap)
	out2 := est.EstimateNorm(v)
	if out1 != out2 {
		t.Error("Restore is not idempotent")
	}
}

func TestBlackBoxHidesModelButUpdates(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(8))
	model := New(MSCN, m, HyperParams{Hidden: 8, Layers: 2}, rng)
	est := NewEstimator(model, TrainConfig{Epochs: 5}, rng)
	bb := AsBlackBox(est)

	q := query.New(m)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0.1, 0.9}
	q.Normalize(m)

	before := bb.Estimate(q)
	if before < 0 {
		t.Fatal("negative estimate")
	}
	_, lat := bb.EstimateTimed(q)
	if lat < 0 {
		t.Error("negative latency")
	}
	if err := bb.ExecuteWorkload(context.Background(), []*query.Query{q}, []float64{1e9}); err != nil {
		t.Fatal(err)
	}
	after := bb.Estimate(q)
	if before == after {
		t.Error("ExecuteWorkload did not change the model")
	}
	if bb.Unwrap() != est {
		t.Error("Unwrap does not return the wrapped estimator")
	}
	qe := bb.QErrors([]*query.Query{q}, []float64{100})
	if len(qe) != 1 || qe[0] < 1 {
		t.Errorf("QErrors = %v", qe)
	}
}

func TestEstimatorQErrors(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(9))
	model := New(Linear, m, HyperParams{}, rng)
	est := NewEstimator(model, TrainConfig{}, rng)
	q := query.New(m)
	q.Tables[0] = true
	q.Normalize(m)
	errs := est.QErrors([]*query.Query{q, q}, []float64{10, 1000})
	if len(errs) != 2 {
		t.Fatalf("got %d q-errors", len(errs))
	}
	for _, e := range errs {
		if e < 1 {
			t.Errorf("q-error %g < 1", e)
		}
	}
}

func TestSeqModelNoTables(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(10))
	for _, typ := range []Type{RNN, LSTM, MSCN} {
		model := New(typ, m, HyperParams{Hidden: 4, Layers: 2}, rng)
		v := make([]float64, m.Dim()) // no tables joined
		out := model.Forward(v)
		if math.IsNaN(out) {
			t.Errorf("%s produced NaN on empty query", typ)
		}
		dx := model.Backward(1)
		if len(dx) != m.Dim() {
			t.Errorf("%s empty-query input grad dim %d, want %d", typ, len(dx), m.Dim())
		}
	}
}

func TestHyperParamDefaults(t *testing.T) {
	hp := HyperParams{}.withDefaults()
	if hp.Hidden != 32 || hp.Layers != 3 {
		t.Errorf("defaults = %+v", hp)
	}
	cfg := TrainConfig{}.withDefaults()
	if cfg.Epochs != 60 || cfg.Batch != 32 || cfg.UpdateIters != 10 {
		t.Errorf("train defaults = %+v", cfg)
	}
}

func TestParseType(t *testing.T) {
	cases := map[string]Type{
		"fcn": FCN, "FCN": FCN, "fcnpool": FCNPool, "fcn+pool": FCNPool,
		"MSCN": MSCN, "rnn": RNN, "LSTM": LSTM, "Linear": Linear,
	}
	for s, want := range cases {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseType("transformer"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestEstimatorSaveLoad(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(30))
	e1 := NewEstimator(New(FCN, m, HyperParams{Hidden: 8, Layers: 2}, rng), TrainConfig{Epochs: 5}, rng)
	samples := syntheticSamples(m, 40, rng, e1.Norm)
	e1.Train(samples)

	e2 := NewEstimator(New(FCN, m, HyperParams{Hidden: 8, Layers: 2},
		rand.New(rand.NewSource(31))), TrainConfig{}, rng)
	if err := e2.Load(e1.Save()); err != nil {
		t.Fatal(err)
	}
	v := testEncoding(m)
	if e1.EstimateNorm(v) != e2.EstimateNorm(v) {
		t.Error("loaded estimator disagrees with saved")
	}

	wrong := NewEstimator(New(FCN, m, HyperParams{Hidden: 12, Layers: 2},
		rand.New(rand.NewSource(32))), TrainConfig{}, rng)
	if err := wrong.Load(e1.Save()); err == nil {
		t.Error("architecture mismatch accepted")
	}
}

func TestFCNWithDropout(t *testing.T) {
	m := ceTestMeta()
	rng := rand.New(rand.NewSource(40))
	model := New(FCN, m, HyperParams{Hidden: 16, Layers: 2, Dropout: 0.2}, rng)
	est := NewEstimator(model, TrainConfig{Epochs: 25, Batch: 16}, rng)
	samples := syntheticSamples(m, 150, rng, est.Norm)
	est.Train(samples)

	// Inference must be deterministic (dropout off outside Train/Update).
	v := testEncoding(m)
	if est.EstimateNorm(v) != est.EstimateNorm(v) {
		t.Error("inference is stochastic: dropout left in training mode")
	}
	// And the regularized model still learns.
	if loss := est.Loss(samples); loss > 0.02 {
		t.Errorf("dropout-regularized FCN did not fit: loss %g", loss)
	}
}
