package ce

import (
	"math/rand"

	"pace/internal/nn"
	"pace/internal/query"
)

// mscn is the multi-set convolutional network (Kipf et al. 2019): every
// joined table becomes a set element — [table one-hot ‖ join bit ‖ its
// (padded) predicate bounds] — processed by a shared per-element MLP,
// mean-pooled, and passed through a dense head.
type mscn struct {
	meta    *query.Meta
	maxAttr int
	shared  *nn.MLP
	head    *nn.MLP

	x       []float64
	present []int
	elems   [][]float64
}

func newMSCN(meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	maxAttr := 0
	for t := 0; t < meta.NumTables(); t++ {
		lo, hi := meta.Attrs(t)
		if hi-lo > maxAttr {
			maxAttr = hi - lo
		}
	}
	elemDim := meta.NumTables() + 1 + 2*maxAttr
	m := &mscn{meta: meta, maxAttr: maxAttr}
	m.shared = nn.NewMLP("mscn.shared",
		[]int{elemDim, hp.Hidden, hp.Hidden}, nn.NewReLU, nn.NewReLU, rng)
	m.head = nn.NewMLP("mscn.head", []int{hp.Hidden, 1}, nil, nn.NewSigmoid, rng)
	return m
}

func (m *mscn) Type() Type        { return MSCN }
func (m *mscn) Meta() *query.Meta { return m.meta }

func (m *mscn) Params() []*nn.Param {
	return append(m.shared.Params(), m.head.Params()...)
}

// element builds the set-element feature vector for table t from the
// query encoding v.
func (m *mscn) element(v []float64, t int) []float64 {
	nT := m.meta.NumTables()
	e := make([]float64, nT+1+2*m.maxAttr)
	e[t] = 1
	e[nT] = v[t]
	lo, hi := m.meta.Attrs(t)
	for a := lo; a < hi; a++ {
		e[nT+1+2*(a-lo)] = v[nT+2*a]
		e[nT+1+2*(a-lo)+1] = v[nT+2*a+1]
	}
	// Unused bound slots of shorter tables stay 0 ‖ pad with open [0,1].
	for i := hi - lo; i < m.maxAttr; i++ {
		e[nT+1+2*i] = 0
		e[nT+1+2*i+1] = 1
	}
	return e
}

func (m *mscn) Forward(v []float64) float64 {
	m.x = v
	m.present = m.present[:0]
	m.elems = m.elems[:0]
	for t := 0; t < m.meta.NumTables(); t++ {
		if v[t] > 0.5 {
			m.present = append(m.present, t)
			m.elems = append(m.elems, m.element(v, t))
		}
	}
	hidden := m.head.Params()[0].Cols
	pooled := make([]float64, hidden)
	if len(m.elems) > 0 {
		for _, e := range m.elems {
			nn.AddScaled(pooled, 1.0/float64(len(m.elems)), m.shared.Forward(e))
		}
	}
	return m.head.Forward(pooled)[0]
}

func (m *mscn) Backward(dOut float64) []float64 {
	dPool := m.head.Backward([]float64{dOut})
	dx := make([]float64, len(m.x))
	if len(m.elems) == 0 {
		return dx
	}
	nT := m.meta.NumTables()
	scale := 1.0 / float64(len(m.elems))
	for i, t := range m.present {
		// Restore the shared MLP's caches for this element before
		// backpropagating its share of the pooled gradient.
		m.shared.Forward(m.elems[i])
		dElem := make([]float64, len(dPool))
		nn.AddScaled(dElem, scale, dPool)
		dE := m.shared.Backward(dElem)
		// Scatter the element gradient back onto the encoding.
		dx[t] += dE[nT]
		lo, hi := m.meta.Attrs(t)
		for a := lo; a < hi; a++ {
			dx[nT+2*a] += dE[nT+1+2*(a-lo)]
			dx[nT+2*a+1] += dE[nT+1+2*(a-lo)+1]
		}
	}
	return dx
}
