// Package ce implements the six neural query-driven cardinality
// estimation models PACE attacks (§7.1): FCN, FCN+Pool, MSCN, RNN, LSTM
// and Linear. All models share one contract: they consume the PACE §5.2
// query encoding, emit a normalized log-cardinality through a final
// sigmoid (the paper's "last activation layer limits the normalized
// value"), and support backpropagation to both parameters and the input
// encoding — the white-box capability the attack's gradients need.
package ce

import (
	"fmt"
	"math/rand"
	"strings"

	"pace/internal/nn"
	"pace/internal/query"
)

// Type identifies a CE model architecture.
type Type int

// The six model families of the paper, in its order.
const (
	FCN Type = iota
	FCNPool
	MSCN
	RNN
	LSTM
	Linear
)

// Types lists all model types in paper order.
func Types() []Type { return []Type{FCN, FCNPool, MSCN, RNN, LSTM, Linear} }

// String returns the paper's name for the model type.
func (t Type) String() string {
	switch t {
	case FCN:
		return "FCN"
	case FCNPool:
		return "FCN+Pool"
	case MSCN:
		return "MSCN"
	case RNN:
		return "RNN"
	case LSTM:
		return "LSTM"
	case Linear:
		return "Linear"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType resolves a model-type name (case-insensitive; "fcn+pool" and
// "fcnpool" both work) to its Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(s) {
	case "fcn":
		return FCN, nil
	case "fcnpool", "fcn+pool":
		return FCNPool, nil
	case "mscn":
		return MSCN, nil
	case "rnn":
		return RNN, nil
	case "lstm":
		return LSTM, nil
	case "linear":
		return Linear, nil
	default:
		return 0, fmt.Errorf("ce: unknown model type %q (want fcn, fcnpool, mscn, rnn, lstm or linear)", s)
	}
}

// Model is one CE network: a differentiable map from a query encoding to
// a normalized log-cardinality in (0, 1). Backward must follow the
// Forward whose cached state it consumes; it accumulates parameter
// gradients and returns dL/dEncoding.
type Model interface {
	nn.Module
	Type() Type
	Meta() *query.Meta
	Forward(v []float64) float64
	Backward(dOut float64) []float64
}

// HyperParams configure a model's capacity. Zero values select the
// defaults the paper's Table 2 stands in for.
type HyperParams struct {
	// Hidden is the hidden width (default 32).
	Hidden int
	// Layers is the number of hidden layers for MLP-style models
	// (default 3).
	Layers int
	// Dropout inserts inverted-dropout layers with this drop probability
	// after every hidden activation of the FCN model (0 disables). The
	// regularization-as-defense experiments use it: stochastic updates
	// blunt the coherent gradients poisoning relies on.
	Dropout float64
}

// Trainable is implemented by models whose behaviour differs between
// training and inference (dropout); Estimator flips it around
// optimization.
type Trainable interface {
	SetTraining(on bool)
}

func (h HyperParams) withDefaults() HyperParams {
	if h.Hidden == 0 {
		h.Hidden = 32
	}
	if h.Layers == 0 {
		h.Layers = 3
	}
	return h
}

// New constructs a CE model of the given type over the schema meta.
func New(t Type, meta *query.Meta, hp HyperParams, rng *rand.Rand) Model {
	hp = hp.withDefaults()
	switch t {
	case FCN:
		return newFCN(meta, hp, rng)
	case FCNPool:
		return newFCNPool(meta, hp, rng)
	case MSCN:
		return newMSCN(meta, hp, rng)
	case RNN:
		return newRNNModel(meta, hp, rng)
	case LSTM:
		return newLSTMModel(meta, hp, rng)
	case Linear:
		return newLinear(meta, rng)
	default:
		panic(fmt.Sprintf("ce: unknown model type %d", int(t)))
	}
}
