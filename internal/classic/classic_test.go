package classic

import (
	"math"
	"math/rand"
	"testing"

	"pace/internal/ce"
	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/query"
	"pace/internal/workload"
)

func classicSetup(t *testing.T, name string, seed int64) (*dataset.Dataset, *engine.Engine, *workload.Generator) {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(ds)
	return ds, eng, workload.NewGenerator(ds, eng, rand.New(rand.NewSource(seed)))
}

func meanQErr(estimate func(*query.Query) float64, w []workload.Labeled) float64 {
	var s float64
	for _, l := range w {
		s += ce.QError(estimate(l.Q), l.Card)
	}
	return s / float64(len(w))
}

func TestHistogramSingleTableAccuracy(t *testing.T) {
	ds, _, gen := classicSetup(t, "dmv", 1)
	h := NewHistogram(ds, 32)
	w := gen.Random(60)
	qe := meanQErr(h.Estimate, w)
	t.Logf("histogram mean q-error on dmv: %.2f", qe)
	// Correlated columns break independence, but single-table estimates
	// should still be within a couple orders of magnitude.
	if qe > 100 {
		t.Errorf("histogram mean q-error %.1f too large", qe)
	}
}

func TestHistogramOpenQueryIsExactish(t *testing.T) {
	ds, eng, _ := classicSetup(t, "tpch", 2)
	h := NewHistogram(ds, 32)
	q := query.New(ds.Meta)
	q.Tables[ds.TableIndex("lineitem")] = true
	est := h.Estimate(q)
	truth, _ := eng.Cardinality(q)
	if math.Abs(est-truth) > 1e-9 {
		t.Errorf("open single-table estimate %g != %g", est, truth)
	}
	// Open two-table PK-FK join: |child| exactly under uniform-fanout
	// accounting from either traversal direction.
	q.Tables[ds.TableIndex("orders")] = true
	est = h.Estimate(q)
	truth, _ = eng.Cardinality(q)
	if est < truth*0.5 || est > truth*2 {
		t.Errorf("open join estimate %g far from %g", est, truth)
	}
}

func TestSamplerSingleTableAccuracy(t *testing.T) {
	ds, _, gen := classicSetup(t, "dmv", 3)
	s := NewSampler(ds, 0.3, rand.New(rand.NewSource(3)))
	w := gen.Random(60)
	qe := meanQErr(s.Estimate, w)
	t.Logf("sampler mean q-error on dmv: %.2f", qe)
	if qe > 50 {
		t.Errorf("sampler mean q-error %.1f too large", qe)
	}
}

func TestSamplerFullSampleIsExact(t *testing.T) {
	// With frac=1 the sampler sees every row; single-table estimates
	// must be exact and join estimates exact too (references resolve
	// exactly and the child side is fully enumerated).
	ds, eng, gen := classicSetup(t, "tpch", 4)
	s := NewSampler(ds, 1.0, rand.New(rand.NewSource(4)))
	gen.MaxJoinTables = 3
	for _, l := range gen.Random(25) {
		est := s.Estimate(l.Q)
		truth, _ := eng.Cardinality(l.Q)
		if math.Abs(est-truth) > 1e-6*(truth+1) {
			t.Fatalf("full-sample estimate %g != %g for %s", est, truth, l.Q.SQL(ds.Meta))
		}
	}
}

func TestEstimatorsHandleEmptySelection(t *testing.T) {
	ds, _, _ := classicSetup(t, "dmv", 5)
	h := NewHistogram(ds, 0) // default bins
	s := NewSampler(ds, 0.1, rand.New(rand.NewSource(5)))
	empty := query.New(ds.Meta)
	if h.Estimate(empty) != 0 || s.Estimate(empty) != 0 {
		t.Error("empty table set should estimate 0")
	}
}

func TestClassicEstimatorsAreMonotone(t *testing.T) {
	ds, _, gen := classicSetup(t, "stats", 6)
	h := NewHistogram(ds, 32)
	s := NewSampler(ds, 0.4, rand.New(rand.NewSource(6)))
	for i := 0; i < 20; i++ {
		l := gen.Random(1)[0]
		wide := l.Q.Clone()
		for a := range wide.Bounds {
			b := wide.Bounds[a]
			wide.Bounds[a] = [2]float64{b[0] * 0.5, b[1] + (1-b[1])*0.5}
		}
		wide.Normalize(ds.Meta)
		if h.Estimate(wide) < h.Estimate(l.Q)-1e-9 {
			t.Fatal("histogram estimate not monotone under widening")
		}
		if s.Estimate(wide) < s.Estimate(l.Q)-1e-9 {
			t.Fatal("sampler estimate not monotone under widening")
		}
	}
}
