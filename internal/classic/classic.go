// Package classic implements the two traditional cardinality estimators
// the paper positions learned CE against (§1: "higher performance than
// traditional estimation methods such as histograms and sampling").
// Neither is query-driven — they summarize the data, not the workload —
// so neither can be poisoned through executed queries. They serve as the
// un-attackable reference line in the robustness experiments and as
// drop-in estimators for the qopt optimizer.
package classic

import (
	"math/rand"
	"sort"

	"pace/internal/dataset"
	"pace/internal/query"
)

// Histogram estimates cardinalities from per-column equi-width histograms
// under the attribute-value-independence assumption, with PK-FK join
// fanout statistics for multi-table queries — the textbook System-R-style
// estimator.
type Histogram struct {
	ds   *dataset.Dataset
	bins int
	// hist[t][c] is the normalized-value histogram of table t, column c.
	hist [][][]float64
	// fanout[e] is the average number of child rows per parent row of
	// dataset edge e.
	fanout []float64
}

// NewHistogram builds histograms with the given number of equi-width bins
// (default 32 when bins <= 0).
func NewHistogram(ds *dataset.Dataset, bins int) *Histogram {
	if bins <= 0 {
		bins = 32
	}
	h := &Histogram{ds: ds, bins: bins}
	h.hist = make([][][]float64, len(ds.Tables))
	for ti, t := range ds.Tables {
		h.hist[ti] = make([][]float64, len(t.Cols))
		for ci, col := range t.Cols {
			counts := make([]float64, bins)
			for _, v := range col {
				b := int(v * float64(bins))
				if b >= bins {
					b = bins - 1
				}
				counts[b]++
			}
			h.hist[ti][ci] = counts
		}
	}
	h.fanout = make([]float64, len(ds.Edges))
	for ei, e := range ds.Edges {
		h.fanout[ei] = float64(len(e.Refs)) / float64(ds.Tables[e.Parent].Rows)
	}
	return h
}

// selectivity estimates the fraction of table t's rows passing the
// query's predicates on t, assuming attribute independence.
func (h *Histogram) selectivity(t int, q *query.Query) float64 {
	lo, hi := h.ds.Meta.Attrs(t)
	rows := float64(h.ds.Tables[t].Rows)
	sel := 1.0
	for a := lo; a < hi; a++ {
		b := q.Bounds[a]
		if b[0] <= 0 && b[1] >= 1 {
			continue
		}
		counts := h.hist[t][a-lo]
		var pass float64
		for bin, c := range counts {
			binLo := float64(bin) / float64(h.bins)
			binHi := float64(bin+1) / float64(h.bins)
			overlap := overlapFrac(binLo, binHi, b[0], b[1])
			pass += c * overlap
		}
		sel *= pass / rows
	}
	return sel
}

// overlapFrac returns the fraction of [binLo, binHi) covered by [lo, hi].
func overlapFrac(binLo, binHi, lo, hi float64) float64 {
	l := binLo
	if lo > l {
		l = lo
	}
	r := binHi
	if hi < r {
		r = hi
	}
	if r <= l {
		return 0
	}
	return (r - l) / (binHi - binLo)
}

// Estimate returns the histogram-based cardinality estimate of q.
// Multi-table estimates start from the "deepest" table's filtered row
// count and multiply the parent sides' selectivities and the child sides'
// fanouts along the join tree — exact for uniform fanout, an estimate
// otherwise.
func (h *Histogram) Estimate(q *query.Query) float64 {
	var selected []int
	for t, in := range q.Tables {
		if in {
			selected = append(selected, t)
		}
	}
	if len(selected) == 0 {
		return 0
	}
	// Root the traversal at the first selected table; every joined
	// child edge multiplies by (fanout × child selectivity), every
	// joined parent edge by the parent's selectivity.
	est := float64(h.ds.Tables[selected[0]].Rows) * h.selectivity(selected[0], q)
	visited := map[int]bool{selected[0]: true}
	frontier := []int{selected[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for ei, e := range h.ds.Edges {
			var other int
			var isChild bool
			switch {
			case e.Parent == cur:
				other, isChild = e.Child, true
			case e.Child == cur:
				other, isChild = e.Parent, false
			default:
				continue
			}
			if visited[other] || !q.Tables[other] {
				continue
			}
			visited[other] = true
			frontier = append(frontier, other)
			if isChild {
				est *= h.fanout[ei] * h.selectivity(other, q)
			} else {
				est *= h.selectivity(other, q)
			}
		}
	}
	return est
}

// Sampler estimates cardinalities by evaluating queries on uniform row
// samples, following FK references exactly within the sampled rows (a
// join-synopsis-style sampler).
type Sampler struct {
	ds *dataset.Dataset
	// rows[t] holds the sampled row indexes of table t, sorted.
	rows [][]int
	// scale[t] = |T| / |sample of T|.
	scale []float64
}

// NewSampler draws a uniform sample of frac of every table's rows
// (at least 10 rows per table, at most the full table).
func NewSampler(ds *dataset.Dataset, frac float64, rng *rand.Rand) *Sampler {
	s := &Sampler{ds: ds}
	s.rows = make([][]int, len(ds.Tables))
	s.scale = make([]float64, len(ds.Tables))
	for ti, t := range ds.Tables {
		n := int(float64(t.Rows) * frac)
		if n < 10 {
			n = 10
		}
		if n > t.Rows {
			n = t.Rows
		}
		perm := rng.Perm(t.Rows)[:n]
		sort.Ints(perm)
		s.rows[ti] = perm
		s.scale[ti] = float64(t.Rows) / float64(n)
	}
	return s
}

// passes reports whether row r of table t satisfies the query's
// predicates on t.
func (s *Sampler) passes(t, r int, q *query.Query) bool {
	lo, hi := s.ds.Meta.Attrs(t)
	tab := s.ds.Tables[t]
	for a := lo; a < hi; a++ {
		b := q.Bounds[a]
		if b[0] <= 0 && b[1] >= 1 {
			continue
		}
		v := tab.Cols[a-lo][r]
		if v < b[0] || v > b[1] {
			return false
		}
	}
	return true
}

// Estimate returns the sampling-based cardinality estimate: the number of
// sampled root rows whose full join combination passes, scaled up by the
// root's sampling rate. Joins follow the FK references of the sampled
// rows exactly (parents are always resolvable; child sides are estimated
// through per-parent expected counts over the child sample).
func (s *Sampler) Estimate(q *query.Query) float64 {
	var selected []int
	for t, in := range q.Tables {
		if in {
			selected = append(selected, t)
		}
	}
	if len(selected) == 0 {
		return 0
	}
	root := selected[0]
	var total float64
	for _, r := range s.rows[root] {
		total += s.joinWeight(root, -1, r, q)
	}
	return total * s.scale[root]
}

// joinWeight returns the expected number of join combinations rooted at
// row r of table t over the selected subtree (entered via edge fromEdge).
func (s *Sampler) joinWeight(t, fromEdge, r int, q *query.Query) float64 {
	if !s.passes(t, r, q) {
		return 0
	}
	w := 1.0
	for ei, e := range s.ds.Edges {
		if ei == fromEdge {
			continue
		}
		switch {
		case e.Child == t && q.Tables[e.Parent]:
			// Parent side: exactly resolvable through the reference.
			w *= s.joinWeight(e.Parent, ei, e.Refs[r], q)
		case e.Parent == t && q.Tables[e.Child]:
			// Child side: expected matching children estimated from
			// the child sample, scaled up.
			var sum float64
			for _, cr := range s.rows[e.Child] {
				if e.Refs[cr] == r {
					sum += s.joinWeight(e.Child, ei, cr, q)
				}
			}
			w *= sum * s.scale[e.Child]
		}
	}
	return w
}
