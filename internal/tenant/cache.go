package tenant

import (
	"container/list"
	"sync"
)

// estCache is the per-tenant LRU estimate cache — the analogue of a DBMS
// plan cache. Keys are query.Key strings (join bits + IEEE-754 bound
// patterns), so a hit returns the bit-identical estimate the model would
// recompute.
//
// Correctness under retraining: every Execute flushes the cache and
// bumps a generation counter. An estimate that was being computed while
// a retrain landed carries the generation it started under, and put
// drops it if the generation moved — a pre-retrain answer can never be
// cached as a post-retrain one.
type estCache struct {
	mu     sync.Mutex
	cap    int
	gen    uint64
	lru    *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   int64
	misses int64
}

type cacheEnt struct {
	key string
	est float64
}

func newEstCache(capacity int) *estCache {
	return &estCache{
		cap:   capacity,
		lru:   list.New(),
		byKey: make(map[string]*list.Element, capacity),
	}
}

// generation snapshots the flush counter; pass it to put.
func (c *estCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

func (c *estCache) get(key string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return 0, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEnt).est, true
}

// put inserts the estimate computed under generation gen; it is dropped
// when a flush happened in between (the model has retrained since).
func (c *estCache) put(gen uint64, key string, est float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEnt).est = est
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&cacheEnt{key: key, est: est})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEnt).key)
	}
}

// flush empties the cache and advances the generation, invalidating any
// in-flight put.
func (c *estCache) flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.lru.Init()
	c.byKey = make(map[string]*list.Element, c.cap)
}

func (c *estCache) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
