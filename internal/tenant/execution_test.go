package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pace/internal/query"
)

// oneQuery and cards build the minimal chunk payloads the execution
// tests replay.
func oneQuery(lo float64) []*query.Query { return []*query.Query{testQuery(lo)} }

func cards(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 10
	}
	return out
}

// waitStatus polls until the execution settles (pending drains to 0) or
// the deadline passes.
func waitStatus(t *testing.T, tn *Tenant, token string) ExecutionStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := tn.ExecutionStatus(token)
		if err != nil {
			t.Fatalf("status %s: %v", token, err)
		}
		if st.Pending == 0 || time.Now().After(deadline) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

func TestExecutionOpenIsIdempotent(t *testing.T) {
	ct := &countTarget{}
	tn := newTestTenant(t, Spec{}, ct)

	st, err := tn.OpenExecution("tok-1")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if st.Applied != 0 || st.Pending != 0 {
		t.Fatalf("fresh open status %+v, want zeros", st)
	}
	if _, err := tn.SubmitChunk(context.Background(), "tok-1", 0, oneQuery(0.1), cards(1)); err != nil {
		t.Fatalf("chunk: %v", err)
	}
	waitStatus(t, tn, "tok-1")

	// Re-opening the same token must return its progress, not reset it —
	// the whole-stream-retry contract.
	st, err = tn.OpenExecution("tok-1")
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if st.Applied != 1 {
		t.Fatalf("re-open lost progress: %+v", st)
	}
}

func TestSubmitChunkDedupesAndCountsOnce(t *testing.T) {
	ct := &countTarget{}
	tn := newTestTenant(t, Spec{}, ct)
	if _, err := tn.OpenExecution("tok"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // same seq three times
		if _, err := tn.SubmitChunk(context.Background(), "tok", 7, oneQuery(0.2), cards(1)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	st := waitStatus(t, tn, "tok")
	if st.Applied != 1 || st.Err != nil {
		t.Fatalf("status %+v, want exactly one applied chunk", st)
	}
	if n := ct.executes.Load(); n != 1 {
		t.Fatalf("model retrained %d times for one deduped chunk", n)
	}
}

func TestSubmitChunkUnknownToken(t *testing.T) {
	tn := newTestTenant(t, Spec{}, &countTarget{})
	if _, err := tn.SubmitChunk(context.Background(), "never-opened", 0, oneQuery(0.1), cards(1)); !errors.Is(err, ErrUnknownExecution) {
		t.Fatalf("error %v, want ErrUnknownExecution", err)
	}
	if _, err := tn.ExecutionStatus("never-opened"); !errors.Is(err, ErrUnknownExecution) {
		t.Fatalf("status error %v, want ErrUnknownExecution", err)
	}
}

func TestExecutionRegistryEvictsFinishedLRU(t *testing.T) {
	tn := newTestTenant(t, Spec{}, &countTarget{})
	for i := 0; i < maxExecutions; i++ {
		if _, err := tn.OpenExecution(fmt.Sprintf("tok-%d", i)); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	// Touch tok-0 so tok-1 becomes the LRU victim.
	if _, err := tn.ExecutionStatus("tok-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OpenExecution("tok-overflow"); err != nil {
		t.Fatalf("open past cap: %v", err)
	}
	if _, err := tn.ExecutionStatus("tok-1"); !errors.Is(err, ErrUnknownExecution) {
		t.Fatalf("LRU victim still present (err %v)", err)
	}
	if _, err := tn.ExecutionStatus("tok-0"); err != nil {
		t.Fatalf("recently touched execution evicted: %v", err)
	}
}

// blockTarget parks every ExecuteWorkload on release, so the execute
// queue can be filled deterministically.
type blockTarget struct {
	countTarget
	release chan struct{}
}

func (b *blockTarget) ExecuteWorkload(ctx context.Context, qs []*query.Query, cards []float64) error {
	<-b.release
	return b.countTarget.ExecuteWorkload(ctx, qs, cards)
}

func TestSubmitChunkShedUnmarksSeq(t *testing.T) {
	bt := &blockTarget{release: make(chan struct{})}
	var once sync.Once
	unblock := func() { once.Do(func() { close(bt.release) }) }
	tn := NewTenant(Spec{ID: "t"}, bt, testMeta(), Config{
		BatchWindow:    time.Microsecond,
		ExecQueueDepth: 1,
	})
	t.Cleanup(func() {
		unblock()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tn.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	})
	if _, err := tn.OpenExecution("tok"); err != nil {
		t.Fatal(err)
	}

	// Fill the model goroutine + the depth-1 queue, then overflow.
	var acked []int64
	shed := int64(-1)
	for seq := int64(0); seq < 8; seq++ {
		_, err := tn.SubmitChunk(context.Background(), "tok", seq, oneQuery(0.3), cards(1))
		switch {
		case err == nil:
			acked = append(acked, seq)
		case errors.Is(err, ErrQueueFull):
			shed = seq
		default:
			t.Fatalf("seq %d: %v", seq, err)
		}
		if shed >= 0 {
			break
		}
	}
	if shed < 0 {
		t.Fatal("queue never shed; cannot exercise the unmark path")
	}

	// Unblock (a closed channel releases every later execute too), then
	// resubmit the shed seq: it must be acked and applied — the shed must
	// NOT have left a poisoned dedupe mark behind.
	unblock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := tn.SubmitChunk(context.Background(), "tok", shed, oneQuery(0.3), cards(1)); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) {
			t.Fatalf("resubmit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("resubmit kept shedding after the queue drained")
		}
		time.Sleep(time.Millisecond)
	}
	st := waitStatus(t, tn, "tok")
	want := int64(len(acked) + 1)
	if st.Applied != want || st.Err != nil {
		t.Fatalf("status %+v, want %d applied", st, want)
	}
	if n := bt.executes.Load(); n != want {
		t.Fatalf("model retrained %d times, want %d", n, want)
	}
}

// failTarget fails every execute.
type failTarget struct{ countTarget }

func (f *failTarget) ExecuteWorkload(context.Context, []*query.Query, []float64) error {
	return errors.New("model exploded")
}

func TestExecutionFailureIsSticky(t *testing.T) {
	tn := newTestTenant(t, Spec{}, &failTarget{})
	if _, err := tn.OpenExecution("tok"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.SubmitChunk(context.Background(), "tok", 0, oneQuery(0.4), cards(1)); err != nil {
		t.Fatal(err)
	}
	st := waitStatus(t, tn, "tok")
	if st.Err == nil {
		t.Fatal("chunk failure not recorded on the execution")
	}
	// The failure must survive a re-open (the client treats failed as
	// permanent; a reset would make it retry forever).
	st, err := tn.OpenExecution("tok")
	if err != nil {
		t.Fatal(err)
	}
	if st.Err == nil {
		t.Fatal("re-open cleared the failure")
	}
}

func TestDeleteExecutionForgets(t *testing.T) {
	tn := newTestTenant(t, Spec{}, &countTarget{})
	if _, err := tn.OpenExecution("tok"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.DeleteExecution("tok"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := tn.DeleteExecution("tok"); !errors.Is(err, ErrUnknownExecution) {
		t.Fatalf("double delete error %v, want ErrUnknownExecution", err)
	}
	if _, err := tn.ExecutionStatus("tok"); !errors.Is(err, ErrUnknownExecution) {
		t.Fatalf("status after delete %v, want ErrUnknownExecution", err)
	}
}

func TestExecutionRefusedWhileDraining(t *testing.T) {
	tn := newTestTenant(t, Spec{}, &countTarget{})
	if _, err := tn.OpenExecution("tok"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tn.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.OpenExecution("tok2"); !errors.Is(err, ErrDraining) {
		t.Fatalf("open while draining: %v, want ErrDraining", err)
	}
	if _, err := tn.SubmitChunk(context.Background(), "tok", 0, oneQuery(0.1), cards(1)); !errors.Is(err, ErrDraining) {
		t.Fatalf("chunk while draining: %v, want ErrDraining", err)
	}
}
