package tenant

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
)

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a"},
		AttrNames:  []string{"a0"},
		AttrOffset: []int{0},
	}
}

func testQuery(lo float64) *query.Query {
	return &query.Query{
		Tables: []bool{true},
		Bounds: [][2]float64{{lo, 1}},
	}
}

// countTarget answers lo*3 and counts model evaluations; executes bump a
// shift added to later answers, so retraining observably changes output.
type countTarget struct {
	estimates atomic.Int64
	executes  atomic.Int64
	shift     atomic.Int64 // incremented per execute; added to estimates
}

func (c *countTarget) EstimateContext(_ context.Context, q *query.Query) (float64, error) {
	c.estimates.Add(1)
	return q.Bounds[0][0]*3 + float64(c.shift.Load()), nil
}

func (c *countTarget) ExecuteWorkload(_ context.Context, _ []*query.Query, _ []float64) error {
	c.executes.Add(1)
	c.shift.Add(1)
	return nil
}

func newTestTenant(t *testing.T, spec Spec, target ce.Target) *Tenant {
	t.Helper()
	if spec.ID == "" {
		spec.ID = "t"
	}
	tn := NewTenant(spec, target, testMeta(), Config{BatchWindow: time.Microsecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tn.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return tn
}

func TestEstimateCacheHitsAreBitExactAndFlushOnExecute(t *testing.T) {
	ct := &countTarget{}
	tn := newTestTenant(t, Spec{CacheSize: 8}, ct)
	ctx := context.Background()
	qs := []*query.Query{testQuery(0.25)}

	first, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(first[0]) != math.Float64bits(second[0]) {
		t.Fatalf("cache hit not bit-exact: %v vs %v", first[0], second[0])
	}
	if got := ct.estimates.Load(); got != 1 {
		t.Fatalf("model evaluated %d times, want 1 (second call should hit the cache)", got)
	}
	if hits, misses, size := tn.CacheStats(); hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("cache stats hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}

	// A retrain changes the model's answers; the flush must expose that.
	if err := tn.Execute(ctx, qs, []float64{42}); err != nil {
		t.Fatal(err)
	}
	third, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if ct.estimates.Load() != 2 {
		t.Fatalf("estimate after execute did not reach the model (cache not flushed)")
	}
	if third[0] == first[0] {
		t.Fatalf("post-retrain estimate %v equals stale pre-retrain one", third[0])
	}
}

func TestCacheGenerationGuardDropsStalePut(t *testing.T) {
	c := newEstCache(4)
	gen := c.generation()
	c.flush() // a retrain lands while an estimate is in flight
	c.put(gen, "k", 7)
	if _, ok := c.get("k"); ok {
		t.Fatal("pre-retrain estimate was cached past a flush")
	}
	c.put(c.generation(), "k", 8)
	if est, ok := c.get("k"); !ok || est != 8 {
		t.Fatalf("current-generation put not cached: %v %v", est, ok)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newEstCache(2)
	g := c.generation()
	c.put(g, "a", 1)
	c.put(g, "b", 2)
	c.get("a") // a is now most recent
	c.put(g, "c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

func TestDrainRefusesNewWorkAndIsIdempotent(t *testing.T) {
	tn := NewTenant(Spec{ID: "d"}, &countTarget{}, testMeta(), Config{})
	ctx := context.Background()
	if err := tn.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tn.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !tn.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := tn.Estimate(ctx, []*query.Query{testQuery(0.5)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("estimate after drain: %v, want ErrDraining", err)
	}
}

func TestAdmitTokenBucket(t *testing.T) {
	tn := NewTenant(Spec{ID: "r"}, &countTarget{},
		testMeta(), Config{RatePerSec: 0.0001, Burst: 2})
	defer tn.Drain(context.Background()) //nolint:errcheck // test cleanup
	for i := 0; i < 2; i++ {
		if !tn.Admit("alice") {
			t.Fatalf("alice call %d rejected within burst", i)
		}
	}
	if tn.Admit("alice") {
		t.Fatal("alice admitted past her burst")
	}
	if !tn.Admit("bob") {
		t.Fatal("bob rejected on his first call (buckets not per-client)")
	}
}

func stubFactory(delay time.Duration) Factory {
	return func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		return &countTarget{}, testMeta(), nil
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(stubFactory(0), Config{})
	ctx := context.Background()

	if _, err := r.Create(ctx, Spec{ID: "bad id!"}); err == nil {
		t.Fatal("invalid id accepted")
	}
	if _, err := r.Create(ctx, Spec{ID: "a", Dataset: "dmv", Model: "fcn"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(ctx, Spec{ID: "a"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost lookup: %v, want ErrNotFound", err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Spec.ID != "a" || infos[0].State != StateReady {
		t.Fatalf("list = %+v", infos)
	}
	if err := r.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete: %v, want ErrNotFound", err)
	}
	if err := r.Delete(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

// TestRegistryCreateDeleteRace exercises the registry's locking under
// concurrent create/get/delete/list of overlapping ids; run with -race.
func TestRegistryCreateDeleteRace(t *testing.T) {
	r := NewRegistry(stubFactory(time.Millisecond), Config{})
	ctx := context.Background()
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", i%3) // deliberate id collisions
			for n := 0; n < 20; n++ {
				tn, err := r.Create(ctx, Spec{ID: id})
				if err == nil {
					// Use the tenant before tearing it down.
					tn.Estimate(ctx, []*query.Query{testQuery(0.5)}) //nolint:errcheck
				}
				r.Get(id) //nolint:errcheck
				r.List()
				r.Delete(ctx, id) //nolint:errcheck
			}
		}(i)
	}
	wg.Wait()
	// Whatever survived the races must still drain cleanly.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := r.DrainAll(dctx); err != nil {
		t.Fatalf("drain after race: %v", err)
	}
}

// TestRegistryCreateIsVisibleWhileProvisioning: a slow create lists as
// "creating", fails duplicate creates fast, and Get answers ErrNotReady.
func TestRegistryCreateIsVisibleWhileProvisioning(t *testing.T) {
	release := make(chan struct{})
	factory := func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		<-release
		return &countTarget{}, testMeta(), nil
	}
	r := NewRegistry(factory, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := r.Create(context.Background(), Spec{ID: "slow"})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for r.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Get("slow"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("get during provisioning: %v, want ErrNotReady", err)
	}
	if _, err := r.Create(context.Background(), Spec{ID: "slow"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create during provisioning: %v, want ErrExists", err)
	}
	if infos := r.List(); len(infos) != 1 || infos[0].State != StateCreating {
		t.Fatalf("list during provisioning = %+v", infos)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("slow"); err != nil {
		t.Fatalf("get after provisioning: %v", err)
	}
	r.DrainAll(context.Background()) //nolint:errcheck // test cleanup
}
