package tenant

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
)

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a"},
		AttrNames:  []string{"a0"},
		AttrOffset: []int{0},
	}
}

func testQuery(lo float64) *query.Query {
	return &query.Query{
		Tables: []bool{true},
		Bounds: [][2]float64{{lo, 1}},
	}
}

// countTarget answers lo*3 and counts model evaluations; executes bump a
// shift added to later answers, so retraining observably changes output.
type countTarget struct {
	estimates atomic.Int64
	executes  atomic.Int64
	shift     atomic.Int64 // incremented per execute; added to estimates
}

func (c *countTarget) EstimateContext(_ context.Context, q *query.Query) (float64, error) {
	c.estimates.Add(1)
	return q.Bounds[0][0]*3 + float64(c.shift.Load()), nil
}

func (c *countTarget) ExecuteWorkload(_ context.Context, _ []*query.Query, _ []float64) error {
	c.executes.Add(1)
	c.shift.Add(1)
	return nil
}

func newTestTenant(t *testing.T, spec Spec, target ce.Target) *Tenant {
	t.Helper()
	if spec.ID == "" {
		spec.ID = "t"
	}
	tn := NewTenant(spec, target, testMeta(), Config{BatchWindow: time.Microsecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tn.Drain(ctx) //nolint:errcheck // best-effort test cleanup
	})
	return tn
}

func TestEstimateCacheHitsAreBitExactAndFlushOnExecute(t *testing.T) {
	ct := &countTarget{}
	tn := newTestTenant(t, Spec{CacheSize: 8}, ct)
	ctx := context.Background()
	qs := []*query.Query{testQuery(0.25)}

	first, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(first[0]) != math.Float64bits(second[0]) {
		t.Fatalf("cache hit not bit-exact: %v vs %v", first[0], second[0])
	}
	if got := ct.estimates.Load(); got != 1 {
		t.Fatalf("model evaluated %d times, want 1 (second call should hit the cache)", got)
	}
	if hits, misses, size := tn.CacheStats(); hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("cache stats hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}

	// A retrain changes the model's answers; the flush must expose that.
	if err := tn.Execute(ctx, qs, []float64{42}); err != nil {
		t.Fatal(err)
	}
	third, err := tn.Estimate(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	if ct.estimates.Load() != 2 {
		t.Fatalf("estimate after execute did not reach the model (cache not flushed)")
	}
	if third[0] == first[0] {
		t.Fatalf("post-retrain estimate %v equals stale pre-retrain one", third[0])
	}
}

func TestCacheGenerationGuardDropsStalePut(t *testing.T) {
	c := newEstCache(4)
	gen := c.generation()
	c.flush() // a retrain lands while an estimate is in flight
	c.put(gen, "k", 7)
	if _, ok := c.get("k"); ok {
		t.Fatal("pre-retrain estimate was cached past a flush")
	}
	c.put(c.generation(), "k", 8)
	if est, ok := c.get("k"); !ok || est != 8 {
		t.Fatalf("current-generation put not cached: %v %v", est, ok)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newEstCache(2)
	g := c.generation()
	c.put(g, "a", 1)
	c.put(g, "b", 2)
	c.get("a") // a is now most recent
	c.put(g, "c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
}

func TestDrainRefusesNewWorkAndIsIdempotent(t *testing.T) {
	tn := NewTenant(Spec{ID: "d"}, &countTarget{}, testMeta(), Config{})
	ctx := context.Background()
	if err := tn.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tn.Drain(ctx); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	if !tn.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if _, err := tn.Estimate(ctx, []*query.Query{testQuery(0.5)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("estimate after drain: %v, want ErrDraining", err)
	}
}

func TestAdmitTokenBucket(t *testing.T) {
	tn := NewTenant(Spec{ID: "r"}, &countTarget{},
		testMeta(), Config{RatePerSec: 0.0001, Burst: 2})
	defer tn.Drain(context.Background()) //nolint:errcheck // test cleanup
	for i := 0; i < 2; i++ {
		if !tn.Admit("alice") {
			t.Fatalf("alice call %d rejected within burst", i)
		}
	}
	if tn.Admit("alice") {
		t.Fatal("alice admitted past her burst")
	}
	if !tn.Admit("bob") {
		t.Fatal("bob rejected on his first call (buckets not per-client)")
	}
}

func stubFactory(delay time.Duration) Factory {
	return func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		return &countTarget{}, testMeta(), nil
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry(stubFactory(0), Config{})
	ctx := context.Background()

	if _, err := r.Create(ctx, Spec{ID: "bad id!"}); err == nil {
		t.Fatal("invalid id accepted")
	}
	if _, err := r.Create(ctx, Spec{ID: "a", Dataset: "dmv", Model: "fcn"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(ctx, Spec{ID: "a"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := r.Get("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost lookup: %v, want ErrNotFound", err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Spec.ID != "a" || infos[0].State != StateReady {
		t.Fatalf("list = %+v", infos)
	}
	if err := r.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup after delete: %v, want ErrNotFound", err)
	}
	if err := r.Delete(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

// TestRegistryCreateDeleteRace exercises the registry's locking under
// concurrent create/get/delete/list of overlapping ids; run with -race.
func TestRegistryCreateDeleteRace(t *testing.T) {
	r := NewRegistry(stubFactory(time.Millisecond), Config{})
	ctx := context.Background()
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("t%d", i%3) // deliberate id collisions
			for n := 0; n < 20; n++ {
				tn, err := r.Create(ctx, Spec{ID: id})
				if err == nil {
					// Use the tenant before tearing it down.
					tn.Estimate(ctx, []*query.Query{testQuery(0.5)}) //nolint:errcheck
				}
				r.Get(id) //nolint:errcheck
				r.List()
				r.Delete(ctx, id) //nolint:errcheck
			}
		}(i)
	}
	wg.Wait()
	// Whatever survived the races must still drain cleanly.
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := r.DrainAll(dctx); err != nil {
		t.Fatalf("drain after race: %v", err)
	}
}

// TestRegistryCreatePanicReleasesSlot: a panicking Factory must not
// wedge the id in "creating" — the slot is released, the panic surfaces
// as ErrCreatePanic, and the id is creatable again.
func TestRegistryCreatePanicReleasesSlot(t *testing.T) {
	boom := true
	factory := func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		if boom {
			panic("world build exploded")
		}
		return &countTarget{}, testMeta(), nil
	}
	r := NewRegistry(factory, Config{})
	ctx := context.Background()

	_, err := r.Create(ctx, Spec{ID: "p"})
	if !errors.Is(err, ErrCreatePanic) {
		t.Fatalf("create with panicking factory: %v, want ErrCreatePanic", err)
	}
	if _, err := r.Get("p"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("slot survived the panic: %v, want ErrNotFound", err)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after panicked create, want 0", r.Len())
	}

	boom = false
	if _, err := r.Create(ctx, Spec{ID: "p"}); err != nil {
		t.Fatalf("re-create after panic: %v", err)
	}
	r.DrainAll(ctx) //nolint:errcheck // test cleanup
}

// TestRegistryQuotas pins the admission rules: a host-wide tenant cap
// and a per-owner cap, with evicted tenants still counting toward both.
func TestRegistryQuotas(t *testing.T) {
	r := NewRegistry(stubFactory(0), Config{MaxTenants: 2, MaxPerOwner: 1})
	ctx := context.Background()

	if _, err := r.Create(ctx, Spec{ID: "a", Owner: "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(ctx, Spec{ID: "a2", Owner: "alice"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("owner over quota: %v, want ErrQuota", err)
	}
	if _, err := r.Create(ctx, Spec{ID: "b", Owner: "bob"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(ctx, Spec{ID: "c", Owner: "carol"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("host over cap: %v, want ErrQuota", err)
	}

	// Eviction spills live state but keeps the id and owner slot: the
	// caps must still hold.
	if got := r.EvictIdle(ctx, 0); len(got) != 2 {
		t.Fatalf("EvictIdle = %v, want both tenants", got)
	}
	if _, err := r.Create(ctx, Spec{ID: "c", Owner: "carol"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("host cap ignored evicted tenants: %v, want ErrQuota", err)
	}
	if _, err := r.Create(ctx, Spec{ID: "a2", Owner: "alice"}); !errors.Is(err, ErrQuota) {
		t.Fatalf("owner cap ignored evicted tenants: %v, want ErrQuota", err)
	}

	// Deleting an evicted tenant frees its slot for a new create.
	if err := r.Delete(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create(ctx, Spec{ID: "a2", Owner: "alice"}); err != nil {
		t.Fatalf("create after freeing quota: %v", err)
	}
	r.DrainAll(ctx) //nolint:errcheck // test cleanup
}

// TestRegistryEvictAndRevive: an idle tenant's live state spills to a
// spec, lookups answer ErrEvicted, and Revive rebuilds a working tenant.
func TestRegistryEvictAndRevive(t *testing.T) {
	r := NewRegistry(stubFactory(0), Config{})
	ctx := context.Background()
	if _, err := r.Create(ctx, Spec{ID: "idle", Dataset: "dmv", Model: "fcn"}); err != nil {
		t.Fatal(err)
	}
	// An active tenant must not be evicted.
	if got := r.EvictIdle(ctx, time.Hour); len(got) != 0 {
		t.Fatalf("EvictIdle(1h) evicted fresh tenant: %v", got)
	}
	got := r.EvictIdle(ctx, 0)
	if len(got) != 1 || got[0] != "idle" {
		t.Fatalf("EvictIdle = %v, want [idle]", got)
	}
	if _, err := r.Get("idle"); !errors.Is(err, ErrEvicted) {
		t.Fatalf("get of evicted tenant: %v, want ErrEvicted", err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].State != StateEvicted {
		t.Fatalf("list after evict = %+v", infos)
	}
	if _, err := r.Create(ctx, Spec{ID: "idle"}); !errors.Is(err, ErrExists) {
		t.Fatalf("create over evicted id: %v, want ErrExists", err)
	}

	tn, err := r.Revive(ctx, "idle")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Spec().Dataset != "dmv" || tn.Spec().Model != "fcn" {
		t.Fatalf("revived spec = %+v, want the spilled one", tn.Spec())
	}
	if _, err := tn.Estimate(ctx, []*query.Query{testQuery(0.5)}); err != nil {
		t.Fatalf("estimate on revived tenant: %v", err)
	}
	// Reviving an already-live tenant hands back the live one.
	again, err := r.Revive(ctx, "idle")
	if err != nil || again != tn {
		t.Fatalf("second revive = %v, %v, want the live tenant", again, err)
	}
	if _, err := r.Revive(ctx, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("revive of unknown id: %v, want ErrNotFound", err)
	}
	r.DrainAll(ctx) //nolint:errcheck // test cleanup
}

// TestRegistryReviveFailureRespills: a failed revival puts the spec back
// so a later request can retry.
func TestRegistryReviveFailureRespills(t *testing.T) {
	fail := false
	factory := func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		if fail {
			return nil, nil, errors.New("transient build failure")
		}
		return &countTarget{}, testMeta(), nil
	}
	r := NewRegistry(factory, Config{})
	ctx := context.Background()
	if _, err := r.Create(ctx, Spec{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := r.EvictIdle(ctx, 0); len(got) != 1 {
		t.Fatalf("EvictIdle = %v", got)
	}
	fail = true
	if _, err := r.Revive(ctx, "x"); err == nil {
		t.Fatal("revive succeeded with failing factory")
	}
	if _, err := r.Get("x"); !errors.Is(err, ErrEvicted) {
		t.Fatalf("spec not re-spilled after failed revive: %v, want ErrEvicted", err)
	}
	fail = false
	if _, err := r.Revive(ctx, "x"); err != nil {
		t.Fatalf("retry revive: %v", err)
	}
	r.DrainAll(ctx) //nolint:errcheck // test cleanup
}

// TestRegistryDrainDuringCreateRace: a create whose factory completes
// after DrainAll began must NOT register a live tenant — its model
// goroutine would outlive the shutdown. Run with -race.
func TestRegistryDrainDuringCreateRace(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	factory := func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		once.Do(func() { close(started) })
		<-release
		return &countTarget{}, testMeta(), nil
	}
	r := NewRegistry(factory, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := r.Create(context.Background(), Spec{ID: "late"})
		done <- err
	}()
	<-started

	drained := make(chan error, 1)
	go func() { drained <- r.DrainAll(context.Background()) }()
	// DrainAll must not block on the in-flight create (its slot has no
	// tenant yet).
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("DrainAll: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("DrainAll blocked on an in-flight create")
	}

	close(release)
	if err := <-done; !errors.Is(err, ErrDraining) {
		t.Fatalf("create completing after drain: %v, want ErrDraining", err)
	}
	// The discarded create must leave nothing behind.
	if _, err := r.Get("late"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("late create left a slot: %v, want ErrNotFound", err)
	}
	if _, err := r.Create(context.Background(), Spec{ID: "post"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: %v, want ErrDraining", err)
	}
}

// TestRegistryDeleteDuringEstimateRace: deletes racing in-flight
// estimates must either serve or fail cleanly (ErrDraining/NotFound) and
// the drain must wait for queued work. Run with -race.
func TestRegistryDeleteDuringEstimateRace(t *testing.T) {
	r := NewRegistry(stubFactory(0), Config{BatchWindow: time.Microsecond})
	ctx := context.Background()
	const rounds = 10
	for n := 0; n < rounds; n++ {
		tn, err := r.Create(ctx, Spec{ID: "victim"})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 10; k++ {
					_, err := tn.Estimate(ctx, []*query.Query{testQuery(0.5)})
					switch {
					case err == nil,
						errors.Is(err, ErrDraining),
						errors.Is(err, ErrQueueFull):
					default:
						t.Errorf("estimate during delete: %v", err)
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Delete(ctx, "victim"); err != nil && !errors.Is(err, ErrNotFound) {
				t.Errorf("delete: %v", err)
			}
		}()
		wg.Wait()
	}
}

// TestRegistryCreateIsVisibleWhileProvisioning: a slow create lists as
// "creating", fails duplicate creates fast, and Get answers ErrNotReady.
func TestRegistryCreateIsVisibleWhileProvisioning(t *testing.T) {
	release := make(chan struct{})
	factory := func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error) {
		<-release
		return &countTarget{}, testMeta(), nil
	}
	r := NewRegistry(factory, Config{})
	done := make(chan error, 1)
	go func() {
		_, err := r.Create(context.Background(), Spec{ID: "slow"})
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for r.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Get("slow"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("get during provisioning: %v, want ErrNotReady", err)
	}
	if _, err := r.Create(context.Background(), Spec{ID: "slow"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create during provisioning: %v, want ErrExists", err)
	}
	if infos := r.List(); len(infos) != 1 || infos[0].State != StateCreating {
		t.Fatalf("list during provisioning = %+v", infos)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("slow"); err != nil {
		t.Fatalf("get after provisioning: %v", err)
	}
	r.DrainAll(context.Background()) //nolint:errcheck // test cleanup
}
