// Package tenant turns one paced process into a host for many estimator
// worlds. Each Tenant is a named (dataset, model, seed) cell of the
// experiment matrix — CardBench-style benchmarking and PACE's own
// evaluation both need many model/dataset worlds side by side — and owns
// everything that must not be shared across cells:
//
//   - the trained ce.Target and its query.Meta (schema);
//   - a single model goroutine: CE model Forward passes and incremental
//     updates are stateful, so every estimate and every retraining step
//     of one tenant is serialized through its own loop, while different
//     tenants proceed in parallel;
//   - bounded admission queues (estimate and execute) that shed when
//     full instead of queueing without limit;
//   - per-client token buckets, so one tenant's noisy client cannot
//     starve another client of the same tenant;
//   - an optional LRU estimate cache keyed on query.Key, modeling a
//     DBMS plan cache: repeated estimates answer without touching the
//     model goroutine, and every executed (retraining) batch flushes it
//     so a cached estimate is always bit-identical to a fresh one.
//
// The Registry is the concurrency-safe directory of live tenants; the
// HTTP layer (internal/targetserver) routes /v1/targets/{id}/... onto it
// and the admin surface creates and destroys tenants at runtime through
// a Factory without restarting the process.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
)

// Errors the service layer maps onto the wire protocol.
var (
	// ErrQueueFull marks a shed request: the tenant's bounded admission
	// queue was full (HTTP 429, code "overloaded").
	ErrQueueFull = errors.New("tenant: admission queue full")
	// ErrDraining marks a request refused because the tenant is shutting
	// down (HTTP 503, code "draining").
	ErrDraining = errors.New("tenant: draining")
	// ErrNotFound marks a lookup of an unknown tenant id (HTTP 404).
	ErrNotFound = errors.New("tenant: no such tenant")
	// ErrExists marks a create of an id that is already registered
	// (HTTP 409).
	ErrExists = errors.New("tenant: tenant already exists")
	// ErrNotReady marks a tenant still being provisioned — its world is
	// training (HTTP 503, code "not_ready"; retryable).
	ErrNotReady = errors.New("tenant: still provisioning")
	// ErrQuota marks a create refused by admission control — the host is
	// at its tenant cap, or the owner at its per-owner quota (HTTP 429,
	// code "quota_exceeded").
	ErrQuota = errors.New("tenant: quota exceeded")
	// ErrEvicted marks a lookup of a tenant whose live state was spilled
	// by idle eviction. Its spec survives; revival rebuilds it (HTTP 503,
	// code "evicted"; retryable).
	ErrEvicted = errors.New("tenant: evicted")
	// ErrCreatePanic marks a Factory that panicked mid-build. The slot is
	// released — the id can be created again (HTTP 500, code "internal").
	ErrCreatePanic = errors.New("tenant: factory panicked")
)

// Spec identifies the world a tenant hosts. It is what the admin API
// accepts: the Factory turns it into a trained target. A fixed
// (Dataset, Model, Seed, SeedOffset, Scale) spec always yields a victim
// with bit-identical weights, which is what lets a remote matrix cell
// reproduce its in-process twin exactly.
type Spec struct {
	// ID names the tenant in routes (/v1/targets/{id}/...) and metric
	// labels.
	ID string
	// Dataset and Model name the hosted world (parsed by the Factory).
	Dataset string
	Model   string
	// Seed fixes the world's randomness; SeedOffset decorrelates twin
	// victims of the same world (0 means 1, the cmd/pace convention).
	Seed       int64
	SeedOffset int64
	// Scale is the dataset scale factor (0 = profile default).
	Scale float64
	// CacheSize enables the per-tenant LRU estimate cache with this many
	// entries (0 = no cache).
	CacheSize int
	// Owner is the identity of the client that provisioned the tenant,
	// stamped by the server from the authenticated caller — it is never
	// accepted off the wire. Per-owner quotas (Config.MaxPerOwner) count
	// it; empty means unowned (boot-time tenants).
	Owner string
}

func (s Spec) withDefaults() Spec {
	if s.SeedOffset == 0 {
		s.SeedOffset = 1
	}
	return s
}

// Config tunes one tenant's serving machinery. The zero value serves
// with the same defaults the single-tenant server used.
type Config struct {
	// MaxBatch caps the model goroutine's micro-batch in queries
	// (default 64).
	MaxBatch int
	// BatchWindow is how long the model goroutine gathers more estimate
	// jobs after the first (default 200µs).
	BatchWindow time.Duration
	// QueueDepth bounds the estimate admission queue (default 128).
	QueueDepth int
	// ExecQueueDepth bounds the execute queue (default 8).
	ExecQueueDepth int
	// RatePerSec and Burst configure the per-client token bucket
	// (RatePerSec 0 disables; Burst 0 = one second of tokens).
	RatePerSec float64
	Burst      int
	// MaxTenants caps how many tenants (live, provisioning or evicted)
	// the registry admits; 0 = unlimited. Creates beyond the cap answer
	// ErrQuota.
	MaxTenants int
	// MaxPerOwner caps how many tenants one owner may hold; 0 =
	// unlimited. Only specs with a non-empty Owner are counted.
	MaxPerOwner int
	// Telemetry binds the tenant's instruments (tenant-labeled paced_*
	// families) to a registry; nil disables them.
	Telemetry *obs.Telemetry
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.ExecQueueDepth <= 0 {
		c.ExecQueueDepth = 8
	}
	if c.Burst <= 0 {
		c.Burst = int(c.RatePerSec)
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

type estJob struct {
	ctx   context.Context
	qs    []*query.Query
	wait  *obs.Span     // queue_wait: enqueue → picked up by the model loop
	reply chan estReply // buffered(1): the model loop never blocks on it
}

type estReply struct {
	ests []float64
	err  error
}

type execJob struct {
	ctx   context.Context
	qs    []*query.Query
	cards []float64
	reply chan error // buffered(1)
}

// Metrics are one tenant's instruments. Every field is nil-safe (no-op
// without telemetry); names carry a {tenant="id"} label so /metrics
// exposes each tenant's traffic independently.
type Metrics struct {
	EstReqs, EstQueries   *obs.Counter
	ExecReqs, ExecQueries *obs.Counter
	Shed, RateLimited     *obs.Counter
	Invalid, Errors       *obs.Counter
	Batches               *obs.Counter
	CacheHits, CacheMiss  *obs.Counter
	// Streamed-execute accounting: chunks enqueued onto the execute
	// queue, duplicate (token, seq) acks, chunks shed by a full queue,
	// and whole-stream completion latency (open → last chunk applied).
	ChunksEnq, ChunksDeduped, ChunksShed *obs.Counter
	QueueDepth, Ready                    *obs.Gauge
	Batch, LatencyUs                     *obs.Histogram
	StreamSeconds                        *obs.Histogram
}

// Tenant is one hosted estimator world. Create through a Registry (or
// NewTenant for direct embedding); always Drain it eventually — the
// model goroutine runs until then.
type Tenant struct {
	spec   Spec
	cfg    Config
	target ce.Target
	meta   *query.Meta

	estQ  chan *estJob
	execQ chan *execJob
	stop  chan struct{} // closed by Drain
	done  chan struct{} // closed when the model goroutine exits

	mu       sync.Mutex
	draining bool
	clients  map[string]*bucket

	// execsMu guards the streamed-execute registry (execution.go).
	execsMu sync.Mutex
	execs   map[string]*execution

	// lastActive is the unix-nano timestamp of the most recent Estimate
	// or Execute call; the idle-eviction janitor reads it through IdleFor.
	lastActive atomic.Int64

	cache *estCache

	m Metrics
}

// NewTenant builds a tenant around an already-trained target and starts
// its model goroutine.
func NewTenant(spec Spec, target ce.Target, meta *query.Meta, cfg Config) *Tenant {
	spec = spec.withDefaults()
	cfg = cfg.withDefaults()
	t := &Tenant{
		spec:    spec,
		cfg:     cfg,
		target:  target,
		meta:    meta,
		estQ:    make(chan *estJob, cfg.QueueDepth),
		execQ:   make(chan *execJob, cfg.ExecQueueDepth),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		clients: make(map[string]*bucket),
	}
	if spec.CacheSize > 0 {
		t.cache = newEstCache(spec.CacheSize)
	}
	t.lastActive.Store(time.Now().UnixNano())
	t.instrument(cfg.Telemetry.Registry())
	go t.modelLoop()
	return t
}

// labeled formats a tenant-labeled metric name; the obs registry emits
// `base{label}` names verbatim with the TYPE derived from the base.
func labeled(base, id string) string {
	return fmt.Sprintf("%s{tenant=%q}", base, id)
}

func (t *Tenant) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	id := t.spec.ID
	t.m = Metrics{
		EstReqs:     reg.Counter(labeled("paced_estimate_requests_total", id)),
		EstQueries:  reg.Counter(labeled("paced_estimate_queries_total", id)),
		ExecReqs:    reg.Counter(labeled("paced_execute_requests_total", id)),
		ExecQueries: reg.Counter(labeled("paced_execute_queries_total", id)),
		Shed:        reg.Counter(labeled("paced_shed_total", id)),
		RateLimited: reg.Counter(labeled("paced_rate_limited_total", id)),
		Invalid:     reg.Counter(labeled("paced_invalid_queries_total", id)),
		Errors:      reg.Counter(labeled("paced_errors_total", id)),
		Batches:     reg.Counter(labeled("paced_batches_total", id)),
		CacheHits:   reg.Counter(labeled("paced_est_cache_hits_total", id)),
		CacheMiss:   reg.Counter(labeled("paced_est_cache_misses_total", id)),
		QueueDepth:  reg.Gauge(labeled("paced_estimate_queue_depth", id)),
		Ready:       reg.Gauge(labeled("paced_tenant_ready", id)),
	}
	t.m.ChunksEnq = reg.Counter(labeled("paced_stream_chunks_enqueued_total", id))
	t.m.ChunksDeduped = reg.Counter(labeled("paced_stream_chunks_deduped_total", id))
	t.m.ChunksShed = reg.Counter(labeled("paced_stream_chunks_shed_total", id))
	t.m.Batch = reg.Histogram(labeled("paced_batch_queries", id))
	t.m.LatencyUs = reg.Histogram(labeled("paced_estimate_latency_us", id))
	t.m.StreamSeconds = reg.Histogram(labeled("paced_stream_completion_seconds", id))
	t.m.Ready.Set(1)
}

// Spec returns the tenant's identity.
func (t *Tenant) Spec() Spec { return t.spec }

// Meta returns the schema queries are decoded against.
func (t *Tenant) Meta() *query.Meta { return t.meta }

// Metrics returns the tenant's instruments (all nil-safe).
func (t *Tenant) Metrics() *Metrics { return &t.m }

// Draining reports whether the tenant has begun shutting down.
func (t *Tenant) Draining() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

// CacheStats reports the estimate cache's hit/miss/size counts (zero
// when the cache is disabled).
func (t *Tenant) CacheStats() (hits, misses int64, size int) {
	if t.cache == nil {
		return 0, 0, 0
	}
	return t.cache.stats()
}

// Estimate answers a batch of decoded queries. Cache hits answer
// immediately; misses ride the model goroutine's micro-batches. It
// returns ErrQueueFull when admission sheds, ErrDraining when the tenant
// stopped, ctx.Err() when the caller gave up, or the model's error.
func (t *Tenant) Estimate(ctx context.Context, qs []*query.Query) ([]float64, error) {
	t.lastActive.Store(time.Now().UnixNano())
	t.m.EstReqs.Inc()
	t.m.EstQueries.Add(int64(len(qs)))
	start := time.Now()

	ests := make([]float64, len(qs))
	missIdx := make([]int, 0, len(qs))
	var gen uint64
	if t.cache != nil {
		gen = t.cache.generation()
		for i, q := range qs {
			if est, ok := t.cache.get(q.Key()); ok {
				ests[i] = est
			} else {
				missIdx = append(missIdx, i)
			}
		}
		t.m.CacheHits.Add(int64(len(qs) - len(missIdx)))
		t.m.CacheMiss.Add(int64(len(missIdx)))
		if len(missIdx) == 0 {
			t.m.LatencyUs.Observe(float64(time.Since(start).Microseconds()))
			return ests, nil
		}
	} else {
		for i := range qs {
			missIdx = append(missIdx, i)
		}
	}

	missQs := make([]*query.Query, len(missIdx))
	for j, i := range missIdx {
		missQs[j] = qs[i]
	}
	// The queue_wait span measures enqueue → model-loop pickup. It is
	// started without replacing ctx so the later model_inference span is
	// its sibling (both under the server span), not its child.
	_, wspan := obs.StartSpan(ctx, "queue_wait")
	job := &estJob{ctx: ctx, qs: missQs, wait: wspan, reply: make(chan estReply, 1)}
	select {
	case t.estQ <- job:
		t.m.QueueDepth.Add(1)
	default:
		wspan.End()
		t.m.Shed.Inc()
		return nil, ErrQueueFull
	}

	select {
	case rep := <-job.reply:
		if rep.err != nil {
			return nil, rep.err
		}
		for j, i := range missIdx {
			ests[i] = rep.ests[j]
			if t.cache != nil {
				t.cache.put(gen, qs[i].Key(), rep.ests[j])
			}
		}
		t.m.LatencyUs.Observe(float64(time.Since(start).Microseconds()))
		return ests, nil
	case <-ctx.Done():
		// The model loop will notice via job.ctx and skip the work.
		return nil, ctx.Err()
	case <-t.done:
		return nil, ErrDraining
	}
}

// Execute applies an executed-workload (retraining) batch through the
// model goroutine. The estimate cache is flushed — the model's answers
// change — before the update is queued and again after it applies, so no
// stale estimate survives the retrain.
func (t *Tenant) Execute(ctx context.Context, qs []*query.Query, cards []float64) error {
	t.lastActive.Store(time.Now().UnixNano())
	t.m.ExecReqs.Inc()
	t.m.ExecQueries.Add(int64(len(qs)))
	if t.cache != nil {
		t.cache.flush()
	}
	job := &execJob{ctx: ctx, qs: qs, cards: cards, reply: make(chan error, 1)}
	select {
	case t.execQ <- job:
	default:
		t.m.Shed.Inc()
		return ErrQueueFull
	}
	select {
	case err := <-job.reply:
		return err
	case <-ctx.Done():
		return ctx.Err()
	case <-t.done:
		return ErrDraining
	}
}

// IdleFor reports how long the tenant has gone without an Estimate or
// Execute call — the idle-eviction criterion.
func (t *Tenant) IdleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - t.lastActive.Load())
}

// Admit applies the tenant's per-client token bucket; false means the
// caller should answer 429 rate_limited.
func (t *Tenant) Admit(client string) bool {
	if t.cfg.RatePerSec <= 0 {
		return true
	}
	if t.takeToken(client) {
		return true
	}
	t.m.RateLimited.Inc()
	return false
}

// Drain refuses new work (Draining turns true), lets the model goroutine
// answer everything already queued, and waits for it to exit. ctx bounds
// the wait. Drain is idempotent.
func (t *Tenant) Drain(ctx context.Context) error {
	t.mu.Lock()
	already := t.draining
	t.draining = true
	t.mu.Unlock()
	t.m.Ready.Set(0)
	if !already {
		close(t.stop)
	}
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("tenant %s: drain: %w", t.spec.ID, ctx.Err())
	}
}

// modelLoop is the single goroutine that owns the tenant's estimator: it
// gathers estimate jobs into micro-batches and runs execute jobs one at
// a time. After stop it drains whatever is still queued (their callers
// are waiting on replies) and exits.
func (t *Tenant) modelLoop() {
	defer close(t.done)
	for {
		select {
		case j := <-t.estQ:
			t.m.QueueDepth.Add(-1)
			t.gatherAndEval(j)
		case j := <-t.execQ:
			t.runExec(j)
		case <-t.stop:
			t.drainQueues()
			return
		}
	}
}

// gatherAndEval collects more estimate jobs for up to BatchWindow (or
// until MaxBatch queries are pending), then evaluates them all.
func (t *Tenant) gatherAndEval(first *estJob) {
	first.wait.End()
	batch := []*estJob{first}
	n := len(first.qs)
	timer := time.NewTimer(t.cfg.BatchWindow)
	defer timer.Stop()
gather:
	for n < t.cfg.MaxBatch {
		select {
		case j := <-t.estQ:
			t.m.QueueDepth.Add(-1)
			j.wait.End()
			batch = append(batch, j)
			n += len(j.qs)
		case <-timer.C:
			break gather
		case <-t.stop:
			break gather
		}
	}
	t.m.Batches.Inc()
	t.m.Batch.Observe(float64(n))
	// The batch span parents under the first job's request. Batch
	// composition is timing-dependent, so trace-structure determinism
	// checks exclude "batch" spans (like the pace_pool_* counters).
	_, bsp := obs.StartSpan(first.ctx, "batch", obs.Int("jobs", len(batch)), obs.Int("queries", n))
	for _, j := range batch {
		j.reply <- t.evalJob(j)
	}
	bsp.End()
}

func (t *Tenant) evalJob(j *estJob) estReply {
	if err := j.ctx.Err(); err != nil {
		return estReply{err: err} // caller already gone; skip the work
	}
	ctx, sp := obs.StartSpan(j.ctx, "model_inference", obs.Int("queries", len(j.qs)))
	defer sp.End()
	ests := make([]float64, len(j.qs))
	for i, q := range j.qs {
		est, err := t.target.EstimateContext(ctx, q)
		if err != nil {
			return estReply{err: err}
		}
		ests[i] = est
	}
	return estReply{ests: ests}
}

func (t *Tenant) runExec(j *execJob) {
	defer func() {
		if t.cache != nil {
			t.cache.flush()
		}
	}()
	if err := j.ctx.Err(); err != nil {
		j.reply <- err
		return
	}
	ctx, sp := obs.StartSpan(j.ctx, "retrain", obs.Int("queries", len(j.qs)))
	j.reply <- t.target.ExecuteWorkload(ctx, j.qs, j.cards)
	sp.End()
}

// drainQueues answers every still-queued job after stop; their callers
// block on the reply channels until the drain completes.
func (t *Tenant) drainQueues() {
	for {
		select {
		case j := <-t.estQ:
			t.m.QueueDepth.Add(-1)
			j.wait.End()
			j.reply <- t.evalJob(j)
		case j := <-t.execQ:
			t.runExec(j)
		default:
			return
		}
	}
}

// bucket is one client's token bucket. Access is guarded by Tenant.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

func (t *Tenant) takeToken(key string) bool {
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.clients[key]
	if !ok {
		// Bound the client table: evict everything once it grows absurd
		// (an abusive client cycling identities); honest clients refill
		// to a full burst on their next request anyway.
		if len(t.clients) >= 4096 {
			t.clients = make(map[string]*bucket)
		}
		b = &bucket{tokens: float64(t.cfg.Burst), last: now}
		t.clients[key] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * t.cfg.RatePerSec
		if max := float64(t.cfg.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
