package tenant

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
)

// Factory materializes a Spec into a trained target and its schema —
// typically experiments.TenantFactory, which builds the same world
// cmd/pace attacks in-process so a tenant's weights are bit-identical to
// the in-process victim of the same (dataset, model, seed, offset).
type Factory func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error)

// State of a registry slot, as reported by List and /healthz.
const (
	StateCreating = "creating"
	StateReady    = "ready"
	StateDraining = "draining"
	// StateEvicted marks a tenant whose live state was spilled by idle
	// eviction: only its Spec survives, and the next request (or an
	// explicit Revive) rebuilds it.
	StateEvicted = "evicted"
)

// Info is one tenant's directory entry.
type Info struct {
	Spec  Spec
	State string
}

// Registry is the concurrency-safe directory of a server's live tenants.
// Lookups are lock-cheap; Create runs the (potentially minutes-long)
// Factory outside the lock with a placeholder slot holding the id, so
// concurrent creates of the same id fail fast with ErrExists and
// /healthz can report the tenant as still provisioning.
//
// Admission is quota-guarded (Config.MaxTenants, Config.MaxPerOwner) and
// idle tenants can be evicted — their spec spills into a side table and
// Revive rebuilds them through the Factory, which reconstructs
// bit-identical weights for a fixed spec by construction.
type Registry struct {
	factory Factory
	cfg     Config

	mu       sync.Mutex
	slots    map[string]*slot
	evicted  map[string]Spec
	draining bool
}

type slot struct {
	state string
	t     *Tenant // nil while creating
	spec  Spec
}

// NewRegistry builds an empty registry. cfg is the serving configuration
// every tenant is created with; factory may be nil, in which case only
// Add (pre-built targets) works and Create returns an error.
func NewRegistry(factory Factory, cfg Config) *Registry {
	return &Registry{
		factory: factory,
		cfg:     cfg.withDefaults(),
		slots:   make(map[string]*slot),
		evicted: make(map[string]Spec),
	}
}

// Config returns the serving configuration tenants are created with.
func (r *Registry) Config() Config { return r.cfg }

func validID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("tenant: id %q must be 1..64 characters", id)
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("tenant: id %q may only contain letters, digits, '.', '_' and '-'", id)
		}
	}
	return nil
}

// admitLocked applies the quota rules to a prospective create. Evicted
// tenants still count — they hold their id and owner slot, only their
// live state is spilled.
func (r *Registry) admitLocked(spec Spec) error {
	if r.cfg.MaxTenants > 0 && len(r.slots)+len(r.evicted) >= r.cfg.MaxTenants {
		return fmt.Errorf("%w: host at its cap of %d tenants", ErrQuota, r.cfg.MaxTenants)
	}
	if r.cfg.MaxPerOwner > 0 && spec.Owner != "" {
		n := 0
		for _, s := range r.slots {
			if s.spec.Owner == spec.Owner {
				n++
			}
		}
		for _, sp := range r.evicted {
			if sp.Owner == spec.Owner {
				n++
			}
		}
		if n >= r.cfg.MaxPerOwner {
			return fmt.Errorf("%w: owner %q at its cap of %d tenants", ErrQuota, spec.Owner, r.cfg.MaxPerOwner)
		}
	}
	return nil
}

// Add registers a tenant around an already-trained target (boot-time
// worlds, tests). It fails with ErrExists when the id is taken and
// applies the same admission quotas as Create.
func (r *Registry) Add(spec Spec, target ce.Target, meta *query.Meta) (*Tenant, error) {
	spec = spec.withDefaults()
	if err := validID(spec.ID); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		return nil, fmt.Errorf("%w: registry shutting down", ErrDraining)
	}
	if _, ok := r.slots[spec.ID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.ID)
	}
	if _, ok := r.evicted[spec.ID]; ok {
		return nil, fmt.Errorf("%w: %s (evicted)", ErrExists, spec.ID)
	}
	if err := r.admitLocked(spec); err != nil {
		return nil, err
	}
	t := NewTenant(spec, target, meta, r.cfg)
	r.slots[spec.ID] = &slot{state: StateReady, t: t, spec: spec}
	return t, nil
}

// buildSafe runs the Factory with panic containment: a panicking world
// build must release the slot and surface as an error, not wedge the id
// in "creating" forever (or kill the serving process).
func (r *Registry) buildSafe(ctx context.Context, spec Spec) (target ce.Target, meta *query.Meta, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			target, meta = nil, nil
			err = fmt.Errorf("%w: %v", ErrCreatePanic, rec)
		}
	}()
	return r.factory(ctx, spec)
}

// Create provisions a new tenant through the Factory. The slot is
// visible (state "creating") for the whole build, so duplicate creates
// fail fast; on factory failure (including a panic) the slot is removed
// again. A create that completes after DrainAll began is discarded —
// no model goroutine may start once the registry is shutting down.
func (r *Registry) Create(ctx context.Context, spec Spec) (*Tenant, error) {
	spec = spec.withDefaults()
	if err := validID(spec.ID); err != nil {
		return nil, err
	}
	if r.factory == nil {
		return nil, fmt.Errorf("tenant: registry has no factory; cannot create %q at runtime", spec.ID)
	}
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: registry shutting down", ErrDraining)
	}
	if _, ok := r.slots[spec.ID]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.ID)
	}
	if _, ok := r.evicted[spec.ID]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s (evicted)", ErrExists, spec.ID)
	}
	if err := r.admitLocked(spec); err != nil {
		r.mu.Unlock()
		return nil, err
	}
	r.slots[spec.ID] = &slot{state: StateCreating, spec: spec}
	r.mu.Unlock()

	target, meta, err := r.buildSafe(ctx, spec)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.slots, spec.ID)
		return nil, fmt.Errorf("tenant: creating %s: %w", spec.ID, err)
	}
	if r.draining {
		delete(r.slots, spec.ID)
		return nil, fmt.Errorf("%w: registry shut down while %s trained", ErrDraining, spec.ID)
	}
	t := NewTenant(spec, target, meta, r.cfg)
	r.slots[spec.ID] = &slot{state: StateReady, t: t, spec: spec}
	return t, nil
}

// Get resolves an id to its live tenant. ErrNotReady while provisioning
// or draining, ErrEvicted when only the spilled spec remains (revive or
// retry), ErrNotFound otherwise.
func (r *Registry) Get(id string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slots[id]
	switch {
	case !ok:
		if _, ev := r.evicted[id]; ev {
			return nil, fmt.Errorf("%w: %s", ErrEvicted, id)
		}
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	case s.state == StateCreating:
		return nil, fmt.Errorf("%w: %s", ErrNotReady, id)
	default:
		return s.t, nil
	}
}

// List snapshots the directory, sorted by id. Evicted tenants list with
// state "evicted" — they still exist, just without live state.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.slots)+len(r.evicted))
	for _, s := range r.slots {
		info := Info{Spec: s.spec, State: s.state}
		if s.t != nil && s.t.Draining() {
			info.State = StateDraining
		}
		out = append(out, info)
	}
	for _, sp := range r.evicted {
		out = append(out, Info{Spec: sp, State: StateEvicted})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// Len reports how many tenants exist (ready, provisioning or evicted).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots) + len(r.evicted)
}

// Delete drains the tenant (in-flight work completes) and removes it.
// A tenant still provisioning cannot be deleted (ErrNotReady) — the
// create call owns the slot until it resolves. Deleting an evicted
// tenant just drops its spilled spec.
func (r *Registry) Delete(ctx context.Context, id string) error {
	r.mu.Lock()
	s, ok := r.slots[id]
	if !ok {
		if _, ev := r.evicted[id]; ev {
			delete(r.evicted, id)
			r.mu.Unlock()
			return nil
		}
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if s.state == StateCreating {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotReady, id)
	}
	s.state = StateDraining
	t := s.t
	r.mu.Unlock()

	if err := t.Drain(ctx); err != nil {
		// The drain timed out; the slot stays (draining) so the caller
		// can retry rather than leak an undrained model goroutine.
		return err
	}
	r.mu.Lock()
	delete(r.slots, id)
	r.mu.Unlock()
	return nil
}

// EvictIdle drains every ready tenant idle for at least idleFor and
// spills its spec into the evicted table for lazy revival. It returns
// the evicted ids (sorted). ctx bounds each tenant's drain.
func (r *Registry) EvictIdle(ctx context.Context, idleFor time.Duration) []string {
	r.mu.Lock()
	type victim struct {
		id string
		t  *Tenant
	}
	var victims []victim
	for id, s := range r.slots {
		if s.state == StateReady && s.t != nil && !s.t.Draining() && s.t.IdleFor() >= idleFor {
			s.state = StateDraining
			victims = append(victims, victim{id: id, t: s.t})
		}
	}
	r.mu.Unlock()

	var out []string
	for _, v := range victims {
		if err := v.t.Drain(ctx); err != nil {
			// Drain timed out; the slot stays draining and a later pass
			// (or Delete) finishes the job.
			continue
		}
		r.mu.Lock()
		if s, ok := r.slots[v.id]; ok {
			delete(r.slots, v.id)
			r.evicted[v.id] = s.spec
			out = append(out, v.id)
		}
		r.mu.Unlock()
	}
	sort.Strings(out)
	return out
}

// Revive rebuilds an evicted tenant from its spilled spec — the lazy
// revival path the server takes when a request hits an evicted id.
// While the rebuild runs the id occupies a "creating" slot, so
// concurrent revives coalesce (ErrNotReady) instead of double-building;
// on failure the spec re-spills so a later request can retry.
func (r *Registry) Revive(ctx context.Context, id string) (*Tenant, error) {
	if r.factory == nil {
		return nil, fmt.Errorf("tenant: registry has no factory; cannot revive %q", id)
	}
	r.mu.Lock()
	spec, ok := r.evicted[id]
	if !ok {
		s, live := r.slots[id]
		r.mu.Unlock()
		switch {
		case !live:
			return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
		case s.state == StateCreating:
			return nil, fmt.Errorf("%w: %s", ErrNotReady, id)
		default:
			return s.t, nil // someone already revived it
		}
	}
	if r.draining {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: registry shutting down", ErrDraining)
	}
	delete(r.evicted, id)
	r.slots[id] = &slot{state: StateCreating, spec: spec}
	r.mu.Unlock()

	target, meta, err := r.buildSafe(ctx, spec)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.slots, id)
		r.evicted[id] = spec
		return nil, fmt.Errorf("tenant: reviving %s: %w", id, err)
	}
	if r.draining {
		delete(r.slots, id)
		r.evicted[id] = spec
		return nil, fmt.Errorf("%w: registry shut down while %s revived", ErrDraining, id)
	}
	t := NewTenant(spec, target, meta, r.cfg)
	r.slots[id] = &slot{state: StateReady, t: t, spec: spec}
	return t, nil
}

// DrainAll drains every live tenant concurrently — the process-shutdown
// path: in-flight execute and estimate calls on every tenant complete
// before it returns. Tenants are left registered (state draining) so
// late lookups answer "draining", not "not found", and creates that
// resolve after shutdown began are discarded by Create itself.
func (r *Registry) DrainAll(ctx context.Context) error {
	r.mu.Lock()
	r.draining = true
	tenants := make([]*Tenant, 0, len(r.slots))
	for _, s := range r.slots {
		if s.t != nil {
			s.state = StateDraining
			tenants = append(tenants, s.t)
		}
	}
	r.mu.Unlock()

	errs := make(chan error, len(tenants))
	for _, t := range tenants {
		go func(t *Tenant) { errs <- t.Drain(ctx) }(t)
	}
	var first error
	for range tenants {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
