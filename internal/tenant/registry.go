package tenant

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pace/internal/ce"
	"pace/internal/query"
)

// Factory materializes a Spec into a trained target and its schema —
// typically experiments.TenantFactory, which builds the same world
// cmd/pace attacks in-process so a tenant's weights are bit-identical to
// the in-process victim of the same (dataset, model, seed, offset).
type Factory func(ctx context.Context, spec Spec) (ce.Target, *query.Meta, error)

// State of a registry slot, as reported by List and /healthz.
const (
	StateCreating = "creating"
	StateReady    = "ready"
	StateDraining = "draining"
)

// Info is one tenant's directory entry.
type Info struct {
	Spec  Spec
	State string
}

// Registry is the concurrency-safe directory of a server's live tenants.
// Lookups are lock-cheap; Create runs the (potentially minutes-long)
// Factory outside the lock with a placeholder slot holding the id, so
// concurrent creates of the same id fail fast with ErrExists and
// /healthz can report the tenant as still provisioning.
type Registry struct {
	factory Factory
	cfg     Config

	mu    sync.Mutex
	slots map[string]*slot
}

type slot struct {
	state string
	t     *Tenant // nil while creating
	spec  Spec
}

// NewRegistry builds an empty registry. cfg is the serving configuration
// every tenant is created with; factory may be nil, in which case only
// Add (pre-built targets) works and Create returns an error.
func NewRegistry(factory Factory, cfg Config) *Registry {
	return &Registry{
		factory: factory,
		cfg:     cfg.withDefaults(),
		slots:   make(map[string]*slot),
	}
}

// Config returns the serving configuration tenants are created with.
func (r *Registry) Config() Config { return r.cfg }

func validID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("tenant: id %q must be 1..64 characters", id)
	}
	for _, c := range id {
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("tenant: id %q may only contain letters, digits, '.', '_' and '-'", id)
		}
	}
	return nil
}

// Add registers a tenant around an already-trained target (boot-time
// worlds, tests). It fails with ErrExists when the id is taken.
func (r *Registry) Add(spec Spec, target ce.Target, meta *query.Meta) (*Tenant, error) {
	spec = spec.withDefaults()
	if err := validID(spec.ID); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.slots[spec.ID]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.ID)
	}
	t := NewTenant(spec, target, meta, r.cfg)
	r.slots[spec.ID] = &slot{state: StateReady, t: t, spec: spec}
	return t, nil
}

// Create provisions a new tenant through the Factory. The slot is
// visible (state "creating") for the whole build, so duplicate creates
// fail fast; on factory failure the slot is removed again.
func (r *Registry) Create(ctx context.Context, spec Spec) (*Tenant, error) {
	spec = spec.withDefaults()
	if err := validID(spec.ID); err != nil {
		return nil, err
	}
	if r.factory == nil {
		return nil, fmt.Errorf("tenant: registry has no factory; cannot create %q at runtime", spec.ID)
	}
	r.mu.Lock()
	if _, ok := r.slots[spec.ID]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, spec.ID)
	}
	r.slots[spec.ID] = &slot{state: StateCreating, spec: spec}
	r.mu.Unlock()

	target, meta, err := r.factory(ctx, spec)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		delete(r.slots, spec.ID)
		return nil, fmt.Errorf("tenant: creating %s: %w", spec.ID, err)
	}
	t := NewTenant(spec, target, meta, r.cfg)
	r.slots[spec.ID] = &slot{state: StateReady, t: t, spec: spec}
	return t, nil
}

// Get resolves an id to its live tenant. ErrNotReady while provisioning
// or draining, ErrNotFound otherwise.
func (r *Registry) Get(id string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slots[id]
	switch {
	case !ok:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	case s.state == StateCreating:
		return nil, fmt.Errorf("%w: %s", ErrNotReady, id)
	default:
		return s.t, nil
	}
}

// List snapshots the directory, sorted by id.
func (r *Registry) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.slots))
	for _, s := range r.slots {
		info := Info{Spec: s.spec, State: s.state}
		if s.t != nil && s.t.Draining() {
			info.State = StateDraining
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.ID < out[j].Spec.ID })
	return out
}

// Len reports how many slots (ready or provisioning) exist.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots)
}

// Delete drains the tenant (in-flight work completes) and removes it.
// A tenant still provisioning cannot be deleted (ErrNotReady) — the
// create call owns the slot until it resolves.
func (r *Registry) Delete(ctx context.Context, id string) error {
	r.mu.Lock()
	s, ok := r.slots[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if s.state == StateCreating {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotReady, id)
	}
	s.state = StateDraining
	t := s.t
	r.mu.Unlock()

	if err := t.Drain(ctx); err != nil {
		// The drain timed out; the slot stays (draining) so the caller
		// can retry rather than leak an undrained model goroutine.
		return err
	}
	r.mu.Lock()
	delete(r.slots, id)
	r.mu.Unlock()
	return nil
}

// DrainAll drains every live tenant concurrently — the process-shutdown
// path: in-flight execute and estimate calls on every tenant complete
// before it returns. Tenants are left registered (state draining) so
// late lookups answer "draining", not "not found".
func (r *Registry) DrainAll(ctx context.Context) error {
	r.mu.Lock()
	tenants := make([]*Tenant, 0, len(r.slots))
	for _, s := range r.slots {
		if s.t != nil {
			s.state = StateDraining
			tenants = append(tenants, s.t)
		}
	}
	r.mu.Unlock()

	errs := make(chan error, len(tenants))
	for _, t := range tenants {
		go func(t *Tenant) { errs <- t.Drain(ctx) }(t)
	}
	var first error
	for range tenants {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}
