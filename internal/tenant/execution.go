package tenant

import (
	"context"
	"errors"
	"time"

	"pace/internal/query"
)

// ErrUnknownExecution marks a streamed-execute token the tenant does
// not know — never opened, or already deleted (HTTP 404, code
// "unknown_execution").
var ErrUnknownExecution = errors.New("tenant: no such execution")

// maxExecutions bounds the per-tenant execution registry. Opening past
// the cap evicts the least-recently-touched finished execution; when
// every slot is still running, the open sheds (ErrQueueFull).
const maxExecutions = 64

// ExecutionStatus snapshots one streamed execution's progress.
type ExecutionStatus struct {
	Token string
	// Pending counts chunks enqueued but not yet applied by the model
	// goroutine; Applied counts chunks retrained; Queries counts the
	// queries across applied chunks.
	Pending, Applied, Queries int64
	// Err is the first chunk failure; non-nil means the stream failed.
	Err error
}

// Done reports stream completion from the server's view: nothing
// in flight. The client's completion condition adds "all chunks acked".
func (st ExecutionStatus) Done() bool { return st.Pending == 0 }

// execution is one open streamed execute: the dedupe set of acked chunk
// sequence numbers plus progress counters. Chunks are enqueued onto the
// tenant's ordinary execQ — streaming changes only when the client
// blocks (never, past the enqueue ack), not how retrains serialize.
type execution struct {
	token   string
	seqs    map[int64]bool // acked (enqueued) chunk seqs, incl. applied
	pending int64
	applied int64
	queries int64
	failed  error
	touched time.Time
	// opened and lastDone bound the stream's completion latency:
	// OpenExecution → the last moment pending drained to zero. Observed
	// once, at DeleteExecution.
	opened   time.Time
	lastDone time.Time
}

func (e *execution) status() ExecutionStatus {
	return ExecutionStatus{
		Token:   e.token,
		Pending: e.pending,
		Applied: e.applied,
		Queries: e.queries,
		Err:     e.failed,
	}
}

// OpenExecution registers (or idempotently re-opens) a streamed execute
// under a client-chosen token. Re-opening an existing token returns its
// current status unchanged — that is what makes a whole-stream retry
// after a failover safe.
func (t *Tenant) OpenExecution(token string) (ExecutionStatus, error) {
	if t.Draining() {
		return ExecutionStatus{}, ErrDraining
	}
	t.lastActive.Store(time.Now().UnixNano())
	t.execsMu.Lock()
	defer t.execsMu.Unlock()
	if t.execs == nil {
		t.execs = map[string]*execution{}
	}
	if e, ok := t.execs[token]; ok {
		e.touched = time.Now()
		return e.status(), nil
	}
	if len(t.execs) >= maxExecutions && !t.evictFinishedLocked() {
		t.m.Shed.Inc()
		return ExecutionStatus{}, ErrQueueFull
	}
	now := time.Now()
	e := &execution{token: token, seqs: map[int64]bool{}, touched: now, opened: now}
	t.execs[token] = e
	return e.status(), nil
}

// evictFinishedLocked drops the least-recently-touched execution with
// nothing in flight. Callers hold execsMu.
func (t *Tenant) evictFinishedLocked() bool {
	var victim string
	var oldest time.Time
	for tok, e := range t.execs {
		if e.pending > 0 {
			continue
		}
		if victim == "" || e.touched.Before(oldest) {
			victim, oldest = tok, e.touched
		}
	}
	if victim == "" {
		return false
	}
	delete(t.execs, victim)
	return true
}

func (t *Tenant) execution(token string) (*execution, bool) {
	t.execsMu.Lock()
	defer t.execsMu.Unlock()
	e, ok := t.execs[token]
	if ok {
		e.touched = time.Now()
	}
	return e, ok
}

// SubmitChunk enqueues one chunk of a streamed execute and acks as soon
// as it is queued — the retrain itself runs asynchronously on the model
// goroutine, so the client pipelines chunks and retrain throughput is
// the only bottleneck. A chunk whose (token, seq) was already acked is
// acked again without re-applying: exactly-once under whole-stream
// retries. A full execute queue sheds (ErrQueueFull, 429 + Retry-After
// on the wire) — that is flow control, the client resubmits the same
// seq after the hint.
func (t *Tenant) SubmitChunk(ctx context.Context, token string, seq int64, qs []*query.Query, cards []float64) (ExecutionStatus, error) {
	if t.Draining() {
		return ExecutionStatus{}, ErrDraining
	}
	t.lastActive.Store(time.Now().UnixNano())
	t.m.ExecReqs.Inc()
	e, ok := t.execution(token)
	if !ok {
		return ExecutionStatus{}, ErrUnknownExecution
	}

	t.execsMu.Lock()
	if e.seqs[seq] {
		st := e.status()
		t.execsMu.Unlock()
		t.m.ChunksDeduped.Inc()
		return st, nil // duplicate: ack again, apply nothing
	}
	// Mark before enqueueing so a concurrent duplicate of the same seq
	// cannot slip past the dedupe check; unmarked again if the queue
	// sheds.
	e.seqs[seq] = true
	e.pending++
	t.execsMu.Unlock()

	if t.cache != nil {
		t.cache.flush() // the model's answers are about to change
	}
	// The job keeps the request's telemetry and trace values but not its
	// lifetime: the 202 ack returns before the retrain runs, so the
	// submitting request expiring must not cancel the work.
	job := &execJob{ctx: context.WithoutCancel(ctx), qs: qs, cards: cards, reply: make(chan error, 1)}
	select {
	case t.execQ <- job:
	default:
		t.execsMu.Lock()
		delete(e.seqs, seq)
		e.pending--
		t.execsMu.Unlock()
		t.m.Shed.Inc()
		t.m.ChunksShed.Inc()
		return ExecutionStatus{}, ErrQueueFull
	}
	t.m.ChunksEnq.Inc()
	t.m.ExecQueries.Add(int64(len(qs)))
	go t.consumeChunk(e, job, int64(len(qs)))

	t.execsMu.Lock()
	st := e.status()
	t.execsMu.Unlock()
	return st, nil
}

// consumeChunk waits for one async chunk's retrain result and folds it
// into the execution's counters. If the tenant drains before the model
// goroutine answers, the drain path (drainQueues) still replies; only a
// job lost past that records the drain as the chunk's failure.
func (t *Tenant) consumeChunk(e *execution, job *execJob, nQueries int64) {
	var err error
	select {
	case err = <-job.reply:
	case <-t.done:
		select {
		case err = <-job.reply:
		default:
			err = ErrDraining
		}
	}
	t.execsMu.Lock()
	e.pending--
	if err != nil {
		if e.failed == nil {
			e.failed = err
		}
	} else {
		e.applied++
		e.queries += nQueries
	}
	if e.pending == 0 {
		e.lastDone = time.Now()
	}
	t.execsMu.Unlock()
}

// ExecutionStatus reports one execution's progress for the poll
// endpoint.
func (t *Tenant) ExecutionStatus(token string) (ExecutionStatus, error) {
	t.lastActive.Store(time.Now().UnixNano())
	e, ok := t.execution(token)
	if !ok {
		return ExecutionStatus{}, ErrUnknownExecution
	}
	t.execsMu.Lock()
	st := e.status()
	t.execsMu.Unlock()
	return st, nil
}

// DeleteExecution forgets a token's dedupe state (chunks already
// enqueued keep retraining). Clients call it once a stream completes.
func (t *Tenant) DeleteExecution(token string) (ExecutionStatus, error) {
	t.execsMu.Lock()
	defer t.execsMu.Unlock()
	e, ok := t.execs[token]
	if !ok {
		return ExecutionStatus{}, ErrUnknownExecution
	}
	delete(t.execs, token)
	// The delete marks the stream's lifecycle end; observe its completion
	// latency (open → last chunk applied) once, here.
	if !e.opened.IsZero() && !e.lastDone.IsZero() && e.lastDone.After(e.opened) {
		t.m.StreamSeconds.Observe(e.lastDone.Sub(e.opened).Seconds())
	}
	return e.status(), nil
}
