package dataset

// The four built-in schemas mirror the shape of the paper's datasets:
// table counts, a tree-shaped PK-FK join graph, and a mix of skewed,
// clustered and correlated columns. Base row counts are laptop-scale; use
// Config.Scale to grow or shrink every table proportionally.

// dmvSpec mirrors the DMV vehicle-registration dataset: one wide table
// with 11 attributes of mixed skew.
func dmvSpec() Spec {
	return Spec{
		Name: "dmv",
		Tables: []TableSpec{
			{Name: "vehicles", Rows: 16000, Cols: []ColumnSpec{
				{Name: "record_type", Dist: Zipf, Distinct: 4},
				{Name: "reg_class", Dist: Zipf, Distinct: 30},
				{Name: "state", Dist: Zipf, Distinct: 50},
				{Name: "county", Dist: Uniform, Distinct: 62},
				{Name: "body_type", Dist: Zipf, Distinct: 24},
				{Name: "fuel_type", Dist: Zipf, Distinct: 8},
				{Name: "year", Dist: Gaussian, Distinct: 80},
				{Name: "weight", Dist: Correlated},
				{Name: "color", Dist: Uniform, Distinct: 20},
				{Name: "scofflaw", Dist: Zipf, Distinct: 2},
				{Name: "suspended", Dist: Zipf, Distinct: 2},
			}},
		},
	}
}

// imdbSpec mirrors the 21-table IMDB/JOB schema as a snowflake around
// title, with cast_info and movie_info as the large fact-like tables.
func imdbSpec() Spec {
	dim := func(name string, rows int) TableSpec {
		return TableSpec{Name: name, Rows: rows, Cols: []ColumnSpec{
			{Name: "kind", Dist: Zipf, Distinct: 16},
			{Name: "weight", Dist: Uniform},
		}}
	}
	fact := func(name string, rows int) TableSpec {
		return TableSpec{Name: name, Rows: rows, Cols: []ColumnSpec{
			{Name: "info", Dist: Zipf, Distinct: 40},
			{Name: "year", Dist: Gaussian, Distinct: 100},
			{Name: "score", Dist: Correlated},
		}}
	}
	return Spec{
		Name: "imdb",
		Tables: []TableSpec{
			fact("title", 6000),
			dim("kind_type", 100),
			fact("movie_companies", 4000),
			dim("company_name", 800),
			dim("company_type", 100),
			fact("movie_info", 8000),
			dim("info_type", 110),
			fact("movie_info_idx", 3000),
			fact("movie_keyword", 4000),
			dim("keyword", 1200),
			fact("cast_info", 9000),
			dim("name", 2500),
			dim("role_type", 100),
			dim("char_name", 2000),
			fact("aka_title", 1500),
			fact("movie_link", 1000),
			dim("link_type", 100),
			fact("complete_cast", 1200),
			dim("comp_cast_type", 100),
			fact("aka_name", 1200),
			fact("person_info", 2500),
		},
		Edges: []EdgeSpec{
			{Child: "title", Parent: "kind_type", ZipfSkew: 1},
			{Child: "movie_companies", Parent: "title", ZipfSkew: 0.5},
			{Child: "movie_companies", Parent: "company_name", ZipfSkew: 1},
			{Child: "movie_companies", Parent: "company_type"},
			{Child: "movie_info", Parent: "title", ZipfSkew: 0.5},
			{Child: "movie_info", Parent: "info_type", ZipfSkew: 1},
			{Child: "movie_info_idx", Parent: "title"},
			{Child: "movie_keyword", Parent: "title", ZipfSkew: 0.5},
			{Child: "movie_keyword", Parent: "keyword", ZipfSkew: 1.5},
			{Child: "cast_info", Parent: "title", ZipfSkew: 0.5},
			{Child: "cast_info", Parent: "name", ZipfSkew: 1},
			{Child: "cast_info", Parent: "role_type", ZipfSkew: 1},
			{Child: "cast_info", Parent: "char_name"},
			{Child: "aka_title", Parent: "title", ZipfSkew: 1},
			{Child: "movie_link", Parent: "title", ZipfSkew: 1},
			{Child: "movie_link", Parent: "link_type"},
			{Child: "complete_cast", Parent: "title"},
			{Child: "complete_cast", Parent: "comp_cast_type"},
			{Child: "aka_name", Parent: "name", ZipfSkew: 1},
			{Child: "person_info", Parent: "name", ZipfSkew: 0.5},
		},
	}
}

// tpchSpec mirrors the 8-table TPC-H schema. The supplier→nation edge of
// the real schema is dropped so the join graph stays a tree (the engine's
// exact-count algorithm requires acyclic joins); supplier joins through
// partsupp instead, preserving every query template the benchmark-style
// workloads use.
func tpchSpec() Spec {
	return Spec{
		Name: "tpch",
		Tables: []TableSpec{
			{Name: "region", Rows: 50, Cols: []ColumnSpec{
				{Name: "r_key", Dist: Uniform, Distinct: 5},
				{Name: "r_comment_len", Dist: Uniform},
			}},
			{Name: "nation", Rows: 250, Cols: []ColumnSpec{
				{Name: "n_key", Dist: Uniform, Distinct: 25},
				{Name: "n_weight", Dist: Gaussian},
			}},
			{Name: "customer", Rows: 3000, Cols: []ColumnSpec{
				{Name: "c_mktsegment", Dist: Zipf, Distinct: 5},
				{Name: "c_acctbal", Dist: Gaussian},
				{Name: "c_priority", Dist: Correlated},
			}},
			{Name: "supplier", Rows: 1000, Cols: []ColumnSpec{
				{Name: "s_acctbal", Dist: Gaussian},
				{Name: "s_rating", Dist: Zipf, Distinct: 10},
			}},
			{Name: "part", Rows: 2500, Cols: []ColumnSpec{
				{Name: "p_size", Dist: Uniform, Distinct: 50},
				{Name: "p_retailprice", Dist: Gaussian},
				{Name: "p_brand", Dist: Zipf, Distinct: 25},
			}},
			{Name: "partsupp", Rows: 6000, Cols: []ColumnSpec{
				{Name: "ps_availqty", Dist: Uniform, Distinct: 100},
				{Name: "ps_supplycost", Dist: Gaussian},
			}},
			{Name: "orders", Rows: 9000, Cols: []ColumnSpec{
				{Name: "o_status", Dist: Zipf, Distinct: 3},
				{Name: "o_totalprice", Dist: Zipf},
				{Name: "o_date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "lineitem", Rows: 18000, Cols: []ColumnSpec{
				{Name: "l_quantity", Dist: Uniform, Distinct: 50},
				{Name: "l_price", Dist: Correlated},
				{Name: "l_discount", Dist: Zipf, Distinct: 11},
				{Name: "l_shipdate", Dist: Uniform, Distinct: 365},
			}},
		},
		Edges: []EdgeSpec{
			{Child: "nation", Parent: "region"},
			{Child: "customer", Parent: "nation", ZipfSkew: 0.5},
			{Child: "orders", Parent: "customer", ZipfSkew: 1},
			{Child: "lineitem", Parent: "orders", ZipfSkew: 0.3},
			{Child: "lineitem", Parent: "partsupp", ZipfSkew: 0.5},
			{Child: "partsupp", Parent: "part"},
			{Child: "partsupp", Parent: "supplier", ZipfSkew: 0.5},
		},
	}
}

// statsSpec mirrors the 8-table STATS (Stack Exchange) schema.
func statsSpec() Spec {
	return Spec{
		Name: "stats",
		Tables: []TableSpec{
			{Name: "users", Rows: 2500, Cols: []ColumnSpec{
				{Name: "reputation", Dist: Zipf},
				{Name: "age", Dist: Gaussian, Distinct: 80},
				{Name: "upvotes", Dist: Correlated},
			}},
			{Name: "posts", Rows: 9000, Cols: []ColumnSpec{
				{Name: "score", Dist: Zipf, Distinct: 200},
				{Name: "viewcount", Dist: Zipf},
				{Name: "answercount", Dist: Zipf, Distinct: 30},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "comments", Rows: 16000, Cols: []ColumnSpec{
				{Name: "score", Dist: Zipf, Distinct: 100},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "badges", Rows: 8000, Cols: []ColumnSpec{
				{Name: "class", Dist: Zipf, Distinct: 3},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "votes", Rows: 20000, Cols: []ColumnSpec{
				{Name: "votetype", Dist: Zipf, Distinct: 15},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "posthistory", Rows: 12000, Cols: []ColumnSpec{
				{Name: "type", Dist: Zipf, Distinct: 20},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "postlinks", Rows: 3000, Cols: []ColumnSpec{
				{Name: "linktype", Dist: Zipf, Distinct: 2},
				{Name: "date", Dist: Uniform, Distinct: 365},
			}},
			{Name: "tags", Rows: 1500, Cols: []ColumnSpec{
				{Name: "count", Dist: Zipf},
				{Name: "excerpt_len", Dist: Gaussian},
			}},
		},
		Edges: []EdgeSpec{
			{Child: "posts", Parent: "users", ZipfSkew: 1},
			{Child: "comments", Parent: "posts", ZipfSkew: 1},
			{Child: "badges", Parent: "users", ZipfSkew: 0.5},
			{Child: "votes", Parent: "posts", ZipfSkew: 1.5},
			{Child: "posthistory", Parent: "posts", ZipfSkew: 0.5},
			{Child: "postlinks", Parent: "posts"},
			{Child: "tags", Parent: "posts", ZipfSkew: 1},
		},
	}
}
