package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildAllDatasets(t *testing.T) {
	wantTables := map[string]int{"dmv": 1, "imdb": 21, "tpch": 8, "stats": 8}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := Build(name, Config{Scale: 0.1, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if len(d.Tables) != wantTables[name] {
				t.Errorf("%s: %d tables, want %d", name, len(d.Tables), wantTables[name])
			}
			if err := d.Meta.Validate(); err != nil {
				t.Errorf("%s meta invalid: %v", name, err)
			}
			if len(d.Edges) != len(d.Tables)-1 && name != "dmv" {
				t.Errorf("%s: %d edges for %d tables, want a spanning tree",
					name, len(d.Edges), len(d.Tables))
			}
		})
	}
}

func TestBuildUnknownDataset(t *testing.T) {
	if _, err := Build("nope", Config{}); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestValuesNormalized(t *testing.T) {
	d, err := Build("tpch", Config{Scale: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range d.Tables {
		for ci, col := range tab.Cols {
			for _, v := range col {
				if v < 0 || v > 1 {
					t.Fatalf("%s.%s value %g outside [0,1]", tab.Name, tab.ColNames[ci], v)
				}
			}
		}
	}
}

func TestRefsInRange(t *testing.T) {
	d, err := Build("stats", Config{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Edges {
		child, parent := d.Tables[e.Child], d.Tables[e.Parent]
		if len(e.Refs) != child.Rows {
			t.Fatalf("edge %s→%s: %d refs for %d child rows",
				child.Name, parent.Name, len(e.Refs), child.Rows)
		}
		for _, r := range e.Refs {
			if r < 0 || r >= parent.Rows {
				t.Fatalf("edge %s→%s: ref %d outside parent rows %d",
					child.Name, parent.Name, r, parent.Rows)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1, _ := Build("imdb", Config{Scale: 0.05, Seed: 7})
	d2, _ := Build("imdb", Config{Scale: 0.05, Seed: 7})
	if d1.TotalRows() != d2.TotalRows() {
		t.Fatal("same seed produced different row counts")
	}
	for ti := range d1.Tables {
		for ci := range d1.Tables[ti].Cols {
			a, b := d1.Tables[ti].Cols[ci], d2.Tables[ti].Cols[ci]
			for r := range a {
				if a[r] != b[r] {
					t.Fatalf("same seed produced different values at %d/%d/%d", ti, ci, r)
				}
			}
		}
	}
	d3, _ := Build("imdb", Config{Scale: 0.05, Seed: 8})
	same := true
outer:
	for ti := range d1.Tables {
		for ci := range d1.Tables[ti].Cols {
			a, b := d1.Tables[ti].Cols[ci], d3.Tables[ti].Cols[ci]
			for r := range a {
				if a[r] != b[r] {
					same = false
					break outer
				}
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestScale(t *testing.T) {
	small, _ := Build("dmv", Config{Scale: 0.1, Seed: 1})
	big, _ := Build("dmv", Config{Scale: 0.5, Seed: 1})
	if big.Tables[0].Rows <= small.Tables[0].Rows {
		t.Errorf("scale 0.5 rows (%d) not larger than scale 0.1 rows (%d)",
			big.Tables[0].Rows, small.Tables[0].Rows)
	}
}

func TestJoinable(t *testing.T) {
	d, _ := Build("tpch", Config{Scale: 0.05, Seed: 1})
	li := d.TableIndex("lineitem")
	or := d.TableIndex("orders")
	cu := d.TableIndex("customer")
	if li < 0 || or < 0 || cu < 0 {
		t.Fatal("expected tables missing")
	}
	if !d.Joinable(li, or) || !d.Joinable(or, li) {
		t.Error("lineitem–orders should be joinable (both directions)")
	}
	if d.Joinable(li, cu) {
		t.Error("lineitem–customer are not directly joinable")
	}
}

func TestTableIndexMissing(t *testing.T) {
	d, _ := Build("dmv", Config{Scale: 0.05, Seed: 1})
	if d.TableIndex("nope") != -1 {
		t.Error("TableIndex for missing table should be -1")
	}
}

func TestCycleRejected(t *testing.T) {
	spec := Spec{
		Name: "cyclic",
		Tables: []TableSpec{
			{Name: "a", Rows: 10, Cols: []ColumnSpec{{Name: "x"}}},
			{Name: "b", Rows: 10, Cols: []ColumnSpec{{Name: "x"}}},
			{Name: "c", Rows: 10, Cols: []ColumnSpec{{Name: "x"}}},
		},
		Edges: []EdgeSpec{
			{Child: "a", Parent: "b"},
			{Child: "b", Parent: "c"},
			{Child: "c", Parent: "a"},
		},
	}
	if _, err := Materialize(spec, Config{Seed: 1}); err == nil {
		t.Error("cyclic join graph accepted")
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []Spec{
		{Name: "empty"},
		{Name: "dup", Tables: []TableSpec{
			{Name: "a", Rows: 5, Cols: []ColumnSpec{{Name: "x"}}},
			{Name: "a", Rows: 5, Cols: []ColumnSpec{{Name: "x"}}},
		}},
		{Name: "nocols", Tables: []TableSpec{{Name: "a", Rows: 5}}},
		{Name: "badedge",
			Tables: []TableSpec{{Name: "a", Rows: 5, Cols: []ColumnSpec{{Name: "x"}}}},
			Edges:  []EdgeSpec{{Child: "a", Parent: "zzz"}}},
	}
	for _, spec := range cases {
		if _, err := Materialize(spec, Config{Seed: 1}); err == nil {
			t.Errorf("spec %q accepted, want error", spec.Name)
		}
	}
}

func TestQuantizeProperty(t *testing.T) {
	// Quantized columns take at most Distinct distinct values, all in [0,1].
	f := func(seed int64) bool {
		d, err := Build("dmv", Config{Scale: 0.02, Seed: seed})
		if err != nil {
			return false
		}
		tab := d.Tables[0]
		// record_type is quantized to 4 levels.
		distinct := map[float64]bool{}
		for _, v := range tab.Cols[0] {
			distinct[v] = true
		}
		return len(distinct) <= 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestZipfSkewConcentratesRefs(t *testing.T) {
	d, _ := Build("stats", Config{Scale: 0.2, Seed: 5})
	// votes→posts has skew 1.5: the first 10% of parent rows should
	// receive well over 10% of references.
	var votesEdge *Edge
	vi, pi := d.TableIndex("votes"), d.TableIndex("posts")
	for i := range d.Edges {
		if d.Edges[i].Child == vi && d.Edges[i].Parent == pi {
			votesEdge = &d.Edges[i]
		}
	}
	if votesEdge == nil {
		t.Fatal("votes→posts edge missing")
	}
	cut := d.Tables[pi].Rows / 10
	hot := 0
	for _, r := range votesEdge.Refs {
		if r < cut {
			hot++
		}
	}
	frac := float64(hot) / float64(len(votesEdge.Refs))
	if frac < 0.2 {
		t.Errorf("hot-parent fraction %.3f, want > 0.2 under skew 1.5", frac)
	}
}

func TestGrow(t *testing.T) {
	d, err := Build("tpch", Config{Scale: 0.05, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, len(d.Tables))
	for i, tab := range d.Tables {
		before[i] = tab.Rows
	}
	d.Grow(0.5, 0.2, rand.New(rand.NewSource(21)))
	for i, tab := range d.Tables {
		if tab.Rows <= before[i] {
			t.Fatalf("table %s did not grow: %d → %d", tab.Name, before[i], tab.Rows)
		}
		for ci, col := range tab.Cols {
			if len(col) != tab.Rows {
				t.Fatalf("%s col %d has %d values for %d rows", tab.Name, ci, len(col), tab.Rows)
			}
			for _, v := range col {
				if v < 0 || v > 1 {
					t.Fatalf("%s grown value %g outside [0,1]", tab.Name, v)
				}
			}
		}
	}
	for _, e := range d.Edges {
		if len(e.Refs) != d.Tables[e.Child].Rows {
			t.Fatalf("edge refs %d != child rows %d", len(e.Refs), d.Tables[e.Child].Rows)
		}
		for _, r := range e.Refs {
			if r < 0 || r >= d.Tables[e.Parent].Rows {
				t.Fatal("grown ref out of range")
			}
		}
	}
}

func TestGrowShiftsDistribution(t *testing.T) {
	d, _ := Build("dmv", Config{Scale: 0.05, Seed: 22})
	tab := d.Tables[0]
	oldRows := tab.Rows
	meanOf := func(vals []float64) float64 {
		var s float64
		for _, v := range vals {
			s += v
		}
		return s / float64(len(vals))
	}
	// weight column (index 7) is continuous; check shift moves its mean.
	oldMean := meanOf(tab.Cols[7])
	d.Grow(1.0, 0.3, rand.New(rand.NewSource(22)))
	newMean := meanOf(tab.Cols[7][oldRows:])
	if newMean <= oldMean+0.1 {
		t.Errorf("grown rows mean %.3f not shifted above old mean %.3f", newMean, oldMean)
	}
}
