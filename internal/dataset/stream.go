package dataset

// Sized corpus streaming: generate arbitrarily large seeded corpora of
// one table's rows in constant memory, chunked on disk with a progress
// manifest so an interrupted generation resumes bit-identically.
//
// The design follows elastic-package's `benchmark generate-corpus
// --size 100M`: the caller names an *approximate* size target (rows or
// bytes) and the generator streams until it is met. Three properties
// are load-bearing:
//
//   - Constant memory: rows are drawn, formatted and written one at a
//     time; nothing scales with the corpus size.
//   - Crash safety: every chunk is written to a *.tmp file, fsynced and
//     atomically renamed before the manifest records it, and the
//     manifest itself is replaced the same way. A SIGKILL at any point
//     leaves either a complete, recorded chunk or an ignorable *.tmp —
//     never a truncated chunk that resume would trust.
//   - Deterministic resume: chunk i draws from its own RNG seeded by
//     mix64(seed, i), so resuming after chunk N reproduces chunks N+1…
//     without replaying 0…N. Interrupted and uninterrupted runs emit
//     byte-identical corpora.
//
// Note the streamed corpus is row-major (each row draws its columns in
// schema order) while Materialize is column-major; the two RNG streams
// differ, so a streamed corpus is its own artifact, not a chunked copy
// of a Materialize table.

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// SizeTarget is a parsed -size value: exactly one of Rows or Bytes is
// set.
type SizeTarget struct {
	Rows  int64 `json:"rows,omitempty"`
	Bytes int64 `json:"bytes,omitempty"`
}

// ParseSize parses a corpus size target: a plain integer is a row
// count; a K/M/G suffix (binary multiples, optional trailing B) is an
// approximate byte size — "4096" is 4096 rows, "100M" ≈ 100 MiB,
// "2GB" ≈ 2 GiB.
func ParseSize(s string) (SizeTarget, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	if t == "" {
		return SizeTarget{}, fmt.Errorf("dataset: empty size")
	}
	mult := int64(0)
	t = strings.TrimSuffix(t, "B")
	switch {
	case strings.HasSuffix(t, "K"):
		mult = 1 << 10
	case strings.HasSuffix(t, "M"):
		mult = 1 << 20
	case strings.HasSuffix(t, "G"):
		mult = 1 << 30
	}
	if mult > 0 {
		t = t[:len(t)-1]
	} else if t != strings.ToUpper(strings.TrimSpace(s)) {
		// A bare trailing B ("500B") is a byte count too.
		mult = 1
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n <= 0 {
		return SizeTarget{}, fmt.Errorf("dataset: invalid size %q", s)
	}
	if mult > 0 {
		return SizeTarget{Bytes: n * mult}, nil
	}
	return SizeTarget{Rows: n}, nil
}

// String renders the target the way ParseSize accepts it.
func (s SizeTarget) String() string {
	if s.Bytes > 0 {
		return fmt.Sprintf("%dB", s.Bytes)
	}
	return fmt.Sprintf("%d rows", s.Rows)
}

// StreamConfig shapes one corpus stream.
type StreamConfig struct {
	// Dataset names the built-in schema ("dmv", "imdb", "tpch",
	// "stats") the streamed table belongs to.
	Dataset string
	// Table names the table to stream; empty picks the schema's
	// largest table (its fact table).
	Table string
	// Seed drives all randomness. The same (Dataset, Table, Seed,
	// ChunkRows, Target) always streams byte-identical chunks.
	Seed int64
	// Target is the approximate corpus size (rows or bytes); required.
	Target SizeTarget
	// ChunkRows is the number of rows per chunk file (default 8192).
	ChunkRows int
	// Progress, when set, is called after every completed (fsynced,
	// renamed, manifest-recorded) chunk.
	Progress func(StreamChunk)
}

// StreamChunk records one completed chunk in the manifest.
type StreamChunk struct {
	Index int    `json:"index"`
	File  string `json:"file"`
	Rows  int64  `json:"rows"`
	Bytes int64  `json:"bytes"`
}

// Manifest is the durable progress record of a corpus stream
// (manifest.json in the corpus directory). Resume trusts only chunks
// listed here — a chunk file is recorded strictly after its rename
// succeeded, so the manifest never references torn data.
type Manifest struct {
	Version   int           `json:"version"`
	Dataset   string        `json:"dataset"`
	Table     string        `json:"table"`
	Columns   []string      `json:"columns"`
	Seed      int64         `json:"seed"`
	ChunkRows int           `json:"chunk_rows"`
	Target    SizeTarget    `json:"target"`
	Rows      int64         `json:"rows"`
	Bytes     int64         `json:"bytes"`
	Chunks    []StreamChunk `json:"chunks"`
	Done      bool          `json:"done"`
}

// manifestVersion is bumped when the chunk format changes
// incompatibly; resume refuses a manifest from another version.
const manifestVersion = 1

// ManifestFile is the manifest's file name inside the corpus directory.
const ManifestFile = "manifest.json"

// mix64 is a splitmix64 finalizer over (seed, chunk index): every chunk
// owns an independent, well-separated RNG stream, which is what makes
// constant-time deterministic resume possible.
func mix64(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func (c StreamConfig) withDefaults() (StreamConfig, TableSpec, error) {
	spec, err := SpecByName(c.Dataset)
	if err != nil {
		return c, TableSpec{}, err
	}
	if c.ChunkRows <= 0 {
		c.ChunkRows = 8192
	}
	if c.Target.Rows <= 0 && c.Target.Bytes <= 0 {
		return c, TableSpec{}, fmt.Errorf("dataset: stream needs a size target")
	}
	if c.Table == "" {
		for _, ts := range spec.Tables {
			if c.Table == "" || ts.Rows > tableRows(spec, c.Table) {
				c.Table = ts.Name
			}
		}
	}
	for _, ts := range spec.Tables {
		if ts.Name == c.Table {
			return c, ts, nil
		}
	}
	return c, TableSpec{}, fmt.Errorf("dataset: %s has no table %q", c.Dataset, c.Table)
}

func tableRows(spec Spec, name string) int {
	for _, ts := range spec.Tables {
		if ts.Name == name {
			return ts.Rows
		}
	}
	return -1
}

// Stream generates (or resumes generating) a sized corpus under dir and
// returns the final manifest. A cancelled ctx aborts between chunks or
// mid-chunk; completed chunks stay durable and a later call with the
// same config continues where the manifest left off, emitting exactly
// the bytes an uninterrupted run would have.
func Stream(ctx context.Context, dir string, cfg StreamConfig) (*Manifest, error) {
	cfg, ts, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := loadOrInitManifest(dir, cfg, ts)
	if err != nil {
		return nil, err
	}
	for !m.Done {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		rows := int64(cfg.ChunkRows)
		switch {
		case cfg.Target.Rows > 0:
			if left := cfg.Target.Rows - m.Rows; left <= 0 {
				m.Done = true
			} else if left < rows {
				rows = left
			}
		case cfg.Target.Bytes > 0:
			if m.Bytes >= cfg.Target.Bytes {
				m.Done = true
			}
		}
		if m.Done {
			if err := writeManifest(dir, m); err != nil {
				return m, err
			}
			break
		}
		idx := len(m.Chunks)
		ch, err := writeChunk(ctx, dir, ts, cfg, idx, rows)
		if err != nil {
			return m, err
		}
		m.Chunks = append(m.Chunks, ch)
		m.Rows += ch.Rows
		m.Bytes += ch.Bytes
		// The chunk is durable before the manifest points at it: a crash
		// between the two regenerates the chunk (bit-identically) rather
		// than trusting an unrecorded file.
		if err := writeManifest(dir, m); err != nil {
			return m, err
		}
		if cfg.Progress != nil {
			cfg.Progress(ch)
		}
	}
	return m, nil
}

func loadOrInitManifest(dir string, cfg StreamConfig, ts TableSpec) (*Manifest, error) {
	cols := make([]string, len(ts.Cols))
	for i, cs := range ts.Cols {
		cols[i] = cs.Name
	}
	want := &Manifest{
		Version: manifestVersion, Dataset: cfg.Dataset, Table: cfg.Table,
		Columns: cols, Seed: cfg.Seed, ChunkRows: cfg.ChunkRows, Target: cfg.Target,
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return want, nil
	}
	if err != nil {
		return nil, err
	}
	var have Manifest
	if err := json.Unmarshal(raw, &have); err != nil {
		return nil, fmt.Errorf("dataset: corrupt manifest in %s: %w", dir, err)
	}
	if have.Version != want.Version || have.Dataset != want.Dataset ||
		have.Table != want.Table || have.Seed != want.Seed ||
		have.ChunkRows != want.ChunkRows || have.Target != want.Target {
		return nil, fmt.Errorf("dataset: manifest in %s was generated with different parameters (have %s/%s seed %d chunk %d target %s); use a fresh directory",
			dir, have.Dataset, have.Table, have.Seed, have.ChunkRows, have.Target)
	}
	return &have, nil
}

// writeChunk streams one chunk to <table>-chunk-<idx>.csv via a tmp
// file: rows are drawn from the chunk's private RNG, formatted and
// written one at a time, then the file is fsynced and renamed into
// place. On any error (including ctx cancellation mid-chunk) the tmp
// file is removed and the final name is never created.
func writeChunk(ctx context.Context, dir string, ts TableSpec, cfg StreamConfig, idx int, rows int64) (StreamChunk, error) {
	name := fmt.Sprintf("%s-chunk-%06d.csv", ts.Name, idx)
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return StreamChunk{}, err
	}
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	cw := &countingWriter{w: f}
	w := csv.NewWriter(cw)
	rng := rand.New(rand.NewSource(mix64(cfg.Seed, idx)))
	rec := make([]string, len(ts.Cols))
	for r := int64(0); r < rows; r++ {
		if r%checkRows == 0 && ctx.Err() != nil {
			return StreamChunk{}, ctx.Err()
		}
		var first float64
		for ci, cs := range ts.Cols {
			v := draw(cs.Dist, first, ci > 0, rng)
			if cs.Distinct > 0 {
				v = quantizeVal(v, cs.Distinct)
			}
			if ci == 0 {
				first = v
			}
			rec[ci] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if err := w.Write(rec); err != nil {
			return StreamChunk{}, err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return StreamChunk{}, err
	}
	if err := f.Sync(); err != nil {
		return StreamChunk{}, err
	}
	if err := f.Close(); err != nil {
		f = nil
		os.Remove(tmp)
		return StreamChunk{}, err
	}
	f = nil
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return StreamChunk{}, err
	}
	return StreamChunk{Index: idx, File: name, Rows: rows, Bytes: cw.n}, nil
}

// checkRows bounds how many rows are generated between cancellation
// checks inside one chunk.
const checkRows = 4096

// writeManifest atomically replaces the manifest: tmp, fsync, rename.
func writeManifest(dir string, m *Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ManifestFile)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(raw, '\n')); err == nil {
		err = f.Sync()
	} else {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
