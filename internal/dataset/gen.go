package dataset

import (
	"math"
	"math/rand"
)

// genTable materializes one table's columns.
func genTable(ts TableSpec, rows int, rng *rand.Rand) *Table {
	t := &Table{Name: ts.Name, Rows: rows}
	var first []float64
	for ci, cs := range ts.Cols {
		vals := make([]float64, rows)
		for r := 0; r < rows; r++ {
			vals[r] = drawValue(cs.Dist, first, r, rng)
		}
		if cs.Distinct > 0 {
			quantize(vals, cs.Distinct)
		}
		if ci == 0 {
			first = vals
		}
		t.Cols = append(t.Cols, vals)
		t.ColNames = append(t.ColNames, cs.Name)
	}
	return t
}

func drawValue(dist Distribution, first []float64, row int, rng *rand.Rand) float64 {
	if first == nil {
		return draw(dist, 0, false, rng)
	}
	return draw(dist, first[row], true, rng)
}

// draw produces one value of the distribution. first is the row's
// first-column value (haveFirst false when this IS the first column).
// Both the column-major batch generator and the row-major streamer feed
// through here, so the two paths draw from identical per-value logic.
func draw(dist Distribution, first float64, haveFirst bool, rng *rand.Rand) float64 {
	switch dist {
	case Zipf:
		// Power-law mass near 0: u^3 concentrates ~87% of values
		// below 0.5 while keeping a long tail, mimicking the heavy
		// skew of real categorical/frequency columns.
		u := rng.Float64()
		return u * u * u
	case Gaussian:
		v := 0.5 + rng.NormFloat64()*0.15
		return clamp01(v)
	case Correlated:
		if !haveFirst {
			return rng.Float64()
		}
		return clamp01(first + rng.NormFloat64()*0.1)
	default:
		return rng.Float64()
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// quantize snaps values onto n equally spaced levels in [0, 1].
func quantize(vals []float64, n int) {
	if n < 2 {
		return
	}
	for i, v := range vals {
		vals[i] = quantizeVal(v, n)
	}
}

// quantizeVal snaps one value onto n equally spaced levels in [0, 1].
func quantizeVal(v float64, n int) float64 {
	level := math.Floor(v * float64(n))
	if level >= float64(n) {
		level = float64(n - 1)
	}
	return level / float64(n-1)
}

// genRefs draws a parent row reference for every child row. skew == 0
// yields uniform references; skew > 0 yields a power-law concentration on
// low parent indexes (hot rows with large join fanout).
func genRefs(childRows, parentRows int, skew float64, rng *rand.Rand) []int {
	refs := make([]int, childRows)
	for i := range refs {
		u := rng.Float64()
		if skew > 0 {
			u = math.Pow(u, 1+skew)
		}
		r := int(u * float64(parentRows))
		if r >= parentRows {
			r = parentRows - 1
		}
		refs[i] = r
	}
	return refs
}
