// Package dataset builds the synthetic relational datasets the
// reproduction uses in place of the paper's DMV, IMDB, TPC-H and STATS
// data. Each dataset mirrors the *shape* of its namesake — table count,
// a PK-FK join graph, skewed and correlated column distributions — while
// being fully deterministic from a seed.
//
// All column values are normalized into [0, 1], which matches the query
// encoding of PACE §5.2 directly (predicates are normalized bounds), and
// all join graphs are trees of PK-FK edges, which keeps exact join
// cardinality computable in linear time (see internal/engine).
package dataset

import (
	"fmt"
	"math/rand"

	"pace/internal/query"
)

// Distribution selects how a synthetic column's values are drawn.
type Distribution int

// Column value distributions.
const (
	Uniform    Distribution = iota
	Zipf                    // power-law mass near 0
	Gaussian                // clamped normal around 0.5
	Correlated              // first column of the table plus noise
)

// ColumnSpec describes one synthetic column.
type ColumnSpec struct {
	Name string
	Dist Distribution
	// Distinct quantizes values onto this many distinct levels
	// (0 means continuous).
	Distinct int
}

// TableSpec describes one synthetic table.
type TableSpec struct {
	Name string
	Rows int // base row count, multiplied by Config.Scale
	Cols []ColumnSpec
}

// EdgeSpec declares a PK-FK join edge: each row of Child references one
// row of Parent. ZipfSkew > 0 skews references toward low parent row
// indexes (hot parents), producing non-uniform join fanout.
type EdgeSpec struct {
	Child, Parent string
	ZipfSkew      float64
}

// Spec is a full schema blueprint.
type Spec struct {
	Name   string
	Tables []TableSpec
	Edges  []EdgeSpec
}

// Table is a materialized synthetic table with column-major storage.
type Table struct {
	Name string
	Rows int
	// Cols[c][r] is the normalized value of column c at row r.
	Cols     [][]float64
	ColNames []string
}

// Edge is a materialized PK-FK edge of the join graph.
type Edge struct {
	Child, Parent int // table indexes
	// Refs[r] is the parent row index referenced by child row r.
	Refs []int
}

// Dataset is a fully materialized synthetic database instance.
type Dataset struct {
	Name   string
	Tables []*Table
	Edges  []Edge
	Meta   *query.Meta

	adj [][]bool
}

// Config controls dataset materialization.
type Config struct {
	// Scale multiplies every table's base row count; 0 means 1.0.
	Scale float64
	// Seed drives all randomness; the same seed always yields the same
	// dataset.
	Seed int64
}

// Names lists the available built-in datasets in paper order.
func Names() []string { return []string{"dmv", "imdb", "tpch", "stats"} }

// SpecByName returns the schema blueprint of a built-in dataset ("dmv",
// "imdb", "tpch" or "stats") without materializing it.
func SpecByName(name string) (Spec, error) {
	switch name {
	case "dmv":
		return dmvSpec(), nil
	case "imdb":
		return imdbSpec(), nil
	case "tpch":
		return tpchSpec(), nil
	case "stats":
		return statsSpec(), nil
	default:
		return Spec{}, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// Build materializes one of the built-in datasets ("dmv", "imdb", "tpch"
// or "stats").
func Build(name string, cfg Config) (*Dataset, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	return Materialize(spec, cfg)
}

// Materialize generates a dataset instance from a schema blueprint.
func Materialize(spec Spec, cfg Config) (*Dataset, error) {
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Dataset{Name: spec.Name}

	tableIdx := make(map[string]int, len(spec.Tables))
	for i, ts := range spec.Tables {
		tableIdx[ts.Name] = i
		rows := int(float64(ts.Rows) * cfg.Scale)
		if rows < 2 {
			rows = 2
		}
		d.Tables = append(d.Tables, genTable(ts, rows, rng))
	}

	for _, es := range spec.Edges {
		child, parent := tableIdx[es.Child], tableIdx[es.Parent]
		refs := genRefs(d.Tables[child].Rows, d.Tables[parent].Rows, es.ZipfSkew, rng)
		d.Edges = append(d.Edges, Edge{Child: child, Parent: parent, Refs: refs})
	}

	d.Meta = buildMeta(d)
	d.adj = buildAdj(d)
	return d, nil
}

func validateSpec(spec Spec) error {
	if len(spec.Tables) == 0 {
		return fmt.Errorf("dataset: spec %q has no tables", spec.Name)
	}
	names := make(map[string]bool, len(spec.Tables))
	for _, t := range spec.Tables {
		if names[t.Name] {
			return fmt.Errorf("dataset: duplicate table %q", t.Name)
		}
		names[t.Name] = true
		if len(t.Cols) == 0 {
			return fmt.Errorf("dataset: table %q has no columns", t.Name)
		}
	}
	for _, e := range spec.Edges {
		if !names[e.Child] || !names[e.Parent] {
			return fmt.Errorf("dataset: edge %s→%s references unknown table", e.Child, e.Parent)
		}
	}
	// The engine requires a forest of PK-FK edges: no table may appear
	// in a cycle, which for |edges| < |tables| plus connectivity checks
	// reduces to verifying the undirected graph is acyclic.
	if err := checkForest(spec); err != nil {
		return err
	}
	return nil
}

func checkForest(spec Spec) error {
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		if p, ok := parent[x]; ok && p != x {
			root := find(p)
			parent[x] = root
			return root
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	for _, e := range spec.Edges {
		a, b := find(e.Child), find(e.Parent)
		if a == b {
			return fmt.Errorf("dataset: join graph of %q contains a cycle through %s→%s",
				spec.Name, e.Child, e.Parent)
		}
		parent[a] = b
	}
	return nil
}

func buildMeta(d *Dataset) *query.Meta {
	m := &query.Meta{AttrOffset: []int{0}}
	for _, t := range d.Tables {
		m.TableNames = append(m.TableNames, t.Name)
		for _, cn := range t.ColNames {
			m.AttrNames = append(m.AttrNames, t.Name+"."+cn)
		}
		m.AttrOffset = append(m.AttrOffset, m.AttrOffset[len(m.AttrOffset)-1]+len(t.Cols))
	}
	return m
}

func buildAdj(d *Dataset) [][]bool {
	n := len(d.Tables)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range d.Edges {
		adj[e.Child][e.Parent] = true
		adj[e.Parent][e.Child] = true
	}
	return adj
}

// Joinable reports whether tables i and j share a PK-FK edge.
func (d *Dataset) Joinable(i, j int) bool { return d.adj[i][j] }

// TableIndex returns the index of the named table, or -1.
func (d *Dataset) TableIndex(name string) int {
	for i, t := range d.Tables {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// TotalRows returns the sum of row counts over all tables.
func (d *Dataset) TotalRows() int {
	n := 0
	for _, t := range d.Tables {
		n += t.Rows
	}
	return n
}
