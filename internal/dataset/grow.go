package dataset

import "math/rand"

// Grow appends frac×Rows new rows to every table, drawing each new value
// from an existing row of the same column plus a distribution shift and
// jitter — the workload-drift scenario that motivates incremental CE
// retraining in the first place (and with it, the poisoning channel).
// New child rows reference uniformly random rows of the grown parent,
// existing references stay valid, and the schema meta is unchanged, so
// engines and estimators built over the dataset keep working (estimators
// summarizing the old data are now stale, which is the point).
func (d *Dataset) Grow(frac, shift float64, rng *rand.Rand) {
	oldRows := make([]int, len(d.Tables))
	for ti, t := range d.Tables {
		oldRows[ti] = t.Rows
		extra := int(float64(t.Rows) * frac)
		if extra < 1 {
			extra = 1
		}
		for ci := range t.Cols {
			col := t.Cols[ci]
			for k := 0; k < extra; k++ {
				src := col[rng.Intn(t.Rows)]
				v := src + shift + rng.NormFloat64()*0.02
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				t.Cols[ci] = append(t.Cols[ci], v)
			}
		}
		t.Rows += extra
	}
	for ei := range d.Edges {
		e := &d.Edges[ei]
		childNew := d.Tables[e.Child].Rows - oldRows[e.Child]
		parentRows := d.Tables[e.Parent].Rows
		for k := 0; k < childNew; k++ {
			e.Refs = append(e.Refs, rng.Intn(parentRows))
		}
	}
}
