package dataset

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want SizeTarget
		err  bool
	}{
		{"4096", SizeTarget{Rows: 4096}, false},
		{" 250 ", SizeTarget{Rows: 250}, false},
		{"500B", SizeTarget{Bytes: 500}, false},
		{"100K", SizeTarget{Bytes: 100 << 10}, false},
		{"100M", SizeTarget{Bytes: 100 << 20}, false},
		{"100MB", SizeTarget{Bytes: 100 << 20}, false},
		{"2g", SizeTarget{Bytes: 2 << 30}, false},
		{"", SizeTarget{}, true},
		{"-5", SizeTarget{}, true},
		{"0", SizeTarget{}, true},
		{"12X", SizeTarget{}, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseSize(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// corpusBytes concatenates every chunk the manifest records, in order.
func corpusBytes(t *testing.T, dir string, m *Manifest) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, ch := range m.Chunks {
		raw, err := os.ReadFile(filepath.Join(dir, ch.File))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(raw)) != ch.Bytes {
			t.Errorf("%s: %d bytes on disk, manifest says %d", ch.File, len(raw), ch.Bytes)
		}
		buf.Write(raw)
	}
	return buf.Bytes()
}

// TestStreamResumeBitIdentical is the crash-safety contract end to end:
// interrupt a generation after two chunks, litter the directory with the
// debris a SIGKILL can leave (a torn *.tmp and an unrecorded, truncated
// chunk file), resume, and require the corpus to be byte-identical to an
// uninterrupted run — manifest included.
func TestStreamResumeBitIdentical(t *testing.T) {
	cfg := StreamConfig{
		Dataset: "dmv", Seed: 7, ChunkRows: 64,
		Target: SizeTarget{Rows: 300},
	}
	ctx := context.Background()

	dirA := t.TempDir()
	mA, err := Stream(ctx, dirA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mA.Done || mA.Rows != 300 || len(mA.Chunks) != 5 {
		t.Fatalf("uninterrupted run: done=%v rows=%d chunks=%d", mA.Done, mA.Rows, len(mA.Chunks))
	}

	dirB := t.TempDir()
	ictx, cancel := context.WithCancel(ctx)
	icfg := cfg
	icfg.Progress = func(ch StreamChunk) {
		if ch.Index == 1 {
			cancel() // interrupt after the second chunk commits
		}
	}
	mB, err := Stream(ictx, dirB, icfg)
	if err != context.Canceled {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if len(mB.Chunks) != 2 {
		t.Fatalf("interrupted run committed %d chunks, want 2", len(mB.Chunks))
	}

	// SIGKILL debris: a torn tmp of the next chunk, and — the failure
	// mode the atomic rename exists to prevent becoming real — a
	// truncated chunk file the manifest does not record (as if a
	// non-atomic writer had died mid-write).
	if err := os.WriteFile(filepath.Join(dirB, "vehicles-chunk-000002.csv.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dirB, "vehicles-chunk-000002.csv"), []byte("0.5,trunc"), 0o644); err != nil {
		t.Fatal(err)
	}

	mB2, err := Stream(ctx, dirB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mB2.Done || mB2.Rows != mA.Rows || mB2.Bytes != mA.Bytes {
		t.Fatalf("resumed run: done=%v rows=%d bytes=%d, want rows=%d bytes=%d",
			mB2.Done, mB2.Rows, mB2.Bytes, mA.Rows, mA.Bytes)
	}
	if !bytes.Equal(corpusBytes(t, dirA, mA), corpusBytes(t, dirB, mB2)) {
		t.Error("resumed corpus differs from uninterrupted corpus")
	}
	rawA, _ := os.ReadFile(filepath.Join(dirA, ManifestFile))
	rawB, _ := os.ReadFile(filepath.Join(dirB, ManifestFile))
	if !bytes.Equal(rawA, rawB) {
		t.Errorf("manifests differ:\nA: %s\nB: %s", rawA, rawB)
	}
}

// TestStreamBytesTarget checks the approximate byte-size mode: the
// stream stops at the first chunk boundary past the target, and resume
// under a byte target is bit-identical too.
func TestStreamBytesTarget(t *testing.T) {
	cfg := StreamConfig{
		Dataset: "tpch", Table: "lineitem", Seed: 3, ChunkRows: 32,
		Target: SizeTarget{Bytes: 8 << 10},
	}
	ctx := context.Background()
	dirA := t.TempDir()
	mA, err := Stream(ctx, dirA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mA.Done || mA.Bytes < cfg.Target.Bytes {
		t.Fatalf("byte-target run: done=%v bytes=%d, want ≥ %d", mA.Done, mA.Bytes, cfg.Target.Bytes)
	}
	last := mA.Chunks[len(mA.Chunks)-1]
	if mA.Bytes-last.Bytes >= cfg.Target.Bytes {
		t.Errorf("overshot by more than one chunk: %d bytes, last chunk %d", mA.Bytes, last.Bytes)
	}

	dirB := t.TempDir()
	ictx, cancel := context.WithCancel(ctx)
	icfg := cfg
	icfg.Progress = func(ch StreamChunk) {
		if ch.Index == 0 {
			cancel()
		}
	}
	if _, err := Stream(ictx, dirB, icfg); err != context.Canceled {
		t.Fatalf("interrupted byte-target run: err = %v", err)
	}
	mB, err := Stream(ctx, dirB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(corpusBytes(t, dirA, mA), corpusBytes(t, dirB, mB)) {
		t.Error("byte-target resume differs from uninterrupted run")
	}
}

// TestStreamManifestMismatch: a directory generated under different
// parameters must be refused, not silently mixed.
func TestStreamManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := StreamConfig{Dataset: "dmv", Seed: 1, ChunkRows: 32, Target: SizeTarget{Rows: 40}}
	if _, err := Stream(context.Background(), dir, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	if _, err := Stream(context.Background(), dir, cfg); err == nil {
		t.Fatal("resume with a different seed must fail")
	}
}

// TestStreamConstantMemory: peak heap while streaming a 10× larger
// corpus must not grow with the corpus — the streamer holds one row and
// one chunk writer, never the table. (A materialized 550k-row, 11-col
// table alone would hold ~48 MB of float64 columns.)
func TestStreamConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory profile run skipped in -short mode")
	}
	peak := func(rows int64) uint64 {
		dir := t.TempDir()
		var max uint64
		cfg := StreamConfig{
			Dataset: "dmv", Seed: 11, ChunkRows: 4096,
			Target: SizeTarget{Rows: rows},
			Progress: func(StreamChunk) {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > max {
					max = ms.HeapAlloc
				}
			},
		}
		if _, err := Stream(context.Background(), dir, cfg); err != nil {
			t.Fatal(err)
		}
		return max
	}
	small := peak(55_000)
	large := peak(550_000)
	// Allow generous slack for GC pacing; what must NOT appear is the
	// ~43 MB delta a materialized 495k-row table would add.
	if large > small+16<<20 {
		t.Errorf("peak heap grew with corpus size: %d B at 55k rows vs %d B at 550k rows", small, large)
	}
}
