// Package spn implements a data-driven cardinality estimator in the
// style of DeepDB (Hilprecht et al. 2020, "learn from data, not from
// queries") — the other family of learned CE the paper's §8 discusses.
// A sum-product network is learned over each table: product nodes split
// column groups that are (nearly) independent, sum nodes split rows into
// clusters, and leaves are per-column histograms. Cardinality estimates
// are probabilities of predicate boxes times row counts, combined across
// PK-FK joins with fanout statistics.
//
// Because it never sees a query, the PACE poisoning channel — executed
// queries entering incremental retraining — does not exist for it; it
// appears in the robustness experiments as the data-driven reference.
package spn

import (
	"math"

	"pace/internal/dataset"
	"pace/internal/query"
)

// Config controls SPN structure learning.
type Config struct {
	// MinRows stops row splitting below this cluster size (default 128).
	MinRows int
	// MaxDepth bounds the alternation depth (default 6).
	MaxDepth int
	// CorrThreshold is the absolute Pearson correlation above which two
	// columns are kept in the same product-node group (default 0.3).
	CorrThreshold float64
	// LeafBins is the histogram resolution of leaves (default 32).
	LeafBins int
}

func (c Config) withDefaults() Config {
	if c.MinRows == 0 {
		c.MinRows = 128
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 6
	}
	if c.CorrThreshold == 0 {
		c.CorrThreshold = 0.3
	}
	if c.LeafBins == 0 {
		c.LeafBins = 32
	}
	return c
}

// node is one SPN node: it returns the probability mass of the predicate
// box restricted to its column scope and row population.
type node interface {
	prob(bounds [][2]float64) float64
}

// leaf is a single-column histogram.
type leaf struct {
	col  int // index within the table
	bins []float64
}

func newLeaf(col int, vals []float64, rows []int, nbins int) *leaf {
	l := &leaf{col: col, bins: make([]float64, nbins)}
	for _, r := range rows {
		b := int(vals[r] * float64(nbins))
		if b >= nbins {
			b = nbins - 1
		}
		l.bins[b]++
	}
	total := float64(len(rows))
	for i := range l.bins {
		l.bins[i] /= total
	}
	return l
}

func (l *leaf) prob(bounds [][2]float64) float64 {
	b := bounds[l.col]
	if b[0] <= 0 && b[1] >= 1 {
		return 1
	}
	nbins := len(l.bins)
	var p float64
	for i, mass := range l.bins {
		if mass == 0 {
			continue
		}
		binLo := float64(i) / float64(nbins)
		binHi := float64(i+1) / float64(nbins)
		l := binLo
		if b[0] > l {
			l = b[0]
		}
		r := binHi
		if b[1] < r {
			r = b[1]
		}
		if r > l {
			p += mass * (r - l) / (binHi - binLo)
		}
	}
	return p
}

// product multiplies independent column groups.
type product struct{ children []node }

func (p *product) prob(bounds [][2]float64) float64 {
	out := 1.0
	for _, c := range p.children {
		out *= c.prob(bounds)
	}
	return out
}

// sum mixes row clusters.
type sum struct {
	weights  []float64
	children []node
}

func (s *sum) prob(bounds [][2]float64) float64 {
	var out float64
	for i, c := range s.children {
		out += s.weights[i] * c.prob(bounds)
	}
	return out
}

// TableSPN is a learned SPN over one table.
type TableSPN struct {
	root node
	rows int
}

// LearnTable builds an SPN over all columns of tab.
func LearnTable(tab *dataset.Table, cfg Config) *TableSPN {
	cfg = cfg.withDefaults()
	rows := make([]int, tab.Rows)
	for i := range rows {
		rows[i] = i
	}
	cols := make([]int, len(tab.Cols))
	for i := range cols {
		cols[i] = i
	}
	return &TableSPN{
		root: build(tab, cols, rows, cfg, cfg.MaxDepth, true),
		rows: tab.Rows,
	}
}

// Selectivity returns the estimated fraction of rows satisfying the
// per-column bounds (indexed by table-local column).
func (t *TableSPN) Selectivity(bounds [][2]float64) float64 {
	return t.root.prob(bounds)
}

// Rows returns the table's row count.
func (t *TableSPN) Rows() int { return t.rows }

// build recursively alternates column splits (product) and row splits
// (sum). tryCols avoids repeated failed column splits on the same
// population.
func build(tab *dataset.Table, cols, rows []int, cfg Config, depth int, tryCols bool) node {
	if len(cols) == 1 {
		return newLeaf(cols[0], tab.Cols[cols[0]], rows, cfg.LeafBins)
	}
	if depth <= 0 || len(rows) < cfg.MinRows {
		return independentProduct(tab, cols, rows, cfg)
	}
	if tryCols {
		if groups := splitColumns(tab, cols, rows, cfg.CorrThreshold); len(groups) > 1 {
			p := &product{}
			for _, g := range groups {
				p.children = append(p.children, build(tab, g, rows, cfg, depth-1, false))
			}
			return p
		}
	}
	left, right := splitRows(tab, cols, rows)
	if len(left) == 0 || len(right) == 0 {
		return independentProduct(tab, cols, rows, cfg)
	}
	total := float64(len(rows))
	return &sum{
		weights: []float64{float64(len(left)) / total, float64(len(right)) / total},
		children: []node{
			build(tab, cols, left, cfg, depth-1, true),
			build(tab, cols, right, cfg, depth-1, true),
		},
	}
}

// independentProduct is the base case: one histogram leaf per column.
func independentProduct(tab *dataset.Table, cols, rows []int, cfg Config) node {
	p := &product{}
	for _, c := range cols {
		p.children = append(p.children, newLeaf(c, tab.Cols[c], rows, cfg.LeafBins))
	}
	if len(p.children) == 1 {
		return p.children[0]
	}
	return p
}

// splitColumns groups columns by transitive |Pearson correlation| above
// the threshold (union-find over correlated pairs).
func splitColumns(tab *dataset.Table, cols, rows []int, threshold float64) [][]int {
	n := len(cols)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(pearson(tab.Cols[cols[i]], tab.Cols[cols[j]], rows)) >= threshold {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i, c := range cols {
		r := find(i)
		groups[r] = append(groups[r], c)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	return out
}

// pearson computes the correlation of two columns over a row subset.
func pearson(a, b []float64, rows []int) float64 {
	n := float64(len(rows))
	if n < 2 {
		return 0
	}
	var sa, sb float64
	for _, r := range rows {
		sa += a[r]
		sb += b[r]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for _, r := range rows {
		da, db := a[r]-ma, b[r]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// splitRows 2-means-splits the rows along the column with the highest
// variance (one Lloyd iteration from the median — cheap and adequate for
// structure learning).
func splitRows(tab *dataset.Table, cols, rows []int) (left, right []int) {
	bestCol, bestVar := cols[0], -1.0
	for _, c := range cols {
		v := variance(tab.Cols[c], rows)
		if v > bestVar {
			bestVar, bestCol = v, c
		}
	}
	col := tab.Cols[bestCol]
	var mean float64
	for _, r := range rows {
		mean += col[r]
	}
	mean /= float64(len(rows))
	for _, r := range rows {
		if col[r] < mean {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	return left, right
}

func variance(col []float64, rows []int) float64 {
	n := float64(len(rows))
	var s, ss float64
	for _, r := range rows {
		s += col[r]
		ss += col[r] * col[r]
	}
	m := s / n
	return ss/n - m*m
}

// Estimator is a data-driven CE over a whole dataset: one SPN per table
// plus PK-FK fanout statistics for joins.
type Estimator struct {
	ds     *dataset.Dataset
	tables []*TableSPN
	fanout []float64
}

// New learns SPNs over every table of ds.
func New(ds *dataset.Dataset, cfg Config) *Estimator {
	e := &Estimator{ds: ds}
	for _, tab := range ds.Tables {
		e.tables = append(e.tables, LearnTable(tab, cfg))
	}
	e.fanout = make([]float64, len(ds.Edges))
	for ei, edge := range ds.Edges {
		e.fanout[ei] = float64(len(edge.Refs)) / float64(ds.Tables[edge.Parent].Rows)
	}
	return e
}

// tableBounds slices the query's global bounds down to table t's columns.
func (e *Estimator) tableBounds(t int, q *query.Query) [][2]float64 {
	lo, hi := e.ds.Meta.Attrs(t)
	return q.Bounds[lo:hi]
}

// Estimate returns the SPN-based cardinality estimate of q, traversing
// the join tree like the histogram estimator but with SPN selectivities
// (which capture intra-table correlations the independence assumption
// loses).
func (e *Estimator) Estimate(q *query.Query) float64 {
	var selected []int
	for t, in := range q.Tables {
		if in {
			selected = append(selected, t)
		}
	}
	if len(selected) == 0 {
		return 0
	}
	root := selected[0]
	est := float64(e.tables[root].Rows()) * e.tables[root].Selectivity(e.tableBounds(root, q))
	visited := map[int]bool{root: true}
	frontier := []int{root}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for ei, edge := range e.ds.Edges {
			var other int
			var isChild bool
			switch {
			case edge.Parent == cur:
				other, isChild = edge.Child, true
			case edge.Child == cur:
				other, isChild = edge.Parent, false
			default:
				continue
			}
			if visited[other] || !q.Tables[other] {
				continue
			}
			visited[other] = true
			frontier = append(frontier, other)
			sel := e.tables[other].Selectivity(e.tableBounds(other, q))
			if isChild {
				est *= e.fanout[ei] * sel
			} else {
				est *= sel
			}
		}
	}
	return est
}
