package spn

import (
	"math/rand"
	"testing"

	"pace/internal/ce"
	"pace/internal/dataset"
	"pace/internal/engine"
	"pace/internal/query"
	"pace/internal/workload"
)

func spnSetup(t *testing.T, name string, seed int64) (*dataset.Dataset, *engine.Engine, *workload.Generator) {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(ds)
	return ds, eng, workload.NewGenerator(ds, eng, rand.New(rand.NewSource(seed)))
}

func TestSPNSingleTableAccuracy(t *testing.T) {
	ds, _, gen := spnSetup(t, "dmv", 1)
	e := New(ds, Config{})
	w := gen.Random(60)
	var sum float64
	for _, l := range w {
		sum += ce.QError(e.Estimate(l.Q), l.Card)
	}
	qe := sum / float64(len(w))
	t.Logf("SPN mean q-error on dmv: %.2f", qe)
	if qe > 50 {
		t.Errorf("SPN mean q-error %.1f too large", qe)
	}
}

func TestSPNBeatsIndependenceOnCorrelatedData(t *testing.T) {
	// Build a two-column table with strong correlation (y ≈ x). An SPN
	// with row splits should estimate the diagonal box far better than a
	// pure independence product.
	rng := rand.New(rand.NewSource(2))
	spec := dataset.Spec{
		Name: "corr",
		Tables: []dataset.TableSpec{{
			Name: "t", Rows: 4000,
			Cols: []dataset.ColumnSpec{
				{Name: "x", Dist: dataset.Uniform},
				{Name: "y", Dist: dataset.Correlated},
			},
		}},
	}
	ds, err := dataset.Materialize(spec, dataset.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(ds)

	// Anti-diagonal box: x small AND y large — nearly empty under the
	// correlation, but "independent" estimators see sel(x)·sel(y).
	q := query.New(ds.Meta)
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0, 0.25}
	q.Bounds[1] = [2]float64{0.75, 1}
	truth, _ := eng.Cardinality(q)

	spnEst := New(ds, Config{}).Estimate(q)
	indep := New(ds, Config{CorrThreshold: 2, MaxDepth: 1, MinRows: 1 << 30}).Estimate(q)

	spnErr := ce.QError(spnEst, truth)
	indepErr := ce.QError(indep, truth)
	t.Logf("truth=%.0f spn=%.1f (q=%.2f) independence=%.1f (q=%.2f)",
		truth, spnEst, spnErr, indep, indepErr)
	if spnErr >= indepErr {
		t.Errorf("SPN (%.2f) no better than independence (%.2f) on correlated box", spnErr, indepErr)
	}
	_ = rng
}

func TestSPNJoinEstimates(t *testing.T) {
	ds, eng, gen := spnSetup(t, "tpch", 3)
	e := New(ds, Config{})
	gen.MaxJoinTables = 3
	var sum float64
	n := 0
	for _, l := range gen.Random(40) {
		if l.Q.NumTables() < 2 {
			continue
		}
		truth, _ := eng.Cardinality(l.Q)
		sum += ce.QError(e.Estimate(l.Q), truth)
		n++
	}
	if n == 0 {
		t.Skip("no join queries drawn")
	}
	qe := sum / float64(n)
	t.Logf("SPN mean join q-error on tpch: %.2f (n=%d)", qe, n)
	if qe > 200 {
		t.Errorf("SPN join q-error %.1f too large", qe)
	}
}

func TestSPNProbabilityAxioms(t *testing.T) {
	ds, _, _ := spnSetup(t, "stats", 4)
	spn := LearnTable(ds.Tables[0], Config{})
	open := make([][2]float64, len(ds.Tables[0].Cols))
	for i := range open {
		open[i] = [2]float64{0, 1}
	}
	if p := spn.Selectivity(open); p < 0.999 || p > 1.001 {
		t.Errorf("P(open box) = %g, want 1", p)
	}
	empty := make([][2]float64, len(open))
	for i := range empty {
		empty[i] = [2]float64{0.5, 0.5}
	}
	if p := spn.Selectivity(empty); p < 0 || p > 1 {
		t.Errorf("P outside [0,1]: %g", p)
	}
	// Monotone in box widening.
	narrow := make([][2]float64, len(open))
	wide := make([][2]float64, len(open))
	for i := range narrow {
		narrow[i] = [2]float64{0.3, 0.5}
		wide[i] = [2]float64{0.2, 0.7}
	}
	if spn.Selectivity(wide) < spn.Selectivity(narrow) {
		t.Error("selectivity not monotone under widening")
	}
}

func TestSPNEmptyQuery(t *testing.T) {
	ds, _, _ := spnSetup(t, "dmv", 5)
	e := New(ds, Config{})
	if e.Estimate(query.New(ds.Meta)) != 0 {
		t.Error("empty table set should estimate 0")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MinRows != 128 || c.MaxDepth != 6 || c.LeafBins != 32 {
		t.Errorf("defaults = %+v", c)
	}
}
