package generator

import (
	"math/rand"
	"testing"

	"pace/internal/dataset"
	"pace/internal/nn"
	"pace/internal/query"
)

func genSetup(t *testing.T, name string, seed int64) (*Generator, *dataset.Dataset, *rand.Rand) {
	t.Helper()
	ds, err := dataset.Build(name, dataset.Config{Scale: 0.05, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(ds.Meta, ds.Joinable, Config{Hidden: 16}, rng)
	return g, ds, rng
}

func TestGeneratedQueriesAreValid(t *testing.T) {
	for _, name := range []string{"dmv", "tpch", "imdb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			g, ds, rng := genSetup(t, name, 1)
			for _, s := range g.Generate(40, rng) {
				if !s.Query.Connected(ds.Joinable) {
					t.Fatal("generated query has disconnected join")
				}
				for a, b := range s.Query.Bounds {
					if b[0] < 0 || b[1] > 1 || b[0] > b[1] {
						t.Fatalf("attr %d bounds %v invalid", a, b)
					}
				}
				// Masked attributes must be fully open.
				for a := range s.Query.Bounds {
					tbl := ds.Meta.TableOf(a)
					if !s.Query.Tables[tbl] && s.Query.Bounds[a] != [2]float64{0, 1} {
						t.Fatalf("non-joined attr %d has bounds %v", a, s.Query.Bounds[a])
					}
				}
				if len(s.V) != ds.Meta.Dim() {
					t.Fatalf("encoding dim %d, want %d", len(s.V), ds.Meta.Dim())
				}
			}
		})
	}
}

func TestUpperBoundConstruction(t *testing.T) {
	ds, err := dataset.Build("dmv", dataset.Config{Scale: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	g := New(ds.Meta, ds.Joinable, Config{Hidden: 16, SnapEps: -1}, rng)
	s := g.GenerateOne(rng)
	nT := ds.Meta.NumTables()
	for a := 0; a < ds.Meta.NumAttrs(); a++ {
		tbl := ds.Meta.TableOf(a)
		if s.BJ[tbl] <= 0.5 {
			continue
		}
		lb, hi := s.V[nT+2*a], s.V[nT+2*a+1]
		wantHi := s.LB[a] + s.RS[a]*(1-s.LB[a])
		if lb != s.LB[a] || hi != wantHi {
			t.Fatalf("attr %d: encoded (%g,%g), want (%g,%g)", a, lb, hi, s.LB[a], wantHi)
		}
		if hi < lb || hi > 1 {
			t.Fatalf("attr %d: hi=%g out of range", a, hi)
		}
	}
}

func TestSnapOpensBroadBounds(t *testing.T) {
	// With the default bias and snapping, a fresh generator's queries
	// should be (nearly) fully open and therefore non-empty.
	g, ds, rng := genSetup(t, "dmv", 12)
	open := 0
	total := 0
	for _, s := range g.Generate(20, rng) {
		for a, b := range s.Query.Bounds {
			_ = a
			total++
			if b[0] == 0 && b[1] == 1 {
				open++
			}
		}
	}
	if open == 0 {
		t.Error("no generated bound snapped fully open despite broad bias")
	}
	_ = ds
}

func TestBackwardGradientFlow(t *testing.T) {
	// Validate the generator's analytic gradient chain against finite
	// differences of a scalar loss on the assembled encoding.
	ds, err := dataset.Build("tpch", dataset.Config{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	g := New(ds.Meta, ds.Joinable, Config{Hidden: 16, SnapEps: -1}, rng)
	s := g.GenerateOne(rng)

	// Loss = 0.5·Σ v_i² over the predicate part of the encoding.
	loss := func() float64 {
		lb := g.Gl.Forward(s.In)
		rs := g.Gr.Forward(s.In)
		tmp := &Sample{BJ: s.BJ, LB: lb, RS: rs}
		v := g.assemble(tmp)
		var sum float64
		nT := ds.Meta.NumTables()
		for i := nT; i < len(v); i++ {
			sum += 0.5 * v[i] * v[i]
		}
		return sum
	}

	// Analytic: dLoss/dV on the predicate part is V itself.
	dV := make([]float64, len(s.V))
	nT := ds.Meta.NumTables()
	for i := nT; i < len(dV); i++ {
		dV[i] = s.V[i]
	}
	ps := g.Params()
	nn.ZeroGrads(ps)
	g.Backward(s, dV)
	analytic := nn.FlattenGrads(ps)
	numeric := nn.NumericGrad(loss, ps, 1e-5)
	if d := nn.MaxAbsDiff(analytic, numeric); d > 1e-5 {
		t.Errorf("generator gradient mismatch: %g", d)
	}
}

func TestStepChangesOutput(t *testing.T) {
	g, ds, rng := genSetup(t, "dmv", 4)
	s := g.GenerateOne(rng)
	before := nn.CopyOf(s.V)

	// Push all predicate encodings downward.
	dV := make([]float64, len(s.V))
	for i := ds.Meta.NumTables(); i < len(dV); i++ {
		dV[i] = 1
	}
	for i := 0; i < 20; i++ {
		g.Backward(s, dV)
		g.Step(1)
	}
	lb := g.Gl.Forward(s.In)
	sum := func(v []float64) float64 {
		var x float64
		for _, y := range v {
			x += y
		}
		return x
	}
	if sum(lb) >= sum(s.LB) {
		t.Errorf("descending on encoding did not reduce lower bounds: %g → %g",
			sum(s.LB), sum(lb))
	}
	_ = before
}

func TestTrainJoinImprovesValidity(t *testing.T) {
	// On a multi-table schema, an untrained Gj produces many invalid
	// patterns; Eq. 8 training on accepted patterns should raise the
	// first-shot validity rate.
	g, _, rng := genSetup(t, "imdb", 5)
	before := g.ValidFraction(200, rng)
	for i := 0; i < 30; i++ {
		batch := g.Generate(16, rng)
		g.TrainJoin(batch)
	}
	after := g.ValidFraction(200, rng)
	if after < before {
		t.Errorf("join validity degraded: %.3f → %.3f", before, after)
	}
	if after < 0.3 {
		t.Errorf("join validity after training only %.3f", after)
	}
}

func TestSingleTableSchemaAlwaysValid(t *testing.T) {
	g, _, rng := genSetup(t, "dmv", 6)
	for _, s := range g.Generate(20, rng) {
		if s.Query.NumTables() != 1 {
			t.Fatalf("dmv query joins %d tables", s.Query.NumTables())
		}
	}
}

func TestFallbackOnHopelessGj(t *testing.T) {
	// With MaxReject=0 on a multi-table schema, fallback may trigger;
	// generated samples must still be valid queries.
	ds, err := dataset.Build("imdb", dataset.Config{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	g := New(ds.Meta, ds.Joinable, Config{Hidden: 8, MaxReject: 1}, rng)
	sawFallback := false
	for i := 0; i < 50; i++ {
		s := g.GenerateOne(rng)
		if !s.Query.Connected(ds.Joinable) {
			t.Fatal("fallback sample invalid")
		}
		if s.Fallback {
			sawFallback = true
			if s.Query.NumTables() != 1 {
				t.Error("fallback should pick a single table")
			}
		}
	}
	_ = sawFallback // fallback is probabilistic; validity is the invariant
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.NoiseDim != 8 || c.LayersJ != 4 || c.LayersL != 5 || c.LayersR != 5 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	ds, _ := dataset.Build("tpch", dataset.Config{Scale: 0.05, Seed: 8})
	g1 := New(ds.Meta, ds.Joinable, Config{Hidden: 8}, rand.New(rand.NewSource(9)))
	g2 := New(ds.Meta, ds.Joinable, Config{Hidden: 8}, rand.New(rand.NewSource(9)))
	s1 := g1.GenerateOne(rand.New(rand.NewSource(10)))
	s2 := g2.GenerateOne(rand.New(rand.NewSource(10)))
	if nn.MaxAbsDiff(s1.V, s2.V) != 0 {
		t.Error("same seeds produced different samples")
	}
}

func TestDecodeEncodingConsistency(t *testing.T) {
	g, ds, rng := genSetup(t, "stats", 11)
	for i := 0; i < 10; i++ {
		s := g.GenerateOne(rng)
		v2 := s.Query.Encode(ds.Meta)
		// Join bits and masked bounds round-trip exactly; predicate
		// bounds may differ only by Normalize's clamping (none needed
		// here since generation keeps them in range).
		if nn.MaxAbsDiff(s.V, v2) > 1e-12 {
			t.Fatalf("sample %d: encoding does not round-trip through Query", i)
		}
	}
}

var _ = query.New // keep query import for documentation examples
