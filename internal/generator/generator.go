// Package generator implements the PACE poisoning-query generator (§5.2):
// three cooperating sub-networks fed with Gaussian noise.
//
//   - Gj, the join-predicate generator, maps noise to a per-table sigmoid
//     vector; invalid join patterns (disconnected under the schema's join
//     graph) are rejection-sampled away and the accepted binary patterns
//     supervise Gj through the cross-entropy loss of Eq. 8.
//   - Gl, the lower-bound generator, and Gr, the range-size generator, map
//     (noise ‖ binary join vector) to per-attribute sigmoids. The upper
//     bound is lb + rs·(1−lb) — the smooth form of "lower bound plus range
//     size" that keeps bounds ordered and inside [0, 1] by construction.
//
// Attributes of tables outside the join predicate are masked to the open
// range [0, 1] (and receive no gradient), exactly as §5.2 prescribes.
package generator

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"pace/internal/nn"
	"pace/internal/query"
)

// Config sizes the generator networks. The defaults mirror the paper's
// hyperparameter table: Gj has 4 dense layers, Gl and Gr have 5.
type Config struct {
	// NoiseDim is the dimension of the Gaussian noise inputs (default 8).
	NoiseDim int
	// Hidden is the hidden width of all three networks (default 32).
	Hidden int
	// LayersJ, LayersL, LayersR are the total dense-layer counts
	// (defaults 4, 5, 5).
	LayersJ, LayersL, LayersR int
	// MaxReject bounds the join-pattern rejection-sampling attempts per
	// query before falling back to a random single-table pattern
	// (default 32).
	MaxReject int
	// SnapEps snaps generated bounds within SnapEps of the domain edges
	// to exactly 0 or 1 (default 0.05; set negative to disable). Data
	// columns carry probability mass exactly at the edges (skewed and
	// quantized values), and a sigmoid can approach but never reach
	// them — without snapping, every "wide open" predicate silently
	// excludes the edge values. Gradients pass straight through the
	// snap.
	SnapEps float64
	// LR is the Adam learning rate for all generator networks
	// (default 1e-3, the paper's setting).
	LR float64
}

func (c Config) withDefaults() Config {
	if c.NoiseDim == 0 {
		c.NoiseDim = 8
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.LayersJ == 0 {
		c.LayersJ = 4
	}
	if c.LayersL == 0 {
		c.LayersL = 5
	}
	if c.LayersR == 0 {
		c.LayersR = 5
	}
	if c.MaxReject == 0 {
		c.MaxReject = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.SnapEps == 0 {
		c.SnapEps = 0.05
	}
	return c
}

// Generator holds the three sub-generators and their optimizers.
type Generator struct {
	meta     *query.Meta
	joinable func(i, j int) bool
	cfg      Config

	Gj *nn.MLP
	Gl *nn.MLP
	Gr *nn.MLP

	optJ  *nn.Adam
	optLR *nn.Adam
}

// New builds a generator over the schema meta; joinable is the schema's
// join-graph adjacency used for validity checking.
func New(meta *query.Meta, joinable func(i, j int) bool, cfg Config, rng *rand.Rand) *Generator {
	cfg = cfg.withDefaults()
	nT, nA := meta.NumTables(), meta.NumAttrs()
	g := &Generator{meta: meta, joinable: joinable, cfg: cfg}

	g.Gj = nn.NewMLP("gen.Gj", mlpSizes(cfg.NoiseDim, cfg.Hidden, cfg.LayersJ, nT),
		nn.NewReLU, nn.NewSigmoid, rng)
	inLR := cfg.NoiseDim + nT
	g.Gl = nn.NewMLP("gen.Gl", mlpSizes(inLR, cfg.Hidden, cfg.LayersL, nA),
		nn.NewReLU, nn.NewSigmoid, rng)
	g.Gr = nn.NewMLP("gen.Gr", mlpSizes(inLR, cfg.Hidden, cfg.LayersR, nA),
		nn.NewReLU, nn.NewSigmoid, rng)
	// Bias the untrained generator toward broad predicates (small lower
	// bounds, large range sizes). A fresh sigmoid head centers every
	// bound near 0.5; with one range predicate per attribute that makes
	// almost every initial query empty, and empty queries are eliminated
	// from CE training (§2.1) — no cardinality, no gradient, no learning
	// signal. Starting broad keeps early queries non-empty so the attack
	// objective can narrow them where it pays off.
	setOutputBias(g.Gl, -3)
	setOutputBias(g.Gr, 3)

	g.optJ = nn.NewAdam(g.Gj.Params(), cfg.LR)
	g.optLR = nn.NewAdam(append(g.Gl.Params(), g.Gr.Params()...), cfg.LR)
	return g
}

// setOutputBias sets the bias of an MLP's final dense layer to a constant
// (the layer before the sigmoid head).
func setOutputBias(m *nn.MLP, b float64) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if d, ok := m.Layers[i].(*nn.Dense); ok {
			for j := range d.B.W {
				d.B.W[j] = b
			}
			return
		}
	}
}

// mlpSizes builds a size chain with `layers` dense layers from in to out.
func mlpSizes(in, hidden, layers, out int) []int {
	sizes := []int{in}
	for i := 0; i < layers-1; i++ {
		sizes = append(sizes, hidden)
	}
	return append(sizes, out)
}

// Meta returns the schema meta the generator emits queries for.
func (g *Generator) Meta() *query.Meta { return g.meta }

// Params returns the predicate generators' parameters (Gl and Gr) — the
// ones updated by the attack objective's gradient. Gj is trained
// separately through Eq. 8 (see TrainJoin).
func (g *Generator) Params() []*nn.Param {
	return append(g.Gl.Params(), g.Gr.Params()...)
}

// AllParams returns every trainable parameter (Gj, then Gl, then Gr) —
// the full state a checkpoint must capture.
func (g *Generator) AllParams() []*nn.Param {
	return append(g.Gj.Params(), g.Params()...)
}

// SaveState serializes the generator's full training state: all three
// networks' parameters plus both Adam optimizers' moment estimates, so
// a resumed attack campaign continues exactly where it stopped.
func (g *Generator) SaveState() []byte {
	blobs := [][]byte{
		nn.SaveParams(g.AllParams()),
		g.optJ.SaveState(),
		g.optLR.SaveState(),
	}
	var buf bytes.Buffer
	for _, b := range blobs {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
		buf.Write(hdr[:])
		buf.Write(b)
	}
	return buf.Bytes()
}

// LoadState restores state saved by SaveState into a generator built
// with the same configuration and schema.
func (g *Generator) LoadState(blob []byte) error {
	var blobs [][]byte
	for off := 0; off < len(blob); {
		if off+4 > len(blob) {
			return errors.New("generator: corrupt state blob")
		}
		n := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		off += 4
		if off+n > len(blob) {
			return errors.New("generator: corrupt state blob")
		}
		blobs = append(blobs, blob[off:off+n])
		off += n
	}
	if len(blobs) != 3 {
		return fmt.Errorf("generator: state blob has %d sections, want 3", len(blobs))
	}
	if err := nn.LoadParams(g.AllParams(), blobs[0]); err != nil {
		return err
	}
	if err := g.optJ.LoadState(blobs[1]); err != nil {
		return err
	}
	return g.optLR.LoadState(blobs[2])
}

// Sample is one generated poisoning query with every intermediate value
// needed for backprop.
type Sample struct {
	// ZJ and Z are the Gaussian noise inputs of Gj and of Gl/Gr.
	ZJ, Z []float64
	// VJ is Gj's raw sigmoid output for the accepted pattern; BJ is its
	// binarization.
	VJ, BJ []float64
	// In is the (Z ‖ BJ) input shared by Gl and Gr.
	In []float64
	// LB and RS are Gl's and Gr's sigmoid outputs.
	LB, RS []float64
	// V is the final query encoding (BJ ‖ bounds, masked).
	V []float64
	// Query is the decoded SPJ query.
	Query *query.Query
	// Rejected counts how many join patterns were rejected before
	// acceptance; Fallback reports whether rejection sampling gave up.
	Rejected int
	Fallback bool
}

// Generate draws n poisoning queries.
func (g *Generator) Generate(n int, rng *rand.Rand) []*Sample {
	out := make([]*Sample, n)
	for i := range out {
		out[i] = g.GenerateOne(rng)
	}
	return out
}

// GenerateOne draws a single poisoning query: rejection-sample a valid
// join pattern from Gj, then generate masked predicate bounds from Gl/Gr.
func (g *Generator) GenerateOne(rng *rand.Rand) *Sample {
	s := &Sample{}
	nT := g.meta.NumTables()

	for attempt := 0; ; attempt++ {
		s.ZJ = gaussian(g.cfg.NoiseDim, rng)
		s.VJ = nn.CopyOf(g.Gj.Forward(s.ZJ))
		s.BJ = binarize(s.VJ)
		if validJoin(s.BJ, g.joinable) {
			break
		}
		s.Rejected++
		if attempt >= g.cfg.MaxReject {
			// Give up on Gj for this sample: a random single table
			// is always a valid join predicate.
			s.BJ = make([]float64, nT)
			s.BJ[rng.Intn(nT)] = 1
			s.Fallback = true
			break
		}
	}

	s.Z = gaussian(g.cfg.NoiseDim, rng)
	s.In = append(nn.CopyOf(s.Z), s.BJ...)
	s.LB = nn.CopyOf(g.Gl.Forward(s.In))
	s.RS = nn.CopyOf(g.Gr.Forward(s.In))

	s.V = g.assemble(s)
	q, err := query.Decode(g.meta, s.V)
	if err != nil {
		panic("generator: internal encoding mismatch: " + err.Error())
	}
	s.Query = q
	return s
}

// assemble builds the encoding from the sample's parts, applying the
// §5.2 mask: attributes of non-joined tables get the open range [0, 1].
func (g *Generator) assemble(s *Sample) []float64 {
	nT, nA := g.meta.NumTables(), g.meta.NumAttrs()
	v := make([]float64, g.meta.Dim())
	copy(v, s.BJ)
	for a := 0; a < nA; a++ {
		t := g.meta.TableOf(a)
		if s.BJ[t] > 0.5 {
			lb := s.LB[a]
			hi := lb + s.RS[a]*(1-lb)
			if g.cfg.SnapEps > 0 {
				if lb < g.cfg.SnapEps {
					lb = 0
				}
				if hi > 1-g.cfg.SnapEps {
					hi = 1
				}
			}
			v[nT+2*a] = lb
			v[nT+2*a+1] = hi
		} else {
			v[nT+2*a] = 0
			v[nT+2*a+1] = 1
		}
	}
	return v
}

// Backward propagates dV — the attack loss gradient with respect to the
// sample's encoding — into Gl and Gr parameter gradients. It re-runs the
// forward passes to restore layer caches, so it may be called for any
// sample in any order. Gradients accumulate until Step.
func (g *Generator) Backward(s *Sample, dV []float64) {
	nT, nA := g.meta.NumTables(), g.meta.NumAttrs()
	dLB := make([]float64, nA)
	dRS := make([]float64, nA)
	for a := 0; a < nA; a++ {
		t := g.meta.TableOf(a)
		if s.BJ[t] <= 0.5 {
			continue // masked attribute: no gradient
		}
		dLo := dV[nT+2*a]
		dHi := dV[nT+2*a+1]
		// v_hi = lb + rs·(1−lb) ⇒ ∂hi/∂lb = 1−rs, ∂hi/∂rs = 1−lb.
		dLB[a] = dLo + dHi*(1-s.RS[a])
		dRS[a] = dHi * (1 - s.LB[a])
	}
	g.Gl.Forward(s.In)
	g.Gl.Backward(dLB)
	g.Gr.Forward(s.In)
	g.Gr.Backward(dRS)
}

// Step applies the accumulated Gl/Gr gradients, scaled by 1/batch.
func (g *Generator) Step(batch int) {
	if batch <= 0 {
		batch = 1
	}
	g.optLR.Step(1 / float64(batch))
}

// TrainJoin applies one Eq. 8 cross-entropy step pulling Gj's raw outputs
// toward the accepted binary join patterns of the batch, which sharpens
// Gj's ability to emit schema-valid joins. Fallback samples are skipped
// (their pattern did not come from Gj).
func (g *Generator) TrainJoin(batch []*Sample) {
	n := 0
	for _, s := range batch {
		if s.Fallback {
			continue
		}
		v := g.Gj.Forward(s.ZJ)
		d := make([]float64, len(v))
		for i := range v {
			// d/dv of binary cross-entropy; the sigmoid output layer
			// turns this into the usual (v − b) pre-activation grad.
			p := nn.Clamp(v[i], 1e-6, 1-1e-6)
			d[i] = (p - s.BJ[i]) / (p * (1 - p))
		}
		g.Gj.Backward(d)
		n++
	}
	if n > 0 {
		g.optJ.Step(1 / float64(n))
	}
}

// ValidFraction reports the fraction of n freshly sampled Gj patterns
// that are schema-valid without rejection (a Gj training diagnostic).
func (g *Generator) ValidFraction(n int, rng *rand.Rand) float64 {
	ok := 0
	for i := 0; i < n; i++ {
		v := g.Gj.Forward(gaussian(g.cfg.NoiseDim, rng))
		if validJoin(binarize(v), g.joinable) {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

func gaussian(n int, rng *rand.Rand) []float64 {
	z := make([]float64, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	return z
}

func binarize(v []float64) []float64 {
	b := make([]float64, len(v))
	for i, x := range v {
		if x > 0.5 {
			b[i] = 1
		}
	}
	return b
}

// validJoin reports whether the binary pattern selects a non-empty
// connected table set.
func validJoin(b []float64, joinable func(i, j int) bool) bool {
	q := &query.Query{Tables: make([]bool, len(b))}
	any := false
	for i, x := range b {
		if x > 0.5 {
			q.Tables[i] = true
			any = true
		}
	}
	if !any {
		return false
	}
	return q.Connected(joinable)
}
