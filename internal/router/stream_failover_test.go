package router_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strconv"
	"testing"
	"time"

	"pace/internal/router"
	"pace/internal/wire"
)

// streamHelpers: raw HTTP against the router's streamed-execute proxy,
// binary chunk bodies, explicit seq headers.

func openExec(t *testing.T, f *fleet, id, token string) int {
	t.Helper()
	var er wire.ExecutionResponse
	resp, _ := doJSON(t, http.MethodPost, f.url+"/v1/targets/"+id+"/executions",
		wire.OpenExecutionRequest{V: wire.Version, Token: token}, &er, "streamer")
	return resp.StatusCode
}

func binChunk(t *testing.T, f *fleet, id, token string, seq int64, card float64) int {
	t.Helper()
	blob, err := wire.Binary.EncodeExecuteRequest(&wire.ExecuteRequest{
		V:       wire.Version,
		Queries: []wire.Query{openQuery()},
		Cards:   wire.FromFloats([]float64{card}),
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost,
		f.url+"/v1/targets/"+id+"/executions/"+token, bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.BinaryContentType)
	req.Header.Set(wire.ChunkSeqHeader, strconv.FormatInt(seq, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp.StatusCode
}

// chunkUntilAcked rides failover 503s: the same (token, seq) is
// resubmitted until the fleet acks it — the protocol's idempotency key
// makes this safe even if an earlier attempt was applied but its ack
// lost.
func chunkUntilAcked(t *testing.T, f *fleet, id, token string, seq int64, card float64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		switch code := binChunk(t, f, id, token, seq, card); code {
		case http.StatusAccepted:
			return
		case http.StatusServiceUnavailable, http.StatusTooManyRequests:
			if time.Now().After(deadline) {
				t.Fatalf("chunk %d still shedding at deadline", seq)
			}
			time.Sleep(10 * time.Millisecond)
		default:
			t.Fatalf("chunk %d: status %d", seq, code)
		}
	}
}

func pollUntilDone(t *testing.T, f *fleet, id, token string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(f.url + "/v1/targets/" + id + "/executions/" + token)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var er wire.ExecutionResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("poll decode: %v (%s)", err, raw)
			}
			if er.State == wire.ExecutionFailed {
				t.Fatalf("execution failed on the server: %s", er.Error)
			}
			if er.State == wire.ExecutionDone {
				return
			}
		} else if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("poll: status %d (%s)", resp.StatusCode, raw)
		}
		if time.Now().After(deadline) {
			t.Fatal("execution never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailoverMidStreamExactlyOnce kills the hosting backend in the
// middle of a streamed execute and asserts the strongest property the
// protocol promises: after failover replay plus a full whole-stream
// client retry, every chunk has been applied exactly once, in order.
// seqTarget's order-sensitive fold makes any drop, duplicate, or
// reorder visible in the estimate bits.
func TestFailoverMidStreamExactlyOnce(t *testing.T) {
	f := newFleet(t, 2, router.Config{})
	if resp, _ := createTenant(t, f, "t", "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}

	const token = "stream-failover-1"
	cards := []float64{3, 1, 4, 1}

	if code := openExec(t, f, "t", token); code != http.StatusOK {
		t.Fatalf("open: %d", code)
	}
	// First half of the stream lands on the original host.
	chunkUntilAcked(t, f, "t", token, 0, cards[0])
	chunkUntilAcked(t, f, "t", token, 1, cards[1])
	// A retry after a lost ack: the router's journal dedupes it without
	// re-applying (202 either way).
	if code := binChunk(t, f, "t", token, 1, cards[1]); code != http.StatusAccepted {
		t.Fatalf("duplicate chunk resubmit: %d", code)
	}

	victim, victimURL := f.hostOf(t, "t")
	victim.Kill()

	// Second half rides the failover: the router replays the journaled
	// chunks into a fresh backend, re-opens the execution there, and the
	// retried chunks apply exactly once.
	chunkUntilAcked(t, f, "t", token, 2, cards[2])
	chunkUntilAcked(t, f, "t", token, 3, cards[3])
	pollUntilDone(t, f, "t", token)

	// Exactly-once, in-order: the rebuilt world's fold must match a
	// local replay of the stream.
	sum := 0.0
	for _, c := range cards {
		sum = math.Mod(sum*3+c, 1e9)
	}
	want := 0.25*1000 + sum
	got, code, werr := estimate(t, f, "t")
	if code != http.StatusOK {
		t.Fatalf("post-failover estimate: %d (%q)", code, werr.Code)
	}
	if got != want {
		t.Fatalf("post-failover estimate %v, want %v — stream dropped, duplicated, or reordered a chunk", got, want)
	}
	if _, host := f.hostOf(t, "t"); host == victimURL {
		t.Fatal("tenant still placed on the killed backend")
	}

	// Whole-stream retry (what the client's resilience layer does after
	// a transport error): same token, every chunk again. The (token,
	// seq) ledger must swallow all of it.
	if code := openExec(t, f, "t", token); code != http.StatusOK {
		t.Fatalf("retry open: %d", code)
	}
	for seq, c := range cards {
		if code := binChunk(t, f, "t", token, int64(seq), c); code != http.StatusAccepted {
			t.Fatalf("retry chunk %d: %d", seq, code)
		}
	}
	pollUntilDone(t, f, "t", token)
	got, code, _ = estimate(t, f, "t")
	if code != http.StatusOK {
		t.Fatalf("post-retry estimate: %d", code)
	}
	if got != want {
		t.Fatalf("whole-stream retry re-applied chunks: estimate %v, want unchanged %v", got, want)
	}
}
