package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/router"
	"pace/internal/targetserver"
	"pace/internal/tenant"
	"pace/internal/wire"
)

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a", "b"},
		AttrNames:  []string{"a0", "a1", "b0"},
		AttrOffset: []int{0, 2, 3},
	}
}

func openQuery() wire.Query {
	return wire.Query{
		Tables: []int{0},
		Bounds: [][2]wire.B64{
			{wire.FromFloat(0.25), wire.FromFloat(0.75)},
			{wire.FromFloat(0), wire.FromFloat(1)},
			{wire.FromFloat(0), wire.FromFloat(1)},
		},
	}
}

// seqTarget's estimate is a deterministic, ORDER-SENSITIVE function of
// its execute history: sum' = sum*3 + card, folded per card. Two worlds
// answer bit-identical estimates iff they absorbed the same executes in
// the same order — exactly the property journal replay must restore.
type seqTarget struct {
	mu  sync.Mutex
	sum float64
}

func (s *seqTarget) EstimateContext(_ context.Context, q *query.Query) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return q.Bounds[0][0]*1000 + s.sum, nil
}

func (s *seqTarget) ExecuteWorkload(_ context.Context, _ []*query.Query, cards []float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cards {
		s.sum = math.Mod(s.sum*3+c, 1e9)
	}
	return nil
}

func seqFactory(_ context.Context, _ tenant.Spec) (ce.Target, *query.Meta, error) {
	return &seqTarget{}, testMeta(), nil
}

// fleet is n real paced backends (own listeners, so Kill can crash one)
// behind one router.
type fleet struct {
	rt      *router.Router
	url     string
	servers []*targetserver.Server
	urls    []string
}

func newFleet(t *testing.T, n int, rcfg router.Config) *fleet {
	t.Helper()
	f := &fleet{}
	for i := 0; i < n; i++ {
		cfg := targetserver.Config{Factory: seqFactory}
		reg := tenant.NewRegistry(cfg.Factory, cfg.TenantConfig())
		srv := targetserver.NewMulti(reg, cfg)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		f.servers = append(f.servers, srv)
		f.urls = append(f.urls, "http://"+addr)
	}
	rcfg.Backends = f.urls
	if rcfg.HealthInterval == 0 {
		rcfg.HealthInterval = 20 * time.Millisecond
	}
	if rcfg.Cooldown == 0 {
		rcfg.Cooldown = 50 * time.Millisecond
	}
	rt, err := router.New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.url = "http://" + addr
	t.Cleanup(func() {
		rt.Close() //nolint:errcheck
		for _, srv := range f.servers {
			srv.Close() //nolint:errcheck // killed members error; that's fine
		}
	})
	return f
}

func doJSON(t *testing.T, method, url string, body, dst any, client string) (*http.Response, wire.ErrorResponse) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if client != "" {
		req.Header.Set(targetserver.ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var er wire.ErrorResponse
	if resp.StatusCode >= 400 {
		json.Unmarshal(raw, &er) //nolint:errcheck // some errors carry no body
	} else if dst != nil {
		if err := json.Unmarshal(raw, dst); err != nil {
			t.Fatalf("decoding %s %s: %v (%s)", method, url, err, raw)
		}
	}
	return resp, er
}

func createTenant(t *testing.T, f *fleet, id, client string) (*http.Response, wire.ErrorResponse) {
	t.Helper()
	req := wire.CreateTargetRequest{V: wire.Version, Target: wire.TargetSpec{
		ID: id, Dataset: "dmv", Model: "fcn", Seed: 1,
	}}
	var cr wire.CreateTargetResponse
	return doJSON(t, http.MethodPost, f.url+"/v1/targets", req, &cr, client)
}

// estimate returns (value, status). Status 200 carries the value.
func estimate(t *testing.T, f *fleet, id string) (float64, int, wire.ErrorResponse) {
	t.Helper()
	req := wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
	var er wire.EstimateResponse
	resp, werr := doJSON(t, http.MethodPost, f.url+"/v1/targets/"+id+"/estimate", req, &er, "tester")
	if resp.StatusCode != http.StatusOK {
		return 0, resp.StatusCode, werr
	}
	if len(er.Estimates) != 1 {
		t.Fatalf("estimate answered %d values", len(er.Estimates))
	}
	return er.Estimates[0].Float(), resp.StatusCode, werr
}

func execute(t *testing.T, f *fleet, id string, cards ...float64) int {
	t.Helper()
	req := wire.ExecuteRequest{V: wire.Version, Queries: make([]wire.Query, len(cards)), Cards: wire.FromFloats(cards)}
	for i := range req.Queries {
		req.Queries[i] = openQuery()
	}
	var er wire.ExecuteResponse
	resp, _ := doJSON(t, http.MethodPost, f.url+"/v1/targets/"+id+"/execute", req, &er, "tester")
	return resp.StatusCode
}

func fleetStatus(t *testing.T, f *fleet) wire.FleetStatusResponse {
	t.Helper()
	var fs wire.FleetStatusResponse
	resp, _ := doJSON(t, http.MethodGet, f.url+"/v1/fleet", nil, &fs, "tester")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet status: %d", resp.StatusCode)
	}
	return fs
}

// hostOf finds the server currently hosting id, by URL.
func (f *fleet) hostOf(t *testing.T, id string) (*targetserver.Server, string) {
	t.Helper()
	fs := fleetStatus(t, f)
	p, ok := fs.Tenants[id]
	if !ok || p.Backend == "" {
		t.Fatalf("tenant %s not placed (placement %+v)", id, p)
	}
	for i, u := range f.urls {
		if u == p.Backend {
			return f.servers[i], u
		}
	}
	t.Fatalf("tenant %s placed on unknown backend %s", id, p.Backend)
	return nil, ""
}

// TestCreateRoutesAndEstimates: the happy path through the router is
// wire-identical to talking to paced directly, and placement is
// deterministic — deleting and re-creating a tenant lands it on the
// same backend.
func TestCreateRoutesAndEstimates(t *testing.T) {
	f := newFleet(t, 3, router.Config{})

	resp, _ := createTenant(t, f, "t1", "alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	v, code, _ := estimate(t, f, "t1")
	if code != http.StatusOK || v != 0.25*1000 {
		t.Fatalf("estimate = %v (%d), want 250 (200)", v, code)
	}
	if code := execute(t, f, "t1", 42); code != http.StatusOK {
		t.Fatalf("execute: %d", code)
	}
	v, _, _ = estimate(t, f, "t1")
	if v != 250+42 {
		t.Fatalf("post-execute estimate = %v, want 292", v)
	}

	_, first := f.hostOf(t, "t1")
	resp, _ = doJSON(t, http.MethodDelete, f.url+"/v1/targets/t1", nil, nil, "alice")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, _ := createTenant(t, f, "t1", "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create: %d", resp.StatusCode)
	}
	if _, again := f.hostOf(t, "t1"); again != first {
		t.Errorf("re-created tenant moved %s -> %s with an unchanged fleet", first, again)
	}

	// Unknown tenant and duplicate create answer the paced taxonomy.
	if _, code, werr := estimate(t, f, "ghost"); code != http.StatusNotFound || werr.Code != wire.CodeUnknownTarget {
		t.Errorf("ghost estimate: %d %q", code, werr.Code)
	}
	if resp, werr := createTenant(t, f, "t1", "alice"); resp.StatusCode != http.StatusConflict || werr.Code != wire.CodeTargetExists {
		t.Errorf("duplicate create: %d %q", resp.StatusCode, werr.Code)
	}
}

// TestFailoverBitExact is the heart of the PR: kill the backend hosting
// a tenant with retraining state and the router must rebuild it
// elsewhere — create from spec, replay the execute journal in order —
// so the first estimate served after failover is bit-identical to the
// last one served before. No estimate may be served from a world whose
// retrain state is not yet rebuilt, and the outage window must answer
// only 503 + Retry-After.
func TestFailoverBitExact(t *testing.T) {
	tel := &obs.Telemetry{Reg: obs.NewRegistry()}
	f := newFleet(t, 2, router.Config{Telemetry: tel})

	if resp, _ := createTenant(t, f, "t", "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	// Order-sensitive retraining history: replaying these out of order
	// (or dropping one) changes the estimate.
	for _, c := range []float64{3, 1, 4, 1, 5} {
		if code := execute(t, f, "t", c); code != http.StatusOK {
			t.Fatalf("execute: %d", code)
		}
	}
	want, code, _ := estimate(t, f, "t")
	if code != http.StatusOK {
		t.Fatalf("pre-kill estimate: %d", code)
	}

	victim, victimURL := f.hostOf(t, "t")
	victim.Kill()

	// Ride out the failover exactly like the retry layer would: every
	// response is either 503-with-Retry-After or a 200 carrying the
	// bit-identical pre-kill value.
	deadline := time.Now().Add(15 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		req := wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
		var er wire.EstimateResponse
		resp, werr := doJSON(t, http.MethodPost, f.url+"/v1/targets/t/estimate", req, &er, "tester")
		switch resp.StatusCode {
		case http.StatusOK:
			if got := er.Estimates[0].Float(); got != want {
				t.Fatalf("post-failover estimate = %v, want bit-identical %v", got, want)
			}
			recovered = true
		case http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("outage 503 without Retry-After (code %q)", werr.Code)
			}
		default:
			t.Fatalf("outage answered %d (code %q), want 503 or 200", resp.StatusCode, werr.Code)
		}
		if recovered {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("tenant never recovered after backend kill")
	}

	if _, host := f.hostOf(t, "t"); host == victimURL {
		t.Fatalf("tenant still placed on the killed backend %s", host)
	}
	// Executes keep working against the rebuilt world.
	if code := execute(t, f, "t", 9); code != http.StatusOK {
		t.Fatalf("post-failover execute: %d", code)
	}

	var buf strings.Builder
	tel.Reg.WritePrometheus(&buf) //nolint:errcheck
	metrics := buf.String()
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "router_failover_total ") && strings.HasSuffix(line, " 0") {
			t.Errorf("router_failover_total still 0 after a kill:\n%s", metrics)
		}
	}
	if !strings.Contains(metrics, "router_failover_total") || !strings.Contains(metrics, "router_reprovision_total") {
		t.Errorf("failover metrics missing:\n%s", metrics)
	}
}

// TestRouterQuotas pins fleet-wide and per-owner admission caps.
func TestRouterQuotas(t *testing.T) {
	f := newFleet(t, 2, router.Config{MaxTenants: 2, MaxPerOwner: 1})

	if resp, _ := createTenant(t, f, "a", "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice create: %d", resp.StatusCode)
	}
	resp, werr := createTenant(t, f, "a2", "alice")
	if resp.StatusCode != http.StatusTooManyRequests || werr.Code != wire.CodeQuotaExceeded {
		t.Fatalf("alice over quota: %d %q", resp.StatusCode, werr.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota rejection missing Retry-After")
	}
	if resp, _ := createTenant(t, f, "b", "bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob create: %d", resp.StatusCode)
	}
	if resp, werr := createTenant(t, f, "c", "carol"); resp.StatusCode != http.StatusTooManyRequests || werr.Code != wire.CodeQuotaExceeded {
		t.Fatalf("fleet over cap: %d %q", resp.StatusCode, werr.Code)
	}
	// Deleting frees quota.
	if resp, _ := doJSON(t, http.MethodDelete, f.url+"/v1/targets/b", nil, nil, "bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	if resp, _ := createTenant(t, f, "c", "carol"); resp.StatusCode != http.StatusOK {
		t.Fatalf("create after free: %d", resp.StatusCode)
	}
}

// TestIdleEvictionRevivesBitExact: the router janitor evicts an idle
// tenant from its backend but keeps spec AND journal, so the lazy
// revival restores the retrained world bit-identically.
func TestIdleEvictionRevivesBitExact(t *testing.T) {
	f := newFleet(t, 2, router.Config{IdleAfter: 60 * time.Millisecond})

	if resp, _ := createTenant(t, f, "idle", "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	for _, c := range []float64{7, 2} {
		if code := execute(t, f, "idle", c); code != http.StatusOK {
			t.Fatalf("execute: %d", code)
		}
	}
	want, _, _ := estimate(t, f, "idle")

	deadline := time.Now().Add(5 * time.Second)
	evicted := false
	for time.Now().Before(deadline) {
		fs := fleetStatus(t, f)
		if fs.Tenants["idle"].State == "evicted" {
			evicted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("janitor never evicted the idle tenant")
	}

	// First hit answers 503 evicted + Retry-After and kicks off revival.
	_, code, werr := estimate(t, f, "idle")
	if code != http.StatusServiceUnavailable || werr.Code != wire.CodeEvicted {
		t.Fatalf("evicted estimate: %d %q", code, werr.Code)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, code, _ := estimate(t, f, "idle")
		if code == http.StatusOK {
			if v != want {
				t.Fatalf("revived estimate = %v, want bit-identical %v", v, want)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("evicted tenant never revived")
}

// TestLegacyRoutesAliasDefault: the unrouted wire still works through
// the router, aliasing tenant "default" — old clients keep working
// against a fleet.
func TestLegacyRoutesAliasDefault(t *testing.T) {
	f := newFleet(t, 2, router.Config{})
	if resp, _ := createTenant(t, f, targetserver.DefaultTenant, "alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("create default: %d", resp.StatusCode)
	}
	req := wire.EstimateRequest{V: wire.Version, Queries: []wire.Query{openQuery()}}
	var er wire.EstimateResponse
	resp, _ := doJSON(t, http.MethodPost, f.url+"/v1/estimate", req, &er, "tester")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy estimate: %d", resp.StatusCode)
	}
	ex := wire.ExecuteRequest{V: wire.Version, Queries: []wire.Query{openQuery()}, Cards: wire.FromFloats([]float64{1})}
	var exr wire.ExecuteResponse
	resp, _ = doJSON(t, http.MethodPost, f.url+"/v1/execute", ex, &exr, "tester")
	if resp.StatusCode != http.StatusOK || exr.Executed != 1 {
		t.Fatalf("legacy execute: %d executed=%d", resp.StatusCode, exr.Executed)
	}
}

// TestAdminClientThroughRouter: remote.Admin (the programmatic client
// every campaign uses) works unchanged against the router — healthz is
// wire-compatible, WaitReady sees "ready".
func TestAdminClientThroughRouter(t *testing.T) {
	f := newFleet(t, 2, router.Config{})
	admin, err := remote.NewAdmin(f.url, remote.Options{ClientID: "tester"})
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	ctx := context.Background()
	if _, err := admin.CreateTarget(ctx, wire.TargetSpec{ID: "adm", Dataset: "dmv", Model: "fcn", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := admin.WaitReady(ctx, "adm", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	targets, err := admin.ListTargets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || targets[0].ID != "adm" || targets[0].State != "ready" {
		t.Fatalf("list = %+v", targets)
	}
	if err := admin.DeleteTarget(ctx, "adm"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.ListTargets(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestNoBackendUp: with the whole fleet dead, creates shed 503 +
// Retry-After rather than hanging or crashing.
func TestNoBackendUp(t *testing.T) {
	f := newFleet(t, 1, router.Config{FailThreshold: 1, HealthInterval: 10 * time.Millisecond})
	f.servers[0].Kill()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		fs := fleetStatus(t, f)
		if fs.Status == "degraded" && !fs.Backends[0].Up {
			resp, werr := createTenant(t, f, "x", "alice")
			if resp.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("create with fleet down: %d %q", resp.StatusCode, werr.Code)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Error("fleet-down create missing Retry-After")
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("router never marked the killed backend down")
}

// TestVersionMismatch400 guards the protocol check on the router's own
// decode path.
func TestVersionMismatch400(t *testing.T) {
	f := newFleet(t, 1, router.Config{})
	req := wire.CreateTargetRequest{V: 99, Target: wire.TargetSpec{ID: "v"}}
	resp, werr := doJSON(t, http.MethodPost, f.url+"/v1/targets", req, nil, "alice")
	if resp.StatusCode != http.StatusBadRequest || werr.Code != wire.CodeBadRequest {
		t.Fatalf("version mismatch: %d %q", resp.StatusCode, werr.Code)
	}
}
