// Streamed-execute proxying. The router relays the protocol (open /
// chunk / status / delete) to the tenant's backend while keeping its
// own (token, seq) ledger in step with the execute journal:
//
//   - a chunk is journaled — with its Content-Type — only after the
//     backend acked it 202, under the same per-tenant lock as plain
//     executes, so journal order is apply order across both paths;
//   - a journaled (token, seq) that is resubmitted (the client retrying
//     a whole stream after a failover) is acked 202 without forwarding:
//     the failover replay already applied it;
//   - when a rebuilt backend answers unknown_execution for a stream the
//     router knows, the router re-opens the execution there and
//     re-forwards the chunk once — clients never observe the failover
//     beyond a Retry-After ride;
//   - a status/delete 404 for a known stream is answered as "done":
//     every journaled chunk is either applied or will be re-applied by
//     the next replay, which is the strongest promise the router can
//     keep without decoding bodies.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"pace/internal/wire"
)

// readyBackend re-checks placement for paths that already hold
// e.execMu: the entry must be ready on an up backend, else the caller's
// client rides a 503 through the rebuild.
func (rt *Router) readyBackend(w http.ResponseWriter, e *entry, id string) (*backend, bool) {
	rt.mu.Lock()
	b := e.backend
	ok := e.state == StateReady && b != nil && b.up.Load()
	rt.mu.Unlock()
	if !ok {
		rt.shed503(w, wire.CodeNotReady, "tenant "+id+" rebuilding")
		return nil, false
	}
	return b, true
}

// knownStream reports whether the router has seen token for e, and how
// many of its chunks are journaled. Callers must NOT hold e.execMu.
func (e *entry) knownStream(token string) (int, bool) {
	e.execMu.Lock()
	defer e.execMu.Unlock()
	seqs, ok := e.streams[token]
	return len(seqs), ok
}

// syntheticAck answers for the backend when the router already holds
// the truth (journaled chunk, replayed stream).
func (rt *Router) syntheticAck(w http.ResponseWriter, status int, token, state string, applied int) {
	rt.writeJSON(w, status, wire.ExecutionResponse{
		V:       wire.Version,
		Token:   token,
		State:   state,
		Applied: int64(applied),
	})
}

// handleOpenExecution proxies a stream open and registers the token in
// the router's ledger. Opens are idempotent end to end, so a client
// retrying the whole stream re-opens harmlessly.
func (rt *Router) handleOpenExecution(w http.ResponseWriter, r *http.Request, id string) {
	e, client, ok := rt.resolveData(w, r, id)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	var req wire.OpenExecutionRequest
	if jerr := json.Unmarshal(body, &req); jerr != nil || !wire.ValidExecutionToken(req.Token) {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			"open body must carry a valid execution token")
		return
	}

	e.execMu.Lock()
	defer e.execMu.Unlock()
	b, ok := rt.readyBackend(w, e, id)
	if !ok {
		return
	}
	resp, raw, err := rt.forward(r.Context(), b, http.MethodPost, "/v1/targets/"+id+"/executions", body, client)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
		return
	}
	if resp.StatusCode == http.StatusOK {
		if e.streams == nil {
			e.streams = map[string]map[int64]bool{}
		}
		if e.streams[req.Token] == nil {
			e.streams[req.Token] = map[int64]bool{}
		}
		rt.mStreamOpens.Inc()
	}
	rt.passthrough(w, resp, raw)
}

// handleExecutionChunk proxies one chunk, deduping against the journal
// and journaling on ack — the streamed twin of handleData's execute
// arm.
func (rt *Router) handleExecutionChunk(w http.ResponseWriter, r *http.Request, id, token string) {
	e, client, ok := rt.resolveData(w, r, id)
	if !ok {
		return
	}
	seqRaw := r.Header.Get(wire.ChunkSeqHeader)
	seq, err := strconv.ParseInt(seqRaw, 10, 64)
	if err != nil || seq < 0 {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			wire.ChunkSeqHeader+" must carry the chunk's non-negative sequence number")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	hdr := dataHdr(r)
	hdr[wire.ChunkSeqHeader] = seqRaw

	e.execMu.Lock()
	defer e.execMu.Unlock()
	if e.streams[token][seq] {
		// Journaled already: the chunk is applied on the current backend
		// (or will be, by the next replay). Ack without forwarding —
		// this is what makes whole-stream retries exactly-once.
		rt.mStreamDedup.Inc()
		rt.syntheticAck(w, http.StatusAccepted, token, wire.ExecutionRunning, len(e.streams[token]))
		return
	}
	b, ok := rt.readyBackend(w, e, id)
	if !ok {
		return
	}
	path := "/v1/targets/" + id + "/executions/" + token
	resp, raw, err := rt.forwardHdr(r.Context(), b, http.MethodPost, path, body, client, hdr)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
		return
	}
	if resp.StatusCode == http.StatusNotFound &&
		bytes.Contains(raw, []byte(wire.CodeUnknownExecution)) {
		if _, known := e.streams[token]; known {
			// The backend was rebuilt from the journal and lost its
			// execution registry. Re-open there and forward once more.
			if rt.reopenExecution(r.Context(), b, id, token) {
				resp, raw, err = rt.forwardHdr(r.Context(), b, http.MethodPost, path, body, client, hdr)
				if err != nil {
					if r.Context().Err() != nil {
						return
					}
					rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
					return
				}
			}
		}
	}
	if resp.StatusCode == http.StatusAccepted {
		if e.streams == nil {
			e.streams = map[string]map[int64]bool{}
		}
		if e.streams[token] == nil {
			e.streams[token] = map[int64]bool{}
		}
		e.streams[token][seq] = true
		e.journal = append(e.journal, journalEntry{contentType: hdr["Content-Type"], body: body, stream: true})
		rt.mStreamFwd.Inc()
	}
	rt.passthrough(w, resp, raw)
}

// reopenExecution re-registers a stream's token on a rebuilt backend.
func (rt *Router) reopenExecution(ctx context.Context, b *backend, id, token string) bool {
	body, err := json.Marshal(wire.OpenExecutionRequest{V: wire.Version, Token: token})
	if err != nil {
		return false
	}
	resp, _, err := rt.forward(ctx, b, http.MethodPost, "/v1/targets/"+id+"/executions", body, routerClient)
	return err == nil && resp.StatusCode == http.StatusOK
}

// handleExecutionStatus proxies the completion poll. A backend 404 for
// a stream the router knows means the backend was rebuilt from the
// journal: every journaled chunk was replayed synchronously, so the
// stream is done from the client's point of view.
func (rt *Router) handleExecutionStatus(w http.ResponseWriter, r *http.Request, id, token string) {
	e, client, ok := rt.resolveData(w, r, id)
	if !ok {
		return
	}
	b, ok := rt.readyBackend(w, e, id)
	if !ok {
		return
	}
	resp, raw, err := rt.forward(r.Context(), b, http.MethodGet, "/v1/targets/"+id+"/executions/"+token, nil, client)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
		return
	}
	if resp.StatusCode == http.StatusNotFound && bytes.Contains(raw, []byte(wire.CodeUnknownExecution)) {
		if n, known := e.knownStream(token); known {
			rt.syntheticAck(w, http.StatusOK, token, wire.ExecutionDone, n)
			return
		}
	}
	rt.passthrough(w, resp, raw)
}

// handleExecutionDelete proxies a stream delete. The router's own
// (token, seq) ledger is deliberately kept: dropping it would let a
// later whole-stream retry re-forward journaled chunks and double-apply
// them after a failover. The ledger dies with the tenant.
func (rt *Router) handleExecutionDelete(w http.ResponseWriter, r *http.Request, id, token string) {
	e, client, ok := rt.resolveData(w, r, id)
	if !ok {
		return
	}
	b, ok := rt.readyBackend(w, e, id)
	if !ok {
		return
	}
	resp, raw, err := rt.forward(r.Context(), b, http.MethodDelete, "/v1/targets/"+id+"/executions/"+token, nil, client)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
		return
	}
	if resp.StatusCode == http.StatusNotFound && bytes.Contains(raw, []byte(wire.CodeUnknownExecution)) {
		if n, known := e.knownStream(token); known {
			rt.syntheticAck(w, http.StatusOK, token, wire.ExecutionDone, n)
			return
		}
	}
	rt.passthrough(w, resp, raw)
}
