package router

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"pace/internal/obs"
	"pace/internal/remote"
	"pace/internal/resilience"
)

// backend is one paced fleet member as the router sees it: its base URL,
// a circuit breaker accumulating probe and data-path failures, and the
// current up/down verdict.
//
// The breaker gives the health checker its failure-threshold and
// half-open semantics for free: FailThreshold consecutive failures open
// it (the backend is marked down and its tenants fail over), and while
// open, Allow() rejects — probes are skipped for the Cooldown, after
// which one probe rides through half-open and a success closes the
// breaker and marks the backend up again.
type backend struct {
	url string
	br  *resilience.Breaker
	up  atomic.Bool

	// admin is the consolidated remote client's admin surface for this
	// backend, used for provisioning, listing and deleting tenants. Its
	// transport records every outcome into the breaker (see
	// recordingTransport).
	admin *remote.Admin

	mUp *obs.Gauge // router_backend_up{backend="url"}; nil-safe
}

// recordingTransport routes one backend's admin traffic through the
// router's HTTP transport while feeding transport outcomes into the
// backend health machinery — the same accounting rt.forwardHdr does for
// proxied traffic. Canceled caller contexts are not held against the
// backend.
type recordingTransport struct {
	rt   *Router
	b    *backend
	base http.RoundTripper
}

func (t *recordingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		if req.Context().Err() == nil {
			t.rt.recordBackend(t.b, err)
		}
		return nil, err
	}
	t.rt.recordBackend(t.b, nil)
	return resp, nil
}

// probe performs one health check: GET /healthz must answer 200 (a
// draining or dead backend must not receive placements or traffic).
func (rt *Router) probe(ctx context.Context, b *backend) error {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router: %s /healthz answered %d", b.url, resp.StatusCode)
	}
	return nil
}

// healthLoop polls one backend for its whole life. Each tick consults
// the breaker first: while open (cooling down after the failure
// threshold) the probe is skipped entirely — that skip IS the down
// window — and the first tick past the cooldown is the half-open probe.
func (rt *Router) healthLoop(b *backend) {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		rt.probeOnce(b)
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
	}
}

// probeOnce runs a single health check against b and feeds the outcome
// through the shared breaker/transition machinery.
func (rt *Router) probeOnce(b *backend) {
	if err := b.br.Allow(); err != nil {
		return // breaker open: still cooling down, stay down
	}
	rt.recordBackend(b, rt.probe(context.Background(), b))
}

// recordBackend feeds one observed outcome (probe or data-path) into
// the backend's breaker and drives the up/down transitions. A success
// closes the breaker and, on a down→up edge, reconciles the backend; a
// failure that opens the breaker forces the up→down edge and fails the
// backend's tenants over.
func (rt *Router) recordBackend(b *backend, err error) {
	b.br.Record(err)
	if err == nil {
		if !b.up.Swap(true) {
			b.mUp.Set(1)
			go rt.backendRecovered(b)
		}
		return
	}
	if b.br.Stats().Open && b.up.Swap(false) {
		b.mUp.Set(0)
		rt.backendDown(b)
	}
}

// backendDown is the failover trigger: every tenant placed on b flips
// to rebuilding and a re-provision goroutine races to rebuild it on a
// surviving backend. Clients see 503 + Retry-After until the rebuild
// lands; the retry layer rides through on the hint.
func (rt *Router) backendDown(b *backend) {
	rt.mFailover.Inc()
	rt.mu.Lock()
	var lost []string
	for id, e := range rt.entries {
		if e.backend == b && e.state == StateReady {
			e.state = StateRebuilding
			e.backend = nil
			lost = append(lost, id)
		}
	}
	rt.mu.Unlock()
	for _, id := range lost {
		go rt.rebuild(id)
	}
}

// backendRecovered reconciles a backend that came back: any tenant it
// still hosts that the placement map no longer assigns to it is stale
// state from before the failure (the tenant has been rebuilt elsewhere)
// and is deleted best-effort so the fleet does not leak model
// goroutines.
func (rt *Router) backendRecovered(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	targets, err := rt.listBackend(ctx, b)
	cancel()
	if err != nil {
		return
	}
	for _, info := range targets {
		rt.mu.Lock()
		e, ok := rt.entries[info.ID]
		stale := !ok || e.backend == nil || e.backend.url != b.url
		rt.mu.Unlock()
		if stale {
			dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
			rt.deleteOnBackend(dctx, b, info.ID) //nolint:errcheck // best-effort GC
			dcancel()
		}
	}
}
