package router

import "hash/fnv"

// score is the rendezvous (highest-random-weight) weight of placing
// tenant id on the backend at url: FNV-1a over id NUL url. Each (id,
// backend) pair gets an independent pseudo-random weight, so removing
// one backend only moves that backend's tenants — every other placement
// is unchanged, which is exactly the stability failover needs.
func score(id, url string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))  //nolint:errcheck // fnv never fails
	h.Write([]byte{0})   //nolint:errcheck
	h.Write([]byte(url)) //nolint:errcheck
	return h.Sum64()
}

// pick returns the up backend with the highest rendezvous score for id,
// or nil when none is up. Ties break on URL order so the choice is
// deterministic for a fixed fleet.
func pick(id string, backends []*backend) *backend {
	var best *backend
	var bestScore uint64
	for _, b := range backends {
		if !b.up.Load() {
			continue
		}
		s := score(id, b.url)
		if best == nil || s > bestScore || (s == bestScore && b.url < best.url) {
			best, bestScore = b, s
		}
	}
	return best
}
