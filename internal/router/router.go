// Package router implements pacerouter: a reverse proxy that places
// tenants (hosted estimator worlds) across a fleet of paced backends
// and keeps them reachable when backends die.
//
// Placement is rendezvous hashing over the up backends — consulted once
// at (re)create time; afterwards the placement map is authoritative, so
// a recovering backend never steals tenants back. Each backend is
// actively health-checked (GET /healthz through a circuit breaker:
// FailThreshold consecutive failures mark it down, the breaker cooldown
// is the down window, a half-open probe success marks it back up). When
// a backend dies, every tenant placed on it flips to "rebuilding" and
// is re-provisioned on a surviving backend from its stored spec — the
// fixed (dataset, model, seed) spec rebuilds the world bit-identically
// — and the router's execute journal is replayed in order to restore
// the retraining state exactly. Until the rebuild lands, requests for
// the tenant answer 503 + Retry-After, which the retry layer in
// internal/remote + internal/resilience rides through.
//
// Exactly-once journaling: an execute body is appended to the journal
// only after the hosting backend acked it with 200, under a per-tenant
// lock held across send→ack→append. In the crash case this is exact —
// an unacked in-flight execute is not journaled AND the dead backend's
// state is discarded wholesale, so the client's retry applies the batch
// once to the rebuilt world. (A transport glitch on a *healthy* backend
// can still double-apply on retry, as with any at-least-once HTTP call;
// the bit-exactness contract covers the crash-failover path.)
//
// Admission hardening mirrors paced's: a fleet-wide tenant cap and
// per-client provisioning quotas answer 429 quota_exceeded on POST
// /v1/targets, and idle tenants are evicted from their backend (spec
// and journal spilled in the router) and lazily revived — rebuilt
// bit-identically — on their next request.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/remote"
	"pace/internal/resilience"
	"pace/internal/targetserver"
	"pace/internal/wire"
)

// Tenant entry states as reported on /healthz and /v1/fleet. "ready" is
// the string remote.Admin.WaitReady polls for, so the router's healthz
// is drop-in compatible with paced's.
const (
	StateCreating   = "creating"
	StateReady      = "ready"
	StateRebuilding = "rebuilding"
	StateEvicted    = "evicted"
)

// routerClient is the X-Pace-Client identity the router uses for its
// own fleet housekeeping (journal replay, stale-tenant GC) so backend
// rate limiting and logs can tell it apart from proxied client traffic.
const routerClient = "pacerouter"

// maxBody mirrors the backends' request-body bound.
const maxBody = 64 << 20

// Config tunes the router. The zero value is not usable — Backends is
// required — but every other field has a sane default.
type Config struct {
	// Backends lists the paced base URLs forming the fleet, e.g.
	// "http://127.0.0.1:8645". Scheme-less entries get http://.
	Backends []string
	// AuthToken, when set, is forwarded to backends as a bearer token —
	// the fleet's members run with -auth-tokens and trust only the
	// router. Client identity still travels in X-Pace-Client.
	AuthToken string
	// AuthTokens, when non-empty, makes the router itself demand bearer
	// auth from its clients (same file format as paced -auth-tokens);
	// the mapped name becomes the spoof-proof identity for quotas.
	AuthTokens map[string]string
	// RetryAfter is the backoff hint sent with every router-originated
	// 429/503 (default 1s).
	RetryAfter time.Duration
	// HealthInterval is the per-backend probe period (default 500ms).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures (probe or
	// data-path) mark a backend down (default 3).
	FailThreshold int
	// Cooldown is the down window before a half-open re-probe
	// (default 1s).
	Cooldown time.Duration
	// MaxTenants caps tenants fleet-wide, any state (0 = unlimited).
	MaxTenants int
	// MaxPerOwner caps tenants one client identity may provision
	// (0 = unlimited).
	MaxPerOwner int
	// IdleAfter evicts tenants idle this long: deleted from their
	// backend, spec+journal spilled in the router, lazily revived on
	// the next request (0 = never).
	IdleAfter time.Duration
	// CreateTimeout bounds one re-provision attempt, world build plus
	// journal replay (default 10m). Client-driven creates use the
	// request's own context instead.
	CreateTimeout time.Duration
	// Telemetry mounts router_* metrics (and /metrics when it carries a
	// registry).
	Telemetry *obs.Telemetry
	// SLOTarget is the per-request latency objective behind the
	// per-tenant burn-rate gauge (default 100ms).
	SLOTarget time.Duration
	// SLOObjective is the target fraction of requests within SLOTarget
	// (default 0.99).
	SLOObjective float64
	// Client is the HTTP client used to reach backends (default: a
	// fresh http.Client; per-request contexts bound each call).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = time.Second
	}
	if c.CreateTimeout <= 0 {
		c.CreateTimeout = 10 * time.Minute
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 100 * time.Millisecond
	}
	if c.SLOObjective <= 0 {
		c.SLOObjective = 0.99
	}
	return c
}

// journalEntry is one acked execute body: the bytes exactly as the
// client sent them plus the Content-Type they arrived in, so failover
// replay re-sends binary frames as binary and JSON as JSON.
type journalEntry struct {
	contentType string
	body        []byte
	// stream marks a journaled streamed-execute chunk (vs a synchronous
	// execute body) — replaying one counts toward the stream-replay
	// metric.
	stream bool
}

// entry is the router's authoritative record of one tenant: where it
// lives, what state it is in, and the journal that rebuilds its
// retraining state bit-identically after a failover or revival.
type entry struct {
	spec  wire.TargetSpec
	owner string

	// state and backend are guarded by Router.mu. backend is non-nil
	// exactly in StateReady.
	state   string
	backend *backend

	lastActive atomic.Int64 // UnixNano of the last request touching this tenant

	// execMu serializes the execute send→ack→journal-append critical
	// section and guards journal and streams. Rebuild snapshots the
	// journal under it but replays without it, so waiting executes see a
	// quick 503 (retryable) instead of blocking past their deadline.
	execMu  sync.Mutex
	journal []journalEntry
	// streams records, per streamed-execute token, the chunk seqs whose
	// bodies are already journaled. A journaled (token, seq) resubmitted
	// after a failover is acked 202 without forwarding — the replay
	// already applied it — which is what keeps streamed retrains
	// exactly-once across backend deaths. Kept until the tenant is
	// deleted (a deleted seq set would let a whole-stream retry
	// double-apply).
	streams map[string]map[int64]bool
}

func (e *entry) touch() { e.lastActive.Store(time.Now().UnixNano()) }
func (e *entry) idleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - e.lastActive.Load())
}

// Router is the fleet front: an HTTP server speaking the same wire as
// paced, proxying to backends it health-checks and heals.
type Router struct {
	cfg      Config
	client   *http.Client
	backends []*backend
	mux      *http.ServeMux

	mu       sync.Mutex
	entries  map[string]*entry
	draining bool

	httpSrv *http.Server
	ln      net.Listener
	stop    chan struct{}
	wg      sync.WaitGroup

	// bg is the router's background telemetry context: root spans for
	// self-initiated work (rebuild, revival) start from it.
	bg context.Context

	// All nil-safe no-ops without telemetry.
	mFailover       *obs.Counter
	mReprovision    *obs.Counter
	mReprovLatency  *obs.Histogram
	mEvicted        *obs.Counter
	mRevived        *obs.Counter
	mQuotaDenied    *obs.Counter
	mShed           *obs.Counter
	mUnknownTarget  *obs.Counter
	mUnauthorized   *obs.Counter
	mAdminReqs      *obs.Counter
	mTenants        *obs.Gauge
	mDraining       *obs.Gauge
	mStreamOpens    *obs.Counter
	mStreamFwd      *obs.Counter
	mStreamDedup    *obs.Counter
	mStreamReplayed *obs.Counter

	// Per-(route, tenant) RED instruments and per-tenant SLO trackers,
	// created lazily on first request.
	redMu sync.Mutex
	reds  map[string]*obs.RED
	slos  map[string]*obs.SLO
}

// New builds the router, probes every backend once synchronously (so
// placement works the moment it returns) and starts the health loops.
// Callers must eventually call Shutdown or Close.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		client:  cfg.Client,
		entries: map[string]*entry{},
		stop:    make(chan struct{}),
		bg:      obs.NewContext(context.Background(), cfg.Telemetry),
		reds:    map[string]*obs.RED{},
		slos:    map[string]*obs.SLO{},
	}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	rt.instrument(cfg.Telemetry.Registry())

	seen := map[string]bool{}
	for _, raw := range cfg.Backends {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		if u == "" {
			continue
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		if _, err := url.Parse(u); err != nil {
			return nil, fmt.Errorf("router: backend %q: %w", raw, err)
		}
		if seen[u] {
			continue
		}
		seen[u] = true
		b := &backend{url: u, br: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: cfg.FailThreshold,
			Cooldown:         cfg.Cooldown,
		})}
		if reg := cfg.Telemetry.Registry(); reg != nil {
			b.mUp = reg.Gauge(fmt.Sprintf("router_backend_up{backend=%q}", u))
		}
		rc, err := remote.NewClient(u, remote.Options{
			ClientID:  routerClient,
			AuthToken: cfg.AuthToken,
			Client:    &http.Client{Transport: &recordingTransport{rt: rt, b: b, base: rt.client.Transport}},
		})
		if err != nil {
			return nil, fmt.Errorf("router: backend %q: %w", raw, err)
		}
		b.admin = rc.Admin()
		rt.backends = append(rt.backends, b)
	}
	if len(rt.backends) == 0 {
		return nil, errors.New("router: at least one backend required")
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, targetserver.DefaultTenant, "estimate", "proxy_estimate",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleData(w, r, id, false)
			})
	})
	rt.mux.HandleFunc("POST /v1/execute", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, targetserver.DefaultTenant, "execute", "proxy_execute",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleData(w, r, id, true)
			})
	})
	rt.mux.HandleFunc("POST /v1/targets/{id}/estimate", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, r.PathValue("id"), "estimate", "proxy_estimate",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleData(w, r, id, false)
			})
	})
	rt.mux.HandleFunc("POST /v1/targets/{id}/execute", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, r.PathValue("id"), "execute", "proxy_execute",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleData(w, r, id, true)
			})
	})
	rt.mux.HandleFunc("POST /v1/targets/{id}/executions", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, r.PathValue("id"), "exec_open", "proxy_exec_open", rt.handleOpenExecution)
	})
	rt.mux.HandleFunc("POST /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, r.PathValue("id"), "exec_chunk", "proxy_exec_chunk",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleExecutionChunk(w, r, id, r.PathValue("token"))
			})
	})
	rt.mux.HandleFunc("GET /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		// Status polls are RED-metered but never spanned: poll counts are
		// timing-dependent and would break trace-structure determinism.
		rt.serveData(w, r, r.PathValue("id"), "exec_status", "",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleExecutionStatus(w, r, id, r.PathValue("token"))
			})
	})
	rt.mux.HandleFunc("DELETE /v1/targets/{id}/executions/{token}", func(w http.ResponseWriter, r *http.Request) {
		rt.serveData(w, r, r.PathValue("id"), "exec_delete", "proxy_exec_delete",
			func(w http.ResponseWriter, r *http.Request, id string) {
				rt.handleExecutionDelete(w, r, id, r.PathValue("token"))
			})
	})
	rt.mux.HandleFunc("GET /v1/targets/{id}/healthz", rt.handleTenantHealthz)
	rt.mux.HandleFunc("POST /v1/targets", rt.handleCreate)
	rt.mux.HandleFunc("DELETE /v1/targets/{id}", rt.handleDelete)
	rt.mux.HandleFunc("GET /v1/targets", rt.handleList)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/fleet", rt.handleFleet)
	if reg := cfg.Telemetry.Registry(); reg != nil {
		rt.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			reg.WritePrometheus(w) //nolint:errcheck // best-effort scrape
		})
	}

	// Boot probe round: parallel, synchronous, so the first create after
	// New can already place. The health loops take over from here.
	var boot sync.WaitGroup
	for _, b := range rt.backends {
		boot.Add(1)
		go func(b *backend) { defer boot.Done(); rt.probeOnce(b) }(b)
	}
	boot.Wait()
	for _, b := range rt.backends {
		rt.wg.Add(1)
		go rt.healthLoop(b)
	}
	if cfg.IdleAfter > 0 {
		rt.wg.Add(1)
		go rt.janitor()
	}
	return rt, nil
}

func (rt *Router) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rt.mFailover = reg.Counter("router_failover_total")
	rt.mReprovision = reg.Counter("router_reprovision_total")
	rt.mReprovLatency = reg.Histogram("router_reprovision_latency_us")
	rt.mEvicted = reg.Counter("router_evicted_total")
	rt.mRevived = reg.Counter("router_revived_total")
	rt.mQuotaDenied = reg.Counter("router_quota_denied_total")
	rt.mShed = reg.Counter("router_shed_total")
	rt.mUnknownTarget = reg.Counter("router_unknown_target_total")
	rt.mUnauthorized = reg.Counter("router_unauthorized_total")
	rt.mAdminReqs = reg.Counter("router_admin_requests_total")
	rt.mTenants = reg.Gauge("router_tenants")
	rt.mDraining = reg.Gauge("router_draining")
	rt.mStreamOpens = reg.Counter("router_stream_opens_total")
	rt.mStreamFwd = reg.Counter("router_stream_chunks_forwarded_total")
	rt.mStreamDedup = reg.Counter("router_stream_chunks_deduped_total")
	rt.mStreamReplayed = reg.Counter("router_stream_chunks_replayed_total")
}

// statusWriter captures the status code the handler chain wrote so the
// RED layer can classify the request.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// serveData wraps one data-path route with per-tenant RED metrics and —
// when the caller sent an X-Pace-Trace header and spanName is non-empty
// — a proxy span parented under the remote caller. Requests without the
// header are metered but never spanned, which keeps trace structure a
// pure function of the instrumented client's behaviour.
func (rt *Router) serveData(w http.ResponseWriter, r *http.Request, id, route, spanName string, fn func(http.ResponseWriter, *http.Request, string)) {
	ctx := obs.NewContext(r.Context(), rt.cfg.Telemetry)
	var sp *obs.Span
	if tp := r.Header.Get(wire.TraceHeader); tp != "" {
		if trace, span, ok := obs.ParseTraceParent(tp); ok {
			ctx = obs.ContextWithRemoteParent(ctx, trace, span)
			if spanName != "" {
				ctx, sp = obs.StartSpan(ctx, spanName, obs.String("tenant", id))
			}
		}
	}
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	fn(sw, r.WithContext(ctx), id)
	sp.End()
	rt.red(route, id).Observe(time.Since(start).Seconds(), sw.status >= 500, obs.TraceIDFrom(ctx))
}

// red returns the (route, tenant) RED instrument set, creating it — and
// the tenant's SLO tracker — on first use. Nil without a registry.
func (rt *Router) red(route, id string) *obs.RED {
	reg := rt.cfg.Telemetry.Registry()
	if reg == nil {
		return nil
	}
	key := route + "\x00" + id
	rt.redMu.Lock()
	defer rt.redMu.Unlock()
	if red, ok := rt.reds[key]; ok {
		return red
	}
	slo, ok := rt.slos[id]
	if !ok {
		slo = obs.NewSLO(reg, fmt.Sprintf("router_slo_burn_rate_permille{tenant=%q}", id),
			rt.cfg.SLOTarget, rt.cfg.SLOObjective)
		rt.slos[id] = slo
	}
	red := obs.NewRED(reg, "router_http", route, id, slo)
	rt.reds[key] = red
	return red
}

// Handler exposes the router mux (for httptest or custom listeners).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start binds addr and serves in the background, returning the bound
// address (port 0 picks an ephemeral one).
func (rt *Router) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("router: listen: %w", err)
	}
	rt.ln = ln
	rt.httpSrv = &http.Server{Handler: rt.mux, ReadHeaderTimeout: 10 * time.Second}
	go rt.httpSrv.Serve(ln) //nolint:errcheck // Serve always errors on Shutdown
	return ln.Addr().String(), nil
}

// Shutdown stops serving and the health/janitor loops. It does NOT
// drain or destroy the backends — they are separate processes with
// their own lifecycles.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	already := rt.draining
	rt.draining = true
	rt.mu.Unlock()
	rt.mDraining.Set(1)
	if already {
		return nil
	}
	close(rt.stop)
	var err error
	if rt.httpSrv != nil {
		err = rt.httpSrv.Shutdown(ctx)
	}
	rt.wg.Wait()
	return err
}

// Close is Shutdown with a short bound.
func (rt *Router) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return rt.Shutdown(ctx)
}

func (rt *Router) isDraining() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.draining
}

// forward sends one JSON (or bodyless) request to a backend — the
// admin/control plane. Data-path proxying goes through forwardHdr,
// which carries the client's codec headers verbatim.
func (rt *Router) forward(ctx context.Context, b *backend, method, path string, body []byte, client string) (*http.Response, []byte, error) {
	return rt.forwardHdr(ctx, b, method, path, body, client, nil)
}

// forwardHdr sends one request to a backend and reads the whole
// response, feeding the transport outcome into the backend's health
// machinery (an HTTP response of any status is a live backend; only
// transport errors count against it). A canceled client context is not
// held against the backend. hdr entries override the default JSON
// Content-Type — the data path uses them to relay the client's
// negotiated codec (Content-Type, Accept, chunk seq) untouched.
func (rt *Router) forwardHdr(ctx context.Context, b *backend, method, path string, body []byte, client string, hdr map[string]string) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, strings.NewReader(string(body)))
	if err != nil {
		return nil, nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		if v != "" {
			req.Header.Set(k, v)
		}
	}
	// Trace propagation: the proxy span (or the caller's remote parent)
	// rides to the backend so its srv_* spans stitch under this hop.
	if tp := obs.TraceParent(ctx); tp != "" {
		req.Header.Set(wire.TraceHeader, tp)
	}
	if client != "" {
		req.Header.Set(targetserver.ClientHeader, client)
	}
	if rt.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+rt.cfg.AuthToken)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rt.recordBackend(b, err)
		}
		return nil, nil, err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	resp.Body.Close()
	if err != nil {
		if ctx.Err() == nil {
			rt.recordBackend(b, err)
		}
		return nil, nil, err
	}
	rt.recordBackend(b, nil)
	return resp, raw, nil
}

// passthrough relays a backend response verbatim: status, body and the
// headers the wire protocol cares about.
func (rt *Router) passthrough(w http.ResponseWriter, resp *http.Response, raw []byte) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(raw) //nolint:errcheck // client hang-ups are its problem
}

// resolveData runs the shared data-path preamble: drain gate, client
// identity, entry lookup, touch, and the evicted/creating/rebuilding
// state gates. The returned entry's backend is NOT validated — each
// path re-checks placement where its consistency needs demand.
func (rt *Router) resolveData(w http.ResponseWriter, r *http.Request, id string) (*entry, string, bool) {
	if rt.isDraining() {
		rt.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "router draining")
		return nil, "", false
	}
	client, ok := rt.clientIdentity(w, r)
	if !ok {
		return nil, "", false
	}
	rt.mu.Lock()
	e := rt.entries[id]
	var state string
	if e != nil {
		state = e.state
	}
	rt.mu.Unlock()
	if e == nil {
		rt.mUnknownTarget.Inc()
		rt.writeError(w, http.StatusNotFound, wire.CodeUnknownTarget, "no tenant "+id)
		return nil, "", false
	}
	e.touch()
	switch state {
	case StateEvicted:
		go rt.revive(id)
		rt.shed503(w, wire.CodeEvicted, "tenant "+id+" evicted; revival under way")
		return nil, "", false
	case StateCreating, StateRebuilding:
		rt.shed503(w, wire.CodeNotReady, "tenant "+id+" "+state)
		return nil, "", false
	}
	return e, client, true
}

// dataContentType is the Content-Type a data-path body arrived in,
// defaulting absent headers to JSON (the v1 behaviour) so journal
// entries always carry an explicit codec.
func dataContentType(r *http.Request) string {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return wire.JSONContentType
}

// dataHdr collects the codec headers a data-path proxy hop relays
// verbatim: the body's Content-Type and the client's Accept ask.
func dataHdr(r *http.Request) map[string]string {
	return map[string]string{
		"Content-Type": dataContentType(r),
		"Accept":       r.Header.Get("Accept"),
	}
}

// handleData proxies one estimate or execute to the tenant's backend,
// relaying the negotiated codec untouched — the router never decodes
// data-path bodies. Execute bodies are journaled on ack (with their
// Content-Type) so a failover can replay them.
func (rt *Router) handleData(w http.ResponseWriter, r *http.Request, id string, exec bool) {
	e, client, ok := rt.resolveData(w, r, id)
	if !ok {
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "reading body: "+err.Error())
		return
	}
	hdr := dataHdr(r)

	op := "estimate"
	if exec {
		op = "execute"
	}
	path := "/v1/targets/" + id + "/" + op

	if !exec {
		rt.mu.Lock()
		b := e.backend
		rt.mu.Unlock()
		if b == nil || !b.up.Load() {
			rt.shed503(w, wire.CodeNotReady, "tenant "+id+" losing its backend; failover under way")
			return
		}
		resp, raw, err := rt.forwardHdr(r.Context(), b, http.MethodPost, path, body, client, hdr)
		if err != nil {
			if r.Context().Err() != nil {
				return // client hung up; nobody is reading
			}
			rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
			return
		}
		rt.passthrough(w, resp, raw)
		return
	}

	// Execute: hold the journal lock across send→ack→append so the
	// journal order IS the apply order, then re-check placement — a
	// failover may have started while we queued on the lock.
	e.execMu.Lock()
	defer e.execMu.Unlock()
	rt.mu.Lock()
	if e.state != StateReady || e.backend == nil || !e.backend.up.Load() {
		rt.mu.Unlock()
		rt.shed503(w, wire.CodeNotReady, "tenant "+id+" rebuilding")
		return
	}
	b := e.backend
	rt.mu.Unlock()
	resp, raw, err := rt.forwardHdr(r.Context(), b, http.MethodPost, path, body, client, hdr)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend for tenant "+id+" unreachable; failover under way")
		return
	}
	if resp.StatusCode == http.StatusOK {
		e.journal = append(e.journal, journalEntry{contentType: hdr["Content-Type"], body: body})
	}
	rt.passthrough(w, resp, raw)
}

// handleCreate admits a tenant (quotas), places it by rendezvous hash
// and provisions it on the chosen backend, blocking for the world
// build like paced's own create does.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	rt.mAdminReqs.Inc()
	if rt.isDraining() {
		rt.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "router draining")
		return
	}
	owner, ok := rt.clientIdentity(w, r)
	if !ok {
		return
	}
	var req wire.CreateTargetRequest
	if !rt.decodeRequest(w, r, &req) {
		return
	}
	id := req.Target.ID
	if id == "" {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "target id required")
		return
	}

	rt.mu.Lock()
	if _, exists := rt.entries[id]; exists {
		rt.mu.Unlock()
		rt.writeError(w, http.StatusConflict, wire.CodeTargetExists, "tenant "+id+" already exists")
		return
	}
	if rt.cfg.MaxTenants > 0 && len(rt.entries) >= rt.cfg.MaxTenants {
		rt.mu.Unlock()
		rt.mQuotaDenied.Inc()
		w.Header().Set("Retry-After", wire.RetryAfter(rt.cfg.RetryAfter))
		rt.writeError(w, http.StatusTooManyRequests, wire.CodeQuotaExceeded,
			fmt.Sprintf("fleet at its %d-tenant cap", rt.cfg.MaxTenants))
		return
	}
	if rt.cfg.MaxPerOwner > 0 {
		n := 0
		for _, e := range rt.entries {
			if e.owner == owner {
				n++
			}
		}
		if n >= rt.cfg.MaxPerOwner {
			rt.mu.Unlock()
			rt.mQuotaDenied.Inc()
			w.Header().Set("Retry-After", wire.RetryAfter(rt.cfg.RetryAfter))
			rt.writeError(w, http.StatusTooManyRequests, wire.CodeQuotaExceeded,
				fmt.Sprintf("client %s at its %d-tenant quota", owner, rt.cfg.MaxPerOwner))
			return
		}
	}
	e := &entry{spec: req.Target, owner: owner, state: StateCreating}
	e.touch()
	rt.entries[id] = e
	n := len(rt.entries)
	rt.mu.Unlock()
	rt.mTenants.Set(int64(n))

	b := pick(id, rt.backends)
	if b == nil {
		rt.dropEntry(id, e)
		rt.shed503(w, wire.CodeNotReady, "no backend up to place tenant "+id)
		return
	}
	resp, raw, err := rt.createOn(r.Context(), b, req, owner)
	if err != nil {
		rt.dropEntry(id, e)
		if r.Context().Err() != nil {
			return
		}
		rt.shed503(w, wire.CodeNotReady, "backend "+b.url+" unreachable: "+err.Error())
		return
	}
	if resp.StatusCode != http.StatusOK {
		rt.dropEntry(id, e)
		rt.passthrough(w, resp, raw)
		return
	}
	rt.mu.Lock()
	if rt.entries[id] == e {
		e.state, e.backend = StateReady, b
		if !b.up.Load() {
			// The backend finished the build and then died: hand the
			// tenant straight to failover; the client's next request
			// rides the 503 + Retry-After through the rebuild.
			e.state, e.backend = StateRebuilding, nil
			defer func() { go rt.rebuild(id) }()
		}
	}
	rt.mu.Unlock()
	rt.passthrough(w, resp, raw)
}

// createOn provisions spec on b. A 409 means a stale tenant from before
// a router restart or failover still lives there — it is deleted and
// the create retried once, making the router's placement authoritative.
func (rt *Router) createOn(ctx context.Context, b *backend, req wire.CreateTargetRequest, owner string) (*http.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, err
	}
	resp, raw, err := rt.forward(ctx, b, http.MethodPost, "/v1/targets", body, owner)
	if err != nil || resp.StatusCode != http.StatusConflict {
		return resp, raw, err
	}
	if err := rt.deleteOnBackend(ctx, b, req.Target.ID); err != nil {
		return resp, raw, nil // keep the 409; the stale world would not budge
	}
	return rt.forward(ctx, b, http.MethodPost, "/v1/targets", body, owner)
}

func (rt *Router) dropEntry(id string, e *entry) {
	rt.mu.Lock()
	if rt.entries[id] == e {
		delete(rt.entries, id)
	}
	n := len(rt.entries)
	rt.mu.Unlock()
	rt.mTenants.Set(int64(n))
}

// handleDelete removes a tenant everywhere: from the placement map and,
// best-effort, from its backend. Deleting a rebuilding or evicted
// tenant just drops the router-side record (journal included).
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	rt.mAdminReqs.Inc()
	if _, ok := rt.clientIdentity(w, r); !ok {
		return
	}
	id := r.PathValue("id")
	rt.mu.Lock()
	e := rt.entries[id]
	if e == nil {
		rt.mu.Unlock()
		rt.mUnknownTarget.Inc()
		rt.writeError(w, http.StatusNotFound, wire.CodeUnknownTarget, "no tenant "+id)
		return
	}
	if e.state == StateCreating {
		rt.mu.Unlock()
		w.Header().Set("Retry-After", wire.RetryAfter(rt.cfg.RetryAfter))
		rt.writeError(w, http.StatusServiceUnavailable, wire.CodeNotReady, "tenant "+id+" still provisioning")
		return
	}
	b := e.backend
	delete(rt.entries, id)
	n := len(rt.entries)
	rt.mu.Unlock()
	rt.mTenants.Set(int64(n))
	if b != nil {
		ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
		rt.deleteOnBackend(ctx, b, id) //nolint:errcheck // backend GC catches leftovers
		cancel()
	}
	rt.writeJSON(w, http.StatusOK, wire.DeleteTargetResponse{V: wire.Version, Deleted: id})
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mAdminReqs.Inc()
	if _, ok := rt.clientIdentity(w, r); !ok {
		return
	}
	rt.mu.Lock()
	resp := wire.ListTargetsResponse{V: wire.Version, Targets: make([]wire.TargetInfo, 0, len(rt.entries))}
	for _, e := range rt.entries {
		resp.Targets = append(resp.Targets, wire.TargetInfo{TargetSpec: e.spec, State: e.state})
	}
	rt.mu.Unlock()
	sort.Slice(resp.Targets, func(i, j int) bool { return resp.Targets[i].ID < resp.Targets[j].ID })
	rt.writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports the router's own health plus every tenant's
// state — wire-compatible with paced's /healthz, so remote.Admin's
// WaitReady works unchanged through the router.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := wire.HealthzResponse{Status: "ok", Tenants: map[string]string{}}
	rt.mu.Lock()
	draining := rt.draining
	for id, e := range rt.entries {
		resp.Tenants[id] = e.state
	}
	rt.mu.Unlock()
	for _, b := range rt.backends {
		if !b.up.Load() {
			resp.Status = "degraded"
			break
		}
	}
	status := http.StatusOK
	if draining {
		resp.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, status, resp)
}

// handleTenantHealthz is the per-tenant readiness probe: 200 only when
// the tenant is ready on an up backend.
func (rt *Router) handleTenantHealthz(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rt.isDraining() {
		rt.writeError(w, http.StatusServiceUnavailable, wire.CodeDraining, "router draining")
		return
	}
	rt.mu.Lock()
	e := rt.entries[id]
	var state string
	var b *backend
	if e != nil {
		state, b = e.state, e.backend
	}
	rt.mu.Unlock()
	switch {
	case e == nil:
		rt.mUnknownTarget.Inc()
		rt.writeError(w, http.StatusNotFound, wire.CodeUnknownTarget, "no tenant "+id)
	case state == StateEvicted:
		go rt.revive(id)
		rt.shed503(w, wire.CodeEvicted, "tenant "+id+" evicted; revival under way")
	case state != StateReady || b == nil || !b.up.Load():
		rt.shed503(w, wire.CodeNotReady, "tenant "+id+" "+state)
	default:
		rt.writeJSON(w, http.StatusOK, wire.HealthzResponse{
			Status:  "ok",
			Tenants: map[string]string{id: StateReady},
		})
	}
}

// handleFleet reports fleet topology: each backend's health and load,
// and every tenant's placement — the operator's (and chaos test's)
// view of who lives where.
func (rt *Router) handleFleet(w http.ResponseWriter, _ *http.Request) {
	resp := wire.FleetStatusResponse{V: wire.Version, Status: "ok", Tenants: map[string]wire.TenantPlacement{}}
	hosted := map[string]int{}
	rt.mu.Lock()
	for id, e := range rt.entries {
		p := wire.TenantPlacement{State: e.state}
		if e.backend != nil {
			p.Backend = e.backend.url
			hosted[e.backend.url]++
		}
		resp.Tenants[id] = p
	}
	rt.mu.Unlock()
	for _, b := range rt.backends {
		up := b.up.Load()
		if !up {
			resp.Status = "degraded"
		}
		resp.Backends = append(resp.Backends, wire.BackendStatus{URL: b.url, Up: up, Tenants: hosted[b.url]})
	}
	rt.writeJSON(w, http.StatusOK, resp)
}

// rebuild re-provisions one rebuilding tenant on a surviving backend:
// create from spec (bit-identical world), replay the execute journal in
// order (bit-identical retraining state), then flip it ready. It keeps
// retrying — waiting out windows with no backend up — until the tenant
// is rebuilt, deleted, or the router shuts down.
func (rt *Router) rebuild(id string) {
	start := time.Now()
	// Rebuilds are router-initiated, so their spans root in the router's
	// own trace rather than under any client request.
	rctx, rsp := obs.StartSpan(rt.bg, "rebuild", obs.String("tenant", id))
	defer rsp.End()
	for {
		if rt.isDraining() {
			return
		}
		rt.mu.Lock()
		e := rt.entries[id]
		if e == nil || e.state != StateRebuilding {
			rt.mu.Unlock()
			return
		}
		rt.mu.Unlock()

		b := pick(id, rt.backends)
		if b == nil {
			if !rt.sleep(rt.cfg.HealthInterval) {
				return
			}
			continue
		}
		if err := rt.provision(rctx, e, b); err != nil {
			if !rt.sleep(rt.cfg.HealthInterval) {
				return
			}
			continue
		}
		rt.mu.Lock()
		landed := rt.entries[id] == e && e.state == StateRebuilding && b.up.Load()
		if landed {
			e.state, e.backend = StateReady, b
		}
		rt.mu.Unlock()
		if !landed {
			// The tenant was deleted mid-rebuild, or b died right after
			// provisioning. Drop the fresh world (best-effort; a dead
			// backend's copy is GC'd if it ever comes back) and either
			// stop or pick again.
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			rt.deleteOnBackend(ctx, b, id) //nolint:errcheck
			cancel()
			continue
		}
		rt.mReprovision.Inc()
		rt.mReprovLatency.Observe(float64(time.Since(start).Microseconds()))
		return
	}
}

// provision creates e's world on b through the backend's admin client
// and replays the journal. The journal cannot grow underneath it:
// executes are rejected (503, retryable) while the entry is rebuilding,
// so the snapshot is complete. Streamed chunks sit in the journal like
// plain executes and replay through the synchronous path — apply order
// is journal order either way.
func (rt *Router) provision(parent context.Context, e *entry, b *backend) error {
	e.execMu.Lock()
	journal := append([]journalEntry(nil), e.journal...)
	e.execMu.Unlock()
	pctx, psp := obs.StartSpan(parent, "provision", obs.Int("journal", len(journal)))
	defer psp.End()
	ctx, cancel := context.WithTimeout(pctx, rt.cfg.CreateTimeout)
	defer cancel()
	// A stale copy from before a router restart or failover may still
	// live on b; the router's placement map is authoritative, so clear
	// it unconditionally before creating (already-gone is fine).
	if err := rt.deleteOnBackend(ctx, b, e.spec.ID); err != nil {
		return err
	}
	if _, err := b.admin.CreateTarget(ctx, e.spec); err != nil {
		return fmt.Errorf("router: rebuild create %s on %s: %w", e.spec.ID, b.url, err)
	}
	jctx, jsp := obs.StartSpan(ctx, "journal_replay", obs.Int("entries", len(journal)))
	defer jsp.End()
	for _, je := range journal {
		if err := rt.replayExecute(jctx, b, e.spec.ID, je); err != nil {
			return err
		}
		if je.stream {
			rt.mStreamReplayed.Inc()
		}
	}
	return nil
}

// replayExecute re-applies one journaled execute body in the codec it
// was journaled in, riding out admission sheds (429/503 + Retry-After)
// — a freshly built tenant can still rate-limit the router's replay
// identity.
func (rt *Router) replayExecute(ctx context.Context, b *backend, id string, je journalEntry) error {
	hdr := map[string]string{"Content-Type": je.contentType}
	for {
		resp, raw, err := rt.forwardHdr(ctx, b, http.MethodPost, "/v1/targets/"+id+"/execute", je.body, routerClient, hdr)
		if err != nil {
			return err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			d := 100 * time.Millisecond
			if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
				d = time.Duration(secs) * time.Second
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		default:
			return fmt.Errorf("router: replay execute %s on %s: http %d: %s", id, b.url, resp.StatusCode, raw)
		}
	}
}

// revive flips an evicted tenant to rebuilding and runs the same
// rebuild path — the kept journal makes revival bit-exact, not just
// spec-exact.
func (rt *Router) revive(id string) {
	rt.mu.Lock()
	e := rt.entries[id]
	if e == nil || e.state != StateEvicted {
		rt.mu.Unlock()
		return
	}
	e.state = StateRebuilding
	rt.mu.Unlock()
	rt.mRevived.Inc()
	rt.rebuild(id)
}

// janitor evicts idle ready tenants: the backend's copy is deleted
// (freeing its model goroutine), the spec and journal stay spilled in
// the router, and the next request lazily revives the tenant.
func (rt *Router) janitor() {
	defer rt.wg.Done()
	period := rt.cfg.IdleAfter / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	if period > 30*time.Second {
		period = 30 * time.Second
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
		}
		type victim struct {
			id string
			b  *backend
		}
		var victims []victim
		rt.mu.Lock()
		for id, e := range rt.entries {
			if e.state == StateReady && e.idleFor() > rt.cfg.IdleAfter {
				victims = append(victims, victim{id, e.backend})
				e.state, e.backend = StateEvicted, nil
			}
		}
		rt.mu.Unlock()
		for _, v := range victims {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			rt.deleteOnBackend(ctx, v.b, v.id) //nolint:errcheck // backend GC catches leftovers
			cancel()
			rt.mEvicted.Inc()
		}
	}
}

func (rt *Router) sleep(d time.Duration) bool {
	select {
	case <-rt.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// listBackend asks a backend for its hosted tenants (reconciliation).
func (rt *Router) listBackend(ctx context.Context, b *backend) ([]wire.TargetInfo, error) {
	return b.admin.ListTargets(ctx)
}

// deleteOnBackend destroys one tenant on one backend; already gone
// (404 and kin, surfaced by the admin client as the permanent error
// class) counts as success.
func (rt *Router) deleteOnBackend(ctx context.Context, b *backend, id string) error {
	err := b.admin.DeleteTarget(ctx, id)
	if err == nil || errors.Is(err, ce.ErrInvalidQuery) {
		return nil
	}
	return err
}

// clientIdentity mirrors paced's: token-derived (spoof-proof) when
// AuthTokens is set, else the X-Pace-Client header, else the peer host.
func (rt *Router) clientIdentity(w http.ResponseWriter, r *http.Request) (string, bool) {
	if len(rt.cfg.AuthTokens) > 0 {
		tok, ok := bearerToken(r)
		if !ok {
			rt.mUnauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="pacerouter"`)
			rt.writeError(w, http.StatusUnauthorized, wire.CodeUnauthorized,
				"missing Authorization: Bearer token")
			return "", false
		}
		name, known := rt.cfg.AuthTokens[tok]
		if !known {
			rt.mUnauthorized.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="pacerouter"`)
			rt.writeError(w, http.StatusUnauthorized, wire.CodeUnauthorized, "unknown bearer token")
			return "", false
		}
		return name, true
	}
	if c := r.Header.Get(targetserver.ClientHeader); c != "" {
		return c, true
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host, true
	}
	return r.RemoteAddr, true
}

func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return strings.TrimSpace(auth[len(prefix):]), true
}

func (rt *Router) decodeRequest(w http.ResponseWriter, r *http.Request, dst *wire.CreateTargetRequest) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest, "malformed body: "+err.Error())
		return false
	}
	if dst.V != wire.Version {
		rt.writeError(w, http.StatusBadRequest, wire.CodeBadRequest,
			fmt.Sprintf("protocol version %d, router speaks %d", dst.V, wire.Version))
		return false
	}
	return true
}

// shed503 answers a retryable unavailability with the Retry-After hint
// the client-side resilience layer honors.
func (rt *Router) shed503(w http.ResponseWriter, code, msg string) {
	rt.mShed.Inc()
	w.Header().Set("Retry-After", wire.RetryAfter(rt.cfg.RetryAfter))
	rt.writeError(w, http.StatusServiceUnavailable, code, msg)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, code, msg string) {
	rt.writeJSON(w, status, wire.ErrorResponse{V: wire.Version, Code: code, Error: msg})
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck // client hang-ups are its problem
}
