package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"pace/internal/wire"
)

// Admin drives a paced host's tenant admin surface: provisioning,
// listing and destroying targets at runtime. It shares the error
// taxonomy of RemoteTarget (429 → ErrOverloaded, other 4xx →
// ce.ErrInvalidQuery, 5xx/network → ErrUnavailable) so callers can reuse
// the same retry policies.
type Admin struct {
	base   string
	opts   Options
	client *http.Client
	t      *RemoteTarget // classification + counters live here
}

// NewAdmin builds an admin client for the host at baseURL
// (scheme://host:port). Options.Tenant is ignored — admin routes carry
// their tenant ids explicitly.
//
// Deprecated: use NewClient(baseURL, opts).Admin(). NewAdmin is kept as
// a thin wrapper.
func NewAdmin(baseURL string, opts Options) (*Admin, error) {
	c, err := NewClient(baseURL, opts)
	if err != nil {
		return nil, err
	}
	return c.Admin(), nil
}

// Close releases pooled connections.
func (a *Admin) Close() { a.t.Close() }

// CreateTarget provisions a tenant and blocks until its world is trained
// (pass a generous ctx — model training can take minutes).
func (a *Admin) CreateTarget(ctx context.Context, spec wire.TargetSpec) (wire.TargetInfo, error) {
	req := wire.CreateTargetRequest{V: wire.Version, Target: spec}
	var resp wire.CreateTargetResponse
	if err := a.do(ctx, http.MethodPost, "/v1/targets", req, &resp); err != nil {
		return wire.TargetInfo{}, err
	}
	return resp.Target, nil
}

// DeleteTarget drains and removes a tenant.
func (a *Admin) DeleteTarget(ctx context.Context, id string) error {
	var resp wire.DeleteTargetResponse
	return a.do(ctx, http.MethodDelete, "/v1/targets/"+url.PathEscape(id), nil, &resp)
}

// ListTargets snapshots the host's tenant directory.
func (a *Admin) ListTargets(ctx context.Context) ([]wire.TargetInfo, error) {
	var resp wire.ListTargetsResponse
	if err := a.do(ctx, http.MethodGet, "/v1/targets", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Targets, nil
}

// Healthz reports the host's overall status and each tenant's state.
func (a *Admin) Healthz(ctx context.Context) (wire.HealthzResponse, error) {
	var resp wire.HealthzResponse
	err := a.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// WaitReady polls until the named tenant reports ready, the deadline
// passes, or ctx dies — the harness-side barrier between provisioning a
// tenant and attacking it.
func (a *Admin) WaitReady(ctx context.Context, id string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		hz, err := a.Healthz(ctx)
		if err == nil && hz.Tenants[id] == "ready" {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			state := hz.Tenants[id]
			if state == "" {
				state = "absent"
			}
			return fmt.Errorf("%w: tenant %s still %s after %v", ErrUnavailable, id, state, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (a *Admin) do(ctx context.Context, method, path string, body, dst any) error {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.opts.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("remote: encode: %w", err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, rd)
	if err != nil {
		return fmt.Errorf("remote: request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(clientHeader, a.opts.ClientID)
	if a.opts.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+a.opts.AuthToken)
	}
	resp, err := a.client.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		a.t.unavailableCount.Add(1)
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponse))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		a.t.unavailableCount.Add(1)
		return fmt.Errorf("%w: reading response: %v", ErrUnavailable, err)
	}
	// /healthz deliberately answers 503 with a valid body while draining;
	// surface the body when it decodes, the classified error otherwise.
	if resp.StatusCode == http.StatusOK ||
		(strings.HasSuffix(path, "/healthz") && json.Valid(raw) && !bytes.Contains(raw, []byte(`"code"`))) {
		if err := json.Unmarshal(raw, dst); err != nil {
			a.t.unavailableCount.Add(1)
			return fmt.Errorf("%w: malformed response: %v", ErrUnavailable, err)
		}
		return nil
	}
	return a.t.classify(resp, raw)
}
