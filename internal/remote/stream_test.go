package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"pace/internal/ce"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/wire"
)

// streamServer fakes the paced streamed-execute surface with fault
// hooks, so the client's protocol loops (shed rides, codec downgrade,
// re-open after a forgotten token) can be driven deterministically.
type streamServer struct {
	t  *testing.T
	hs *httptest.Server

	mu      sync.Mutex
	opens   int
	deletes int
	opened  map[string]bool
	applied map[int64]int      // seq → times applied
	codecs  map[int64]string   // seq → codec name the chunk arrived in
	cards   map[int64][]uint64 // seq → card bit patterns

	rejectBinary bool  // 415 every binary chunk
	shedOnce     int64 // -1 off: shed this seq's first attempt with 429
	forgetOnce   int64 // -1 off: forget the token when this seq first arrives
	failStream   bool  // status poll reports the execution failed
}

func newStreamServer(t *testing.T) *streamServer {
	ss := &streamServer{
		t:          t,
		opened:     map[string]bool{},
		applied:    map[int64]int{},
		codecs:     map[int64]string{},
		cards:      map[int64][]uint64{},
		shedOnce:   -1,
		forgetOnce: -1,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/targets/default/executions", ss.open)
	mux.HandleFunc("POST /v1/targets/default/executions/{token}", ss.chunk)
	mux.HandleFunc("GET /v1/targets/default/executions/{token}", ss.status)
	mux.HandleFunc("DELETE /v1/targets/default/executions/{token}", ss.del)
	ss.hs = httptest.NewServer(mux)
	t.Cleanup(ss.hs.Close)
	return ss
}

func (ss *streamServer) errJSON(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", wire.JSONContentType)
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"v":%d,"code":%q,"error":%q}`, wire.Version, code, code)
}

func (ss *streamServer) ack(w http.ResponseWriter, status int, token, state string) {
	ss.mu.Lock()
	n := int64(len(ss.applied))
	ss.mu.Unlock()
	w.Header().Set("Content-Type", wire.JSONContentType)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(wire.ExecutionResponse{ //nolint:errcheck
		V: wire.Version, Token: token, State: state, Applied: n, Queries: n,
	})
}

func (ss *streamServer) open(w http.ResponseWriter, r *http.Request) {
	var req wire.OpenExecutionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || !wire.ValidExecutionToken(req.Token) {
		ss.errJSON(w, http.StatusBadRequest, wire.CodeBadRequest)
		return
	}
	ss.mu.Lock()
	ss.opens++
	ss.opened[req.Token] = true
	ss.mu.Unlock()
	ss.ack(w, http.StatusOK, req.Token, wire.ExecutionRunning)
}

func (ss *streamServer) chunk(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	var seq int64
	if _, err := fmt.Sscan(r.Header.Get(wire.ChunkSeqHeader), &seq); err != nil {
		ss.errJSON(w, http.StatusBadRequest, wire.CodeBadRequest)
		return
	}
	ss.mu.Lock()
	if !ss.opened[token] {
		ss.mu.Unlock()
		ss.errJSON(w, http.StatusNotFound, wire.CodeUnknownExecution)
		return
	}
	if ss.forgetOnce == seq {
		ss.forgetOnce = -1
		delete(ss.opened, token)
		ss.mu.Unlock()
		ss.errJSON(w, http.StatusNotFound, wire.CodeUnknownExecution)
		return
	}
	if ss.shedOnce == seq {
		ss.shedOnce = -1
		ss.mu.Unlock()
		w.Header().Set("Retry-After", "0")
		ss.errJSON(w, http.StatusTooManyRequests, wire.CodeOverloaded)
		return
	}
	ss.mu.Unlock()

	c, ok := wire.CodecForContentType(r.Header.Get("Content-Type"))
	if !ok {
		ss.errJSON(w, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia)
		return
	}
	if ss.rejectBinary && c.Name() == "binary" {
		ss.errJSON(w, http.StatusUnsupportedMediaType, wire.CodeUnsupportedMedia)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		ss.errJSON(w, http.StatusBadRequest, wire.CodeBadRequest)
		return
	}
	req, err := c.DecodeExecuteRequest(raw)
	if err != nil {
		ss.errJSON(w, http.StatusBadRequest, wire.CodeBadFrame)
		return
	}
	ss.mu.Lock()
	ss.applied[seq]++
	ss.codecs[seq] = c.Name()
	bits := make([]uint64, len(req.Cards))
	for i, b := range req.Cards {
		bits[i] = uint64(b)
	}
	ss.cards[seq] = bits
	ss.mu.Unlock()
	ss.ack(w, http.StatusAccepted, token, wire.ExecutionRunning)
}

func (ss *streamServer) status(w http.ResponseWriter, r *http.Request) {
	token := r.PathValue("token")
	ss.mu.Lock()
	known := ss.opened[token]
	ss.mu.Unlock()
	if !known {
		ss.errJSON(w, http.StatusNotFound, wire.CodeUnknownExecution)
		return
	}
	state := wire.ExecutionDone
	if ss.failStream {
		state = wire.ExecutionFailed
	}
	ss.ack(w, http.StatusOK, token, state)
}

func (ss *streamServer) del(w http.ResponseWriter, r *http.Request) {
	ss.mu.Lock()
	ss.deletes++
	ss.mu.Unlock()
	ss.ack(w, http.StatusOK, r.PathValue("token"), wire.ExecutionDone)
}

func streamWorkload(n int) ([]*query.Query, []float64) {
	qs := make([]*query.Query, n)
	cards := make([]float64, n)
	for i := range qs {
		q := query.New(testMeta())
		q.Tables[0] = true
		q.Bounds[0] = [2]float64{float64(i) / float64(n+1), 0.9}
		qs[i] = q
		// A bit pattern JSON floats cannot carry: NaN with a payload.
		cards[i] = math.Float64frombits(0x7ff8000000000000 | uint64(i))
	}
	return qs, cards
}

func streamTarget(t *testing.T, url string, mut func(*remote.Options)) *remote.RemoteTarget {
	t.Helper()
	opts := remote.Options{CoalesceWindow: 0, StreamExecute: true, StreamChunk: 2}
	if mut != nil {
		mut(&opts)
	}
	return newTarget(t, url, opts)
}

func TestStreamExecuteHappyPath(t *testing.T) {
	ss := newStreamServer(t)
	rt := streamTarget(t, ss.hs.URL, nil)
	qs, cards := streamWorkload(5)
	if err := rt.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.opens != 1 || ss.deletes != 1 {
		t.Errorf("opens=%d deletes=%d, want 1 and 1", ss.opens, ss.deletes)
	}
	if len(ss.applied) != 3 { // ceil(5/2) chunks
		t.Fatalf("%d chunks applied, want 3: %v", len(ss.applied), ss.applied)
	}
	for seq, n := range ss.applied {
		if n != 1 {
			t.Errorf("seq %d applied %d times", seq, n)
		}
		if ss.codecs[seq] != "binary" {
			t.Errorf("seq %d arrived as %s, want binary by default", seq, ss.codecs[seq])
		}
	}
	// Cards must cross the wire bit-exactly (NaN payloads survive).
	if got := ss.cards[2]; len(got) != 1 || got[0] != math.Float64bits(cards[4]) {
		t.Errorf("last chunk cards %#x, want [%#x]", got, math.Float64bits(cards[4]))
	}
}

func TestStreamExecuteRidesShed(t *testing.T) {
	ss := newStreamServer(t)
	ss.shedOnce = 1
	rt := streamTarget(t, ss.hs.URL, nil)
	qs, cards := streamWorkload(4)
	if err := rt.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.applied[1] != 1 {
		t.Errorf("shed seq applied %d times, want exactly 1 after the retry", ss.applied[1])
	}
	if len(ss.applied) != 2 {
		t.Errorf("%d chunks applied, want 2", len(ss.applied))
	}
}

func TestStreamExecuteDowngradesOn415(t *testing.T) {
	ss := newStreamServer(t)
	ss.rejectBinary = true
	rt := streamTarget(t, ss.hs.URL, nil)
	qs, cards := streamWorkload(4)
	if err := rt.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for seq, name := range ss.codecs {
		if name != "json" {
			t.Errorf("seq %d arrived as %s after the 415, want json", seq, name)
		}
	}
	// Sticky: the downgrade happens once, then every chunk goes JSON
	// first try — so each seq is applied exactly once.
	for seq, n := range ss.applied {
		if n != 1 {
			t.Errorf("seq %d applied %d times", seq, n)
		}
	}
	if st := rt.Stats(); st.Codec != "json" {
		t.Errorf("Stats().Codec = %q after downgrade, want json", st.Codec)
	}
}

func TestStreamExecuteReopensAfterUnknownExecution(t *testing.T) {
	ss := newStreamServer(t)
	ss.forgetOnce = 1 // a failover replaced the backend mid-stream
	rt := streamTarget(t, ss.hs.URL, nil)
	qs, cards := streamWorkload(6)
	if err := rt.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatal(err)
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.opens != 2 {
		t.Errorf("opens=%d, want 2 (initial + re-open after the 404)", ss.opens)
	}
	if len(ss.applied) != 3 || ss.applied[1] != 1 {
		t.Errorf("applied %v, want seqs 0..2 once each", ss.applied)
	}
}

func TestStreamExecuteFailureIsPermanent(t *testing.T) {
	ss := newStreamServer(t)
	ss.failStream = true
	rt := streamTarget(t, ss.hs.URL, nil)
	qs, cards := streamWorkload(2)
	err := rt.ExecuteWorkload(context.Background(), qs, cards)
	if !errors.Is(err, ce.ErrInvalidQuery) {
		t.Fatalf("stream failure classified %v, want permanent ce.ErrInvalidQuery", err)
	}
}
