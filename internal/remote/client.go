package remote

import (
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"pace/internal/wire"
)

// Client is one connection to a paced (or pacerouter) host: a shared
// HTTP pool handing out per-tenant data-path targets and the admin
// surface. It replaces the former split New/NewAdmin constructors,
// which survive as thin wrappers.
type Client struct {
	base  string
	opts  Options
	httpc *http.Client
	codec wire.Codec
}

// NewClient validates the base URL and codec and builds the shared
// pool. baseURL is scheme://host[:port]; a full tenant route
// (…/v1/targets/<id>) is also accepted for compatibility, in which case
// Target's id argument is ignored.
func NewClient(baseURL string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	baseURL = strings.TrimRight(baseURL, "/")
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		return nil, fmt.Errorf("remote: target URL %q must be http(s)", baseURL)
	}
	codec, ok := wire.CodecByName(opts.Codec)
	if !ok {
		return nil, fmt.Errorf("remote: unknown codec %q (want json or binary)", opts.Codec)
	}
	httpc := opts.Client
	if httpc == nil {
		httpc = &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return &Client{base: baseURL, opts: opts, httpc: httpc, codec: codec}, nil
}

// Target hands out the data-path client for one tenant. id "" routes to
// the legacy unrouted endpoints (the "default" tenant); when the base
// URL itself already carries /v1/targets/{id}, id is ignored. Targets
// share the Client's pool — hand out as many as needed.
func (c *Client) Target(id string) *RemoteTarget {
	prefix := "/v1"
	switch {
	case strings.Contains(c.base, "/v1/targets/"):
		prefix = "" // the URL already routes to a tenant
	case id != "":
		prefix = "/v1/targets/" + url.PathEscape(id)
	}
	return &RemoteTarget{base: c.base, prefix: prefix, opts: c.opts, client: c.httpc, codec: c.codec}
}

// TargetAs is Target with a per-target client identity: the returned
// target sends clientID as X-Pace-Client instead of the Client-wide
// identity. Targets stay cheap (they share the pool), so a workload
// replayer hands out one per planned client and the server's per-client
// token buckets see the planned population instead of one monolithic
// load generator. An empty clientID falls back to the Client identity.
func (c *Client) TargetAs(id, clientID string) *RemoteTarget {
	t := c.Target(id)
	if clientID != "" {
		t.opts.ClientID = clientID
	}
	return t
}

// Admin hands out the tenant admin surface (always JSON on the wire).
func (c *Client) Admin() *Admin {
	t := c.Target("")
	return &Admin{base: c.base, opts: c.opts, client: c.httpc, t: t}
}

// Close releases pooled connections. Targets and Admins handed out by
// this Client share the pool, so close once, after all of them are
// done.
func (c *Client) Close() {
	if tr, ok := c.httpc.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
}
