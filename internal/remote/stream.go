package remote

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"pace/internal/ce"
	"pace/internal/obs"
	"pace/internal/query"
	"pace/internal/wire"
)

// streamToken derives the execution token from the workload's content:
// fnv64a over every query key and card bit pattern. A whole-stream
// retry (the resilience layer re-running ExecuteWorkload after a
// failover) therefore reuses the token, and the server's (token, seq)
// dedupe keeps every chunk exactly-once.
func streamToken(qs []*query.Query, cards []float64) string {
	h := fnv.New64a()
	var lane [8]byte
	for i, q := range qs {
		io.WriteString(h, q.Key()) //nolint:errcheck // fnv never fails
		h.Write([]byte{0})         //nolint:errcheck
		binary.LittleEndian.PutUint64(lane[:], math.Float64bits(cards[i]))
		h.Write(lane[:]) //nolint:errcheck
	}
	return fmt.Sprintf("x%016x-n%d", h.Sum64(), len(qs))
}

// executeStream runs one workload through the streamed-execute
// protocol:
//
//  1. open the execution (idempotent per token),
//  2. upload chunks in sequence — each 202 means "enqueued", so chunk
//     N+1 uploads while chunk N retrains,
//  3. poll the status endpoint until nothing is pending,
//  4. best-effort delete of the server's dedupe state.
//
// Shed replies (429/503 + Retry-After) on any step are flow control,
// not failure: the same chunk or poll is re-sent after the server's
// hint, bounded by the caller's context plus a local budget. Transport
// failures return to the resilience layer as usual — its whole-stream
// retry is safe because the token and every (token, seq) pair dedupe.
func (t *RemoteTarget) executeStream(ctx context.Context, qs []*query.Query, cards []float64) error {
	token := streamToken(qs, cards)
	path := t.streamPrefix() + "/executions/" + url.PathEscape(token)

	ctx, ssp := obs.StartSpan(ctx, "stream_execute", obs.Int("queries", len(qs)))
	defer ssp.End()

	if err := t.openExecution(ctx, token); err != nil {
		return err
	}

	chunk := t.opts.StreamChunk
	for lo, seq := 0, int64(0); lo < len(qs); lo, seq = lo+chunk, seq+1 {
		hi := lo + chunk
		if hi > len(qs) {
			hi = len(qs)
		}
		req := wire.ExecuteRequest{
			V:       wire.Version,
			Queries: wire.EncodeQueries(qs[lo:hi]),
			Cards:   wire.FromFloats(cards[lo:hi]),
		}
		if err := t.submitChunk(ctx, token, seq, &req); err != nil {
			return err
		}
		t.queries.Add(int64(hi - lo))
	}

	actx, asp := obs.StartSpan(ctx, "exec_await")
	err := t.awaitExecution(actx, path, token)
	asp.End()
	if err != nil {
		return err
	}

	// The stream is applied; the dedupe state is now garbage. Deleting
	// it is purely an optimization (the registry LRU-evicts), so a
	// failure here must not fail the workload.
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	t.controlJSON(dctx, http.MethodDelete, path, nil, http.StatusOK) //nolint:errcheck
	return nil
}

// streamPrefix routes streamed-execute calls. The executions surface
// exists only under /v1/targets/{id} — the legacy unrouted surface is
// deprecated and does not grow new endpoints — so a target riding the
// legacy prefix streams at the host's default tenant instead.
func (t *RemoteTarget) streamPrefix() string {
	if t.prefix == "/v1" {
		return "/v1/targets/default"
	}
	return t.prefix
}

// openExecution registers the token, riding shed replies.
func (t *RemoteTarget) openExecution(ctx context.Context, token string) error {
	ctx, sp := obs.StartSpan(ctx, "rpc_exec_open")
	defer sp.End()
	deadline := time.Now().Add(2 * t.opts.RequestTimeout)
	for {
		_, err := t.controlJSON(ctx, http.MethodPost, t.streamPrefix()+"/executions",
			wire.OpenExecutionRequest{V: wire.Version, Token: token}, http.StatusOK)
		if err == nil {
			return nil
		}
		if werr := t.rideOverload(ctx, err, deadline); werr != nil {
			return werr
		}
	}
}

// submitChunk uploads one chunk until the server acks it. Three
// outcomes loop instead of failing: a shed (wait out the hint and
// resubmit the same seq — idempotent), a 415 (sticky JSON downgrade),
// and unknown_execution (the backend lost the registry entry, e.g. a
// failover landed the stream on a freshly re-provisioned host — re-open
// and resubmit).
func (t *RemoteTarget) submitChunk(ctx context.Context, token string, seq int64, req *wire.ExecuteRequest) error {
	ctx, sp := obs.StartSpan(ctx, "rpc_exec_chunk", obs.Int64("seq", seq))
	defer sp.End()
	path := t.streamPrefix() + "/executions/" + url.PathEscape(token)
	hdr := map[string]string{wire.ChunkSeqHeader: strconv.FormatInt(seq, 10)}
	deadline := time.Now().Add(2 * t.opts.RequestTimeout)
	for {
		c := t.wireCodec()
		payload, err := c.EncodeExecuteRequest(req)
		if err != nil {
			return fmt.Errorf("remote: encode: %w", err)
		}
		raw, _, err := t.roundTrip(ctx, http.MethodPost, path, c.ContentType(), hdr, payload, http.StatusAccepted)
		switch {
		case err == nil:
			ack, derr := decodeExecution(raw)
			if derr != nil {
				t.unavailableCount.Add(1)
				return derr
			}
			if ack.State == wire.ExecutionFailed {
				return executionFailed(token, ack.Error)
			}
			return nil
		case errors.Is(err, errUnsupportedCodec) && c.Name() != "json":
			t.downgraded.Store(true)
		case errors.Is(err, errUnknownExecution):
			if oerr := t.openExecution(ctx, token); oerr != nil {
				return oerr
			}
		default:
			if werr := t.rideOverload(ctx, err, deadline); werr != nil {
				return werr
			}
		}
	}
}

// awaitExecution polls the status endpoint until the stream is applied.
// Backoff doubles 5ms → 250ms. A 404 here means the registry entry was
// LRU-evicted, which only happens once nothing is pending — treated as
// done.
func (t *RemoteTarget) awaitExecution(ctx context.Context, path, token string) error {
	backoff := 5 * time.Millisecond
	deadline := time.Now().Add(2 * t.opts.RequestTimeout)
	for {
		st, err := t.controlJSON(ctx, http.MethodGet, path, nil, http.StatusOK)
		switch {
		case err == nil:
			switch st.State {
			case wire.ExecutionFailed:
				return executionFailed(token, st.Error)
			case wire.ExecutionDone:
				return nil
			}
			deadline = time.Now().Add(2 * t.opts.RequestTimeout) // progress observed
		case errors.Is(err, errUnknownExecution):
			return nil
		default:
			if werr := t.rideOverload(ctx, err, deadline); werr != nil {
				return werr
			}
			continue // rideOverload already slept
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
	}
}

// rideOverload sleeps out a shed reply's Retry-After hint and reports
// nil (caller loops); any other error — or an exhausted budget — is
// returned for the resilience layer.
func (t *RemoteTarget) rideOverload(ctx context.Context, err error, deadline time.Time) error {
	if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
		return err
	}
	wait := 10 * time.Millisecond
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		wait = oe.RetryAfter
	}
	select {
	case <-time.After(wait):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// executionFailed maps a server-side stream failure onto the permanent
// error class: chunks may be partially applied, so a blind retry cannot
// repair it — the campaign surfaces the failure instead.
func executionFailed(token, msg string) error {
	return fmt.Errorf("%w: streamed execute %s failed on the server: %s", ce.ErrInvalidQuery, token, msg)
}

// controlJSON runs one streamed-execute control exchange (open, status
// poll, delete) — always JSON, like every other control surface.
func (t *RemoteTarget) controlJSON(ctx context.Context, method, path string, body any, wantStatus int) (*wire.ExecutionResponse, error) {
	var payload []byte
	contentType := ""
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, fmt.Errorf("remote: encode: %w", err)
		}
		contentType = wire.JSONContentType
	}
	raw, _, err := t.roundTrip(ctx, method, path, contentType, nil, payload, wantStatus)
	if err != nil {
		return nil, err
	}
	return decodeExecution(raw)
}

func decodeExecution(raw []byte) (*wire.ExecutionResponse, error) {
	var resp wire.ExecutionResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("%w: malformed execution response: %v", ErrUnavailable, err)
	}
	return &resp, nil
}
