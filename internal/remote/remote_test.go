package remote_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pace/internal/ce"
	"pace/internal/query"
	"pace/internal/remote"
	"pace/internal/wire"
)

func testMeta() *query.Meta {
	return &query.Meta{
		TableNames: []string{"a", "b"},
		AttrNames:  []string{"a0", "a1", "b0"},
		AttrOffset: []int{0, 2, 3},
	}
}

func testQuery() *query.Query {
	q := query.New(testMeta())
	q.Tables[0] = true
	q.Bounds[0] = [2]float64{0.1, 0.9}
	return q
}

// echoServer answers estimates with a fixed bit pattern per query and
// counts requests and queries. It speaks whatever codec the request
// body arrived in, like a real paced host.
func echoServer(t *testing.T, est float64) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var reqs, queries atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		c, ok := wire.CodecForContentType(r.Header.Get("Content-Type"))
		if !ok {
			t.Errorf("server: unknown content type %q", r.Header.Get("Content-Type"))
			return
		}
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		req, err := c.DecodeEstimateRequest(raw)
		if err != nil {
			t.Errorf("server decode: %v", err)
			return
		}
		queries.Add(int64(len(req.Queries)))
		ests := make([]wire.B64, len(req.Queries))
		for i := range ests {
			ests[i] = wire.FromFloat(est)
		}
		blob, err := c.EncodeEstimateResponse(&wire.EstimateResponse{V: wire.Version, Estimates: ests})
		if err != nil {
			t.Errorf("server encode: %v", err)
			return
		}
		w.Header().Set("Content-Type", c.ContentType())
		w.Write(blob)
	}))
	t.Cleanup(hs.Close)
	return hs, &reqs, &queries
}

func newTarget(t *testing.T, url string, opts remote.Options) *remote.RemoteTarget {
	t.Helper()
	rt, err := remote.New(url, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestNewRejectsBadURL(t *testing.T) {
	for _, bad := range []string{"", "localhost:8645", "ftp://x", "tcp://1.2.3.4"} {
		if _, err := remote.New(bad, remote.Options{}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	if _, err := remote.New("http://127.0.0.1:1/", remote.Options{}); err != nil {
		t.Errorf("trailing slash rejected: %v", err)
	}
}

func TestEstimateExactBits(t *testing.T) {
	// A value float JSON could not carry: a NaN with payload.
	nan := math.Float64frombits(0x7ff800000000beef)
	hs, _, _ := echoServer(t, nan)
	rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})
	got, err := rt.EstimateContext(context.Background(), testQuery())
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != 0x7ff800000000beef {
		t.Errorf("estimate bits %#x, want 0x7ff800000000beef", math.Float64bits(got))
	}
}

// TestErrorClassification pins the 429/4xx/5xx/network taxonomy the
// retry layer depends on.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name    string
		status  int
		headers map[string]string
		wantIs  error
		wantNot error
	}{
		{"429 is overloaded", http.StatusTooManyRequests,
			map[string]string{"Retry-After": "2"}, remote.ErrOverloaded, ce.ErrInvalidQuery},
		{"400 is invalid query", http.StatusBadRequest, nil, ce.ErrInvalidQuery, remote.ErrOverloaded},
		{"404 is invalid query", http.StatusNotFound, nil, ce.ErrInvalidQuery, remote.ErrUnavailable},
		{"500 is unavailable", http.StatusInternalServerError, nil, remote.ErrUnavailable, ce.ErrInvalidQuery},
		{"503 is unavailable", http.StatusServiceUnavailable, nil, remote.ErrUnavailable, ce.ErrInvalidQuery},
		{"503 with Retry-After is overloaded", http.StatusServiceUnavailable,
			map[string]string{"Retry-After": "4"}, remote.ErrOverloaded, remote.ErrUnavailable},
		{"500 with Retry-After stays unavailable", http.StatusInternalServerError,
			map[string]string{"Retry-After": "4"}, remote.ErrUnavailable, remote.ErrOverloaded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				for k, v := range tc.headers {
					w.Header().Set(k, v)
				}
				w.WriteHeader(tc.status)
				json.NewEncoder(w).Encode(wire.ErrorResponse{V: wire.Version, Code: "x", Error: "y"})
			}))
			defer hs.Close()
			rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})
			_, err := rt.EstimateContext(context.Background(), testQuery())
			if !errors.Is(err, tc.wantIs) {
				t.Errorf("err %v, want errors.Is %v", err, tc.wantIs)
			}
			if errors.Is(err, tc.wantNot) {
				t.Errorf("err %v must not match %v", err, tc.wantNot)
			}
		})
	}
}

// TestRetryAfterHintSurfaces pins the OverloadError contract the
// resilience layer depends on: shed replies expose the server's parsed
// Retry-After duration through RetryAfterHint, and garbage headers
// degrade to "no hint" rather than an error.
func TestRetryAfterHintSurfaces(t *testing.T) {
	cases := []struct {
		name     string
		status   int
		header   string
		wantHint time.Duration
	}{
		{"429 with seconds", http.StatusTooManyRequests, "2", 2 * time.Second},
		{"429 without header", http.StatusTooManyRequests, "", 0},
		{"429 with garbage", http.StatusTooManyRequests, "soon", 0},
		{"429 with negative", http.StatusTooManyRequests, "-3", 0},
		{"503 with seconds", http.StatusServiceUnavailable, "7", 7 * time.Second},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				if tc.header != "" {
					w.Header().Set("Retry-After", tc.header)
				}
				w.WriteHeader(tc.status)
				json.NewEncoder(w).Encode(wire.ErrorResponse{V: wire.Version, Code: "overloaded", Error: "shed"})
			}))
			defer hs.Close()
			rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})
			_, err := rt.EstimateContext(context.Background(), testQuery())
			if !errors.Is(err, remote.ErrOverloaded) {
				t.Fatalf("err %v, want ErrOverloaded", err)
			}
			var oe *remote.OverloadError
			if !errors.As(err, &oe) {
				t.Fatalf("err %T does not expose *OverloadError", err)
			}
			if oe.RetryAfterHint() != tc.wantHint {
				t.Errorf("RetryAfterHint = %v, want %v", oe.RetryAfterHint(), tc.wantHint)
			}
			if oe.Status != tc.status {
				t.Errorf("Status = %d, want %d", oe.Status, tc.status)
			}
		})
	}
}

func TestConnectionRefusedIsUnavailable(t *testing.T) {
	hs := httptest.NewServer(http.NotFoundHandler())
	hs.Close() // nothing listens any more
	rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})
	_, err := rt.EstimateContext(context.Background(), testQuery())
	if !errors.Is(err, remote.ErrUnavailable) {
		t.Errorf("err %v, want ErrUnavailable", err)
	}
	if st := rt.Stats(); st.Unavailable != 1 {
		t.Errorf("Stats.Unavailable = %d, want 1", st.Unavailable)
	}
}

// TestContextErrorsAreNotTransient: an expired caller deadline must
// surface as the context's own error — the retry layer treats those as
// permanent, otherwise cancellation would loop.
func TestContextErrorsAreNotTransient(t *testing.T) {
	block := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer hs.Close()
	// Unblock before hs.Close (defers run LIFO): the handler never reads
	// the body, so the server cannot notice the client abort on its own.
	defer close(block)
	rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := rt.EstimateContext(ctx, testQuery())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, remote.ErrUnavailable) || errors.Is(err, remote.ErrOverloaded) {
		t.Errorf("context expiry classified transient: %v", err)
	}
}

// TestCoalescingMergesConcurrentCalls: concurrent estimates inside one
// window ride one wire request.
func TestCoalescingMergesConcurrentCalls(t *testing.T) {
	hs, reqs, queries := echoServer(t, 7)
	rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 100 * time.Millisecond})

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, err := rt.EstimateContext(context.Background(), testQuery())
			if err == nil && est != 7 {
				t.Errorf("estimate %v, want 7", est)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := reqs.Load(); got != 1 {
		t.Errorf("%d wire requests, want 1 (coalesced)", got)
	}
	if got := queries.Load(); got != n {
		t.Errorf("%d queries crossed, want %d", got, n)
	}
	if st := rt.Stats(); st.Coalesced != n-1 {
		t.Errorf("Stats.Coalesced = %d, want %d", st.Coalesced, n-1)
	}
}

// TestMaxBatchFlushesEarly: hitting MaxBatch flushes without waiting
// out the window.
func TestMaxBatchFlushesEarly(t *testing.T) {
	hs, reqs, _ := echoServer(t, 1)
	rt := newTarget(t, hs.URL, remote.Options{
		CoalesceWindow: 10 * time.Second, // would time the test out if waited
		MaxBatch:       2,
	})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := rt.EstimateContext(context.Background(), testQuery()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("flush waited %v; MaxBatch should flush immediately", elapsed)
	}
	if got := reqs.Load(); got != 1 {
		t.Errorf("%d wire requests, want 1", got)
	}
}

func TestExecuteWorkloadChunksAtWireCap(t *testing.T) {
	var reqs atomic.Int64
	var total atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		c, ok := wire.CodecForContentType(r.Header.Get("Content-Type"))
		if !ok {
			t.Errorf("unknown content type %q", r.Header.Get("Content-Type"))
			return
		}
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		req, err := c.DecodeExecuteRequest(raw)
		if err != nil {
			t.Errorf("decode: %v", err)
			return
		}
		if len(req.Queries) > wire.MaxBatch {
			t.Errorf("chunk of %d queries exceeds wire cap %d", len(req.Queries), wire.MaxBatch)
		}
		total.Add(int64(len(req.Queries)))
		blob, _ := c.EncodeExecuteResponse(&wire.ExecuteResponse{V: wire.Version, Executed: len(req.Queries)})
		w.Header().Set("Content-Type", c.ContentType())
		w.Write(blob)
	}))
	defer hs.Close()
	rt := newTarget(t, hs.URL, remote.Options{})

	n := wire.MaxBatch + 50
	qs := make([]*query.Query, n)
	cards := make([]float64, n)
	for i := range qs {
		qs[i] = testQuery()
		cards[i] = float64(i)
	}
	if err := rt.ExecuteWorkload(context.Background(), qs, cards); err != nil {
		t.Fatal(err)
	}
	if got := reqs.Load(); got != 2 {
		t.Errorf("%d wire requests, want 2", got)
	}
	if got := total.Load(); got != int64(n) {
		t.Errorf("%d queries crossed, want %d", got, n)
	}

	// Length mismatch is a permanent, client-side error: nothing sent.
	before := reqs.Load()
	err := rt.ExecuteWorkload(context.Background(), qs[:2], cards[:1])
	if !errors.Is(err, ce.ErrInvalidQuery) {
		t.Errorf("mismatch err %v, want ErrInvalidQuery", err)
	}
	if reqs.Load() != before {
		t.Error("mismatched workload still reached the wire")
	}
}

func TestStatsCountTraffic(t *testing.T) {
	hs, _, _ := echoServer(t, 3)
	rt := newTarget(t, hs.URL, remote.Options{CoalesceWindow: 0})
	for i := 0; i < 4; i++ {
		if _, err := rt.EstimateContext(context.Background(), testQuery()); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Stats()
	if st.Requests != 4 || st.Queries != 4 {
		t.Errorf("Stats = %+v, want 4 requests / 4 queries", st)
	}
}
